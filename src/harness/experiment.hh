/**
 * @file
 * Experiment harness: builds a (topology, kernel, policy, workload)
 * stack from a declarative config, runs it, and returns the metrics the
 * paper reports — throughput, local/CXL traffic shares, residency
 * splits, vmstat counters and per-interval time series.
 *
 * Every bench binary (one per paper figure/table) is a thin loop over
 * runExperiment() calls — or, since the sweep engine landed, a single
 * SweepRunner::run() over a vector of configs (harness/sweep.hh).
 *
 * Policies and workloads are resolved by *name* through PolicyRegistry
 * (mm/policy_registry.hh) and WorkloadRegistry
 * (workloads/workload_registry.hh): this header deliberately includes
 * no policy headers, and adding a new policy or workload requires no
 * change to the harness.
 */

#ifndef TPP_HARNESS_EXPERIMENT_HH
#define TPP_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chameleon/chameleon.hh"
#include "harness/spec.hh"
#include "mem/memory_system.hh"
#include "mm/memcg/memcg.hh"
#include "mm/meminfo.hh"
#include "mm/migration/migration_config.hh"
#include "mm/policy_params.hh"
#include "mm/vmstat.hh"
#include "sim/types.hh"
#include "trace/sampler.hh"
#include "trace/trace.hh"
#include "workloads/arrival.hh"
#include "workloads/driver.hh"

namespace tpp {

class PlacementPolicy;

/**
 * One co-located tenant: a workload bound to its own memory cgroup.
 *
 * The textual form accepted by parseTenantsSpec (and the bench
 * binaries' --tenants flag) is `workload[:key=val]...` with tenants
 * separated by ';', e.g.
 *
 *     cache1:low=0.6:wss=65536;churn:budget=50
 *
 * keys: `wss` (pages; 0 = equal share of ExperimentConfig::wssPages),
 * `low` (memory.low floor as a fraction of the tenant's working set),
 * `budget` (per-cgroup migration budget, MB/s; 0 = unlimited),
 * `place` (none | local_only | cxl_only), `qps` (open-loop arrival
 * rate; 0 = closed loop), `arrival` (poisson | bursty | diurnal) and
 * `slo` (p99 latency target in microseconds; 0 = no SLO).
 */
struct TenantSpec {
    std::string workload;
    /** Working-set pages; 0 = equal share of the config's wssPages. */
    std::uint64_t wssPages = 0;
    /** memory.low floor as a fraction of this tenant's working set. */
    double lowFraction = 0.0;
    /** Per-cgroup migration token budget in MB/s; 0 = unlimited. */
    double budgetMBps = 0.0;
    /** Placement policy: "none", "local_only" or "cxl_only". */
    std::string placement = "none";
    /** Open-loop arrival process; disabled (qps 0) = closed loop. */
    OpenLoopSpec openLoop;
};

/**
 * Tail-latency summary of an open-loop run (qps > 0). Zero-initialised
 * and `enabled == false` for closed-loop runs, so exporters can keep
 * their output byte-identical when no one asked for open-loop traffic.
 */
struct OpenLoopResult {
    bool enabled = false;
    double offeredQps = 0.0;   //!< configured arrival rate
    std::string arrival;       //!< arrival process name
    std::uint64_t requests = 0; //!< completed in the window
    std::uint64_t dropped = 0;  //!< rejected at the queue cap
    double p50Ns = 0.0;
    double p99Ns = 0.0;
    double p999Ns = 0.0;
    double maxNs = 0.0;
    double meanNs = 0.0;
    /** Time-weighted mean request-queue depth over the window. */
    double meanQueueDepth = 0.0;
    std::uint64_t maxQueueDepth = 0;
    /** Requests per second that met the SLO (all completions when no
     *  SLO is set). */
    double goodputQps = 0.0;
    double sloP99Us = 0.0;     //!< configured target; 0 = none
    /** Fraction of offered requests that completed within the SLO.
     *  Drops count as misses. 1.0 when nothing was offered. */
    double sloAttainment = 1.0;
};

/** Per-tenant slice of an ExperimentResult. */
struct TenantResult {
    /** Cgroup name: "t<index>-<workload>". */
    std::string name;
    std::string workload;
    double throughput = 0.0; //!< ops per second, measurement window
    double meanAccessLatencyNs = 0.0;
    /** Fraction of the tenant's resident pages on the local tier. */
    double localResidency = 0.0;
    std::uint64_t pagesLocal = 0;
    std::uint64_t pagesTotal = 0;
    /** Tenant hot-set recall against its capacity share
     *  (cfg.measureHotness). */
    double hotSetRecall = 0.0;
    std::uint64_t hotSetPages = 0;
    /** memory.stat-style per-cgroup counters at end of run. */
    MemcgStats memcg;
    /** Open-loop tail-latency summary (tenant qps > 0). */
    OpenLoopResult openLoop;
};

/**
 * Declarative description of one experiment run.
 *
 * Derives from PolicyParams so per-policy parameter blocks read as
 * direct members (`cfg.tpp.scanBatch`, `cfg.autoTiering.hotWindow`);
 * the registry hands the PolicyParams slice to the selected policy's
 * factory.
 */
struct ExperimentConfig : PolicyParams {
    /** Registered workload name: "web", "cache1", "cache2", "dwh",
     *  "ycsb-a" … "ycsb-d". */
    std::string workload = "web";
    /** Working-set reservation in pages. */
    std::uint64_t wssPages = 1ULL << 17; // 512 MiB
    /** Single-node machine (the paper's "all from local" baseline). */
    bool allLocal = false;
    /**
     * Local share of total capacity for tiered machines: 2:1 configs
     * pass 2/3, 1:4 configs pass 1/5 (§6.2).
     */
    double localFraction = 2.0 / 3.0;
    /**
     * Explicit machine description; empty (the default) keeps the
     * canned two-node build from allLocal/localFraction, which stay
     * as sugar for the common shapes. The grammar is the PR 6 spec
     * form, one node per entry:
     *
     *     local:pages=N;cxl:pages=M:lat=150:bw=64;cxl-far:pages=K:lat=300
     *
     * The entry head names the node; `pages` is required. A node with
     * `lat` set is CPU-less (a lower tier) unless it also says `cpu=1`;
     * one without `lat` is a CPU node at the local latency point.
     * `bw` defaults to the local/CXL bandwidth constants. Distances
     * derive from the tier structure: 10 on the diagonal, and
     * 10 + 10 * max(hop_i, hop_j) otherwise, where a CPU node is hop 0
     * and the k-th distinct CPU-less latency class is hop k — the same
     * shape TopologyBuilder's canned machines use.
     */
    std::string topology;
    /** Total capacity relative to the working-set reservation. */
    double capacityHeadroom = 1.03;
    /** Registered policy name: "linux", "numa-balancing",
     *  "autotiering", "damon-reclaim", "tpp". */
    std::string policy = "tpp";
    /** sysctl name=value pairs applied before the run starts. */
    std::vector<std::pair<std::string, std::string>> sysctls;
    /**
     * MigrationEngine mode (mm/migration). The default is the
     * synchronous compat mode — bit-identical to the pre-engine
     * kernel; MigrationConfig::asyncEngine() turns on queueing,
     * transactions and bandwidth-coupled copy cost.
     */
    MigrationConfig migration;
    /** Simulated run length and measurement window. */
    Tick runUntil = 20 * kSecond;
    Tick measureFrom = 12 * kSecond;
    Tick sampleEvery = 100 * kMillisecond;
    std::uint64_t seed = 1;
    /** Attach a Chameleon profiler to the workload. */
    bool withChameleon = false;
    ChameleonConfig chameleon;
    /**
     * Kernel tracepoints (src/trace): record mm events into the ring.
     * Purely observational — results are bit-identical on or off.
     */
    bool traceEnabled = false;
    /** Ring capacity in records when tracing is enabled. */
    std::uint64_t traceCapacity = TraceBuffer::kDefaultCapacity;
    /** Attach a TimeSeriesSampler (vmstat deltas + per-node usage). */
    bool sampleSeries = false;
    /** Sampler period; 0 means "use sampleEvery". */
    Tick samplePeriod = 0;
    /**
     * Compute hot-set recall (src/hotness ablations): count every
     * page's accesses inside the measurement window, define the true
     * hot set as the top pages by count up to the local tier's
     * capacity, and report the fraction of it resident locally at the
     * end of the run. Purely observational.
     */
    bool measureHotness = false;
    /**
     * Multi-tenant co-location: one workload per entry, each in its own
     * memory cgroup (src/mm/memcg). Empty (the default) runs the
     * single-workload path above, bit-identical to a build without
     * cgroups. Tenant working sets default to equal shares of wssPages.
     */
    std::vector<TenantSpec> tenants;
    /**
     * Open-loop traffic for the single-workload path: requests arrive
     * on the configured process at `qps` regardless of service latency,
     * so queueing delay shows up in the tail instead of throttling the
     * offered load. Disabled (qps 0) keeps the closed-loop driver and
     * bit-identical results. Mutually exclusive with `tenants` — give
     * each tenant its own spec there instead.
     */
    OpenLoopSpec openLoop;
    /**
     * Address-space sharding (harness/shard.hh): worker threads ticking
     * shard regions in epoch lockstep. 1 (the default) keeps today's
     * single-stack engine and bit-identical results. Because regions
     * are fully isolated between epoch barriers, the thread count only
     * changes *when* a region computes, never *what*: for a fixed
     * region decomposition, every shard count produces identical
     * results (tests/test_shard.cc pins this).
     */
    std::uint32_t shards = 1;
    /**
     * Number of shard regions the VPN space is partitioned into; 0 (the
     * default) matches `shards`. Pin this while varying `shards` to
     * change parallelism without changing the simulated machine.
     */
    std::uint32_t shardRegions = 0;

    /** @return the region count the run will actually decompose into. */
    std::uint32_t
    effectiveShardRegions() const
    {
        return shardRegions ? shardRegions : shards;
    }

    /**
     * Check the config before building a machine for it: capacity and
     * fraction ranges, measurement-window ordering, tenant working-set
     * budgets, open-loop parameters and shard-region geometry.
     * runExperiment() fatals on a failed validation; SweepRunner
     * rejects just the offending config.
     */
    SpecResult<void> validate() const;
};

/**
 * Accounting of one sharded run (harness/shard.hh): region/worker
 * geometry plus what the epoch-boundary synchroniser observed and did.
 * All-zero (regions == 0) for unsharded runs.
 */
struct ShardStats {
    std::uint32_t regions = 0;  //!< address-space regions simulated
    std::uint32_t workers = 0;  //!< threads that ticked them
    std::uint64_t epochs = 0;   //!< epoch barriers crossed
    /** Region-epochs that ended below the local low watermark. */
    std::uint64_t regionLowWatermarkEpochs = 0;
    /** Epochs where at least one region was below its low watermark. */
    std::uint64_t pressureEpochs = 0;
    /** MB/s of migration-admission budget moved between regions by the
     *  epoch synchroniser (cfg.migration.rateLimitMBps > 0). */
    double rebalancedMBps = 0.0;
};

/**
 * Per-node slice of an ExperimentResult: end-of-run residency and
 * measurement-window traffic for one memory node. Populated only on
 * machines with more than two nodes or an explicit cfg.topology, so
 * two-node exports stay byte-identical.
 */
struct NodeResult {
    std::string name;       //!< NodeProfile name ("local", "cxl0", ...)
    unsigned tierRank = 0;  //!< 0 = toptier
    std::uint64_t capacityPages = 0;
    std::uint64_t anonPages = 0;
    std::uint64_t filePages = 0;
    std::uint64_t freePages = 0;
    /** Fraction of measurement-window accesses served by this node. */
    double trafficShare = 0.0;
};

/** Everything a figure/table needs from one run. */
struct ExperimentResult {
    std::string workload;
    std::string policy;
    double throughput = 0.0;          //!< ops per second
    double meanAccessLatencyNs = 0.0;
    double localTrafficShare = 0.0;   //!< fraction of accesses, window
    double cxlTrafficShare = 0.0;
    /** End-of-run residency: fraction of each type on the local node. */
    double anonLocalResidency = 0.0;
    double fileLocalResidency = 0.0;
    VmStat vmstat;
    /** End-of-run /proc/meminfo-style snapshot. */
    MemInfo meminfo;
    std::vector<IntervalSample> samples;
    /** Tracepoint records, oldest first (cfg.traceEnabled). */
    std::vector<TraceRecord> trace;
    /** Ring accounting for the run: total fired / overwritten. */
    std::uint64_t traceEmitted = 0;
    std::uint64_t traceDropped = 0;
    /** TimeSeriesSampler observations (cfg.sampleSeries). */
    std::vector<TimeSeriesPoint> series;
    std::vector<ChameleonIntervalStats> chameleonIntervals;
    double chameleonHotFraction = 0.0;
    double chameleonHotFractionAnon = 0.0;
    double chameleonHotFractionFile = 0.0;
    /** Hot-set recall against the measured truth (cfg.measureHotness). */
    double hotSetRecall = 0.0;
    /** Size of the measured true hot set behind hotSetRecall. */
    std::uint64_t hotSetPages = 0;
    /** Per-node rows, node-id order; empty on plain two-node machines
     *  (see NodeResult). */
    std::vector<NodeResult> nodes;
    /** Per-tenant rows, in cfg.tenants order (empty otherwise). */
    std::vector<TenantResult> tenants;
    /** Open-loop tail-latency summary (cfg.openLoop / tenant qps);
     *  merged across tenants on the multi-tenant path. */
    OpenLoopResult openLoop;
    /** Shard-engine accounting (zero for unsharded runs). */
    ShardStats shard;
    /**
     * Non-empty when the run was rejected without being simulated
     * (SweepRunner::run on a config whose validate() failed). All
     * metric fields are zero in that case.
     */
    std::string error;

    /** @return true when the run was rejected, not simulated. */
    bool failed() const { return !error.empty(); }
};

/**
 * Parse a --tenants spec (see TenantSpec) into tenant descriptions.
 * Errors come back as values naming the offending token; nothing is
 * printed and nothing exits.
 */
SpecResult<std::vector<TenantSpec>> parseTenants(const std::string &spec);

/** Compatibility wrapper over parseTenants(); fatal() on bad input. */
std::vector<TenantSpec> parseTenantsSpec(const std::string &spec);

/**
 * Parse a --topology spec (see ExperimentConfig::topology) into a
 * machine description. Errors come back as values naming the offending
 * token; nothing is printed and nothing exits.
 */
SpecResult<MemoryConfig> parseTopology(const std::string &spec);

/**
 * Instantiate the config's policy via PolicyRegistry. Unknown names
 * fatal() with the list of registered policies.
 */
std::unique_ptr<PlacementPolicy> makePolicy(const ExperimentConfig &cfg);

/** Run one experiment to completion. */
ExperimentResult runExperiment(const ExperimentConfig &cfg);

/**
 * Run `cfg` against its all-local twin and report throughput relative
 * to it (the paper's "performance w.r.t. all-from-local" metric).
 *
 * The twin runs through the process-wide BaselineCache
 * (harness/sweep.hh): comparing N policies against the same baseline
 * simulates the baseline once, not N times.
 */
double relativeToAllLocal(const ExperimentConfig &cfg,
                          ExperimentResult *out = nullptr,
                          ExperimentResult *baseline_out = nullptr);

/** Parse a "L:C" capacity ratio ("2:1", "1:4") into a local fraction.
 *  Compatibility wrapper over parseRatioSpec(); fatal() on bad input. */
double parseRatio(const std::string &ratio);

} // namespace tpp

#endif // TPP_HARNESS_EXPERIMENT_HH
