file(REMOVE_RECURSE
  "CMakeFiles/fig10_throughput_sensitivity.dir/fig10_throughput_sensitivity.cpp.o"
  "CMakeFiles/fig10_throughput_sensitivity.dir/fig10_throughput_sensitivity.cpp.o.d"
  "fig10_throughput_sensitivity"
  "fig10_throughput_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_throughput_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
