/**
 * @file
 * Memory access latency model.
 *
 * Latency for an access = node idle latency inflated by a queueing term
 * when the node's bandwidth utilisation is high. The paper's Figure 2
 * motivates exactly this shape: tiers differ in idle latency, and loaded
 * latency diverges further as bandwidth saturates.
 */

#ifndef TPP_MEM_LATENCY_HH
#define TPP_MEM_LATENCY_HH

#include "mem/node.hh"
#include "sim/types.hh"

namespace tpp {

/** Tunables for the latency model. */
struct LatencyConfig {
    /**
     * Queueing knee: effective latency = idle * (1 + k * u^4 / (1 - u)),
     * with utilisation u capped at `maxUtil`. The quartic keeps the
     * inflation negligible below ~60 % utilisation, matching measured
     * loaded-latency curves.
     */
    double queueFactor = 0.5;
    double maxUtil = 0.95;
};

/**
 * Stateless functional core of the latency model (node holds the
 * utilisation state).
 */
class LatencyModel
{
  public:
    explicit LatencyModel(LatencyConfig cfg = {}) : cfg_(cfg) {}

    /**
     * @return latency in nanoseconds for one cache-line access served by
     *         `node` at time `now`, including load-dependent inflation.
     */
    double accessLatencyNs(const MemoryNode &node, Tick now) const;

    /** Pure function used by tests: inflate `idle_ns` at utilisation u. */
    double inflate(double idle_ns, double utilization) const;

    /**
     * @return time in nanoseconds to move `bytes` through `node` at
     *         time `now`: the idle transfer time (bytes / peak
     *         bandwidth) inflated by the node's current utilisation.
     */
    double transferLatencyNs(const MemoryNode &node, Tick now,
                             std::uint64_t bytes) const;

    /**
     * Cost of copying one page from `src` to `dst` at time `now`: the
     * read leg plus the write leg, each inflated by its node's
     * bandwidth utilisation. This is the MigrationEngine's
     * bandwidth-contention copy cost (vs the flat MmCosts constant).
     */
    double pageCopyLatencyNs(const MemoryNode &src, const MemoryNode &dst,
                             Tick now) const;

  private:
    LatencyConfig cfg_;
};

} // namespace tpp

#endif // TPP_MEM_LATENCY_HH
