/**
 * @file
 * NUMA Balancing (AutoNUMA) baseline (§4.2).
 *
 * A kernel task periodically samples pages on *every* node — including
 * the local one, which on a tiered system is pure overhead — by making
 * their PTEs prot_none. A hint fault from a remote page triggers an
 * instant promotion attempt towards the faulting CPU's node, gated on
 * the target having lots of free memory (the high watermark). Under
 * local-node pressure promotions therefore stop, which is the failure
 * mode the paper measures in §6.4.
 */

#ifndef TPP_POLICY_NUMA_BALANCING_HH
#define TPP_POLICY_NUMA_BALANCING_HH

#include "mm/placement_policy.hh"
#include "mm/policy_params.hh"
#include "sim/types.hh"

namespace tpp {

// NumaBalancingConfig lives in mm/policy_params.hh with the other
// policy parameter blocks.

/**
 * Linux NUMA Balancing on a tiered memory system.
 */
class NumaBalancingPolicy : public PlacementPolicy
{
  public:
    explicit NumaBalancingPolicy(NumaBalancingConfig cfg = {})
        : cfg_(cfg)
    {
    }

    std::string name() const override { return "numa-balancing"; }

    void start() override;

    /** NUMA balancing samples every node, local ones included. */
    bool scanNode(NodeId nid) const override;

    double onHintFault(Pfn pfn, NodeId task_nid) override;

  private:
    void scanTick();

    NumaBalancingConfig cfg_;
};

} // namespace tpp

#endif // TPP_POLICY_NUMA_BALANCING_HH
