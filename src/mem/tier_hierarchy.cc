#include "mem/tier_hierarchy.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace tpp {

TierHierarchy::TierHierarchy(
    const std::vector<NodeProfile> &profiles,
    const std::vector<std::vector<std::uint32_t>> &distances)
{
    const std::size_t n = profiles.size();
    if (n == 0)
        tpp_fatal("TierHierarchy needs at least one node");
    rank_.assign(n, 0);

    // CPU-less latency classes, ascending: each distinct idle latency
    // is one tier below the toptier. Grouping by latency (not by node)
    // keeps two equal CXL expanders peers of one tier — demotion goes
    // *past* them, never between them.
    std::vector<double> latencies;
    for (std::size_t i = 0; i < n; ++i)
        if (profiles[i].cpuLess)
            latencies.push_back(profiles[i].idleLatencyNs);
    std::sort(latencies.begin(), latencies.end());
    latencies.erase(std::unique(latencies.begin(), latencies.end()),
                    latencies.end());

    for (std::size_t i = 0; i < n; ++i) {
        if (!profiles[i].cpuLess)
            continue; // CPU-attached: toptier, rank 0
        const auto it = std::lower_bound(latencies.begin(),
                                         latencies.end(),
                                         profiles[i].idleLatencyNs);
        rank_[i] = 1 + static_cast<unsigned>(it - latencies.begin());
    }

    tiers_.resize(1 + latencies.size());
    for (std::size_t i = 0; i < n; ++i) {
        tiers_[rank_[i]].push_back(static_cast<NodeId>(i));
        if (rank_[i] > 0)
            belowTop_.push_back(static_cast<NodeId>(i));
    }
    // A machine made only of CPU-less nodes would leave the toptier
    // empty; MemorySystem already rejects that shape, but guard the
    // invariant here too so the class stands alone.
    if (tiers_.front().empty())
        tpp_fatal("TierHierarchy needs at least one CPU-attached node");

    // Per-node demotion order: strictly-lower-tier nodes sorted by
    // distance. The stable sort keeps ascending node id as the
    // distance tiebreak, matching the historical fallback-order
    // construction bit-for-bit.
    demotionOrder_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<NodeId> below;
        for (std::size_t j = 0; j < n; ++j)
            if (rank_[j] > rank_[i])
                below.push_back(static_cast<NodeId>(j));
        std::stable_sort(below.begin(), below.end(),
                         [&distances, i](NodeId a, NodeId b) {
                             return distances[i][a] < distances[i][b];
                         });
        demotionOrder_[i] = std::move(below);
    }
}

} // namespace tpp
