#include "hotness/hotness_source.hh"

#include <map>
#include <sstream>

#include "hotness/chameleon_source.hh"
#include "hotness/damon_source.hh"
#include "hotness/hint_fault_source.hh"
#include "hotness/neoprof_source.hh"
#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

bool
HotnessSource::cxlResident(Pfn pfn) const
{
    if (pfn == kInvalidPfn ||
        pfn >= static_cast<Pfn>(kernel_->mem().totalFrames()))
        return false;
    const PageFrame &frame = kernel_->mem().frame(pfn);
    if (frame.isFree())
        return false;
    return !kernel_->mem().tiers().isToptier(frame.nid);
}

namespace {

using SourceFactory =
    std::unique_ptr<HotnessSource> (*)(const HotnessConfig &);

/** std::map: names() and error listings come out sorted. */
const std::map<std::string, SourceFactory> &
sourceFactories()
{
    static const std::map<std::string, SourceFactory> factories = {
        {"hintfault",
         [](const HotnessConfig &cfg) -> std::unique_ptr<HotnessSource> {
             return std::make_unique<HintFaultSource>(cfg);
         }},
        {"damon",
         [](const HotnessConfig &cfg) -> std::unique_ptr<HotnessSource> {
             return std::make_unique<DamonSource>(cfg);
         }},
        {"chameleon",
         [](const HotnessConfig &cfg) -> std::unique_ptr<HotnessSource> {
             return std::make_unique<ChameleonSource>(cfg);
         }},
        {"neoprof",
         [](const HotnessConfig &cfg) -> std::unique_ptr<HotnessSource> {
             return std::make_unique<NeoProfSource>(cfg);
         }},
    };
    return factories;
}

} // namespace

std::unique_ptr<HotnessSource>
makeHotnessSource(const HotnessConfig &cfg)
{
    const auto &factories = sourceFactories();
    const auto it = factories.find(cfg.source);
    if (it == factories.end()) {
        std::ostringstream known;
        for (const auto &[name, factory] : factories)
            known << ' ' << name;
        tpp_fatal("unknown hotness source '%s'; known sources:%s",
                  cfg.source.c_str(), known.str().c_str());
    }
    return it->second(cfg);
}

std::vector<std::string>
hotnessSourceNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : sourceFactories())
        names.push_back(name);
    return names;
}

} // namespace tpp
