#include "harness/shard.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/thread_pool.hh"
#include "hotness/hotness_policy.hh"
#include "mem/node.hh"
#include "mm/kernel.hh"
#include "mm/meminfo.hh"
#include "sim/logging.hh"
#include "workloads/workload_registry.hh"

namespace tpp {

namespace {

/** Same machine-build math as the unsharded path, on a region's wss. */
MemoryConfig
regionMemConfig(const ExperimentConfig &cfg, std::uint64_t wss)
{
    const std::uint64_t total_pages = static_cast<std::uint64_t>(
        static_cast<double>(wss) * cfg.capacityHeadroom);
    if (cfg.allLocal)
        return TopologyBuilder::allLocal(total_pages);
    const std::uint64_t local_pages = static_cast<std::uint64_t>(
        static_cast<double>(total_pages) * cfg.localFraction);
    return TopologyBuilder::cxlSystem(local_pages,
                                      total_pages - local_pages);
}

/**
 * One shard region: a vertical slice of the machine with its own clock.
 * Nothing in here is touched by any other region between epoch
 * barriers; the epoch loop only ever calls eq.run() concurrently.
 */
struct ShardRegion {
    EventQueue eq;
    MemorySystem mem;
    Kernel kernel;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<WorkloadDriver> driver;
    /** PgMigrate{Success,Fail} at the last epoch barrier. */
    std::uint64_t lastMigrations = 0;
    /** Current slice of the machine-wide admission budget, MB/s. */
    double budgetMBps = 0.0;

    ShardRegion(const ExperimentConfig &cfg, std::uint64_t wss,
                std::uint64_t seed)
        : mem(regionMemConfig(cfg, wss)),
          kernel(mem, eq, makePolicy(cfg), MmCosts{}, cfg.migration)
    {
        for (const auto &[name, value] : cfg.sysctls) {
            if (!kernel.sysctl().set(name, value))
                tpp_fatal("sysctl %s=%s rejected", name.c_str(),
                          value.c_str());
        }
        workload = WorkloadRegistry::instance().make(
            WorkloadSpec{cfg.workload, wss, seed});
        workload->setTaskNode(mem.cpuNodes().front());
        if (auto *hotness =
                dynamic_cast<HotnessPolicy *>(&kernel.policy())) {
            if (AccessObserver observer = hotness->accessObserver())
                workload->setObserver(std::move(observer));
        }
        DriverConfig driver_cfg;
        driver_cfg.runUntil = cfg.runUntil;
        driver_cfg.measureFrom = cfg.measureFrom;
        driver_cfg.sampleEvery = cfg.sampleEvery;
        driver = std::make_unique<WorkloadDriver>(kernel, *workload,
                                                  driver_cfg);
    }

    /** Migration attempts so far (admission-rebalance demand signal). */
    std::uint64_t
    migrations() const
    {
        return kernel.vmstat().get(Vm::PgMigrateSuccess) +
               kernel.vmstat().get(Vm::PgMigrateFail);
    }

    void
    setAdmissionBudget(double mbps)
    {
        // %.17g round-trips a double exactly; %.9g used to shave the
        // low mantissa bits here, so the budgets the kernels actually
        // ran under no longer summed to the machine-wide limit.
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", mbps);
        if (!kernel.sysctl().set("vm.migration_rate_limit_mbps", buf))
            tpp_fatal("shard admission rebalance rejected (%s MB/s)", buf);
        budgetMBps = mbps;
    }
};

/**
 * Serial, fixed-order epoch-boundary synchronisation: watermark
 * pressure accounting and (when a machine-wide admission budget is
 * configured) demand-weighted redistribution of that budget. Runs with
 * every region quiescent, so it is deterministic regardless of how many
 * workers ticked the regions.
 */
void
epochSync(const std::vector<std::unique_ptr<ShardRegion>> &regions,
          double global_budget, ShardStats &stats)
{
    stats.epochs++;
    bool any_low = false;
    for (const auto &region : regions) {
        const MemoryNode &local =
            region->mem.node(region->mem.cpuNodes().front());
        if (!local.aboveWatermark(local.watermarks().low)) {
            stats.regionLowWatermarkEpochs++;
            any_low = true;
        }
    }
    if (any_low)
        stats.pressureEpochs++;

    if (global_budget <= 0.0)
        return;

    // Migration admission: split the machine-wide budget by each
    // region's migration demand over the last epoch. A 10% floor of
    // the equal share keeps a quiet region from being starved to zero
    // the moment it wakes up; shardBudgetShares() guarantees the
    // shares sum to exactly the machine-wide budget.
    std::vector<double> demand(regions.size());
    for (std::size_t r = 0; r < regions.size(); ++r) {
        const std::uint64_t now = regions[r]->migrations();
        demand[r] = static_cast<double>(now - regions[r]->lastMigrations);
        regions[r]->lastMigrations = now;
    }
    const std::vector<double> shares =
        shardBudgetShares(demand, global_budget);
    for (std::size_t r = 0; r < regions.size(); ++r) {
        stats.rebalancedMBps +=
            std::abs(shares[r] - regions[r]->budgetMBps) / 2.0;
        regions[r]->setAdmissionBudget(shares[r]);
    }
}

/** Sum per-region interval samples into one machine-wide series. */
std::vector<IntervalSample>
mergeSamples(const std::vector<std::unique_ptr<ShardRegion>> &regions)
{
    std::size_t n = 0;
    for (const auto &region : regions)
        n = std::max(n, region->driver->samples().size());
    std::vector<IntervalSample> merged(n);
    for (std::size_t k = 0; k < n; ++k) {
        IntervalSample &out = merged[k];
        double share_weight = 0.0;
        for (const auto &region : regions) {
            const auto &samples = region->driver->samples();
            if (k >= samples.size())
                continue;
            const IntervalSample &s = samples[k];
            out.tick = s.tick;
            out.promotionRate += s.promotionRate;
            out.demotionRate += s.demotionRate;
            out.localAllocRate += s.localAllocRate;
            out.localFree += s.localFree;
            out.throughput += s.throughput;
            out.queueDepth += s.queueDepth;
            out.anonResident += s.anonResident;
            out.fileResident += s.fileResident;
            out.anonOnLocal += s.anonOnLocal;
            out.fileOnLocal += s.fileOnLocal;
            out.localShare += s.localShare * s.throughput;
            share_weight += s.throughput;
        }
        out.localShare = share_weight > 0.0
                             ? out.localShare / share_weight
                             : 0.0;
    }
    return merged;
}

} // namespace

std::vector<double>
shardBudgetShares(const std::vector<double> &demand, double global_budget)
{
    const std::size_t n = demand.size();
    std::vector<double> shares(n, 0.0);
    if (n == 0 || global_budget <= 0.0)
        return shares;
    if (n == 1) {
        // One region owns the whole machine budget; the floor/pool
        // arithmetic below would only round it.
        shares[0] = global_budget;
        return shares;
    }
    double total_demand = 0.0;
    for (const double d : demand)
        total_demand += d;
    const double count = static_cast<double>(n);
    const double floor_share = 0.1 * global_budget / count;
    const double weighted_pool = 0.9 * global_budget;
    double handed_out = 0.0;
    for (std::size_t r = 0; r + 1 < n; ++r) {
        const double weight =
            total_demand > 0.0 ? demand[r] / total_demand : 1.0 / count;
        shares[r] = floor_share + weighted_pool * weight;
        handed_out += shares[r];
    }
    // The last region takes whatever is left rather than its own
    // independently rounded slice: summing n independently rounded
    // doubles drifts off the budget by a few ulps per epoch, and those
    // ulps compound into kernels collectively running over (or under)
    // the configured machine-wide limit. Every region's exact share is
    // at least the floor, far above rounding noise, so the clamp below
    // never fires in practice — it only guards a pathological budget.
    shares[n - 1] = std::max(0.0, global_budget - handed_out);
    return shares;
}

ExperimentResult
runShardedExperiment(const ExperimentConfig &cfg)
{
    const std::uint32_t region_count = cfg.effectiveShardRegions();
    const std::uint32_t workers = std::min(cfg.shards, region_count);
    if (region_count < 2)
        tpp_fatal("runShardedExperiment called with %u region(s)",
                  region_count);

    // Build the region stacks. Region r owns an equal slice of the VPN
    // space (remainder pages go to the lowest regions, so the split is
    // deterministic) with a decorrelated workload seed.
    std::vector<std::unique_ptr<ShardRegion>> regions;
    regions.reserve(region_count);
    for (std::uint32_t r = 0; r < region_count; ++r) {
        const std::uint64_t wss =
            cfg.wssPages / region_count +
            (r < cfg.wssPages % region_count ? 1 : 0);
        const std::uint64_t seed =
            cfg.seed + r * 0x9e3779b97f4a7c15ULL;
        regions.push_back(
            std::make_unique<ShardRegion>(cfg, wss, seed));
    }

    ExperimentResult result;
    result.shard.regions = region_count;
    result.shard.workers = workers;

    // A configured migration rate limit is machine-wide: start every
    // region on an equal slice; epochSync() rebalances it by demand.
    const double global_budget = cfg.migration.rateLimitMBps;
    if (global_budget > 0.0) {
        for (auto &region : regions) {
            region->setAdmissionBudget(
                global_budget / static_cast<double>(region_count));
        }
    }

    for (auto &region : regions) {
        region->kernel.start();
        region->driver->start();
    }

    std::unique_ptr<ThreadPool> pool;
    if (workers > 1)
        pool = std::make_unique<ThreadPool>(workers);

    // Epoch lockstep: every region advances to the same horizon, then
    // the serial synchroniser runs over the quiescent machine. Stepping
    // an isolated EventQueue in epochs is exactly equivalent to one
    // long run — events still fire in (tick, insertion-order) order —
    // so the epoch granularity never changes a region's own results.
    const Tick epoch = cfg.sampleEvery;
    Tick now = 0;
    while (now < cfg.runUntil) {
        const Tick target = std::min(now + epoch, cfg.runUntil);
        if (pool) {
            for (auto &region : regions) {
                ShardRegion *raw = region.get();
                pool->submit([raw, target] { raw->eq.run(target); });
            }
            pool->wait();
        } else {
            for (auto &region : regions)
                region->eq.run(target);
        }
        now = target;
        epochSync(regions, global_budget, result.shard);
    }

    // Harvest: identical fields to the unsharded path, aggregated over
    // regions in fixed order.
    result.workload = cfg.workload;
    result.policy = cfg.policy;
    double latency_weight = 0.0;
    double traffic_weight = 0.0;
    double traffic_local = 0.0;
    for (const auto &region : regions) {
        const WorkloadDriver &driver = *region->driver;
        result.throughput += driver.throughput();
        const double ops = static_cast<double>(driver.measuredOps());
        result.meanAccessLatencyNs += driver.meanAccessLatencyNs() * ops;
        latency_weight += ops;
        // Sum every toptier node's share: a multi-socket region's
        // socket-1 traffic is local too.
        double local_share = 0.0;
        for (NodeId nid : region->mem.tiers().toptierNodes())
            local_share += driver.trafficShare(nid);
        traffic_local += local_share * ops;
        traffic_weight += ops;
    }
    if (latency_weight > 0.0)
        result.meanAccessLatencyNs /= latency_weight;
    result.localTrafficShare =
        traffic_weight > 0.0 ? traffic_local / traffic_weight : 0.0;
    result.cxlTrafficShare = 1.0 - result.localTrafficShare;
    result.samples = mergeSamples(regions);

    for (std::size_t i = 0; i < kNumVmCounters; ++i) {
        for (const auto &region : regions) {
            result.vmstat.inc(static_cast<Vm>(i),
                              region->kernel.vmstat().get(
                                  static_cast<Vm>(i)));
        }
    }
    for (const auto &region : regions) {
        const MemInfo info = collectMemInfo(region->kernel);
        result.meminfo.totalPages += info.totalPages;
        result.meminfo.totalFree += info.totalFree;
        result.meminfo.swapUsedSlots += info.swapUsedSlots;
        result.meminfo.nodes.insert(result.meminfo.nodes.end(),
                                    info.nodes.begin(),
                                    info.nodes.end());
    }

    for (PageType type : {PageType::Anon, PageType::File}) {
        std::uint64_t on_local = 0;
        std::uint64_t total = 0;
        for (const auto &region : regions) {
            // Walk every node: toptier pages feed the numerator, all
            // resident pages the denominator, so no socket drops out.
            for (std::size_t i = 0; i < region->mem.numNodes(); ++i) {
                const NodeId nid = static_cast<NodeId>(i);
                const std::uint64_t resident =
                    region->kernel.residentPages(nid, type);
                total += resident;
                if (region->mem.tiers().isToptier(nid))
                    on_local += resident;
            }
        }
        const double share =
            total ? static_cast<double>(on_local) /
                        static_cast<double>(total)
                  : 0.0;
        if (type == PageType::Anon)
            result.anonLocalResidency = share;
        else
            result.fileLocalResidency = share;
    }
    return result;
}

} // namespace tpp
