#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace tpp {

namespace {
bool g_verbose = true;
} // namespace

void
setLogVerbose(bool verbose)
{
    g_verbose = verbose;
}

bool
logVerbose()
{
    return g_verbose;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (!g_verbose)
        return;
    std::fprintf(stdout, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stdout, fmt, args);
    va_end(args);
    std::fprintf(stdout, "\n");
}

} // namespace tpp
