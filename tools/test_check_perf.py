#!/usr/bin/env python3
"""Unit tests for tools/check_perf.py (run by ctest as check_perf_py).

Covers the counter-direction handling — a rate counter (pages/sec,
higher is better) must fail the gate when it drops and pass when it
rises, a cost counter (direction "lower", e.g. ns/window) the other
way around — plus --update re-baselining.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK_PERF = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "check_perf.py")


def results_json(value_by_name):
    """A minimal micro_mm_ops --benchmark_format=json document."""
    return {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "counter": value}
            for name, value in value_by_name.items()
        ]
    }


def baseline_json(spec_by_name):
    return {"counters": spec_by_name}


class CheckPerfTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name, document):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as handle:
            json.dump(document, handle)
        return path

    def run_gate(self, results, baseline, *extra):
        results_path = self.write("results.json", results)
        baseline_path = self.write("baseline.json", baseline)
        proc = subprocess.run(
            [sys.executable, CHECK_PERF, results_path, baseline_path,
             *extra],
            capture_output=True, text=True)
        return proc, baseline_path

    def test_rate_counter_regresses_downward(self):
        # A 30% throughput loss on a higher-is-better counter must go
        # red past the default 25% fail threshold.
        baseline = baseline_json(
            {"BM_Rate": {"counter": "counter", "value": 1000.0}})
        proc, _ = self.run_gate(results_json({"BM_Rate": 700.0}),
                                baseline)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("::error::", proc.stdout)

    def test_rate_counter_improvement_passes(self):
        baseline = baseline_json(
            {"BM_Rate": {"counter": "counter", "value": 1000.0}})
        proc, _ = self.run_gate(results_json({"BM_Rate": 1300.0}),
                                baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("consider re-baselining", proc.stdout)

    def test_cost_counter_regresses_upward(self):
        # direction "lower": the same +30% that passes for a rate
        # counter is a regression for a cost counter.
        baseline = baseline_json(
            {"BM_Cost": {"counter": "counter", "value": 1000.0,
                         "direction": "lower"}})
        proc, _ = self.run_gate(results_json({"BM_Cost": 1300.0}),
                                baseline)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("::error::", proc.stdout)

    def test_cost_counter_improvement_passes(self):
        baseline = baseline_json(
            {"BM_Cost": {"counter": "counter", "value": 1000.0,
                         "direction": "lower"}})
        proc, _ = self.run_gate(results_json({"BM_Cost": 700.0}),
                                baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout)

    def test_unknown_direction_is_an_error(self):
        baseline = baseline_json(
            {"BM_Bad": {"counter": "counter", "value": 1000.0,
                        "direction": "sideways"}})
        proc, _ = self.run_gate(results_json({"BM_Bad": 1000.0}),
                                baseline)
        self.assertEqual(proc.returncode, 1, proc.stdout)
        self.assertIn("unknown direction", proc.stdout)

    def test_warn_band_does_not_fail(self):
        # 15% down: past --warn-pct 10 but inside --fail-pct 25.
        baseline = baseline_json(
            {"BM_Rate": {"counter": "counter", "value": 1000.0}})
        proc, _ = self.run_gate(results_json({"BM_Rate": 850.0}),
                                baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("::warning::", proc.stdout)

    def test_update_rebaselines_and_keeps_direction(self):
        baseline = baseline_json(
            {"BM_Rate": {"counter": "counter", "value": 1000.0},
             "BM_Cost": {"counter": "counter", "value": 50.0,
                         "direction": "lower"}})
        proc, baseline_path = self.run_gate(
            results_json({"BM_Rate": 700.0, "BM_Cost": 80.0}),
            baseline, "--update")
        self.assertEqual(proc.returncode, 0, proc.stdout)
        with open(baseline_path) as handle:
            updated = json.load(handle)
        self.assertEqual(updated["counters"]["BM_Rate"]["value"], 700.0)
        self.assertEqual(updated["counters"]["BM_Cost"]["value"], 80.0)
        self.assertEqual(updated["counters"]["BM_Cost"]["direction"],
                         "lower")
        # The re-baselined file must pass its own gate.
        proc2, _ = self.run_gate(
            results_json({"BM_Rate": 700.0, "BM_Cost": 80.0}), updated)
        self.assertEqual(proc2.returncode, 0, proc2.stdout)

    def test_missing_benchmark_fails(self):
        baseline = baseline_json(
            {"BM_Gone": {"counter": "counter", "value": 1000.0}})
        proc, _ = self.run_gate(results_json({}), baseline)
        self.assertEqual(proc.returncode, 1, proc.stdout)


if __name__ == "__main__":
    unittest.main()
