file(REMOVE_RECURSE
  "libtpp_core.a"
)
