file(REMOVE_RECURSE
  "libtpp_mm.a"
)
