# Empty compiler generated dependencies file for tiering_lab.
# This may be replaced when dependencies are built.
