/**
 * @file
 * Tests for the extension features beyond the paper's core mechanism:
 * the promotion rate limit (upstream follow-up knob) and Chameleon's
 * multi-bit frequency mode, plus failure-injection scenarios (swap
 * exhaustion, full machines, OOM behaviour).
 */

#include "chameleon/chameleon.hh"
#include "core/tpp_policy.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(PromoteRateLimit, DisabledByDefault)
{
    TppConfig cfg;
    TestMachine m(512, 512, std::make_unique<TppPolicy>(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 8, PageType::Anon, "a");
    for (int i = 0; i < 8; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, m.cxl());
    for (int round = 0; round < 2; ++round) {
        m.kernel.sampleNode(m.cxl(), 8);
        for (int i = 0; i < 8; ++i)
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    }
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 8u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailRateLimit), 0u);
}

TEST(PromoteRateLimit, CapsPromotionBurst)
{
    TppConfig cfg;
    // ~0.08 MB burst = 2 pages of burst allowance.
    cfg.promoteRateLimitMBps = 0.08;
    TestMachine m(512, 512, std::make_unique<TppPolicy>(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 16, PageType::Anon, "a");
    for (int i = 0; i < 16; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, m.cxl());
    for (int round = 0; round < 2; ++round) {
        m.kernel.sampleNode(m.cxl(), 16);
        for (int i = 0; i < 16; ++i)
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    }
    // Burst allows only ~2 promotions at t=0; the rest are limited.
    EXPECT_LE(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 3u);
    EXPECT_GT(m.kernel.vmstat().get(Vm::PgPromoteFailRateLimit), 0u);
}

TEST(PromoteRateLimit, TokensRefillOverTime)
{
    TppConfig cfg;
    cfg.promoteRateLimitMBps = 0.08; // ~20 pages/s
    TestMachine m(512, 512, std::make_unique<TppPolicy>(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 4, PageType::Anon, "a");
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, m.cxl());
    // Activate all, then drain the bucket.
    m.kernel.sampleNode(m.cxl(), 4);
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    m.kernel.sampleNode(m.cxl(), 4);
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    const std::uint64_t early =
        m.kernel.vmstat().get(Vm::PgPromoteSuccess);
    // A second later the bucket has refilled for the stragglers.
    m.eq.run(m.eq.now() + kSecond);
    m.kernel.sampleNode(m.cxl(), 4);
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    EXPECT_GT(m.kernel.vmstat().get(Vm::PgPromoteSuccess), early);
}

TEST(ChameleonMultiBit, FrequencyCountsSaturate)
{
    TestMachine m;
    ChameleonConfig cfg;
    cfg.samplePeriod = 1;
    cfg.dutyCycle = false;
    cfg.interval = 100 * kMillisecond;
    cfg.bitsPerInterval = 4;
    cfg.frequentThreshold = 3;
    Chameleon cham(m.kernel, cfg);
    EXPECT_EQ(cham.historyIntervals(), 16u);
    cham.start();
    auto observer = cham.observer();

    const Vpn base = m.populate(4, PageType::Anon);
    // Page 0: 5 samples (frequent); page 1: 1 sample; others: none.
    for (int i = 0; i < 5; ++i)
        observer(AccessRecord{m.asid, base, AccessKind::Load, 0});
    observer(AccessRecord{m.asid, base + 1, AccessKind::Load, 0});
    m.eq.run(150 * kMillisecond);

    ASSERT_GE(cham.intervals().size(), 1u);
    const auto &iv = cham.intervals().front();
    EXPECT_EQ(iv.touchedTotal, 2u);
    EXPECT_EQ(iv.frequentTotal, 1u);
}

TEST(ChameleonMultiBit, GapUsesIntervalFields)
{
    TestMachine m;
    ChameleonConfig cfg;
    cfg.samplePeriod = 1;
    cfg.dutyCycle = false;
    cfg.interval = 100 * kMillisecond;
    cfg.bitsPerInterval = 2;
    Chameleon cham(m.kernel, cfg);
    cham.start();
    auto observer = cham.observer();
    const Vpn base = m.populate(1, PageType::Anon);
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(210 * kMillisecond); // two interval boundaries
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(310 * kMillisecond);
    EXPECT_DOUBLE_EQ(cham.reaccessCdf(1), 0.0);
    EXPECT_DOUBLE_EQ(cham.reaccessCdf(2), 1.0);
}

TEST(ChameleonMultiBitDeathTest, BadBitsRejected)
{
    TestMachine m;
    ChameleonConfig cfg;
    cfg.bitsPerInterval = 3; // does not divide 64
    EXPECT_DEATH({ Chameleon cham(m.kernel, cfg); }, "bitsPerInterval");
}

TEST(FailureInjection, SwapExhaustionStopsReclaimNotTheKernel)
{
    SwapProfile swap;
    swap.capacityPages = 4;
    MemoryConfig mem_cfg = TopologyBuilder::allLocal(64);
    mem_cfg.swap = swap;
    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, std::make_unique<DefaultLinuxPolicy>());
    kernel.start();
    const Asid asid = kernel.createProcess();
    const Vpn base = kernel.mmap(asid, 32, PageType::Anon, "a");
    for (int i = 0; i < 32; ++i)
        kernel.access(asid, base + i, AccessKind::Store, 0);
    for (int i = 0; i < 32; ++i) {
        PageFrame &f = mem.frame(kernel.addressSpace(asid).pte(base + i).pfn);
        f.clearFlag(PageFrame::FlagReferenced);
    }
    auto [reclaimed, cost] = kernel.directReclaim(0, 16);
    // Only 4 swap slots exist: reclaim progress caps there.
    EXPECT_EQ(reclaimed, 4u);
    EXPECT_EQ(kernel.vmstat().get(Vm::PswpOut), 4u);
    // The kernel survives; accesses still work.
    const AccessResult res =
        kernel.access(asid, base, AccessKind::Load, 0);
    EXPECT_FALSE(res.oom);
}

TEST(FailureInjection, TrueOomReportsInsteadOfCrashing)
{
    SwapProfile swap;
    swap.capacityPages = 0; // unbounded...
    MemoryConfig mem_cfg = TopologyBuilder::allLocal(64);
    swap.capacityPages = 1; // ...no: nearly no swap at all
    mem_cfg.swap = swap;
    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, std::make_unique<DefaultLinuxPolicy>());
    kernel.start();
    const Asid asid = kernel.createProcess();
    // Map far more hot anon memory than the machine can hold.
    const Vpn base = kernel.mmap(asid, 128, PageType::Anon, "a");
    bool saw_oom = false;
    for (int i = 0; i < 128; ++i) {
        const AccessResult res =
            kernel.access(asid, base + i, AccessKind::Store, 0);
        if (res.oom) {
            saw_oom = true;
            break;
        }
    }
    EXPECT_TRUE(saw_oom);
}

TEST(FailureInjection, FullMachineStillServesResidentPages)
{
    TestMachine m(64, 64);
    const Vpn base = m.kernel.mmap(m.asid, 100, PageType::Anon, "a");
    for (int i = 0; i < 100; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, 0);
    // Machine is nearly full; resident pages keep serving at DRAM/CXL
    // latency regardless.
    for (int i = 0; i < 100; ++i) {
        const Pte &pte = m.pte(base + i);
        if (!pte.present())
            continue;
        const AccessResult res =
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
        EXPECT_FALSE(res.oom);
        EXPECT_LT(res.latencyNs, 1000.0);
    }
}

} // namespace
} // namespace tpp
