/**
 * @file
 * The full-surface lab CLI: run any (workload, policy, topology)
 * combination, poke sysctl knobs before the run, and export results as
 * CSV/JSON — the one binary that exercises the whole public API
 * (topologies incl. dual-socket, all five policies, all workloads incl.
 * YCSB, sysctl, meminfo, export).
 *
 * Usage:
 *   tiering_lab [--workload web|cache1|cache2|dwh|ycsb-a|ycsb-b|ycsb-c|ycsb-d]
 *               [--policy linux|numa-balancing|autotiering|damon-reclaim|tpp]
 *               [--ratio L:C | --all-local] [--wss pages]
 *               [--sysctl name=value]... [--csv] [--json] [--meminfo]
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "mm/kernel.hh"
#include "mm/meminfo.hh"
#include "policy/damon_reclaim.hh"
#include "sim/logging.hh"
#include "workloads/driver.hh"
#include "workloads/profiles.hh"
#include "workloads/ycsb.hh"

namespace {

using namespace tpp;

struct Options {
    std::string workload = "cache1";
    std::string policy = "tpp";
    std::string ratio = "2:1";
    bool allLocal = false;
    std::uint64_t wss = 32768;
    std::vector<std::pair<std::string, std::string>> sysctls;
    bool csv = false;
    bool json = false;
    bool meminfo = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--policy") {
            opt.policy = next();
        } else if (arg == "--ratio") {
            opt.ratio = next();
        } else if (arg == "--all-local") {
            opt.allLocal = true;
        } else if (arg == "--wss") {
            opt.wss = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--sysctl") {
            const std::string kv = next();
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                tpp_fatal("--sysctl expects name=value");
            opt.sysctls.emplace_back(kv.substr(0, eq),
                                     kv.substr(eq + 1));
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--meminfo") {
            opt.meminfo = true;
        } else {
            tpp_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

std::unique_ptr<PlacementPolicy>
buildPolicy(const Options &opt)
{
    if (opt.policy == "damon-reclaim")
        return std::make_unique<DamonReclaimPolicy>();
    ExperimentConfig cfg;
    cfg.policy = opt.policy;
    return makePolicy(cfg);
}

std::unique_ptr<Workload>
buildWorkload(const Options &opt)
{
    if (opt.workload.rfind("ycsb-", 0) == 0) {
        const char letter = opt.workload.back();
        const std::uint64_t records = opt.wss * 9 / 10;
        YcsbConfig cfg;
        switch (letter) {
          case 'a': cfg = YcsbConfig::workloadA(records); break;
          case 'b': cfg = YcsbConfig::workloadB(records); break;
          case 'c': cfg = YcsbConfig::workloadC(records); break;
          case 'd': cfg = YcsbConfig::workloadD(records); break;
          default: tpp_fatal("unknown ycsb mix '%c'", letter);
        }
        return std::make_unique<YcsbWorkload>(cfg);
    }
    return std::make_unique<SyntheticWorkload>(
        profiles::byName(opt.workload, opt.wss));
}

} // namespace

int
main(int argc, char **argv)
{
    setLogVerbose(false);
    const Options opt = parseArgs(argc, argv);

    // Machine.
    const std::uint64_t total = opt.wss * 103 / 100;
    MemoryConfig mem_cfg;
    if (opt.allLocal) {
        mem_cfg = TopologyBuilder::allLocal(total);
    } else {
        const double frac = parseRatio(opt.ratio);
        const auto local_pages = static_cast<std::uint64_t>(
            static_cast<double>(total) * frac);
        mem_cfg =
            TopologyBuilder::cxlSystem(local_pages, total - local_pages);
    }
    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, buildPolicy(opt));

    // Admin surface.
    for (const auto &[name, value] : opt.sysctls) {
        if (!kernel.sysctl().set(name, value))
            tpp_fatal("sysctl %s=%s rejected", name.c_str(),
                      value.c_str());
    }

    // Workload + driver.
    auto workload = buildWorkload(opt);
    workload->setTaskNode(mem.cpuNodes().front());
    DriverConfig driver_cfg;
    WorkloadDriver driver(kernel, *workload, driver_cfg);
    kernel.start();
    driver.runToCompletion();

    // Results.
    ExperimentResult result;
    result.workload = opt.workload;
    result.policy = opt.policy;
    result.throughput = driver.throughput();
    result.meanAccessLatencyNs = driver.meanAccessLatencyNs();
    const NodeId local = mem.cpuNodes().front();
    result.localTrafficShare = driver.trafficShare(local);
    result.cxlTrafficShare = 1.0 - result.localTrafficShare;
    result.samples = driver.samples();
    result.vmstat = kernel.vmstat();

    if (opt.json) {
        writeResultJson(std::cout, result);
    } else if (opt.csv) {
        writeResultsCsv(std::cout, {result});
    } else {
        std::printf("%s / %s: %.0f ops/s, %.1f%% local traffic, "
                    "%.1f ns mean access\n",
                    result.workload.c_str(), result.policy.c_str(),
                    result.throughput,
                    100.0 * result.localTrafficShare,
                    result.meanAccessLatencyNs);
        std::printf("\n-- vmstat --\n%s", result.vmstat.report().c_str());
    }
    if (opt.meminfo) {
        std::printf("\n-- meminfo --\n%s",
                    renderMemInfo(collectMemInfo(kernel)).c_str());
    }
    return 0;
}
