#include "harness/experiment.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "harness/sweep.hh"
#include "hotness/hotness_policy.hh"
#include "mm/kernel.hh"
#include "mm/policy_registry.hh"
#include "sim/logging.hh"
#include "workloads/workload_registry.hh"

namespace tpp {

namespace {

/** Parse one side of a "L:C" ratio; fatal() on anything malformed. */
double
ratioField(const std::string &ratio, const std::string &field)
{
    if (field.empty() || std::isspace(static_cast<unsigned char>(field[0])))
        tpp_fatal("capacity ratio must look like '2:1', got '%s'",
                  ratio.c_str());
    char *end = nullptr;
    const double value = std::strtod(field.c_str(), &end);
    if (end != field.c_str() + field.size())
        tpp_fatal("capacity ratio must look like '2:1', got '%s'",
                  ratio.c_str());
    if (!std::isfinite(value))
        tpp_fatal("bad capacity ratio '%s': values must be finite",
                  ratio.c_str());
    return value;
}

} // namespace

double
parseRatio(const std::string &ratio)
{
    const auto colon = ratio.find(':');
    if (colon == std::string::npos)
        tpp_fatal("capacity ratio must look like '2:1', got '%s'",
                  ratio.c_str());
    const double local = ratioField(ratio, ratio.substr(0, colon));
    const double cxl = ratioField(ratio, ratio.substr(colon + 1));
    if (local <= 0.0 || cxl < 0.0)
        tpp_fatal("bad capacity ratio '%s': local share must be > 0 and "
                  "CXL share >= 0",
                  ratio.c_str());
    return local / (local + cxl);
}

std::unique_ptr<PlacementPolicy>
makePolicy(const ExperimentConfig &cfg)
{
    return PolicyRegistry::instance().make(cfg.policy, cfg);
}

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    // Build the machine.
    const std::uint64_t total_pages = static_cast<std::uint64_t>(
        static_cast<double>(cfg.wssPages) * cfg.capacityHeadroom);
    MemoryConfig mem_cfg;
    if (cfg.allLocal) {
        mem_cfg = TopologyBuilder::allLocal(total_pages);
    } else {
        const std::uint64_t local_pages = static_cast<std::uint64_t>(
            static_cast<double>(total_pages) * cfg.localFraction);
        mem_cfg = TopologyBuilder::cxlSystem(local_pages,
                                             total_pages - local_pages);
    }

    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, makePolicy(cfg), MmCosts{}, cfg.migration);

    // Telemetry attaches before anything is scheduled so the sampler's
    // events always precede same-tick simulation events; both layers
    // only observe, so results are bit-identical with them on or off
    // (tests/test_trace.cc asserts this).
    if (cfg.traceEnabled) {
        kernel.trace().setCapacity(
            static_cast<std::size_t>(cfg.traceCapacity));
        kernel.trace().enable();
    }
    std::unique_ptr<TimeSeriesSampler> sampler;
    if (cfg.sampleSeries) {
        const Tick period =
            cfg.samplePeriod ? cfg.samplePeriod : cfg.sampleEvery;
        sampler = std::make_unique<TimeSeriesSampler>(kernel, period,
                                                      cfg.runUntil);
        sampler->start();
    }

    // Admin surface: apply requested sysctls before anything runs.
    for (const auto &[name, value] : cfg.sysctls) {
        if (!kernel.sysctl().set(name, value))
            tpp_fatal("sysctl %s=%s rejected", name.c_str(),
                      value.c_str());
    }

    // Build the workload by registered name.
    std::unique_ptr<Workload> workload = WorkloadRegistry::instance().make(
        WorkloadSpec{cfg.workload, cfg.wssPages, cfg.seed});
    workload->setTaskNode(mem.cpuNodes().front());

    // Workload-side observers. Up to three consumers may want the
    // access stream (the optional Chameleon profiler, a hotness source
    // modelling a user-space profiler, and the hot-set ground truth);
    // the single observer slot gets a fan-out lambda only when more
    // than one is live, so the common single-consumer path stays flat.
    std::vector<AccessObserver> observers;
    std::unique_ptr<Chameleon> chameleon;
    if (cfg.withChameleon) {
        chameleon = std::make_unique<Chameleon>(kernel, cfg.chameleon);
        observers.push_back(chameleon->observer());
    }
    if (auto *hotness = dynamic_cast<HotnessPolicy *>(&kernel.policy())) {
        if (AccessObserver observer = hotness->accessObserver())
            observers.push_back(std::move(observer));
    }
    std::unordered_map<std::uint64_t, std::uint64_t> true_counts;
    if (cfg.measureHotness) {
        observers.push_back([&true_counts, &cfg](const AccessRecord &r) {
            if (r.tick < cfg.measureFrom)
                return;
            true_counts[(static_cast<std::uint64_t>(r.asid) << 48) |
                        r.vpn]++;
        });
    }
    if (observers.size() == 1) {
        workload->setObserver(observers.front());
    } else if (observers.size() > 1) {
        workload->setObserver([observers](const AccessRecord &r) {
            for (const AccessObserver &observer : observers)
                observer(r);
        });
    }

    DriverConfig driver_cfg;
    driver_cfg.runUntil = cfg.runUntil;
    driver_cfg.measureFrom = cfg.measureFrom;
    driver_cfg.sampleEvery = cfg.sampleEvery;
    WorkloadDriver driver(kernel, *workload, driver_cfg);

    kernel.start();
    if (chameleon)
        chameleon->start();
    driver.runToCompletion();

    // Harvest results.
    ExperimentResult result;
    result.workload = cfg.workload;
    result.policy = cfg.policy;
    result.throughput = driver.throughput();
    result.meanAccessLatencyNs = driver.meanAccessLatencyNs();
    const NodeId local = mem.cpuNodes().front();
    result.localTrafficShare = driver.trafficShare(local);
    result.cxlTrafficShare = 1.0 - result.localTrafficShare;
    result.samples = driver.samples();
    result.vmstat = kernel.vmstat();
    result.meminfo = collectMemInfo(kernel);
    if (cfg.traceEnabled) {
        result.trace = kernel.trace().snapshot();
        result.traceEmitted = kernel.trace().emitted();
        result.traceDropped = kernel.trace().dropped();
    }
    if (sampler)
        result.series = sampler->takeSeries();

    // Residency split at end of run.
    for (PageType type : {PageType::Anon, PageType::File}) {
        std::uint64_t on_local = kernel.residentPages(local, type);
        std::uint64_t total = on_local;
        for (NodeId nid : mem.cxlNodes())
            total += kernel.residentPages(nid, type);
        const double share =
            total ? static_cast<double>(on_local) /
                        static_cast<double>(total)
                  : 0.0;
        if (type == PageType::Anon)
            result.anonLocalResidency = share;
        else
            result.fileLocalResidency = share;
    }

    if (cfg.measureHotness) {
        // True hot set: the top pages by measured access count, as many
        // as the local tier could hold. Recall = the fraction of them
        // the policy actually got (or kept) local by the end.
        std::uint64_t local_capacity = 0;
        for (NodeId nid : mem.cpuNodes())
            local_capacity += mem.node(nid).capacity();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(
            true_counts.begin(), true_counts.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        if (ranked.size() > local_capacity)
            ranked.resize(local_capacity);
        std::uint64_t considered = 0;
        std::uint64_t resident_local = 0;
        for (const auto &[key, count] : ranked) {
            const Asid asid = static_cast<Asid>(key >> 48);
            const Vpn vpn = key & ((std::uint64_t{1} << 48) - 1);
            const AddressSpace &as = kernel.addressSpace(asid);
            if (vpn >= as.tableSize() || !as.pte(vpn).present())
                continue;
            considered++;
            if (!mem.node(mem.frame(as.pte(vpn).pfn).nid).cpuLess())
                resident_local++;
        }
        result.hotSetPages = considered;
        result.hotSetRecall =
            considered ? static_cast<double>(resident_local) /
                             static_cast<double>(considered)
                       : 0.0;
    }

    if (chameleon) {
        result.chameleonIntervals = chameleon->intervals();
        result.chameleonHotFraction = chameleon->meanHotFraction();
        result.chameleonHotFractionAnon =
            chameleon->meanHotFraction(PageType::Anon);
        result.chameleonHotFractionFile =
            chameleon->meanHotFraction(PageType::File);
    }
    return result;
}

double
relativeToAllLocal(const ExperimentConfig &cfg, ExperimentResult *out,
                   ExperimentResult *baseline_out)
{
    const ExperimentResult baseline =
        BaselineCache::instance().getOrRun(allLocalTwin(cfg));
    const ExperimentResult result = runExperiment(cfg);
    if (out)
        *out = result;
    if (baseline_out)
        *baseline_out = baseline;
    if (baseline.throughput <= 0.0)
        return 0.0;
    return result.throughput / baseline.throughput;
}

} // namespace tpp
