/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  — a simulator invariant was violated: a bug in this code base.
 *            Aborts so a debugger/core dump can capture state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments). Exits with status 1.
 * warn()   — behaviour may be surprising but the run can continue.
 * inform() — neutral status for the console.
 */

#ifndef TPP_SIM_LOGGING_HH
#define TPP_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tpp {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Toggle inform()/warn() console output (tests silence it). */
void setLogVerbose(bool verbose);

/** @return true when inform()/warn() output is enabled. */
bool logVerbose();

} // namespace tpp

#define tpp_panic(...) ::tpp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define tpp_fatal(...) ::tpp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define tpp_warn(...) ::tpp::warnImpl(__VA_ARGS__)
#define tpp_inform(...) ::tpp::informImpl(__VA_ARGS__)

/** Assert a simulator invariant; failure is a bug, so it panics. */
#define tpp_assert(cond, ...)                                                \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::tpp::panicImpl(__FILE__, __LINE__,                             \
                             "assertion failed: %s", #cond);                 \
        }                                                                    \
    } while (0)

#endif // TPP_SIM_LOGGING_HH
