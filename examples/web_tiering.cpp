/**
 * @file
 * Scenario example: the Web story of §6.2.1, told end to end.
 *
 * A JIT web-serving workload preloads its binary/bytecode files, then
 * its request-serving heap grows and collides with the file cache on a
 * 2:1 tiered machine. The example runs the same machine under all four
 * policies and narrates what each one did — where allocations landed,
 * what got demoted or promoted, how much traffic stayed local, and the
 * throughput cost — demonstrating the full public API: topology
 * building, policy configuration, workload profiles, the driver and
 * the vmstat counters.
 *
 * Usage: web_tiering [wss_pages]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

namespace {

void
narrate(const tpp::ExperimentResult &res, double baseline_tput)
{
    using namespace tpp;
    std::printf("\n### policy: %s\n", res.policy.c_str());
    std::printf("  throughput: %.0f ops/s (%.1f%% of all-local)\n",
                res.throughput, 100.0 * res.throughput / baseline_tput);
    std::printf("  traffic:    %.1f%% local / %.1f%% CXL\n",
                100.0 * res.localTrafficShare,
                100.0 * res.cxlTrafficShare);
    std::printf("  residency:  %.0f%% of anons and %.0f%% of files on "
                "the local node\n",
                100.0 * res.anonLocalResidency,
                100.0 * res.fileLocalResidency);

    const VmStat &vs = res.vmstat;
    if (vs.get(Vm::PgDemoteAnon) + vs.get(Vm::PgDemoteFile) > 0) {
        std::printf("  demotion:   %llu anon + %llu file pages migrated "
                    "to CXL (%llu fell back to classic reclaim)\n",
                    (unsigned long long)vs.get(Vm::PgDemoteAnon),
                    (unsigned long long)vs.get(Vm::PgDemoteFile),
                    (unsigned long long)vs.get(Vm::PgDemoteFail));
    }
    if (vs.get(Vm::PswpOut) > 0) {
        std::printf("  paging:     %llu pages swapped out, %llu major "
                    "faults waited on the swap device\n",
                    (unsigned long long)vs.get(Vm::PswpOut),
                    (unsigned long long)vs.get(Vm::PgMajFault));
    }
    if (vs.get(Vm::NumaHintFaults) > 0) {
        std::printf("  promotion:  %llu hint faults -> %llu candidates "
                    "-> %llu promoted (%llu refused: low memory)\n",
                    (unsigned long long)vs.get(Vm::NumaHintFaults),
                    (unsigned long long)vs.get(Vm::PgPromoteCandidate),
                    (unsigned long long)vs.get(Vm::PgPromoteSuccess),
                    (unsigned long long)vs.get(Vm::PgPromoteFailLowMem));
        std::printf("  ping-pong:  %llu promotion candidates had been "
                    "demoted earlier\n",
                    (unsigned long long)
                        vs.get(Vm::PgPromoteCandidateDemoted));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;
    setLogVerbose(false);

    ExperimentConfig cfg;
    cfg.workload = "web";
    cfg.localFraction = parseRatio("2:1");
    if (argc > 1)
        cfg.wssPages = std::strtoull(argv[1], nullptr, 0);

    std::printf("Web serving on a 2:1 tiered machine — "
                "%llu-page working set\n",
                (unsigned long long)cfg.wssPages);
    std::printf("The file preload fills the local node; the heap then "
                "grows into it.\n");

    ExperimentConfig base = cfg;
    base.allLocal = true;
    base.policy = "linux";
    const ExperimentResult baseline = runExperiment(base);
    std::printf("\nall-local reference: %.0f ops/s\n",
                baseline.throughput);

    for (const char *policy :
         {"linux", "numa-balancing", "autotiering", "tpp"}) {
        ExperimentConfig run = cfg;
        run.policy = policy;
        narrate(runExperiment(run), baseline.throughput);
    }
    return 0;
}
