/**
 * @file
 * Declarative parameter blocks for the built-in placement policies.
 *
 * These live with the PlacementPolicy *interface* in src/mm rather than
 * with the policy *implementations* so that config-consuming layers
 * (the experiment harness, benches, tests) can describe a run without
 * pulling in any policy behaviour: `harness/experiment.hh` includes
 * this header only, and the policies themselves are reached through the
 * PolicyRegistry at run time.
 */

#ifndef TPP_MM_POLICY_PARAMS_HH
#define TPP_MM_POLICY_PARAMS_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace tpp {

/**
 * NUMA-balancing operating mode (§5.3). Classic is the pre-TPP
 * behaviour (sample everything, promote towards the faulting CPU);
 * Tiered is NUMA_BALANCING_TIERED. A system started in Classic mode
 * with only a single local node online is automatically downgraded to
 * Tiered, exactly as the paper describes.
 */
enum class NumaMode : std::uint8_t {
    AutoDetect, //!< Tiered whenever a CPU-less node exists
    Tiered,
    Classic,
};

/**
 * TPP tunables. Defaults correspond to the full mechanism as evaluated;
 * the boolean switches exist for the component ablations of §6.3.
 */
struct TppConfig {
    NumaMode mode = NumaMode::AutoDetect;
    /** /proc/sys/vm/demote_scale_factor, percent of node capacity. */
    double demoteScaleFactor = 2.0;
    /** §5.2 decoupled watermarks; off = classic coupled reclaim. */
    bool decoupleWatermarks = true;
    /**
     * Chain middle-tier reclaim downward through the tier hierarchy
     * (cxl -> cxl-far -> swap); off = only toptier nodes demote and
     * every CPU-less tier swaps, the pre-hierarchy behaviour.
     */
    bool demoteChain = true;
    /** §5.3 active-LRU promotion filter; off = instant promotion. */
    bool activeLruFilter = true;
    /** §5.3 promotion ignores the allocation watermark. */
    bool promotionIgnoresWatermark = true;
    /** §5.4 allocate file/tmpfs pages on the CXL node preferably. */
    bool typeAwareAllocation = false;
    /** CXL-node hint-fault sampling cadence. */
    Tick scanPeriod = 20 * kMillisecond;
    std::uint64_t scanBatch = 512;
    /**
     * Extension (upstream follow-up to TPP, Linux 6.1's
     * numa_balancing_promote_rate_limit_MBps): cap promotion traffic at
     * this many MB/s with a small token bucket. 0 disables the limit,
     * matching the paper's TPP.
     */
    double promoteRateLimitMBps = 0.0;
};

/** Tunables mirroring the numa_balancing sysctls. */
struct NumaBalancingConfig {
    /** Scanner period (sysctl numa_balancing_scan_period). */
    Tick scanPeriod = 20 * kMillisecond;
    /** Pages sampled per node per period (scan_size equivalent). */
    std::uint64_t scanBatch = 512;
};

/** AutoTiering tunables. */
struct AutoTieringConfig {
    Tick scanPeriod = 20 * kMillisecond;
    std::uint64_t scanBatch = 512;
    /** Hint faults within this window needed before promotion. */
    Tick hotWindow = 3 * kSecond;
    std::uint8_t hotThreshold = 2;
    /** Fixed-size promotion reserve, in pages; 0 = 5 % of the local
     *  node's capacity. */
    std::uint64_t promotionReserve = 0;
};

/**
 * Unified hotness-subsystem tunables (src/hotness). The `hotness`
 * policy drives promotion from a pluggable HotnessSource selected by
 * name; the NeoProf fields model NeoMem's CXL-device counter engine
 * (bounded counter table, decaying log-scale histogram, auto-tuned hot
 * threshold).
 */
struct HotnessConfig {
    /** Source name: "hintfault", "damon", "chameleon" or "neoprof". */
    std::string source = "hintfault";
    /**
     * Epoch cadence: decay, threshold retune and batch promotion.
     * Longer epochs accumulate more evidence per ranking and promote
     * less junk; 200ms roughly halves migration churn versus 100ms at
     * materially better end-state hot-set recall for every source.
     */
    Tick epochPeriod = 200 * kMillisecond;
    /** Maximum pages promoted per epoch (extractHot top-k). */
    std::uint64_t promoteBatch = 512;
    /** Hint-fault source: faults within this window make a page hot. */
    Tick hotWindow = 3 * kSecond;
    /** Hint-fault source: faults needed inside the window (two-touch). */
    std::uint64_t hotThreshold = 2;
    /**
     * NeoProf: bounded per-page counter table (LRU eviction). Sized
     * for the default bench working set; an undersized table thrashes
     * and loses the frequency signal to eviction.
     */
    std::uint64_t counterTableSize = 32768;
    /** NeoProf: counter decay half-life; 0 disables decay. */
    Tick decayHalfLife = 1 * kSecond;
    /**
     * NeoProf: when > 0, cap the target hot-set size at the
     * (1 - quantile) tail of the tracked-page population in addition to
     * the local-tier free-headroom target; 0 = headroom-driven only.
     * The default keeps the device engine pickier than fault sampling:
     * only the hottest 5% of tracked far-tier pages compete per epoch.
     */
    double targetQuantile = 0.95;
};

/**
 * Phase-adaptive placement tunables (src/policy/adaptive). The policy
 * is TPP plus a profile-then-infer tuner: it measures promotion yield,
 * ping-pong rate, reclaim pressure and SLO headroom over sliding
 * windows, then retunes the live promotion knobs by hysteretic
 * coordinate descent over a discrete grid. With `enable` off (the
 * default) the policy is bit-identical to plain TPP.
 */
struct AdaptiveConfig {
    /** Master kill switch (vm.adaptive.enable). */
    bool enable = false;
    /** Profiling-window length (vm.adaptive.window_ns). */
    Tick windowPeriod = 200 * kMillisecond;
    /** Windows averaged into one measurement (base or trial). */
    std::uint64_t profileWindows = 3;
    /** Score gain (percent) a trial must show to be accepted. */
    double hysteresisPct = 2.0;
    /** Score drift (percent) that re-arms a settled tuner. */
    double wakeDriftPct = 10.0;

    // Objective weights (vm.adaptive.w_*): maximise local traffic and
    // SLO attainment, penalise ping-pong, allocation stalls and raw
    // migration volume (every moved page is copy bandwidth the tail
    // pays for, whether or not it ever flips back).
    double weightLocal = 1.0;
    double weightPingPong = 0.5;
    double weightStall = 0.25;
    double weightSlo = 0.5;
    double weightMigrate = 1.0;

    /** PPT flips at/above which a page counts as a known flapper. */
    std::uint64_t flapFlips = 2;
    /** Extra window touches demanded from flappers before promotion. */
    std::uint64_t flapBias = 1;

    /** Touches within the window before a hint fault may promote. */
    std::uint64_t promoteThreshold = 1;
    std::uint64_t promoteThresholdMax = 4;
    /** Grid bounds for kernel.numa_balancing_scan_size_pages (x2 steps). */
    std::uint64_t scanSizeMin = 128;
    std::uint64_t scanSizeMax = 2048;
    /** Grid bounds for vm.demote_scale_factor (watermark gap, +-1.0). */
    double demoteScaleMin = 1.0;
    double demoteScaleMax = 8.0;
};

/**
 * Every built-in policy's parameter block, bundled. PolicyRegistry
 * factories receive one of these and pick out the block they need;
 * ExperimentConfig derives from it so `cfg.tpp.scanBatch = ...` keeps
 * working unchanged at every call site.
 */
struct PolicyParams {
    TppConfig tpp;
    NumaBalancingConfig numaBalancing;
    AutoTieringConfig autoTiering;
    HotnessConfig hotness;
    AdaptiveConfig adaptive;
};

} // namespace tpp

#endif // TPP_MM_POLICY_PARAMS_HH
