/**
 * @file
 * The full-surface lab CLI: run any (workload, policy, topology)
 * combination, poke sysctl knobs before the run, and export results as
 * CSV/JSON — the one binary that exercises the whole public API
 * (topologies, every registered policy and workload, sysctl, meminfo,
 * export, and the parallel sweep engine).
 *
 * --workload and --policy accept comma-separated lists; the lab runs
 * the full cross product through SweepRunner, so `--jobs N` fans the
 * grid out across N threads with bit-identical results.
 *
 * Usage:
 *   tiering_lab [--workload NAME[,NAME...]] [--policy NAME[,NAME...]]
 *               [--ratio L:C | --all-local | --topology SPEC]
 *               [--wss pages] [--seed S]
 *               [--jobs N] [--sysctl name=value]...
 *               [--csv] [--json] [--meminfo] [--verbose]
 *
 * Unknown workload or policy names fatal() with the registered list.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "mm/meminfo.hh"

namespace {

using namespace tpp;

struct Options {
    std::vector<std::string> workloads = {"cache1"};
    std::vector<std::string> policies = {"tpp"};
    std::string ratio = "2:1";
    bool allLocal = false;
    std::string topologySpec;
    std::uint64_t wss = 32768;
    std::uint64_t seed = 1;
    unsigned jobs = 1;
    std::vector<std::pair<std::string, std::string>> sysctls;
    bool csv = false;
    bool json = false;
    bool meminfo = false;
    bool verbose = false;
};

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto comma = text.find(',', start);
        const auto end = comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty())
        tpp_fatal("empty name list '%s'", text.c_str());
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workloads = splitList(next());
        } else if (arg == "--policy") {
            opt.policies = splitList(next());
        } else if (arg == "--ratio") {
            opt.ratio = next();
        } else if (arg == "--all-local") {
            opt.allLocal = true;
        } else if (arg == "--topology") {
            opt.topologySpec = next();
        } else if (arg == "--wss") {
            opt.wss = bench::parseCount("--wss", next());
        } else if (arg == "--seed") {
            opt.seed = bench::parseCount("--seed", next());
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                bench::parseCount("--jobs", next()));
        } else if (arg == "--sysctl") {
            const std::string kv = next();
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                tpp_fatal("--sysctl expects name=value");
            opt.sysctls.emplace_back(kv.substr(0, eq),
                                     kv.substr(eq + 1));
        } else if (arg == "--csv") {
            opt.csv = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--meminfo") {
            opt.meminfo = true;
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            tpp_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    setLogVerbose(opt.verbose);

    std::vector<ExperimentConfig> cfgs;
    for (const std::string &workload : opt.workloads) {
        for (const std::string &policy : opt.policies) {
            ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.policy = policy;
            cfg.wssPages = opt.wss;
            cfg.seed = opt.seed;
            cfg.sysctls = opt.sysctls;
            if (!opt.topologySpec.empty())
                cfg.topology = opt.topologySpec;
            else if (opt.allLocal)
                cfg.allLocal = true;
            else
                cfg.localFraction = parseRatio(opt.ratio);
            cfgs.push_back(cfg);
        }
    }

    SweepOptions sweep;
    sweep.jobs = opt.jobs;
    sweep.progress = opt.verbose;
    const std::vector<ExperimentResult> results =
        SweepRunner(sweep).run(cfgs);

    if (opt.csv)
        writeResultsCsv(std::cout, results);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &result = results[i];
        if (opt.json) {
            writeResultJson(std::cout, result);
        } else if (!opt.csv) {
            std::printf("%s / %s: %.0f ops/s, %.1f%% local traffic, "
                        "%.1f ns mean access\n",
                        result.workload.c_str(), result.policy.c_str(),
                        result.throughput,
                        100.0 * result.localTrafficShare,
                        result.meanAccessLatencyNs);
            if (results.size() == 1) {
                std::printf("\n-- vmstat --\n%s",
                            result.vmstat.report().c_str());
            }
        }
        if (opt.meminfo) {
            std::printf("\n-- meminfo (%s / %s) --\n%s",
                        result.workload.c_str(), result.policy.c_str(),
                        renderMemInfo(result.meminfo).c_str());
        }
    }
    return 0;
}
