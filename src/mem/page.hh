/**
 * @file
 * Physical page-frame metadata, split hot/cold struct-of-arrays style.
 *
 * One PageFrame (hot) and one PageFrameCold exist per simulated
 * physical page, held in two parallel arenas owned by MemorySystem.
 * The hot struct is exactly 16 bytes — four frames per cache line — and
 * carries only what the LRU scan and reclaim hot paths touch: intrusive
 * list links (prev / next frame numbers, so list surgery is
 * allocation-free, as in the kernel's struct page), flags, node id and
 * page type. Telemetry and reverse-map fields that only matter once a
 * page is actually chosen for migration or eviction live in the cold
 * array.
 *
 * Both structs are designed so the all-zero bit pattern is the valid
 * "free, never allocated" state (see ZeroedArena): flags == 0 means
 * free, and pfn/nid are initialised lazily the first time a node hands
 * the frame out.
 */

#ifndef TPP_MEM_PAGE_HH
#define TPP_MEM_PAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace tpp {

/** Which per-node LRU list a frame currently sits on. */
enum class LruListId : std::uint8_t {
    None = 0,      //!< not on any LRU (free or isolated)
    InactiveAnon,
    ActiveAnon,
    InactiveFile,
    ActiveFile,
};

/** Number of real LRU lists (excludes None). */
inline constexpr std::size_t kNumLruLists = 4;

/** @return true for the two active lists. */
constexpr bool
lruIsActive(LruListId id)
{
    return id == LruListId::ActiveAnon || id == LruListId::ActiveFile;
}

/** @return the LRU list for (type, active). */
constexpr LruListId
lruListFor(PageType type, bool active)
{
    if (type == PageType::Anon)
        return active ? LruListId::ActiveAnon : LruListId::InactiveAnon;
    return active ? LruListId::ActiveFile : LruListId::InactiveFile;
}

/** @return the page type whose pages the given list holds. */
constexpr PageType
lruPageType(LruListId id)
{
    return (id == LruListId::InactiveAnon || id == LruListId::ActiveAnon)
               ? PageType::Anon
               : PageType::File;
}

/**
 * Hot per-frame metadata: everything the LRU/reclaim scan loops read.
 * Kept to exactly 16 bytes so a frame-table walk streams four frames
 * per cache line.
 */
struct PageFrame {
    /** Frame flag bits (subset of the kernel's page flags). */
    enum Flag : std::uint8_t {
        /** Set while the frame is handed out; zero flags == free, so a
         *  calloc'ed frame table starts with every frame free. */
        FlagAllocated = 1 << 0,
        FlagReferenced = 1 << 1,  //!< PTE accessed bit seen since last scan
        FlagDirty = 1 << 2,       //!< must be written back / swapped out
        FlagDemoted = 1 << 3,     //!< PG_demoted: TPP ping-pong tracking
        FlagIsolated = 1 << 4,    //!< detached from LRU for migration
        FlagUnevictable = 1 << 5, //!< pinned (not modelled heavily)
        /** Transactional copy in flight (Nomad-style two-phase
         *  migration): an access while set aborts the migration. */
        FlagUnderMigration = 1 << 6,
        /**
         * Mirror of the PTE's prot_none bit. The NUMA-hint scan skips
         * already-armed frames on this 16-byte record alone instead of
         * chasing the reverse map into the page table; every site that
         * flips Pte::BitProtNone keeps the mirror in sync.
         */
        FlagHintPending = 1 << 7,
    };

    Pfn pfn = 0;
    Pfn lruPrev = 0;
    Pfn lruNext = 0;
    NodeId nid = 0;
    PageType type = PageType::Anon;
    std::uint8_t flags = 0;
    LruListId lru = LruListId::None;

    bool isFree() const { return !(flags & FlagAllocated); }
    bool referenced() const { return flags & FlagReferenced; }
    bool dirty() const { return flags & FlagDirty; }
    bool demoted() const { return flags & FlagDemoted; }
    bool isolated() const { return flags & FlagIsolated; }
    bool underMigration() const { return flags & FlagUnderMigration; }
    bool hintPending() const { return flags & FlagHintPending; }

    void setFlag(Flag f) { flags |= f; }
    void clearFlag(Flag f) { flags &= static_cast<std::uint8_t>(~f); }

    /** Mark the frame handed out (allocation / migration landing). */
    void markAllocated() { flags |= FlagAllocated; }

    /**
     * Reset all hot policy state when the frame returns to the free
     * list. pfn/nid survive — they are a physical property of the
     * frame once initialised. The cold half is reset separately.
     */
    void
    resetForFree()
    {
        flags = 0;
        lru = LruListId::None;
        lruPrev = lruNext = 0;
    }
};

static_assert(sizeof(PageFrame) == 16,
              "PageFrame is the frame-scan hot path: keep it 16 bytes");

/**
 * Cold per-frame metadata: reverse map and telemetry, touched only
 * when a page faults, migrates, or is sampled for hotness — never by
 * the bulk LRU walk.
 */
struct PageFrameCold {
    /**
     * Reverse map. The simulator models one mapping per frame (no
     * shared pages), which is all TPP's decision logic needs.
     */
    Vpn ownerVpn = 0;
    /** Tick of the NUMA hint fault that last examined this frame. */
    Tick lastHintFault = 0;
    /** Allocation timestamp, for lifetime statistics. */
    Tick allocatedAt = 0;
    Asid ownerAsid = 0;
    /** Hint faults observed recently; policies use it for hysteresis. */
    std::uint8_t hintRefCount = 0;

    /** Reset when the frame returns to the free list. */
    void
    resetForFree()
    {
        ownerVpn = 0;
        lastHintFault = 0;
        allocatedAt = 0;
        ownerAsid = 0;
        hintRefCount = 0;
    }
};

} // namespace tpp

#endif // TPP_MEM_PAGE_HH
