/**
 * @file
 * Unit tests for PageFrame flags and the LRU-list helper functions.
 */

#include <gtest/gtest.h>

#include "mem/page.hh"

namespace tpp {
namespace {

TEST(PageFrame, FreshFrameIsFree)
{
    PageFrame f;
    EXPECT_TRUE(f.isFree());
    EXPECT_FALSE(f.referenced());
    EXPECT_FALSE(f.dirty());
    EXPECT_FALSE(f.demoted());
    EXPECT_EQ(f.lru, LruListId::None);
}

TEST(PageFrame, FlagSetClear)
{
    PageFrame f;
    f.setFlag(PageFrame::FlagReferenced);
    f.setFlag(PageFrame::FlagDirty);
    EXPECT_TRUE(f.referenced());
    EXPECT_TRUE(f.dirty());
    f.clearFlag(PageFrame::FlagReferenced);
    EXPECT_FALSE(f.referenced());
    EXPECT_TRUE(f.dirty());
}

TEST(PageFrame, DemotedFlagIndependent)
{
    PageFrame f;
    f.setFlag(PageFrame::FlagDemoted);
    EXPECT_TRUE(f.demoted());
    f.clearFlag(PageFrame::FlagDemoted);
    EXPECT_FALSE(f.demoted());
}

TEST(PageFrame, ResetForFreeClearsPolicyState)
{
    PageFrame f;
    f.clearFlag(PageFrame::FlagFree);
    f.setFlag(PageFrame::FlagDirty);
    f.setFlag(PageFrame::FlagDemoted);
    f.ownerAsid = 7;
    f.ownerVpn = 99;
    f.lastHintFault = 1234;
    f.hintRefCount = 3;
    f.lru = LruListId::ActiveAnon;
    f.resetForFree();
    EXPECT_TRUE(f.isFree());
    EXPECT_FALSE(f.dirty());
    EXPECT_FALSE(f.demoted());
    EXPECT_EQ(f.ownerAsid, 0u);
    EXPECT_EQ(f.ownerVpn, 0u);
    EXPECT_EQ(f.lastHintFault, 0u);
    EXPECT_EQ(f.hintRefCount, 0);
    EXPECT_EQ(f.lru, LruListId::None);
}

TEST(LruHelpers, ListForTypeAndState)
{
    EXPECT_EQ(lruListFor(PageType::Anon, false),
              LruListId::InactiveAnon);
    EXPECT_EQ(lruListFor(PageType::Anon, true), LruListId::ActiveAnon);
    EXPECT_EQ(lruListFor(PageType::File, false),
              LruListId::InactiveFile);
    EXPECT_EQ(lruListFor(PageType::File, true), LruListId::ActiveFile);
}

TEST(LruHelpers, RoundTripThroughPageType)
{
    for (PageType type : {PageType::Anon, PageType::File}) {
        for (bool active : {false, true}) {
            const LruListId list = lruListFor(type, active);
            EXPECT_EQ(lruPageType(list), type);
            EXPECT_EQ(lruIsActive(list), active);
        }
    }
}

} // namespace
} // namespace tpp
