/**
 * @file
 * Scenario example: cheap memory expansion (§6.2.2).
 *
 * Can a cache tier run with only 20 % of its working set in fast local
 * DRAM and the rest on big, cheap CXL memory? This example sweeps the
 * local:CXL capacity ratio from all-local down to 1:8 for Cache1 under
 * both default Linux and TPP, printing the throughput and traffic at
 * each point — the crossover chart a capacity planner would want.
 *
 * Usage: cache_expansion [wss_pages]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    setLogVerbose(false);

    ExperimentConfig cfg;
    cfg.workload = "cache1";
    if (argc > 1)
        cfg.wssPages = std::strtoull(argv[1], nullptr, 0);

    ExperimentConfig base = cfg;
    base.allLocal = true;
    base.policy = "linux";
    const ExperimentResult baseline = runExperiment(base);

    std::printf("Cache1 memory-expansion sweep (%llu-page working "
                "set)\n\n",
                (unsigned long long)cfg.wssPages);
    TextTable table({"local:cxl", "local share of capacity", "policy",
                     "tput vs all-local", "local traffic", "swap-outs"});

    for (const char *ratio : {"2:1", "1:1", "1:4", "1:8"}) {
        for (const char *policy : {"linux", "tpp"}) {
            ExperimentConfig run = cfg;
            run.localFraction = parseRatio(ratio);
            run.policy = policy;
            const ExperimentResult res = runExperiment(run);
            table.addRow(
                {ratio, TextTable::pct(run.localFraction, 0), policy,
                 TextTable::pct(res.throughput / baseline.throughput),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::count(res.vmstat.get(Vm::PswpOut))});
        }
    }
    table.print();
    std::printf("\nTPP holds near-all-local performance far deeper into "
                "the expansion régime than default Linux (§6.2.2).\n");
    return 0;
}
