#include "mem/swap_device.hh"

#include "sim/logging.hh"

namespace tpp {

SwapSlot
SwapDevice::pageOut(Asid asid, Vpn vpn)
{
    if (profile_.capacityPages != 0 &&
        entries_.size() >= profile_.capacityPages) {
        return kInvalidSwapSlot;
    }
    SwapSlot slot = nextSlot_++;
    entries_.emplace(slot, Entry{asid, vpn});
    totalOuts_++;
    return slot;
}

bool
SwapDevice::pageIn(SwapSlot slot)
{
    auto it = entries_.find(slot);
    if (it == entries_.end())
        return false;
    entries_.erase(it);
    totalIns_++;
    return true;
}

void
SwapDevice::release(SwapSlot slot)
{
    entries_.erase(slot);
}

} // namespace tpp
