/**
 * @file
 * Kernel core: construction, process management, the access/fault path,
 * NUMA-hint sampling and traffic statistics. Allocation, reclaim and
 * migration live in their own translation units.
 */

#include "mm/kernel.hh"

#include <utility>

#include "mm/migration/migration_engine.hh"
#include "mm/ppt/ppt.hh"
#include "sim/logging.hh"

namespace tpp {

Kernel::Kernel(MemorySystem &mem, EventQueue &eq,
               std::unique_ptr<PlacementPolicy> policy, MmCosts costs,
               MigrationConfig migration)
    : mem_(mem), eq_(eq), policy_(std::move(policy)), costs_(costs),
      memcg_(mem.numNodes(), sysctl_, eq)
{
    if (!policy_)
        tpp_fatal("Kernel requires a placement policy");
    const std::size_t n = mem_.numNodes();
    lrus_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        lrus_.emplace_back(mem_, static_cast<NodeId>(i));
    traffic_.resize(n);
    kswapd_.resize(n);
    scanCursor_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        scanCursor_[i] = mem_.node(static_cast<NodeId>(i)).firstPfn();
    // PPT before the engine (the engine consults it on admission), the
    // engine before the policy attaches: both register their sysctls
    // here, so a policy can already tune every migration knob at
    // attach time.
    ppt_ = std::make_unique<PingPongThrottle>(vmstat_, trace_);
    ppt_->registerSysctls(sysctl_);
    migration_ = std::make_unique<MigrationEngine>(*this, migration);
    policy_->attach(*this);
}

Kernel::~Kernel() = default;

void
Kernel::start()
{
    if (started_)
        tpp_panic("Kernel::start called twice");
    started_ = true;
    policy_->start();
}

Asid
Kernel::createProcess()
{
    const Asid asid = static_cast<Asid>(spaces_.size());
    spaces_.push_back(std::make_unique<AddressSpace>(asid));
    memcg_.noteProcess(asid);
    return asid;
}

AddressSpace &
Kernel::addressSpace(Asid asid)
{
    if (asid >= spaces_.size())
        tpp_panic("bad asid %u", asid);
    return *spaces_[asid];
}

const AddressSpace &
Kernel::addressSpace(Asid asid) const
{
    if (asid >= spaces_.size())
        tpp_panic("bad asid %u", asid);
    return *spaces_[asid];
}

Vpn
Kernel::mmap(Asid asid, std::uint64_t pages, PageType type,
             std::string label, bool disk_backed)
{
    return addressSpace(asid).mmap(pages, type, std::move(label),
                                   disk_backed);
}

void
Kernel::munmap(Asid asid, Vpn start, std::uint64_t pages)
{
    AddressSpace &as = addressSpace(asid);
    for (std::uint64_t i = 0; i < pages; ++i) {
        Pte &pte = as.pte(start + i);
        if (pte.present())
            freeFrame(pte.pfn);
        if (pte.swapped()) {
            mem_.swapDevice().release(pte.swapSlot);
            pte.clear(Pte::BitSwapped);
        }
    }
    as.munmap(start, pages);
}

Pte &
Kernel::pteOf(const PageFrame &frame)
{
    const PageFrameCold &cold = mem_.frameCold(frame.pfn);
    return addressSpace(cold.ownerAsid).pte(cold.ownerVpn);
}

void
Kernel::touchFrame(PageFrame &frame)
{
    frame.setFlag(PageFrame::FlagReferenced);
}

void
Kernel::unmapFrame(PageFrame &frame)
{
    Pte &pte = pteOf(frame);
    if (!pte.present() || pte.pfn != frame.pfn)
        tpp_panic("unmapFrame: rmap out of sync for pfn %u", frame.pfn);
    pte.clear(Pte::BitPresent);
    pte.clear(Pte::BitProtNone);
    frame.clearFlag(PageFrame::FlagHintPending);
    pte.pfn = kInvalidPfn;
    const Asid owner = mem_.frameCold(frame.pfn).ownerAsid;
    addressSpace(owner).noteUnmapped(frame.type);
    memcg_.uncharge(owner, frame.nid);
}

void
Kernel::freeFrame(Pfn pfn)
{
    PageFrame &frame = mem_.frame(pfn);
    if (frame.isFree())
        tpp_panic("freeFrame: pfn %u already free", pfn);
    if (frame.underMigration())
        migration_->abortOnFree(pfn);
    if (frame.lru != LruListId::None)
        lrus_[frame.nid].remove(pfn);
    unmapFrame(frame);
    mem_.node(frame.nid).putFree(pfn);
    frame.resetForFree();
    mem_.frameCold(pfn).resetForFree();
    vmstat_.inc(Vm::PgFree);
}

double
Kernel::faultIn(AddressSpace &as, Vpn vpn, Pte &pte, NodeId task_nid,
                AccessResult &res)
{
    // Stamp the owning VMA's attributes into the PTE on first fault;
    // mmap no longer walks the region's PTEs. The caller already did
    // the page-table walk — this only pays the VMA lookup once per
    // page lifetime.
    if (!pte.mapped())
        as.stampFromVma(vpn, pte);
    vmstat_.inc(Vm::PgFault);

    NodeId preferred = policy_->allocPreferredNode(pte.type, task_nid);
    // A cgroup placement preference (mempolicy opt-out, §5.4) overrides
    // the policy's choice; the zonelist fallback may still spill it.
    switch (memcg_.placementOf(as.asid())) {
      case MemcgPlacement::LocalOnly:
        // Nearest toptier node in zonelist order, not cpuNodes()
        // .front(): on a multi-socket machine a task on socket 1 must
        // stay on its own socket, not hop to socket 0.
        for (NodeId nid : mem_.fallbackOrder(task_nid)) {
            if (mem_.tiers().isToptier(nid)) {
                preferred = nid;
                break;
            }
        }
        break;
      case MemcgPlacement::CxlOnly:
        // Nearest below-toptier node by distance from the task, so a
        // middle tier is preferred over the far one when both exist.
        for (NodeId nid : mem_.fallbackOrder(task_nid)) {
            if (!mem_.tiers().isToptier(nid)) {
                preferred = nid;
                break;
            }
        }
        break;
      case MemcgPlacement::None:
        break;
    }
    double stall_ns = 0.0;
    const AllocReason reason =
        pte.swapped() ? AllocReason::SwapIn : AllocReason::App;
    const Pfn pfn = allocPage(preferred, pte.type, reason, &stall_ns);
    if (pfn == kInvalidPfn) {
        res.oom = true;
        return stall_ns;
    }

    double latency = stall_ns;
    bool refault = false;
    if (pte.swapped()) {
        // Major fault: wait for the swap device.
        res.majorFault = true;
        refault = true;
        vmstat_.inc(Vm::PgMajFault);
        vmstat_.inc(Vm::PswpIn);
        trace_.emitPage(TraceEvent::SwapIn, eq_.now(),
                        mem_.frame(pfn).nid, pte.type, pfn, as.asid(),
                        vpn);
        mem_.swapDevice().pageIn(pte.swapSlot);
        pte.clear(Pte::BitSwapped);
        pte.swapSlot = 0;
        latency += costs_.majorFaultFixed +
                   static_cast<double>(mem_.swapDevice().profile().readLatency);
    } else if (pte.type == PageType::File && pte.diskBacked() &&
               pte.touched()) {
        // A dropped file page refaults from the backing store.
        res.majorFault = true;
        refault = true;
        vmstat_.inc(Vm::PgMajFault);
        latency += costs_.majorFaultFixed + costs_.diskReadNs;
    } else {
        // First-touch population. Disk-backed file pages pay the initial
        // read from storage (the warm-up file I/O of §3.5).
        res.minorFault = true;
        latency += costs_.minorFault;
        if (pte.type == PageType::File && pte.diskBacked())
            latency += costs_.diskReadNs;
    }

    // Map the frame.
    PageFrame &frame = mem_.frame(pfn);
    PageFrameCold &cold = mem_.frameCold(pfn);
    frame.markAllocated();
    frame.type = pte.type;
    cold.ownerAsid = as.asid();
    cold.ownerVpn = vpn;
    cold.allocatedAt = eq_.now();
    frame.setFlag(PageFrame::FlagReferenced);
    if (pte.type == PageType::Anon)
        frame.setFlag(PageFrame::FlagDirty);
    pte.pfn = pfn;
    pte.set(Pte::BitPresent);
    pte.set(Pte::BitTouched);
    as.noteMapped(pte.type);
    memcg_.charge(as.asid(), frame.nid);

    // New and swapped-in pages start on the inactive list, as in Linux
    // since the anon-workingset rework; reclaim's second chance or TPP's
    // hint-fault path activates them later. Exception: workingset
    // refaults — an eviction undone within the workingset window means
    // reclaim picked a hot page, so it re-enters active.
    bool activate = false;
    if (refault) {
        vmstat_.inc(Vm::WorkingsetRefault);
        if (eq_.now() - pte.evictedAt <= costs_.workingsetWindow) {
            vmstat_.inc(Vm::WorkingsetActivate);
            activate = true;
        }
    }
    lrus_[frame.nid].addHead(lruListFor(frame.type, activate), pfn);
    return latency;
}

AccessResult
Kernel::access(Asid asid, Vpn vpn, AccessKind kind, NodeId task_nid)
{
    AccessResult res;
    AddressSpace &as = addressSpace(asid);
    // One page-table walk per access. A vpn inside the table but outside
    // any live VMA still panics — on the fault path, when the VMA lookup
    // comes up empty.
    if (vpn >= as.tableSize())
        tpp_panic("access to unmapped vpn %llu in asid %u",
                  static_cast<unsigned long long>(vpn), asid);
    Pte &pte = as.pte(vpn);

    double latency = 0.0;
    if (!pte.present()) {
        latency += faultIn(as, vpn, pte, task_nid, res);
        if (res.oom) {
            res.latencyNs = latency;
            return res;
        }
    }

    // A transactional copy in flight loses the race with this access:
    // abort it (pgmigrate_fail_busy) so the page stays where it is.
    if (mem_.frame(pte.pfn).underMigration())
        migration_->abortOnAccess(pte.pfn);

    if (pte.protNone()) {
        // NUMA hint fault (§4.2): record and let the policy react. The
        // policy may migrate the page, updating pte.pfn in place.
        pte.clear(Pte::BitProtNone);
        mem_.frame(pte.pfn).clearFlag(PageFrame::FlagHintPending);
        res.hintFault = true;
        vmstat_.inc(Vm::NumaHintFaults);
        const PageFrame &hinted = mem_.frame(pte.pfn);
        if (hinted.nid == task_nid)
            vmstat_.inc(Vm::NumaHintFaultsLocal);
        trace_.emitPage(TraceEvent::HintFault, eq_.now(), hinted.nid,
                        hinted.type, pte.pfn, asid, vpn, task_nid);
        latency += costs_.hintFaultFixed;
        latency += policy_->onHintFault(pte.pfn, task_nid);
    }

    PageFrame &frame = mem_.frame(pte.pfn);
    const NodeId nid = frame.nid;
    MemoryNode &node = mem_.node(nid);
    latency += mem_.latencyModel().accessLatencyNs(node, eq_.now());
    node.recordTraffic(eq_.now(), 64);
    touchFrame(frame);
    if (kind == AccessKind::Store)
        frame.setFlag(PageFrame::FlagDirty);

    NodeTraffic &t = traffic_[nid];
    t.accesses++;
    t.accessesByType[static_cast<std::size_t>(frame.type)]++;

    if (accessTap_)
        accessTap_->onKernelAccess(frame, task_nid, eq_.now());

    res.servedBy = nid;
    res.latencyNs = latency;
    return res;
}

std::uint64_t
Kernel::sampleNode(NodeId nid, std::uint64_t batch)
{
    const MemoryNode &node = mem_.node(nid);
    const Pfn first = node.firstPfn();
    const Pfn end = first + static_cast<Pfn>(node.capacity());
    Pfn cursor = scanCursor_[nid];
    std::uint64_t sampled = 0;
    std::uint64_t visited = 0;
    const std::uint64_t max_visit = node.capacity();

    // Scan the hot array directly: the cursor stays inside this node's
    // [first, end) range, and each visit touches one 16-byte record.
    PageFrame *const frames = mem_.frameData();
    while (sampled < batch && visited < max_visit) {
        if (cursor >= end)
            cursor = first;
        PageFrame &frame = frames[cursor];
        cursor++;
        visited++;
        // Hot-array-only skips: free, off-LRU, or already armed (the
        // FlagHintPending mirror of the PTE's prot_none bit). Only a
        // frame that will actually be sampled pays the reverse-map and
        // page-table walk.
        if (frame.isFree() || frame.lru == LruListId::None ||
            frame.hintPending()) {
            continue;
        }
        Pte &pte = pteOf(frame);
        if (!pte.present() || pte.protNone())
            continue;
        pte.set(Pte::BitProtNone);
        frame.setFlag(PageFrame::FlagHintPending);
        vmstat_.inc(Vm::NumaPteUpdates);
        sampled++;
    }
    scanCursor_[nid] = cursor;
    return sampled;
}

void
Kernel::resetTraffic()
{
    for (auto &t : traffic_)
        t = NodeTraffic{};
}

std::uint64_t
Kernel::residentPages(NodeId nid, PageType type) const
{
    return lrus_[nid].countType(type);
}

double
Kernel::trafficShare(NodeId nid) const
{
    std::uint64_t total = 0;
    for (const auto &t : traffic_)
        total += t.accesses;
    if (total == 0)
        return 0.0;
    return static_cast<double>(traffic_[nid].accesses) /
           static_cast<double>(total);
}

} // namespace tpp
