/**
 * @file
 * Extension bench (beyond the paper's figures): the full policy zoo —
 * default Linux, NUMA Balancing, AutoTiering, DAMON-based proactive
 * demotion, and TPP — on the stress case (Cache1, 1:4), plus a YCSB-B
 * key-value shape as an out-of-sample workload.
 *
 * Expectation: TPP and AutoTiering lead (demotion + promotion);
 * damon-reclaim lands near plain Linux — its migration-based demotion
 * avoids paging, but with no promotion path a proactively demoted page
 * that re-heats is stuck remote; NUMA Balancing trails everything
 * (useless local sampling, gated promotions, displacement paging).
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Policy zoo (extension)",
                  "all five policies on the 1:4 stress configuration");

    const std::vector<const char *> policies = {
        "linux", "numa-balancing", "autotiering", "damon-reclaim", "tpp"};
    struct Zoo {
        const char *title;
        const char *workload;
    };
    const std::vector<Zoo> zoos = {
        {"Cache1 (paper workload)", "cache1"},
        {"YCSB-B (out-of-sample key-value mix)", "ycsb-b"},
    };

    // Per zoo: the all-local baseline followed by each policy run.
    std::vector<ExperimentConfig> cfgs;
    for (const Zoo &zoo : zoos) {
        ExperimentConfig base = bench::makeConfig(opt);
        base.workload = zoo.workload;
        base.allLocal = true;
        // The baseline is the canned all-local box even when --topology
        // reshapes the comparison runs.
        base.topology.clear();
        base.policy = "linux";
        cfgs.push_back(base);
        for (const char *policy : policies) {
            ExperimentConfig cfg = base;
            cfg.allLocal = false;
            cfg.topology = opt.topologySpec;
            cfg.localFraction = parseRatio("1:4");
            cfg.policy = policy;
            cfgs.push_back(cfg);
        }
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    const std::size_t stride = 1 + policies.size();
    for (std::size_t z = 0; z < zoos.size(); ++z) {
        std::printf("-- %s --\n", zoos[z].title);
        const ExperimentResult &baseline = results[z * stride];
        TextTable table({"policy", "tput vs all-local", "local traffic",
                         "swap-outs", "demotions", "promotions"});
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ExperimentResult &res = results[z * stride + 1 + p];
            table.addRow(
                {policies[p],
                 TextTable::pct(res.throughput / baseline.throughput),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::count(res.vmstat.get(Vm::PswpOut)),
                 TextTable::count(res.vmstat.get(Vm::PgDemoteAnon) +
                                  res.vmstat.get(Vm::PgDemoteFile)),
                 TextTable::count(res.vmstat.get(Vm::PgPromoteSuccess))});
        }
        table.print();
        std::printf("\n");
    }
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
