#include "mem/memory_system.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace tpp {

MemorySystem::MemorySystem(const MemoryConfig &cfg)
    : latencyModel_(cfg.latency), swap_(cfg.swap)
{
    if (cfg.nodes.empty())
        tpp_fatal("MemorySystem needs at least one node");
    if (cfg.nodes.size() > 64)
        tpp_fatal("MemorySystem supports at most 64 nodes");

    const std::size_t n = cfg.nodes.size();

    // Validate / default the distance matrix.
    distances_ = cfg.distances;
    if (distances_.empty()) {
        distances_.assign(n, std::vector<std::uint32_t>(n, 20));
        for (std::size_t i = 0; i < n; ++i)
            distances_[i][i] = 10;
    }
    if (distances_.size() != n)
        tpp_fatal("distance matrix must be %zu x %zu", n, n);
    for (const auto &row : distances_) {
        if (row.size() != n)
            tpp_fatal("distance matrix must be %zu x %zu", n, n);
    }

    // Carve the frame space into per-node ranges. The arenas are
    // calloc-backed and every field of both frame structs is designed so
    // all-zero means "free, never allocated" — construction is O(1) in
    // touched pages no matter how big the machine is. pfn/nid are
    // stamped lazily by MemoryNode::takeFree on first handout.
    std::uint64_t total = 0;
    for (const auto &nc : cfg.nodes)
        total += nc.capacityPages;
    if (total > static_cast<std::uint64_t>(kInvalidPfn))
        tpp_fatal("MemorySystem: %llu frames exceeds the pfn space",
                  static_cast<unsigned long long>(total));
    frames_ = ZeroedArena<PageFrame>(total);
    cold_ = ZeroedArena<PageFrameCold>(total);

    Pfn next = 0;
    nodes_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &nc = cfg.nodes[i];
        nodes_.emplace_back(static_cast<NodeId>(i), next, nc.capacityPages,
                            nc.profile);
        nodes_.back().attachFrames(frames_.data());
        next += static_cast<Pfn>(nc.capacityPages);
        if (nc.profile.cpuLess)
            cxlNodes_.push_back(static_cast<NodeId>(i));
        else
            cpuNodes_.push_back(static_cast<NodeId>(i));
    }
    if (cpuNodes_.empty())
        tpp_fatal("MemorySystem needs at least one CPU-attached node");

    // Derive the tier hierarchy (ranks + per-node demotion chains) and
    // precompute the allocator's zonelist fallback order per node.
    std::vector<NodeProfile> profiles;
    profiles.reserve(n);
    for (const auto &nc : cfg.nodes)
        profiles.push_back(nc.profile);
    tiers_ = TierHierarchy(profiles, distances_);

    fallbackOrder_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<NodeId> all(n);
        std::iota(all.begin(), all.end(), static_cast<NodeId>(0));
        std::stable_sort(all.begin(), all.end(),
                         [this, i](NodeId a, NodeId b) {
                             return distances_[i][a] < distances_[i][b];
                         });
        fallbackOrder_[i] = all;
    }
}

std::uint32_t
MemorySystem::distance(NodeId from, NodeId to) const
{
    return distances_[from][to];
}

const std::vector<NodeId> &
MemorySystem::demotionOrder(NodeId from) const
{
    return tiers_.demotionOrder(from);
}

const std::vector<NodeId> &
MemorySystem::fallbackOrder(NodeId from) const
{
    return fallbackOrder_[from];
}

std::uint64_t
MemorySystem::totalFreePages() const
{
    std::uint64_t total = 0;
    for (const auto &n : nodes_)
        total += n.freePages();
    return total;
}

namespace TopologyBuilder {

MemoryConfig
cxlSystem(std::uint64_t local_pages, std::uint64_t cxl_pages)
{
    MemoryConfig cfg;
    cfg.nodes.push_back(NodeConfig{
        local_pages,
        NodeProfile{kLocalLatencyNs, kLocalBandwidthGBps, false, "local"}});
    cfg.nodes.push_back(NodeConfig{
        cxl_pages,
        NodeProfile{kCxlLatencyNs, kCxlBandwidthGBps, true, "cxl"}});
    cfg.distances = {{10, 20}, {20, 10}};
    return cfg;
}

MemoryConfig
allLocal(std::uint64_t local_pages)
{
    MemoryConfig cfg;
    cfg.nodes.push_back(NodeConfig{
        local_pages,
        NodeProfile{kLocalLatencyNs, kLocalBandwidthGBps, false, "local"}});
    cfg.distances = {{10}};
    return cfg;
}

MemoryConfig
multiCxlSystem(std::uint64_t local_pages,
               const std::vector<std::uint64_t> &cxl_pages)
{
    MemoryConfig cfg;
    const std::size_t n = cxl_pages.size() + 1;
    cfg.nodes.push_back(NodeConfig{
        local_pages,
        NodeProfile{kLocalLatencyNs, kLocalBandwidthGBps, false, "local"}});
    for (std::size_t i = 0; i < cxl_pages.size(); ++i) {
        NodeProfile prof{kCxlLatencyNs + 30.0 * static_cast<double>(i),
                         kCxlBandwidthGBps, true,
                         "cxl" + std::to_string(i)};
        cfg.nodes.push_back(NodeConfig{cxl_pages[i], prof});
    }
    cfg.distances.assign(n, std::vector<std::uint32_t>(n, 0));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j) {
                cfg.distances[i][j] = 10;
            } else {
                // Each hop further from the CPU costs 10 distance units.
                cfg.distances[i][j] = 10 + 10 * static_cast<std::uint32_t>(
                                               std::max(i, j));
            }
        }
    }
    return cfg;
}

MemoryConfig
dualSocketCxl(std::uint64_t local_pages_per_socket,
              std::uint64_t cxl_pages)
{
    MemoryConfig cfg;
    for (int socket = 0; socket < 2; ++socket) {
        cfg.nodes.push_back(NodeConfig{
            local_pages_per_socket,
            NodeProfile{kLocalLatencyNs, kLocalBandwidthGBps, false,
                        "socket" + std::to_string(socket)}});
    }
    cfg.nodes.push_back(NodeConfig{
        cxl_pages,
        NodeProfile{kCxlLatencyNs, kCxlBandwidthGBps, true, "cxl"}});
    // Cross-socket slightly closer than the CXL expander.
    cfg.distances = {{10, 20, 24}, {20, 10, 24}, {24, 24, 10}};
    return cfg;
}

} // namespace TopologyBuilder

} // namespace tpp
