/**
 * @file
 * Per-process virtual memory: VMA regions and a chunked page table.
 *
 * Virtual page numbers are handed out by a bump allocator. The page
 * table is an array of fixed-size chunks, each calloc-backed, so mmap
 * of an N-page region is O(N / chunk) — it never touches individual
 * PTEs and never copies the table to grow it. The all-zero bit pattern
 * is a valid "unmapped, never touched" PTE; per-PTE region attributes
 * (type, disk backing, the mapped bit) are stamped lazily from the
 * owning VMA the first time the page faults.
 *
 * Each PTE carries the present bit, the NUMA-hint (prot_none) bit used
 * for hint-fault sampling, and the swap slot when paged out.
 */

#ifndef TPP_MM_ADDRESS_SPACE_HH
#define TPP_MM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/swap_device.hh"
#include "sim/arena.hh"
#include "sim/types.hh"

namespace tpp {

/** One page-table entry. */
struct Pte {
    enum Bits : std::uint8_t {
        BitPresent = 1 << 0,  //!< maps a physical frame
        BitProtNone = 1 << 1, //!< NUMA-hint sampled: next access faults
        BitSwapped = 1 << 2,  //!< contents live on the swap device
        BitMapped = 1 << 3,   //!< VMA attributes stamped into this PTE
        BitDiskBacked = 1 << 4, //!< file page refilled from disk if dropped
        BitTouched = 1 << 5,  //!< has been populated at least once
    };

    /** Only meaningful while BitPresent is set. */
    Pfn pfn = 0;
    SwapSlot swapSlot = 0;
    /**
     * Shadow entry: when the page was last evicted (reclaimed). The
     * fault path uses it for workingset-refault detection — an eviction
     * followed by a quick refault means reclaim chose a workingset
     * page, so the refaulted page starts on the active list.
     */
    Tick evictedAt = 0;
    std::uint8_t bits = 0;
    PageType type = PageType::Anon;

    bool present() const { return bits & BitPresent; }
    bool protNone() const { return bits & BitProtNone; }
    bool swapped() const { return bits & BitSwapped; }
    bool mapped() const { return bits & BitMapped; }
    bool diskBacked() const { return bits & BitDiskBacked; }
    bool touched() const { return bits & BitTouched; }

    void set(Bits b) { bits |= b; }
    void clear(Bits b) { bits &= static_cast<std::uint8_t>(~b); }
};

/** A contiguous virtual region of one page type. */
struct Vma {
    Vpn start = 0;
    std::uint64_t pages = 0;
    PageType type = PageType::Anon;
    bool diskBacked = false;
    std::string label; //!< for reports ("heap", "tmpfs", ...)

    Vpn end() const { return start + pages; }

    bool contains(Vpn vpn) const { return vpn >= start && vpn < end(); }
};

/**
 * One process's address space.
 */
class AddressSpace
{
  public:
    /** PTEs per page-table chunk. */
    static constexpr std::uint64_t kChunkBits = 16;
    static constexpr std::uint64_t kChunkPages = 1ULL << kChunkBits;

    explicit AddressSpace(Asid asid) : asid_(asid) {}

    Asid asid() const { return asid_; }

    /**
     * Reserve a new region of `pages` virtual pages.
     *
     * @param disk_backed  file pages that can be dropped by reclaim and
     *                     refilled from disk. tmpfs regions pass false:
     *                     they are swap-backed like anon memory.
     * @return the first vpn of the region.
     */
    Vpn mmap(std::uint64_t pages, PageType type, std::string label = "",
             bool disk_backed = false);

    /**
     * Forget the mapping of [start, start+pages). PTEs are reset to
     * unmapped; the caller (Kernel) must have released frames/swap first
     * via forEachPresent/forEachSwapped.
     */
    void munmap(Vpn start, std::uint64_t pages);

    /** @return true when the vpn lies inside a live VMA. */
    bool
    isMapped(Vpn vpn) const
    {
        if (vpn >= tableSize_)
            return false;
        // Faulted pages carry BitMapped; never-faulted pages fall back
        // to the VMA list (last-hit cached, so region walks stay cheap).
        return pteRef(vpn).mapped() || vmaOf(vpn) != nullptr;
    }

    /** Direct PTE access; vpn must be < tableSize(). */
    Pte &pte(Vpn vpn) { return chunks_[vpn >> kChunkBits][vpn & kChunkMask]; }

    const Pte &
    pte(Vpn vpn) const
    {
        return pteRef(vpn);
    }

    /**
     * PTE access that stamps the owning VMA's attributes (type, disk
     * backing) into the entry on first use. The fault path calls this;
     * read-only observers use pte() and must check mapped()/present().
     */
    Pte &
    materialize(Vpn vpn)
    {
        Pte &entry = pte(vpn);
        if (!entry.mapped())
            stampFromVma(vpn, entry);
        return entry;
    }

    /**
     * Stamp `entry` (which must be the PTE of `vpn`) with its VMA's
     * attributes; panics when no VMA covers the vpn. Callers that
     * already hold the PTE reference use this to skip a second walk.
     */
    void stampFromVma(Vpn vpn, Pte &entry);

    /** The VMA containing `vpn`, or nullptr. */
    const Vma *vmaOf(Vpn vpn) const;

    /** Number of vpns ever reserved (dense table size). */
    std::uint64_t tableSize() const { return tableSize_; }

    const std::vector<Vma> &vmas() const { return vmas_; }

    /** Count of PTEs currently present (resident pages). */
    std::uint64_t residentPages() const { return resident_; }

    /** Resident pages of one type. */
    std::uint64_t
    residentPages(PageType type) const
    {
        return residentByType_[static_cast<std::size_t>(type)];
    }

    /** Bookkeeping hooks used by the Kernel when (un)mapping frames. */
    void
    noteMapped(PageType type)
    {
        resident_++;
        residentByType_[static_cast<std::size_t>(type)]++;
    }

    void
    noteUnmapped(PageType type)
    {
        resident_--;
        residentByType_[static_cast<std::size_t>(type)]--;
    }

  private:
    static constexpr std::uint64_t kChunkMask = kChunkPages - 1;

    const Pte &
    pteRef(Vpn vpn) const
    {
        return chunks_[vpn >> kChunkBits][vpn & kChunkMask];
    }

    /** Make sure chunks exist to cover vpns [0, limit). */
    void ensureChunks(std::uint64_t limit);

    Asid asid_;
    std::vector<ZeroedArena<Pte>> chunks_;
    std::uint64_t tableSize_ = 0;
    std::vector<Vma> vmas_;
    /** Index of the VMA that satisfied the last lookup. */
    mutable std::size_t lastVma_ = 0;
    std::uint64_t resident_ = 0;
    std::uint64_t residentByType_[kNumPageTypes] = {0, 0};
    /** Recycled vpn ranges by size, so churny workloads don't grow the
     *  table without bound. */
    std::unordered_map<std::uint64_t, std::vector<Vpn>> freeRanges_;
};

} // namespace tpp

#endif // TPP_MM_ADDRESS_SPACE_HH
