# Empty compiler generated dependencies file for tpp_workloads.
# This may be replaced when dependencies are built.
