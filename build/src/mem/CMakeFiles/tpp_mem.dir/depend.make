# Empty dependencies file for tpp_mem.
# This may be replaced when dependencies are built.
