/**
 * @file
 * Determinism anchors for the sharded experiment engine
 * (harness/shard.hh).
 *
 * The shard engine's core contract: the region decomposition
 * (`shardRegions`) is the only thing that changes simulated results —
 * the worker count (`shards`) decides *when* a region computes, never
 * *what*. These tests pin that by running the same config with the
 * region count held fixed and the worker count varied, and demanding
 * bit-identical results (throughput and latency to the last bit, every
 * vmstat counter, traffic shares, residency, the merged sample series
 * and the epoch-synchroniser's own accounting).
 *
 * A second anchor pins the `--shards 1` escape hatch: an effective
 * region count of 1 must dispatch to the legacy single-stack engine and
 * reproduce a plain config's results exactly, so the golden
 * fingerprints in test_migration_compat.cc keep covering the default
 * path no matter what the shard engine does.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mm/vmstat.hh"

namespace tpp {
namespace {

/** Hash of every vmstat counter (not just the seed-era prefix). */
std::uint64_t
vmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

struct ShardCase {
    const char *tag;
    const char *policy;
    double rateLimitMBps; //!< machine-wide admission budget; 0 = off
};

const ShardCase kCases[] = {
    {"tpp", "tpp", 0.0},
    {"linux", "linux", 0.0},
    {"hotness", "hotness", 0.0},
    {"tpp_admission", "tpp", 50.0},
};

ExperimentConfig
shardConfig(const ShardCase &c, std::uint32_t shards,
            std::uint32_t regions)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.policy = c.policy;
    cfg.wssPages = 8192;
    // Not a multiple of sampleEvery, so the final (partial) epoch is
    // exercised too.
    cfg.runUntil = 4 * kSecond + 37 * kMillisecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.seed = 7;
    cfg.migration = MigrationConfig::compat();
    cfg.migration.rateLimitMBps = c.rateLimitMBps;
    cfg.shards = shards;
    cfg.shardRegions = regions;
    return cfg;
}

/** Field-for-field bit equality of two results. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const char *tag)
{
    EXPECT_EQ(a.throughput, b.throughput) << tag;
    EXPECT_EQ(a.meanAccessLatencyNs, b.meanAccessLatencyNs) << tag;
    EXPECT_EQ(a.localTrafficShare, b.localTrafficShare) << tag;
    EXPECT_EQ(a.cxlTrafficShare, b.cxlTrafficShare) << tag;
    EXPECT_EQ(a.anonLocalResidency, b.anonLocalResidency) << tag;
    EXPECT_EQ(a.fileLocalResidency, b.fileLocalResidency) << tag;
    EXPECT_EQ(vmHash(a.vmstat), vmHash(b.vmstat)) << tag;
    EXPECT_EQ(a.meminfo.totalPages, b.meminfo.totalPages) << tag;
    EXPECT_EQ(a.meminfo.totalFree, b.meminfo.totalFree) << tag;
    EXPECT_EQ(a.meminfo.swapUsedSlots, b.meminfo.swapUsedSlots) << tag;
    ASSERT_EQ(a.samples.size(), b.samples.size()) << tag;
    for (std::size_t k = 0; k < a.samples.size(); ++k) {
        EXPECT_EQ(a.samples[k].tick, b.samples[k].tick) << tag;
        EXPECT_EQ(a.samples[k].throughput, b.samples[k].throughput)
            << tag;
        EXPECT_EQ(a.samples[k].localShare, b.samples[k].localShare)
            << tag;
        EXPECT_EQ(a.samples[k].localFree, b.samples[k].localFree) << tag;
        EXPECT_EQ(a.samples[k].promotionRate, b.samples[k].promotionRate)
            << tag;
        EXPECT_EQ(a.samples[k].demotionRate, b.samples[k].demotionRate)
            << tag;
        EXPECT_EQ(a.samples[k].anonResident, b.samples[k].anonResident)
            << tag;
        EXPECT_EQ(a.samples[k].fileResident, b.samples[k].fileResident)
            << tag;
    }
    // Epoch-synchroniser bookkeeping must match too: same epochs, same
    // pressure observations, same admission traffic moved.
    EXPECT_EQ(a.shard.regions, b.shard.regions) << tag;
    EXPECT_EQ(a.shard.epochs, b.shard.epochs) << tag;
    EXPECT_EQ(a.shard.regionLowWatermarkEpochs,
              b.shard.regionLowWatermarkEpochs)
        << tag;
    EXPECT_EQ(a.shard.pressureEpochs, b.shard.pressureEpochs) << tag;
    EXPECT_EQ(a.shard.rebalancedMBps, b.shard.rebalancedMBps) << tag;
}

class ShardDeterminism : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardDeterminism, WorkerCountNeverChangesResults)
{
    const ShardCase &c = GetParam();
    // Region decomposition pinned at 4; only the worker count varies.
    const ExperimentResult serial =
        runExperiment(shardConfig(c, /*shards=*/1, /*regions=*/4));
    const ExperimentResult parallel =
        runExperiment(shardConfig(c, /*shards=*/4, /*regions=*/4));

    EXPECT_EQ(serial.shard.regions, 4u);
    EXPECT_EQ(serial.shard.workers, 1u);
    EXPECT_EQ(parallel.shard.workers, 4u);
    EXPECT_GT(serial.shard.epochs, 0u);
    EXPECT_GT(serial.throughput, 0.0);
    expectIdentical(serial, parallel, c.tag);

    // Oversubscription clamps to the region count and still matches.
    const ExperimentResult oversubscribed =
        runExperiment(shardConfig(c, /*shards=*/8, /*regions=*/4));
    EXPECT_EQ(oversubscribed.shard.workers, 4u);
    expectIdentical(serial, oversubscribed, c.tag);
}

INSTANTIATE_TEST_SUITE_P(Golden, ShardDeterminism,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.tag);
                         });

TEST(ShardDispatch, OneRegionIsTheLegacyEngineBitForBit)
{
    // shards=1 (effective regions 1) must not even enter the shard
    // engine: identical fields to a config that never heard of shards,
    // and no shard accounting.
    ShardCase plain{"legacy", "tpp", 0.0};
    ExperimentConfig base = shardConfig(plain, 1, 0);
    const ExperimentResult unsharded = runExperiment(base);

    ExperimentConfig pinned = base;
    pinned.shards = 1;
    pinned.shardRegions = 1;
    const ExperimentResult single = runExperiment(pinned);

    EXPECT_EQ(unsharded.shard.regions, 0u);
    EXPECT_EQ(single.shard.regions, 0u);
    EXPECT_EQ(unsharded.throughput, single.throughput);
    EXPECT_EQ(unsharded.meanAccessLatencyNs, single.meanAccessLatencyNs);
    EXPECT_EQ(vmHash(unsharded.vmstat), vmHash(single.vmstat));
    EXPECT_EQ(unsharded.localTrafficShare, single.localTrafficShare);
    ASSERT_EQ(unsharded.samples.size(), single.samples.size());
}

TEST(ShardDispatch, RegionCountChangesTheMachineWorkersDoNot)
{
    // Sanity that the test above is not vacuous: different region
    // decompositions really do simulate different machines, so the
    // worker-invariance checks are comparing something that could have
    // diverged.
    ShardCase c{"tpp", "tpp", 0.0};
    const ExperimentResult two =
        runExperiment(shardConfig(c, 1, 2));
    const ExperimentResult four =
        runExperiment(shardConfig(c, 1, 4));
    EXPECT_EQ(two.shard.regions, 2u);
    EXPECT_EQ(four.shard.regions, 4u);
    EXPECT_NE(vmHash(two.vmstat), vmHash(four.vmstat));
}

} // namespace
} // namespace tpp
