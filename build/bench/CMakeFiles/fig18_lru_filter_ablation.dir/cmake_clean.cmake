file(REMOVE_RECURSE
  "CMakeFiles/fig18_lru_filter_ablation.dir/fig18_lru_filter_ablation.cpp.o"
  "CMakeFiles/fig18_lru_filter_ablation.dir/fig18_lru_filter_ablation.cpp.o.d"
  "fig18_lru_filter_ablation"
  "fig18_lru_filter_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_lru_filter_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
