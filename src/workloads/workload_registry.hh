/**
 * @file
 * Name → factory registry for workloads, the twin of PolicyRegistry.
 *
 * The synthetic paper profiles (profiles.cc) and the YCSB mixes
 * (ycsb.cc) register themselves from their own translation units, so
 * `runExperiment()` can build any workload — "web", "ycsb-b", ... —
 * from the config string without hard-coding workload types, and the
 * lab/zoo binaries no longer need bespoke construction glue.
 */

#ifndef TPP_WORKLOADS_WORKLOAD_REGISTRY_HH
#define TPP_WORKLOADS_WORKLOAD_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace tpp {

/** What a workload factory gets to size and seed its instance. */
struct WorkloadSpec {
    std::string name;
    /** Working-set reservation in pages. */
    std::uint64_t wssPages = 0;
    std::uint64_t seed = 1;
};

/**
 * Process-wide registry of workload factories.
 */
class WorkloadRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Workload>(const WorkloadSpec &)>;

    static WorkloadRegistry &instance();

    /** Register a factory; duplicate names are a fatal error. */
    void add(const std::string &name, Factory factory);

    /** @return true when `name` has a registered factory. */
    bool contains(const std::string &name) const;

    /**
     * Instantiate `spec.name`. Unknown names fatal() with the list of
     * registered workloads.
     */
    std::unique_ptr<Workload> make(const WorkloadSpec &spec) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    WorkloadRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/** Registrar helper for namespace-scope self-registration. */
struct WorkloadRegistrar {
    WorkloadRegistrar(const char *name, WorkloadRegistry::Factory factory)
    {
        WorkloadRegistry::instance().add(name, std::move(factory));
    }
};

/** Self-register a workload; see TPP_REGISTER_POLICY for the shape. */
#define TPP_REGISTER_WORKLOAD_AS(ident, name, ...)                           \
    namespace {                                                              \
    const ::tpp::WorkloadRegistrar tppWorkloadRegistrar_##ident{             \
        name, __VA_ARGS__};                                                  \
    }
#define TPP_REGISTER_WORKLOAD(ident, ...)                                    \
    TPP_REGISTER_WORKLOAD_AS(ident, #ident, __VA_ARGS__)

} // namespace tpp

#endif // TPP_WORKLOADS_WORKLOAD_REGISTRY_HH
