# Empty dependencies file for tpp_core.
# This may be replaced when dependencies are built.
