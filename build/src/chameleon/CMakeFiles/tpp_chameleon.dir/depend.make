# Empty dependencies file for tpp_chameleon.
# This may be replaced when dependencies are built.
