file(REMOVE_RECURSE
  "CMakeFiles/fig07_page_temperature.dir/fig07_page_temperature.cpp.o"
  "CMakeFiles/fig07_page_temperature.dir/fig07_page_temperature.cpp.o.d"
  "fig07_page_temperature"
  "fig07_page_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_page_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
