#include "mm/lru.hh"

#include "sim/logging.hh"

namespace tpp {

LruSet::LruSet(MemorySystem &mem, NodeId nid)
    : frames_(mem.frameData()), nid_(nid)
{
    heads_.fill(kInvalidPfn);
    tails_.fill(kInvalidPfn);
    counts_.fill(0);
}

void
LruSet::addHead(LruListId list, Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    if (f.lru != LruListId::None)
        tpp_panic("addHead: frame %u already on a list", pfn);
    if (f.nid != nid_)
        tpp_panic("addHead: frame %u belongs to node %u, not %u", pfn,
                  f.nid, nid_);
    const std::size_t i = index(list);
    f.lru = list;
    f.lruPrev = kInvalidPfn;
    f.lruNext = heads_[i];
    if (heads_[i] != kInvalidPfn)
        frames_[heads_[i]].lruPrev = pfn;
    heads_[i] = pfn;
    if (tails_[i] == kInvalidPfn)
        tails_[i] = pfn;
    counts_[i]++;
}

void
LruSet::addTail(LruListId list, Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    if (f.lru != LruListId::None)
        tpp_panic("addTail: frame %u already on a list", pfn);
    if (f.nid != nid_)
        tpp_panic("addTail: frame %u belongs to node %u, not %u", pfn,
                  f.nid, nid_);
    const std::size_t i = index(list);
    f.lru = list;
    f.lruNext = kInvalidPfn;
    f.lruPrev = tails_[i];
    if (tails_[i] != kInvalidPfn)
        frames_[tails_[i]].lruNext = pfn;
    tails_[i] = pfn;
    if (heads_[i] == kInvalidPfn)
        heads_[i] = pfn;
    counts_[i]++;
}

void
LruSet::remove(Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    if (f.lru == LruListId::None)
        tpp_panic("remove: frame %u not on any list", pfn);
    const std::size_t i = index(f.lru);
    if (f.lruPrev != kInvalidPfn)
        frames_[f.lruPrev].lruNext = f.lruNext;
    else
        heads_[i] = f.lruNext;
    if (f.lruNext != kInvalidPfn)
        frames_[f.lruNext].lruPrev = f.lruPrev;
    else
        tails_[i] = f.lruPrev;
    counts_[i]--;
    f.lru = LruListId::None;
    f.lruPrev = f.lruNext = kInvalidPfn;
}

Pfn
LruSet::tail(LruListId list) const
{
    return tails_[index(list)];
}

Pfn
LruSet::head(LruListId list) const
{
    return heads_[index(list)];
}

void
LruSet::activate(Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    if (lruIsActive(f.lru))
        tpp_panic("activate: frame %u already active", pfn);
    const PageType type = f.type;
    remove(pfn);
    addHead(lruListFor(type, true), pfn);
}

void
LruSet::deactivate(Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    if (!lruIsActive(f.lru))
        tpp_panic("deactivate: frame %u not active", pfn);
    const PageType type = f.type;
    remove(pfn);
    addHead(lruListFor(type, false), pfn);
}

void
LruSet::rotate(Pfn pfn)
{
    PageFrame &f = frames_[pfn];
    const LruListId list = f.lru;
    if (list == LruListId::None)
        tpp_panic("rotate: frame %u not on any list", pfn);
    remove(pfn);
    addHead(list, pfn);
}

std::uint64_t
LruSet::count(LruListId list) const
{
    return counts_[index(list)];
}

std::uint64_t
LruSet::countType(PageType type) const
{
    return count(lruListFor(type, true)) + count(lruListFor(type, false));
}

std::uint64_t
LruSet::countAll() const
{
    std::uint64_t total = 0;
    for (auto c : counts_)
        total += c;
    return total;
}

void
LruSet::checkConsistency() const
{
    for (std::size_t i = 0; i < kNumLruLists; ++i) {
        const LruListId list = static_cast<LruListId>(i + 1);
        std::uint64_t seen = 0;
        Pfn prev = kInvalidPfn;
        Pfn cur = heads_[i];
        while (cur != kInvalidPfn) {
            const PageFrame &f = frames_[cur];
            if (f.lru != list)
                tpp_panic("consistency: frame %u on wrong list", cur);
            if (f.lruPrev != prev)
                tpp_panic("consistency: frame %u bad prev link", cur);
            if (f.nid != nid_)
                tpp_panic("consistency: frame %u on foreign node list",
                          cur);
            seen++;
            if (seen > counts_[i])
                tpp_panic("consistency: list %zu longer than count", i);
            prev = cur;
            cur = f.lruNext;
        }
        if (seen != counts_[i])
            tpp_panic("consistency: list %zu count %llu != walked %llu", i,
                      static_cast<unsigned long long>(counts_[i]),
                      static_cast<unsigned long long>(seen));
        if (tails_[i] != prev)
            tpp_panic("consistency: list %zu bad tail", i);
    }
}

} // namespace tpp
