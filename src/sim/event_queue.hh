/**
 * @file
 * Discrete-event simulation core.
 *
 * Components schedule callbacks at absolute ticks; run() drains events in
 * (tick, insertion-order) order, so simultaneous events execute in the
 * order they were scheduled — a property several kernel daemons rely on
 * (e.g. kswapd runs before a workload batch scheduled at the same tick
 * only if it was scheduled first).
 */

#ifndef TPP_SIM_EVENT_QUEUE_HH
#define TPP_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace tpp {

/** Handle used to cancel a scheduled event. */
using EventId = std::uint64_t;

/**
 * Priority queue of timed callbacks driving the whole simulation.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule a callback at absolute tick `when`. Scheduling in the past
     * is a simulator bug and panics.
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, std::function<void()> fn);

    /** Schedule a callback `delay` ticks from now. */
    EventId scheduleAfter(Tick delay, std::function<void()> fn);

    /** Cancel a pending event. Cancelling a fired/unknown id is a no-op. */
    void cancel(EventId id);

    /** @return number of pending (non-cancelled) events. */
    std::size_t
    pending() const
    {
        // cancelled_ may retain ids of events that already fired, so clamp.
        return queue_.size() > cancelled_.size()
                   ? queue_.size() - cancelled_.size()
                   : 0;
    }

    /**
     * Run until the queue empties or simulated time would pass `until`.
     * Events scheduled exactly at `until` do fire.
     */
    void run(Tick until);

    /** Run until the queue is completely empty. */
    void runAll();

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Item {
        Tick when;
        EventId id;
        std::function<void()> fn;
    };

    struct Order {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop the next non-cancelled event, or return false if none. */
    bool popNext(Item &out);

    Tick now_ = 0;
    EventId nextId_ = 1;
    std::priority_queue<Item, std::vector<Item>, Order> queue_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace tpp

#endif // TPP_SIM_EVENT_QUEUE_HH
