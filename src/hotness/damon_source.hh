/**
 * @file
 * DamonSource: DAMON-lite region aggregates as a HotnessSource. The
 * source owns a DamonMonitor whose aggregation interval is tied to the
 * hotness epoch, so every extractHot() sees a freshly published region
 * view; a page's temperature is its containing region's nrAccesses.
 *
 * Region granularity is the point of comparison: DAMON's overhead is
 * proportional to the region count, not memory size, but a hot page in
 * a lukewarm region inherits the region's mediocre score — exactly the
 * precision/overhead trade the source ladder is built to show.
 */

#ifndef TPP_HOTNESS_DAMON_SOURCE_HH
#define TPP_HOTNESS_DAMON_SOURCE_HH

#include <memory>

#include "hotness/hotness_source.hh"
#include "mm/damon.hh"

namespace tpp {

class DamonSource : public HotnessSource
{
  public:
    explicit DamonSource(const HotnessConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "damon"; }

    void attach(Kernel &kernel) override;
    void start() override;

    double temperature(Pfn pfn) const override;
    std::vector<HotPage> extractHot(std::uint64_t max_pages) override;

    const DamonMonitor &monitor() const { return *monitor_; }

  private:
    const DamonRegion *regionOf(Asid asid, Vpn vpn) const;

    const HotnessConfig &cfg_;
    std::unique_ptr<DamonMonitor> monitor_;
};

} // namespace tpp

#endif // TPP_HOTNESS_DAMON_SOURCE_HH
