/**
 * @file
 * Device-side access observation hook.
 *
 * A KernelAccessTap sees every resolved memory access on the physical
 * side — the frame actually served, after fault handling and hint-fault
 * processing. It models hardware that sits on the memory path (NeoMem's
 * CXL-device counter engine), as opposed to the workload-side
 * AccessObserver which models user-space profilers seeing virtual
 * references.
 *
 * The interface lives in src/mm so the Kernel can carry a null-gated
 * pointer without depending on src/hotness; implementations must only
 * observe simulation state, never steer it — with the tap detached the
 * simulation is bit-identical (the golden fingerprints in
 * tests/test_migration_compat.cc pin this down for the default
 * configuration).
 */

#ifndef TPP_MM_ACCESS_TAP_HH
#define TPP_MM_ACCESS_TAP_HH

#include "sim/types.hh"

namespace tpp {

struct PageFrame;

/** Observer of resolved (physical) memory accesses. */
class KernelAccessTap
{
  public:
    virtual ~KernelAccessTap() = default;

    /**
     * One access served by `frame`, issued by a task on `task_nid` at
     * simulated time `now`. Called after fault and hint-fault handling,
     * so `frame` is the frame that actually satisfied the access.
     */
    virtual void onKernelAccess(const PageFrame &frame, NodeId task_nid,
                                Tick now) = 0;
};

} // namespace tpp

#endif // TPP_MM_ACCESS_TAP_HH
