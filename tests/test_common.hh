/**
 * @file
 * Shared fixtures for the unit and integration tests: a small tiered
 * machine with a kernel, one process, and helpers to populate memory.
 */

#ifndef TPP_TESTS_TEST_COMMON_HH
#define TPP_TESTS_TEST_COMMON_HH

#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "mm/kernel.hh"
#include "policy/default_linux.hh"
#include "sim/logging.hh"

namespace tpp {
namespace test {

/**
 * A machine with one local and one CXL node plus a kernel and process.
 */
struct TestMachine {
    EventQueue eq;
    MemorySystem mem;
    Kernel kernel;
    Asid asid;

    explicit TestMachine(std::uint64_t local_pages = 1024,
                         std::uint64_t cxl_pages = 1024,
                         std::unique_ptr<PlacementPolicy> policy =
                             std::make_unique<DefaultLinuxPolicy>(),
                         MigrationConfig migration = {})
        : mem(TopologyBuilder::cxlSystem(local_pages, cxl_pages)),
          kernel(mem, eq, std::move(policy), MmCosts{}, migration),
          asid(kernel.createProcess())
    {
        setLogVerbose(false);
        kernel.start();
    }

    /** Map a region and touch every page once. */
    Vpn
    populate(std::uint64_t pages, PageType type = PageType::Anon,
             bool disk_backed = false, NodeId task_nid = 0)
    {
        const Vpn base =
            kernel.mmap(asid, pages, type, "test", disk_backed);
        for (std::uint64_t i = 0; i < pages; ++i)
            kernel.access(asid, base + i, AccessKind::Store, task_nid);
        return base;
    }

    Pte &pte(Vpn vpn) { return kernel.addressSpace(asid).pte(vpn); }

    PageFrame &frameOf(Vpn vpn) { return mem.frame(pte(vpn).pfn); }

    NodeId local() const { return mem.cpuNodes().front(); }
    NodeId cxl() const { return mem.cxlNodes().front(); }
};

} // namespace test
} // namespace tpp

#endif // TPP_TESTS_TEST_COMMON_HH
