file(REMOVE_RECURSE
  "libtpp_sim.a"
)
