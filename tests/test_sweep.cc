/**
 * @file
 * Tests for the parallel sweep engine (ThreadPool, SweepRunner,
 * BaselineCache), the policy/workload registries, and the hardened
 * parseRatio().
 */

#include <atomic>
#include <sstream>

#include "harness/export.hh"
#include "harness/sweep.hh"
#include "harness/thread_pool.hh"
#include "mm/policy_registry.hh"
#include "test_common.hh"
#include "workloads/workload_registry.hh"

namespace tpp {
namespace {

// A policy registered from this TU: proves registration needs no edits
// to the harness or the registry itself.
TPP_REGISTER_POLICY_AS(testEcho, "test-echo", [](const PolicyParams &) {
    return std::make_unique<DefaultLinuxPolicy>();
});

/** A short run so sweep tests stay fast. */
ExperimentConfig
smallConfig(const std::string &workload, const std::string &policy,
            const char *ratio)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.policy = policy;
    cfg.wssPages = 4096;
    cfg.localFraction = parseRatio(ratio);
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    return cfg;
}

/** Full serialisation — bitwise-equal doubles produce equal strings. */
std::string
fingerprint(const ExperimentResult &res)
{
    std::ostringstream out;
    writeResultJson(out, res);
    out << res.vmstat.report();
    writeSamplesCsv(out, res);
    return out.str();
}

TEST(ThreadPool, RunsAllJobsAndWaits)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> done{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { done++; });
    pool.wait();
    EXPECT_EQ(done.load(), 100);

    // The pool is reusable after a wait().
    pool.submit([&] { done++; });
    pool.wait();
    EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPool, WaitRethrowsJobException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, HardwareConcurrencyIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(Sweep, ParallelMatchesSerialBitForBit)
{
    // A mixed policy x ratio grid, plus the all-local baseline.
    std::vector<ExperimentConfig> cfgs;
    ExperimentConfig base = smallConfig("cache1", "linux", "2:1");
    base.allLocal = true;
    cfgs.push_back(base);
    for (const char *policy : {"linux", "tpp", "numa-balancing"})
        for (const char *ratio : {"2:1", "1:4"})
            cfgs.push_back(smallConfig("cache1", policy, ratio));

    BaselineCache::instance().clear();
    SweepOptions serial;
    serial.jobs = 1;
    const auto serial_results = SweepRunner(serial).run(cfgs);

    BaselineCache::instance().clear();
    SweepOptions parallel;
    parallel.jobs = 4;
    const auto parallel_results = SweepRunner(parallel).run(cfgs);

    ASSERT_EQ(serial_results.size(), cfgs.size());
    ASSERT_EQ(parallel_results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        EXPECT_EQ(fingerprint(serial_results[i]),
                  fingerprint(parallel_results[i]))
            << "config " << i << " diverged under --jobs 4";
    }
}

TEST(Sweep, MemoizationSimulatesDuplicatesOnce)
{
    // Three identical all-local configs: with memoization only the
    // leader reaches the BaselineCache, so exactly one miss.
    BaselineCache::instance().clear();
    ExperimentConfig cfg = smallConfig("web", "linux", "2:1");
    cfg.allLocal = true;
    const std::vector<ExperimentConfig> cfgs = {cfg, cfg, cfg};

    SweepOptions opts;
    opts.jobs = 2;
    const auto results = SweepRunner(opts).run(cfgs);
    EXPECT_EQ(BaselineCache::instance().misses(), 1u);
    EXPECT_EQ(BaselineCache::instance().hits(), 0u);
    EXPECT_EQ(fingerprint(results[0]), fingerprint(results[1]));
    EXPECT_EQ(fingerprint(results[0]), fingerprint(results[2]));

    // Without memoization every copy consults the cache instead.
    BaselineCache::instance().clear();
    opts.memoize = false;
    const auto raw = SweepRunner(opts).run(cfgs);
    EXPECT_EQ(BaselineCache::instance().misses(), 1u);
    EXPECT_EQ(BaselineCache::instance().hits(), 2u);
    EXPECT_EQ(fingerprint(raw[0]), fingerprint(results[0]));
}

TEST(Sweep, BaselineCacheServesRelativeRuns)
{
    BaselineCache::instance().clear();
    ExperimentConfig cfg = smallConfig("cache1", "tpp", "1:4");

    ExperimentResult run1, baseline1;
    const double rel1 = relativeToAllLocal(cfg, &run1, &baseline1);
    EXPECT_EQ(BaselineCache::instance().misses(), 1u);
    EXPECT_EQ(BaselineCache::instance().hits(), 0u);

    // A second policy against the same machine reuses the baseline.
    cfg.policy = "linux";
    ExperimentResult run2, baseline2;
    const double rel2 = relativeToAllLocal(cfg, &run2, &baseline2);
    EXPECT_EQ(BaselineCache::instance().misses(), 1u);
    EXPECT_EQ(BaselineCache::instance().hits(), 1u);

    EXPECT_EQ(fingerprint(baseline1), fingerprint(baseline2));
    EXPECT_GT(rel1, 0.0);
    EXPECT_GT(rel2, 0.0);
}

TEST(Sweep, CanonicalKeySeparatesConfigs)
{
    const ExperimentConfig cfg = smallConfig("cache1", "tpp", "1:4");
    ExperimentConfig copy = cfg;
    EXPECT_EQ(canonicalKey(cfg), canonicalKey(copy));

    copy.seed = 2;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.tpp.scanBatch += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.sysctls.emplace_back("vm.demote_scale_factor", "40");
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    // Telemetry fields separate configs too: a traced result carries
    // different payload than an untraced one and must not share a memo
    // slot.
    copy = cfg;
    copy.traceEnabled = true;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.traceCapacity = 1024;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.sampleSeries = true;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.samplePeriod = 42;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    // The MigrationEngine mode changes simulation results and must
    // never share a memo slot with the compat mode.
    copy = cfg;
    copy.migration = MigrationConfig::asyncEngine();
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.migration.rateLimitMBps = 64.0;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    // The twin differs from its source and strips policy state — and
    // telemetry, so every figure shares one cached baseline run.
    ExperimentConfig source = cfg;
    source.traceEnabled = true;
    source.sampleSeries = true;
    source.samplePeriod = 42;
    const ExperimentConfig twin = allLocalTwin(source);
    EXPECT_NE(canonicalKey(cfg), canonicalKey(twin));
    EXPECT_TRUE(twin.allLocal);
    EXPECT_EQ(twin.policy, "linux");
    EXPECT_TRUE(twin.sysctls.empty());
    EXPECT_FALSE(twin.traceEnabled);
    EXPECT_FALSE(twin.sampleSeries);
    EXPECT_EQ(twin.samplePeriod, 0u);
}

TEST(Sweep, CanonicalKeySeparatesHotnessConfigs)
{
    // Two configs differing only in hotness settings must never share a
    // memo slot — the PR-3 lesson, re-learned for src/hotness.
    const ExperimentConfig cfg = smallConfig("cache1", "hotness", "1:4");
    ExperimentConfig copy = cfg;
    EXPECT_EQ(canonicalKey(cfg), canonicalKey(copy));

    copy.hotness.source = "neoprof";
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.epochPeriod += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.promoteBatch += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.hotWindow += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.hotThreshold += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.counterTableSize += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.decayHalfLife += 1;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    copy = cfg;
    copy.hotness.targetQuantile = 0.9;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    // Recall measurement changes what the result carries (like
    // telemetry): no shared memo slot, and the all-local twin drops it.
    copy = cfg;
    copy.measureHotness = true;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));
    EXPECT_FALSE(allLocalTwin(copy).measureHotness);
}

TEST(Sweep, CanonicalKeyTwinStripsState)
{
    const ExperimentConfig cfg = smallConfig("cache1", "tpp", "1:4");
    ExperimentConfig source = cfg;
    source.traceEnabled = true;
    source.sampleSeries = true;
    source.samplePeriod = 42;
    const ExperimentConfig twin = allLocalTwin(source);
    EXPECT_NE(canonicalKey(cfg), canonicalKey(twin));
    EXPECT_TRUE(twin.allLocal);
    EXPECT_EQ(twin.policy, "linux");
    EXPECT_TRUE(twin.sysctls.empty());
    EXPECT_FALSE(twin.traceEnabled);
    EXPECT_FALSE(twin.sampleSeries);
    EXPECT_EQ(twin.samplePeriod, 0u);
}

TEST(Sweep, CanonicalKeySeparatesTenantConfigs)
{
    // Multi-tenant runs share a kernel between workloads: a config with
    // tenants simulates a different machine than the same config
    // without, and every tenant knob feeds the result.
    const ExperimentConfig cfg = smallConfig("cache1", "tpp", "1:4");
    ExperimentConfig copy = cfg;
    TenantSpec tenant;
    tenant.workload = "cache1";
    copy.tenants.push_back(tenant);
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    ExperimentConfig other = copy;
    other.tenants[0].wssPages = 2048;
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    other = copy;
    other.tenants[0].lowFraction = 0.6;
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    other = copy;
    other.tenants[0].budgetMBps = 10.0;
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    other = copy;
    other.tenants[0].placement = "cxl_only";
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    // The all-local baseline is a single-workload machine: the twin
    // strips tenants so every pairing shares one cached baseline.
    EXPECT_TRUE(allLocalTwin(copy).tenants.empty());
}

TEST(Sweep, CanonicalKeySeparatesOpenLoopConfigs)
{
    const ExperimentConfig cfg = smallConfig("web", "tpp", "1:4");
    ExperimentConfig copy = cfg;
    copy.openLoop.qps = 1e5;
    EXPECT_NE(canonicalKey(cfg), canonicalKey(copy));

    ExperimentConfig other = copy;
    other.openLoop.arrival = "bursty";
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    other = copy;
    other.openLoop.sloP99Us = 500.0;
    EXPECT_NE(canonicalKey(copy), canonicalKey(other));

    // A tenant's qps feeds the key too.
    ExperimentConfig tenanted = cfg;
    TenantSpec tenant;
    tenant.workload = "web";
    tenanted.tenants.push_back(tenant);
    ExperimentConfig tenanted_ol = tenanted;
    tenanted_ol.tenants[0].openLoop.qps = 1e5;
    EXPECT_NE(canonicalKey(tenanted), canonicalKey(tenanted_ol));

    // The all-local twin is closed-loop: open-loop shape must not
    // split the shared baseline cache entry.
    EXPECT_EQ(canonicalKey(allLocalTwin(cfg)),
              canonicalKey(allLocalTwin(copy)));
}

TEST(Sweep, RejectsOneBadConfigAndRunsTheRest)
{
    // One config in the batch is malformed (tenant wss oversubscribes
    // the machine): the sweep must fail *that* config with a
    // diagnostic and still run the other one.
    ExperimentConfig good = smallConfig("web", "linux", "1:1");
    ExperimentConfig bad = smallConfig("web", "linux", "1:1");
    bad.tenants = parseTenantsSpec("web:wss=4000;dwh:wss=4000");

    SweepOptions opts;
    opts.jobs = 1;
    const std::vector<ExperimentResult> results =
        SweepRunner(opts).run({good, bad});

    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].failed());
    EXPECT_GT(results[0].throughput, 0.0);
    ASSERT_TRUE(results[1].failed());
    EXPECT_NE(results[1].error.find("wss"), std::string::npos)
        << results[1].error;
    EXPECT_EQ(results[1].throughput, 0.0);
}

TEST(Export, CsvQuotesHostileFields)
{
    EXPECT_EQ(csvField("plain"), "plain");
    EXPECT_EQ(csvField("a,b"), "\"a,b\"");
    EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");
    EXPECT_EQ(csvField(""), "");

    // Regression: workload/policy used to be written raw, so a comma in
    // a registered name shifted every column after it and an embedded
    // quote corrupted the row (RFC 4180 requires doubling).
    ExperimentResult res;
    res.workload = "cache,1";
    res.policy = "tpp \"patched\"";
    std::ostringstream out;
    writeResultsCsv(out, {res});
    const std::string text = out.str();
    const std::size_t row = text.find('\n') + 1;
    EXPECT_EQ(text.substr(row, text.find('\n', row) - row),
              "\"cache,1\",\"tpp \"\"patched\"\"\",0.000,0.000,0.000,"
              "0.000,0.000,0.000,0.000");
}

TEST(Registry, PoliciesSelfRegister)
{
    auto &reg = PolicyRegistry::instance();
    for (const char *name : {"linux", "numa-balancing", "numa",
                             "autotiering", "damon-reclaim", "tpp"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    const auto names = reg.names();
    EXPECT_GE(names.size(), 6u);

    // A policy registered by this test TU resolves through makePolicy.
    ExperimentConfig cfg;
    cfg.policy = "test-echo";
    auto policy = makePolicy(cfg);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), "linux");
}

TEST(Registry, WorkloadsSelfRegister)
{
    auto &reg = WorkloadRegistry::instance();
    for (const char *name : {"web", "cache1", "cache2", "dwh",
                             "data-warehouse", "ycsb-a", "ycsb-b",
                             "ycsb-c", "ycsb-d"}) {
        EXPECT_TRUE(reg.contains(name)) << name;
    }
    WorkloadSpec spec;
    spec.name = "web";
    spec.wssPages = 1024;
    auto workload = reg.make(spec);
    ASSERT_NE(workload, nullptr);
}

TEST(RegistryDeathTest, UnknownNamesListTheRegistered)
{
    setLogVerbose(false);
    ExperimentConfig cfg;
    cfg.policy = "no-such-policy";
    EXPECT_DEATH(makePolicy(cfg), "unknown policy.*registered.*tpp");

    WorkloadSpec spec;
    spec.name = "no-such-workload";
    spec.wssPages = 1024;
    EXPECT_DEATH(WorkloadRegistry::instance().make(spec),
                 "unknown workload.*registered.*web");
}

TEST(ParseRatio, AcceptsWellFormedRatios)
{
    EXPECT_NEAR(parseRatio("2:1"), 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(parseRatio("1:4"), 0.2, 1e-12);
    EXPECT_NEAR(parseRatio("1:0"), 1.0, 1e-12); // all-local as a ratio
    EXPECT_NEAR(parseRatio("1.5:0.5"), 0.75, 1e-12);
}

TEST(ParseRatioDeathTest, RejectsMalformedRatios)
{
    setLogVerbose(false);
    EXPECT_DEATH(parseRatio(""), "capacity ratio");
    EXPECT_DEATH(parseRatio("21"), "capacity ratio");
    EXPECT_DEATH(parseRatio("2:"), "capacity ratio");
    EXPECT_DEATH(parseRatio(":1"), "capacity ratio");
    EXPECT_DEATH(parseRatio("2:1:3"), "capacity ratio");
    EXPECT_DEATH(parseRatio("a:b"), "capacity ratio");
    EXPECT_DEATH(parseRatio("2x:1"), "capacity ratio");
    EXPECT_DEATH(parseRatio("nan:1"), "capacity ratio");
    EXPECT_DEATH(parseRatio("inf:1"), "capacity ratio");
}

TEST(ParseRatioDeathTest, RejectsNonPositiveShares)
{
    setLogVerbose(false);
    EXPECT_DEATH(parseRatio("0:1"), "capacity ratio");
    EXPECT_DEATH(parseRatio("-1:4"), "capacity ratio");
    EXPECT_DEATH(parseRatio("1:-4"), "capacity ratio");
}

} // namespace
} // namespace tpp
