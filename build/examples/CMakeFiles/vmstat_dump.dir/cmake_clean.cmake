file(REMOVE_RECURSE
  "CMakeFiles/vmstat_dump.dir/vmstat_dump.cpp.o"
  "CMakeFiles/vmstat_dump.dir/vmstat_dump.cpp.o.d"
  "vmstat_dump"
  "vmstat_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmstat_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
