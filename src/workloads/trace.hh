/**
 * @file
 * Trace-replay workload: replays an explicit list of page references.
 * Used by tests (deterministic micro-scenarios) and available to users
 * who want to feed recorded traces through the placement policies.
 */

#ifndef TPP_WORKLOADS_TRACE_HH
#define TPP_WORKLOADS_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace tpp {

/** One trace entry: a page reference relative to the trace's region. */
struct TraceEntry {
    std::uint64_t pageIndex = 0;
    AccessKind kind = AccessKind::Load;
};

/**
 * Replays a fixed access trace over a single region.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * @param region_pages  size of the backing region
     * @param trace         references into [0, region_pages)
     * @param type          page type of the region
     * @param batch         references replayed per batch
     */
    TraceWorkload(std::uint64_t region_pages, std::vector<TraceEntry> trace,
                  PageType type = PageType::Anon, std::uint64_t batch = 1024,
                  double think_ns = 200.0);

    std::string name() const override { return "trace"; }

    void init(Kernel &kernel) override;
    BatchResult runBatch(Kernel &kernel) override;
    BatchResult runOps(Kernel &kernel, std::uint64_t ops) override;
    bool done() const override { return cursor_ >= trace_.size(); }

    Asid asid() const { return asid_; }
    Vpn base() const { return base_; }

  private:
    std::uint64_t regionPages_;
    std::vector<TraceEntry> trace_;
    PageType type_;
    std::uint64_t batch_;
    ThinkTimeModel think_;

    Asid asid_ = 0;
    Vpn base_ = 0;
    std::size_t cursor_ = 0;
};

} // namespace tpp

#endif // TPP_WORKLOADS_TRACE_HH
