#include "hotness/hotness_policy.hh"

#include "mm/kernel.hh"
#include "mm/policy_registry.hh"

namespace tpp {

void
HotnessPolicy::attach(Kernel &kernel)
{
    TppPolicy::attach(kernel);
    source_ = makeHotnessSource(hcfg_);
    source_->attach(kernel);

    SysctlRegistry &sysctl = kernel.sysctl();
    sysctl.registerReadOnly("vm.hotness.source",
                            [this] { return source_->name(); });
    // A zero epoch period or counter table would wedge the epoch timer
    // / drop every sample; the quantile is a probability by definition.
    sysctl.registerU64("vm.hotness.epoch_period_ns", &hcfg_.epochPeriod,
                       nullptr, /*min_value=*/1);
    sysctl.registerU64("vm.hotness.promote_batch", &hcfg_.promoteBatch);
    sysctl.registerU64("vm.hotness.hot_window_ns", &hcfg_.hotWindow);
    sysctl.registerU64("vm.hotness.hot_threshold", &hcfg_.hotThreshold);
    sysctl.registerU64("vm.hotness.counter_table_size",
                       &hcfg_.counterTableSize, nullptr,
                       /*min_value=*/1);
    sysctl.registerU64("vm.hotness.decay_half_life_ns",
                       &hcfg_.decayHalfLife);
    sysctl.registerDouble("vm.hotness.target_quantile",
                          &hcfg_.targetQuantile, nullptr,
                          /*min_value=*/0.0, /*max_value=*/1.0);
}

void
HotnessPolicy::start()
{
    // The NUMA scanner only runs when the source consumes hint faults;
    // device- and profiler-backed sources get their signal elsewhere
    // and the prot_none faults would be pure overhead.
    if (source_->wantsHintFaults())
        TppPolicy::start();
    source_->start();
    kernel_->eventQueue().scheduleAfter(hcfg_.epochPeriod,
                                        [this] { epochTick(); });
}

bool
HotnessPolicy::scanNode(NodeId nid) const
{
    return source_->wantsHintFaults() && TppPolicy::scanNode(nid);
}

double
HotnessPolicy::onHintFault(Pfn pfn, NodeId task_nid)
{
    // Hint faults are demoted from promotion triggers to temperature
    // samples: record and return, never migrate inline. Promotion
    // happens in batch at the epoch boundary.
    Kernel &k = *kernel_;
    PageFrame &frame = k.mem().frame(pfn);
    k.mem().frameCold(pfn).lastHintFault = k.eventQueue().now();
    if (!k.mem().tiers().isToptier(frame.nid))
        source_->noteHintFault(pfn, task_nid);
    return 0.0;
}

void
HotnessPolicy::epochTick()
{
    Kernel &k = *kernel_;
    epochs_++;
    source_->advanceEpoch();

    std::uint32_t promoted = 0;
    const std::vector<HotPage> hot = source_->extractHot(hcfg_.promoteBatch);
    for (const HotPage &page : hot) {
        PageFrame &frame = k.mem().frame(page.pfn);
        // The source's view can be one epoch stale; re-check liveness.
        if (frame.isFree() || frame.underMigration() ||
            k.mem().tiers().isToptier(frame.nid))
            continue;
        if (!promotionWithinRateLimit()) {
            k.vmstat().inc(Vm::PgPromoteFailRateLimit);
            k.trace().emitPage(TraceEvent::PromoteFailRateLimit,
                               k.eventQueue().now(), frame.nid, frame.type,
                               page.pfn,
                               k.mem().frameCold(page.pfn).ownerAsid,
                               k.mem().frameCold(page.pfn).ownerVpn);
            continue;
        }
        k.notePromoteCandidate(frame);
        const auto [ok, cost] =
            k.promotePage(page.pfn, frame.nid, promotionTarget(frame.nid));
        (void)cost;
        if (ok)
            promoted++;
    }
    if (!hot.empty())
        k.vmstat().inc(Vm::HotnessPromoteBatch);
    k.trace().emit(TraceEvent::HotnessEpoch, k.eventQueue().now(),
                   kInvalidNode, promoted);

    k.eventQueue().scheduleAfter(hcfg_.epochPeriod, [this] { epochTick(); });
}

TPP_REGISTER_POLICY(hotness, [](const PolicyParams &p) {
    return std::make_unique<HotnessPolicy>(p);
});

} // namespace tpp
