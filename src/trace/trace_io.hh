/**
 * @file
 * Trace serialisation: JSONL writing of tracepoint records and
 * time-series samples, and the matching reader used by the
 * trace_summary tool and the tests.
 *
 * The on-disk format is one self-describing JSON object per line,
 * discriminated by "kind":
 *
 *   {"kind":"event","workload":"web","policy":"tpp","tick":123,
 *    "event":"pg_demote","node":0,"aux":1,"type":"anon","pfn":7,
 *    "asid":0,"vpn":4242}
 *   {"kind":"sample","workload":"web","policy":"tpp","tick":100000000,
 *    "window_ns":100000000,"vm":{"pgpromote_success":12,...},
 *    "nodes":[{"nid":0,"free":123,"active_anon":...},...]}
 *
 * Lines are independent, so traces from several runs can share one
 * file (the bench binaries append every result of a sweep) and any
 * line-oriented tool can slice them.
 */

#ifndef TPP_TRACE_TRACE_IO_HH
#define TPP_TRACE_TRACE_IO_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/sampler.hh"
#include "trace/trace.hh"

namespace tpp {

/** Write one tracepoint record as a JSONL "event" line. */
void writeTraceEventJsonl(std::ostream &out, const TraceRecord &record,
                          const std::string &workload,
                          const std::string &policy);

/** Write one time-series point as a JSONL "sample" line. */
void writeSamplePointJsonl(std::ostream &out, const TimeSeriesPoint &point,
                           const std::string &workload,
                           const std::string &policy);

/** One parsed "event" line: the record plus its run tag. */
struct TaggedTraceRecord {
    std::string workload;
    std::string policy;
    TraceRecord record;
};

/**
 * Parse every "event" line of a JSONL trace stream; other kinds are
 * skipped. Malformed lines fatal() with the offending line number.
 */
std::vector<TaggedTraceRecord> readTraceEventsJsonl(std::istream &in);

/** Parse "pg_demote"-style names back to events; fatal() on unknown. */
TraceEvent traceEventFromName(const std::string &name);

} // namespace tpp

#endif // TPP_TRACE_TRACE_IO_HH
