#include "mm/sysctl.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace tpp {

void
SysctlRegistry::registerKnob(const std::string &name, Getter getter,
                             Setter setter)
{
    knobs_[name] = Knob{std::move(getter), std::move(setter)};
}

void
SysctlRegistry::registerReadOnly(const std::string &name, Getter getter)
{
    knobs_[name] = Knob{std::move(getter), nullptr};
}

void
SysctlRegistry::registerDouble(const std::string &name, double *value,
                               std::function<void()> on_change,
                               double min_value, double max_value)
{
    registerKnob(
        name,
        [value] {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%g", *value);
            return std::string(buf);
        },
        [value, on_change, min_value,
         max_value](const std::string &text) {
            char *end = nullptr;
            const double parsed = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0')
                return false;
            // "nan"/"inf" parse cleanly but no tunable means anything
            // with them; a non-finite rate or threshold silently
            // disables comparisons downstream.
            if (!std::isfinite(parsed))
                return false;
            if (parsed < min_value || parsed > max_value)
                return false;
            *value = parsed;
            if (on_change)
                on_change();
            return true;
        });
}

void
SysctlRegistry::registerBool(const std::string &name, bool *value,
                             std::function<void()> on_change)
{
    registerKnob(
        name,
        [value] { return std::string(*value ? "1" : "0"); },
        [value, on_change](const std::string &text) {
            if (text == "0")
                *value = false;
            else if (text == "1")
                *value = true;
            else
                return false;
            if (on_change)
                on_change();
            return true;
        });
}

void
SysctlRegistry::registerU64(const std::string &name, std::uint64_t *value,
                            std::function<void()> on_change,
                            std::uint64_t min_value,
                            std::uint64_t max_value)
{
    registerKnob(
        name,
        [value] { return std::to_string(*value); },
        [value, on_change, min_value,
         max_value](const std::string &text) {
            // strtoull happily parses "-1" as 2^64-1; an unsigned knob
            // must reject any sign (and leading whitespace, which would
            // hide one).
            if (text.empty() ||
                !std::isdigit(static_cast<unsigned char>(text[0])))
                return false;
            errno = 0;
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(text.c_str(), &end, 10);
            if (end == text.c_str() || *end != '\0' || errno == ERANGE)
                return false;
            if (parsed < min_value || parsed > max_value)
                return false;
            *value = parsed;
            if (on_change)
                on_change();
            return true;
        });
}

bool
SysctlRegistry::exists(const std::string &name) const
{
    return knobs_.count(name) != 0;
}

std::string
SysctlRegistry::get(const std::string &name) const
{
    auto it = knobs_.find(name);
    if (it == knobs_.end())
        return "";
    return it->second.getter();
}

bool
SysctlRegistry::set(const std::string &name, const std::string &value)
{
    auto it = knobs_.find(name);
    if (it == knobs_.end() || !it->second.setter)
        return false;
    return it->second.setter(value);
}

std::vector<std::string>
SysctlRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(knobs_.size());
    for (const auto &[name, knob] : knobs_)
        out.push_back(name);
    return out;
}

} // namespace tpp
