#include "policy/damon_reclaim.hh"

#include <memory>

#include "mm/kernel.hh"
#include "mm/policy_registry.hh"

namespace tpp {

void
DamonReclaimPolicy::start()
{
    monitor_ = std::make_unique<DamonMonitor>(*kernel_, cfg_.monitor);
    monitor_->start();
    kernel_->eventQueue().scheduleAfter(cfg_.opInterval,
                                       [this] { opTick(); });
}

void
DamonReclaimPolicy::opTick()
{
    Kernel &k = *kernel_;
    std::uint64_t quota = cfg_.quotaPagesPerOp;

    for (const DamonRegion &region : monitor_->regions()) {
        if (quota == 0)
            break;
        if (region.nrAccesses != 0 ||
            region.age < cfg_.coldMinAgeAggregations)
            continue;
        AddressSpace &as = k.addressSpace(region.asid);
        for (Vpn vpn = region.start; vpn < region.end && quota > 0;
             ++vpn) {
            if (vpn >= as.tableSize() || !as.isMapped(vpn))
                continue;
            const Pte &pte = as.pte(vpn);
            if (!pte.present())
                continue;
            const PageFrame &frame = k.mem().frame(pte.pfn);
            if (!k.mem().tiers().isToptier(frame.nid))
                continue; // already below the toptier
            if (frame.lru == LruListId::None || frame.referenced())
                continue; // racing with activity: leave it
            auto [freed, cost] = k.demotePage(pte.pfn);
            if (freed) {
                demoted_++;
                quota--;
            }
        }
    }
    kernel_->eventQueue().scheduleAfter(cfg_.opInterval,
                                       [this] { opTick(); });
}

TPP_REGISTER_POLICY_AS(damonReclaim, "damon-reclaim",
                       [](const PolicyParams &) {
                           return std::make_unique<DamonReclaimPolicy>();
                       });

} // namespace tpp
