/**
 * @file
 * Figure 9: anon/file usage over time.
 *
 * All-local runs of each workload, printing the resident anon and file
 * shares sampled once per interval.
 *
 * Paper shape: Web starts file-heavy (binary/bytecode preloading) and
 * anon grows over time while file caches shrink; Cache1/Cache2 hold a
 * steady ~70-82 % file share; DWH holds steady ~85 % anon.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 9",
                  "anon/file resident shares over time (all-local)");

    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : {"web", "cache1", "cache2", "dwh"}) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = wl;
        cfg.allLocal = true;
        cfg.policy = "linux";
        // This figure is built on the TimeSeriesSampler: the curves
        // below come from its per-node LRU snapshots, at the driver's
        // sample cadence unless --sample-ms overrides it.
        cfg.sampleSeries = true;
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        const ExperimentResult &res = results[w];

        std::printf("-- %s --\n", cfgs[w].workload.c_str());
        TextTable table({"t(s)", "anon share", "file share",
                         "resident pages"});
        for (std::size_t i = 0; i < res.series.size(); i += 10) {
            const TimeSeriesPoint &s = res.series[i];
            const std::uint64_t anon = s.anonResident();
            const std::uint64_t file = s.fileResident();
            const double total = static_cast<double>(anon + file);
            table.addRow(
                {TextTable::num(static_cast<double>(s.tick) / 1e9, 1),
                 TextTable::pct(total > 0 ? anon / total : 0.0),
                 TextTable::pct(total > 0 ? file / total : 0.0),
                 TextTable::count(anon + file)});
        }
        table.print();
        std::printf("\n");
    }
    std::printf("paper: Web file-heavy then anon grows; Cache ~75-80%% file "
                "steady; DWH ~85%% anon steady\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
