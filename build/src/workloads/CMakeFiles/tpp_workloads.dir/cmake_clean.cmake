file(REMOVE_RECURSE
  "CMakeFiles/tpp_workloads.dir/driver.cc.o"
  "CMakeFiles/tpp_workloads.dir/driver.cc.o.d"
  "CMakeFiles/tpp_workloads.dir/profiles.cc.o"
  "CMakeFiles/tpp_workloads.dir/profiles.cc.o.d"
  "CMakeFiles/tpp_workloads.dir/synthetic.cc.o"
  "CMakeFiles/tpp_workloads.dir/synthetic.cc.o.d"
  "CMakeFiles/tpp_workloads.dir/trace.cc.o"
  "CMakeFiles/tpp_workloads.dir/trace.cc.o.d"
  "CMakeFiles/tpp_workloads.dir/trace_io.cc.o"
  "CMakeFiles/tpp_workloads.dir/trace_io.cc.o.d"
  "CMakeFiles/tpp_workloads.dir/ycsb.cc.o"
  "CMakeFiles/tpp_workloads.dir/ycsb.cc.o.d"
  "libtpp_workloads.a"
  "libtpp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
