/**
 * @file
 * Sampling distributions used by workload generators.
 *
 * The key one is ZipfDistribution: datacenter access skew (hot keys in
 * Cache, hot heap objects in Web) is conventionally modelled as Zipfian.
 * Sampling uses the rejection-inversion method of Hörmann & Derflinger,
 * which is O(1) per sample and needs no O(n) table.
 */

#ifndef TPP_SIM_DISTRIBUTIONS_HH
#define TPP_SIM_DISTRIBUTIONS_HH

#include <cstdint>

#include "sim/rng.hh"

namespace tpp {

/**
 * Zipf-distributed integers over [0, n). Rank 0 is the most popular.
 *
 * P(k) proportional to 1 / (k + 1)^theta.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n      population size, must be >= 1
     * @param theta  skew exponent; 0 degenerates to uniform, ~0.99 is the
     *               YCSB default, larger is more skewed
     */
    ZipfDistribution(std::uint64_t n, double theta);

    /** Draw one rank in [0, n). */
    std::uint64_t operator()(Rng &rng) const;

    std::uint64_t size() const { return n_; }
    double theta() const { return theta_; }

  private:
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    std::uint64_t n_;
    double theta_;
    double hIntegralX1_;
    double hIntegralNumberOfElements_;
    double s_;
};

/**
 * Exponentially distributed doubles with the given mean.
 * Used for inter-arrival jitter and lifetime draws.
 */
class ExponentialDistribution
{
  public:
    explicit ExponentialDistribution(double mean);

    double operator()(Rng &rng) const;

    double mean() const { return mean_; }

  private:
    double mean_;
};

/**
 * Bounded Pareto distribution over [lo, hi] with shape alpha.
 * Used for heavy-tailed object lifetimes (short-lived request pages with
 * a long tail of long-lived ones).
 */
class BoundedParetoDistribution
{
  public:
    BoundedParetoDistribution(double lo, double hi, double alpha);

    double operator()(Rng &rng) const;

  private:
    double lo_;
    double hi_;
    double alpha_;
};

} // namespace tpp

#endif // TPP_SIM_DISTRIBUTIONS_HH
