file(REMOVE_RECURSE
  "CMakeFiles/tpp_policy.dir/autotiering.cc.o"
  "CMakeFiles/tpp_policy.dir/autotiering.cc.o.d"
  "CMakeFiles/tpp_policy.dir/damon_reclaim.cc.o"
  "CMakeFiles/tpp_policy.dir/damon_reclaim.cc.o.d"
  "CMakeFiles/tpp_policy.dir/numa_balancing.cc.o"
  "CMakeFiles/tpp_policy.dir/numa_balancing.cc.o.d"
  "libtpp_policy.a"
  "libtpp_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
