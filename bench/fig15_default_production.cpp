/**
 * @file
 * Figure 15: TPP vs default Linux on the production 2:1 configuration.
 *
 * For each workload: traffic served from local vs CXL node and
 * throughput relative to the all-from-local machine, under the default
 * Linux kernel and under TPP.
 *
 * Paper shape (2:1): Web — Linux serves only ~22 % locally and loses
 * 16.5 %, TPP serves ~90 % locally at 99.5 % of all-local; Cache1 —
 * Linux ~-3 %, TPP 99.9 %; Cache2 — Linux -2 %, TPP 99.6 %; DWH — both
 * within ~1 %.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const std::uint64_t wss = bench::wssFromArgs(argc, argv);

    bench::banner("Figure 15",
                  "default production environment (local:CXL = 2:1)");

    TextTable table({"workload", "policy", "local traffic", "cxl traffic",
                     "tput vs all-local", "anon on local", "file on local"});

    for (const char *wl : {"web", "cache1", "cache2", "dwh"}) {
        ExperimentConfig base;
        base.workload = wl;
        base.wssPages = wss;
        base.allLocal = true;
        base.policy = "linux";
        const ExperimentResult baseline = runExperiment(base);

        for (const char *policy : {"linux", "tpp"}) {
            ExperimentConfig cfg = base;
            cfg.allLocal = false;
            cfg.localFraction = parseRatio("2:1");
            cfg.policy = policy;
            const ExperimentResult res = runExperiment(cfg);
            table.addRow({wl, policy,
                          TextTable::pct(res.localTrafficShare),
                          TextTable::pct(res.cxlTrafficShare),
                          TextTable::pct(res.throughput /
                                         baseline.throughput),
                          TextTable::pct(res.anonLocalResidency),
                          TextTable::pct(res.fileLocalResidency)});
        }
    }
    table.print();
    std::printf("\npaper: Web linux 22%%/78%% @83.5%%, tpp 90%%/10%% @99.5%%;"
                " Cache1 linux ~97%%, tpp 99.9%%; Cache2 linux 78%% local"
                " @98%%, tpp 91%% @99.6%%; DWH both ~99%%+\n");
    return 0;
}
