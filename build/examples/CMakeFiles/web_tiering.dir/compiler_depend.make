# Empty compiler generated dependencies file for web_tiering.
# This may be replaced when dependencies are built.
