/**
 * @file
 * WorkloadProfile factories for the four production workloads of §3.2,
 * parameterised to match the published characterisation:
 *
 *  - Web (Fig 9a): heavy file preloading at start (VM binary +
 *    bytecode), anon heap that grows over time and displaces the file
 *    cache; anon much hotter than file (35 % vs 14 % per interval);
 *    short-lived request allocations; ~80 % of cold pages re-accessed
 *    within ten minutes.
 *  - Cache1/Cache2 (Fig 9b/9c): large tmpfs lookup structures (~75-80 %
 *    of memory), steady anon/file ratio; Cache2's file pages are nearly
 *    as hot as its anons (45 % vs 43 %), Cache1's much less (25 % vs
 *    40 %).
 *  - Data Warehouse (Fig 9d): 85 % anon compute data, mostly *newly
 *    allocated* each stage (low re-access), plus a cold write-once file
 *    region for intermediate results.
 *
 * Timescale note: the simulator compresses behavioural timescales by
 * ~120x — one simulated second corresponds to the paper's two-minute
 * characterisation interval (kProfileInterval). Hardware latencies stay
 * physical; only hot-set drift, churn and daemon cadences are scaled.
 */

#ifndef TPP_WORKLOADS_PROFILES_HH
#define TPP_WORKLOADS_PROFILES_HH

#include <cstdint>
#include <string>

#include "workloads/synthetic.hh"

namespace tpp {

/** Simulated time standing in for the paper's 2-minute interval. */
inline constexpr Tick kProfileInterval = 1 * kSecond;

/**
 * Profile factories. `wss_pages` is the workload's total working-set
 * reservation; experiments size node capacities relative to it.
 */
namespace profiles {

WorkloadProfile web(std::uint64_t wss_pages, std::uint64_t seed = 1);
WorkloadProfile cache1(std::uint64_t wss_pages, std::uint64_t seed = 1);
WorkloadProfile cache2(std::uint64_t wss_pages, std::uint64_t seed = 1);
WorkloadProfile dataWarehouse(std::uint64_t wss_pages,
                              std::uint64_t seed = 1);
/**
 * Antagonist for multi-tenant co-location studies: an allocation-heavy
 * scan workload with almost no reuse, churning its whole working set
 * every couple of intervals. Without cgroup protection its allocation
 * bursts evict a co-located victim's hot set from the fast tier; its
 * own pages are a poor use of that tier (it barely re-accesses them).
 */
WorkloadProfile churn(std::uint64_t wss_pages, std::uint64_t seed = 1);
/**
 * Phase-shifting workload for the adaptive-policy ablation: a
 * cache1-like lookup service and a churn-like scan stage share one
 * address space in anti-phase (cache → churn → cache ...). The gated-off
 * group keeps its pages mapped, so each phase flip re-heats a cold
 * resident set — static promotion knobs that suit one phase mis-serve
 * the other, which is the gap the adaptive tuner closes.
 */
WorkloadProfile phased(std::uint64_t wss_pages, std::uint64_t seed = 1);

/** Lookup by name ("web", "cache1", "cache2", "dwh", "churn",
 *  "phased"); fatal if unknown. */
WorkloadProfile byName(const std::string &name, std::uint64_t wss_pages,
                       std::uint64_t seed = 1);

} // namespace profiles

} // namespace tpp

#endif // TPP_WORKLOADS_PROFILES_HH
