file(REMOVE_RECURSE
  "libtpp_policy.a"
)
