
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/driver.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/driver.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/driver.cc.o.d"
  "/root/repo/src/workloads/profiles.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/profiles.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/profiles.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/synthetic.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/synthetic.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/trace.cc.o.d"
  "/root/repo/src/workloads/trace_io.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/trace_io.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/trace_io.cc.o.d"
  "/root/repo/src/workloads/ycsb.cc" "src/workloads/CMakeFiles/tpp_workloads.dir/ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/tpp_workloads.dir/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/tpp_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tpp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
