/**
 * @file
 * Property-based invariant tests: random workload activity under every
 * policy and several seeds, with global consistency checks after each
 * phase — no frame leaks, LRU list integrity, rmap coherence, counter
 * sanity. These are the guards that keep the mechanism layer honest as
 * policies shuffle pages around.
 */

#include <memory>
#include <string>
#include <tuple>

#include "core/tpp_policy.hh"
#include "harness/experiment.hh"
#include "policy/autotiering.hh"
#include "policy/damon_reclaim.hh"
#include "policy/numa_balancing.hh"
#include "test_common.hh"
#include "sim/rng.hh"

namespace tpp {
namespace {

std::unique_ptr<PlacementPolicy>
policyByName(const std::string &name)
{
    if (name == "damon-reclaim")
        return std::make_unique<DamonReclaimPolicy>();
    ExperimentConfig cfg;
    cfg.policy = name;
    return makePolicy(cfg);
}

/** Full-system invariant check. */
void
checkInvariants(test::TestMachine &m)
{
    // 1. Per-node frame conservation: free + on-LRU == capacity.
    for (std::size_t n = 0; n < m.mem.numNodes(); ++n) {
        const NodeId nid = static_cast<NodeId>(n);
        m.kernel.lru(nid).checkConsistency();
        EXPECT_EQ(m.mem.node(nid).freePages() +
                      m.kernel.lru(nid).countAll(),
                  m.mem.node(nid).capacity())
            << "frame leak on node " << n;
    }

    // 2. Rmap coherence: every mapped frame's owner PTE points back.
    std::uint64_t mapped_frames = 0;
    for (Pfn pfn = 0; pfn < m.mem.totalFrames(); ++pfn) {
        const PageFrame &f = m.mem.frame(pfn);
        if (f.isFree())
            continue;
        mapped_frames++;
        const PageFrameCold &cold = m.mem.frameCold(pfn);
        const Pte &pte =
            m.kernel.addressSpace(cold.ownerAsid).pte(cold.ownerVpn);
        EXPECT_TRUE(pte.present());
        EXPECT_EQ(pte.pfn, pfn);
        EXPECT_EQ(pte.type, f.type);
        EXPECT_EQ(f.nid, m.mem.frame(pfn).nid);
        EXPECT_NE(f.lru, LruListId::None);
    }

    // 3. Residency bookkeeping agrees with the frame table.
    std::uint64_t resident = 0;
    for (std::size_t p = 0; p < m.kernel.numProcesses(); ++p)
        resident += m.kernel.addressSpace(static_cast<Asid>(p))
                        .residentPages();
    EXPECT_EQ(resident, mapped_frames);

    // 4. Counter sanity.
    const VmStat &vs = m.kernel.vmstat();
    EXPECT_LE(vs.get(Vm::PgPromoteSuccess), vs.get(Vm::PgPromoteTry));
    EXPECT_LE(vs.get(Vm::PgStealKswapd), vs.get(Vm::PgScanKswapd));
    EXPECT_LE(vs.get(Vm::PgStealDirect), vs.get(Vm::PgScanDirect));
    EXPECT_LE(vs.get(Vm::NumaHintFaults), vs.get(Vm::NumaPteUpdates));
    EXPECT_GE(vs.get(Vm::PswpOut), vs.get(Vm::PswpIn));
    // Live swap slots never exceed net page-outs (munmap may release
    // slots without a page-in).
    EXPECT_LE(m.mem.swapDevice().usedSlots(),
              vs.get(Vm::PswpOut) - vs.get(Vm::PswpIn));
}

class PolicyProperty
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint64_t>>
{
};

TEST_P(PolicyProperty, RandomChurnPreservesInvariants)
{
    const auto &[policy_name, seed] = GetParam();
    test::TestMachine m(700, 1400, policyByName(policy_name));
    Rng rng(seed);

    // A few long-lived regions plus transient ones, random access mix.
    struct Region {
        Vpn base;
        std::uint64_t pages;
        bool transient;
    };
    std::vector<Region> regions;
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t pages = 64 + rng.nextBounded(128);
        const PageType type =
            rng.nextBool(0.5) ? PageType::Anon : PageType::File;
        const bool disk = type == PageType::File && rng.nextBool(0.5);
        regions.push_back(
            {m.kernel.mmap(m.asid, pages, type, "perm", disk), pages,
             false});
    }

    for (int phase = 0; phase < 8; ++phase) {
        // Random accesses.
        for (int i = 0; i < 2000; ++i) {
            const Region &r =
                regions[rng.nextBounded(regions.size())];
            const Vpn vpn = r.base + rng.nextBounded(r.pages);
            const AccessKind kind =
                rng.nextBool(0.4) ? AccessKind::Store : AccessKind::Load;
            const NodeId task =
                rng.nextBool(0.9) ? m.local() : m.cxl();
            m.kernel.access(m.asid, vpn, kind, task);
        }
        // Random transient allocation / teardown.
        if (rng.nextBool(0.7)) {
            const std::uint64_t pages = 16 + rng.nextBounded(32);
            const Vpn base =
                m.kernel.mmap(m.asid, pages, PageType::Anon, "tmp");
            for (std::uint64_t i = 0; i < pages; ++i)
                m.kernel.access(m.asid, base + i, AccessKind::Store,
                                m.local());
            regions.push_back({base, pages, true});
        }
        if (regions.size() > 4 && rng.nextBool(0.5)) {
            for (std::size_t i = 0; i < regions.size(); ++i) {
                if (regions[i].transient) {
                    m.kernel.munmap(m.asid, regions[i].base,
                                    regions[i].pages);
                    regions.erase(regions.begin() +
                                  static_cast<long>(i));
                    break;
                }
            }
        }
        // Random daemon activity.
        if (rng.nextBool(0.5))
            m.kernel.wakeKswapd(m.local());
        if (rng.nextBool(0.3))
            m.kernel.sampleNode(m.cxl(), 64);
        m.eq.run(m.eq.now() + 20 * kMillisecond);

        checkInvariants(m);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Combine(::testing::Values("linux", "numa-balancing",
                                         "autotiering", "tpp",
                                         "damon-reclaim"),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_seed" + std::to_string(std::get<1>(info.param));
    });

/** Migration round-trips must preserve every invariant. */
class MigrationProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MigrationProperty, RandomMigrationStorm)
{
    test::TestMachine m(512, 512);
    Rng rng(GetParam());
    const Vpn base = m.populate(200, PageType::Anon);

    for (int i = 0; i < 2000; ++i) {
        const Vpn vpn = base + rng.nextBounded(200);
        const Pte &pte = m.pte(vpn);
        if (!pte.present())
            continue;
        const PageFrame &f = m.mem.frame(pte.pfn);
        const NodeId dst = f.nid == 0 ? m.cxl() : m.local();
        m.kernel.migratePage(pte.pfn, dst, AllocReason::Demotion);
    }
    checkInvariants(m);
    // Every page still accessible afterwards.
    for (int i = 0; i < 200; ++i) {
        const AccessResult res =
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
        EXPECT_FALSE(res.oom);
    }
    checkInvariants(m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationProperty,
                         ::testing::Values<std::uint64_t>(11, 22, 33, 44));

/** Reclaim under every (policy, pressure) combination stays sound. */
class ReclaimProperty
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
};

TEST_P(ReclaimProperty, PressureCyclesStaySound)
{
    const auto &[policy_name, fill_percent] = GetParam();
    test::TestMachine m(256, 512, policyByName(policy_name));
    const std::uint64_t pages = 256 * fill_percent / 100;
    const Vpn base = m.kernel.mmap(m.asid, pages * 2, PageType::Anon,
                                   "pressure");
    Rng rng(fill_percent);

    for (int cycle = 0; cycle < 4; ++cycle) {
        for (std::uint64_t i = 0; i < pages; ++i) {
            m.kernel.access(m.asid,
                            base + rng.nextBounded(pages * 2),
                            AccessKind::Store, m.local());
        }
        m.eq.run(m.eq.now() + 50 * kMillisecond);
        checkInvariants(m);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, ReclaimProperty,
    ::testing::Combine(::testing::Values("linux", "tpp", "autotiering"),
                       ::testing::Values(50, 90, 140)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_fill" + std::to_string(std::get<1>(info.param));
    });

} // namespace
} // namespace tpp
