/**
 * @file
 * Phase-adaptive placement policy (policy/adaptive) tests.
 *
 * Unit half: the window objective is a free function, so its weighting,
 * the SLO sentinel and the penalty terms are pinned directly.
 *
 * Golden half: vm.adaptive.enable=0 must make the policy a pass-through
 * TppPolicy with no scheduled events, so the "adaptive" policy with the
 * tuner off reproduces the static-tpp golden fingerprints bit-for-bit,
 * matches a plain tpp run on every vmstat counter (async engine and
 * --shards 4 included), and the mere presence of the subsystem leaves
 * the linux/hotness baselines untouched.
 *
 * Convergence half: on a stationary workload the hill climber must
 * actually move knobs, then park (adaptive_settled) rather than oscillate.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mm/policy_params.hh"
#include "mm/vmstat.hh"
#include "policy/adaptive/adaptive_policy.hh"
#include "workloads/profiles.hh"

namespace tpp {
namespace {

// ---- objective unit tests ------------------------------------------

AdaptiveWindowMetrics
perfectWindow()
{
    AdaptiveWindowMetrics m;
    m.localShare = 1.0;
    m.pingPongNorm = 0.0;
    m.stallNorm = 0.0;
    m.sloAttainment = -1.0; // no open-loop feed
    return m;
}

TEST(AdaptiveScore, PerfectWindowScoresTheLocalWeight)
{
    const AdaptiveConfig cfg;
    EXPECT_DOUBLE_EQ(adaptiveScore(perfectWindow(), cfg), cfg.weightLocal);
}

TEST(AdaptiveScore, PenaltiesSubtractWithTheirWeights)
{
    const AdaptiveConfig cfg;
    AdaptiveWindowMetrics m = perfectWindow();
    m.pingPongNorm = 0.5;
    m.stallNorm = 0.25;
    EXPECT_DOUBLE_EQ(adaptiveScore(m, cfg),
                     cfg.weightLocal - cfg.weightPingPong * 0.5 -
                         cfg.weightStall * 0.25);
}

TEST(AdaptiveScore, SloSentinelIsIgnoredButRealSloCounts)
{
    const AdaptiveConfig cfg;
    AdaptiveWindowMetrics without = perfectWindow(); // slo = -1
    AdaptiveWindowMetrics with = perfectWindow();
    with.sloAttainment = 1.0;
    EXPECT_DOUBLE_EQ(adaptiveScore(with, cfg) - adaptiveScore(without, cfg),
                     cfg.weightSlo);

    // Attainment of exactly zero contributes zero, same as the sentinel.
    AdaptiveWindowMetrics zero = perfectWindow();
    zero.sloAttainment = 0.0;
    EXPECT_DOUBLE_EQ(adaptiveScore(zero, cfg), adaptiveScore(without, cfg));
}

TEST(AdaptiveScore, WeightsScaleLinearly)
{
    AdaptiveConfig cfg;
    AdaptiveWindowMetrics m = perfectWindow();
    m.pingPongNorm = 1.0;
    const double base = adaptiveScore(m, cfg);
    cfg.weightPingPong *= 2.0;
    EXPECT_DOUBLE_EQ(adaptiveScore(m, cfg), base - 0.5);
}

// ---- golden-fingerprint pins ---------------------------------------

/** Hash of every vmstat counter, matching test_shard.cc. */
std::uint64_t
vmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

/** Hash of the pre-engine seed counters, matching
 *  test_migration_compat.cc. */
std::uint64_t
seedVmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 35; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

void
expectAdaptiveSilent(const VmStat &vmstat, const char *tag)
{
    EXPECT_EQ(vmstat.get(Vm::AdaptiveWindow), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveTune), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveRevert), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveSettled), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveWake), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveFiltered), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::AdaptiveFlapBias), 0u) << tag;
}

TEST(AdaptiveGolden, DisabledReproducesStaticGoldenFingerprints)
{
    // The pre-engine constants test_migration_compat.cc pins. The web
    // pin runs under the *adaptive* policy with the tuner at its default
    // (off): it must be indistinguishable from static tpp down to the
    // last bit. The linux pin keeps its own policy — the adaptive
    // subsystem being linked in must not perturb the baselines.
    struct Pin {
        const char *tag;
        const char *workload;
        const char *policy;
        double localFraction;
        double throughput;
        double meanLatencyNs;
        std::uint64_t vmsum;
    };
    const Pin pins[] = {
        {"fig15_web_adaptive_off", "web", "adaptive", 2.0 / 3.0,
         785205.14820370195, 84.197993223045387, 7071264301307134540ull},
        {"fig16_cache1_linux", "cache1", "linux", 0.2,
         779422.65009620448, 120.50352733415521, 16959053233026845536ull},
    };

    for (const Pin &p : pins) {
        ExperimentConfig cfg;
        cfg.workload = p.workload;
        cfg.policy = p.policy;
        cfg.localFraction = p.localFraction;
        cfg.wssPages = 8192;
        cfg.runUntil = 10 * kSecond;
        cfg.measureFrom = 6 * kSecond;
        cfg.seed = 1;
        cfg.migration = MigrationConfig::compat();
        const ExperimentResult r = runExperiment(cfg);
        EXPECT_EQ(r.throughput, p.throughput) << p.tag;
        EXPECT_EQ(r.meanAccessLatencyNs, p.meanLatencyNs) << p.tag;
        EXPECT_EQ(seedVmHash(r.vmstat), p.vmsum) << p.tag;
        expectAdaptiveSilent(r.vmstat, p.tag);
    }
}

/** Test-scale config; the tag-selected policy/workload are the knobs. */
ExperimentConfig
smallConfig(const char *policy, const char *workload = "cache1")
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.policy = policy;
    cfg.wssPages = 8192;
    cfg.runUntil = 4 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.seed = 7;
    cfg.migration = MigrationConfig::asyncEngine();
    return cfg;
}

class AdaptiveDisabledMatchesTpp
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(AdaptiveDisabledMatchesTpp, EveryCounterIdentical)
{
    // Same seed, same workload: static tpp vs adaptive-with-tuner-off,
    // async engine, full vmstat hash (adaptive counters are all zero in
    // both runs, so hashing the complete vector is fair).
    const char *workload = GetParam();
    const ExperimentResult tpp_run =
        runExperiment(smallConfig("tpp", workload));

    ExperimentConfig off = smallConfig("adaptive", workload);
    off.sysctls.emplace_back("vm.adaptive.enable", "0"); // pin the default
    const ExperimentResult adaptive_run = runExperiment(off);

    EXPECT_EQ(tpp_run.throughput, adaptive_run.throughput) << workload;
    EXPECT_EQ(tpp_run.meanAccessLatencyNs,
              adaptive_run.meanAccessLatencyNs)
        << workload;
    EXPECT_EQ(vmHash(tpp_run.vmstat), vmHash(adaptive_run.vmstat))
        << workload;
    expectAdaptiveSilent(adaptive_run.vmstat, workload);
}

INSTANTIATE_TEST_SUITE_P(Golden, AdaptiveDisabledMatchesTpp,
                         ::testing::Values("cache1", "web", "phased"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(AdaptiveGolden, ShardedDisabledMatchesTpp)
{
    // The invariance must survive the shard engine too: 4 regions, 4
    // workers, static tpp vs adaptive-off, every counter identical.
    ExperimentConfig base = smallConfig("tpp");
    base.migration = MigrationConfig::compat();
    base.shards = 4;
    base.shardRegions = 4;
    const ExperimentResult tpp_run = runExperiment(base);

    ExperimentConfig off = base;
    off.policy = "adaptive";
    const ExperimentResult adaptive_run = runExperiment(off);

    EXPECT_EQ(tpp_run.shard.regions, 4u);
    EXPECT_EQ(adaptive_run.shard.regions, 4u);
    EXPECT_EQ(tpp_run.throughput, adaptive_run.throughput);
    EXPECT_EQ(tpp_run.meanAccessLatencyNs,
              adaptive_run.meanAccessLatencyNs);
    EXPECT_EQ(vmHash(tpp_run.vmstat), vmHash(adaptive_run.vmstat));
    expectAdaptiveSilent(adaptive_run.vmstat, "sharded");
}

TEST(AdaptiveGolden, HotnessBaselineIsDeterministicWithAdaptiveLinked)
{
    // hotness never touches the adaptive path; two identical runs must
    // stay bit-identical with the subsystem linked into the binary.
    const ExperimentResult a = runExperiment(smallConfig("hotness"));
    const ExperimentResult b = runExperiment(smallConfig("hotness"));
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(vmHash(a.vmstat), vmHash(b.vmstat));
    expectAdaptiveSilent(a.vmstat, "hotness");
}

// ---- convergence ----------------------------------------------------

TEST(AdaptiveConvergence, StationaryWorkloadSettlesInsteadOfOscillating)
{
    // cache1 is phase-stable: the tuner should explore, stop finding
    // wins, and park. Fast windows so the full coordinate-descent round
    // fits the run comfortably.
    ExperimentConfig cfg = smallConfig("adaptive");
    cfg.localFraction = 0.2; // oversubscribed: promotions actually flow
    cfg.runUntil = 8 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.sysctls.emplace_back("vm.adaptive.enable", "1");
    cfg.sysctls.emplace_back("vm.adaptive.window_ns", "100000000");
    cfg.sysctls.emplace_back("vm.adaptive.profile_windows", "2");
    const ExperimentResult r = runExperiment(cfg);

    EXPECT_GE(r.vmstat.get(Vm::AdaptiveWindow), 10u);
    EXPECT_GE(r.vmstat.get(Vm::AdaptiveTune), 1u);
    EXPECT_GE(r.vmstat.get(Vm::AdaptiveSettled), 1u);
    // Parked more than re-armed: converged, not oscillating.
    EXPECT_GT(r.vmstat.get(Vm::AdaptiveSettled),
              r.vmstat.get(Vm::AdaptiveWake));
}

// ---- phased workload -----------------------------------------------

TEST(PhasedWorkload, ProfileOversubscribesAndRuns)
{
    const WorkloadProfile p = profiles::phased(8192);
    ASSERT_EQ(p.regions.size(), 3u);
    std::uint64_t reserved = 0;
    for (const RegionSpec &spec : p.regions)
        reserved += spec.pages;
    // The phase flip must have somebody to displace.
    EXPECT_GT(reserved, std::uint64_t{8192});
    // Anti-phase: the scan region is offset by half the period.
    EXPECT_EQ(p.regions[2].phaseOffset, p.regions[2].phasePeriod / 2);

    const ExperimentResult r =
        runExperiment(smallConfig("tpp", "phased"));
    EXPECT_GT(r.throughput, 0.0);
}

} // namespace
} // namespace tpp
