#include "workloads/trace.hh"

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

TraceWorkload::TraceWorkload(std::uint64_t region_pages,
                             std::vector<TraceEntry> trace, PageType type,
                             std::uint64_t batch, double think_ns)
    : regionPages_(region_pages), trace_(std::move(trace)), type_(type),
      batch_(batch), think_(think_ns)
{
    if (regionPages_ == 0)
        tpp_fatal("trace workload needs a non-empty region");
    for (const TraceEntry &e : trace_) {
        if (e.pageIndex >= regionPages_)
            tpp_fatal("trace entry beyond region end");
    }
}

void
TraceWorkload::init(Kernel &kernel)
{
    asid_ = kernel.createProcess();
    base_ = kernel.mmap(asid_, regionPages_, type_, "trace");
}

BatchResult
TraceWorkload::runBatch(Kernel &kernel)
{
    return runOps(kernel, batch_);
}

BatchResult
TraceWorkload::runOps(Kernel &kernel, std::uint64_t ops)
{
    BatchResult result;
    const double think = think_.perOpNs(kernel.eventQueue().now());
    double duration = 0.0;
    std::uint64_t replayed = 0;
    while (cursor_ < trace_.size() && replayed < ops) {
        const TraceEntry &e = trace_[cursor_++];
        const AccessResult res =
            kernel.access(asid_, base_ + e.pageIndex, e.kind, taskNode_);
        result.accesses++;
        result.memLatencyNs += res.latencyNs;
        duration += think + res.latencyNs;
        replayed++;
        if (observer_) {
            observer_(AccessRecord{asid_, base_ + e.pageIndex, e.kind,
                                   kernel.eventQueue().now()});
        }
    }
    result.ops = replayed;
    result.durationNs = std::max(duration, 1.0);
    return result;
}

} // namespace tpp
