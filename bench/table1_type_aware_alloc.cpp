/**
 * @file
 * Table 1: page-type-aware allocation (§5.4, §6.3).
 *
 * TPP with the cache-to-CXL allocation preference enabled: file and
 * tmpfs pages are initially placed on the CXL node and only promoted if
 * they prove hot, leaving the local node to anons.
 *
 * Paper rows: Web 2:1 -> 97 % local traffic @ 99.5 %; Cache1 1:4 ->
 * 85 % local @ 99.8 %; Cache2 1:4 -> 72 % local @ 98.5 %.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const std::uint64_t wss = bench::wssFromArgs(argc, argv);

    bench::banner("Table 1", "page-type-aware allocation (TPP + "
                             "cache-to-CXL preference)");

    struct Case {
        const char *workload;
        const char *ratio;
    };
    const Case cases[] = {{"web", "2:1"}, {"cache1", "1:4"},
                          {"cache2", "1:4"}};

    TextTable table({"application", "config", "local traffic",
                     "cxl traffic", "perf w.r.t. all-local"});

    for (const Case &c : cases) {
        ExperimentConfig base;
        base.workload = c.workload;
        base.wssPages = wss;
        base.allLocal = true;
        base.policy = "linux";
        const ExperimentResult baseline = runExperiment(base);

        ExperimentConfig cfg = base;
        cfg.allLocal = false;
        cfg.localFraction = parseRatio(c.ratio);
        cfg.policy = "tpp";
        cfg.tpp.typeAwareAllocation = true;
        const ExperimentResult res = runExperiment(cfg);

        table.addRow({c.workload, c.ratio,
                      TextTable::pct(res.localTrafficShare),
                      TextTable::pct(res.cxlTrafficShare),
                      TextTable::pct(res.throughput /
                                     baseline.throughput)});
    }
    table.print();
    std::printf("\npaper: Web 2:1 97%%/3%% @99.5%%; Cache1 1:4 85%%/15%% "
                "@99.8%%; Cache2 1:4 72%%/28%% @98.5%%\n");
    return 0;
}
