#include "workloads/profiles.hh"

#include <memory>

#include "sim/logging.hh"
#include "workloads/synthetic.hh"
#include "workloads/workload_registry.hh"

namespace tpp {
namespace profiles {

namespace {

/** Pages for a fraction of the working set. */
std::uint64_t
frac(std::uint64_t wss_pages, double f)
{
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(wss_pages) * f));
}

/**
 * Rotation step so the hot window advances `region_frac` of the region
 * per profile interval, with two rotation ticks per interval. This sets
 * the re-access cadence of Fig 11: a page left behind by the window is
 * touched again once the window wraps around the region.
 */
double
stepFor(double region_frac_per_interval, double hot_fraction)
{
    return region_frac_per_interval / 2.0 / hot_fraction;
}


/**
 * Split of non-hot references for a region, sized so each page of the
 * region is re-touched at `per_page_rate` per second regardless of the
 * simulation scale. This pins the cold-page re-access cadence (Fig 11)
 * to the behavioural timescale instead of the page count.
 *
 * @param pages          region size in pages
 * @param weight         region's share of the workload's references
 * @param access_rate    expected references per second for the workload
 * @param per_page_rate  target cold re-touch rate per page per second
 */
double
uniformShareFor(std::uint64_t pages, double weight, double access_rate,
                double per_page_rate)
{
    const double share = per_page_rate * static_cast<double>(pages) /
                         (weight * access_rate);
    return std::min(0.06, std::max(0.0005, share));
}

/** Rough closed-loop reference rate: ops/s * accesses per op. */
double
accessRateFor(double think_ns, std::uint32_t accesses_per_op)
{
    const double op_ns = think_ns + 90.0 * accesses_per_op;
    return 1e9 / op_ns * accesses_per_op;
}

} // namespace

WorkloadProfile
web(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "web";
    p.seed = seed;
    p.thinkTimePerOpNs = 900.0;
    p.accessesPerOp = 4;
    p.opsPerBatch = 2000;
    // Request rate ramps as the service is put into rotation; anon
    // usage and throughput rise together (Fig 10a).
    p.loadRampSeconds = 8.0;
    p.loadRampStart = 0.4;

    // VM binary + bytecode: preloaded from disk at startup (Fig 9a),
    // then only ~14 % hot per interval, but wrapped by the drifting
    // window within ~6 intervals (Fig 11: ~80 % re-accessed <= 10 min),
    // so dropping these pages costs disk refaults soon after.
    RegionSpec bytecode;
    bytecode.label = "bytecode";
    bytecode.type = PageType::File;
    bytecode.diskBacked = true;
    bytecode.pages = frac(wss_pages, 0.44);
    bytecode.sequentialWarmup = true;
    bytecode.accessWeight = 0.18;
    bytecode.hotFraction = 0.14;
    bytecode.hotAccessShare =
        1.0 - uniformShareFor(bytecode.pages, bytecode.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.15);
    bytecode.zipfTheta = 0.8;
    bytecode.storeShare = 0.02;
    bytecode.rotationPeriod = kProfileInterval / 2;
    bytecode.rotationStep = stepFor(0.03, 0.14);
    p.regions.push_back(bytecode);

    // Request-serving heap: grows after start-up and displaces the file
    // cache (Fig 9a). The hot window rides the allocation frontier —
    // freshly allocated pages are the hot ones — and drifts so ~35 % is
    // hot per interval.
    RegionSpec heap;
    heap.label = "heap";
    heap.type = PageType::Anon;
    heap.pages = frac(wss_pages, 0.56);
    heap.initialActiveFraction = 0.30;
    heap.growthPagesPerSec =
        static_cast<double>(heap.pages) * 0.70 /
        (6.0 * static_cast<double>(kProfileInterval) /
         static_cast<double>(kSecond));
    heap.accessWeight = 0.80;
    heap.hotFraction = 0.35;
    heap.hotAccessShare =
        1.0 - uniformShareFor(heap.pages, heap.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.25);
    heap.zipfTheta = 0.9;
    heap.storeShare = 0.40;
    heap.hotFollowsGrowth = true;
    heap.rotationPeriod = kProfileInterval / 2;
    heap.rotationStep = stepFor(0.05, 0.35);
    p.regions.push_back(heap);

    // Short-lived per-request allocations (§5.2: "newly allocated pages
    // are often short-lived").
    p.transient.regionsPerSecond = 120.0;
    p.transient.regionPages = 16;
    p.transient.lifetime = 300 * kMillisecond;
    p.transient.touchesPerPage = 2.0;
    return p;
}

WorkloadProfile
cache1(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "cache1";
    p.seed = seed;
    p.thinkTimePerOpNs = 800.0;
    p.accessesPerOp = 4;
    p.opsPerBatch = 2000;

    // Query-processing anons come up with the process, before the cache
    // fill, and keep a fixed footprint (§3.6); 40 % hot per interval.
    RegionSpec heap;
    heap.label = "heap";
    heap.type = PageType::Anon;
    heap.pages = frac(wss_pages, 0.24);
    heap.sequentialWarmup = true;
    heap.accessWeight = 0.48;
    heap.hotFraction = 0.40;
    heap.hotAccessShare =
        1.0 - uniformShareFor(heap.pages, heap.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.25);
    heap.zipfTheta = 0.9;
    heap.storeShare = 0.45;
    heap.rotationPeriod = kProfileInterval / 2;
    heap.rotationStep = stepFor(0.06, 0.40);
    p.regions.push_back(heap);

    // tmpfs lookup store filled during initialisation: ~76 % of memory,
    // only 25 % hot per interval, strongly skewed lookups.
    RegionSpec store;
    store.label = "tmpfs";
    store.type = PageType::File;
    store.diskBacked = false; // tmpfs is swap-backed
    store.pages = frac(wss_pages, 0.76);
    store.sequentialWarmup = true;
    store.accessWeight = 0.52;
    store.hotFraction = 0.25;
    store.hotAccessShare =
        1.0 - uniformShareFor(store.pages, store.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.18);
    store.zipfTheta = 0.99;
    store.storeShare = 0.12;
    store.rotationPeriod = kProfileInterval / 2;
    store.rotationStep = stepFor(0.04, 0.25);
    p.regions.push_back(store);

    // Per-query scratch allocations: short-lived request processing
    // buffers that keep a modest allocation rate on the local node.
    p.transient.regionsPerSecond = 60.0;
    p.transient.regionPages = 16;
    p.transient.lifetime = 200 * kMillisecond;
    p.transient.touchesPerPage = 2.0;
    return p;
}

WorkloadProfile
cache2(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "cache2";
    p.seed = seed;
    p.thinkTimePerOpNs = 800.0;
    p.accessesPerOp = 4;
    p.opsPerBatch = 2000;
    // Cache2's throughput tracks its anon utilisation (Fig 10c): load
    // ramps up as the tier warms into traffic and query anons grow with
    // it.
    p.loadRampSeconds = 8.0;
    p.loadRampStart = 0.5;

    RegionSpec heap;
    heap.label = "heap";
    heap.type = PageType::Anon;
    heap.pages = frac(wss_pages, 0.22);
    heap.sequentialWarmup = true;
    heap.initialActiveFraction = 0.75;
    heap.growthPagesPerSec =
        static_cast<double>(heap.pages) * 0.25 /
        (8.0 * static_cast<double>(kProfileInterval) /
         static_cast<double>(kSecond));
    heap.accessWeight = 0.38;
    heap.hotFraction = 0.43;
    heap.hotAccessShare =
        1.0 - uniformShareFor(heap.pages, heap.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.25);
    heap.zipfTheta = 0.9;
    heap.storeShare = 0.45;
    heap.rotationPeriod = kProfileInterval / 2;
    heap.rotationStep = stepFor(0.06, 0.43);
    p.regions.push_back(heap);

    // Cache2 touches more of its tmpfs on lookups: file nearly as hot
    // as anon (45 % vs 43 % per two-minute interval).
    RegionSpec store;
    store.label = "tmpfs";
    store.type = PageType::File;
    store.diskBacked = false;
    store.pages = frac(wss_pages, 0.78);
    store.sequentialWarmup = true;
    store.accessWeight = 0.62;
    store.hotFraction = 0.45;
    store.hotAccessShare =
        1.0 - uniformShareFor(store.pages, store.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.20);
    store.zipfTheta = 0.9;
    store.storeShare = 0.12;
    store.rotationPeriod = kProfileInterval / 2;
    store.rotationStep = stepFor(0.06, 0.45);
    p.regions.push_back(store);
    return p;
}

WorkloadProfile
dataWarehouse(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "dwh";
    p.seed = seed;
    p.thinkTimePerOpNs = 1200.0;
    p.accessesPerOp = 6;
    p.opsPerBatch = 1500;

    // Compute heap: 85 % of memory; each query stage works on a mostly
    // fresh allocation (Fig 11: only ~20 % of pages are re-accesses) —
    // the region is dropped and reallocated every few intervals, and the
    // scan-like window sweeps it fast.
    // Two query stages in flight, staggered so the machine stays near
    // full occupancy while individual stage data sets come and go.
    for (int stage = 0; stage < 2; ++stage) {
        RegionSpec compute;
        compute.label = stage == 0 ? "stage-a" : "stage-b";
        compute.type = PageType::Anon;
        compute.pages = frac(wss_pages, 0.425);
        compute.sequentialWarmup = true;
        compute.accessWeight = 0.45;
        compute.hotFraction = 0.20;
        compute.hotAccessShare =
            1.0 - uniformShareFor(compute.pages, compute.accessWeight,
                                  accessRateFor(p.thinkTimePerOpNs,
                                                p.accessesPerOp),
                                  0.05);
        compute.zipfTheta = 0.7;
        compute.storeShare = 0.50;
        compute.rotationPeriod = kProfileInterval / 2;
        compute.rotationStep = stepFor(0.10, 0.20);
        compute.churnPeriod = 6 * kProfileInterval;
        compute.churnPhase =
            stage == 0 ? 0 : 3 * kProfileInterval;
        compute.populateOnChurn = true;
        p.regions.push_back(compute);
    }

    // Intermediate results: written once to disk-backed files, then
    // cold (Fig 9d: files ~15 % of memory, almost all cold).
    RegionSpec spill;
    spill.label = "spill";
    spill.type = PageType::File;
    spill.diskBacked = true;
    spill.pages = frac(wss_pages, 0.15);
    spill.accessWeight = 0.02;
    spill.hotFraction = 0.06;
    spill.hotAccessShare =
        1.0 - uniformShareFor(spill.pages, spill.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.05);
    spill.zipfTheta = 0.2;
    spill.storeShare = 0.95;
    spill.rotationPeriod = kProfileInterval / 2;
    spill.rotationStep = stepFor(1.0 / 12.0, 0.06); // slow sequential writer
    // Each stage writes new intermediate files; old ones are deleted,
    // never re-read, so evicting them costs nothing.
    spill.churnPeriod = 12 * kProfileInterval;
    p.regions.push_back(spill);
    return p;
}

WorkloadProfile
churn(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "churn";
    p.seed = seed;
    p.thinkTimePerOpNs = 700.0;
    p.accessesPerOp = 6;
    p.opsPerBatch = 2000;

    // One big anon scan buffer, dropped and re-populated every two
    // intervals: a continuous allocation storm with near-uniform access
    // (nothing is really "hot" — the hot window is a fast sweep).
    RegionSpec scan;
    scan.label = "scan";
    scan.type = PageType::Anon;
    scan.pages = frac(wss_pages, 0.90);
    scan.sequentialWarmup = true;
    scan.accessWeight = 0.95;
    scan.hotFraction = 0.30;
    scan.hotAccessShare = 0.55; // weak skew: reuse is incidental
    scan.zipfTheta = 0.1;
    scan.storeShare = 0.60;
    scan.rotationPeriod = kProfileInterval / 4;
    scan.rotationStep = stepFor(0.50, 0.30); // sweep half per interval
    scan.churnPeriod = 2 * kProfileInterval;
    scan.populateOnChurn = true;
    p.regions.push_back(scan);

    // Write-once output files, immediately cold.
    RegionSpec out;
    out.label = "out";
    out.type = PageType::File;
    out.diskBacked = true;
    out.pages = frac(wss_pages, 0.10);
    out.accessWeight = 0.05;
    out.hotFraction = 0.10;
    out.hotAccessShare = 0.60;
    out.zipfTheta = 0.2;
    out.storeShare = 0.90;
    out.rotationPeriod = kProfileInterval / 2;
    out.rotationStep = stepFor(0.25, 0.10);
    out.churnPeriod = 4 * kProfileInterval;
    p.regions.push_back(out);

    // Aggressive short-lived allocations keep the allocator under
    // constant pressure on the fast tier.
    p.transient.regionsPerSecond = 300.0;
    p.transient.regionPages = 32;
    p.transient.lifetime = 150 * kMillisecond;
    p.transient.touchesPerPage = 2.0;
    return p;
}

WorkloadProfile
phased(std::uint64_t wss_pages, std::uint64_t seed)
{
    WorkloadProfile p;
    p.name = "phased";
    p.seed = seed;
    p.thinkTimePerOpNs = 800.0;
    p.accessesPerOp = 4;
    p.opsPerBatch = 2000;

    // One phase = 3 profile intervals; cache group on first, scan on
    // second. Long enough for the adaptive tuner (600 ms measurement
    // rounds at defaults) to converge several times per phase.
    const Tick period = 6 * kProfileInterval;
    const Tick half = period / 2;

    // Cache phase: cache1's heap + tmpfs lookup store, scaled down so
    // the three groups oversubscribe the working set (the phase flip has
    // to displace somebody).
    RegionSpec heap;
    heap.label = "svc-heap";
    heap.type = PageType::Anon;
    heap.pages = frac(wss_pages, 0.28);
    heap.sequentialWarmup = true;
    heap.accessWeight = 0.48;
    heap.hotFraction = 0.40;
    heap.hotAccessShare =
        1.0 - uniformShareFor(heap.pages, heap.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.25);
    heap.zipfTheta = 0.9;
    heap.storeShare = 0.45;
    heap.rotationPeriod = kProfileInterval / 2;
    heap.rotationStep = stepFor(0.06, 0.40);
    heap.phasePeriod = period;
    heap.phaseOffWeight = 0.05;
    p.regions.push_back(heap);

    RegionSpec store;
    store.label = "svc-tmpfs";
    store.type = PageType::File;
    store.diskBacked = false;
    store.pages = frac(wss_pages, 0.42);
    store.sequentialWarmup = true;
    store.accessWeight = 0.32;
    store.hotFraction = 0.25;
    store.hotAccessShare =
        1.0 - uniformShareFor(store.pages, store.accessWeight,
                              accessRateFor(p.thinkTimePerOpNs,
                                            p.accessesPerOp),
                              0.18);
    store.zipfTheta = 0.99;
    store.storeShare = 0.12;
    store.rotationPeriod = kProfileInterval / 2;
    store.rotationStep = stepFor(0.04, 0.25);
    store.phasePeriod = period;
    store.phaseOffWeight = 0.05;
    p.regions.push_back(store);

    // Churn phase: a fast anon sweep with weak skew. No munmap churn —
    // the buffer stays mapped across phases, cools off, gets demoted,
    // and re-heats on the next flip. Those repeat promote/demote hops
    // are exactly what a static promotion threshold mishandles.
    RegionSpec scan;
    scan.label = "scan";
    scan.type = PageType::Anon;
    scan.pages = frac(wss_pages, 0.55);
    scan.sequentialWarmup = true;
    scan.accessWeight = 0.85;
    scan.hotFraction = 0.30;
    scan.hotAccessShare = 0.55; // weak skew: reuse is incidental
    scan.zipfTheta = 0.1;
    scan.storeShare = 0.60;
    scan.rotationPeriod = kProfileInterval / 4;
    scan.rotationStep = stepFor(0.50, 0.30);
    scan.phasePeriod = period;
    scan.phaseOffset = half; // anti-phase with the cache group
    scan.phaseOffWeight = 0.03;
    p.regions.push_back(scan);

    // Modest request-scratch allocation keeps some pressure on the
    // fast-tier allocator in both phases.
    p.transient.regionsPerSecond = 60.0;
    p.transient.regionPages = 16;
    p.transient.lifetime = 200 * kMillisecond;
    p.transient.touchesPerPage = 2.0;
    return p;
}

WorkloadProfile
byName(const std::string &name, std::uint64_t wss_pages, std::uint64_t seed)
{
    if (name == "web")
        return web(wss_pages, seed);
    if (name == "cache1")
        return cache1(wss_pages, seed);
    if (name == "cache2")
        return cache2(wss_pages, seed);
    if (name == "dwh" || name == "data-warehouse")
        return dataWarehouse(wss_pages, seed);
    if (name == "churn")
        return churn(wss_pages, seed);
    if (name == "phased")
        return phased(wss_pages, seed);
    tpp_fatal("unknown workload profile '%s'", name.c_str());
}

} // namespace profiles

namespace {

/** WorkloadRegistry factory for one of the synthetic paper profiles. */
WorkloadRegistry::Factory
syntheticFactory(const char *profile)
{
    return [profile](const WorkloadSpec &spec) {
        return std::make_unique<SyntheticWorkload>(
            profiles::byName(profile, spec.wssPages, spec.seed));
    };
}

} // namespace

TPP_REGISTER_WORKLOAD(web, syntheticFactory("web"));
TPP_REGISTER_WORKLOAD(cache1, syntheticFactory("cache1"));
TPP_REGISTER_WORKLOAD(cache2, syntheticFactory("cache2"));
TPP_REGISTER_WORKLOAD(dwh, syntheticFactory("dwh"));
TPP_REGISTER_WORKLOAD(churn, syntheticFactory("churn"));
TPP_REGISTER_WORKLOAD(phased, syntheticFactory("phased"));
TPP_REGISTER_WORKLOAD_AS(dataWarehouse, "data-warehouse",
                         syntheticFactory("dwh"));

} // namespace tpp
