/**
 * @file
 * Figure 8: anon pages run hotter than file pages.
 *
 * Same characterisation run as Figure 7, split by page type: the
 * fraction of resident anon vs file pages touched per interval.
 *
 * Paper shape: Web 35 % anon vs 14 % file; Cache1 40 % vs 25 %;
 * Cache2 43 % vs 45 % (the one workload whose files are as hot as its
 * anons); DWH: almost all hot pages are anon, files nearly all cold.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 8",
                  "hot fraction by page type (all-local, Chameleon)");

    TextTable table({"workload", "anon hot/resident", "file hot/resident",
                     "anon share of hot"});

    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : {"web", "cache1", "cache2", "dwh"}) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = wl;
        cfg.allLocal = true;
        cfg.policy = "linux";
        cfg.withChameleon = true;
        // The simulator compresses behavioural time ~120x, so one
        // interval carries ~1/100 of the accesses a production 2-minute
        // window would; sample proportionally denser than the paper's
        // 1-in-200 so per-interval sample counts stay comparable.
        cfg.chameleon.samplePeriod = 10;
        cfg.chameleon.dutyCycle = false;
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        const ExperimentResult &res = results[w];

        double anon_hot = 0.0, anon_res = 0.0;
        double file_hot = 0.0, file_res = 0.0;
        for (std::size_t i = res.chameleonIntervals.size() / 2;
             i < res.chameleonIntervals.size(); ++i) {
            const auto &iv = res.chameleonIntervals[i];
            anon_hot += static_cast<double>(iv.touchedByType[0]);
            file_hot += static_cast<double>(iv.touchedByType[1]);
            anon_res += static_cast<double>(iv.residentByType[0]);
            file_res += static_cast<double>(iv.residentByType[1]);
        }
        const double hot_total = anon_hot + file_hot;
        table.addRow(
            {cfgs[w].workload,
             TextTable::pct(anon_res > 0 ? anon_hot / anon_res : 0.0),
             TextTable::pct(file_res > 0 ? file_hot / file_res : 0.0),
             TextTable::pct(hot_total > 0 ? anon_hot / hot_total : 0.0)});
    }
    table.print();
    std::printf("\npaper: Web 35%%/14%%, Cache1 40%%/25%%, Cache2 43%%/45%%, "
                "DWH anon-dominated\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
