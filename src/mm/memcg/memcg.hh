/**
 * @file
 * A lightweight memory-cgroup layer for multi-tenant runs.
 *
 * The paper evaluates TPP with co-located applications and leans on
 * per-application control — cpuset/mempolicy opt-out (§5.4) and reclaim
 * protection — to keep one tenant's churn from evicting another's hot
 * set. MemcgController reproduces that control surface at simulator
 * scale: every process belongs to exactly one MemCgroup carrying
 *
 *  - per-node resident-page counters (charged on fault, moved on
 *    migration, uncharged on free),
 *  - a `memory.low`-style protection floor that reclaim honours with
 *    the kernel's two-pass scheme (unprotected pages first; floors are
 *    broken only when a pass over the node made no progress),
 *  - an optional placement preference (`local_only` / `cxl_only`) — the
 *    paper's mempolicy opt-out, applied as an allocation preference
 *    that pressure may still spill past, and
 *  - a per-cgroup migration token budget layered on top of the
 *    MigrationEngine's per-destination buckets (TierBPF-style
 *    per-tenant admission control).
 *
 * Deviation from Linux, on purpose: the floor is applied *per node* —
 * a cgroup is protected on the node under reclaim while its residency
 * there is at or below `low`. In a tiered machine the scarce resource
 * is fast-tier residency, so protecting the local footprint directly
 * is what insulates the tenant (Linux's global-usage floor would let
 * local pages be demoted as long as total usage stays high).
 *
 * Everything here is accounting until a floor, budget or placement is
 * configured: with no cgroups created (or all knobs at their defaults)
 * every code path the controller touches behaves bit-identically to
 * the pre-memcg kernel, which test_migration_compat.cc pins.
 */

#ifndef TPP_MM_MEMCG_MEMCG_HH
#define TPP_MM_MEMCG_MEMCG_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tpp {

class SysctlRegistry;

/** Cgroup identifier; 0 is the root cgroup every process starts in. */
using CgroupId = std::uint32_t;

inline constexpr CgroupId kRootCgroup = 0;

/** Placement preference: the paper's per-application mempolicy opt-out. */
enum class MemcgPlacement : std::uint8_t {
    None = 0,   //!< policy decides (default)
    LocalOnly,  //!< prefer the fast tier for new allocations
    CxlOnly,    //!< prefer the CXL tier for new allocations
};

/** What a MemcgEvent tracepoint's aux low byte means. */
enum class MemcgEventKind : std::uint8_t {
    ProtectedSkip = 0, //!< reclaim rotated past a protected page
    LowBreach = 1,     //!< pass 2 reclaimed a page under its floor
    Throttled = 2,     //!< migration deferred by the cgroup budget
};

/** Pack a MemcgEvent aux word: cgroup id in the high bits, kind low. */
inline std::uint32_t
memcgEventAux(CgroupId cgid, MemcgEventKind kind)
{
    return (cgid << 8) | static_cast<std::uint32_t>(kind);
}

/** memory.stat-style event counters, one block per cgroup. */
struct MemcgStats {
    std::uint64_t pagesCharged = 0;     //!< faults charged to the group
    std::uint64_t pagesUncharged = 0;   //!< frees uncharged
    std::uint64_t promoteCandidates = 0;//!< hint-faulted candidates
    std::uint64_t promoteSuccess = 0;   //!< pages promoted to local
    std::uint64_t demotions = 0;        //!< pages demoted to CXL
    std::uint64_t reclaimProtected = 0; //!< pages skipped by the floor
    std::uint64_t reclaimLow = 0;       //!< pages reclaimed under floor
    std::uint64_t migrateThrottled = 0; //!< migrations budget-deferred
    /** Open-loop request accounting (harness noteRequests; both stay 0
     *  for closed-loop tenants). */
    std::uint64_t requestsTotal = 0;    //!< offered in the window
    std::uint64_t requestsSloMet = 0;   //!< completed within the SLO
};

/**
 * One cgroup: configuration knobs plus per-node usage and event
 * counters. Created and owned by the MemcgController; configuration is
 * writable directly (harness) or through the per-cgroup sysctls
 * (`memcg.<name>.low`, `memcg.<name>.placement`,
 * `memcg.<name>.migration_budget_mbps`).
 */
class MemCgroup
{
  public:
    MemCgroup(CgroupId id, std::string name, std::size_t num_nodes)
        : id_(id), name_(std::move(name)), usageByNode_(num_nodes, 0)
    {
    }

    CgroupId id() const { return id_; }
    const std::string &name() const { return name_; }

    /** memory.low equivalent: protected residency floor, in pages. */
    std::uint64_t low = 0;
    /** Allocation preference (mempolicy opt-out). */
    MemcgPlacement placement = MemcgPlacement::None;
    /** Migration budget in MB/s; 0 = unlimited (no bucket). */
    double migrationBudgetMBps = 0.0;
    /** p99 request-latency SLO in microseconds; 0 = none. Purely
     *  declarative: the harness scores open-loop completions against
     *  it and reports attainment in memory.stat. */
    double sloP99Us = 0.0;

    std::uint64_t usageOnNode(NodeId nid) const
    {
        return usageByNode_[nid];
    }

    std::uint64_t
    usage() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t u : usageByNode_)
            total += u;
        return total;
    }

    MemcgStats stats;

    /** Render a memory.stat-style report (one "name value" per line). */
    std::string memoryStat() const;

  private:
    friend class MemcgController;

    CgroupId id_;
    std::string name_;
    std::vector<std::uint64_t> usageByNode_;

    // Migration budget token bucket (same math as the engine's
    // per-destination buckets; see MemcgController::chargeMigration).
    double tokens_ = 0.0;
    Tick tokensRefilledAt_ = 0;
};

/**
 * Owns every cgroup and the asid→cgroup attachment map; one per
 * Kernel, queried from the fault, reclaim and migration hot paths.
 */
class MemcgController
{
  public:
    MemcgController(std::size_t num_nodes, SysctlRegistry &sysctl,
                    EventQueue &eq);

    MemcgController(const MemcgController &) = delete;
    MemcgController &operator=(const MemcgController &) = delete;

    /**
     * Create a cgroup and register its `memcg.<name>.*` sysctls.
     * Names must be unique; re-creating an existing name fatals.
     * @return the new cgroup's id.
     */
    CgroupId create(const std::string &name);

    std::size_t numCgroups() const { return cgroups_.size(); }
    MemCgroup &cgroup(CgroupId id);
    const MemCgroup &cgroup(CgroupId id) const;
    /** @return the cgroup named `name`, or nullptr. */
    MemCgroup *find(const std::string &name);

    // ---- process attachment -----------------------------------------

    /** Attach an existing process to a cgroup (moves future charges;
     *  already-resident pages keep their original accounting). */
    void attach(Asid asid, CgroupId id);

    /**
     * Processes created while a spawn cgroup is set attach to it
     * automatically (Kernel::createProcess calls noteProcess). This is
     * how the harness binds a workload's processes to its tenant
     * cgroup without threading cgroup ids through workload code.
     */
    void setSpawnCgroup(CgroupId id) { spawnCgroup_ = id; }
    CgroupId spawnCgroup() const { return spawnCgroup_; }

    /** Called by the kernel for every new process. */
    void noteProcess(Asid asid);

    /** @return the cgroup a process belongs to (root if never seen). */
    CgroupId
    cgroupOf(Asid asid) const
    {
        return asid < byAsid_.size() ? byAsid_[asid] : kRootCgroup;
    }

    // ---- charging (kernel fault/free/migrate paths) -----------------

    void charge(Asid asid, NodeId nid);
    void uncharge(Asid asid, NodeId nid);
    void transfer(Asid asid, NodeId src, NodeId dst);

    // ---- reclaim protection -----------------------------------------

    /** Global kill-switch (sysctl vm.memcg_protection, default on). */
    bool protectionEnabled() const { return protectionEnabled_; }

    /** @return true when any floor is configured and the switch is on:
     *  reclaim only takes the two-pass path when this holds. */
    bool protectionActive() const;

    /**
     * @return true when `asid`'s cgroup is at or below its floor on
     * `nid`: reclaim's first pass must skip the page.
     */
    bool
    protectedOnNode(Asid asid, NodeId nid) const
    {
        const MemCgroup &cg = *cgroups_[cgroupOf(asid)];
        return cg.low > 0 && cg.usageOnNode(nid) <= cg.low;
    }

    // ---- migration budget -------------------------------------------

    /**
     * Charge `bytes` against the cgroup's migration budget. Without a
     * configured budget this admits for free. Tokens accrue from the
     * moment the budget is set (no boot burst: a tenant cannot spend
     * bandwidth it never earned).
     * @return false when the bucket is dry — defer the migration.
     */
    bool chargeMigration(Asid asid, std::uint64_t bytes);

    /** Budget setter shared by the sysctl and the harness: settles the
     *  bucket at the old rate up to now before applying the new one. */
    void setMigrationBudget(CgroupId id, double mbps);

    // ---- request accounting -----------------------------------------

    /** Record an open-loop run's offered/SLO-met request counts so
     *  memory.stat can report per-tenant SLO attainment. */
    void noteRequests(CgroupId id, std::uint64_t total,
                      std::uint64_t slo_met);

    // ---- placement ---------------------------------------------------

    MemcgPlacement
    placementOf(Asid asid) const
    {
        return cgroups_[cgroupOf(asid)]->placement;
    }

  private:
    std::size_t numNodes_;
    SysctlRegistry &sysctl_;
    EventQueue &eq_;
    /** unique_ptr for stable addresses: sysctl closures bind cgroups. */
    std::vector<std::unique_ptr<MemCgroup>> cgroups_;
    std::vector<CgroupId> byAsid_;
    CgroupId spawnCgroup_ = kRootCgroup;
    bool protectionEnabled_ = true;
};

} // namespace tpp

#endif // TPP_MM_MEMCG_MEMCG_HH
