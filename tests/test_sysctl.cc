/**
 * @file
 * Tests for the sysctl knob registry and the knobs TPP registers.
 */

#include "core/tpp_policy.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(Sysctl, RegisterGetSet)
{
    SysctlRegistry reg;
    double value = 2.5;
    reg.registerDouble("vm.knob", &value);
    EXPECT_TRUE(reg.exists("vm.knob"));
    EXPECT_EQ(reg.get("vm.knob"), "2.5");
    EXPECT_TRUE(reg.set("vm.knob", "7"));
    EXPECT_DOUBLE_EQ(value, 7.0);
    EXPECT_FALSE(reg.set("vm.knob", "garbage"));
    EXPECT_DOUBLE_EQ(value, 7.0);
}

TEST(Sysctl, BoolKnob)
{
    SysctlRegistry reg;
    bool flag = false;
    reg.registerBool("vm.flag", &flag);
    EXPECT_TRUE(reg.set("vm.flag", "1"));
    EXPECT_TRUE(flag);
    EXPECT_TRUE(reg.set("vm.flag", "0"));
    EXPECT_FALSE(flag);
    EXPECT_FALSE(reg.set("vm.flag", "yes"));
}

TEST(Sysctl, U64Knob)
{
    SysctlRegistry reg;
    std::uint64_t value = 42;
    reg.registerU64("vm.count", &value);
    EXPECT_EQ(reg.get("vm.count"), "42");
    EXPECT_TRUE(reg.set("vm.count", "1000000"));
    EXPECT_EQ(value, 1000000u);
    EXPECT_FALSE(reg.set("vm.count", "12x"));
}

TEST(Sysctl, DoubleKnobRejectsNonFinite)
{
    // Regression: "nan"/"inf"/"-inf" parse cleanly through strtod and
    // used to land in the bound variable, silently disabling every
    // comparison downstream (a NaN rate limit admits everything).
    SysctlRegistry reg;
    double value = 1.0;
    reg.registerDouble("vm.knob", &value);
    EXPECT_FALSE(reg.set("vm.knob", "nan"));
    EXPECT_FALSE(reg.set("vm.knob", "inf"));
    EXPECT_FALSE(reg.set("vm.knob", "-inf"));
    EXPECT_FALSE(reg.set("vm.knob", "NAN"));
    EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(Sysctl, DoubleKnobEnforcesRange)
{
    SysctlRegistry reg;
    double value = 0.5;
    reg.registerDouble("vm.frac", &value, nullptr, 0.0, 1.0);
    EXPECT_TRUE(reg.set("vm.frac", "1"));
    EXPECT_DOUBLE_EQ(value, 1.0);
    EXPECT_FALSE(reg.set("vm.frac", "1.5"));
    EXPECT_FALSE(reg.set("vm.frac", "-0.1"));
    EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(Sysctl, U64KnobRejectsSignsAndOverflow)
{
    // Regression: strtoull parses "-1" as 2^64-1, so a stray minus sign
    // used to wrap an unsigned knob to its maximum instead of failing.
    SysctlRegistry reg;
    std::uint64_t value = 7;
    reg.registerU64("vm.count", &value);
    EXPECT_FALSE(reg.set("vm.count", "-1"));
    EXPECT_FALSE(reg.set("vm.count", "+1"));
    EXPECT_FALSE(reg.set("vm.count", " 1"));
    EXPECT_FALSE(reg.set("vm.count", ""));
    EXPECT_FALSE(reg.set("vm.count", "99999999999999999999999"));
    EXPECT_EQ(value, 7u);
}

TEST(Sysctl, U64KnobEnforcesRange)
{
    SysctlRegistry reg;
    std::uint64_t value = 4;
    reg.registerU64("vm.depth", &value, nullptr, 1, 64);
    EXPECT_FALSE(reg.set("vm.depth", "0"));
    EXPECT_FALSE(reg.set("vm.depth", "65"));
    EXPECT_TRUE(reg.set("vm.depth", "64"));
    EXPECT_EQ(value, 64u);
}

TEST(Sysctl, OnChangeHookFires)
{
    SysctlRegistry reg;
    double value = 1.0;
    int fired = 0;
    reg.registerDouble("vm.knob", &value, [&] { fired++; });
    reg.set("vm.knob", "2");
    reg.set("vm.knob", "3");
    EXPECT_EQ(fired, 2);
}

TEST(Sysctl, ReadOnlyRejectsWrites)
{
    SysctlRegistry reg;
    reg.registerReadOnly("vm.ro", [] { return std::string("x"); });
    EXPECT_EQ(reg.get("vm.ro"), "x");
    EXPECT_FALSE(reg.set("vm.ro", "y"));
}

TEST(Sysctl, UnknownKnob)
{
    SysctlRegistry reg;
    EXPECT_FALSE(reg.exists("nope"));
    EXPECT_EQ(reg.get("nope"), "");
    EXPECT_FALSE(reg.set("nope", "1"));
}

TEST(Sysctl, NamesSorted)
{
    SysctlRegistry reg;
    bool b = false;
    reg.registerBool("z.last", &b);
    reg.registerBool("a.first", &b);
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "z.last");
}

TEST(SysctlTpp, DemoteScaleFactorKnobReappliesWatermarks)
{
    TestMachine m(10000, 10000, std::make_unique<TppPolicy>());
    SysctlRegistry &sysctl = m.kernel.sysctl();
    ASSERT_TRUE(sysctl.exists("vm.demote_scale_factor"));
    EXPECT_EQ(sysctl.get("vm.demote_scale_factor"), "2");
    EXPECT_EQ(m.mem.node(0).watermarks().demoteTrigger, 200u);

    ASSERT_TRUE(sysctl.set("vm.demote_scale_factor", "5"));
    EXPECT_EQ(m.mem.node(0).watermarks().demoteTrigger, 500u);
}

TEST(SysctlTpp, RegisteredKnobsCarryRanges)
{
    // The audit that followed the nan/-1 bugs: every TPP knob with a
    // meaningful domain now declares it at registration time.
    TestMachine m(10000, 10000, std::make_unique<TppPolicy>());
    SysctlRegistry &sysctl = m.kernel.sysctl();
    EXPECT_FALSE(sysctl.set("vm.demote_scale_factor", "-1"));
    EXPECT_FALSE(sysctl.set("vm.demote_scale_factor", "101"));
    EXPECT_FALSE(sysctl.set("vm.demote_scale_factor", "nan"));
    EXPECT_FALSE(sysctl.set(
        "kernel.numa_balancing_promote_rate_limit_MBps", "-5"));
    EXPECT_FALSE(sysctl.set("kernel.numa_balancing_scan_size_pages", "0"));
    EXPECT_FALSE(sysctl.set("kernel.numa_balancing_scan_size_pages",
                            "-1"));
    // Rejected writes leave the previous values in force.
    EXPECT_EQ(sysctl.get("vm.demote_scale_factor"), "2");
    EXPECT_EQ(m.mem.node(0).watermarks().demoteTrigger, 200u);
}

TEST(SysctlTpp, ModeKnobIsReadOnly)
{
    TestMachine m(512, 512, std::make_unique<TppPolicy>());
    SysctlRegistry &sysctl = m.kernel.sysctl();
    EXPECT_NE(sysctl.get("kernel.numa_balancing")
                  .find("NUMA_BALANCING_TIERED"),
              std::string::npos);
    EXPECT_FALSE(sysctl.set("kernel.numa_balancing", "1"));
}

TEST(SysctlTpp, TypeAwareToggleTakesEffect)
{
    TestMachine m(512, 512, std::make_unique<TppPolicy>());
    ASSERT_TRUE(
        m.kernel.sysctl().set("vm.tpp.type_aware_allocation", "1"));
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f");
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(f).nid, m.cxl());
}

} // namespace
} // namespace tpp
