/**
 * @file
 * Unit tests for MemorySystem and the topology builders.
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"
#include "sim/logging.hh"

namespace tpp {
namespace {

TEST(TopologyBuilder, CxlSystemShape)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(1000, 500));
    EXPECT_EQ(mem.numNodes(), 2u);
    EXPECT_EQ(mem.cpuNodes().size(), 1u);
    EXPECT_EQ(mem.cxlNodes().size(), 1u);
    EXPECT_FALSE(mem.node(0).cpuLess());
    EXPECT_TRUE(mem.node(1).cpuLess());
    EXPECT_EQ(mem.node(0).capacity(), 1000u);
    EXPECT_EQ(mem.node(1).capacity(), 500u);
    EXPECT_EQ(mem.totalFrames(), 1500u);
}

TEST(TopologyBuilder, CxlLatencyAboveLocal)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(10, 10));
    EXPECT_GT(mem.node(1).profile().idleLatencyNs,
              mem.node(0).profile().idleLatencyNs);
    // CXL adds ~50-100 ns over local DRAM (Figure 2 / §2).
    const double delta = mem.node(1).profile().idleLatencyNs -
                         mem.node(0).profile().idleLatencyNs;
    EXPECT_GE(delta, 50.0);
    EXPECT_LE(delta, 100.0);
}

TEST(TopologyBuilder, AllLocalHasNoCxl)
{
    MemorySystem mem(TopologyBuilder::allLocal(100));
    EXPECT_EQ(mem.numNodes(), 1u);
    EXPECT_TRUE(mem.cxlNodes().empty());
    EXPECT_TRUE(mem.demotionOrder(0).empty());
}

TEST(TopologyBuilder, MultiCxlDistanceOrder)
{
    MemorySystem mem(
        TopologyBuilder::multiCxlSystem(100, {50, 50, 50}));
    EXPECT_EQ(mem.numNodes(), 4u);
    const auto &order = mem.demotionOrder(0);
    ASSERT_EQ(order.size(), 3u);
    // Closest CXL node first.
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
    EXPECT_EQ(order[2], 3);
}

TEST(MemorySystem, FramesCarryNodeIdsOnceHandedOut)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(10, 20));
    // Construction is O(1) per node: a fresh frame is all-zero (free)
    // and learns its identity when the node first hands it out.
    EXPECT_TRUE(mem.frame(5).isFree());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(mem.node(0).takeFree(), static_cast<Pfn>(i));
    EXPECT_EQ(mem.node(1).takeFree(), 10u);
    EXPECT_EQ(mem.frame(0).nid, 0);
    EXPECT_EQ(mem.frame(9).nid, 0);
    EXPECT_EQ(mem.frame(10).nid, 1);
    EXPECT_EQ(mem.frame(5).pfn, 5u);
    // Recycled frames come back LIFO before the bump cursor advances.
    mem.node(1).putFree(10);
    EXPECT_EQ(mem.node(1).takeFree(), 10u);
    EXPECT_EQ(mem.node(1).takeFree(), 11u);
    EXPECT_EQ(mem.node(0).takeFree(), kInvalidPfn);
}

TEST(MemorySystem, FallbackOrderSelfFirst)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(10, 10));
    EXPECT_EQ(mem.fallbackOrder(0).front(), 0);
    EXPECT_EQ(mem.fallbackOrder(1).front(), 1);
    EXPECT_EQ(mem.fallbackOrder(0).size(), 2u);
}

TEST(MemorySystem, DistanceMatrix)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(10, 10));
    EXPECT_EQ(mem.distance(0, 0), 10u);
    EXPECT_EQ(mem.distance(0, 1), 20u);
    EXPECT_EQ(mem.distance(1, 0), 20u);
}

TEST(MemorySystem, TotalFreeDecreasesOnTake)
{
    MemorySystem mem(TopologyBuilder::cxlSystem(10, 10));
    EXPECT_EQ(mem.totalFreePages(), 20u);
    mem.node(0).takeFree();
    EXPECT_EQ(mem.totalFreePages(), 19u);
}

TEST(MemorySystem, DefaultDistancesWhenUnspecified)
{
    MemoryConfig cfg;
    cfg.nodes.push_back({16, NodeProfile{80, 100, false, "a"}});
    cfg.nodes.push_back({16, NodeProfile{150, 64, true, "b"}});
    // No distance matrix supplied.
    MemorySystem mem(cfg);
    EXPECT_EQ(mem.distance(0, 0), 10u);
    EXPECT_EQ(mem.distance(0, 1), 20u);
}

TEST(MemorySystemDeathTest, NoNodesIsFatal)
{
    setLogVerbose(false);
    MemoryConfig cfg;
    EXPECT_DEATH({ MemorySystem mem(cfg); }, "at least one node");
}

TEST(MemorySystemDeathTest, NoCpuNodeIsFatal)
{
    setLogVerbose(false);
    MemoryConfig cfg;
    cfg.nodes.push_back({16, NodeProfile{150, 64, true, "cxl"}});
    EXPECT_DEATH({ MemorySystem mem(cfg); }, "CPU-attached");
}

TEST(MemorySystemDeathTest, BadDistanceMatrixIsFatal)
{
    setLogVerbose(false);
    MemoryConfig cfg;
    cfg.nodes.push_back({16, NodeProfile{80, 100, false, "a"}});
    cfg.nodes.push_back({16, NodeProfile{150, 64, true, "b"}});
    cfg.distances = {{10}};
    EXPECT_DEATH({ MemorySystem mem(cfg); }, "distance matrix");
}

TEST(MemorySystemDeathTest, OutOfRangePfnPanics)
{
    setLogVerbose(false);
    MemorySystem mem(TopologyBuilder::allLocal(8));
    EXPECT_DEATH(mem.frame(8), "out of range");
}

TEST(MemorySystemDeathTest, OutOfRangeNodePanics)
{
    setLogVerbose(false);
    MemorySystem mem(TopologyBuilder::allLocal(8));
    EXPECT_DEATH(mem.node(1), "out of range");
}

} // namespace
} // namespace tpp
