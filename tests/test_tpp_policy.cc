/**
 * @file
 * Unit tests for the TPP policy: watermark decoupling, CXL-only
 * sampling, the active-LRU promotion filter, ping-pong accounting and
 * page-type-aware allocation.
 */

#include "core/tpp_policy.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

std::unique_ptr<TppPolicy>
makeTpp(TppConfig cfg = {})
{
    return std::make_unique<TppPolicy>(cfg);
}

TEST(TppPolicy, AppliesDemoteScaleFactorToWatermarks)
{
    TppConfig cfg;
    cfg.demoteScaleFactor = 5.0;
    TestMachine m(10000, 10000, makeTpp(cfg));
    const Watermarks &wm = m.mem.node(m.local()).watermarks();
    EXPECT_EQ(wm.demoteTrigger, 500u); // 5 % of 10000
}

TEST(TppPolicy, DecoupledMarksOnLocalOnly)
{
    TestMachine m(10000, 10000, makeTpp());
    const ReclaimMarks local = m.kernel.policy().kswapdMarks(m.local());
    const ReclaimMarks cxl = m.kernel.policy().kswapdMarks(m.cxl());
    const Watermarks &wm_local = m.mem.node(m.local()).watermarks();
    const Watermarks &wm_cxl = m.mem.node(m.cxl()).watermarks();
    EXPECT_EQ(local.trigger, wm_local.demoteTrigger);
    EXPECT_EQ(local.target, wm_local.demoteTarget);
    EXPECT_EQ(cxl.trigger, wm_cxl.low);
    EXPECT_EQ(cxl.target, wm_cxl.high);
}

TEST(TppPolicy, CoupledWhenDecouplingDisabled)
{
    TppConfig cfg;
    cfg.decoupleWatermarks = false;
    TestMachine m(10000, 10000, makeTpp(cfg));
    const ReclaimMarks marks = m.kernel.policy().kswapdMarks(m.local());
    EXPECT_EQ(marks.trigger, m.mem.node(m.local()).watermarks().low);
}

TEST(TppPolicy, ScansOnlyCxlNodes)
{
    TestMachine m(512, 512, makeTpp());
    EXPECT_FALSE(m.kernel.policy().scanNode(m.local()));
    EXPECT_TRUE(m.kernel.policy().scanNode(m.cxl()));
}

TEST(TppPolicy, DemotionModeOnCpuNodesOnly)
{
    TestMachine m(512, 512, makeTpp());
    EXPECT_TRUE(m.kernel.policy().reclaimByDemotion(m.local()));
    EXPECT_FALSE(m.kernel.policy().reclaimByDemotion(m.cxl()));
}

TEST(TppPolicy, ScannerDaemonSamplesCxl)
{
    TppConfig cfg;
    cfg.scanPeriod = 10 * kMillisecond;
    cfg.scanBatch = 32;
    TestMachine m(512, 512, makeTpp(cfg));
    // Pages on the CXL node.
    const Vpn base = m.kernel.mmap(m.asid, 16, PageType::Anon, "a");
    for (int i = 0; i < 16; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, m.cxl());
    m.eq.run(m.eq.now() + 100 * kMillisecond);
    EXPECT_GT(m.kernel.vmstat().get(Vm::NumaPteUpdates), 0u);
    // Local pages must not be sampled.
    const Vpn l = m.populate(4, PageType::Anon);
    m.eq.run(m.eq.now() + 100 * kMillisecond);
    for (int i = 0; i < 4; ++i)
        EXPECT_FALSE(m.pte(l + i).protNone());
}

TEST(TppPolicy, InactiveFaultActivatesInsteadOfPromoting)
{
    TestMachine m(512, 512, makeTpp());
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    ASSERT_EQ(m.frameOf(base).lru, LruListId::InactiveAnon);

    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    // Fig 14 (2): first fault moves to the active list, no promotion.
    EXPECT_EQ(m.frameOf(base).nid, m.cxl());
    EXPECT_EQ(m.frameOf(base).lru, LruListId::ActiveAnon);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteTry), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteCandidate), 0u);
}

TEST(TppPolicy, SecondFaultPromotesActivePage)
{
    TestMachine m(512, 512, makeTpp());
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());

    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0); // activate
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0); // promote
    EXPECT_EQ(m.frameOf(base).nid, m.local());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteCandidateAnon), 1u);
}

TEST(TppPolicy, InstantPromotionWhenFilterDisabled)
{
    TppConfig cfg;
    cfg.activeLruFilter = false;
    TestMachine m(512, 512, makeTpp(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(base).nid, m.local());
}

TEST(TppPolicy, PingPongCounterTracksDemotedCandidates)
{
    TestMachine m(512, 512, makeTpp());
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.demotePage(m.pte(base).pfn);
    ASSERT_TRUE(m.frameOf(base).demoted());

    // Two hint faults: activate, then candidate + promote.
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteCandidateDemoted), 1u);
    // Promotion cleared PG_demoted.
    EXPECT_FALSE(m.frameOf(base).demoted());
}

TEST(TppPolicy, PromotionIgnoresAllocationWatermark)
{
    TestMachine m(256, 512, makeTpp());
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    // Local down to its high watermark: default NUMA balancing would
    // refuse, TPP proceeds.
    while (m.mem.node(0).freePages() > m.mem.node(0).watermarks().high)
        m.mem.node(0).takeFree();
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0); // activate
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0); // promote
    EXPECT_EQ(m.frameOf(base).nid, m.local());
}

TEST(TppPolicy, TypeAwareAllocationSteersFileToCxl)
{
    TppConfig cfg;
    cfg.typeAwareAllocation = true;
    TestMachine m(512, 512, makeTpp(cfg));
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f");
    const Vpn a = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    m.kernel.access(m.asid, a, AccessKind::Store, 0);
    EXPECT_EQ(m.frameOf(f).nid, m.cxl());
    EXPECT_EQ(m.frameOf(a).nid, m.local());
}

TEST(TppPolicy, TypeAwareDisabledKeepsFileLocal)
{
    TestMachine m(512, 512, makeTpp());
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f");
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(f).nid, m.local());
}

TEST(TppPolicy, KswapdDemotesToKeepHeadroom)
{
    TppConfig cfg;
    cfg.scanPeriod = kSecond; // keep the scanner quiet
    TestMachine m(256, 1024, makeTpp(cfg));
    // Fill local past the demotion trigger with cold pages.
    const Vpn base = m.kernel.mmap(m.asid, 250, PageType::Anon, "a");
    for (int i = 0; i < 250; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, 0);
    for (int i = 0; i < 250; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);
    m.kernel.wakeKswapd(m.local());
    m.eq.run(m.eq.now() + kSecond);
    // Headroom restored up to the demotion target, via migration.
    EXPECT_GE(m.mem.node(m.local()).freePages(),
              m.mem.node(m.local()).watermarks().demoteTarget);
    EXPECT_GT(m.kernel.vmstat().get(Vm::PgDemoteAnon), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PswpOut), 0u);
}

TEST(TppPolicy, NameAndConfigExposed)
{
    TppConfig cfg;
    cfg.demoteScaleFactor = 3.0;
    TestMachine m(256, 256, makeTpp(cfg));
    EXPECT_EQ(m.kernel.policy().name(), "tpp");
    const auto &policy = static_cast<TppPolicy &>(m.kernel.policy());
    EXPECT_DOUBLE_EQ(policy.config().demoteScaleFactor, 3.0);
}

} // namespace
} // namespace tpp
