#include "mm/memcg/memcg.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "mm/sysctl.hh"
#include "sim/logging.hh"

namespace tpp {

std::string
MemCgroup::memoryStat() const
{
    std::ostringstream out;
    out << "usage " << usage() << '\n';
    for (std::size_t nid = 0; nid < usageByNode_.size(); ++nid)
        out << "usage_node" << nid << ' ' << usageByNode_[nid] << '\n';
    out << "low " << low << '\n';
    out << "pages_charged " << stats.pagesCharged << '\n';
    out << "pages_uncharged " << stats.pagesUncharged << '\n';
    out << "promote_candidates " << stats.promoteCandidates << '\n';
    out << "promote_success " << stats.promoteSuccess << '\n';
    out << "demotions " << stats.demotions << '\n';
    out << "reclaim_protected " << stats.reclaimProtected << '\n';
    out << "reclaim_low " << stats.reclaimLow << '\n';
    out << "migrate_throttled " << stats.migrateThrottled << '\n';
    out << "requests_total " << stats.requestsTotal << '\n';
    out << "requests_slo_met " << stats.requestsSloMet << '\n';
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", sloP99Us);
        out << "slo_p99_us " << buf << '\n';
        const double attainment =
            stats.requestsTotal
                ? static_cast<double>(stats.requestsSloMet) /
                      static_cast<double>(stats.requestsTotal)
                : 1.0;
        std::snprintf(buf, sizeof(buf), "%g", attainment);
        out << "slo_attainment " << buf << '\n';
    }
    return out.str();
}

MemcgController::MemcgController(std::size_t num_nodes,
                                 SysctlRegistry &sysctl, EventQueue &eq)
    : numNodes_(num_nodes), sysctl_(sysctl), eq_(eq)
{
    // The root cgroup exists from boot; every process starts there.
    // It never carries a floor, so a freshly built kernel behaves
    // exactly like the pre-memcg one.
    cgroups_.push_back(
        std::make_unique<MemCgroup>(kRootCgroup, "root", numNodes_));
    sysctl_.registerBool("vm.memcg_protection", &protectionEnabled_);
}

CgroupId
MemcgController::create(const std::string &name)
{
    if (name.empty())
        tpp_fatal("memcg: cgroup name must not be empty");
    if (find(name))
        tpp_fatal("memcg: cgroup '%s' already exists", name.c_str());
    const CgroupId id = static_cast<CgroupId>(cgroups_.size());
    cgroups_.push_back(
        std::make_unique<MemCgroup>(id, name, numNodes_));
    MemCgroup *cg = cgroups_.back().get();

    const std::string prefix = "memcg." + name + ".";
    sysctl_.registerU64(prefix + "low", &cg->low);
    sysctl_.registerKnob(
        prefix + "placement",
        [cg] {
            switch (cg->placement) {
              case MemcgPlacement::LocalOnly: return std::string("local_only");
              case MemcgPlacement::CxlOnly: return std::string("cxl_only");
              case MemcgPlacement::None: break;
            }
            return std::string("none");
        },
        [cg](const std::string &text) {
            if (text == "none")
                cg->placement = MemcgPlacement::None;
            else if (text == "local_only")
                cg->placement = MemcgPlacement::LocalOnly;
            else if (text == "cxl_only")
                cg->placement = MemcgPlacement::CxlOnly;
            else
                return false;
            return true;
        });
    sysctl_.registerKnob(
        prefix + "migration_budget_mbps",
        [cg] {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%g", cg->migrationBudgetMBps);
            return std::string(buf);
        },
        [this, id](const std::string &text) {
            char *end = nullptr;
            const double parsed = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                !std::isfinite(parsed) || parsed < 0.0)
                return false;
            setMigrationBudget(id, parsed);
            return true;
        });
    sysctl_.registerKnob(
        prefix + "slo_p99_us",
        [cg] {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%g", cg->sloP99Us);
            return std::string(buf);
        },
        [cg](const std::string &text) {
            char *end = nullptr;
            const double parsed = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                !std::isfinite(parsed) || parsed < 0.0)
                return false;
            cg->sloP99Us = parsed;
            return true;
        });
    sysctl_.registerReadOnly(prefix + "stat",
                             [cg] { return cg->memoryStat(); });
    return id;
}

MemCgroup &
MemcgController::cgroup(CgroupId id)
{
    if (id >= cgroups_.size())
        tpp_panic("memcg: bad cgroup id %u", id);
    return *cgroups_[id];
}

const MemCgroup &
MemcgController::cgroup(CgroupId id) const
{
    if (id >= cgroups_.size())
        tpp_panic("memcg: bad cgroup id %u", id);
    return *cgroups_[id];
}

MemCgroup *
MemcgController::find(const std::string &name)
{
    for (auto &cg : cgroups_)
        if (cg->name() == name)
            return cg.get();
    return nullptr;
}

void
MemcgController::attach(Asid asid, CgroupId id)
{
    if (id >= cgroups_.size())
        tpp_panic("memcg: attach to bad cgroup id %u", id);
    if (asid >= byAsid_.size())
        byAsid_.resize(asid + 1, kRootCgroup);
    byAsid_[asid] = id;
}

void
MemcgController::noteProcess(Asid asid)
{
    attach(asid, spawnCgroup_);
}

void
MemcgController::charge(Asid asid, NodeId nid)
{
    MemCgroup &cg = *cgroups_[cgroupOf(asid)];
    cg.usageByNode_[nid]++;
    cg.stats.pagesCharged++;
}

void
MemcgController::uncharge(Asid asid, NodeId nid)
{
    MemCgroup &cg = *cgroups_[cgroupOf(asid)];
    if (cg.usageByNode_[nid] == 0)
        tpp_panic("memcg: uncharge below zero on node %u (cgroup %s)",
                  nid, cg.name().c_str());
    cg.usageByNode_[nid]--;
    cg.stats.pagesUncharged++;
}

void
MemcgController::transfer(Asid asid, NodeId src, NodeId dst)
{
    MemCgroup &cg = *cgroups_[cgroupOf(asid)];
    if (cg.usageByNode_[src] == 0)
        tpp_panic("memcg: transfer below zero on node %u (cgroup %s)",
                  src, cg.name().c_str());
    cg.usageByNode_[src]--;
    cg.usageByNode_[dst]++;
}

bool
MemcgController::protectionActive() const
{
    if (!protectionEnabled_)
        return false;
    for (const auto &cg : cgroups_)
        if (cg->low > 0)
            return true;
    return false;
}

bool
MemcgController::chargeMigration(Asid asid, std::uint64_t bytes)
{
    MemCgroup &cg = *cgroups_[cgroupOf(asid)];
    if (cg.migrationBudgetMBps <= 0.0)
        return true;
    const Tick now = eq_.now();
    const double bytes_per_ns = cg.migrationBudgetMBps * 1e6 / 1e9;
    const double burst = cg.migrationBudgetMBps * 1e6 * 0.1; // 100 ms
    cg.tokens_ += static_cast<double>(now - cg.tokensRefilledAt_) *
                  bytes_per_ns;
    cg.tokensRefilledAt_ = now;
    if (cg.tokens_ > burst)
        cg.tokens_ = burst;
    if (cg.tokens_ < static_cast<double>(bytes))
        return false;
    cg.tokens_ -= static_cast<double>(bytes);
    return true;
}

void
MemcgController::noteRequests(CgroupId id, std::uint64_t total,
                              std::uint64_t slo_met)
{
    MemCgroup &cg = cgroup(id);
    cg.stats.requestsTotal += total;
    cg.stats.requestsSloMet += slo_met;
}

void
MemcgController::setMigrationBudget(CgroupId id, double mbps)
{
    MemCgroup &cg = cgroup(id);
    const Tick now = eq_.now();
    // Settle the bucket at the old rate before switching: tokens earned
    // so far survive (clamped to the old burst), but a rate change
    // never mints a fresh burst out of thin air.
    if (cg.migrationBudgetMBps > 0.0) {
        const double old_rate = cg.migrationBudgetMBps * 1e6 / 1e9;
        const double old_burst = cg.migrationBudgetMBps * 1e6 * 0.1;
        cg.tokens_ += static_cast<double>(now - cg.tokensRefilledAt_) *
                      old_rate;
        if (cg.tokens_ > old_burst)
            cg.tokens_ = old_burst;
    }
    cg.tokensRefilledAt_ = now;
    cg.migrationBudgetMBps = mbps;
    const double new_burst = mbps * 1e6 * 0.1;
    if (cg.tokens_ > new_burst)
        cg.tokens_ = new_burst;
}

} // namespace tpp
