#include "mm/meminfo.hh"

#include <sstream>

#include "mm/kernel.hh"

namespace tpp {

MemInfo
collectMemInfo(const Kernel &kernel)
{
    MemInfo info;
    const MemorySystem &mem = kernel.mem();
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId nid = static_cast<NodeId>(i);
        const MemoryNode &node = mem.node(nid);
        const LruSet &lru = kernel.lru(nid);
        NodeMemInfo n;
        n.nid = nid;
        n.name = node.profile().name;
        n.cpuLess = node.cpuLess();
        n.capacityPages = node.capacity();
        n.freePages = node.freePages();
        n.min = node.watermarks().min;
        n.low = node.watermarks().low;
        n.high = node.watermarks().high;
        n.demoteTrigger = node.watermarks().demoteTrigger;
        n.demoteTarget = node.watermarks().demoteTarget;
        n.activeAnon = lru.count(LruListId::ActiveAnon);
        n.inactiveAnon = lru.count(LruListId::InactiveAnon);
        n.activeFile = lru.count(LruListId::ActiveFile);
        n.inactiveFile = lru.count(LruListId::InactiveFile);
        info.nodes.push_back(n);
        info.totalPages += n.capacityPages;
        info.totalFree += n.freePages;
    }
    info.swapUsedSlots = mem.swapDevice().usedSlots();
    return info;
}

std::string
renderMemInfo(const MemInfo &info)
{
    std::ostringstream out;
    out << "MemTotal:  " << info.totalPages << " pages\n";
    out << "MemFree:   " << info.totalFree << " pages\n";
    out << "MemUsed:   " << info.totalUsed() << " pages\n";
    out << "SwapUsed:  " << info.swapUsedSlots << " pages\n";
    for (const NodeMemInfo &n : info.nodes) {
        out << "Node " << static_cast<int>(n.nid) << " (" << n.name
            << (n.cpuLess ? ", cpu-less" : "") << ")\n";
        out << "  capacity       " << n.capacityPages << '\n';
        out << "  free           " << n.freePages << '\n';
        out << "  min/low/high   " << n.min << '/' << n.low << '/'
            << n.high << '\n';
        out << "  demote trig/tgt " << n.demoteTrigger << '/'
            << n.demoteTarget << '\n';
        out << "  active_anon    " << n.activeAnon << '\n';
        out << "  inactive_anon  " << n.inactiveAnon << '\n';
        out << "  active_file    " << n.activeFile << '\n';
        out << "  inactive_file  " << n.inactiveFile << '\n';
    }
    return out.str();
}

} // namespace tpp
