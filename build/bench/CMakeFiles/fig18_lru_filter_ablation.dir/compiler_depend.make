# Empty compiler generated dependencies file for fig18_lru_filter_ablation.
# This may be replaced when dependencies are built.
