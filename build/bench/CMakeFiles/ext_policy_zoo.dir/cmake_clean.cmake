file(REMOVE_RECURSE
  "CMakeFiles/ext_policy_zoo.dir/ext_policy_zoo.cpp.o"
  "CMakeFiles/ext_policy_zoo.dir/ext_policy_zoo.cpp.o.d"
  "ext_policy_zoo"
  "ext_policy_zoo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_policy_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
