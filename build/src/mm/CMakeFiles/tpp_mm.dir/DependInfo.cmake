
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/address_space.cc" "src/mm/CMakeFiles/tpp_mm.dir/address_space.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/address_space.cc.o.d"
  "/root/repo/src/mm/damon.cc" "src/mm/CMakeFiles/tpp_mm.dir/damon.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/damon.cc.o.d"
  "/root/repo/src/mm/kernel.cc" "src/mm/CMakeFiles/tpp_mm.dir/kernel.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/kernel.cc.o.d"
  "/root/repo/src/mm/kernel_alloc.cc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_alloc.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_alloc.cc.o.d"
  "/root/repo/src/mm/kernel_migrate.cc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_migrate.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_migrate.cc.o.d"
  "/root/repo/src/mm/kernel_reclaim.cc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_reclaim.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/kernel_reclaim.cc.o.d"
  "/root/repo/src/mm/lru.cc" "src/mm/CMakeFiles/tpp_mm.dir/lru.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/lru.cc.o.d"
  "/root/repo/src/mm/meminfo.cc" "src/mm/CMakeFiles/tpp_mm.dir/meminfo.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/meminfo.cc.o.d"
  "/root/repo/src/mm/sysctl.cc" "src/mm/CMakeFiles/tpp_mm.dir/sysctl.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/sysctl.cc.o.d"
  "/root/repo/src/mm/vmstat.cc" "src/mm/CMakeFiles/tpp_mm.dir/vmstat.cc.o" "gcc" "src/mm/CMakeFiles/tpp_mm.dir/vmstat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/tpp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
