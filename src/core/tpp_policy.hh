/**
 * @file
 * TPP: Transparent Page Placement for CXL-enabled tiered memory — the
 * paper's core contribution (§5), expressed as a PlacementPolicy over
 * the Kernel mechanism layer.
 *
 * The four design elements map to configuration and hooks as follows:
 *
 *  1. *Migration for lightweight reclamation* (§5.1):
 *     reclaimByDemotion() returns true for CPU nodes, so kswapd and
 *     direct reclaim demote LRU-tail pages to the distance-ordered CXL
 *     target via Kernel::demotePage, falling back to classic reclaim
 *     per page on failure.
 *
 *  2. *Decoupling allocation and reclamation* (§5.2): kswapdMarks()
 *     returns the demotion watermark pair derived from
 *     demote_scale_factor instead of the classic {low, high}, so the
 *     local node maintains a free-page headroom while allocations are
 *     still permitted at the (lower) allocation watermark.
 *
 *  3. *Page promotion from remote nodes* (§5.3): NUMA_BALANCING_TIERED
 *     sampling is restricted to CXL nodes; hint-faulted pages are only
 *     promotion candidates once they reach an active LRU list (faulted
 *     pages found inactive are marked accessed, giving the two-touch
 *     hysteresis of Fig 14); the promotion allocation ignores the
 *     allocation watermark.
 *
 *  4. *Page type-aware allocation* (§5.4): optionally steer new file /
 *     tmpfs pages to the CXL node while anon stays local-first.
 */

#ifndef TPP_CORE_TPP_POLICY_HH
#define TPP_CORE_TPP_POLICY_HH

#include "mm/placement_policy.hh"
#include "mm/policy_params.hh"
#include "sim/types.hh"

namespace tpp {

// NumaMode and TppConfig live in mm/policy_params.hh with the other
// policy parameter blocks, so the harness can configure a run without
// including this header.

/**
 * The TPP placement policy.
 */
class TppPolicy : public PlacementPolicy
{
  public:
    explicit TppPolicy(TppConfig cfg = {}) : cfg_(cfg) {}

    std::string name() const override { return "tpp"; }

    const TppConfig &config() const { return cfg_; }

    /** Mode actually in effect after auto-detection. */
    NumaMode effectiveMode() const { return effectiveMode_; }

    void attach(Kernel &kernel) override;
    void start() override;

    NodeId allocPreferredNode(PageType type, NodeId task_nid) override;

    bool reclaimByDemotion(NodeId nid) const override;

    ReclaimMarks kswapdMarks(NodeId nid) const override;

    bool scanNode(NodeId nid) const override;

    double onHintFault(Pfn pfn, NodeId task_nid) override;

  protected:
    // Shared with HotnessPolicy (src/hotness), which reuses TPP's
    // demotion side and promotion plumbing under a different signal.

    /** Local target for a promotion from `src` by a task on `task_nid`. */
    NodeId promotionTarget(NodeId task_nid) const;

    /** Token-bucket check for the optional promotion rate limit. */
    bool promotionWithinRateLimit();

  private:
    void scanTick();

    /** Re-derive node watermarks from the current scale factor. */
    void applyWatermarks();

    /** True when reclaim on `nid` goes through demotion, not swap. */
    bool demotesFrom(NodeId nid) const;

    TppConfig cfg_;
    NumaMode effectiveMode_ = NumaMode::Tiered;
    double promoteTokensBytes_ = 0.0;
    Tick promoteTokensRefilledAt_ = 0;
};

} // namespace tpp

#endif // TPP_CORE_TPP_POLICY_HH
