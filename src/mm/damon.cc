#include "mm/damon.hh"

#include <algorithm>

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

DamonMonitor::DamonMonitor(Kernel &kernel, DamonConfig cfg)
    : kernel_(kernel), cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.minRegions == 0 || cfg_.maxRegions < cfg_.minRegions)
        tpp_fatal("damon: need 0 < minRegions <= maxRegions");
}

void
DamonMonitor::rebuildRegions()
{
    // Cover every live VMA; carry access state over for regions whose
    // span survives (approximate overlap match, as the kernel does on
    // target updates).
    std::vector<DamonRegion> fresh;
    for (std::size_t p = 0; p < kernel_.numProcesses(); ++p) {
        const Asid asid = static_cast<Asid>(p);
        for (const Vma &vma : kernel_.addressSpace(asid).vmas()) {
            DamonRegion region;
            region.asid = asid;
            region.start = vma.start;
            region.end = vma.start + vma.pages;
            for (const DamonRegion &old : regions_) {
                if (old.asid == asid && old.start < region.end &&
                    region.start < old.end) {
                    region.nrAccesses =
                        std::max(region.nrAccesses, old.nrAccesses);
                    region.age = std::max(region.age, old.age);
                }
            }
            fresh.push_back(region);
        }
    }
    regions_ = std::move(fresh);
    splitRegions();
}

void
DamonMonitor::splitRegions()
{
    // Split the largest regions until the set reaches the midpoint
    // target, so sampling resolution adapts to big VMAs.
    const std::size_t target = (cfg_.minRegions + cfg_.maxRegions) / 2;
    while (regions_.size() < target) {
        // Find the largest splittable region.
        std::size_t best = regions_.size();
        std::uint64_t best_pages = 1;
        for (std::size_t i = 0; i < regions_.size(); ++i) {
            if (regions_[i].pages() > best_pages) {
                best_pages = regions_[i].pages();
                best = i;
            }
        }
        if (best == regions_.size())
            break; // nothing splittable left
        DamonRegion &region = regions_[best];
        // Split at a random point, biased to the middle half.
        const std::uint64_t quarter = region.pages() / 4;
        const Vpn cut = region.start + quarter +
                        rng_.nextBounded(region.pages() - 2 * quarter);
        DamonRegion right = region;
        right.start = cut;
        region.end = cut;
        regions_.insert(regions_.begin() + static_cast<long>(best) + 1,
                        right);
    }
}

void
DamonMonitor::mergeRegions()
{
    if (regions_.size() <= cfg_.minRegions)
        return;
    std::vector<DamonRegion> merged;
    merged.reserve(regions_.size());
    for (const DamonRegion &region : regions_) {
        if (!merged.empty()) {
            DamonRegion &prev = merged.back();
            const bool adjacent = prev.asid == region.asid &&
                                  prev.end == region.start;
            const std::uint32_t diff =
                prev.nrAccesses > region.nrAccesses
                    ? prev.nrAccesses - region.nrAccesses
                    : region.nrAccesses - prev.nrAccesses;
            if (adjacent && diff <= cfg_.mergeThreshold &&
                merged.size() + (regions_.size() - merged.size()) >
                    cfg_.minRegions) {
                prev.end = region.end;
                prev.nrAccesses =
                    std::max(prev.nrAccesses, region.nrAccesses);
                prev.age = std::min(prev.age, region.age);
                continue;
            }
        }
        merged.push_back(region);
    }
    regions_ = std::move(merged);
}

void
DamonMonitor::aggregateNow()
{
    for (DamonRegion &region : regions_) {
        const std::uint32_t previous = region.nrAccesses;
        region.nrAccesses = region.sampled;
        region.sampled = 0;
        // Age tracks how long the activity level has persisted; a big
        // change resets it.
        const std::uint32_t diff = previous > region.nrAccesses
                                       ? previous - region.nrAccesses
                                       : region.nrAccesses - previous;
        if (diff <= cfg_.mergeThreshold)
            region.age++;
        else
            region.age = 0;
    }
    aggregations_++;
    mergeRegions();
    splitRegions();
}

void
DamonMonitor::sampleTick()
{
    const Tick now = kernel_.eventQueue().now();

    for (DamonRegion &region : regions_) {
        if (region.pages() == 0)
            continue;
        AddressSpace &as = kernel_.addressSpace(region.asid);

        // Check phase: was the page prepared last tick touched since?
        const Vpn prepared = region.preparedVpn;
        if (prepared != ~0ULL && prepared >= region.start &&
            prepared < region.end && prepared < as.tableSize() &&
            as.isMapped(prepared)) {
            const Pte &pte = as.pte(prepared);
            if (pte.present() &&
                kernel_.mem().frame(pte.pfn).referenced()) {
                region.sampled++;
            }
        }

        // Prepare phase: clear the accessed state of the next sample so
        // the following tick measures fresh activity only.
        const Vpn vpn = region.start + rng_.nextBounded(region.pages());
        region.preparedVpn = ~0ULL;
        if (vpn < as.tableSize() && as.isMapped(vpn)) {
            const Pte &pte = as.pte(vpn);
            if (pte.present()) {
                kernel_.mem()
                    .frame(pte.pfn)
                    .clearFlag(PageFrame::FlagReferenced);
                region.preparedVpn = vpn;
            }
        }
    }

    if (now - lastAggregation_ >= cfg_.aggregationInterval) {
        lastAggregation_ = now;
        aggregateNow();
    }
    if (now - lastRegionsUpdate_ >= cfg_.regionsUpdateInterval) {
        lastRegionsUpdate_ = now;
        rebuildRegions();
    }
    kernel_.eventQueue().scheduleAfter(cfg_.samplingInterval,
                                       [this] { sampleTick(); });
}

void
DamonMonitor::start()
{
    if (started_)
        tpp_panic("DamonMonitor::start called twice");
    started_ = true;
    rebuildRegions();
    lastAggregation_ = kernel_.eventQueue().now();
    lastRegionsUpdate_ = kernel_.eventQueue().now();
    kernel_.eventQueue().scheduleAfter(cfg_.samplingInterval,
                                       [this] { sampleTick(); });
}

} // namespace tpp
