/**
 * @file
 * A /proc/sys-style knob registry.
 *
 * The paper exposes TPP's tunables through sysctl — the
 * /proc/sys/vm/demote_scale_factor free-memory threshold (§5.2) and the
 * NUMA_BALANCING_TIERED mode bit (§5.3). SysctlRegistry reproduces that
 * administration surface: policies register named knobs at attach time
 * and tools read/write them by string name at runtime.
 */

#ifndef TPP_MM_SYSCTL_HH
#define TPP_MM_SYSCTL_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tpp {

/**
 * Named runtime-configuration knobs.
 */
class SysctlRegistry
{
  public:
    using Getter = std::function<std::string()>;
    /** @return false when the value cannot be parsed / applied. */
    using Setter = std::function<bool(const std::string &)>;

    /** Register a knob; replaces any previous registration. */
    void registerKnob(const std::string &name, Getter getter,
                      Setter setter);

    /** Register a read-only knob. */
    void registerReadOnly(const std::string &name, Getter getter);

    /**
     * Convenience: bind a double variable, with an optional on-change
     * hook (e.g. re-deriving watermarks). Writes reject non-finite
     * values (nan/inf have no meaning for any kernel tunable) and
     * values outside [min_value, max_value].
     */
    void registerDouble(
        const std::string &name, double *value,
        std::function<void()> on_change = nullptr,
        double min_value = std::numeric_limits<double>::lowest(),
        double max_value = std::numeric_limits<double>::max());

    /** Convenience: bind a bool variable ("0"/"1"). */
    void registerBool(const std::string &name, bool *value,
                      std::function<void()> on_change = nullptr);

    /**
     * Convenience: bind an unsigned integer variable. Writes reject
     * negative input ("-1" must not wrap to 2^64-1 the way a bare
     * strtoull would parse it), overflow, and values outside
     * [min_value, max_value].
     */
    void registerU64(
        const std::string &name, std::uint64_t *value,
        std::function<void()> on_change = nullptr,
        std::uint64_t min_value = 0,
        std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max());

    /** @return true when the knob exists. */
    bool exists(const std::string &name) const;

    /**
     * Read a knob.
     * @return its rendered value; empty string for unknown knobs.
     */
    std::string get(const std::string &name) const;

    /**
     * Write a knob.
     * @return false for unknown or read-only knobs or unparsable values.
     */
    bool set(const std::string &name, const std::string &value);

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    struct Knob {
        Getter getter;
        Setter setter; // empty for read-only
    };

    std::map<std::string, Knob> knobs_;
};

} // namespace tpp

#endif // TPP_MM_SYSCTL_HH
