/**
 * @file
 * Unit tests for page migration, demotion and promotion mechanics.
 */

#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(KernelMigrate, MovesPageAndUpdatesPte)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    const Pfn old_pfn = m.pte(base).pfn;
    const Pfn new_pfn =
        m.kernel.migratePage(old_pfn, m.cxl(), AllocReason::Demotion);
    ASSERT_NE(new_pfn, kInvalidPfn);
    EXPECT_EQ(m.pte(base).pfn, new_pfn);
    EXPECT_EQ(m.mem.frame(new_pfn).nid, m.cxl());
    EXPECT_TRUE(m.mem.frame(old_pfn).isFree());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgMigrateSuccess), 1u);
    // LRU membership moved across nodes.
    EXPECT_EQ(m.kernel.lru(m.local()).countAll(), 0u);
    EXPECT_EQ(m.kernel.lru(m.cxl()).countAll(), 1u);
}

TEST(KernelMigrate, PreservesFlagsAndActiveState)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    const Pfn old_pfn = m.pte(base).pfn;
    m.kernel.lru(m.local()).activate(old_pfn);
    m.mem.frame(old_pfn).setFlag(PageFrame::FlagDirty);
    const Pfn new_pfn =
        m.kernel.migratePage(old_pfn, m.cxl(), AllocReason::Demotion);
    ASSERT_NE(new_pfn, kInvalidPfn);
    const PageFrame &f = m.mem.frame(new_pfn);
    EXPECT_TRUE(lruIsActive(f.lru));
    EXPECT_TRUE(f.dirty());
    EXPECT_TRUE(f.referenced());
    EXPECT_EQ(m.mem.frameCold(new_pfn).ownerAsid, m.asid);
    EXPECT_EQ(m.mem.frameCold(new_pfn).ownerVpn, base);
}

TEST(KernelMigrate, FailsWhenTargetExhausted)
{
    TestMachine m(64, 64);
    const Vpn base = m.populate(1, PageType::Anon);
    while (m.mem.node(1).freePages() > 0)
        m.mem.node(1).takeFree();
    EXPECT_EQ(m.kernel.migratePage(m.pte(base).pfn, m.cxl(),
                                   AllocReason::Demotion),
              kInvalidPfn);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgMigrateFail), 1u);
    // Source page untouched.
    EXPECT_TRUE(m.pte(base).present());
    EXPECT_EQ(m.frameOf(base).nid, m.local());
}

TEST(KernelMigrate, DemoteSetsPgDemotedAndCounters)
{
    TestMachine m;
    const Vpn anon = m.populate(1, PageType::Anon);
    const Vpn file = m.kernel.mmap(m.asid, 1, PageType::File, "f");
    m.kernel.access(m.asid, file, AccessKind::Load, 0);

    auto [ok_a, cost_a] = m.kernel.demotePage(m.pte(anon).pfn);
    auto [ok_f, cost_f] = m.kernel.demotePage(m.pte(file).pfn);
    EXPECT_TRUE(ok_a);
    EXPECT_TRUE(ok_f);
    EXPECT_TRUE(m.frameOf(anon).demoted());
    EXPECT_TRUE(m.frameOf(file).demoted());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgDemoteAnon), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgDemoteFile), 1u);
    EXPECT_EQ(m.frameOf(anon).nid, m.cxl());
}

TEST(KernelMigrate, PromoteClearsPgDemoted)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.demotePage(m.pte(base).pfn);
    ASSERT_TRUE(m.frameOf(base).demoted());
    auto [ok, cost] = m.kernel.promotePage(m.pte(base).pfn, m.local());
    EXPECT_TRUE(ok);
    EXPECT_FALSE(m.frameOf(base).demoted());
    EXPECT_EQ(m.frameOf(base).nid, m.local());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteTry), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 1u);
}

TEST(KernelMigrate, PromoteFailureCountsLowMem)
{
    TestMachine m(64, 64);
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.demotePage(m.pte(base).pfn);
    // Local at/below high watermark: default promotion gate refuses.
    while (m.mem.node(0).freePages() >
           m.mem.node(0).watermarks().high)
        m.mem.node(0).takeFree();
    auto [ok, cost] = m.kernel.promotePage(m.pte(base).pfn, m.local());
    EXPECT_FALSE(ok);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailLowMem), 1u);
}

TEST(KernelMigrate, PromoteIsolatedFrameFails)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    const Pfn pfn = m.pte(base).pfn;
    m.kernel.lru(m.local()).remove(pfn); // simulate isolation
    auto [ok, cost] = m.kernel.promotePage(pfn, m.cxl());
    EXPECT_FALSE(ok);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailIsolate), 1u);
    m.kernel.lru(m.local()).addHead(LruListId::InactiveAnon, pfn);
}

TEST(KernelMigrate, DemotionOrderUsedForMultiCxl)
{
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::multiCxlSystem(64, {64, 64}));
    Kernel kernel(mem, eq, std::make_unique<DefaultLinuxPolicy>());
    kernel.start();
    const Asid asid = kernel.createProcess();
    const Vpn base = kernel.mmap(asid, 1, PageType::Anon, "a");
    kernel.access(asid, base, AccessKind::Store, 0);
    auto [ok, cost] = kernel.demotePage(
        kernel.addressSpace(asid).pte(base).pfn);
    EXPECT_TRUE(ok);
    // Must land on the nearest CXL node (node 1).
    EXPECT_EQ(mem.frame(kernel.addressSpace(asid).pte(base).pfn).nid, 1);
}

TEST(KernelMigrate, DemotionSpillsToFartherNode)
{
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::multiCxlSystem(64, {64, 64}));
    Kernel kernel(mem, eq, std::make_unique<DefaultLinuxPolicy>());
    kernel.start();
    while (mem.node(1).freePages() > 0)
        mem.node(1).takeFree();
    const Asid asid = kernel.createProcess();
    const Vpn base = kernel.mmap(asid, 1, PageType::Anon, "a");
    kernel.access(asid, base, AccessKind::Store, 0);
    auto [ok, cost] = kernel.demotePage(
        kernel.addressSpace(asid).pte(base).pfn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(mem.frame(kernel.addressSpace(asid).pte(base).pfn).nid, 2);
}

TEST(KernelMigrate, DemoteWithoutCxlFallsBackToSwap)
{
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::allLocal(64));
    Kernel kernel(mem, eq, std::make_unique<DefaultLinuxPolicy>());
    kernel.start();
    const Asid asid = kernel.createProcess();
    const Vpn base = kernel.mmap(asid, 1, PageType::Anon, "a");
    kernel.access(asid, base, AccessKind::Store, 0);
    auto [ok, cost] = kernel.demotePage(
        kernel.addressSpace(asid).pte(base).pfn);
    EXPECT_TRUE(ok); // freed, via the classic path
    EXPECT_EQ(kernel.vmstat().get(Vm::PgDemoteFail), 1u);
    EXPECT_EQ(kernel.vmstat().get(Vm::PswpOut), 1u);
}

TEST(KernelMigrate, MigrationRecordsTraffic)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    const double before = m.mem.node(1).utilization(m.eq.now());
    for (int i = 0; i < 50; ++i) {
        m.kernel.migratePage(m.pte(base).pfn, m.cxl(),
                             AllocReason::Demotion);
        m.kernel.migratePage(m.pte(base).pfn, m.local(),
                             AllocReason::Promotion);
    }
    // Bandwidth accounting saw the copies (utilization bookkeeping ran).
    EXPECT_GE(m.mem.node(1).utilization(m.eq.now()), before);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgMigrateSuccess), 100u);
}

TEST(KernelMigrateDeathTest, SameNodeMigrationPanics)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    EXPECT_DEATH(m.kernel.migratePage(m.pte(base).pfn, m.local(),
                                      AllocReason::Demotion),
                 "already on node");
}

// Regression: the promote early-exit on a freed frame used to read the
// node id off the already-reset frame; the caller-known source node
// must be what lands in the trace.
TEST(KernelMigrate, PromoteFailOnFreedFrameTracesCallerSourceNode)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    const Pfn pfn = m.pte(base).pfn;
    ASSERT_TRUE(m.kernel.demotePage(pfn).first);
    const Pfn cxl_pfn = m.pte(base).pfn;
    const NodeId src = m.mem.frame(cxl_pfn).nid;
    ASSERT_EQ(src, m.cxl());

    // The page vanishes between candidate selection and the attempt.
    m.kernel.munmap(m.asid, base, 1);
    ASSERT_TRUE(m.mem.frame(cxl_pfn).isFree());

    m.kernel.trace().enable();
    auto [ok, cost] = m.kernel.promotePage(cxl_pfn, src, m.local());
    EXPECT_FALSE(ok);
    EXPECT_EQ(cost, 0.0);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailIsolate), 1u);

    bool traced = false;
    for (const TraceRecord &r : m.kernel.trace().snapshot()) {
        if (r.event != TraceEvent::PromoteFailIsolate)
            continue;
        traced = true;
        EXPECT_EQ(r.node, src);
        EXPECT_EQ(r.aux, m.local());
    }
    EXPECT_TRUE(traced);
}

// Regression: migration latency must include any direct-reclaim stall
// paid while allocating the migration target (stall_ns threads through
// migratePage into the caller's latency).
TEST(KernelMigrate, MigrationLatencyIncludesAllocStall)
{
    TestMachine m(256, 256);
    // Fill the machine with clean disk-backed file pages (Load only so
    // they stay clean) until both nodes sit near their min watermarks;
    // reclaim then recycles dropped pages to serve new allocations.
    const Vpn base =
        m.kernel.mmap(m.asid, 496, PageType::File, "fill", true);
    for (std::uint64_t i = 0; i < 496; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Load, 0);

    // Migrate resident local pages across until the target allocation
    // has to enter direct reclaim; the stall must surface.
    double stall = 0.0;
    for (std::uint64_t i = 0; i < 496 && stall == 0.0; ++i) {
        const Pte &pte = m.pte(base + i);
        if (!pte.present())
            continue;
        if (m.mem.frame(pte.pfn).nid != m.local())
            continue;
        const std::uint64_t stalls_before =
            m.kernel.vmstat().get(Vm::AllocStall);
        const Pfn np = m.kernel.migratePage(pte.pfn, m.cxl(),
                                            AllocReason::App, &stall);
        if (np == kInvalidPfn)
            break;
        if (m.kernel.vmstat().get(Vm::AllocStall) > stalls_before) {
            EXPECT_GT(stall, 0.0);
        }
    }
    EXPECT_GT(stall, 0.0);
    EXPECT_GT(m.kernel.vmstat().get(Vm::AllocStall), 0u);
}

} // namespace
} // namespace tpp
