/**
 * @file
 * The explicit tier hierarchy end to end: --topology spec parsing and
 * its distance rule, TierHierarchy ranks and demotion chains on parsed
 * machines, multi-socket residency accounting, chained CXL -> CXL-far
 * demotion in a full 3-tier run, and golden fingerprints pinning the
 * 3-tier and dual-socket configs under linux and tpp.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mm/vmstat.hh"

namespace tpp {
namespace {

constexpr const char *kThreeTier =
    "local:pages=2048;cxl:pages=2048:lat=150;cxl-far:pages=8192:lat=300:"
    "bw=32";
constexpr const char *kDualSocket =
    "socket0:pages=2048;socket1:pages=4096;cxl:pages=4096:lat=150";

TEST(TierTopologySpec, ParsesThreeTierMachine)
{
    const SpecResult<MemoryConfig> topo = parseTopology(kThreeTier);
    ASSERT_TRUE(topo);
    ASSERT_EQ(topo->nodes.size(), 3u);
    EXPECT_EQ(topo->nodes[0].profile.name, "local");
    EXPECT_FALSE(topo->nodes[0].profile.cpuLess);
    EXPECT_EQ(topo->nodes[1].profile.name, "cxl");
    EXPECT_TRUE(topo->nodes[1].profile.cpuLess);
    EXPECT_EQ(topo->nodes[1].profile.idleLatencyNs, 150.0);
    EXPECT_EQ(topo->nodes[2].profile.bandwidthGBps, 32.0);

    // Distance rule: diagonal 10, one extra hop per latency class.
    EXPECT_EQ(topo->distances[0][0], 10u);
    EXPECT_EQ(topo->distances[0][1], 20u);
    EXPECT_EQ(topo->distances[0][2], 30u);
    EXPECT_EQ(topo->distances[1][2], 30u);

    const MemorySystem mem(*topo);
    EXPECT_EQ(mem.tiers().numTiers(), 3u);
    EXPECT_EQ(mem.tiers().rank(0), 0u);
    EXPECT_EQ(mem.tiers().rank(1), 1u);
    EXPECT_EQ(mem.tiers().rank(2), 2u);
    EXPECT_EQ(mem.demotionOrder(0), (std::vector<NodeId>{1, 2}));
    EXPECT_EQ(mem.demotionOrder(1), (std::vector<NodeId>{2}));
    EXPECT_TRUE(mem.demotionOrder(2).empty());
}

TEST(TierTopologySpec, SlowSocketWithCpuStaysToptier)
{
    // lat= alone marks a lower tier, but cpu=1 overrides: a slow
    // socket is still toptier and never a demotion target.
    const SpecResult<MemoryConfig> topo = parseTopology(
        "s0:pages=64;s1:pages=64:lat=120:cpu=1;cxl:pages=64:lat=150");
    ASSERT_TRUE(topo);
    EXPECT_FALSE(topo->nodes[1].profile.cpuLess);

    const MemorySystem mem(*topo);
    EXPECT_EQ(mem.tiers().numTiers(), 2u);
    EXPECT_TRUE(mem.tiers().isToptier(1));
    EXPECT_EQ(mem.tiers().toptierNodes(),
              (std::vector<NodeId>{0, 1}));
    EXPECT_EQ(mem.demotionOrder(1), (std::vector<NodeId>{2}));
}

TEST(TierTopologySpec, RejectsMalformedSpecs)
{
    // Every rejection names the offending token.
    auto fails_with = [](const char *spec, const char *token) {
        const SpecResult<MemoryConfig> topo = parseTopology(spec);
        ASSERT_FALSE(topo) << spec;
        EXPECT_NE(topo.error().render().find(token), std::string::npos)
            << topo.error().render();
    };
    fails_with("", "");
    fails_with("local", "local");                     // no pages
    fails_with("local:pages=0", "pages");             // below minimum
    fails_with("local:pages=4;local:pages=4", "local"); // duplicate
    fails_with("local:pages=4:color=red", "color");   // unknown key
    fails_with("cxl:pages=4:lat=150", "cxl");         // no CPU node
}

TEST(TierTopologySpec, ValidateRejectsConflictingModes)
{
    ExperimentConfig cfg;
    cfg.topology = kThreeTier;
    cfg.allLocal = true;
    EXPECT_FALSE(cfg.validate());

    cfg.allLocal = false;
    ASSERT_TRUE(cfg.validate());
    cfg.shardRegions = 2;
    EXPECT_FALSE(cfg.validate());
}

ExperimentConfig
tierConfig(const char *topology, const char *policy)
{
    ExperimentConfig cfg;
    cfg.workload = "web";
    cfg.policy = policy;
    cfg.topology = topology;
    cfg.wssPages = 8192;
    cfg.runUntil = 10 * kSecond;
    cfg.measureFrom = 6 * kSecond;
    cfg.seed = 1;
    return cfg;
}

TEST(TierTopology, MultiSocketResidencyCountsEverySocket)
{
    // Regression: residency accounting used to treat cpuNodes().front()
    // as the only local node, so pages spilled to socket 1 vanished
    // from the numerator. socket0 is too small for the working set, so
    // a correct run must show socket-1 residency that agrees with the
    // per-node rows.
    ExperimentConfig cfg = tierConfig(kDualSocket, "linux");
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 1 * kSecond;
    const ExperimentResult r = runExperiment(cfg);

    ASSERT_EQ(r.nodes.size(), 3u);
    EXPECT_EQ(r.nodes[0].name, "socket0");
    EXPECT_EQ(r.nodes[1].name, "socket1");
    EXPECT_EQ(r.nodes[0].tierRank, 0u);
    EXPECT_EQ(r.nodes[1].tierRank, 0u);
    EXPECT_EQ(r.nodes[2].tierRank, 1u);
    EXPECT_GT(r.nodes[1].anonPages, 0u);

    std::uint64_t local_anon = 0;
    std::uint64_t total_anon = 0;
    for (const NodeResult &node : r.nodes) {
        total_anon += node.anonPages;
        if (node.tierRank == 0)
            local_anon += node.anonPages;
    }
    ASSERT_GT(total_anon, 0u);
    const double expect = static_cast<double>(local_anon) /
                          static_cast<double>(total_anon);
    EXPECT_NEAR(r.anonLocalResidency, expect, 1e-12);
}

TEST(TierTopology, ThreeTierRunChainsDemotionsDownward)
{
    // Oversubscribed toptier (2k of an 8k working set) with a middle
    // CXL tier too small to absorb the overflow: TPP must demote
    // local -> cxl and chain cxl -> cxl-far rather than swapping the
    // middle tier out.
    ExperimentConfig cfg = tierConfig(kThreeTier, "tpp");
    cfg.traceEnabled = true;
    const ExperimentResult r = runExperiment(cfg);

    std::uint64_t chained = 0;
    std::uint64_t to_middle = 0;
    for (const TraceRecord &rec : r.trace) {
        if (rec.event != TraceEvent::Demote)
            continue;
        if (rec.node == 1 && rec.aux == 2)
            chained++;
        if (rec.node == 0 && rec.aux == 1)
            to_middle++;
    }
    EXPECT_GT(to_middle, 0u);
    EXPECT_GT(chained, 0u);
    // The chain keeps the middle tier off the swap device entirely.
    EXPECT_EQ(r.vmstat.get(Vm::PswpOut), 0u);
}

// ---------------------------------------------------------------------
// Golden fingerprints: the multi-tier topologies must stay as
// deterministic as the canned two-node machines. Captured from the
// tree that introduced the tier hierarchy; a change here means
// multi-tier behaviour diverged.

/** Counter count covered by the historical fingerprint hash. */
constexpr std::size_t kSeedVmCounters = 35;

std::uint64_t
seedVmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kSeedVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

struct TierGoldenCase {
    const char *tag;
    const char *topology;
    const char *policy;
    double throughput;
    double meanLatencyNs;
    std::uint64_t vmsum;
};

const TierGoldenCase kTierGolden[] = {
    {"three_tier_linux", kThreeTier, "linux",
     622207.88568627601, 166.94136752960515, 3235183705022800817ull},
    {"three_tier_tpp", kThreeTier, "tpp",
     772102.93216927908, 89.555046479960282, 8102812937963595728ull},
    {"dual_socket_linux", kDualSocket, "linux",
     741071.02862659865, 103.2713631037433, 14576798485097781451ull},
    {"dual_socket_tpp", kDualSocket, "tpp",
     781817.74948714487, 85.628501935122983, 4176142575668096305ull},
};

class TierTopologyGolden
    : public ::testing::TestWithParam<TierGoldenCase> {};

TEST_P(TierTopologyGolden, FingerprintIsStable)
{
    const TierGoldenCase &c = GetParam();
    const ExperimentResult r =
        runExperiment(tierConfig(c.topology, c.policy));
    EXPECT_EQ(r.throughput, c.throughput) << c.tag;
    EXPECT_EQ(r.meanAccessLatencyNs, c.meanLatencyNs) << c.tag;
    EXPECT_EQ(seedVmHash(r.vmstat), c.vmsum) << c.tag;
}

INSTANTIATE_TEST_SUITE_P(Golden, TierTopologyGolden,
                         ::testing::ValuesIn(kTierGolden),
                         [](const auto &info) {
                             return std::string(info.param.tag);
                         });

} // namespace
} // namespace tpp
