/**
 * @file
 * Bit-identity anchor for the MigrationEngine's sync-compat mode.
 *
 * The golden fingerprints below were produced by the pre-engine tree
 * (migration inline in Kernel, flat MmCosts::migratePage cost) on
 * fig15/fig16/fig19-shaped configs at test scale. The default
 * MigrationConfig (queue depth 1, admission off, flat copy cost) must
 * reproduce them exactly: same throughput and mean latency to the last
 * bit (%.17g), and the same value for every vmstat counter the seed
 * tree had. If one of these fails, the engine's compat path diverged
 * from the old kernel_migrate.cc behaviour and every figure in
 * EXPERIMENTS.md is unanchored.
 *
 * The vmstat hash covers only the seed's counters (the first 35): the
 * engine appends new counters behind them, which must not disturb the
 * fingerprint.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mm/vmstat.hh"

namespace tpp {
namespace {

/** Number of vmstat counters in the pre-engine seed tree. */
constexpr std::size_t kSeedVmCounters = 35;

struct GoldenCase {
    const char *tag;
    const char *workload;
    const char *policy;
    double localFraction;
    double throughput;
    double meanLatencyNs;
    std::uint64_t vmsum;
    std::uint64_t migrateSuccess;
    std::uint64_t demoteAnon;
    std::uint64_t promoteSuccess;
    std::uint64_t swapOut;
};

// Captured from the pre-refactor tree; see file comment.
const GoldenCase kGolden[] = {
    {"fig15_web_linux", "web", "linux", 2.0 / 3.0,
     735435.18811931787, 105.92796876281473, 17696498189085516543ull,
     0, 0, 0, 2104},
    {"fig15_web_tpp", "web", "tpp", 2.0 / 3.0,
     785205.14820370195, 84.197993223045387, 7071264301307134540ull,
     8324, 2581, 2358, 167},
    {"fig16_cache1_linux", "cache1", "linux", 0.2,
     779422.65009620448, 120.50352733415521, 16959053233026845536ull,
     0, 0, 0, 1183},
    {"fig16_cache1_tpp", "cache1", "tpp", 0.2,
     828966.16160128347, 101.45804977284561, 9021928028290526116ull,
     179945, 3055, 89835, 313},
    {"fig19_cache1_numa", "cache1", "numa-balancing", 0.2,
     397460.99019746465, 427.919474596714, 2756995061359096909ull,
     38543, 0, 38543, 60360},
    {"fig19_cache1_at", "cache1", "autotiering", 0.2,
     838352.45415983011, 98.068991513717179, 11536311823795798144ull,
     40938, 1807, 20423, 121},
};

ExperimentConfig
goldenConfig(const GoldenCase &c)
{
    ExperimentConfig cfg;
    cfg.workload = c.workload;
    cfg.policy = c.policy;
    cfg.localFraction = c.localFraction;
    cfg.wssPages = 8192;
    cfg.runUntil = 10 * kSecond;
    cfg.measureFrom = 6 * kSecond;
    cfg.seed = 1;
    cfg.migration = MigrationConfig::compat();
    return cfg;
}

std::uint64_t
seedVmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kSeedVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

class MigrationCompat : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(MigrationCompat, BitIdenticalToPreEngineKernel)
{
    const GoldenCase &c = GetParam();
    const ExperimentResult r = runExperiment(goldenConfig(c));

    EXPECT_EQ(r.throughput, c.throughput) << c.tag;
    EXPECT_EQ(r.meanAccessLatencyNs, c.meanLatencyNs) << c.tag;
    EXPECT_EQ(seedVmHash(r.vmstat), c.vmsum) << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PgMigrateSuccess), c.migrateSuccess)
        << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PgDemoteAnon), c.demoteAnon) << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PgPromoteSuccess), c.promoteSuccess)
        << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PswpOut), c.swapOut) << c.tag;

    // The compat mode must never exercise the async machinery.
    EXPECT_EQ(r.vmstat.get(Vm::PgMigrateQueued), 0u) << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PgMigrateDeferred), 0u) << c.tag;
    EXPECT_EQ(r.vmstat.get(Vm::PgMigrateFailBusy), 0u) << c.tag;
}

INSTANTIATE_TEST_SUITE_P(Golden, MigrationCompat,
                         ::testing::ValuesIn(kGolden),
                         [](const auto &info) {
                             return std::string(info.param.tag);
                         });

TEST(MigrationCompatMemcg, PlumbingIsInertWhenUnconfigured)
{
    // The memcg layer charges every fault, free and migration even when
    // no cgroup exists. That always-on accounting must be invisible:
    // with the protection switch explicitly set (to its default) and no
    // floor configured, a golden config reproduces its fingerprint
    // bit-for-bit and the new memcg counters stay silent.
    const GoldenCase &c = kGolden[1]; // fig15_web_tpp
    ExperimentConfig cfg = goldenConfig(c);
    cfg.sysctls.emplace_back("vm.memcg_protection", "1");
    const ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.throughput, c.throughput);
    EXPECT_EQ(r.meanAccessLatencyNs, c.meanLatencyNs);
    EXPECT_EQ(seedVmHash(r.vmstat), c.vmsum);
    EXPECT_EQ(r.vmstat.get(Vm::MemcgReclaimProtected), 0u);
    EXPECT_EQ(r.vmstat.get(Vm::MemcgReclaimLow), 0u);
    EXPECT_EQ(r.vmstat.get(Vm::MemcgMigrateThrottled), 0u);
}

// The headline figure shapes must also hold when the full asynchronous,
// transactional engine replaces the compat mode: TPP stays close to
// all-local (the paper's central claim) and keeps beating default
// Linux, which in turn beats NUMA Balancing on cache-like workloads
// (fig 19 ordering).
TEST(MigrationAsyncShape, HeadlineOrderingHolds)
{
    auto run = [](const char *wl, const char *pol, double frac) {
        GoldenCase c{};
        c.workload = wl;
        c.policy = pol;
        c.localFraction = frac;
        ExperimentConfig cfg = goldenConfig(c);
        cfg.migration = MigrationConfig::asyncEngine();
        return runExperiment(cfg);
    };

    const double tpp16 = run("cache1", "tpp", 0.2).throughput;
    const double linux16 = run("cache1", "linux", 0.2).throughput;
    const double numa19 =
        run("cache1", "numa-balancing", 0.2).throughput;

    // All-local twin of the 1:4 cache1 config.
    ExperimentConfig all_local;
    all_local.workload = "cache1";
    all_local.policy = "linux";
    all_local.allLocal = true;
    all_local.wssPages = 8192;
    all_local.runUntil = 10 * kSecond;
    all_local.measureFrom = 6 * kSecond;
    all_local.seed = 1;
    const double local = runExperiment(all_local).throughput;

    // TPP close to all-local (§6.2 reports 1-3 % for the sync model;
    // the async engine adds queueing delay between candidate selection
    // and the actual move, so allow a slightly wider band here).
    EXPECT_GT(tpp16, 0.85 * local);
    // Ordering: TPP > default Linux > NUMA Balancing (fig 16/19).
    EXPECT_GT(tpp16, linux16);
    EXPECT_GT(linux16, numa19);
}

} // namespace
} // namespace tpp
