/**
 * @file
 * MigrationEngine: page migration as a first-class mm subsystem.
 *
 * The engine owns every page move between memory nodes. Three layers of
 * realism stack on top of the raw move, each gated by MigrationConfig:
 *
 *  - *Asynchrony*: demotion/promotion requests enter per-node queues
 *    and a migrator daemon on the event queue drains them in batches,
 *    so migration can lag allocation — the backlog and deferral
 *    behaviour Nomad and TierBPF show dominate tiered-memory dynamics
 *    under pressure.
 *  - *Transactions* (Nomad-style two-phase copy): a page being copied
 *    carries FlagUnderMigration for the modelled copy duration; an
 *    access during the window aborts the transaction
 *    (pgmigrate_fail_busy) and the page stays on its source node.
 *  - *Admission control* (TierBPF-style): a per-destination-node token
 *    bucket (vm.migration_rate_limit_mbps) plus a bounded queue
 *    (vm.migration_queue_depth) defer requests when the destination
 *    tier is contended, bounding migration traffic.
 *
 * The copy cost is either the flat MmCosts::migratePage constant
 * (compat) or the bandwidth-contention transfer time from the latency
 * model (MigrationConfig::bandwidthCost).
 *
 * With the default config the engine is in **sync-compat mode** and
 * reproduces the pre-engine kernel bit-for-bit; every existing figure
 * stays anchored (tests/test_migration_compat.cc).
 */

#ifndef TPP_MM_MIGRATION_MIGRATION_ENGINE_HH
#define TPP_MM_MIGRATION_MIGRATION_ENGINE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mm/migration/migration_config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tpp {

class Kernel;
enum class LruListId : std::uint8_t;

/** What became of one migration request. */
enum class MigrateOutcome : std::uint8_t {
    Completed, //!< page moved synchronously; source frame freed
    Queued,    //!< accepted into a queue; the daemon will move it later
    Deferred,  //!< admission control / full queue: retry later, page untouched
    Fallback,  //!< demotion fell back to classic reclaim of the page
    Failed,    //!< request failed outright (no target, stale page)
};

/** Result of MigrationEngine::demote / promote. */
struct MigrateResult {
    MigrateOutcome outcome = MigrateOutcome::Failed;
    /** The source frame was freed (Completed, or successful Fallback). */
    bool freed = false;
    /** Latency charged to the requester, in nanoseconds. */
    double latencyNs = 0.0;
};

/** Who is asking for a demotion; selects sync vs queued execution. */
enum class MigrateUrgency : std::uint8_t {
    Background, //!< kswapd / proactive daemons: may queue in async mode
    Direct,     //!< direct reclaim: always synchronous (allocator stalls)
};

/**
 * The migration subsystem. One engine per Kernel; constructed by the
 * Kernel, which hands it friend access to the mm internals (LRUs, PTE
 * lookup, allocator) exactly as kernel_migrate.cc had before the
 * extraction.
 */
class MigrationEngine
{
  public:
    MigrationEngine(Kernel &kernel, MigrationConfig cfg);

    MigrationEngine(const MigrationEngine &) = delete;
    MigrationEngine &operator=(const MigrationEngine &) = delete;

    const MigrationConfig &config() const { return cfg_; }

    // ---- the request surface ----------------------------------------

    /**
     * Demote one page towards the slower tier (distance-ordered target
     * selection, §5.1). Background urgency may queue in async mode;
     * Direct always executes synchronously. On sync migration failure
     * falls back to classic reclaim of the page.
     */
    MigrateResult demote(Pfn pfn,
                         MigrateUrgency urgency = MigrateUrgency::Background);

    /**
     * Promote one page to `dst`. `src` is the caller-known source node
     * of the candidate — used for failure tracing even when the frame
     * has been freed or isolated since the caller examined it.
     */
    MigrateResult promote(Pfn pfn, NodeId src, NodeId dst);

    /** Promote with the source node read from the frame (convenience
     *  for callers holding a known-mapped pfn). */
    MigrateResult promote(Pfn pfn, NodeId dst);

    // ---- hooks from the kernel hot paths ----------------------------

    /**
     * An access hit a page whose transactional copy is in flight:
     * abort the transaction (pgmigrate_fail_busy), return the page to
     * its source LRU, release the reserved destination frame.
     */
    void abortOnAccess(Pfn pfn);

    /**
     * The frame is being freed (munmap) while its copy is in flight:
     * cancel the transaction and release the destination frame. Counts
     * pgmigrate_fail (the page is gone, not busy).
     */
    void abortOnFree(Pfn pfn);

    // ---- introspection (tests, benches) -----------------------------

    /** Demotion requests queued on `src`'s queue. */
    std::uint64_t queuedDemotions(NodeId src) const;
    /** Promotion requests queued towards `dst`. */
    std::uint64_t queuedPromotions(NodeId dst) const;
    /** Transactional copies currently in flight. */
    std::uint64_t inFlightCount() const { return inflight_.size(); }
    /** True when no queue holds requests and nothing is in flight. */
    bool idle() const;

  private:
    /** One queued migration request. Owner identity is captured at
     *  enqueue time so a munmap'd-and-reused frame is detected stale. */
    struct Request {
        Pfn pfn = kInvalidPfn;
        Asid asid = 0;
        Vpn vpn = 0;
        NodeId src = kInvalidNode;
        /** Promotion target; kInvalidNode for demotions (the daemon
         *  picks the distance-ordered target at drain time). */
        NodeId dst = kInvalidNode;
        PageType type = PageType::Anon;
        bool wasActive = false;
        bool promotion = false;
    };

    /** A two-phase copy between reservation and completion. */
    struct InFlight {
        Request req;
        Pfn dstPfn = kInvalidPfn;
        NodeId dstNid = kInvalidNode;
        /** The scheduled phase-2 event; cancelled on abort. */
        EventId completion = 0;
    };

    // Sync paths: the pre-engine kernel_migrate.cc code, verbatim in
    // behaviour (flat cost unless cfg_.bandwidthCost).
    MigrateResult syncDemote(Pfn pfn);
    MigrateResult syncPromote(Pfn pfn, NodeId src, NodeId dst);

    // Async path.
    MigrateResult enqueue(Pfn pfn, bool promotion, NodeId dst);
    bool admit(NodeId dst);
    /**
     * Apply a new rate limit (sysctl setter): settle every bucket at
     * the old rate up to now, stamp the refill time, clamp outstanding
     * tokens to the new burst. A live rate change therefore never
     * grants tokens for time that elapsed under a different (or zero)
     * rate.
     */
    void setRateLimit(double mbps);
    void scheduleDrain();
    void drainTick();
    void drainQueue(std::deque<Request> &queue, std::uint64_t budget);
    void drainOne(const Request &req);
    /** True when the queued request no longer matches a live page. */
    bool stale(const Request &req) const;
    /** Return a queued/aborted page to its source LRU. */
    void putBack(const Request &req);
    /** Start (or, untransactional, instantly finish) the copy. */
    void beginCopy(const Request &req, Pfn dst_pfn, NodeId dst_nid,
                   double stall_ns);
    /** Phase 2: remap the PTE, move LRU membership, count. */
    void finishMove(const Request &req, Pfn dst_pfn, NodeId dst_nid);
    void abortInFlight(Pfn pfn, bool busy);

    /** Per-page copy latency between two nodes at `now`. */
    double copyCostNs(NodeId src, NodeId dst) const;

    /**
     * Ping-pong admission (mm/ppt): false when the page is inside its
     * reverse-hop cooldown window. A second admission dimension beside
     * the per-dst token buckets, consulted on every request and again
     * at drain time. Free frames pass (staleness is handled
     * downstream), as does a disabled throttle.
     */
    bool pptAdmit(Pfn pfn, bool promotion) const;
    /** Report one completed hop to the history table. */
    void pptRecord(Asid asid, Vpn vpn, bool promotion, NodeId node,
                   PageType type, Pfn pfn) const;

    Kernel &kernel_;
    MigrationConfig cfg_;

    /** Demotion queues indexed by source node; promotion by target. */
    std::vector<std::deque<Request>> demoteQueues_;
    std::vector<std::deque<Request>> promoteQueues_;
    /** In-flight transactional copies keyed by source pfn. */
    std::unordered_map<Pfn, InFlight> inflight_;

    /** Admission token buckets (bytes) per destination node. */
    std::vector<double> tokens_;
    std::vector<Tick> tokensRefilledAt_;

    bool drainScheduled_ = false;
};

} // namespace tpp

#endif // TPP_MM_MIGRATION_MIGRATION_ENGINE_HH
