file(REMOVE_RECURSE
  "CMakeFiles/fig11_reaccess_cdf.dir/fig11_reaccess_cdf.cpp.o"
  "CMakeFiles/fig11_reaccess_cdf.dir/fig11_reaccess_cdf.cpp.o.d"
  "fig11_reaccess_cdf"
  "fig11_reaccess_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reaccess_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
