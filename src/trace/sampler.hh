/**
 * @file
 * Time-series telemetry: an event-queue-driven sampler that snapshots
 * vmstat counter deltas and per-node memory usage at a fixed period,
 * giving every experiment the time-resolved view the paper's §5.5
 * evaluation is built on (Fig. 9 usage-over-time curves, Figs. 15-18
 * promotion/demotion-rate plots).
 *
 * The sampler is an observer: it reads kernel state and schedules only
 * its own next tick, so attaching it never changes simulation results
 * (asserted by tests/test_trace.cc).
 */

#ifndef TPP_TRACE_SAMPLER_HH
#define TPP_TRACE_SAMPLER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mm/vmstat.hh"
#include "sim/types.hh"

namespace tpp {

class Kernel;

/** One node's memory usage at a sample tick (meminfo-lite). */
struct NodeUsagePoint {
    NodeId nid = 0;
    bool cpuLess = false;
    std::uint64_t freePages = 0;
    std::uint64_t activeAnon = 0;
    std::uint64_t inactiveAnon = 0;
    std::uint64_t activeFile = 0;
    std::uint64_t inactiveFile = 0;

    std::uint64_t anonResident() const { return activeAnon + inactiveAnon; }
    std::uint64_t fileResident() const { return activeFile + inactiveFile; }
    std::uint64_t
    resident() const
    {
        return anonResident() + fileResident();
    }
};

/** One sampler observation: a window of vmstat activity + usage. */
struct TimeSeriesPoint {
    Tick tick = 0;      //!< simulated time of the snapshot
    Tick windowNs = 0;  //!< length of the delta window ending here
    /** Per-counter increments inside the window. */
    std::array<std::uint64_t, kNumVmCounters> vmDelta{};
    /** Usage of every node at the snapshot instant. */
    std::vector<NodeUsagePoint> nodes;

    std::uint64_t
    delta(Vm counter) const
    {
        return vmDelta[static_cast<std::size_t>(counter)];
    }

    /** Window increment of `counter` as an events-per-second rate. */
    double
    ratePerSec(Vm counter) const
    {
        if (windowNs == 0)
            return 0.0;
        return static_cast<double>(delta(counter)) * 1e9 /
               static_cast<double>(windowNs);
    }

    /** Promotion migrations per second inside the window. */
    double promotionRate() const { return ratePerSec(Vm::PgPromoteSuccess); }

    /** Demotion migrations (both types) per second inside the window. */
    double
    demotionRate() const
    {
        if (windowNs == 0)
            return 0.0;
        return static_cast<double>(delta(Vm::PgDemoteAnon) +
                                   delta(Vm::PgDemoteFile)) *
               1e9 / static_cast<double>(windowNs);
    }

    /** Resident pages by type summed over all nodes. */
    std::uint64_t anonResident() const;
    std::uint64_t fileResident() const;
};

/**
 * Samples one kernel at a fixed period until `stopAt`.
 *
 * Each tick records the vmstat deltas since the previous tick and the
 * instantaneous per-node usage (free pages + the four LRU list sizes).
 * Samples land at exact multiples of the period relative to start().
 */
class TimeSeriesSampler
{
  public:
    /**
     * @param kernel the kernel to observe
     * @param period sampling period in ticks; must be > 0
     * @param stopAt no samples are scheduled past this tick
     */
    TimeSeriesSampler(Kernel &kernel, Tick period, Tick stopAt);

    TimeSeriesSampler(const TimeSeriesSampler &) = delete;
    TimeSeriesSampler &operator=(const TimeSeriesSampler &) = delete;

    /** Schedule the first sample one period from now. Call once. */
    void start();

    Tick period() const { return period_; }

    const std::vector<TimeSeriesPoint> &series() const { return series_; }

    /** Move the recorded series out (harvesting at end of run). */
    std::vector<TimeSeriesPoint> takeSeries() { return std::move(series_); }

  private:
    void sampleTick();

    Kernel &kernel_;
    Tick period_;
    Tick stopAt_;
    Tick lastTick_ = 0;
    bool started_ = false;
    std::array<std::uint64_t, kNumVmCounters> lastVm_{};
    std::vector<TimeSeriesPoint> series_;
};

} // namespace tpp

#endif // TPP_TRACE_SAMPLER_HH
