/**
 * @file
 * Open-loop tail-latency ablation (src/workloads/arrival): offer the
 * victim workload a fixed request rate that sits *between* the linux
 * and tpp service capacities on a 1:4 tiered machine, next to the
 * churn antagonist.
 *
 * Closed-loop drivers hide placement quality: a slow kernel simply
 * issues fewer ops. An open-loop arrival process keeps offering load
 * regardless of service latency, so the difference shows up where
 * production sees it — the tail. With tpp the victim's service rate
 * stays above the offered rate and p99 stays near the service time;
 * with linux the CXL-heavy placement drops the service rate below the
 * arrival rate and the queue grows without bound, so p99 climbs to the
 * length of the measurement window. The per-tenant CSV carries
 * offered qps, p50/p99/p999 and SLO attainment per tenant.
 *
 * Extra flags beyond the shared bench options:
 *
 *   --preset smoke|full   smoke shortens the run for CI (default full)
 *   --qps/--arrival/--slo override the victim's canned spike
 */

#include "bench_common.hh"

namespace {

using namespace tpp;

/** dwh leans hardest on memory (6 accesses/op), so placement moves
 *  its service rate the most; see the capacity table in the file
 *  header comment of the test (tests/test_openloop.cc). */
constexpr const char *kVictim = "dwh";
constexpr const char *kAntagonist = "churn";
const std::vector<std::string> kPolicies = {"linux", "tpp"};

/** Offered rate between the two capacities (~470k vs ~531k req/s at
 *  --wss 8192), and a p99 target comfortably above the loaded-but-
 *  stable tail yet far below a collapsed queue. */
constexpr double kDefaultQps = 5.0e5;
constexpr double kDefaultSloUs = 500.0;

ExperimentConfig
spikeConfig(const bench::BenchOptions &opt, bool smoke,
            const std::string &policy)
{
    ExperimentConfig cfg = bench::makeConfig(opt);
    // makeConfig() routes --qps to the config level when no --tenants
    // spec is given; this bench builds its own tenants and hands any
    // run-wide override to the victim below instead.
    cfg.openLoop = OpenLoopSpec{};
    cfg.policy = policy;
    // The paper's 1:4 expansion point: small local tier, most capacity
    // on CXL — placement quality decides the victim's service rate.
    cfg.localFraction = parseRatio("1:4");
    if (smoke) {
        // Short, but long enough for tpp to converge placement and
        // drain its warm-up backlog before the window opens; with a
        // 6s/3s window both policies still tail on the backlog.
        cfg.runUntil = 12 * kSecond;
        cfg.measureFrom = 8 * kSecond;
    }

    TenantSpec victim;
    victim.workload = kVictim;
    victim.lowFraction = 0.5;
    victim.openLoop.qps = kDefaultQps;
    victim.openLoop.arrival = "poisson";
    victim.openLoop.sloP99Us = kDefaultSloUs;
    if (opt.openLoop.enabled())
        victim.openLoop = opt.openLoop;

    TenantSpec antagonist;
    antagonist.workload = kAntagonist;

    cfg.tenants = {victim, antagonist};
    return cfg;
}

void
printTable(const std::vector<ExperimentResult> &results)
{
    TextTable table({"policy", "tenant", "offered (req/s)", "p50 (us)",
                     "p99 (us)", "p99.9 (us)", "mean queue",
                     "goodput (req/s)", "SLO attainment"});
    for (const ExperimentResult &r : results) {
        for (const TenantResult &t : r.tenants) {
            if (!t.openLoop.enabled)
                continue;
            const OpenLoopResult &ol = t.openLoop;
            table.addRow({r.policy, t.workload,
                          TextTable::num(ol.offeredQps, 0),
                          TextTable::num(ol.p50Ns / 1000.0, 1),
                          TextTable::num(ol.p99Ns / 1000.0, 1),
                          TextTable::num(ol.p999Ns / 1000.0, 1),
                          TextTable::num(ol.meanQueueDepth, 1),
                          TextTable::num(ol.goodputQps, 0),
                          TextTable::pct(ol.sloAttainment)});
        }
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;

    // Peel off --preset before the shared parser sees the argv.
    std::string preset = "full";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--preset") {
            if (i + 1 >= argc)
                tpp_fatal("missing value after --preset");
            preset = argv[++i];
            if (preset != "smoke" && preset != "full")
                tpp_fatal("--preset expects smoke|full, got '%s'",
                          preset.c_str());
        } else {
            rest.push_back(argv[i]);
        }
    }
    const bench::BenchOptions opt = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());
    const bool smoke = preset == "smoke";

    bench::banner("Ablation: open-loop tail latency",
                  "dwh victim at a fixed offered rate + churn "
                  "antagonist (1:4 local:CXL)");

    std::vector<ExperimentConfig> cfgs;
    for (const std::string &policy : kPolicies)
        cfgs.push_back(spikeConfig(opt, smoke, policy));

    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    printTable(results);

    // The tail-latency claim, checked loudly: under the same offered
    // rate, tpp must hold a p99 far below linux's collapsed queue and
    // keep SLO attainment strictly higher.
    const OpenLoopResult &linux_ol =
        results.front().tenants.front().openLoop;
    const OpenLoopResult &tpp_ol =
        results.back().tenants.front().openLoop;
    if (tpp_ol.p99Ns * 2.0 >= linux_ol.p99Ns) {
        std::printf("WARNING: tpp p99 (%.1f us) is not well below "
                    "linux p99 (%.1f us)\n",
                    tpp_ol.p99Ns / 1000.0, linux_ol.p99Ns / 1000.0);
    }
    if (tpp_ol.sloAttainment <= linux_ol.sloAttainment) {
        std::printf("WARNING: tpp SLO attainment (%.3f) does not beat "
                    "linux (%.3f)\n",
                    tpp_ol.sloAttainment, linux_ol.sloAttainment);
    }

    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
