# Empty compiler generated dependencies file for tpp_harness.
# This may be replaced when dependencies are built.
