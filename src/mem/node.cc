#include "mem/node.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace tpp {

namespace {
/** Bandwidth EWMA window length. */
constexpr Tick kTrafficWindow = 1 * kMillisecond;
/** EWMA smoothing factor per window. */
constexpr double kUtilAlpha = 0.3;
} // namespace

Watermarks
Watermarks::forCapacity(std::uint64_t capacity_pages,
                        double demote_scale_factor)
{
    Watermarks wm;
    // The kernel sizes min from min_free_kbytes ~ 4*sqrt(mem); for the
    // node sizes we simulate a simple fraction captures the behaviour:
    // min ~0.25 %, low ~0.5 %, high ~0.75 % of capacity, all >= 8 pages.
    auto frac = [capacity_pages](double f) {
        return std::max<std::uint64_t>(
            8, static_cast<std::uint64_t>(
                   static_cast<double>(capacity_pages) * f));
    };
    wm.min = frac(0.0025);
    // Keep the ladder strictly ordered even on tiny nodes where the
    // fractional marks would collapse onto the floor value.
    wm.low = std::max(wm.min + 4, frac(0.0050));
    wm.high = std::max(wm.low + 4, frac(0.0075));
    // TPP requires the demotion watermark above the allocation one, and
    // demotes a little past the trigger so the node gains real headroom
    // before the daemon goes back to sleep.
    wm.demoteTrigger =
        std::max(wm.high + 8, frac(demote_scale_factor / 100.0));
    wm.demoteTarget = std::max(wm.demoteTrigger + 8,
                               frac(demote_scale_factor * 1.5 / 100.0));
    return wm;
}

MemoryNode::MemoryNode(NodeId id, Pfn first_pfn,
                       std::uint64_t capacity_pages, NodeProfile profile)
    : id_(id), firstPfn_(first_pfn), capacity_(capacity_pages),
      profile_(std::move(profile)),
      watermarks_(Watermarks::forCapacity(capacity_pages))
{
    if (capacity_pages == 0)
        tpp_fatal("memory node %u configured with zero capacity", id);
}

Pfn
MemoryNode::takeFree()
{
    // Recycled frames first (LIFO), then the bump cursor ascending from
    // firstPfn — exactly the order the old pre-materialised free list
    // produced, so allocation-order-sensitive goldens are unaffected.
    Pfn pfn;
    if (!recycled_.empty()) {
        pfn = recycled_.back();
        recycled_.pop_back();
    } else if (bump_ < capacity_) {
        pfn = firstPfn_ + static_cast<Pfn>(bump_++);
    } else {
        return kInvalidPfn;
    }
    if (frames_) {
        // Lazy init: the calloc'ed frame starts all-zero; stamp its
        // identity the first time it is handed out (idempotent after).
        PageFrame &f = frames_[pfn];
        f.pfn = pfn;
        f.nid = id_;
    }
    return pfn;
}

void
MemoryNode::putFree(Pfn pfn)
{
    if (!ownsPfn(pfn))
        tpp_panic("putFree: pfn %u does not belong to node %u", pfn, id_);
    if (recycled_.size() >= bump_)
        tpp_panic("putFree: node %u free list overflow", id_);
    recycled_.push_back(pfn);
}

void
MemoryNode::decayTraffic(Tick now) const
{
    while (now >= trafficWindowStart_ + kTrafficWindow) {
        const double window_seconds =
            static_cast<double>(kTrafficWindow) /
            static_cast<double>(kSecond);
        const double gbps = windowBytes_ / window_seconds / 1e9;
        const double util =
            std::min(1.0, gbps / std::max(1e-9, profile_.bandwidthGBps));
        utilEwma_ = kUtilAlpha * util + (1.0 - kUtilAlpha) * utilEwma_;
        windowBytes_ = 0.0;
        trafficWindowStart_ += kTrafficWindow;
        // Fast-forward across long idle gaps.
        if (now - trafficWindowStart_ > 64 * kTrafficWindow) {
            utilEwma_ = 0.0;
            trafficWindowStart_ = now - (now % kTrafficWindow);
            break;
        }
    }
}

void
MemoryNode::recordTraffic(Tick now, std::uint64_t bytes)
{
    decayTraffic(now);
    windowBytes_ += static_cast<double>(bytes);
}

double
MemoryNode::utilization(Tick now) const
{
    decayTraffic(now);
    return utilEwma_;
}

} // namespace tpp
