/**
 * @file
 * Unit tests for the baseline policies: default Linux, NUMA Balancing
 * and AutoTiering.
 */

#include "policy/autotiering.hh"
#include "policy/numa_balancing.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(DefaultLinux, NeverScansOrPromotes)
{
    TestMachine m;
    EXPECT_EQ(m.kernel.policy().name(), "linux");
    EXPECT_FALSE(m.kernel.policy().scanNode(0));
    EXPECT_FALSE(m.kernel.policy().scanNode(1));
    EXPECT_FALSE(m.kernel.policy().reclaimByDemotion(0));
    m.populate(64, PageType::Anon);
    m.eq.run(m.eq.now() + kSecond);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaPteUpdates), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteTry), 0u);
}

TEST(DefaultLinux, CoupledKswapdMarks)
{
    TestMachine m;
    const ReclaimMarks marks = m.kernel.policy().kswapdMarks(0);
    EXPECT_EQ(marks.trigger, m.mem.node(0).watermarks().low);
    EXPECT_EQ(marks.target, m.mem.node(0).watermarks().high);
}

TEST(NumaBalancing, ScansEveryNode)
{
    TestMachine m(512, 512, std::make_unique<NumaBalancingPolicy>());
    EXPECT_TRUE(m.kernel.policy().scanNode(0));
    EXPECT_TRUE(m.kernel.policy().scanNode(1));
    EXPECT_FALSE(m.kernel.policy().reclaimByDemotion(0));
}

TEST(NumaBalancing, ScannerDaemonSamples)
{
    NumaBalancingConfig cfg;
    cfg.scanPeriod = 10 * kMillisecond;
    cfg.scanBatch = 16;
    TestMachine m(512, 512,
                  std::make_unique<NumaBalancingPolicy>(cfg));
    m.populate(64, PageType::Anon);
    m.eq.run(m.eq.now() + 100 * kMillisecond);
    EXPECT_GT(m.kernel.vmstat().get(Vm::NumaPteUpdates), 0u);
}

TEST(NumaBalancing, PromotesRemotePageInstantly)
{
    TestMachine m(512, 512, std::make_unique<NumaBalancingPolicy>());
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    ASSERT_EQ(m.frameOf(base).nid, m.cxl());
    m.kernel.sampleNode(m.cxl(), 1);
    // First touch from node 0: instant promotion, no hysteresis.
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(base).nid, m.local());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 1u);
}

TEST(NumaBalancing, LocalHintFaultIsPureOverhead)
{
    TestMachine m(512, 512, std::make_unique<NumaBalancingPolicy>());
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.sampleNode(0, 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaultsLocal), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteTry), 0u);
}

TEST(NumaBalancing, PromotionRespectsHighWatermark)
{
    TestMachine m(64, 512, std::make_unique<NumaBalancingPolicy>());
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    m.kernel.sampleNode(m.cxl(), 1);
    // Local node squeezed to the high watermark: promotion refused.
    while (m.mem.node(0).freePages() > m.mem.node(0).watermarks().high)
        m.mem.node(0).takeFree();
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(base).nid, m.cxl());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailLowMem), 1u);
}

TEST(AutoTiering, DemotesByMigration)
{
    TestMachine m(512, 512, std::make_unique<AutoTieringPolicy>());
    EXPECT_TRUE(m.kernel.policy().reclaimByDemotion(0));
    EXPECT_FALSE(m.kernel.policy().reclaimByDemotion(1));
    EXPECT_FALSE(m.kernel.policy().scanNode(0));
    EXPECT_TRUE(m.kernel.policy().scanNode(1));
}

TEST(AutoTiering, TimerBasedHotnessNeedsRepeatedFaults)
{
    AutoTieringConfig cfg;
    cfg.hotThreshold = 2;
    cfg.hotWindow = kSecond;
    TestMachine m(512, 512, std::make_unique<AutoTieringPolicy>(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    ASSERT_EQ(m.frameOf(base).nid, m.cxl());

    // First hint fault: below threshold, no promotion.
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(base).nid, m.cxl());

    // Second hint fault inside the window: promoted.
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(base).nid, m.local());
}

TEST(AutoTiering, StaleHistoryResets)
{
    AutoTieringConfig cfg;
    cfg.hotThreshold = 2;
    cfg.hotWindow = 100 * kMillisecond;
    TestMachine m(512, 512, std::make_unique<AutoTieringPolicy>(cfg));
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());

    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    // Let the window lapse before the second fault.
    m.eq.run(m.eq.now() + kSecond);
    m.kernel.sampleNode(m.cxl(), 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    // Window expired between faults: still not promoted.
    EXPECT_EQ(m.frameOf(base).nid, m.cxl());
}

TEST(AutoTiering, BudgetAutoSizesFromLocalCapacity)
{
    TestMachine m(10240, 512, std::make_unique<AutoTieringPolicy>());
    auto &policy = static_cast<AutoTieringPolicy &>(m.kernel.policy());
    EXPECT_EQ(policy.promotionBudget(), 512u); // capacity / 20
}

TEST(AutoTiering, BudgetSpentUnderPressure)
{
    AutoTieringConfig cfg;
    cfg.hotThreshold = 1;
    cfg.promotionReserve = 2;
    TestMachine m(256, 512, std::make_unique<AutoTieringPolicy>(cfg));
    auto &policy = static_cast<AutoTieringPolicy &>(m.kernel.policy());

    // Three hot pages on the CXL node, local below its high watermark.
    const Vpn base = m.kernel.mmap(m.asid, 3, PageType::Anon, "a");
    for (int i = 0; i < 3; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, m.cxl());
    while (m.mem.node(0).freePages() > m.mem.node(0).watermarks().high)
        m.mem.node(0).takeFree();

    for (int i = 0; i < 3; ++i) {
        m.kernel.sampleNode(m.cxl(), 3);
        m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
    }
    // Only the reserve-sized number of promotions went through.
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteSuccess), 2u);
    EXPECT_EQ(policy.promotionBudget(), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgPromoteFailLowMem), 1u);
}

} // namespace
} // namespace tpp
