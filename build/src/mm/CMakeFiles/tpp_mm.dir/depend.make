# Empty dependencies file for tpp_mm.
# This may be replaced when dependencies are built.
