/**
 * @file
 * trace_summary: digest a JSONL trace written by the bench binaries'
 * --trace-out flag (or harness writeTraceJsonl) into the tables a
 * human wants first: per-event totals, per-window migration rates and
 * the worst tier ping-pong pages.
 *
 * usage: trace_summary [FILE ...] [--window-ms N] [--top N] [--json]
 *
 * With no FILE (or "-") the trace is read from stdin. Events from all
 * files are pooled, then grouped by their workload/policy tag; each
 * group gets its own summary, so one file holding a whole sweep prints
 * one section per run.
 *
 * Each section includes a migration-failure breakdown by cause
 * (low-mem, isolate, rate-limit, demotion OOM, admission deferral,
 * transaction abort), a ping-pong throttling (PPT) digest when the
 * subsystem fired, the adaptive tuner's knob trajectory (every
 * accepted or reverted step, plus settle/wake counts) when the
 * `adaptive` policy ran, and an estimated wasted-bandwidth figure for
 * the flipped hops. --json replaces the tables with one JSON object
 * on stdout for scripted consumers (CI, plotting).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/table.hh"
#include "sim/logging.hh"
#include "trace/summary.hh"
#include "trace/trace_io.hh"

namespace {

using namespace tpp;

std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE || text[0] == '-')
        tpp_fatal("%s expects an unsigned integer, got '%s'", flag,
                  text.c_str());
    return value;
}

/** Events that read as per-second rates in the window table. */
constexpr TraceEvent kRateColumns[] = {
    TraceEvent::PromoteSuccess, TraceEvent::Demote, TraceEvent::HintFault,
    TraceEvent::AllocFallback,  TraceEvent::SwapOut,
};

/** A migration-failure cause and the tracepoint that counts it. */
struct FailureCause {
    TraceEvent event;
    const char *label;
};

/** Every way a requested migration can fail to move the page. */
constexpr FailureCause kFailureCauses[] = {
    {TraceEvent::PromoteFailLowMem, "promote: target low on memory"},
    {TraceEvent::PromoteFailIsolate, "promote: page gone/isolated"},
    {TraceEvent::PromoteFailRateLimit, "promote: rate limited"},
    {TraceEvent::DemoteFail, "demote: target OOM, classic reclaim"},
    {TraceEvent::MigrateDeferred, "engine: admission deferred"},
    {TraceEvent::MigrateAbort, "engine: copy aborted"},
};

std::uint64_t
totalFailures(const TraceSummary &summary)
{
    std::uint64_t total = 0;
    for (const FailureCause &cause : kFailureCauses)
        total += summary.total(cause.event);
    return total;
}

void
printFailureBreakdown(const TraceSummary &summary)
{
    const std::uint64_t failures = totalFailures(summary);
    if (failures == 0) {
        std::printf("no migration failures\n\n");
        return;
    }
    std::printf("migration failures by cause:\n");
    TextTable table({"cause", "count", "share"});
    for (const FailureCause &cause : kFailureCauses) {
        const std::uint64_t count = summary.total(cause.event);
        if (count == 0)
            continue;
        table.addRow({cause.label, TextTable::count(count),
                      TextTable::pct(static_cast<double>(count) /
                                     static_cast<double>(failures))});
    }
    table.print();
    std::printf("\n");
}

void
printHotnessSection(const TraceSummary &summary)
{
    const std::uint64_t epochs = summary.total(TraceEvent::HotnessEpoch);
    const std::uint64_t evictions =
        summary.total(TraceEvent::HotnessEvict);
    if (epochs == 0 && evictions == 0 &&
        summary.hotnessThresholds.empty())
        return;
    std::printf("hotness: %llu epochs, %llu counter evictions, "
                "%zu threshold retunes\n",
                static_cast<unsigned long long>(epochs),
                static_cast<unsigned long long>(evictions),
                summary.hotnessThresholds.size());
    if (!summary.hotnessThresholds.empty()) {
        TextTable thresholds({"t(s)", "hot threshold"});
        for (const auto &[tick, value] : summary.hotnessThresholds)
            thresholds.addRow(
                {TextTable::num(static_cast<double>(tick) / 1e9, 3),
                 TextTable::count(value)});
        thresholds.print();
    }
    std::printf("\n");
}

void
printMemcgSection(const TraceSummary &summary)
{
    if (summary.memcg.empty())
        return;
    std::printf("memcg events by cgroup:\n");
    TextTable table(
        {"cgroup", "protected skips", "low breaches", "throttled"});
    for (const auto &[cgid, tally] : summary.memcg)
        table.addRow({TextTable::count(cgid),
                      TextTable::count(tally.protectedSkips),
                      TextTable::count(tally.lowBreaches),
                      TextTable::count(tally.throttled)});
    table.print();
    std::printf("\n");
}

void
printPptSection(const TraceSummary &summary)
{
    const std::uint64_t escalations =
        summary.total(TraceEvent::PptEscalate);
    const std::uint64_t evictions = summary.total(TraceEvent::PptEvict);
    if (summary.pptThrottledPromote == 0 &&
        summary.pptThrottledDemote == 0 && escalations == 0 &&
        evictions == 0)
        return;
    std::printf("ppt: %llu promote denials, %llu demote denials, "
                "%llu escalations, %llu history evictions\n\n",
                static_cast<unsigned long long>(
                    summary.pptThrottledPromote),
                static_cast<unsigned long long>(
                    summary.pptThrottledDemote),
                static_cast<unsigned long long>(escalations),
                static_cast<unsigned long long>(evictions));
}

/** AdaptiveKnob id (aux >> 24 of adaptive_tune/_revert) to sysctl. */
const char *
adaptiveKnobName(std::uint8_t knob)
{
    switch (knob) {
      case 0:
        return "promote_threshold";
      case 1:
        return "scan_size_pages";
      case 2:
        return "demote_scale_factor";
      default:
        return "unknown";
    }
}

/** Knob 2 (demote_scale_factor) is packed in tenths; the rest raw. */
double
adaptiveKnobValue(std::uint8_t knob, std::uint32_t packed)
{
    return knob == 2 ? static_cast<double>(packed) / 10.0
                     : static_cast<double>(packed);
}

void
printAdaptiveSection(const TraceSummary &summary)
{
    if (summary.adaptiveKnobs.empty() && summary.adaptiveSettles == 0 &&
        summary.adaptiveWakes == 0)
        return;
    std::printf("adaptive tuner: %zu knob moves, %llu settles, "
                "%llu wakes\n",
                summary.adaptiveKnobs.size(),
                static_cast<unsigned long long>(summary.adaptiveSettles),
                static_cast<unsigned long long>(summary.adaptiveWakes));
    if (!summary.adaptiveKnobs.empty()) {
        std::printf("knob trajectory:\n");
        TextTable table({"t(s)", "knob", "value", "outcome"});
        for (const TraceSummary::AdaptiveKnobPoint &p :
             summary.adaptiveKnobs)
            table.addRow(
                {TextTable::num(static_cast<double>(p.tick) / 1e9, 3),
                 adaptiveKnobName(p.knob),
                 TextTable::num(adaptiveKnobValue(p.knob, p.value),
                                p.knob == 2 ? 1 : 0),
                 p.reverted ? "reverted" : "applied"});
        table.print();
    }
    std::printf("\n");
}

/** Minimal JSON string escape: the tags we emit are workload/policy
 *  names, but a stray quote must not corrupt the document. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    return out;
}

void
printJsonSummary(std::FILE *out, const std::string &tag,
                 const std::vector<TraceRecord> &events, Tick window_ns,
                 std::size_t top_n, bool last)
{
    const TraceSummary summary = summarizeTrace(events, window_ns, top_n);

    std::fprintf(out, "    {\n      \"tag\": \"%s\",\n",
                 jsonEscape(tag).c_str());
    std::fprintf(out, "      \"events\": %zu,\n", events.size());
    std::fprintf(out, "      \"window_ms\": %.0f,\n",
                 static_cast<double>(window_ns) / 1e6);

    std::fprintf(out, "      \"totals\": {");
    bool first = true;
    for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
        const TraceEvent event = static_cast<TraceEvent>(i);
        if (summary.total(event) == 0)
            continue;
        std::fprintf(out, "%s\"%s\": %llu", first ? "" : ", ",
                     traceEventName(event),
                     static_cast<unsigned long long>(
                         summary.total(event)));
        first = false;
    }
    std::fprintf(out, "},\n");

    std::fprintf(out, "      \"migration_failures\": {");
    first = true;
    for (const FailureCause &cause : kFailureCauses) {
        std::fprintf(out, "%s\"%s\": %llu", first ? "" : ", ",
                     traceEventName(cause.event),
                     static_cast<unsigned long long>(
                         summary.total(cause.event)));
        first = false;
    }
    std::fprintf(out, "},\n");

    std::fprintf(out, "      \"windows\": [");
    for (std::size_t w = 0; w < summary.windows.size(); ++w) {
        const TraceWindow &win = summary.windows[w];
        std::fprintf(out, "%s{\"t_s\": %.3f", w ? ", " : "",
                     static_cast<double>(win.start) / 1e9);
        for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
            const TraceEvent event = static_cast<TraceEvent>(i);
            if (win.count(event) == 0)
                continue;
            std::fprintf(out, ", \"%s\": %llu", traceEventName(event),
                         static_cast<unsigned long long>(
                             win.count(event)));
        }
        std::fprintf(out, "}");
    }
    std::fprintf(out, "],\n");

    std::fprintf(out,
                 "      \"hotness\": {\"epochs\": %llu, "
                 "\"evictions\": %llu, \"thresholds\": [",
                 static_cast<unsigned long long>(
                     summary.total(TraceEvent::HotnessEpoch)),
                 static_cast<unsigned long long>(
                     summary.total(TraceEvent::HotnessEvict)));
    for (std::size_t i = 0; i < summary.hotnessThresholds.size(); ++i)
        std::fprintf(out, "%s{\"t_s\": %.3f, \"value\": %u}",
                     i ? ", " : "",
                     static_cast<double>(
                         summary.hotnessThresholds[i].first) /
                         1e9,
                     summary.hotnessThresholds[i].second);
    std::fprintf(out, "]},\n");

    std::fprintf(out, "      \"memcg\": [");
    first = true;
    for (const auto &[cgid, tally] : summary.memcg) {
        std::fprintf(out,
                     "%s{\"cgroup\": %u, \"protected_skips\": %llu, "
                     "\"low_breaches\": %llu, \"throttled\": %llu}",
                     first ? "" : ", ", cgid,
                     static_cast<unsigned long long>(tally.protectedSkips),
                     static_cast<unsigned long long>(tally.lowBreaches),
                     static_cast<unsigned long long>(tally.throttled));
        first = false;
    }
    std::fprintf(out, "],\n");

    std::fprintf(out,
                 "      \"ppt\": {\"throttled_promote\": %llu, "
                 "\"throttled_demote\": %llu, \"escalations\": %llu, "
                 "\"history_evictions\": %llu},\n",
                 static_cast<unsigned long long>(
                     summary.pptThrottledPromote),
                 static_cast<unsigned long long>(
                     summary.pptThrottledDemote),
                 static_cast<unsigned long long>(
                     summary.total(TraceEvent::PptEscalate)),
                 static_cast<unsigned long long>(
                     summary.total(TraceEvent::PptEvict)));

    std::fprintf(out,
                 "      \"adaptive\": {\"settles\": %llu, "
                 "\"wakes\": %llu, \"knob_trajectory\": [",
                 static_cast<unsigned long long>(summary.adaptiveSettles),
                 static_cast<unsigned long long>(summary.adaptiveWakes));
    first = true;
    for (const TraceSummary::AdaptiveKnobPoint &p : summary.adaptiveKnobs) {
        std::fprintf(out,
                     "%s{\"t_s\": %.3f, \"knob\": \"%s\", "
                     "\"value\": %g, \"reverted\": %s}",
                     first ? "" : ", ",
                     static_cast<double>(p.tick) / 1e9,
                     adaptiveKnobName(p.knob),
                     adaptiveKnobValue(p.knob, p.value),
                     p.reverted ? "true" : "false");
        first = false;
    }
    std::fprintf(out, "]},\n");

    std::fprintf(out,
                 "      \"ping_pong_flips\": %llu,\n"
                 "      \"ping_pong_wasted_bytes\": %llu,\n",
                 static_cast<unsigned long long>(summary.pingPongFlips),
                 static_cast<unsigned long long>(
                     summary.pingPongWastedBytes));

    std::fprintf(out, "      \"ping_pong\": [");
    for (std::size_t i = 0; i < summary.pingPong.size(); ++i) {
        const PingPongPage &p = summary.pingPong[i];
        std::fprintf(out,
                     "%s{\"asid\": %u, \"vpn\": %llu, "
                     "\"demotions\": %llu, \"promotions\": %llu, "
                     "\"flips\": %llu, \"wasted_bytes\": %llu}",
                     i ? ", " : "", p.asid,
                     static_cast<unsigned long long>(p.vpn),
                     static_cast<unsigned long long>(p.demotions),
                     static_cast<unsigned long long>(p.promotions),
                     static_cast<unsigned long long>(p.flips),
                     static_cast<unsigned long long>(p.wastedBytes));
    }
    std::fprintf(out, "]\n    }%s\n", last ? "" : ",");
}

void
printSummary(const std::string &tag, const std::vector<TraceRecord> &events,
             Tick window_ns, std::size_t top_n)
{
    const TraceSummary summary =
        summarizeTrace(events, window_ns, top_n);

    std::printf("== %s — %zu events, %zu windows of %.0f ms ==\n\n",
                tag.c_str(), events.size(), summary.windows.size(),
                static_cast<double>(window_ns) / 1e6);

    TextTable totals({"event", "total", "active windows"});
    for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
        const TraceEvent event = static_cast<TraceEvent>(i);
        if (summary.total(event) == 0)
            continue;
        totals.addRow({traceEventName(event),
                       TextTable::count(summary.total(event)),
                       TextTable::count(summary.activeWindows(event))});
    }
    totals.print();
    std::printf("\n");

    const double window_sec = static_cast<double>(window_ns) / 1e9;
    TextTable rates({"t(s)", "promote/s", "demote/s", "hint faults/s",
                     "alloc fallback/s", "swap out/s"});
    for (const TraceWindow &w : summary.windows) {
        std::vector<std::string> row;
        row.push_back(
            TextTable::num(static_cast<double>(w.start) / 1e9, 1));
        for (TraceEvent event : kRateColumns)
            row.push_back(TextTable::num(
                static_cast<double>(w.count(event)) / window_sec, 1));
        rates.addRow(std::move(row));
    }
    rates.print();
    std::printf("\n");

    printFailureBreakdown(summary);
    printHotnessSection(summary);
    printMemcgSection(summary);
    printPptSection(summary);
    printAdaptiveSection(summary);

    if (summary.pingPong.empty()) {
        std::printf("no ping-pong pages (no page changed tier direction "
                    "twice)\n\n");
        return;
    }
    std::printf("top ping-pong pages (tier direction flips):\n");
    TextTable pages({"asid", "vpn", "demotions", "promotions", "flips",
                     "wasted KiB"});
    for (const PingPongPage &p : summary.pingPong)
        pages.addRow({TextTable::count(p.asid), TextTable::count(p.vpn),
                      TextTable::count(p.demotions),
                      TextTable::count(p.promotions),
                      TextTable::count(p.flips),
                      TextTable::count(p.wastedBytes / 1024)});
    pages.print();
    std::printf("estimated wasted migration bandwidth: %.1f KiB over "
                "%llu flips (all flipping pages, not just the top)\n\n",
                static_cast<double>(summary.pingPongWastedBytes) / 1024.0,
                static_cast<unsigned long long>(summary.pingPongFlips));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    Tick window_ns = 1000 * kMillisecond;
    std::size_t top_n = 10;
    bool json = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--window-ms") {
            const std::uint64_t ms = parseCount("--window-ms", next());
            if (ms == 0)
                tpp_fatal("--window-ms expects a window > 0");
            window_ns = ms * kMillisecond;
        } else if (arg == "--top") {
            top_n = parseCount("--top", next());
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [FILE ...] [--window-ms N] [--top N] "
                        "[--json]\n",
                        argv[0]);
            return 0;
        } else {
            files.push_back(arg);
        }
    }

    std::vector<TaggedTraceRecord> tagged;
    if (files.empty()) {
        tagged = readTraceEventsJsonl(std::cin);
    } else {
        for (const std::string &path : files) {
            if (path == "-") {
                auto part = readTraceEventsJsonl(std::cin);
                tagged.insert(tagged.end(), part.begin(), part.end());
                continue;
            }
            std::ifstream in(path);
            if (!in)
                tpp_fatal("cannot open trace file '%s'", path.c_str());
            auto part = readTraceEventsJsonl(in);
            tagged.insert(tagged.end(), part.begin(), part.end());
        }
    }

    if (tagged.empty()) {
        if (json)
            std::printf("{\n  \"runs\": []\n}\n");
        else
            std::printf("no trace events found\n");
        return 0;
    }

    // Group by run tag, preserving first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<TraceRecord>> groups;
    for (const TaggedTraceRecord &t : tagged) {
        const std::string tag = t.workload + "/" + t.policy;
        auto [it, inserted] = groups.emplace(tag, std::vector<TraceRecord>{});
        if (inserted)
            order.push_back(tag);
        it->second.push_back(t.record);
    }

    if (json) {
        std::printf("{\n  \"runs\": [\n");
        for (std::size_t i = 0; i < order.size(); ++i)
            printJsonSummary(stdout, order[i], groups[order[i]],
                             window_ns, top_n, i + 1 == order.size());
        std::printf("  ]\n}\n");
        return 0;
    }

    for (const std::string &tag : order)
        printSummary(tag, groups[tag], window_ns, top_n);
    return 0;
}
