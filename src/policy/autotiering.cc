#include "policy/autotiering.hh"

#include <memory>

#include "mm/kernel.hh"
#include "mm/policy_registry.hh"

namespace tpp {

void
AutoTieringPolicy::start()
{
    if (cfg_.promotionReserve == 0) {
        const NodeId local = kernel_->mem().tiers().toptierNodes().front();
        cfg_.promotionReserve = std::max<std::uint64_t>(
            256, kernel_->mem().node(local).capacity() / 20);
    }
    budget_ = cfg_.promotionReserve;
    // AutoTiering dips below the classic watermarks when spending its
    // reserve; the budget above is what actually limits promotions.
    kernel_->setPromotionIgnoresWatermark(true);
    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

bool
AutoTieringPolicy::reclaimByDemotion(NodeId nid) const
{
    // Any node with a lower tier demotes by migration (the toptier
    // unconditionally, to keep swap-fallback counters on DRAM-only
    // machines); the bottom tier uses default reclaim.
    const TierHierarchy &tiers = kernel_->mem().tiers();
    return tiers.isToptier(nid) || !tiers.isBottomTier(nid);
}

bool
AutoTieringPolicy::scanNode(NodeId nid) const
{
    return !kernel_->mem().tiers().isToptier(nid);
}

void
AutoTieringPolicy::scanTick()
{
    for (NodeId nid : kernel_->mem().tiers().belowToptier())
        kernel_->sampleNode(nid, cfg_.scanBatch);

    // The promotion reserve refills only as the (coupled) background
    // demotion frees pages — there is no decoupled demotion watermark to
    // keep headroom proactively.
    const VmStat &vs = kernel_->vmstat();
    const std::uint64_t demotions =
        vs.get(Vm::PgDemoteAnon) + vs.get(Vm::PgDemoteFile);
    const std::uint64_t refill = demotions - lastDemotions_;
    lastDemotions_ = demotions;
    budget_ = std::min(cfg_.promotionReserve, budget_ + refill);

    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

double
AutoTieringPolicy::onHintFault(Pfn pfn, NodeId task_nid)
{
    PageFrame &frame = kernel_->mem().frame(pfn);
    PageFrameCold &cold = kernel_->mem().frameCold(pfn);
    const Tick now = kernel_->eventQueue().now();

    // Timer-based hotness: count hint faults inside the window; stale
    // history resets. Infrequently accessed pages never reach the
    // threshold — the inefficiency §7 points at.
    if (now - cold.lastHintFault > cfg_.hotWindow)
        cold.hintRefCount = 0;
    cold.lastHintFault = now;
    if (cold.hintRefCount < 255)
        cold.hintRefCount++;

    if (frame.nid == task_nid)
        return 0.0;
    if (cold.hintRefCount < cfg_.hotThreshold)
        return 0.0;

    kernel_->notePromoteCandidate(frame);

    // Promotions come out of the fixed reserve when the target node is
    // under pressure; an exhausted reserve stalls promotion entirely.
    MemoryNode &local = kernel_->mem().node(task_nid);
    const bool plenty_free =
        local.aboveWatermark(local.watermarks().high);
    if (!plenty_free) {
        if (budget_ == 0) {
            VmStat &vs = kernel_->vmstat();
            vs.inc(Vm::PgPromoteTry);
            vs.inc(Vm::PgPromoteFailLowMem);
            return 0.0;
        }
        budget_--;
    }

    auto [ok, cost] = kernel_->promotePage(pfn, frame.nid, task_nid);
    (void)ok;
    return cost;
}

TPP_REGISTER_POLICY(autotiering, [](const PolicyParams &p) {
    return std::make_unique<AutoTieringPolicy>(p.autoTiering);
});

} // namespace tpp
