/**
 * @file
 * A memory node: a contiguous range of physical frames with free-list,
 * watermarks and a latency/bandwidth profile. CPU-less nodes model
 * CXL-attached expansion memory.
 */

#ifndef TPP_MEM_NODE_HH
#define TPP_MEM_NODE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/page.hh"
#include "sim/types.hh"

namespace tpp {

/**
 * Zone watermarks, in pages, as in the kernel plus TPP's extension.
 *
 * Classic kernel behaviour couples allocation and reclaim around
 * {min, low, high}. TPP adds a separate, higher demotion trigger/target
 * pair so background demotion keeps running after allocation is already
 * permitted again (§5.2 of the paper).
 */
struct Watermarks {
    std::uint64_t min = 0;   //!< below: only atomic/emergency allocations
    std::uint64_t low = 0;   //!< below: wake background reclaim
    std::uint64_t high = 0;  //!< classic reclaim stop / allocation target
    std::uint64_t demoteTrigger = 0; //!< TPP: wake demotion below this
    std::uint64_t demoteTarget = 0;  //!< TPP: demote until free reaches this

    /**
     * Derive classic watermarks from capacity the way the kernel scales
     * them from min_free_kbytes, and TPP marks from demote_scale_factor.
     *
     * @param capacity_pages        node size in pages
     * @param demote_scale_factor   percent of capacity kept free by the
     *                              TPP demotion daemon (default 2, per
     *                              /proc/sys/vm/demote_scale_factor)
     */
    static Watermarks forCapacity(std::uint64_t capacity_pages,
                                  double demote_scale_factor = 2.0);
};

/** Static performance profile of one memory node. */
struct NodeProfile {
    /** Unloaded access latency in nanoseconds. */
    double idleLatencyNs = 80.0;
    /** Peak sustainable bandwidth in GB/s. */
    double bandwidthGBps = 100.0;
    /** True for CXL / CPU-less nodes (no local CPUs). */
    bool cpuLess = false;
    /** Human-readable label for reports. */
    std::string name = "node";
};

/**
 * One NUMA node's frame inventory and performance profile.
 *
 * The node owns the frame numbers [firstPfn, firstPfn + capacity). The
 * actual PageFrame structs live in the MemorySystem frame table; the
 * node tracks which of its frames are free.
 *
 * The free "list" is a bump cursor over the never-yet-allocated tail of
 * the range plus a LIFO stack of recycled frames, so a fresh node costs
 * O(1) to set up instead of materialising a capacity-sized vector. The
 * handout order is identical to the historical behaviour (ascending
 * from firstPfn initially, most-recently-freed first after that), which
 * golden-fingerprint tests rely on.
 */
class MemoryNode
{
  public:
    MemoryNode(NodeId id, Pfn first_pfn, std::uint64_t capacity_pages,
               NodeProfile profile);

    NodeId id() const { return id_; }
    const NodeProfile &profile() const { return profile_; }
    bool cpuLess() const { return profile_.cpuLess; }

    Pfn firstPfn() const { return firstPfn_; }
    std::uint64_t capacity() const { return capacity_; }

    std::uint64_t
    freePages() const
    {
        return capacity_ - bump_ + recycled_.size();
    }

    std::uint64_t usedPages() const { return bump_ - recycled_.size(); }

    /**
     * Point the node at the global frame table so takeFree can stamp
     * pfn/nid lazily on first handout (the calloc'ed table starts
     * all-zero). Called once by MemorySystem during construction.
     */
    void attachFrames(PageFrame *frames) { frames_ = frames; }

    bool
    ownsPfn(Pfn pfn) const
    {
        return pfn >= firstPfn_ && pfn < firstPfn_ + capacity_;
    }

    const Watermarks &watermarks() const { return watermarks_; }
    void setWatermarks(const Watermarks &wm) { watermarks_ = wm; }

    /**
     * Pop one free frame number.
     * @return kInvalidPfn when the node is exhausted.
     */
    Pfn takeFree();

    /** Return a frame to the free list. Caller must own the pfn. */
    void putFree(Pfn pfn);

    /** @return true when free page count exceeds `mark` (+ request). */
    bool
    aboveWatermark(std::uint64_t mark, std::uint64_t request = 1) const
    {
        return freePages() >= mark + request;
    }

    /**
     * Bandwidth accounting: record bytes moved to/from this node so the
     * latency model can inflate under load.
     */
    void recordTraffic(Tick now, std::uint64_t bytes);

    /**
     * Estimated utilisation of the node's bandwidth in [0, 1], an EWMA
     * over ~1 ms windows.
     */
    double utilization(Tick now) const;

  private:
    void decayTraffic(Tick now) const;

    NodeId id_;
    Pfn firstPfn_;
    std::uint64_t capacity_;
    NodeProfile profile_;
    Watermarks watermarks_;
    /** Count of frames ever handed out: [firstPfn, firstPfn+bump_). */
    std::uint64_t bump_ = 0;
    /** Freed frames, popped LIFO before the bump cursor advances. */
    std::vector<Pfn> recycled_;
    /** Global frame table, for lazy pfn/nid stamping. May be null in
     *  unit tests that exercise the inventory alone. */
    PageFrame *frames_ = nullptr;

    // Bandwidth EWMA state.
    mutable Tick trafficWindowStart_ = 0;
    mutable double windowBytes_ = 0.0;
    mutable double utilEwma_ = 0.0;
};

} // namespace tpp

#endif // TPP_MEM_NODE_HH
