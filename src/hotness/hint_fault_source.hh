/**
 * @file
 * HintFaultSource: the kernel's NUMA-hint sampling recast as a
 * HotnessSource. Pages on the CXL tier are made prot_none by the
 * scanner; each hint fault inside a rolling window bumps the page's
 * count, and a page is hot once it reaches cfg.hotThreshold faults
 * within cfg.hotWindow — the same two-touch hysteresis TPP's active-LRU
 * filter implements, expressed as an explicit counter so the signal is
 * comparable to the other sources.
 */

#ifndef TPP_HOTNESS_HINT_FAULT_SOURCE_HH
#define TPP_HOTNESS_HINT_FAULT_SOURCE_HH

#include <unordered_map>

#include "hotness/hotness_source.hh"

namespace tpp {

class HintFaultSource : public HotnessSource
{
  public:
    explicit HintFaultSource(const HotnessConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "hintfault"; }

    double temperature(Pfn pfn) const override;
    std::vector<HotPage> extractHot(std::uint64_t max_pages) override;
    void advanceEpoch() override;
    void noteHintFault(Pfn pfn, NodeId task_nid) override;
    bool wantsHintFaults() const override { return true; }

    std::size_t trackedPages() const { return pages_.size(); }

  private:
    struct Entry {
        Tick windowStart = 0; //!< first fault of the current window
        Tick lastFault = 0;
        std::uint64_t count = 0;
    };

    const HotnessConfig &cfg_;
    std::unordered_map<Pfn, Entry> pages_;
};

} // namespace tpp

#endif // TPP_HOTNESS_HINT_FAULT_SOURCE_HH
