/**
 * @file
 * Diagnostic example: run one (workload, policy, ratio) combination and
 * dump everything — headline metrics, residency split, the /proc/vmstat
 * counter set, and the interval time series. Handy for understanding
 * what a policy actually did during a run.
 *
 * Usage: vmstat_dump [workload] [policy] [ratio] [wss_pages]
 *   workload: web | cache1 | cache2 | dwh       (default web)
 *   policy:   linux | numa-balancing | autotiering | tpp | all-local
 *   ratio:    local:cxl capacity ratio, e.g. 2:1 or 1:4
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;

    setLogVerbose(false);

    ExperimentConfig cfg;
    cfg.workload = argc > 1 ? argv[1] : "web";
    std::string policy = argc > 2 ? argv[2] : "tpp";
    if (policy == "all-local") {
        cfg.allLocal = true;
        cfg.policy = "linux";
    } else {
        cfg.policy = policy;
    }
    cfg.localFraction = parseRatio(argc > 3 ? argv[3] : "2:1");
    if (argc > 4)
        cfg.wssPages = std::strtoull(argv[4], nullptr, 0);

    const ExperimentResult res = runExperiment(cfg);

    std::printf("== %s / %s ==\n", res.workload.c_str(),
                res.policy.c_str());
    std::printf("throughput            %.0f ops/s\n", res.throughput);
    std::printf("mean access latency   %.1f ns\n", res.meanAccessLatencyNs);
    std::printf("traffic local/cxl     %.1f%% / %.1f%%\n",
                res.localTrafficShare * 100.0, res.cxlTrafficShare * 100.0);
    std::printf("anon local residency  %.1f%%\n",
                res.anonLocalResidency * 100.0);
    std::printf("file local residency  %.1f%%\n",
                res.fileLocalResidency * 100.0);

    std::printf("\n-- vmstat --\n%s", res.vmstat.report().c_str());

    std::printf("\n-- time series (every ~1s) --\n");
    TextTable series({"t(s)", "local%", "promo/s", "demo/s", "alloc/s",
                      "freeLocal", "ops/s"});
    for (std::size_t i = 0; i < res.samples.size(); i += 10) {
        const IntervalSample &s = res.samples[i];
        series.addRow({TextTable::num(static_cast<double>(s.tick) / 1e9, 1),
                       TextTable::pct(s.localShare),
                       TextTable::num(s.promotionRate, 0),
                       TextTable::num(s.demotionRate, 0),
                       TextTable::num(s.localAllocRate, 0),
                       TextTable::count(s.localFree),
                       TextTable::num(s.throughput, 0)});
    }
    series.print();
    return 0;
}
