/**
 * @file
 * Trace aggregation: fold a stream of tracepoint records into
 * fixed-width time windows of per-event counts, and rank the pages
 * that ping-pong between tiers (demoted, promoted back, demoted
 * again — the pathology TPP's pgpromote_candidate_demoted counter and
 * Fig. 18's active-LRU filter exist to suppress).
 *
 * Used by the trace_summary tool and unit-tested directly.
 */

#ifndef TPP_TRACE_SUMMARY_HH
#define TPP_TRACE_SUMMARY_HH

#include <array>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace tpp {

/** Per-event counts inside one [start, start + windowNs) window. */
struct TraceWindow {
    Tick start = 0;
    std::array<std::uint64_t, kNumTraceEvents> counts{};

    std::uint64_t
    count(TraceEvent event) const
    {
        return counts[static_cast<std::size_t>(event)];
    }
};

/** One page's tier-migration history, ranked by direction flips. */
struct PingPongPage {
    std::uint32_t asid = 0;
    Vpn vpn = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
    /** Promote→demote / demote→promote direction changes. */
    std::uint64_t flips = 0;
    /** Estimated bytes moved by this page's flipped hops. */
    std::uint64_t wastedBytes = 0;
};

/** Per-cgroup tallies decoded from memcg_event records. */
struct MemcgTally {
    std::uint64_t protectedSkips = 0; //!< reclaim skipped (under floor)
    std::uint64_t lowBreaches = 0;    //!< reclaimed despite the floor
    std::uint64_t throttled = 0;      //!< migrations deferred by budget
};

/** Everything trace_summary reports about one run's events. */
struct TraceSummary {
    Tick windowNs = 0;
    std::vector<TraceWindow> windows;
    std::array<std::uint64_t, kNumTraceEvents> totals{};
    /** Pages with ≥ 1 direction flip, most flips first. */
    std::vector<PingPongPage> pingPong;
    /** Direction flips summed over *all* pages (not just the top-N). */
    std::uint64_t pingPongFlips = 0;
    /**
     * Estimated migration bandwidth wasted on ping-pong, over all
     * pages: each flip retraces the hop before it, so both legs of the
     * reversal moved data to no end — (flips + 1) pages per flipping
     * page.
     */
    std::uint64_t pingPongWastedBytes = 0;
    /** Hot-threshold retunes (hotness_threshold events), tick order. */
    std::vector<std::pair<Tick, std::uint32_t>> hotnessThresholds;
    /** memcg_event tallies keyed by cgroup id (empty without cgroups). */
    std::map<std::uint32_t, MemcgTally> memcg;
    /** ppt_throttle denials split by direction (record aux = PptHop). */
    std::uint64_t pptThrottledPromote = 0;
    std::uint64_t pptThrottledDemote = 0;

    /** One adaptive-tuner knob movement (adaptive_tune / _revert). */
    struct AdaptiveKnobPoint {
        Tick tick = 0;
        std::uint8_t knob = 0;     //!< AdaptiveKnob id (aux >> 24)
        std::uint32_t value = 0;   //!< knob value after the step
        bool reverted = false;     //!< step was rolled back, not accepted
    };
    /** Adaptive knob trajectory, tick order (empty without the tuner). */
    std::vector<AdaptiveKnobPoint> adaptiveKnobs;
    /** adaptive_settle / adaptive_wake transitions. */
    std::uint64_t adaptiveSettles = 0;
    std::uint64_t adaptiveWakes = 0;

    std::uint64_t
    total(TraceEvent event) const
    {
        return totals[static_cast<std::size_t>(event)];
    }

    /** Windows in which at least one of `event` fired. */
    std::size_t activeWindows(TraceEvent event) const;
};

/**
 * Aggregate `events` (any order; sorted internally by tick) into
 * windows of `window_ns`, keeping the `top_n` worst ping-pong pages.
 * `window_ns` must be > 0.
 */
TraceSummary summarizeTrace(const std::vector<TraceRecord> &events,
                            Tick window_ns, std::size_t top_n = 10);

} // namespace tpp

#endif // TPP_TRACE_SUMMARY_HH
