file(REMOVE_RECURSE
  "CMakeFiles/fig08_page_type_temperature.dir/fig08_page_type_temperature.cpp.o"
  "CMakeFiles/fig08_page_type_temperature.dir/fig08_page_type_temperature.cpp.o.d"
  "fig08_page_type_temperature"
  "fig08_page_type_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_page_type_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
