/**
 * @file
 * Page migration between memory nodes: the raw move, TPP-style demotion
 * with distance-ordered targets and classic-reclaim fallback (§5.1),
 * and promotion with gate checking and failure accounting (§5.3, §5.5).
 */

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

Pfn
Kernel::migratePage(Pfn pfn, NodeId dst, AllocReason reason)
{
    PageFrame &frame = mem_.frame(pfn);
    if (frame.isFree() || frame.lru == LruListId::None) {
        vmstat_.inc(Vm::PgMigrateFail);
        return kInvalidPfn;
    }
    if (frame.nid == dst)
        tpp_panic("migratePage: pfn %u already on node %u", pfn, dst);

    const Pfn new_pfn = allocPage(dst, frame.type, reason);
    if (new_pfn == kInvalidPfn) {
        vmstat_.inc(Vm::PgMigrateFail);
        return kInvalidPfn;
    }

    Pte &pte = pteOf(frame);
    const bool was_active = lruIsActive(frame.lru);
    const NodeId src = frame.nid;

    lrus_[src].remove(pfn);

    PageFrame &new_frame = mem_.frame(new_pfn);
    new_frame.clearFlag(PageFrame::FlagFree);
    new_frame.type = frame.type;
    new_frame.ownerAsid = frame.ownerAsid;
    new_frame.ownerVpn = frame.ownerVpn;
    new_frame.allocatedAt = frame.allocatedAt;
    new_frame.lastHintFault = frame.lastHintFault;
    new_frame.hintRefCount = frame.hintRefCount;
    if (frame.referenced())
        new_frame.setFlag(PageFrame::FlagReferenced);
    if (frame.dirty())
        new_frame.setFlag(PageFrame::FlagDirty);
    if (frame.demoted())
        new_frame.setFlag(PageFrame::FlagDemoted);

    pte.pfn = new_pfn;

    mem_.node(src).putFree(pfn);
    frame.resetForFree();

    lrus_[dst].addHead(lruListFor(new_frame.type, was_active), new_pfn);

    // The copy moves one page of data off the source and onto the
    // destination node.
    mem_.node(src).recordTraffic(eq_.now(), kPageSize);
    mem_.node(dst).recordTraffic(eq_.now(), kPageSize);
    vmstat_.inc(Vm::PgMigrateSuccess);
    return new_pfn;
}

void
Kernel::notePromoteCandidate(const PageFrame &frame)
{
    vmstat_.inc(Vm::PgPromoteCandidate);
    vmstat_.inc(frame.type == PageType::Anon ? Vm::PgPromoteCandidateAnon
                                             : Vm::PgPromoteCandidateFile);
    if (frame.demoted())
        vmstat_.inc(Vm::PgPromoteCandidateDemoted);
    trace_.emitPage(TraceEvent::PromoteCandidate, eq_.now(), frame.nid,
                    frame.type, frame.pfn, frame.ownerAsid,
                    frame.ownerVpn, frame.demoted() ? 1 : 0);
}

std::pair<bool, double>
Kernel::demotePage(Pfn pfn)
{
    PageFrame &frame = mem_.frame(pfn);
    const NodeId src = frame.nid;
    const PageType type = frame.type;
    const Asid owner_asid = frame.ownerAsid;
    const Vpn owner_vpn = frame.ownerVpn;

    // Distance-ordered static target selection (§5.1).
    for (NodeId dst : mem_.demotionOrder(src)) {
        const Pfn new_pfn = migratePage(pfn, dst, AllocReason::Demotion);
        if (new_pfn != kInvalidPfn) {
            mem_.frame(new_pfn).setFlag(PageFrame::FlagDemoted);
            vmstat_.inc(type == PageType::Anon ? Vm::PgDemoteAnon
                                               : Vm::PgDemoteFile);
            trace_.emitPage(TraceEvent::Demote, eq_.now(), src, type,
                            new_pfn, owner_asid, owner_vpn, dst);
            return {true, costs_.migratePage};
        }
    }

    // Migration failed (no CXL node, or all of them full): fall back to
    // the default reclamation mechanism for this page.
    vmstat_.inc(Vm::PgDemoteFail);
    trace_.emitPage(TraceEvent::DemoteFail, eq_.now(), src, type, pfn,
                    owner_asid, owner_vpn);
    return reclaimOnePage(pfn, false);
}

std::pair<bool, double>
Kernel::promotePage(Pfn pfn, NodeId dst)
{
    vmstat_.inc(Vm::PgPromoteTry);

    PageFrame &frame = mem_.frame(pfn);
    if (frame.isFree() || frame.lru == LruListId::None) {
        // The frame's owner fields are gone; trace node-scoped only.
        trace_.emit(TraceEvent::PromoteTry, eq_.now(), frame.nid, dst);
        vmstat_.inc(Vm::PgPromoteFailIsolate);
        trace_.emit(TraceEvent::PromoteFailIsolate, eq_.now(), frame.nid,
                    dst);
        return {false, 0.0};
    }

    const NodeId src = frame.nid;
    const PageType type = frame.type;
    const Asid owner_asid = frame.ownerAsid;
    const Vpn owner_vpn = frame.ownerVpn;
    trace_.emitPage(TraceEvent::PromoteTry, eq_.now(), src, type, pfn,
                    owner_asid, owner_vpn, dst);

    const Pfn new_pfn = migratePage(pfn, dst, AllocReason::Promotion);
    if (new_pfn == kInvalidPfn) {
        vmstat_.inc(Vm::PgPromoteFailLowMem);
        trace_.emitPage(TraceEvent::PromoteFailLowMem, eq_.now(), src,
                        type, pfn, owner_asid, owner_vpn, dst);
        return {false, 0.0};
    }

    // A successful promotion clears PG_demoted: the ping-pong detector
    // only counts pages that get demoted *again* afterwards.
    mem_.frame(new_pfn).clearFlag(PageFrame::FlagDemoted);
    vmstat_.inc(Vm::PgPromoteSuccess);
    trace_.emitPage(TraceEvent::PromoteSuccess, eq_.now(), src, type,
                    new_pfn, owner_asid, owner_vpn, dst);
    return {true, costs_.migratePage};
}

} // namespace tpp
