/**
 * @file
 * Fundamental scalar types shared by every simulator subsystem.
 *
 * The simulation measures time in integer nanoseconds (Tick). Memory is
 * tracked at page granularity: physical frames are identified by Pfn,
 * virtual pages by Vpn, address spaces by Asid and memory nodes by NodeId.
 */

#ifndef TPP_SIM_TYPES_HH
#define TPP_SIM_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace tpp {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Physical frame number (index into the global frame table). */
using Pfn = std::uint32_t;

/** Virtual page number within an address space. */
using Vpn = std::uint64_t;

/** Address-space (process) identifier. */
using Asid = std::uint32_t;

/** Memory-node (NUMA node) identifier. */
using NodeId = std::uint8_t;

/** Sentinel for "no frame". */
inline constexpr Pfn kInvalidPfn = std::numeric_limits<Pfn>::max();

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Base page size in bytes (4 KiB, the only granularity we model). */
inline constexpr std::uint64_t kPageSize = 4096;

/** Convenience tick constants. */
inline constexpr Tick kNanosecond = 1;
inline constexpr Tick kMicrosecond = 1000 * kNanosecond;
inline constexpr Tick kMillisecond = 1000 * kMicrosecond;
inline constexpr Tick kSecond = 1000 * kMillisecond;

/** Page content classification, mirroring the kernel's anon/file split. */
enum class PageType : std::uint8_t {
    Anon,  //!< anonymous memory: heap, stack, private mmap
    File,  //!< page-cache backed: binaries, data files, tmpfs
};

/** Number of distinct PageType values. */
inline constexpr std::size_t kNumPageTypes = 2;

/** Access direction for a memory reference. */
enum class AccessKind : std::uint8_t {
    Load,
    Store,
};

} // namespace tpp

#endif // TPP_SIM_TYPES_HH
