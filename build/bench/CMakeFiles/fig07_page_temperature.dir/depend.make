# Empty dependencies file for fig07_page_temperature.
# This may be replaced when dependencies are built.
