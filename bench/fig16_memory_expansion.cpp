/**
 * @file
 * Figure 16: large memory expansion through CXL (local:CXL = 1:4).
 *
 * The stress configuration where 80 % of capacity is CXL-attached and
 * hot pages are forced to spill; Cache1 and Cache2 under default Linux
 * and TPP, versus the all-local machine.
 *
 * Paper shape: Cache1 — Linux traps 85 % of anons remotely, ~75 % of
 * accesses go to CXL, throughput -14 %; TPP promotes the hot anons back
 * and reaches ~99.5 % of all-local with ~85 % of reads served locally.
 * Cache2 — Linux -18 %, TPP -5 % with ~41 % of reads from CXL.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 16",
                  "memory expansion configuration (local:CXL = 1:4)");

    TextTable table({"workload", "policy", "local traffic", "cxl traffic",
                     "tput vs all-local", "anon on local", "file on local"});

    const std::vector<const char *> workloads = {"cache1", "cache2"};
    const std::vector<const char *> policies = {"linux", "tpp"};

    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : workloads) {
        ExperimentConfig base = bench::makeConfig(opt);
        base.workload = wl;
        base.allLocal = true;
        // The baseline is the canned all-local box even when --topology
        // reshapes the comparison runs.
        base.topology.clear();
        base.policy = "linux";
        cfgs.push_back(base);
        for (const char *policy : policies) {
            ExperimentConfig cfg = base;
            cfg.allLocal = false;
            cfg.topology = opt.topologySpec;
            cfg.localFraction = parseRatio("1:4");
            cfg.policy = policy;
            cfgs.push_back(cfg);
        }
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    const std::size_t stride = 1 + policies.size();
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const ExperimentResult &baseline = results[w * stride];
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ExperimentResult &res = results[w * stride + 1 + p];
            table.addRow({workloads[w], policies[p],
                          TextTable::pct(res.localTrafficShare),
                          TextTable::pct(res.cxlTrafficShare),
                          TextTable::pct(res.throughput /
                                         baseline.throughput),
                          TextTable::pct(res.anonLocalResidency),
                          TextTable::pct(res.fileLocalResidency)});
        }
    }
    table.print();
    std::printf("\npaper: Cache1 linux 25%%/75%% @86%%, tpp 85%%/15%% "
                "@99.5%%; Cache2 linux 20%%/80%% @82%%, tpp 59%%/41%% "
                "@95%%\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
