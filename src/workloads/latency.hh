/**
 * @file
 * Per-request latency recording with tail-percentile queries.
 *
 * LatencyHistogram is an HdrHistogram-style log-linear ring of buckets:
 * 64 power-of-two major buckets, each split into 32 linear sub-buckets,
 * covering [1 ns, ~2^63 ns) at a worst-case quantization error of ~3 %.
 * Recording is O(1) with no allocation after construction, so the
 * driver can sample every request of a multi-million-op run; p50/p99/
 * p999 queries walk the cumulative counts and interpolate inside the
 * landing bucket. Deterministic by construction — no reservoir
 * sampling noise in the reported tail.
 */

#ifndef TPP_WORKLOADS_LATENCY_HH
#define TPP_WORKLOADS_LATENCY_HH

#include <array>
#include <cstdint>

namespace tpp {

class LatencyHistogram
{
  public:
    /** Record one latency observation (values < 1 land in bucket 0). */
    void record(double ns);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double maxNs() const { return count_ ? max_ : 0.0; }
    double minNs() const { return count_ ? min_ : 0.0; }

    /**
     * @param p percentile in [0, 100]
     * @return the p-th percentile latency in ns (0 when empty),
     *         linearly interpolated inside the landing bucket.
     */
    double percentileNs(double p) const;

    /** Fold another histogram's observations into this one. */
    void merge(const LatencyHistogram &other);

    void reset();

  private:
    static constexpr std::uint32_t kSubBucketBits = 5;
    static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
    static constexpr std::uint32_t kMajorBuckets = 64;
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(kMajorBuckets) * kSubBuckets;

    static std::size_t bucketFor(std::uint64_t ns);
    /** Inclusive value range covered by bucket `index`. */
    static void bucketBounds(std::size_t index, double *lo, double *hi);

    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace tpp

#endif // TPP_WORKLOADS_LATENCY_HH
