/**
 * @file
 * Figure 15: TPP vs default Linux on the production 2:1 configuration.
 *
 * For each workload: traffic served from local vs CXL node and
 * throughput relative to the all-from-local machine, under the default
 * Linux kernel and under TPP.
 *
 * Paper shape (2:1): Web — Linux serves only ~22 % locally and loses
 * 16.5 %, TPP serves ~90 % locally at 99.5 % of all-local; Cache1 —
 * Linux ~-3 %, TPP 99.9 %; Cache2 — Linux -2 %, TPP 99.6 %; DWH — both
 * within ~1 %.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 15",
                  "default production environment (local:CXL = 2:1)");

    TextTable table({"workload", "policy", "local traffic", "cxl traffic",
                     "tput vs all-local", "anon on local", "file on local"});

    const std::vector<const char *> workloads = {"web", "cache1", "cache2",
                                                 "dwh"};
    const std::vector<const char *> policies = {"linux", "tpp"};

    // Per workload: the all-local baseline followed by each policy run.
    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : workloads) {
        ExperimentConfig base = bench::makeConfig(opt);
        base.workload = wl;
        base.allLocal = true;
        // The baseline is the canned all-local box even when --topology
        // reshapes the comparison runs.
        base.topology.clear();
        base.policy = "linux";
        cfgs.push_back(base);
        for (const char *policy : policies) {
            ExperimentConfig cfg = base;
            cfg.allLocal = false;
            cfg.topology = opt.topologySpec;
            cfg.localFraction = parseRatio("2:1");
            cfg.policy = policy;
            cfgs.push_back(cfg);
        }
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    const std::size_t stride = 1 + policies.size();
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const ExperimentResult &baseline = results[w * stride];
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const ExperimentResult &res = results[w * stride + 1 + p];
            table.addRow({workloads[w], policies[p],
                          TextTable::pct(res.localTrafficShare),
                          TextTable::pct(res.cxlTrafficShare),
                          TextTable::pct(res.throughput /
                                         baseline.throughput),
                          TextTable::pct(res.anonLocalResidency),
                          TextTable::pct(res.fileLocalResidency)});
        }
    }
    table.print();
    std::printf("\npaper: Web linux 22%%/78%% @83.5%%, tpp 90%%/10%% @99.5%%;"
                " Cache1 linux ~97%%, tpp 99.9%%; Cache2 linux 78%% local"
                " @98%%, tpp 91%% @99.6%%; DWH both ~99%%+\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
