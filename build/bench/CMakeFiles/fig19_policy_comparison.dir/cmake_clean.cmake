file(REMOVE_RECURSE
  "CMakeFiles/fig19_policy_comparison.dir/fig19_policy_comparison.cpp.o"
  "CMakeFiles/fig19_policy_comparison.dir/fig19_policy_comparison.cpp.o.d"
  "fig19_policy_comparison"
  "fig19_policy_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
