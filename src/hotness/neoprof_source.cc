#include "hotness/neoprof_source.hh"

#include <algorithm>
#include <cmath>

#include "mm/kernel.hh"

namespace tpp {

void
NeoProfSource::attach(Kernel &kernel)
{
    HotnessSource::attach(kernel);
    threshold_ = std::max<double>(1.0, static_cast<double>(cfg_.hotThreshold));
    kernel.setAccessTap(this);
}

void
NeoProfSource::onKernelAccess(const PageFrame &frame, NodeId task_nid,
                              Tick now)
{
    (void)task_nid;
    (void)now;
    // The device only snoops the CXL link: toptier traffic never
    // reaches it, which is what makes the counters free for the CPU.
    if (kernel_->mem().tiers().isToptier(frame.nid))
        return;
    track(frame.pfn);
}

void
NeoProfSource::track(Pfn pfn)
{
    auto it = table_.find(pfn);
    if (it != table_.end()) {
        it->second.count += 1.0;
        lru_.splice(lru_.begin(), lru_, it->second.lruPos);
        return;
    }
    while (cfg_.counterTableSize > 0 && table_.size() >= cfg_.counterTableSize)
        evictOne();
    lru_.push_front(pfn);
    Counter counter;
    counter.count = 1.0;
    counter.lruPos = lru_.begin();
    table_.emplace(pfn, counter);
}

void
NeoProfSource::evictOne()
{
    const Pfn victim = lru_.back();
    kernel_->vmstat().inc(Vm::HotnessCounterEvict);
    const PageFrame &frame = kernel_->mem().frame(victim);
    const PageFrameCold &cold = kernel_->mem().frameCold(victim);
    kernel_->trace().emitPage(TraceEvent::HotnessEvict,
                              kernel_->eventQueue().now(), frame.nid,
                              frame.type, victim, cold.ownerAsid,
                              cold.ownerVpn);
    erase(victim);
}

void
NeoProfSource::erase(Pfn pfn)
{
    const auto it = table_.find(pfn);
    if (it == table_.end())
        return;
    lru_.erase(it->second.lruPos);
    table_.erase(it);
}

double
NeoProfSource::temperature(Pfn pfn) const
{
    const auto it = table_.find(pfn);
    return it == table_.end() ? 0.0 : it->second.count;
}

std::uint64_t
NeoProfSource::targetHotPages() const
{
    // The device aims its hot set at the frames the kernel could
    // actually accept: local free pages above the high watermark.
    std::uint64_t target = 0;
    for (const NodeId nid : kernel_->mem().tiers().toptierNodes()) {
        const MemoryNode &node = kernel_->mem().node(nid);
        const std::uint64_t free = node.freePages();
        const std::uint64_t high = node.watermarks().high;
        if (free > high)
            target += free - high;
    }
    if (cfg_.targetQuantile > 0.0 && cfg_.targetQuantile < 1.0) {
        // Optional override: keep only the top (1-q) fraction of the
        // tracked population hot, regardless of headroom.
        // Round the cap up: a tiny tracked population must still be
        // allowed its hottest page, not starved to zero by truncation.
        const auto cap = static_cast<std::uint64_t>(
            std::ceil((1.0 - cfg_.targetQuantile) *
                      static_cast<double>(table_.size())));
        target = std::min(target, cap);
    }
    return target;
}

void
NeoProfSource::retuneThreshold()
{
    histogram_.fill(0);
    for (const auto &[pfn, counter] : table_) {
        const auto bucket = counter.count < 1.0
                                ? 0u
                                : std::min<std::uint32_t>(
                                      kHistogramBuckets - 1,
                                      1 + static_cast<std::uint32_t>(
                                              std::log2(counter.count)));
        histogram_[bucket]++;
    }

    const std::uint64_t target = targetHotPages();
    // No headroom: park the threshold above every bucket so extractHot
    // returns nothing until the local tier frees up.
    double tuned = std::exp2(kHistogramBuckets - 1);
    if (target > 0) {
        std::uint64_t cum = 0;
        tuned = 1.0; // all buckets together still miss the target
        for (std::uint32_t b = kHistogramBuckets; b-- > 0;) {
            const std::uint64_t above = cum;
            cum += histogram_[b];
            if (cum >= target) {
                // Round conservatively: admit only the buckets strictly
                // above the crossing one, never the whole crossing
                // bucket — the device must not ask for more migration
                // bandwidth than the local tier has headroom to absorb.
                // Unless nothing sits above it: then the hottest bucket
                // itself must flow (its lower bound), or a homogeneous
                // population would deadlock the promoter.
                if (above > 0)
                    tuned = std::exp2(static_cast<double>(b));
                else
                    tuned = b == 0 ? 1.0
                                   : std::exp2(static_cast<double>(b - 1));
                break;
            }
        }
    }

    if (tuned != threshold_) {
        kernel_->vmstat().inc(tuned > threshold_ ? Vm::HotnessThresholdRaise
                                                 : Vm::HotnessThresholdLower);
        threshold_ = tuned;
        kernel_->trace().emit(TraceEvent::HotnessThreshold,
                              kernel_->eventQueue().now(), kInvalidNode,
                              static_cast<std::uint32_t>(std::min(
                                  threshold_,
                                  static_cast<double>(UINT32_MAX))));
    }
}

void
NeoProfSource::advanceEpoch()
{
    if (cfg_.decayHalfLife > 0) {
        const double factor =
            std::exp2(-static_cast<double>(cfg_.epochPeriod) /
                      static_cast<double>(cfg_.decayHalfLife));
        for (auto it = table_.begin(); it != table_.end();) {
            it->second.count *= factor;
            if (it->second.count < 0.5) {
                // Decayed to noise: drop silently — this is forgetting,
                // not capacity pressure, so no evict counter.
                lru_.erase(it->second.lruPos);
                it = table_.erase(it);
            } else {
                ++it;
            }
        }
    }
    retuneThreshold();
}

std::vector<HotPage>
NeoProfSource::extractHot(std::uint64_t max_pages)
{
    std::vector<HotPage> hot;
    for (const auto &[pfn, counter] : table_) {
        if (counter.count < threshold_)
            continue;
        if (!cxlResident(pfn))
            continue;
        HotPage page;
        page.pfn = pfn;
        page.nid = kernel_->mem().frame(pfn).nid;
        page.temperature = counter.count;
        hot.push_back(page);
    }
    std::sort(hot.begin(), hot.end(),
              [](const HotPage &a, const HotPage &b) {
                  return a.temperature != b.temperature
                             ? a.temperature > b.temperature
                             : a.pfn < b.pfn;
              });
    if (hot.size() > max_pages)
        hot.resize(max_pages);
    for (const HotPage &page : hot)
        erase(page.pfn);
    return hot;
}

} // namespace tpp
