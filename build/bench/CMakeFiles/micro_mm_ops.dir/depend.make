# Empty dependencies file for micro_mm_ops.
# This may be replaced when dependencies are built.
