#!/usr/bin/env python3
"""Compare a micro_mm_ops --benchmark_format=json run against the
checked-in performance baseline (bench/perf_baseline.json).

The baseline pins benchmark *counters* (pages/sec-style rates by
default), not wall-clock times, so the gate is insensitive to how long
the benchmark harness chose to run. Each baseline entry may declare a
"direction": "higher" (the default — rate counters regress downward)
or "lower" (cost counters such as ns/window regress upward). For every
counter named in the baseline:

    direction "higher":  regression % = (baseline - current) / baseline * 100
    direction "lower":   regression % = (current - baseline) / baseline * 100

Exit status is 1 if any counter regressed more than --fail-pct
(default 25%), otherwise 0. Regressions beyond --warn-pct (default
10%) print a warning; improvements beyond --warn-pct suggest
re-baselining. Output uses GitHub workflow commands (::error:: /
::warning::) so the annotations land on the PR.

Re-baselining (after an intentional perf change, on the CI runner
class the baseline documents):

    bench/micro_mm_ops --benchmark_format=json > results.json
    tools/check_perf.py results.json bench/perf_baseline.json --update

Usage:
    check_perf.py RESULTS_JSON BASELINE_JSON [--fail-pct N]
                  [--warn-pct N] [--update]
"""

import argparse
import json
import sys


def load_counters(results):
    """Map benchmark name -> counters dict, skipping aggregate rows."""
    counters = {}
    for bench in results.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None:
            continue
        row = {
            key: value
            for key, value in bench.items()
            if isinstance(value, (int, float))
        }
        counters[name] = row
    return counters


def main():
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("results", help="micro_mm_ops JSON output")
    parser.add_argument("baseline", help="bench/perf_baseline.json")
    parser.add_argument("--fail-pct", type=float, default=25.0,
                        help="regression %% that fails the gate")
    parser.add_argument("--warn-pct", type=float, default=10.0,
                        help="regression %% that warns")
    parser.add_argument("--update", action="store_true",
                        help="write current values into the baseline")
    args = parser.parse_args()

    with open(args.results) as handle:
        results = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)

    measured = load_counters(results)
    failures = 0
    warnings = 0
    rows = []

    for name, spec in sorted(baseline.get("counters", {}).items()):
        counter = spec["counter"]
        pinned = float(spec["value"])
        direction = spec.get("direction", "higher")
        if direction not in ("higher", "lower"):
            print(f"::error::perf gate: baseline for '{name}' has "
                  f"unknown direction '{direction}' (want higher|lower)")
            failures += 1
            continue
        bench = measured.get(name)
        if bench is None:
            print(f"::error::perf gate: benchmark '{name}' missing "
                  f"from results (did the --benchmark_filter drop it?)")
            failures += 1
            continue
        current = bench.get(counter)
        if current is None:
            print(f"::error::perf gate: benchmark '{name}' reports no "
                  f"'{counter}' counter")
            failures += 1
            continue
        current = float(current)
        if args.update:
            spec["value"] = current
            rows.append((name, counter, pinned, current, None))
            continue
        if pinned <= 0:
            print(f"::error::perf gate: baseline for '{name}' is "
                  f"non-positive ({pinned}); re-baseline with --update")
            failures += 1
            continue
        if direction == "lower":
            regression = (current - pinned) / pinned * 100.0
        else:
            regression = (pinned - current) / pinned * 100.0
        rows.append((name, counter, pinned, current, regression))
        if regression > args.fail_pct:
            print(f"::error::perf gate: {name} {counter} regressed "
                  f"{regression:.1f}% ({pinned:.3g} -> {current:.3g}, "
                  f"fail threshold {args.fail_pct:g}%)")
            failures += 1
        elif regression > args.warn_pct:
            print(f"::warning::perf gate: {name} {counter} regressed "
                  f"{regression:.1f}% ({pinned:.3g} -> {current:.3g})")
            warnings += 1
        elif -regression > args.warn_pct:
            print(f"::warning::perf gate: {name} {counter} improved "
                  f"{-regression:.1f}% ({pinned:.3g} -> {current:.3g}); "
                  f"consider re-baselining with --update")

    header = f"{'benchmark':32} {'counter':16} {'baseline':>12} " \
             f"{'current':>12} {'delta':>8}"
    print(header)
    print("-" * len(header))
    for name, counter, pinned, current, regression in rows:
        delta = "updated" if regression is None \
            else f"{-regression:+.1f}%"
        print(f"{name:32} {counter:16} {pinned:12.4g} "
              f"{current:12.4g} {delta:>8}")

    if args.update:
        with open(args.baseline, "w") as handle:
            json.dump(baseline, handle, indent=2)
            handle.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    if failures:
        print(f"perf gate: FAIL ({failures} counter(s) past "
              f"{args.fail_pct:g}%)")
        return 1
    status = f"{warnings} warning(s)" if warnings else "all green"
    print(f"perf gate: OK ({status})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
