#include "workloads/synthetic.hh"

#include <algorithm>
#include <cmath>

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

SyntheticWorkload::SyntheticWorkload(WorkloadProfile profile)
    : profile_(std::move(profile)),
      think_(profile_.thinkTimePerOpNs, profile_.loadRampSeconds,
             profile_.loadRampStart),
      rng_(profile_.seed)
{
    if (profile_.regions.empty())
        tpp_fatal("synthetic workload needs at least one region");
}

void
SyntheticWorkload::init(Kernel &kernel)
{
    if (inited_)
        tpp_panic("SyntheticWorkload::init called twice");
    inited_ = true;
    asid_ = kernel.createProcess();

    double acc = 0.0;
    for (const RegionSpec &spec : profile_.regions) {
        RegionState state;
        state.spec = spec;
        state.base = kernel.mmap(asid_, spec.pages, spec.type, spec.label,
                                 spec.diskBacked);
        state.createdAt = kernel.eventQueue().now();
        state.lastChurn = state.createdAt;
        regions_.push_back(std::move(state));
        acc += spec.accessWeight;
        weightPrefix_.push_back(acc);
        if (spec.phasePeriod != 0) {
            if (spec.phaseDuty <= 0.0 || spec.phaseDuty > 1.0)
                tpp_fatal("phaseDuty must be in (0, 1]");
            anyPhased_ = true;
        }
    }
    if (anyPhased_ && regions_.size() > 64)
        tpp_fatal("phase gating supports at most 64 regions");

    // Regions without sequential warm-up are skipped by the cursor.
    while (warmupCursorRegion_ < regions_.size() &&
           !regions_[warmupCursorRegion_].spec.sequentialWarmup) {
        warmupCursorRegion_++;
    }
    lastTransientTick_ = kernel.eventQueue().now();
}

std::uint64_t
SyntheticWorkload::totalReservedPages() const
{
    std::uint64_t total = 0;
    for (const RegionSpec &spec : profile_.regions)
        total += spec.pages;
    return total;
}

double
SyntheticWorkload::issueAccess(Kernel &kernel, Vpn vpn, AccessKind kind,
                               BatchResult &result)
{
    const AccessResult res = kernel.access(asid_, vpn, kind, taskNode_);
    result.accesses++;
    result.memLatencyNs += res.latencyNs;
    if (observer_) {
        observer_(AccessRecord{asid_, vpn, kind,
                               kernel.eventQueue().now()});
    }
    return res.latencyNs;
}

std::uint64_t
SyntheticWorkload::activePages(const RegionState &region, Tick now) const
{
    const RegionSpec &spec = region.spec;
    const double elapsed_sec =
        static_cast<double>(now - region.lastChurn) /
        static_cast<double>(kSecond);
    const double active =
        static_cast<double>(spec.pages) * spec.initialActiveFraction +
        spec.growthPagesPerSec * elapsed_sec;
    const std::uint64_t count = static_cast<std::uint64_t>(active);
    return std::clamp<std::uint64_t>(count, 1, spec.pages);
}

bool
SyntheticWorkload::regionPhaseOn(const RegionSpec &spec, Tick now) const
{
    if (spec.phasePeriod == 0)
        return true;
    const Tick pos = (now + spec.phaseOffset) % spec.phasePeriod;
    return static_cast<double>(pos) <
           spec.phaseDuty * static_cast<double>(spec.phasePeriod);
}

void
SyntheticWorkload::refreshPhaseWeights(Tick now)
{
    // Cheap per-batch check: rebuild the prefix table only on the batch
    // where some region crossed a phase edge.
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        if (regionPhaseOn(regions_[i].spec, now))
            mask |= std::uint64_t{1} << i;
    }
    if (mask == phaseMask_)
        return;
    phaseMask_ = mask;
    double acc = 0.0;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const RegionSpec &spec = regions_[i].spec;
        const bool on = (mask >> i) & 1;
        // Keep every region minimally sample-able so lower_bound stays
        // well-defined even if all weights are gated off at once.
        const double eff = std::max(
            on ? spec.accessWeight : spec.accessWeight * spec.phaseOffWeight,
            1e-9);
        acc += eff;
        weightPrefix_[i] = acc;
    }
}

Vpn
SyntheticWorkload::sampleRegionVpn(RegionState &region, Tick now)
{
    const RegionSpec &spec = region.spec;
    const std::uint64_t active = activePages(region, now);
    std::uint64_t hot_pages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(spec.hotFraction *
                                      static_cast<double>(active)));

    std::uint64_t offset;
    const double roll = rng_.nextDouble();
    if (roll < spec.hotAccessShare + spec.echoShare) {
        // Rebuild the Zipf sampler only when the hot-set size moved
        // noticeably; construction is cheap but not free.
        if (!region.zipf ||
            (region.cachedHotPages != hot_pages &&
             (hot_pages > region.cachedHotPages + region.cachedHotPages / 64 ||
              hot_pages + hot_pages / 64 < region.cachedHotPages))) {
            region.zipf.emplace(hot_pages, spec.zipfTheta);
            region.cachedHotPages = hot_pages;
        }
        std::uint64_t hot_start = 0;
        if (spec.hotFollowsGrowth && active > hot_pages)
            hot_start = active - hot_pages;
        if (spec.rotationPeriod != 0) {
            const std::uint64_t steps =
                (now - region.lastChurn) / spec.rotationPeriod;
            const double step_pages =
                spec.rotationStep * static_cast<double>(hot_pages);
            hot_start = (hot_start +
                         static_cast<std::uint64_t>(
                             static_cast<double>(steps) * step_pages)) %
                        active;
        }
        if (roll < spec.hotAccessShare) {
            offset = (hot_start + (*region.zipf)(rng_)) % active;
        } else {
            // Echo zone: uniform over the window-sized span of pages the
            // drifting window most recently left behind.
            const std::uint64_t back = 1 + rng_.nextBounded(hot_pages);
            offset = (hot_start + active - back) % active;
        }
    } else {
        offset = rng_.nextBounded(active);
    }
    return region.base + offset;
}

double
SyntheticWorkload::runWarmupChunk(Kernel &kernel, BatchResult &result)
{
    // Warm-up covers a region's initially active pages; later growth
    // faults the rest in on demand.
    const auto warm_limit = [](const RegionSpec &spec) {
        return std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(spec.pages) *
                   spec.initialActiveFraction));
    };
    double duration = 0.0;
    std::uint64_t touched = 0;
    while (touched < profile_.warmupChunkPages &&
           warmupCursorRegion_ < regions_.size()) {
        RegionState &region = regions_[warmupCursorRegion_];
        if (warmupCursorPage_ >= warm_limit(region.spec)) {
            warmupCursorPage_ = 0;
            do {
                warmupCursorRegion_++;
            } while (warmupCursorRegion_ < regions_.size() &&
                     !regions_[warmupCursorRegion_].spec.sequentialWarmup);
            continue;
        }
        const Vpn vpn = region.base + warmupCursorPage_;
        // Preloading reads the file in and writes nothing.
        duration += issueAccess(kernel, vpn, AccessKind::Load, result);
        warmupCursorPage_++;
        touched++;
    }
    // If the chunk ended exactly on a region boundary, advance the
    // cursor now so warmedUp() flips without an empty extra chunk.
    while (warmupCursorRegion_ < regions_.size() &&
           warmupCursorPage_ >=
               warm_limit(regions_[warmupCursorRegion_].spec)) {
        warmupCursorPage_ = 0;
        do {
            warmupCursorRegion_++;
        } while (warmupCursorRegion_ < regions_.size() &&
                 !regions_[warmupCursorRegion_].spec.sequentialWarmup);
    }
    return duration;
}

double
SyntheticWorkload::maintainTransients(Kernel &kernel, Tick now,
                                      BatchResult &result)
{
    const TransientSpec &spec = profile_.transient;
    double duration = 0.0;

    // Retire dead request regions.
    while (!transients_.empty() && transients_.front().diesAt <= now) {
        const TransientRegion &region = transients_.front();
        kernel.munmap(asid_, region.base, region.pages);
        transients_.pop_front();
    }

    if (spec.regionsPerSecond <= 0.0)
        return 0.0;

    // Allocate new request regions at the configured rate.
    const double elapsed_sec =
        static_cast<double>(now - lastTransientTick_) /
        static_cast<double>(kSecond);
    lastTransientTick_ = now;
    transientCredit_ += elapsed_sec * spec.regionsPerSecond;
    while (transientCredit_ >= 1.0) {
        transientCredit_ -= 1.0;
        const Vpn base =
            kernel.mmap(asid_, spec.regionPages, PageType::Anon, "request");
        const std::uint64_t touches = static_cast<std::uint64_t>(
            spec.touchesPerPage * static_cast<double>(spec.regionPages));
        for (std::uint64_t i = 0; i < touches; ++i) {
            const Vpn vpn = base + rng_.nextBounded(spec.regionPages);
            duration += issueAccess(kernel, vpn, AccessKind::Store, result);
        }
        transients_.push_back(
            TransientRegion{base, spec.regionPages, now + spec.lifetime});
    }
    return duration;
}

double
SyntheticWorkload::maintainChurn(Kernel &kernel, Tick now)
{
    double duration = 0.0;
    BatchResult churn_result;
    for (RegionState &region : regions_) {
        const RegionSpec &spec = region.spec;
        if (spec.churnPeriod == 0)
            continue;
        const Tick since = now - region.lastChurn;
        const bool first_churn = region.lastChurn == region.createdAt;
        const Tick due = first_churn && spec.churnPhase < spec.churnPeriod
                             ? spec.churnPeriod - spec.churnPhase
                             : spec.churnPeriod;
        if (since < due)
            continue;
        // A new batch stage: drop the old data set, allocate a fresh one.
        kernel.munmap(asid_, region.base, spec.pages);
        region.base = kernel.mmap(asid_, spec.pages, spec.type, spec.label,
                                  spec.diskBacked);
        region.lastChurn = now;
        region.zipf.reset();
        region.cachedHotPages = 0;
        if (spec.populateOnChurn) {
            for (std::uint64_t i = 0; i < spec.pages; ++i) {
                duration += issueAccess(kernel, region.base + i,
                                        AccessKind::Store, churn_result);
            }
        }
    }
    return duration;
}

BatchResult
SyntheticWorkload::runBatch(Kernel &kernel)
{
    return runOps(kernel, profile_.opsPerBatch);
}

BatchResult
SyntheticWorkload::runOps(Kernel &kernel, std::uint64_t ops)
{
    BatchResult result;
    const Tick now = kernel.eventQueue().now();

    if (!warmedUp()) {
        result.durationNs = runWarmupChunk(kernel, result);
        // Warm-up consumes time but completes no application operations.
        if (result.durationNs <= 0.0)
            result.durationNs = 1.0;
        return result;
    }

    double duration = 0.0;
    duration += maintainChurn(kernel, now);
    duration += maintainTransients(kernel, now, result);
    if (anyPhased_)
        refreshPhaseWeights(now);

    const double think = think_.perOpNs(now);

    for (std::uint64_t op = 0; op < ops; ++op) {
        duration += think;
        for (std::uint32_t a = 0; a < profile_.accessesPerOp; ++a) {
            // Pick a region by access weight.
            const double pick =
                rng_.nextDouble() * weightPrefix_.back();
            const std::size_t idx = static_cast<std::size_t>(
                std::lower_bound(weightPrefix_.begin(),
                                 weightPrefix_.end(), pick) -
                weightPrefix_.begin());
            RegionState &region =
                regions_[std::min(idx, regions_.size() - 1)];
            const Vpn vpn = sampleRegionVpn(region, now);
            const AccessKind kind =
                rng_.nextBool(region.spec.storeShare) ? AccessKind::Store
                                                      : AccessKind::Load;
            duration += issueAccess(kernel, vpn, kind, result);
        }
    }
    result.ops = ops;
    result.durationNs = std::max(duration, 1.0);
    return result;
}

} // namespace tpp
