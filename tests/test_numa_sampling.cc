/**
 * @file
 * Unit tests for NUMA-hint sampling and the hint-fault plumbing.
 */

#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

/** Policy that records hint faults it receives. */
class RecordingPolicy : public PlacementPolicy
{
  public:
    std::string name() const override { return "recording"; }

    double
    onHintFault(Pfn pfn, NodeId task_nid) override
    {
        faults.push_back({pfn, task_nid});
        return 123.0;
    }

    std::vector<std::pair<Pfn, NodeId>> faults;
};

TEST(NumaSampling, SampleSetsProtNone)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    const std::uint64_t sampled = m.kernel.sampleNode(0, 4);
    EXPECT_EQ(sampled, 4u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaPteUpdates), 4u);
    int prot_none = 0;
    for (int i = 0; i < 8; ++i)
        prot_none += m.pte(base + i).protNone();
    EXPECT_EQ(prot_none, 4);
}

TEST(NumaSampling, SampleSkipsFreeFrames)
{
    TestMachine m(32, 32);
    m.populate(4, PageType::Anon);
    // Asking for more than mapped yields only the mapped count.
    EXPECT_EQ(m.kernel.sampleNode(0, 100), 4u);
}

TEST(NumaSampling, CursorWrapsAround)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    EXPECT_EQ(m.kernel.sampleNode(0, 5), 5u);
    EXPECT_EQ(m.kernel.sampleNode(0, 5), 3u); // only 3 unsampled left
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(m.pte(base + i).protNone());
}

TEST(NumaSampling, AccessTriggersHintFault)
{
    auto policy = std::make_unique<RecordingPolicy>();
    RecordingPolicy *rec = policy.get();
    TestMachine m(1024, 1024, std::move(policy));
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.sampleNode(0, 1);
    ASSERT_TRUE(m.pte(base).protNone());

    const AccessResult res =
        m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_TRUE(res.hintFault);
    EXPECT_FALSE(m.pte(base).protNone());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaults), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaultsLocal), 1u);
    ASSERT_EQ(rec->faults.size(), 1u);
    EXPECT_EQ(rec->faults[0].first, m.pte(base).pfn);
    // Policy latency contribution shows up in the access.
    EXPECT_GT(res.latencyNs, 123.0);
}

TEST(NumaSampling, HintFaultFiresOnce)
{
    auto policy = std::make_unique<RecordingPolicy>();
    RecordingPolicy *rec = policy.get();
    TestMachine m(1024, 1024, std::move(policy));
    const Vpn base = m.populate(1, PageType::Anon);
    m.kernel.sampleNode(0, 1);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(rec->faults.size(), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaults), 1u);
}

TEST(NumaSampling, RemoteFaultNotCountedLocal)
{
    auto policy = std::make_unique<RecordingPolicy>();
    TestMachine m(1024, 1024, std::move(policy));
    // Populate on the CXL node by faulting from a task there.
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    ASSERT_EQ(m.frameOf(base).nid, m.cxl());
    m.kernel.sampleNode(m.cxl(), 1);
    // Task on node 0 touches the remote page.
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaults), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaHintFaultsLocal), 0u);
}

TEST(NumaSampling, ResampleAfterClearWorks)
{
    TestMachine m;
    const Vpn base = m.populate(1, PageType::Anon);
    EXPECT_EQ(m.kernel.sampleNode(0, 8), 1u);
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_EQ(m.kernel.sampleNode(0, 8), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::NumaPteUpdates), 2u);
}

} // namespace
} // namespace tpp
