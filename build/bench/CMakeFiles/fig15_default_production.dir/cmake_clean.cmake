file(REMOVE_RECURSE
  "CMakeFiles/fig15_default_production.dir/fig15_default_production.cpp.o"
  "CMakeFiles/fig15_default_production.dir/fig15_default_production.cpp.o.d"
  "fig15_default_production"
  "fig15_default_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_default_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
