/**
 * @file
 * Table 1: page-type-aware allocation (§5.4, §6.3).
 *
 * TPP with the cache-to-CXL allocation preference enabled: file and
 * tmpfs pages are initially placed on the CXL node and only promoted if
 * they prove hot, leaving the local node to anons.
 *
 * Paper rows: Web 2:1 -> 97 % local traffic @ 99.5 %; Cache1 1:4 ->
 * 85 % local @ 99.8 %; Cache2 1:4 -> 72 % local @ 98.5 %.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Table 1", "page-type-aware allocation (TPP + "
                             "cache-to-CXL preference)");

    struct Case {
        const char *workload;
        const char *ratio;
    };
    const std::vector<Case> cases = {{"web", "2:1"}, {"cache1", "1:4"},
                                     {"cache2", "1:4"}};

    TextTable table({"application", "config", "local traffic",
                     "cxl traffic", "perf w.r.t. all-local"});

    // Per case: the all-local baseline then the type-aware TPP run.
    std::vector<ExperimentConfig> cfgs;
    for (const Case &c : cases) {
        ExperimentConfig base = bench::makeConfig(opt);
        base.workload = c.workload;
        base.allLocal = true;
        // The baseline is the canned all-local box even when --topology
        // reshapes the comparison run.
        base.topology.clear();
        base.policy = "linux";
        cfgs.push_back(base);

        ExperimentConfig cfg = base;
        cfg.allLocal = false;
        cfg.topology = opt.topologySpec;
        cfg.localFraction = parseRatio(c.ratio);
        cfg.policy = "tpp";
        cfg.tpp.typeAwareAllocation = true;
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    for (std::size_t k = 0; k < cases.size(); ++k) {
        const ExperimentResult &baseline = results[k * 2];
        const ExperimentResult &res = results[k * 2 + 1];
        table.addRow({cases[k].workload, cases[k].ratio,
                      TextTable::pct(res.localTrafficShare),
                      TextTable::pct(res.cxlTrafficShare),
                      TextTable::pct(res.throughput /
                                     baseline.throughput)});
    }
    table.print();
    std::printf("\npaper: Web 2:1 97%%/3%% @99.5%%; Cache1 1:4 85%%/15%% "
                "@99.8%%; Cache2 1:4 72%%/28%% @98.5%%\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
