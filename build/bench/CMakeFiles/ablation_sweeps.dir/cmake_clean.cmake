file(REMOVE_RECURSE
  "CMakeFiles/ablation_sweeps.dir/ablation_sweeps.cpp.o"
  "CMakeFiles/ablation_sweeps.dir/ablation_sweeps.cpp.o.d"
  "ablation_sweeps"
  "ablation_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
