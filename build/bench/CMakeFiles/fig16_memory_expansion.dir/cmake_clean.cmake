file(REMOVE_RECURSE
  "CMakeFiles/fig16_memory_expansion.dir/fig16_memory_expansion.cpp.o"
  "CMakeFiles/fig16_memory_expansion.dir/fig16_memory_expansion.cpp.o.d"
  "fig16_memory_expansion"
  "fig16_memory_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_memory_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
