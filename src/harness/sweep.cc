#include "harness/sweep.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <sstream>

#include "harness/thread_pool.hh"
#include "sim/logging.hh"

namespace tpp {

namespace {

/** Append one key=value field to the canonical serialisation. */
template <typename T>
void
field(std::ostringstream &out, const char *name, const T &value)
{
    out << name << '=' << value << ';';
}

void
fieldDouble(std::ostringstream &out, const char *name, double value)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out << name << '=' << buf << ';';
}

} // namespace

std::string
canonicalKey(const ExperimentConfig &cfg)
{
    // Serialise EVERY field that influences a run. When a field is
    // added to ExperimentConfig (or to a parameter block in
    // mm/policy_params.hh), it must be appended here — test_sweep.cc
    // guards the ones that exist today.
    std::ostringstream out;
    field(out, "workload", cfg.workload);
    field(out, "wssPages", cfg.wssPages);
    field(out, "allLocal", cfg.allLocal);
    field(out, "topology", cfg.topology);
    fieldDouble(out, "localFraction", cfg.localFraction);
    fieldDouble(out, "capacityHeadroom", cfg.capacityHeadroom);
    field(out, "policy", cfg.policy);
    out << "sysctls=[";
    for (const auto &[name, value] : cfg.sysctls)
        out << name << '=' << value << ',';
    out << "];";
    field(out, "runUntil", cfg.runUntil);
    field(out, "measureFrom", cfg.measureFrom);
    field(out, "sampleEvery", cfg.sampleEvery);
    field(out, "seed", cfg.seed);
    // Tracing never changes simulation results, but it does change what
    // a result *carries* (trace records, series) — two configs that
    // differ only in telemetry must not share a memo slot.
    field(out, "traceEnabled", cfg.traceEnabled);
    field(out, "traceCapacity", cfg.traceCapacity);
    field(out, "sampleSeries", cfg.sampleSeries);
    field(out, "samplePeriod", cfg.samplePeriod);
    field(out, "withChameleon", cfg.withChameleon);
    field(out, "cham.samplePeriod", cfg.chameleon.samplePeriod);
    field(out, "cham.numCoreGroups", cfg.chameleon.numCoreGroups);
    field(out, "cham.miniInterval", cfg.chameleon.miniInterval);
    field(out, "cham.interval", cfg.chameleon.interval);
    field(out, "cham.dutyCycle", cfg.chameleon.dutyCycle);
    field(out, "cham.bitsPerInterval", cfg.chameleon.bitsPerInterval);
    field(out, "cham.frequentThreshold", cfg.chameleon.frequentThreshold);
    field(out, "mig.async", cfg.migration.async);
    field(out, "mig.transactional", cfg.migration.transactional);
    field(out, "mig.bandwidthCost", cfg.migration.bandwidthCost);
    field(out, "mig.queueDepth", cfg.migration.queueDepth);
    field(out, "mig.drainBatch", cfg.migration.drainBatch);
    field(out, "mig.drainPeriod", cfg.migration.drainPeriod);
    fieldDouble(out, "mig.rateLimitMBps", cfg.migration.rateLimitMBps);
    field(out, "tpp.mode", static_cast<int>(cfg.tpp.mode));
    fieldDouble(out, "tpp.demoteScaleFactor", cfg.tpp.demoteScaleFactor);
    field(out, "tpp.decoupleWatermarks", cfg.tpp.decoupleWatermarks);
    field(out, "tpp.demoteChain", cfg.tpp.demoteChain);
    field(out, "tpp.activeLruFilter", cfg.tpp.activeLruFilter);
    field(out, "tpp.promotionIgnoresWatermark",
          cfg.tpp.promotionIgnoresWatermark);
    field(out, "tpp.typeAwareAllocation", cfg.tpp.typeAwareAllocation);
    field(out, "tpp.scanPeriod", cfg.tpp.scanPeriod);
    field(out, "tpp.scanBatch", cfg.tpp.scanBatch);
    fieldDouble(out, "tpp.promoteRateLimitMBps",
                cfg.tpp.promoteRateLimitMBps);
    field(out, "nb.scanPeriod", cfg.numaBalancing.scanPeriod);
    field(out, "nb.scanBatch", cfg.numaBalancing.scanBatch);
    field(out, "at.scanPeriod", cfg.autoTiering.scanPeriod);
    field(out, "at.scanBatch", cfg.autoTiering.scanBatch);
    field(out, "at.hotWindow", cfg.autoTiering.hotWindow);
    field(out, "at.hotThreshold",
          static_cast<unsigned>(cfg.autoTiering.hotThreshold));
    field(out, "at.promotionReserve", cfg.autoTiering.promotionReserve);
    field(out, "hot.source", cfg.hotness.source);
    field(out, "hot.epochPeriod", cfg.hotness.epochPeriod);
    field(out, "hot.promoteBatch", cfg.hotness.promoteBatch);
    field(out, "hot.hotWindow", cfg.hotness.hotWindow);
    field(out, "hot.hotThreshold", cfg.hotness.hotThreshold);
    field(out, "hot.counterTableSize", cfg.hotness.counterTableSize);
    field(out, "hot.decayHalfLife", cfg.hotness.decayHalfLife);
    fieldDouble(out, "hot.targetQuantile", cfg.hotness.targetQuantile);
    // Like telemetry: recall measurement never perturbs the simulation,
    // but the result carries extra fields, so no shared memo slot.
    field(out, "measureHotness", cfg.measureHotness);
    fieldDouble(out, "ol.qps", cfg.openLoop.qps);
    field(out, "ol.arrival", cfg.openLoop.arrival);
    fieldDouble(out, "ol.slo", cfg.openLoop.sloP99Us);
    fieldDouble(out, "ol.burstFactor", cfg.openLoop.burstFactor);
    fieldDouble(out, "ol.burstOnFraction", cfg.openLoop.burstOnFraction);
    field(out, "ol.burstPeriod", cfg.openLoop.burstPeriod);
    field(out, "ol.diurnalPeriod", cfg.openLoop.diurnalPeriod);
    fieldDouble(out, "ol.diurnalAmplitude", cfg.openLoop.diurnalAmplitude);
    out << "tenants=[";
    for (const TenantSpec &tenant : cfg.tenants) {
        out << tenant.workload << ':' << tenant.wssPages << ':';
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", tenant.lowFraction);
        out << buf << ':';
        std::snprintf(buf, sizeof(buf), "%.17g", tenant.budgetMBps);
        out << buf << ':' << tenant.placement << ':';
        std::snprintf(buf, sizeof(buf), "%.17g", tenant.openLoop.qps);
        out << buf << ':' << tenant.openLoop.arrival << ':';
        std::snprintf(buf, sizeof(buf), "%.17g",
                      tenant.openLoop.sloP99Us);
        out << buf << ',';
    }
    out << "];";
    return out.str();
}

ExperimentConfig
allLocalTwin(const ExperimentConfig &cfg)
{
    ExperimentConfig twin = cfg;
    twin.allLocal = true;
    // The reference machine is a single local node sized for the
    // workload, whatever tier graph the real run described.
    twin.topology.clear();
    twin.policy = "linux";
    twin.withChameleon = false;
    twin.sysctls.clear();
    // The baseline is a reference machine — never carries telemetry, so
    // all figures comparing against it share one cached run.
    twin.traceEnabled = false;
    twin.traceCapacity = TraceBuffer::kDefaultCapacity;
    twin.sampleSeries = false;
    twin.samplePeriod = 0;
    twin.measureHotness = false;
    // The baseline machine has no co-located tenants: the metric is
    // "what would this workload do with all-local memory to itself".
    twin.tenants.clear();
    // And it runs closed-loop: "relative to all-local" is a throughput
    // metric, so the baseline saturates rather than pacing arrivals.
    twin.openLoop = OpenLoopSpec{};
    return twin;
}

/**
 * One cache slot. `ready` flips exactly once, under the cache mutex;
 * later requesters for an in-flight key wait on `cv` instead of
 * re-simulating.
 */
struct BaselineCache::Entry {
    std::condition_variable cv;
    bool ready = false;
    ExperimentResult result;
};

BaselineCache &
BaselineCache::instance()
{
    static BaselineCache cache;
    return cache;
}

ExperimentResult
BaselineCache::getOrRun(const ExperimentConfig &cfg)
{
    const std::string key = canonicalKey(cfg);
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it == entries_.end()) {
            entry = std::make_shared<Entry>();
            entries_.emplace(key, entry);
            owner = true;
            misses_++;
        } else {
            entry = it->second;
            hits_++;
        }
        if (!owner) {
            entry->cv.wait(lock, [&] { return entry->ready; });
            return entry->result;
        }
    }
    // Simulate outside the lock so unrelated keys proceed in parallel.
    ExperimentResult result = runExperiment(cfg);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        entry->result = std::move(result);
        entry->ready = true;
    }
    entry->cv.notify_all();
    return entry->result;
}

std::uint64_t
BaselineCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
BaselineCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
BaselineCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts)
{
    if (opts_.jobs == 0)
        opts_.jobs = ThreadPool::hardwareConcurrency();
}

ExperimentResult
SweepRunner::runCached(const ExperimentConfig &cfg) const
{
    // A sweep rejects one invalid config with a diagnostic instead of
    // taking down the other N-1 (runExperiment would fatal).
    if (const SpecResult<void> valid = cfg.validate(); !valid) {
        ExperimentResult rejected;
        rejected.workload = cfg.workload;
        if (!cfg.tenants.empty()) {
            rejected.workload.clear();
            for (const TenantSpec &tenant : cfg.tenants) {
                if (!rejected.workload.empty())
                    rejected.workload += '+';
                rejected.workload += tenant.workload;
            }
        }
        rejected.policy = cfg.policy;
        rejected.error = valid.error().render();
        std::fprintf(stderr, "sweep: rejected %s/%s: %s\n",
                     cfg.workload.c_str(), cfg.policy.c_str(),
                     rejected.error.c_str());
        return rejected;
    }
    // All-local runs are the shared baselines every figure divides by;
    // funnel them through the process-wide cache.
    if (cfg.allLocal)
        return BaselineCache::instance().getOrRun(cfg);
    return runExperiment(cfg);
}

ExperimentResult
SweepRunner::runOne(const ExperimentConfig &cfg)
{
    return runCached(cfg);
}

std::vector<ExperimentResult>
SweepRunner::run(const std::vector<ExperimentConfig> &configs)
{
    const std::size_t n = configs.size();
    std::vector<ExperimentResult> results(n);
    if (n == 0)
        return results;

    // Within-sweep memoization: map each config to the first index with
    // the same canonical key; only "leader" indices simulate.
    std::vector<std::size_t> leader(n);
    std::vector<std::size_t> leaders;
    leaders.reserve(n);
    {
        std::map<std::string, std::size_t> first;
        for (std::size_t i = 0; i < n; ++i) {
            if (!opts_.memoize) {
                leader[i] = i;
                leaders.push_back(i);
                continue;
            }
            const auto [it, inserted] =
                first.emplace(canonicalKey(configs[i]), i);
            leader[i] = it->second;
            if (inserted)
                leaders.push_back(i);
        }
    }

    const unsigned jobs = static_cast<unsigned>(std::min<std::size_t>(
        opts_.jobs, leaders.size()));

    std::mutex progress_mutex;
    std::size_t completed = 0;
    auto report = [&](const ExperimentConfig &cfg) {
        if (!opts_.progress)
            return;
        std::lock_guard<std::mutex> lock(progress_mutex);
        completed++;
        std::fprintf(stderr, "\r[sweep %zu/%zu] %s/%s%s", completed,
                     leaders.size(), cfg.workload.c_str(),
                     cfg.policy.c_str(),
                     completed == leaders.size() ? "\n" : " ");
        std::fflush(stderr);
    };

    if (jobs <= 1) {
        // Serial path: same code path runExperiment loops always took.
        for (std::size_t i : leaders) {
            results[i] = runCached(configs[i]);
            report(configs[i]);
        }
    } else {
        ThreadPool pool(jobs);
        for (std::size_t i : leaders) {
            pool.submit([&, i] {
                results[i] = runCached(configs[i]);
                report(configs[i]);
            });
        }
        pool.wait();
    }

    // Fill the duplicates from their leaders.
    for (std::size_t i = 0; i < n; ++i)
        if (leader[i] != i)
            results[i] = results[leader[i]];
    return results;
}

} // namespace tpp
