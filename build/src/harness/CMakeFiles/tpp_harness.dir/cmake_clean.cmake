file(REMOVE_RECURSE
  "CMakeFiles/tpp_harness.dir/experiment.cc.o"
  "CMakeFiles/tpp_harness.dir/experiment.cc.o.d"
  "CMakeFiles/tpp_harness.dir/export.cc.o"
  "CMakeFiles/tpp_harness.dir/export.cc.o.d"
  "CMakeFiles/tpp_harness.dir/table.cc.o"
  "CMakeFiles/tpp_harness.dir/table.cc.o.d"
  "libtpp_harness.a"
  "libtpp_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
