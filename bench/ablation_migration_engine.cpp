/**
 * @file
 * MigrationEngine ablation: what does making migration asynchronous,
 * transactional and bandwidth-priced buy (or cost), and does the
 * token-bucket admission controller actually bound migration traffic?
 *
 * Two sweeps on the stress case (Cache1, 1:4, TPP):
 *
 *  1. Engine-mode ladder — sync-compat (the pre-engine kernel,
 *     bit-identical), async queueing only, + transactional copy,
 *     + bandwidth-coupled copy cost (= MigrationConfig::asyncEngine()).
 *  2. Admission sweep — vm.migration_rate_limit_mbps from unlimited
 *     down to a starved budget, async engine; the deferred counter
 *     must rise and successful migrations fall monotonically as the
 *     budget shrinks.
 *
 * Extra flag beyond the shared bench options:
 *
 *   --mode sync|async|all   which sweep(s) to run (default all).
 *                           `sync` and `async` are the CI smoke
 *                           entries: one config each, small and fast.
 */

#include "bench_common.hh"

namespace {

using namespace tpp;

ExperimentConfig
baseConfig(const bench::BenchOptions &opt)
{
    ExperimentConfig cfg = bench::makeConfig(opt);
    cfg.workload = "cache1";
    cfg.localFraction = parseRatio("1:4");
    cfg.policy = "tpp";
    return cfg;
}

struct EngineMode {
    MigrationConfig migration;
    const char *label;
};

std::vector<EngineMode>
engineLadder()
{
    std::vector<EngineMode> modes;
    modes.push_back({MigrationConfig::compat(), "sync-compat"});

    MigrationConfig queued;
    queued.async = true;
    queued.queueDepth = 512;
    modes.push_back({queued, "async queueing"});

    MigrationConfig txn = queued;
    txn.transactional = true;
    modes.push_back({txn, "+ transactional"});

    modes.push_back({MigrationConfig::asyncEngine(), "+ bandwidth cost"});
    return modes;
}

void
printEngineTable(const std::vector<EngineMode> &modes,
                 const std::vector<ExperimentResult> &results)
{
    TextTable table({"engine mode", "tput (ops/s)", "local traffic",
                     "migrated", "queued", "deferred", "busy aborts"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
        const ExperimentResult &res = results[i];
        table.addRow(
            {modes[i].label, TextTable::num(res.throughput, 0),
             TextTable::pct(res.localTrafficShare),
             TextTable::count(res.vmstat.get(Vm::PgMigrateSuccess)),
             TextTable::count(res.vmstat.get(Vm::PgMigrateQueued)),
             TextTable::count(res.vmstat.get(Vm::PgMigrateDeferred)),
             TextTable::count(res.vmstat.get(Vm::PgMigrateFailBusy))});
    }
    table.print();
    std::printf("\n");
}

void
printAdmissionTable(const std::vector<double> &limits,
                    const std::vector<ExperimentResult> &results)
{
    TextTable table({"rate limit (MB/s)", "tput (ops/s)", "migrated",
                     "deferred", "deferred share"});
    for (std::size_t i = 0; i < limits.size(); ++i) {
        const ExperimentResult &res = results[i];
        const std::uint64_t moved =
            res.vmstat.get(Vm::PgMigrateSuccess);
        const std::uint64_t deferred =
            res.vmstat.get(Vm::PgMigrateDeferred);
        const std::uint64_t asked = moved + deferred;
        table.addRow(
            {limits[i] == 0.0 ? std::string("unlimited")
                              : TextTable::num(limits[i], 0),
             TextTable::num(res.throughput, 0),
             TextTable::count(moved), TextTable::count(deferred),
             asked ? TextTable::pct(static_cast<double>(deferred) /
                                    static_cast<double>(asked))
                   : std::string("-")});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;

    // Peel off --mode before the shared parser sees the argv.
    std::string mode = "all";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--mode") {
            if (i + 1 >= argc)
                tpp_fatal("missing value after --mode");
            mode = argv[++i];
            if (mode != "sync" && mode != "async" && mode != "all")
                tpp_fatal("--mode expects sync|async|all, got '%s'",
                          mode.c_str());
        } else {
            rest.push_back(argv[i]);
        }
    }
    const bench::BenchOptions opt = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("Ablation: MigrationEngine",
                  "async/transactional migration + admission control "
                  "(Cache1, 1:4, TPP)");

    std::vector<EngineMode> modes = engineLadder();
    if (mode == "sync")
        modes = {modes.front()};
    else if (mode == "async")
        modes = {modes.back()};

    const std::vector<double> limits = {0.0, 512.0, 128.0, 32.0};

    std::vector<ExperimentConfig> cfgs;
    for (const EngineMode &m : modes) {
        ExperimentConfig cfg = baseConfig(opt);
        cfg.migration = m.migration;
        cfgs.push_back(cfg);
    }
    if (mode == "all") {
        for (double limit : limits) {
            ExperimentConfig cfg = baseConfig(opt);
            cfg.migration = MigrationConfig::asyncEngine();
            cfg.migration.rateLimitMBps = limit;
            cfgs.push_back(cfg);
        }
    }

    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    std::printf("-- engine mode ladder --\n");
    printEngineTable(modes,
                     {results.begin(), results.begin() + modes.size()});

    if (mode == "all") {
        std::printf("-- admission control (async engine) --\n");
        std::vector<ExperimentResult> tail(
            results.begin() + modes.size(), results.end());
        printAdmissionTable(limits, tail);

        // The headline claim: a shrinking budget monotonically defers
        // more and moves less. Loud failure beats a silent table.
        for (std::size_t i = 1; i < limits.size(); ++i) {
            const auto &prev = tail[i - 1].vmstat;
            const auto &cur = tail[i].vmstat;
            if (cur.get(Vm::PgMigrateSuccess) >
                    prev.get(Vm::PgMigrateSuccess) ||
                cur.get(Vm::PgMigrateDeferred) <
                    prev.get(Vm::PgMigrateDeferred)) {
                std::printf("WARNING: admission control not monotone "
                            "between %.0f and %.0f MB/s\n",
                            limits[i - 1], limits[i]);
            }
        }
    }

    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
