#include "harness/thread_pool.hh"

#include <algorithm>
#include <utility>

namespace tpp {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = std::max(1u, threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock,
                  [this] { return queue_.empty() && running_ == 0; });
    if (firstError_) {
        std::exception_ptr err = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(err);
    }
}

unsigned
ThreadPool::hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workReady_.wait(lock,
                        [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) // stopping_ and drained
            return;
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        running_++;
        lock.unlock();
        try {
            job();
        } catch (...) {
            lock.lock();
            if (!firstError_)
                firstError_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        running_--;
        if (queue_.empty() && running_ == 0)
            allIdle_.notify_all();
    }
}

} // namespace tpp
