file(REMOVE_RECURSE
  "CMakeFiles/fig09_usage_over_time.dir/fig09_usage_over_time.cpp.o"
  "CMakeFiles/fig09_usage_over_time.dir/fig09_usage_over_time.cpp.o.d"
  "fig09_usage_over_time"
  "fig09_usage_over_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_usage_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
