/**
 * @file
 * Page reclaim: the background kswapd daemon, direct reclaim, active
 * list aging with second-chance activation, and the per-page reclaim
 * step that either demotes (TPP mode), drops a clean file page, or
 * writes to swap (§4.1, §5.1, §5.2 of the paper).
 *
 * Reclaim *rate* emerges from per-page costs: a swap write is ~40x the
 * cost of a CXL migration, which is exactly the asymmetry the paper
 * measures ("44x slower reclamation rate than TPP").
 */

#include <algorithm>

#include "mm/kernel.hh"
#include "mm/migration/migration_engine.hh"
#include "sim/logging.hh"

namespace tpp {

namespace {
/** Pages reclaimed per kswapd scheduling chunk. */
constexpr std::uint64_t kKswapdBatch = 32;
/** Scan budget multiplier: give up after this many scans per target. */
constexpr std::uint64_t kScanBudgetFactor = 8;
/** Anon/file scan weighting, mimicking swappiness = 60. */
constexpr std::uint64_t kAnonWeight = 60;
constexpr std::uint64_t kFileWeight = 140;
} // namespace

ReclaimMarks
PlacementPolicy::kswapdMarks(NodeId nid) const
{
    // Default Linux: coupled to the allocation watermarks — wake below
    // low, reclaim until high. This is the coupling TPP breaks.
    const Watermarks &wm = kernel_->mem().node(nid).watermarks();
    return ReclaimMarks{wm.low, wm.high};
}

void
Kernel::wakeKswapd(NodeId nid)
{
    KswapdState &state = kswapd_[nid];
    if (state.running)
        return;
    state.running = true;
    trace_.emit(TraceEvent::KswapdWake, eq_.now(), nid,
                static_cast<std::uint32_t>(mem_.node(nid).freePages()));
    state.event = eq_.scheduleAfter(
        static_cast<Tick>(costs_.kswapdWakeup),
        [this, nid] { kswapdChunk(nid); });
}

bool
Kernel::kswapdActive(NodeId nid) const
{
    return kswapd_[nid].running;
}

void
Kernel::kswapdChunk(NodeId nid)
{
    KswapdState &state = kswapd_[nid];
    const ReclaimMarks marks = policy_->kswapdMarks(nid);
    if (mem_.node(nid).freePages() >= marks.target) {
        state.running = false;
        trace_.emit(TraceEvent::KswapdSleep, eq_.now(), nid,
                    static_cast<std::uint32_t>(
                        mem_.node(nid).freePages()));
        return;
    }
    auto [reclaimed, cost] = shrinkNode(nid, kKswapdBatch, true);
    if (reclaimed == 0) {
        // Nothing reclaimable right now; sleep and let allocations wake
        // us again rather than spinning.
        state.running = false;
        trace_.emit(TraceEvent::KswapdSleep, eq_.now(), nid,
                    static_cast<std::uint32_t>(
                        mem_.node(nid).freePages()));
        return;
    }
    const Tick delay =
        std::max<Tick>(static_cast<Tick>(cost), 1 * kMicrosecond);
    state.event =
        eq_.scheduleAfter(delay, [this, nid] { kswapdChunk(nid); });
}

std::pair<std::uint64_t, double>
Kernel::directReclaim(NodeId nid, std::uint64_t nr_pages)
{
    const auto result = shrinkNode(nid, nr_pages, false);
    trace_.emit(TraceEvent::DirectReclaim, eq_.now(), nid,
                static_cast<std::uint32_t>(result.first));
    return result;
}

bool
Kernel::inactiveIsLow(NodeId nid, PageType type) const
{
    const LruSet &lru = lrus_[nid];
    return lru.count(lruListFor(type, false)) <
           lru.count(lruListFor(type, true));
}

void
Kernel::shrinkActiveList(NodeId nid, PageType type, std::uint64_t batch,
                         double *cost_ns)
{
    LruSet &lru = lrus_[nid];
    const LruListId active = lruListFor(type, true);
    for (std::uint64_t i = 0; i < batch; ++i) {
        const Pfn pfn = lru.tail(active);
        if (pfn == kInvalidPfn)
            break;
        PageFrame &frame = mem_.frame(pfn);
        // Kernel shrink_active_list clears the referenced state and moves
        // the page to the inactive list; the second chance happens there.
        frame.clearFlag(PageFrame::FlagReferenced);
        lru.deactivate(pfn);
        vmstat_.inc(Vm::PgDeactivate);
        vmstat_.inc(Vm::PgRefill);
        *cost_ns += costs_.scanPage;
    }
}

void
Kernel::noteReclaimBreach(Asid asid, NodeId nid)
{
    const CgroupId cgid = memcg_.cgroupOf(asid);
    memcg_.cgroup(cgid).stats.reclaimLow++;
    vmstat_.inc(Vm::MemcgReclaimLow);
    trace_.emit(TraceEvent::MemcgEvent, eq_.now(), nid,
                memcgEventAux(cgid, MemcgEventKind::LowBreach));
}

std::pair<std::uint64_t, double>
Kernel::shrinkNode(NodeId nid, std::uint64_t nr_to_reclaim, bool background)
{
    // Two-pass reclaim in the style of memory.low: the first pass skips
    // pages whose cgroup sits at or under its protection floor on this
    // node; only when that pass finds nothing reclaimable AND protected
    // pages were what stood in the way does a second pass ignore the
    // floors (counting each breach). With no floors configured the
    // wrapper degenerates to the single unprotected pass and is
    // bit-identical to the pre-memcg reclaim.
    if (!memcg_.protectionActive())
        return shrinkNodePass(nid, nr_to_reclaim, background,
                              /*honor_protection=*/false,
                              /*count_breach=*/false, nullptr);

    std::uint64_t skips = 0;
    auto [reclaimed, cost] =
        shrinkNodePass(nid, nr_to_reclaim, background,
                       /*honor_protection=*/true,
                       /*count_breach=*/false, &skips);
    if (reclaimed == 0 && skips > 0) {
        auto [breached, breach_cost] =
            shrinkNodePass(nid, nr_to_reclaim, background,
                           /*honor_protection=*/false,
                           /*count_breach=*/true, nullptr);
        reclaimed += breached;
        cost += breach_cost;
    }
    return {reclaimed, cost};
}

std::pair<std::uint64_t, double>
Kernel::shrinkNodePass(NodeId nid, std::uint64_t nr_to_reclaim,
                       bool background, bool honor_protection,
                       bool count_breach,
                       std::uint64_t *protected_skips)
{
    LruSet &lru = lrus_[nid];
    const bool demote_mode = policy_->reclaimByDemotion(nid);
    const Vm scan_counter =
        background ? Vm::PgScanKswapd : Vm::PgScanDirect;
    const Vm steal_counter =
        background ? Vm::PgStealKswapd : Vm::PgStealDirect;

    std::uint64_t reclaimed = 0;
    double cost = 0.0;
    std::uint64_t scanned = 0;
    const std::uint64_t scan_budget = nr_to_reclaim * kScanBudgetFactor;

    while (reclaimed < nr_to_reclaim && scanned < scan_budget) {
        // Age active lists while their inactive partners are short.
        for (PageType type : {PageType::File, PageType::Anon}) {
            if (inactiveIsLow(nid, type))
                shrinkActiveList(nid, type, 8, &cost);
        }

        // Pick the inactive list to scan, weighted like swappiness=60.
        const std::uint64_t file_w =
            lru.count(LruListId::InactiveFile) * kFileWeight;
        const std::uint64_t anon_w =
            lru.count(LruListId::InactiveAnon) * kAnonWeight;
        LruListId list;
        if (file_w == 0 && anon_w == 0)
            break;
        list = (file_w >= anon_w) ? LruListId::InactiveFile
                                  : LruListId::InactiveAnon;

        const Pfn pfn = lru.tail(list);
        if (pfn == kInvalidPfn)
            break;
        scanned++;
        cost += costs_.scanPage;
        vmstat_.inc(scan_counter);

        PageFrame &frame = mem_.frame(pfn);
        const Asid owner_asid = mem_.frameCold(pfn).ownerAsid;
        const bool under_floor =
            (honor_protection || count_breach) &&
            memcg_.protectedOnNode(owner_asid, nid);
        if (honor_protection && under_floor) {
            // The owning cgroup is at or below its floor on this node:
            // rotate the page away untouched and remember that
            // protection — not emptiness — is why we made no progress.
            const CgroupId cgid = memcg_.cgroupOf(owner_asid);
            memcg_.cgroup(cgid).stats.reclaimProtected++;
            vmstat_.inc(Vm::MemcgReclaimProtected);
            trace_.emit(TraceEvent::MemcgEvent, eq_.now(), nid,
                        memcgEventAux(cgid,
                                      MemcgEventKind::ProtectedSkip));
            lru.rotate(pfn);
            if (protected_skips)
                (*protected_skips)++;
            continue;
        }

        if (frame.referenced()) {
            // Second chance: a page touched since the last scan is
            // working-set; activate instead of reclaiming.
            frame.clearFlag(PageFrame::FlagReferenced);
            lru.activate(pfn);
            vmstat_.inc(Vm::PgActivate);
            continue;
        }

        // owner_asid was captured above: the frame's owner is gone once
        // the page is freed, but a pass-2 breach must still be billed to
        // its cgroup.
        if (demote_mode) {
            // Background reclaim may queue the demotion on the engine;
            // direct reclaim always demotes synchronously (the
            // allocating task needs the page freed now).
            const MigrateResult res = migration_->demote(
                pfn, background ? MigrateUrgency::Background
                                : MigrateUrgency::Direct);
            cost += res.latencyNs;
            if (res.freed) {
                reclaimed++;
                vmstat_.inc(steal_counter);
                if (count_breach && under_floor)
                    noteReclaimBreach(owner_asid, nid);
            } else if (res.outcome != MigrateOutcome::Queued) {
                // Deferred or failed: the page is still on the LRU;
                // rotate away so the scan makes progress. A queued page
                // already left the LRU for the migration queue.
                lru.rotate(pfn);
            }
            continue;
        }

        auto [freed, page_cost] = reclaimOnePage(pfn, false);
        cost += page_cost;
        if (freed) {
            reclaimed++;
            vmstat_.inc(steal_counter);
            if (count_breach && under_floor)
                noteReclaimBreach(owner_asid, nid);
        } else {
            // Unreclaimable right now (e.g. swap full): rotate away so
            // the scan makes progress.
            lru.rotate(pfn);
        }
    }
    return {reclaimed, cost};
}

std::pair<bool, double>
Kernel::reclaimOnePage(Pfn pfn, bool demote_mode)
{
    if (demote_mode)
        return demotePage(pfn);

    PageFrame &frame = mem_.frame(pfn);
    Pte &pte = pteOf(frame);

    if (frame.type == PageType::File && pte.diskBacked() &&
        !frame.dirty()) {
        // Clean page-cache page: unmap and drop; a refault re-reads it
        // from the backing store. Leave a shadow entry for workingset
        // detection.
        freeFrame(pfn);
        pte.evictedAt = eq_.now();
        return {true, costs_.unmapCleanFile};
    }

    if (frame.type == PageType::File && pte.diskBacked() &&
        frame.dirty()) {
        // Dirty page-cache page: write back, then drop.
        freeFrame(pfn);
        pte.evictedAt = eq_.now();
        return {true, costs_.swapOutPage};
    }

    // Anon or tmpfs: page out to the swap device.
    const PageFrameCold &cold = mem_.frameCold(pfn);
    const SwapSlot slot =
        mem_.swapDevice().pageOut(cold.ownerAsid, cold.ownerVpn);
    if (slot == kInvalidSwapSlot)
        return {false, 0.0};
    trace_.emitPage(TraceEvent::SwapOut, eq_.now(), frame.nid,
                    frame.type, pfn, cold.ownerAsid, cold.ownerVpn);
    freeFrame(pfn);
    pte.swapSlot = slot;
    pte.set(Pte::BitSwapped);
    pte.evictedAt = eq_.now();
    vmstat_.inc(Vm::PswpOut);
    return {true, costs_.swapOutPage};
}

} // namespace tpp
