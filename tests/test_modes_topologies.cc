/**
 * @file
 * Tests for NUMA-mode resolution (§5.3 auto-downgrade), the dual-socket
 * topology, workingset refault detection, export writers, and trace
 * record/replay round-trips.
 */

#include <sstream>

#include "core/tpp_policy.hh"
#include "harness/export.hh"
#include "test_common.hh"
#include "workloads/trace_io.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(NumaMode, AutoDetectPicksTieredWithCxl)
{
    TestMachine m(256, 256, std::make_unique<TppPolicy>());
    const auto &policy = static_cast<TppPolicy &>(m.kernel.policy());
    EXPECT_EQ(policy.effectiveMode(), NumaMode::Tiered);
}

TEST(NumaMode, AutoDetectPicksClassicWithoutCxl)
{
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::allLocal(256));
    Kernel kernel(mem, eq, std::make_unique<TppPolicy>());
    const auto &policy = static_cast<TppPolicy &>(kernel.policy());
    EXPECT_EQ(policy.effectiveMode(), NumaMode::Classic);
}

TEST(NumaMode, ClassicDowngradesOnSingleLocalNode)
{
    // §5.3: a system started in the default NUMA_BALANCING mode with a
    // single local node online is auto-downgraded to TIERED.
    TppConfig cfg;
    cfg.mode = NumaMode::Classic;
    TestMachine m(256, 256, std::make_unique<TppPolicy>(cfg));
    const auto &policy = static_cast<TppPolicy &>(m.kernel.policy());
    EXPECT_EQ(policy.effectiveMode(), NumaMode::Tiered);
    EXPECT_FALSE(policy.scanNode(m.local()));
}

TEST(NumaMode, ClassicStaysClassicOnDualSocket)
{
    TppConfig cfg;
    cfg.mode = NumaMode::Classic;
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::dualSocketCxl(256, 256));
    Kernel kernel(mem, eq, std::make_unique<TppPolicy>(cfg));
    const auto &policy = static_cast<TppPolicy &>(kernel.policy());
    EXPECT_EQ(policy.effectiveMode(), NumaMode::Classic);
    EXPECT_TRUE(policy.scanNode(0));
    EXPECT_TRUE(policy.scanNode(1));
}

TEST(DualSocket, TopologyShape)
{
    MemorySystem mem(TopologyBuilder::dualSocketCxl(512, 1024));
    EXPECT_EQ(mem.cpuNodes().size(), 2u);
    EXPECT_EQ(mem.cxlNodes().size(), 1u);
    // Both sockets demote to the shared CXL node.
    EXPECT_EQ(mem.demotionOrder(0), std::vector<NodeId>{2});
    EXPECT_EQ(mem.demotionOrder(1), std::vector<NodeId>{2});
    // Cross-socket is closer than CXL in the fallback order.
    EXPECT_EQ(mem.fallbackOrder(0)[1], 1);
}

TEST(DualSocket, PromotionTargetsTaskNode)
{
    EventQueue eq;
    MemorySystem mem(TopologyBuilder::dualSocketCxl(512, 1024));
    Kernel kernel(mem, eq, std::make_unique<TppPolicy>());
    kernel.start();
    const Asid asid = kernel.createProcess();
    const Vpn vpn = kernel.mmap(asid, 1, PageType::Anon, "a");
    // Fault in on the CXL node, then fault from socket 1.
    kernel.access(asid, vpn, AccessKind::Store, 2);
    ASSERT_EQ(mem.frame(kernel.addressSpace(asid).pte(vpn).pfn).nid, 2);
    for (int round = 0; round < 2; ++round) {
        kernel.sampleNode(2, 4);
        kernel.access(asid, vpn, AccessKind::Load, 1);
    }
    EXPECT_EQ(mem.frame(kernel.addressSpace(asid).pte(vpn).pfn).nid, 1);
}

TEST(Workingset, QuickRefaultActivates)
{
    TestMachine m;
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f", true);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    m.frameOf(f).clearFlag(PageFrame::FlagReferenced);
    m.kernel.directReclaim(0, 1);
    ASSERT_FALSE(m.pte(f).present());
    // Refault within the workingset window: page re-enters active.
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(f).lru, LruListId::ActiveFile);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::WorkingsetRefault), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::WorkingsetActivate), 1u);
}

TEST(Workingset, SlowRefaultStaysInactive)
{
    TestMachine m;
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f", true);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    m.frameOf(f).clearFlag(PageFrame::FlagReferenced);
    m.kernel.directReclaim(0, 1);
    // Let far more than the workingset window pass.
    m.eq.run(m.eq.now() + m.kernel.costs().workingsetWindow * 3);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(f).lru, LruListId::InactiveFile);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::WorkingsetRefault), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::WorkingsetActivate), 0u);
}

TEST(Workingset, SwapRefaultAlsoDetected)
{
    TestMachine m;
    const Vpn a = m.populate(1, PageType::Anon);
    m.frameOf(a).clearFlag(PageFrame::FlagReferenced);
    m.kernel.directReclaim(0, 1);
    ASSERT_TRUE(m.pte(a).swapped());
    m.kernel.access(m.asid, a, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(a).lru, LruListId::ActiveAnon);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::WorkingsetActivate), 1u);
}

TEST(Export, ResultsCsvShape)
{
    ExperimentResult r;
    r.workload = "web";
    r.policy = "tpp";
    r.throughput = 1000.0;
    r.localTrafficShare = 0.9;
    r.cxlTrafficShare = 0.1;
    std::ostringstream out;
    writeResultsCsv(out, {r});
    const std::string text = out.str();
    EXPECT_NE(text.find("workload,policy"), std::string::npos);
    EXPECT_NE(text.find("web,tpp,1000.000"), std::string::npos);
    // Exactly one header + one data line.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Export, SamplesCsvShape)
{
    ExperimentResult r;
    IntervalSample s;
    s.tick = 5 * kSecond;
    s.localShare = 0.75;
    s.throughput = 123.0;
    r.samples.push_back(s);
    std::ostringstream out;
    writeSamplesCsv(out, r);
    EXPECT_NE(out.str().find("5000000000,0.7500"), std::string::npos);
}

TEST(Export, JsonContainsCountersAndSamples)
{
    ExperimentResult r;
    r.workload = "cache1";
    r.policy = "linux";
    r.vmstat.inc(Vm::PgFault, 7);
    IntervalSample s;
    s.tick = 1;
    r.samples.push_back(s);
    std::ostringstream out;
    writeResultJson(out, r);
    const std::string text = out.str();
    EXPECT_NE(text.find("\"pgfault\": 7"), std::string::npos);
    EXPECT_NE(text.find("\"samples\": ["), std::string::npos);
    EXPECT_NE(text.find("\"workload\": \"cache1\""), std::string::npos);
}

TEST(TraceIo, RecorderCapturesStream)
{
    TraceRecorder recorder(100);
    auto observer = recorder.observer();
    observer(AccessRecord{0, 105, AccessKind::Load, 0});
    observer(AccessRecord{0, 100, AccessKind::Store, 0});
    observer(AccessRecord{0, 50, AccessKind::Load, 0}); // below base
    ASSERT_EQ(recorder.entries().size(), 2u);
    EXPECT_EQ(recorder.entries()[0].pageIndex, 5u);
    EXPECT_EQ(recorder.entries()[1].pageIndex, 0u);
    EXPECT_EQ(recorder.regionPages(), 6u);
}

TEST(TraceIo, CapDropsExtras)
{
    TraceRecorder recorder(0, 2);
    auto observer = recorder.observer();
    for (int i = 0; i < 5; ++i)
        observer(AccessRecord{0, static_cast<Vpn>(i), AccessKind::Load,
                              0});
    EXPECT_EQ(recorder.entries().size(), 2u);
    EXPECT_EQ(recorder.dropped(), 3u);
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    std::vector<TraceEntry> entries = {
        {0, AccessKind::Load}, {3, AccessKind::Store},
        {1, AccessKind::Load}};
    std::stringstream buf;
    saveTrace(buf, 4, entries);
    auto [pages, loaded] = loadTrace(buf);
    EXPECT_EQ(pages, 4u);
    ASSERT_EQ(loaded.size(), 3u);
    EXPECT_EQ(loaded[1].pageIndex, 3u);
    EXPECT_EQ(loaded[1].kind, AccessKind::Store);
}

TEST(TraceIo, RecordedRunReplaysIdentically)
{
    // Record a trace from one machine...
    TestMachine src(512, 512);
    TraceRecorder recorder(0);
    std::vector<TraceEntry> script;
    for (int i = 0; i < 200; ++i)
        script.push_back({static_cast<std::uint64_t>((i * 7) % 32),
                          i % 3 ? AccessKind::Load : AccessKind::Store});
    TraceWorkload original(32, script);
    original.setObserver(recorder.observer());
    original.init(src.kernel);
    while (!original.done())
        original.runBatch(src.kernel);

    // ...persist it, reload it, replay on a fresh machine.
    std::stringstream buf;
    saveTrace(buf, recorder.regionPages(), recorder.entries());
    auto [pages, entries] = loadTrace(buf);
    TestMachine dst(512, 512);
    TraceWorkload replay(pages, entries);
    replay.init(dst.kernel);
    while (!replay.done())
        replay.runBatch(dst.kernel);

    EXPECT_EQ(src.kernel.vmstat().get(Vm::PgFault),
              dst.kernel.vmstat().get(Vm::PgFault));
    EXPECT_EQ(src.kernel.traffic(0).accesses,
              dst.kernel.traffic(0).accesses);
}

TEST(TraceIoDeathTest, MalformedHeaderIsFatal)
{
    setLogVerbose(false);
    std::stringstream buf("bogus v9 1 1\n0 L\n");
    EXPECT_DEATH(loadTrace(buf), "tpp-trace");
}

TEST(TraceIoDeathTest, TruncatedBodyIsFatal)
{
    setLogVerbose(false);
    std::stringstream buf("tpp-trace v1 4 3\n0 L\n");
    EXPECT_DEATH(loadTrace(buf), "truncated");
}

} // namespace
} // namespace tpp
