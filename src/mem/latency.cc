#include "mem/latency.hh"

#include <algorithm>

namespace tpp {

double
LatencyModel::inflate(double idle_ns, double utilization) const
{
    const double u = std::clamp(utilization, 0.0, cfg_.maxUtil);
    const double queueing = cfg_.queueFactor * u * u * u * u / (1.0 - u);
    return idle_ns * (1.0 + queueing);
}

double
LatencyModel::accessLatencyNs(const MemoryNode &node, Tick now) const
{
    return inflate(node.profile().idleLatencyNs, node.utilization(now));
}

} // namespace tpp
