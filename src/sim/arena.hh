/**
 * @file
 * Zero-initialised bulk array arena.
 *
 * A ZeroedArena<T> is a fixed-size array whose backing store comes from
 * calloc, so construction of an N-element arena is O(1) in touched
 * memory: the OS hands back lazily-zeroed pages and the per-element
 * "constructor" never runs. This is what lets a 32M-page frame table
 * construct in milliseconds instead of touching 1.5 GB up front.
 *
 * The contract is that T is trivially copyable/destructible and that
 * the all-zero bit pattern is a *valid* (default) state — callers
 * design their structs so zero means "free / not present" and only
 * initialise fields lazily on first real use.
 */

#ifndef TPP_SIM_ARENA_HH
#define TPP_SIM_ARENA_HH

#include <cstddef>
#include <cstdlib>
#include <type_traits>
#include <utility>

#include "sim/logging.hh"

namespace tpp {

template <typename T>
class ZeroedArena
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "ZeroedArena elements must be trivially copyable");
    static_assert(std::is_trivially_destructible_v<T>,
                  "ZeroedArena elements must be trivially destructible");

  public:
    ZeroedArena() = default;

    explicit
    ZeroedArena(std::size_t n)
        : size_(n)
    {
        if (n == 0)
            return;
        data_ = static_cast<T *>(std::calloc(n, sizeof(T)));
        if (!data_)
            tpp_fatal("ZeroedArena: cannot allocate %zu x %zu bytes", n,
                      sizeof(T));
    }

    ~ZeroedArena() { std::free(data_); }

    ZeroedArena(const ZeroedArena &) = delete;
    ZeroedArena &operator=(const ZeroedArena &) = delete;

    ZeroedArena(ZeroedArena &&other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {}

    ZeroedArena &
    operator=(ZeroedArena &&other) noexcept
    {
        if (this != &other) {
            std::free(data_);
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T *data() { return data_; }
    const T *data() const { return data_; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

  private:
    T *data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace tpp

#endif // TPP_SIM_ARENA_HH
