/**
 * @file
 * trace_summary: digest a JSONL trace written by the bench binaries'
 * --trace-out flag (or harness writeTraceJsonl) into the tables a
 * human wants first: per-event totals, per-window migration rates and
 * the worst tier ping-pong pages.
 *
 * usage: trace_summary [FILE ...] [--window-ms N] [--top N]
 *
 * With no FILE (or "-") the trace is read from stdin. Events from all
 * files are pooled, then grouped by their workload/policy tag; each
 * group gets its own summary, so one file holding a whole sweep prints
 * one section per run.
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "harness/table.hh"
#include "sim/logging.hh"
#include "trace/summary.hh"
#include "trace/trace_io.hh"

namespace {

using namespace tpp;

std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE || text[0] == '-')
        tpp_fatal("%s expects an unsigned integer, got '%s'", flag,
                  text.c_str());
    return value;
}

/** Events that read as per-second rates in the window table. */
constexpr TraceEvent kRateColumns[] = {
    TraceEvent::PromoteSuccess, TraceEvent::Demote, TraceEvent::HintFault,
    TraceEvent::AllocFallback,  TraceEvent::SwapOut,
};

void
printSummary(const std::string &tag, const std::vector<TraceRecord> &events,
             Tick window_ns, std::size_t top_n)
{
    const TraceSummary summary =
        summarizeTrace(events, window_ns, top_n);

    std::printf("== %s — %zu events, %zu windows of %.0f ms ==\n\n",
                tag.c_str(), events.size(), summary.windows.size(),
                static_cast<double>(window_ns) / 1e6);

    TextTable totals({"event", "total", "active windows"});
    for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
        const TraceEvent event = static_cast<TraceEvent>(i);
        if (summary.total(event) == 0)
            continue;
        totals.addRow({traceEventName(event),
                       TextTable::count(summary.total(event)),
                       TextTable::count(summary.activeWindows(event))});
    }
    totals.print();
    std::printf("\n");

    const double window_sec = static_cast<double>(window_ns) / 1e9;
    TextTable rates({"t(s)", "promote/s", "demote/s", "hint faults/s",
                     "alloc fallback/s", "swap out/s"});
    for (const TraceWindow &w : summary.windows) {
        std::vector<std::string> row;
        row.push_back(
            TextTable::num(static_cast<double>(w.start) / 1e9, 1));
        for (TraceEvent event : kRateColumns)
            row.push_back(TextTable::num(
                static_cast<double>(w.count(event)) / window_sec, 1));
        rates.addRow(std::move(row));
    }
    rates.print();
    std::printf("\n");

    if (summary.pingPong.empty()) {
        std::printf("no ping-pong pages (no page changed tier direction "
                    "twice)\n\n");
        return;
    }
    std::printf("top ping-pong pages (tier direction flips):\n");
    TextTable pages({"asid", "vpn", "demotions", "promotions", "flips"});
    for (const PingPongPage &p : summary.pingPong)
        pages.addRow({TextTable::count(p.asid), TextTable::count(p.vpn),
                      TextTable::count(p.demotions),
                      TextTable::count(p.promotions),
                      TextTable::count(p.flips)});
    pages.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    Tick window_ns = 1000 * kMillisecond;
    std::size_t top_n = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--window-ms") {
            const std::uint64_t ms = parseCount("--window-ms", next());
            if (ms == 0)
                tpp_fatal("--window-ms expects a window > 0");
            window_ns = ms * kMillisecond;
        } else if (arg == "--top") {
            top_n = parseCount("--top", next());
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: %s [FILE ...] [--window-ms N] [--top N]\n",
                        argv[0]);
            return 0;
        } else {
            files.push_back(arg);
        }
    }

    std::vector<TaggedTraceRecord> tagged;
    if (files.empty()) {
        tagged = readTraceEventsJsonl(std::cin);
    } else {
        for (const std::string &path : files) {
            if (path == "-") {
                auto part = readTraceEventsJsonl(std::cin);
                tagged.insert(tagged.end(), part.begin(), part.end());
                continue;
            }
            std::ifstream in(path);
            if (!in)
                tpp_fatal("cannot open trace file '%s'", path.c_str());
            auto part = readTraceEventsJsonl(in);
            tagged.insert(tagged.end(), part.begin(), part.end());
        }
    }

    if (tagged.empty()) {
        std::printf("no trace events found\n");
        return 0;
    }

    // Group by run tag, preserving first-appearance order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<TraceRecord>> groups;
    for (const TaggedTraceRecord &t : tagged) {
        const std::string tag = t.workload + "/" + t.policy;
        auto [it, inserted] = groups.emplace(tag, std::vector<TraceRecord>{});
        if (inserted)
            order.push_back(tag);
        it->second.push_back(t.record);
    }

    for (const std::string &tag : order)
        printSummary(tag, groups[tag], window_ns, top_n);
    return 0;
}
