file(REMOVE_RECURSE
  "libtpp_workloads.a"
)
