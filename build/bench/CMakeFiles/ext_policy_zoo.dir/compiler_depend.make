# Empty compiler generated dependencies file for ext_policy_zoo.
# This may be replaced when dependencies are built.
