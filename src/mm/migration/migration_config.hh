/**
 * @file
 * Declarative configuration for the MigrationEngine (mm/migration).
 *
 * Lives in its own lightweight header so config-consuming layers (the
 * experiment harness, benches, tests) can describe an engine mode
 * without pulling in the engine — mirroring mm/policy_params.hh.
 *
 * The default-constructed config is the **sync-compat mode**: queue
 * depth 1, no daemon, no admission control, flat per-page copy cost.
 * In that mode every demotion/promotion executes inline and the
 * simulation is bit-for-bit identical to the pre-engine kernel
 * (tests/test_migration_compat.cc pins this with golden fingerprints).
 */

#ifndef TPP_MM_MIGRATION_MIGRATION_CONFIG_HH
#define TPP_MM_MIGRATION_MIGRATION_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace tpp {

/** Operating-mode knobs of the MigrationEngine. */
struct MigrationConfig {
    /**
     * Queue background migrations per node and drain them in batches
     * from a migrator daemon on the event queue. Off: every request
     * executes synchronously in the caller (today's Linux behaviour —
     * and the bit-identical compat mode). Direct reclaim always
     * demotes synchronously regardless, like the real kernel: the
     * allocating task needs pages *now*.
     */
    bool async = false;
    /**
     * Nomad-style two-phase transactional copy: a page being copied
     * carries PageFrame::FlagUnderMigration for the duration of the
     * modelled copy; an access to it during that window aborts the
     * transaction (vm event pgmigrate_fail_busy) and the page stays
     * put. Only meaningful with `async`.
     */
    bool transactional = false;
    /**
     * Charge the page copy through the latency model's
     * bandwidth-contention path (transfer time over the slower of the
     * two nodes, inflated by each node's utilisation) instead of the
     * flat MmCosts::migratePage constant.
     */
    bool bandwidthCost = false;
    /**
     * Per-(node, direction) queue capacity; a full queue defers the
     * request (vm.migration_queue_depth). Depth 1 with `async` off is
     * the compat mode.
     */
    std::uint64_t queueDepth = 1;
    /** Pages the migrator daemon moves per wakeup and queue. */
    std::uint64_t drainBatch = 32;
    /** Migrator daemon cadence while any queue holds requests. */
    Tick drainPeriod = 1 * kMillisecond;
    /**
     * TierBPF-style admission control: token-bucket budget, in MB/s of
     * page-copy traffic per destination node
     * (vm.migration_rate_limit_mbps). Requests beyond the budget are
     * deferred, never queued. 0 disables admission control.
     */
    double rateLimitMBps = 0.0;

    /** The bit-identical pre-engine behaviour (the default). */
    static MigrationConfig
    compat()
    {
        return MigrationConfig{};
    }

    /** The full asynchronous, transactional engine. */
    static MigrationConfig
    asyncEngine()
    {
        MigrationConfig cfg;
        cfg.async = true;
        cfg.transactional = true;
        cfg.bandwidthCost = true;
        cfg.queueDepth = 512;
        return cfg;
    }
};

} // namespace tpp

#endif // TPP_MM_MIGRATION_MIGRATION_CONFIG_HH
