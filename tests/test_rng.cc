/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace tpp {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000003ULL}) {
        for (int i = 0; i < 2000; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedOneAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.nextRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= (v == 10);
        saw_hi |= (v == 13);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoolEdgeCases)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
        EXPECT_FALSE(rng.nextBool(-1.0));
        EXPECT_TRUE(rng.nextBool(2.0));
    }
}

TEST(Rng, BoolProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitIndependence)
{
    Rng parent(23);
    Rng child = parent.split();
    // The child stream should not replicate the parent stream.
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        if (parent.next() == child.next())
            same++;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BoundedUniformity)
{
    Rng rng(29);
    const std::uint64_t buckets = 8;
    std::vector<int> counts(buckets, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        counts[rng.nextBounded(buckets)]++;
    for (std::uint64_t b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], n / buckets, n / buckets * 0.1);
}

TEST(Rng, NoShortCycle)
{
    Rng rng(31);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 10000; ++i)
        seen.insert(rng.next());
    EXPECT_EQ(seen.size(), 10000u);
}

} // namespace
} // namespace tpp
