#include "mm/address_space.hh"

#include "sim/logging.hh"

namespace tpp {

Vpn
AddressSpace::mmap(std::uint64_t pages, PageType type, std::string label,
                   bool disk_backed)
{
    if (pages == 0)
        tpp_fatal("mmap of zero pages");
    if (disk_backed && type != PageType::File)
        tpp_fatal("only file regions can be disk backed");
    Vpn start;
    auto pool = freeRanges_.find(pages);
    if (pool != freeRanges_.end() && !pool->second.empty()) {
        start = pool->second.back();
        pool->second.pop_back();
    } else {
        start = table_.size();
        table_.resize(table_.size() + pages);
    }
    for (std::uint64_t i = 0; i < pages; ++i) {
        Pte &entry = table_[start + i];
        entry.type = type;
        entry.set(Pte::BitMapped);
        if (disk_backed)
            entry.set(Pte::BitDiskBacked);
    }
    vmas_.push_back(Vma{start, pages, type, std::move(label)});
    return start;
}

void
AddressSpace::munmap(Vpn start, std::uint64_t pages)
{
    if (start + pages > table_.size())
        tpp_panic("munmap beyond table end");
    for (std::uint64_t i = 0; i < pages; ++i) {
        Pte &entry = table_[start + i];
        if (entry.present())
            tpp_panic("munmap of a still-present PTE (kernel must unmap "
                      "frames first)");
        if (entry.swapped())
            tpp_panic("munmap of a swapped PTE (kernel must release swap "
                      "first)");
        entry = Pte{};
    }
    for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
        if (it->start == start && it->pages == pages) {
            vmas_.erase(it);
            freeRanges_[pages].push_back(start);
            return;
        }
    }
    tpp_panic("munmap of an unknown VMA [%llu, +%llu)",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(pages));
}

} // namespace tpp
