#include "sim/stats.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tpp {

Distribution::Distribution(std::size_t reservoir_capacity)
    : capacity_(reservoir_capacity)
{
    reservoir_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
Distribution::sample(double value)
{
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_++;
    sum_ += value;
    sorted_ = false;

    if (reservoir_.size() < capacity_) {
        reservoir_.push_back(value);
    } else if (capacity_ > 0) {
        // Deterministic reservoir replacement: overwrite slot based on a
        // cheap hash of the running count so runs stay reproducible
        // without threading an Rng through every stat.
        std::uint64_t h = count_ * 0x9e3779b97f4a7c15ULL;
        std::uint64_t slot = (h >> 33) % count_;
        if (slot < capacity_)
            reservoir_[slot] = value;
    }
}

double
Distribution::percentile(double p) const
{
    if (reservoir_.empty())
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    if (!sorted_) {
        scratch_ = reservoir_;
        std::sort(scratch_.begin(), scratch_.end());
        sorted_ = true;
    }
    // Nearest-rank method.
    const std::size_t n = scratch_.size();
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank == 0)
        rank = 1;
    return scratch_[rank - 1];
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = max_ = 0.0;
    reservoir_.clear();
    scratch_.clear();
    sorted_ = false;
}

double
TimeSeries::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &pt : points_)
        sum += pt.value;
    return sum / static_cast<double>(points_.size());
}

double
TimeSeries::maxValue() const
{
    double best = 0.0;
    bool first = true;
    for (const auto &pt : points_) {
        if (first || pt.value > best) {
            best = pt.value;
            first = false;
        }
    }
    return best;
}

double
TimeSeries::percentile(double p) const
{
    if (points_.empty())
        return 0.0;
    std::vector<double> values;
    values.reserve(points_.size());
    for (const auto &pt : points_)
        values.push_back(pt.value);
    std::sort(values.begin(), values.end());
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

double
RateMeter::update(Tick tick, double cumulative)
{
    if (!primed_) {
        primed_ = true;
        lastTick_ = tick;
        lastValue_ = cumulative;
        return 0.0;
    }
    if (tick <= lastTick_) {
        lastValue_ = cumulative;
        return 0.0;
    }
    const double delta = cumulative - lastValue_;
    const double seconds =
        static_cast<double>(tick - lastTick_) / static_cast<double>(kSecond);
    lastTick_ = tick;
    lastValue_ = cumulative;
    return delta / seconds;
}

void
RateMeter::reset()
{
    primed_ = false;
    lastTick_ = 0;
    lastValue_ = 0.0;
}

} // namespace tpp
