/**
 * @file
 * Ping-pong throttling ablation: what does denying reverse-direction
 * migrations inside a cooldown window (mm/ppt) buy on a churn-heavy
 * workload?
 *
 * One oversubscribed 1:4 tiered machine (the paper's memory-expansion
 * shape, where fig16 shows migration volume explodes), TPP policy on
 * the async MigrationEngine; the only difference between arms is
 * vm.ppt.enable (and, in the full preset, the cooldown ladder). A
 * borderline working set under this pressure promotes pages the next
 * reclaim wave demotes straight back, so the PPT-on arm must spend
 * strictly less migration bandwidth (pgmigrate_success pages moved) at
 * equal-or-better hot-set recall — hysteresis converts wasted round
 * trips into stability, not into losing the hot set.
 *
 * Each run records kernel tracepoints so the table can quote the
 * ping-pong flip count and the estimated wasted bandwidth directly
 * (trace/summary.hh; the same figures trace_summary prints).
 *
 * Extra flag beyond the shared bench options:
 *
 *   --preset smoke|full   smoke shortens the run for CI (default full).
 */

#include "bench_common.hh"

#include "trace/summary.hh"

namespace {

using namespace tpp;

/** One experiment arm: the throttle switch and its cooldown. */
struct Arm {
    bool enable;
    std::uint64_t cooldownMs;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;

    // Peel off --preset before the shared parser sees the argv.
    std::string preset = "full";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--preset") {
            if (i + 1 >= argc)
                tpp_fatal("missing value after --preset");
            preset = argv[++i];
            if (preset != "smoke" && preset != "full")
                tpp_fatal("--preset expects smoke|full, got '%s'",
                          preset.c_str());
        } else {
            rest.push_back(argv[i]);
        }
    }
    const bench::BenchOptions opt = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("Ablation: ping-pong throttling (PPT)",
                  "migration-history cooldown vs unthrottled bouncing "
                  "on an oversubscribed 1:4 machine (cache1, TPP)");

    // PPT off, then the cooldown ladder. The off arm runs first so the
    // row pairs read off-vs-on at each ladder step.
    std::vector<Arm> arms;
    arms.push_back({false, 0});
    if (preset == "smoke") {
        arms.push_back({true, 500});
    } else {
        arms.push_back({true, 200});
        arms.push_back({true, 1000});
    }

    std::vector<ExperimentConfig> cfgs;
    for (const Arm &arm : arms) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = "cache1";
        cfg.policy = "tpp";
        cfg.localFraction = 0.2; // 1:4 expansion: promotion-hungry
        cfg.measureHotness = true;
        cfg.traceEnabled = true;
        cfg.migration = MigrationConfig::asyncEngine();
        cfg.sysctls.emplace_back("vm.ppt.enable", arm.enable ? "1" : "0");
        if (arm.enable) {
            cfg.sysctls.emplace_back("vm.ppt.cooldown_ms",
                                     std::to_string(arm.cooldownMs));
        }
        if (preset == "smoke") {
            cfg.runUntil = 3 * kSecond;
            cfg.measureFrom = 1 * kSecond;
        } else {
            cfg.runUntil = 10 * kSecond;
            cfg.measureFrom = 6 * kSecond;
        }
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    TextTable table({"ppt", "cooldown (ms)", "tput (ops/s)",
                     "hot-set recall", "migrated pages", "moved (MiB)",
                     "throttled", "flips", "wasted (KiB)"});
    std::vector<TraceSummary> summaries;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const ExperimentResult &res = results[i];
        summaries.push_back(summarizeTrace(
            res.trace, kSecond, /*top_n=*/1));
        const TraceSummary &ts = summaries.back();
        const std::uint64_t moved = res.vmstat.get(Vm::PgMigrateSuccess);
        const std::uint64_t throttled =
            res.vmstat.get(Vm::PptThrottledPromote) +
            res.vmstat.get(Vm::PptThrottledDemote);
        table.addRow(
            {arms[i].enable ? "on" : "off",
             arms[i].enable ? TextTable::count(arms[i].cooldownMs)
                            : std::string("-"),
             TextTable::num(res.throughput, 0),
             TextTable::pct(res.hotSetRecall),
             TextTable::count(moved),
             TextTable::num(static_cast<double>(moved * kPageSize) /
                                (1024.0 * 1024.0),
                            1),
             TextTable::count(throttled),
             TextTable::count(ts.pingPongFlips),
             TextTable::num(
                 static_cast<double>(ts.pingPongWastedBytes) / 1024.0,
                 1)});
    }
    table.print();

    // The headline claim, checked loudly: every PPT-on arm must move
    // strictly fewer pages than the unthrottled arm while giving up
    // none of the hot set.
    const ExperimentResult &off = results[0];
    for (std::size_t i = 1; i < results.size(); ++i) {
        const ExperimentResult &on = results[i];
        if (on.vmstat.get(Vm::PgMigrateSuccess) >=
            off.vmstat.get(Vm::PgMigrateSuccess)) {
            std::printf("WARNING: PPT (cooldown %llu ms) did not reduce "
                        "migration bandwidth\n",
                        static_cast<unsigned long long>(
                            arms[i].cooldownMs));
        }
        if (on.hotSetRecall < off.hotSetRecall) {
            std::printf("WARNING: PPT (cooldown %llu ms) lost hot-set "
                        "recall (%.3f vs %.3f)\n",
                        static_cast<unsigned long long>(
                            arms[i].cooldownMs),
                        on.hotSetRecall, off.hotSetRecall);
        }
    }
    std::printf("\npaper + Nomad/hysteresis (PAPERS.md): each wasted "
                "round trip pays two transactional copies; denying the "
                "reverse hop inside a cooldown window keeps borderline "
                "pages parked and spends the bandwidth on pages that "
                "stay put\n");

    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
