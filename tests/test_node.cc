/**
 * @file
 * Unit tests for MemoryNode: free-list mechanics, watermark derivation
 * and bandwidth accounting.
 */

#include <gtest/gtest.h>

#include "mem/node.hh"
#include "sim/logging.hh"

namespace tpp {
namespace {

NodeProfile
profile(bool cpu_less = false)
{
    return NodeProfile{100.0, 50.0, cpu_less, "test"};
}

TEST(Watermarks, OrderingHolds)
{
    const Watermarks wm = Watermarks::forCapacity(100000);
    EXPECT_LT(wm.min, wm.low);
    EXPECT_LT(wm.low, wm.high);
    EXPECT_GT(wm.demoteTrigger, wm.high);
    EXPECT_GT(wm.demoteTarget, wm.demoteTrigger);
}

TEST(Watermarks, ScaleFactorControlsDemoteTrigger)
{
    const Watermarks wm2 = Watermarks::forCapacity(1000000, 2.0);
    const Watermarks wm5 = Watermarks::forCapacity(1000000, 5.0);
    EXPECT_EQ(wm2.demoteTrigger, 20000u);
    EXPECT_EQ(wm5.demoteTrigger, 50000u);
}

TEST(Watermarks, TinyNodesKeepFloor)
{
    const Watermarks wm = Watermarks::forCapacity(100);
    EXPECT_GE(wm.min, 8u);
    EXPECT_GT(wm.demoteTrigger, wm.high);
}

TEST(MemoryNode, TakePutRoundTrip)
{
    MemoryNode node(0, 100, 16, profile());
    EXPECT_EQ(node.freePages(), 16u);
    const Pfn pfn = node.takeFree();
    EXPECT_NE(pfn, kInvalidPfn);
    EXPECT_TRUE(node.ownsPfn(pfn));
    EXPECT_EQ(node.freePages(), 15u);
    EXPECT_EQ(node.usedPages(), 1u);
    node.putFree(pfn);
    EXPECT_EQ(node.freePages(), 16u);
}

TEST(MemoryNode, LowestPfnFirst)
{
    MemoryNode node(0, 100, 8, profile());
    EXPECT_EQ(node.takeFree(), 100u);
    EXPECT_EQ(node.takeFree(), 101u);
}

TEST(MemoryNode, ExhaustionReturnsInvalid)
{
    MemoryNode node(0, 0, 2, profile());
    node.takeFree();
    node.takeFree();
    EXPECT_EQ(node.takeFree(), kInvalidPfn);
}

TEST(MemoryNode, OwnsPfnBoundaries)
{
    MemoryNode node(0, 100, 10, profile());
    EXPECT_FALSE(node.ownsPfn(99));
    EXPECT_TRUE(node.ownsPfn(100));
    EXPECT_TRUE(node.ownsPfn(109));
    EXPECT_FALSE(node.ownsPfn(110));
}

TEST(MemoryNode, AboveWatermarkAccountsRequest)
{
    MemoryNode node(0, 0, 100, profile());
    EXPECT_TRUE(node.aboveWatermark(50, 1));
    EXPECT_TRUE(node.aboveWatermark(99, 1));
    EXPECT_FALSE(node.aboveWatermark(100, 1));
    EXPECT_FALSE(node.aboveWatermark(99, 2));
}

TEST(MemoryNodeDeathTest, ForeignPutPanics)
{
    setLogVerbose(false);
    MemoryNode node(0, 100, 10, profile());
    EXPECT_DEATH(node.putFree(50), "belong");
}

TEST(MemoryNodeDeathTest, OverfillPanics)
{
    setLogVerbose(false);
    MemoryNode node(0, 100, 4, profile());
    EXPECT_DEATH(node.putFree(101), "overflow");
}

TEST(MemoryNode, UtilizationStartsIdle)
{
    MemoryNode node(0, 0, 64, profile());
    EXPECT_DOUBLE_EQ(node.utilization(0), 0.0);
}

TEST(MemoryNode, UtilizationRisesUnderTraffic)
{
    MemoryNode node(0, 0, 64, profile());
    // Push ~50 GB/s of traffic (the node's full bandwidth) for 10 ms.
    for (Tick t = 0; t < 10 * kMillisecond; t += kMicrosecond)
        node.recordTraffic(t, 50000);
    const double util = node.utilization(10 * kMillisecond);
    EXPECT_GT(util, 0.3);
    EXPECT_LE(util, 1.0);
}

TEST(MemoryNode, UtilizationDecaysWhenIdle)
{
    MemoryNode node(0, 0, 64, profile());
    for (Tick t = 0; t < 5 * kMillisecond; t += kMicrosecond)
        node.recordTraffic(t, 50000);
    const double busy = node.utilization(5 * kMillisecond);
    const double later = node.utilization(1 * kSecond);
    EXPECT_GT(busy, later);
    EXPECT_DOUBLE_EQ(later, 0.0);
}

TEST(MemoryNode, CpuLessFlagPropagates)
{
    MemoryNode node(3, 0, 8, profile(true));
    EXPECT_TRUE(node.cpuLess());
    EXPECT_EQ(node.id(), 3);
}

} // namespace
} // namespace tpp
