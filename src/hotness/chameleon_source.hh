/**
 * @file
 * ChameleonSource: the PEBS-style user-space profiler (chameleon/) as a
 * HotnessSource. The source owns a Chameleon instance tuned for
 * promotion duty — multi-bit activity fields, no duty cycling, interval
 * locked to the hotness epoch — and scores a page by its activity word
 * with recent intervals weighted heaviest.
 *
 * Unlike the device-side NeoProf counter engine this source only sees
 * the sampled access stream (1 in samplePeriod events), so its recall
 * bounds what a sampling profiler can deliver at a given overhead.
 */

#ifndef TPP_HOTNESS_CHAMELEON_SOURCE_HH
#define TPP_HOTNESS_CHAMELEON_SOURCE_HH

#include <memory>

#include "chameleon/chameleon.hh"
#include "hotness/hotness_source.hh"

namespace tpp {

class ChameleonSource : public HotnessSource
{
  public:
    explicit ChameleonSource(const HotnessConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "chameleon"; }

    void attach(Kernel &kernel) override;
    void start() override;

    double temperature(Pfn pfn) const override;
    std::vector<HotPage> extractHot(std::uint64_t max_pages) override;
    AccessObserver observer() override;

    const Chameleon &chameleon() const { return *chameleon_; }

    /** Recency-weighted score of one activity word. */
    static double score(std::uint64_t bitmap, std::uint32_t bits_per_interval);

  private:
    const HotnessConfig &cfg_;
    std::unique_ptr<Chameleon> chameleon_;
};

} // namespace tpp

#endif // TPP_HOTNESS_CHAMELEON_SOURCE_HH
