/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries (and the
 * sweep-shaped examples): a common option parser, sweep wiring, CSV
 * export and headline banners.
 *
 * Every binary accepts:
 *
 *   --wss PAGES   working-set size in pages (default 32768 = 128 MiB)
 *   --jobs N      run sweep configs on N worker threads (0 = all
 *                 hardware threads; results are bit-for-bit identical
 *                 to --jobs 1)
 *   --seed S      simulation seed
 *   --csv PATH    also write the run's ExperimentResults as CSV
 *   --trace       enable kernel tracepoints (src/trace) for every run
 *   --trace-out PATH  write tracepoint events + sampler series as
 *                 JSONL (implies --trace; tools/trace_summary reads it)
 *   --sample-ms N attach the TimeSeriesSampler at an N ms period
 *   --sysctl N=V  apply a sysctl to every run (repeatable)
 *   --qps Q       open-loop offered load in requests/s (0 = closed loop)
 *   --arrival A   arrival process: poisson | bursty | diurnal
 *   --slo US      p99 latency SLO in microseconds (0 = none)
 *   --topology SPEC  explicit machine description, one node per entry:
 *                 "local:pages=N;cxl:pages=M:lat=150:bw=64;
 *                 cxl-far:pages=K:lat=300" — lat marks a lower tier
 *                 (CPU-less unless cpu=1); overrides the canned
 *                 two-node build (see ExperimentConfig::topology)
 *   --shards N    worker threads ticking shard regions in epoch
 *                 lockstep (harness/shard.hh); 1 = the single-stack
 *                 engine and bit-identical legacy output
 *   --shard-regions R  pin the region decomposition independently of
 *                 --shards (0 = match --shards); results depend on R
 *                 only, never on the worker count
 *   --verbose     enable inform()/warn() logging + sweep progress
 *   PAGES         bare positional working-set size (backward compat)
 *
 * Tracing and sampling are observational: enabling them changes what a
 * run *records*, never what it computes — the printed tables are
 * byte-identical with or without these flags (tests/test_trace.cc).
 *
 * Malformed spec-valued flags (--tenants, --sysctl, --qps, --arrival,
 * --slo) print the diagnostic from the spec parser — naming the bad
 * token — and exit with status 2, so scripts can tell "bad invocation"
 * from a simulator failure.
 */

#ifndef TPP_BENCH_BENCH_COMMON_HH
#define TPP_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/export.hh"
#include "harness/spec.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

namespace tpp {
namespace bench {

inline constexpr std::uint64_t kDefaultWssPages = 32768;

/** Options shared by every bench binary. */
struct BenchOptions {
    std::uint64_t wssPages = kDefaultWssPages;
    /** Sweep worker threads; 0 = all hardware threads. */
    unsigned jobs = 1;
    std::uint64_t seed = 1;
    /** When non-empty, results are also written here as CSV. */
    std::string csvPath;
    /** Enable kernel tracepoints for every run of the binary. */
    bool trace = false;
    /** When non-empty, write trace events + samples here as JSONL
     *  (implies trace). */
    std::string traceOutPath;
    /** Sampler period in milliseconds; 0 = sampler off. */
    std::uint64_t sampleMs = 0;
    bool verbose = false;
    /** --tenants spec (see parseTenants); empty = single workload. */
    std::string tenantsSpec;
    /** --topology spec (see parseTopology); empty = canned machine. */
    std::string topologySpec;
    /** --sysctl name=value assignments, applied to every run. */
    std::vector<std::pair<std::string, std::string>> sysctls;
    /** Open-loop traffic (--qps/--arrival/--slo); qps 0 = closed. */
    OpenLoopSpec openLoop;
    /** Shard workers (--shards); 1 = legacy single-stack engine. */
    std::uint32_t shards = 1;
    /** Region decomposition (--shard-regions); 0 = match shards. */
    std::uint32_t shardRegions = 0;
};

/** Exit status for malformed spec-valued flags (vs. 1 for fatals). */
inline constexpr int kBadSpecExit = 2;

/** Unwrap a spec result or print its diagnostic and exit(2). */
template <typename T>
inline T
specValueOrDie(SpecResult<T> result)
{
    if (!result) {
        std::fprintf(stderr, "error: %s\n",
                     result.error().render().c_str());
        std::exit(kBadSpecExit);
    }
    return std::move(*result);
}

/** Strict unsigned parse; fatal() on trailing junk or overflow. */
inline std::uint64_t
parseCount(const char *flag, const std::string &text)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size() ||
        errno == ERANGE || text[0] == '-') {
        tpp_fatal("%s expects an unsigned integer, got '%s'", flag,
                  text.c_str());
    }
    return value;
}

inline void
printUsage(const char *argv0)
{
    const int pad = static_cast<int>(std::string(argv0).size());
    std::printf("usage: %s [PAGES] [--wss PAGES] [--jobs N] [--seed S]\n"
                "       %*s [--csv PATH] [--trace] [--trace-out PATH]\n"
                "       %*s [--sample-ms N] [--tenants SPEC] [--verbose]\n"
                "       %*s [--sysctl NAME=VALUE] [--qps QPS]\n"
                "       %*s [--arrival poisson|bursty|diurnal] [--slo US]\n"
                "       %*s [--topology SPEC] [--shards N]\n"
                "       %*s [--shard-regions R]\n",
                argv0, pad, "", pad, "", pad, "", pad, "", pad, "",
                pad, "");
}

/**
 * Parse the shared bench argv. The first bare non-flag argument is the
 * working-set size in pages, as it always was.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    setLogVerbose(false);
    BenchOptions opt;
    bool saw_positional = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--wss") {
            opt.wssPages = parseCount("--wss", next());
        } else if (arg == "--jobs") {
            opt.jobs =
                static_cast<unsigned>(parseCount("--jobs", next()));
        } else if (arg == "--seed") {
            opt.seed = parseCount("--seed", next());
        } else if (arg == "--csv") {
            opt.csvPath = next();
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--trace-out") {
            opt.traceOutPath = next();
            opt.trace = true;
        } else if (arg == "--sample-ms") {
            opt.sampleMs = parseCount("--sample-ms", next());
            if (opt.sampleMs == 0)
                tpp_fatal("--sample-ms expects a period > 0");
        } else if (arg == "--tenants") {
            opt.tenantsSpec = next();
        } else if (arg == "--topology") {
            opt.topologySpec = next();
        } else if (arg == "--sysctl") {
            opt.sysctls.push_back(
                specValueOrDie(parseAssignment(next())));
        } else if (arg == "--qps") {
            opt.openLoop.qps =
                specValueOrDie(parseSpecDouble(next(), 0.0, 1e9));
        } else if (arg == "--arrival") {
            const std::string name = next();
            if (!ArrivalProcess::known(name)) {
                std::fprintf(stderr,
                             "error: unknown --arrival '%s' (want %s)\n",
                             name.c_str(), ArrivalProcess::knownNames());
                std::exit(kBadSpecExit);
            }
            opt.openLoop.arrival = name;
        } else if (arg == "--slo") {
            opt.openLoop.sloP99Us =
                specValueOrDie(parseSpecDouble(next(), 0.0, 1e9));
        } else if (arg == "--shards") {
            opt.shards = static_cast<std::uint32_t>(
                parseCount("--shards", next()));
        } else if (arg == "--shard-regions") {
            opt.shardRegions = static_cast<std::uint32_t>(
                parseCount("--shard-regions", next()));
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else if (!arg.empty() && arg[0] != '-' && !saw_positional) {
            opt.wssPages = parseCount("working-set size", arg);
            saw_positional = true;
        } else {
            tpp_fatal("unknown argument '%s' (try --help)", arg.c_str());
        }
    }
    setLogVerbose(opt.verbose);
    return opt;
}

/** An ExperimentConfig carrying the shared options (wss, seed). */
inline ExperimentConfig
makeConfig(const BenchOptions &opt)
{
    ExperimentConfig cfg;
    cfg.wssPages = opt.wssPages;
    cfg.seed = opt.seed;
    cfg.traceEnabled = opt.trace;
    if (opt.sampleMs) {
        cfg.sampleSeries = true;
        cfg.samplePeriod = opt.sampleMs * kMillisecond;
    }
    for (const auto &assignment : opt.sysctls)
        cfg.sysctls.push_back(assignment);
    if (!opt.tenantsSpec.empty())
        cfg.tenants = specValueOrDie(parseTenants(opt.tenantsSpec));
    cfg.topology = opt.topologySpec;
    if (opt.openLoop.enabled()) {
        if (!cfg.tenants.empty()) {
            // With --tenants, the run-wide flags are a default each
            // tenant inherits unless its spec sets its own qps=.
            for (TenantSpec &tenant : cfg.tenants)
                if (!tenant.openLoop.enabled())
                    tenant.openLoop = opt.openLoop;
        } else {
            cfg.openLoop = opt.openLoop;
        }
    }
    cfg.shards = opt.shards;
    cfg.shardRegions = opt.shardRegions;
    // Reject bad shard geometry (and any other bad spec the flags
    // assembled) here, with the spec-flag exit status, instead of
    // fataling mid-run: scripts can tell "bad invocation" from a
    // simulator failure.
    if (SpecResult<void> valid = cfg.validate(); !valid) {
        std::fprintf(stderr, "error: %s\n",
                     valid.error().render().c_str());
        std::exit(kBadSpecExit);
    }
    return cfg;
}

/** SweepRunner options derived from the shared flags. */
inline SweepOptions
sweepOptions(const BenchOptions &opt)
{
    SweepOptions sweep;
    sweep.jobs = opt.jobs;
    sweep.progress = opt.verbose;
    return sweep;
}

/** Honour --csv: dump every result of the run in submission order. */
inline void
maybeWriteCsv(const BenchOptions &opt,
              const std::vector<ExperimentResult> &results)
{
    if (opt.csvPath.empty())
        return;
    std::ofstream out(opt.csvPath);
    if (!out)
        tpp_fatal("cannot open --csv path '%s'", opt.csvPath.c_str());
    writeResultsCsv(out, results);
    // Multi-tenant runs get their per-tenant rows next to the headline
    // CSV, in "<path>.tenants.csv".
    for (const ExperimentResult &r : results) {
        if (r.tenants.empty())
            continue;
        const std::string tenant_path = opt.csvPath + ".tenants.csv";
        std::ofstream tout(tenant_path);
        if (!tout)
            tpp_fatal("cannot open tenants CSV path '%s'",
                      tenant_path.c_str());
        writeTenantsCsv(tout, results);
        break;
    }
}

/**
 * Honour --trace-out: append every result's tracepoint events and
 * sampler series to one JSONL file, tagged by workload/policy so a
 * whole sweep shares the file.
 */
inline void
maybeWriteTrace(const BenchOptions &opt,
                const std::vector<ExperimentResult> &results)
{
    if (opt.traceOutPath.empty())
        return;
    std::ofstream out(opt.traceOutPath);
    if (!out)
        tpp_fatal("cannot open --trace-out path '%s'",
                  opt.traceOutPath.c_str());
    for (const ExperimentResult &r : results)
        writeTraceJsonl(out, r);
}

/** Print the figure banner. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==============================================================\n\n");
}

} // namespace bench
} // namespace tpp

#endif // TPP_BENCH_BENCH_COMMON_HH
