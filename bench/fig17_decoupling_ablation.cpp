/**
 * @file
 * Figure 17: impact of decoupling allocation from reclamation (§6.3).
 *
 * Case study from the paper: Cache1 on the 1:4 configuration, TPP with
 * and without the decoupled demotion watermarks. Reports the local-node
 * allocation rate (mean and 95th percentile) and the promotion rate
 * (mean and 99th percentile), plus CXL traffic and throughput.
 *
 * Paper shape: with decoupling the p95 local allocation rate rises
 * ~1.6x; without it promotion nearly halts (trapped pages drive ~55 %
 * of traffic and a ~12 % throughput drop), with it promotion sustains a
 * steady rate and CXL traffic falls to ~15 %.
 */

#include "bench_common.hh"
#include "sim/stats.hh"

namespace {

using namespace tpp;

ExperimentConfig
caseConfig(const bench::BenchOptions &opt, bool decouple)
{
    ExperimentConfig cfg = bench::makeConfig(opt);
    cfg.workload = "cache1";
    cfg.localFraction = parseRatio("1:4");
    cfg.policy = "tpp";
    // The paper's decoupling feature is a unit: the separate demotion
    // watermarks (5.2) plus the allocation-watermark bypass for
    // promotions (5.3). The coupled variant disables both.
    cfg.tpp.decoupleWatermarks = decouple;
    cfg.tpp.promotionIgnoresWatermark = decouple;
    return cfg;
}

struct Row {
    double allocMean, allocP95, promoMean, promoP99;
    ExperimentResult res;
};

Row
makeRow(const ExperimentResult &res)
{
    Row row;
    row.res = res;
    TimeSeries alloc, promo;
    for (const IntervalSample &s : row.res.samples) {
        alloc.record(s.tick, s.localAllocRate);
        promo.record(s.tick, s.promotionRate);
    }
    row.allocMean = alloc.meanValue();
    row.allocP95 = alloc.percentile(95.0);
    row.promoMean = promo.meanValue();
    row.promoP99 = promo.percentile(99.0);
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 17",
                  "allocation/reclamation decoupling ablation "
                  "(Cache1, 1:4)");

    const std::vector<ExperimentConfig> cfgs = {caseConfig(opt, false),
                                                caseConfig(opt, true)};
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    const Row coupled = makeRow(results[0]);
    const Row decoupled = makeRow(results[1]);

    TextTable table({"variant", "alloc->local mean (pg/s)",
                     "alloc->local p95", "promo mean (pg/s)", "promo p99",
                     "cxl traffic", "throughput (ops/s)"});
    table.addRow({"coupled (no decoupling)",
                  TextTable::num(coupled.allocMean, 0),
                  TextTable::num(coupled.allocP95, 0),
                  TextTable::num(coupled.promoMean, 0),
                  TextTable::num(coupled.promoP99, 0),
                  TextTable::pct(coupled.res.cxlTrafficShare),
                  TextTable::num(coupled.res.throughput, 0)});
    table.addRow({"decoupled (TPP)",
                  TextTable::num(decoupled.allocMean, 0),
                  TextTable::num(decoupled.allocP95, 0),
                  TextTable::num(decoupled.promoMean, 0),
                  TextTable::num(decoupled.promoP99, 0),
                  TextTable::pct(decoupled.res.cxlTrafficShare),
                  TextTable::num(decoupled.res.throughput, 0)});
    table.print();

    if (coupled.allocP95 > 0.0) {
        std::printf("\np95 local allocation rate gain: %.2fx "
                    "(paper: ~1.6x)\n",
                    decoupled.allocP95 / coupled.allocP95);
    }
    std::printf("paper: without decoupling promotion almost halts, CXL "
                "traffic ~55%%, throughput -12%%\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
