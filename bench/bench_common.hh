/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries: default
 * scales, argv handling and headline banners.
 *
 * Every binary accepts an optional working-set size in pages as its
 * first argument (default 32768 = 128 MiB of 4 KiB pages, enough for
 * the published dynamics to emerge while keeping runs to seconds).
 */

#ifndef TPP_BENCH_BENCH_COMMON_HH
#define TPP_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

namespace tpp {
namespace bench {

inline constexpr std::uint64_t kDefaultWssPages = 32768;

/** Parse the common argv: [wss_pages]. */
inline std::uint64_t
wssFromArgs(int argc, char **argv)
{
    setLogVerbose(false);
    if (argc > 1)
        return std::strtoull(argv[1], nullptr, 0);
    return kDefaultWssPages;
}

/** Print the figure banner. */
inline void
banner(const char *id, const char *title)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("==============================================================\n\n");
}

} // namespace bench
} // namespace tpp

#endif // TPP_BENCH_BENCH_COMMON_HH
