/**
 * @file
 * Hotness-source ablation (src/hotness): the same demotion machinery
 * and epoch-batched promotion pipeline, swapping only the temperature
 * signal — hint-fault sampling, DAMON-lite regions, the Chameleon
 * profiler and the NeoProf device counter engine — plus stock TPP as
 * the instant-promotion reference.
 *
 * For every source × workload cell the harness also measures hot-set
 * recall: the fraction of the true hot set (top pages by access count
 * in the measurement window, up to local capacity) resident locally at
 * the end of the run. The headline claim, checked loudly: on the
 * cache-expansion workload the device counters (neoprof) beat
 * hint-fault sampling on recall without migrating more pages.
 *
 * Extra flag beyond the shared bench options:
 *
 *   --preset smoke|full   smoke shortens the run for CI (default full).
 */

#include "bench_common.hh"
#include "hotness/hotness_source.hh"

namespace {

using namespace tpp;

const std::vector<std::string> kSources = {"hintfault", "damon",
                                           "chameleon", "neoprof"};
const std::vector<std::string> kWorkloads = {"cache1", "web"};

ExperimentConfig
baseConfig(const bench::BenchOptions &opt, bool smoke)
{
    ExperimentConfig cfg = bench::makeConfig(opt);
    cfg.localFraction = parseRatio("1:4");
    cfg.measureHotness = true;
    if (smoke) {
        cfg.runUntil = 6 * kSecond;
        cfg.measureFrom = 3 * kSecond;
    }
    return cfg;
}

void
printSourceTable(const std::string &workload,
                 const std::vector<std::string> &labels,
                 const std::vector<ExperimentResult> &results)
{
    std::printf("-- %s --\n", workload.c_str());
    TextTable table({"source", "tput (ops/s)", "local traffic",
                     "hot-set recall", "hot pages", "migrated",
                     "ctr evictions"});
    for (std::size_t i = 0; i < labels.size(); ++i) {
        const ExperimentResult &res = results[i];
        table.addRow(
            {labels[i], TextTable::num(res.throughput, 0),
             TextTable::pct(res.localTrafficShare),
             TextTable::pct(res.hotSetRecall),
             TextTable::count(res.hotSetPages),
             TextTable::count(res.vmstat.get(Vm::PgMigrateSuccess)),
             TextTable::count(
                 res.vmstat.get(Vm::HotnessCounterEvict))});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;

    // Peel off --preset before the shared parser sees the argv.
    std::string preset = "full";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--preset") {
            if (i + 1 >= argc)
                tpp_fatal("missing value after --preset");
            preset = argv[++i];
            if (preset != "smoke" && preset != "full")
                tpp_fatal("--preset expects smoke|full, got '%s'",
                          preset.c_str());
        } else {
            rest.push_back(argv[i]);
        }
    }
    const bench::BenchOptions opt = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());
    const bool smoke = preset == "smoke";

    bench::banner("Ablation: hotness sources",
                  "one promotion pipeline, four temperature signals "
                  "(1:4, hot-set recall)");

    // Per workload: the four sources through the hotness policy, then
    // stock TPP (instant hint-fault promotion) as the reference row.
    std::vector<ExperimentConfig> cfgs;
    std::vector<std::string> labels;
    for (const std::string &workload : kWorkloads) {
        for (const std::string &source : kSources) {
            ExperimentConfig cfg = baseConfig(opt, smoke);
            cfg.workload = workload;
            cfg.policy = "hotness";
            cfg.hotness.source = source;
            cfgs.push_back(cfg);
        }
        ExperimentConfig tpp_ref = baseConfig(opt, smoke);
        tpp_ref.workload = workload;
        tpp_ref.policy = "tpp";
        cfgs.push_back(tpp_ref);
    }
    labels = kSources;
    labels.push_back("tpp (reference)");

    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    const std::size_t per_workload = labels.size();
    for (std::size_t w = 0; w < kWorkloads.size(); ++w) {
        const auto begin = results.begin() +
                           static_cast<std::ptrdiff_t>(w * per_workload);
        printSourceTable(
            kWorkloads[w], labels,
            {begin, begin + static_cast<std::ptrdiff_t>(per_workload)});
    }

    // The headline claim on the cache-expansion workload: device
    // counters see every CXL access, so they must recover more of the
    // hot set than hint-fault sampling without moving more pages.
    // Loud failure beats a silent table.
    const std::size_t cache1 = 0; // kWorkloads[0]
    const ExperimentResult &hintfault =
        results[cache1 * per_workload + 0];
    const ExperimentResult &neoprof = results[cache1 * per_workload + 3];
    if (neoprof.hotSetRecall <= hintfault.hotSetRecall)
        std::printf("WARNING: neoprof recall (%.3f) does not beat "
                    "hintfault (%.3f) on cache1\n",
                    neoprof.hotSetRecall, hintfault.hotSetRecall);
    if (neoprof.vmstat.get(Vm::PgMigrateSuccess) >
        hintfault.vmstat.get(Vm::PgMigrateSuccess))
        std::printf("WARNING: neoprof migrated more pages (%llu) than "
                    "hintfault (%llu) on cache1\n",
                    static_cast<unsigned long long>(
                        neoprof.vmstat.get(Vm::PgMigrateSuccess)),
                    static_cast<unsigned long long>(
                        hintfault.vmstat.get(Vm::PgMigrateSuccess)));

    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
