/**
 * @file
 * Declarative parameter blocks for the built-in placement policies.
 *
 * These live with the PlacementPolicy *interface* in src/mm rather than
 * with the policy *implementations* so that config-consuming layers
 * (the experiment harness, benches, tests) can describe a run without
 * pulling in any policy behaviour: `harness/experiment.hh` includes
 * this header only, and the policies themselves are reached through the
 * PolicyRegistry at run time.
 */

#ifndef TPP_MM_POLICY_PARAMS_HH
#define TPP_MM_POLICY_PARAMS_HH

#include <cstdint>

#include "sim/types.hh"

namespace tpp {

/**
 * NUMA-balancing operating mode (§5.3). Classic is the pre-TPP
 * behaviour (sample everything, promote towards the faulting CPU);
 * Tiered is NUMA_BALANCING_TIERED. A system started in Classic mode
 * with only a single local node online is automatically downgraded to
 * Tiered, exactly as the paper describes.
 */
enum class NumaMode : std::uint8_t {
    AutoDetect, //!< Tiered whenever a CPU-less node exists
    Tiered,
    Classic,
};

/**
 * TPP tunables. Defaults correspond to the full mechanism as evaluated;
 * the boolean switches exist for the component ablations of §6.3.
 */
struct TppConfig {
    NumaMode mode = NumaMode::AutoDetect;
    /** /proc/sys/vm/demote_scale_factor, percent of node capacity. */
    double demoteScaleFactor = 2.0;
    /** §5.2 decoupled watermarks; off = classic coupled reclaim. */
    bool decoupleWatermarks = true;
    /** §5.3 active-LRU promotion filter; off = instant promotion. */
    bool activeLruFilter = true;
    /** §5.3 promotion ignores the allocation watermark. */
    bool promotionIgnoresWatermark = true;
    /** §5.4 allocate file/tmpfs pages on the CXL node preferably. */
    bool typeAwareAllocation = false;
    /** CXL-node hint-fault sampling cadence. */
    Tick scanPeriod = 20 * kMillisecond;
    std::uint64_t scanBatch = 512;
    /**
     * Extension (upstream follow-up to TPP, Linux 6.1's
     * numa_balancing_promote_rate_limit_MBps): cap promotion traffic at
     * this many MB/s with a small token bucket. 0 disables the limit,
     * matching the paper's TPP.
     */
    double promoteRateLimitMBps = 0.0;
};

/** Tunables mirroring the numa_balancing sysctls. */
struct NumaBalancingConfig {
    /** Scanner period (sysctl numa_balancing_scan_period). */
    Tick scanPeriod = 20 * kMillisecond;
    /** Pages sampled per node per period (scan_size equivalent). */
    std::uint64_t scanBatch = 512;
};

/** AutoTiering tunables. */
struct AutoTieringConfig {
    Tick scanPeriod = 20 * kMillisecond;
    std::uint64_t scanBatch = 512;
    /** Hint faults within this window needed before promotion. */
    Tick hotWindow = 3 * kSecond;
    std::uint8_t hotThreshold = 2;
    /** Fixed-size promotion reserve, in pages; 0 = 5 % of the local
     *  node's capacity. */
    std::uint64_t promotionReserve = 0;
};

/**
 * Every built-in policy's parameter block, bundled. PolicyRegistry
 * factories receive one of these and pick out the block they need;
 * ExperimentConfig derives from it so `cfg.tpp.scanBatch = ...` keeps
 * working unchanged at every call site.
 */
struct PolicyParams {
    TppConfig tpp;
    NumaBalancingConfig numaBalancing;
    AutoTieringConfig autoTiering;
};

} // namespace tpp

#endif // TPP_MM_POLICY_PARAMS_HH
