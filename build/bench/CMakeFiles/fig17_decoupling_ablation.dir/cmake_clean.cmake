file(REMOVE_RECURSE
  "CMakeFiles/fig17_decoupling_ablation.dir/fig17_decoupling_ablation.cpp.o"
  "CMakeFiles/fig17_decoupling_ablation.dir/fig17_decoupling_ablation.cpp.o.d"
  "fig17_decoupling_ablation"
  "fig17_decoupling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_decoupling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
