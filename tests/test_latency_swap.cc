/**
 * @file
 * Unit tests for the latency model and the swap device.
 */

#include <gtest/gtest.h>

#include "mem/latency.hh"
#include "mem/swap_device.hh"

namespace tpp {
namespace {

TEST(LatencyModel, IdleIsUninflated)
{
    LatencyModel model;
    EXPECT_DOUBLE_EQ(model.inflate(100.0, 0.0), 100.0);
}

TEST(LatencyModel, InflationMonotonicInUtilization)
{
    LatencyModel model;
    double prev = 0.0;
    for (double u = 0.0; u <= 0.95; u += 0.05) {
        const double v = model.inflate(100.0, u);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(LatencyModel, NegligibleBelowKnee)
{
    LatencyModel model;
    EXPECT_LT(model.inflate(100.0, 0.3), 101.0);
}

TEST(LatencyModel, SignificantNearSaturation)
{
    LatencyModel model;
    EXPECT_GT(model.inflate(100.0, 0.95), 150.0);
}

TEST(LatencyModel, UtilizationClampsAtMax)
{
    LatencyModel model;
    EXPECT_DOUBLE_EQ(model.inflate(100.0, 2.0),
                     model.inflate(100.0, 0.95));
}

TEST(LatencyModel, ScalesWithIdleLatency)
{
    LatencyModel model;
    EXPECT_DOUBLE_EQ(model.inflate(200.0, 0.8),
                     2.0 * model.inflate(100.0, 0.8));
}

TEST(LatencyModel, NodeAccessUsesProfile)
{
    LatencyModel model;
    MemoryNode node(0, 0, 8, NodeProfile{123.0, 10.0, false, "n"});
    EXPECT_DOUBLE_EQ(model.accessLatencyNs(node, 0), 123.0);
}

TEST(SwapDevice, PageOutInRoundTrip)
{
    SwapDevice swap;
    const SwapSlot slot = swap.pageOut(1, 42);
    ASSERT_NE(slot, kInvalidSwapSlot);
    EXPECT_EQ(swap.usedSlots(), 1u);
    EXPECT_TRUE(swap.pageIn(slot));
    EXPECT_EQ(swap.usedSlots(), 0u);
    EXPECT_EQ(swap.totalPageOuts(), 1u);
    EXPECT_EQ(swap.totalPageIns(), 1u);
}

TEST(SwapDevice, DoublePageInFails)
{
    SwapDevice swap;
    const SwapSlot slot = swap.pageOut(1, 42);
    EXPECT_TRUE(swap.pageIn(slot));
    EXPECT_FALSE(swap.pageIn(slot));
}

TEST(SwapDevice, CapacityEnforced)
{
    SwapProfile profile;
    profile.capacityPages = 2;
    SwapDevice swap(profile);
    EXPECT_NE(swap.pageOut(1, 1), kInvalidSwapSlot);
    EXPECT_NE(swap.pageOut(1, 2), kInvalidSwapSlot);
    EXPECT_EQ(swap.pageOut(1, 3), kInvalidSwapSlot);
}

TEST(SwapDevice, ReleaseFreesSlot)
{
    SwapProfile profile;
    profile.capacityPages = 1;
    SwapDevice swap(profile);
    const SwapSlot slot = swap.pageOut(1, 1);
    swap.release(slot);
    EXPECT_EQ(swap.usedSlots(), 0u);
    EXPECT_NE(swap.pageOut(1, 2), kInvalidSwapSlot);
}

TEST(SwapDevice, SlotsAreUnique)
{
    SwapDevice swap;
    const SwapSlot a = swap.pageOut(1, 1);
    const SwapSlot b = swap.pageOut(1, 2);
    EXPECT_NE(a, b);
}

TEST(SwapDevice, DefaultLatenciesAreMicrosecondScale)
{
    SwapDevice swap;
    EXPECT_GE(swap.profile().writeLatency, 10 * kMicrosecond);
    EXPECT_GE(swap.profile().readLatency, 10 * kMicrosecond);
}

} // namespace
} // namespace tpp
