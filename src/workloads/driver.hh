/**
 * @file
 * Closed-loop workload driver.
 *
 * Schedules workload batches through the event queue (so kernel daemons
 * interleave with application progress), samples per-interval statistics
 * (traffic shares, promotion/demotion rates, residency, free pages) and
 * accounts throughput over a measurement window.
 */

#ifndef TPP_WORKLOADS_DRIVER_HH
#define TPP_WORKLOADS_DRIVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "workloads/arrival.hh"
#include "workloads/latency.hh"
#include "workloads/workload.hh"

namespace tpp {

class Kernel;

/**
 * Per-operation think-time accounting, shared by every workload.
 *
 * Each workload used to carry its own copy of "CPU time per op,
 * optionally scaled by an offered-load ramp"; the duplicated arithmetic
 * lives here now. A ramp of 0 seconds divides by exactly 1.0, so
 * workloads without a ramp see their base think time bit-for-bit.
 */
class ThinkTimeModel
{
  public:
    ThinkTimeModel() = default;
    explicit ThinkTimeModel(double base_ns, double ramp_seconds = 0.0,
                            double ramp_start = 1.0)
        : baseNs_(base_ns), rampSeconds_(ramp_seconds),
          rampStart_(ramp_start)
    {
    }

    /** Think time per operation at simulated time `now`. */
    double perOpNs(Tick now) const;

    double baseNs() const { return baseNs_; }

  private:
    double baseNs_ = 0.0;
    double rampSeconds_ = 0.0;
    double rampStart_ = 1.0;
};

/** Driver configuration. */
struct DriverConfig {
    /** Stop issuing batches at this simulated time. */
    Tick runUntil = 10 * kSecond;
    /** Throughput/traffic accounting starts here (post warm-up/settle). */
    Tick measureFrom = 2 * kSecond;
    /** Cadence of the interval sampler. */
    Tick sampleEvery = 100 * kMillisecond;
    /** Open-loop traffic description; qps == 0 keeps the closed loop. */
    OpenLoopSpec openLoop;
    /** Seed for the arrival process RNG. */
    std::uint64_t openLoopSeed = 1;
    /** Max queued requests served per service batch (open loop). */
    std::uint64_t serviceBatchOps = 64;
};

/** One sampler observation. */
struct IntervalSample {
    Tick tick = 0;
    /** Fraction of interval accesses served by the first CPU node. */
    double localShare = 0.0;
    /** Promotion / demotion migration rates in pages per second. */
    double promotionRate = 0.0;
    double demotionRate = 0.0;
    /** Local-node allocation rate in pages per second. */
    double localAllocRate = 0.0;
    /** Free pages on the first CPU node. */
    std::uint64_t localFree = 0;
    /** Interval operation throughput in ops per second. */
    double throughput = 0.0;
    /** Requests waiting in the open-loop queue (0 when closed-loop). */
    std::uint64_t queueDepth = 0;
    /** Resident pages by type across all processes (Fig 9/10). */
    std::uint64_t anonResident = 0;
    std::uint64_t fileResident = 0;
    /** Resident pages by type on the first CPU node. */
    std::uint64_t anonOnLocal = 0;
    std::uint64_t fileOnLocal = 0;
};

/**
 * Runs one workload against one kernel to completion.
 */
class WorkloadDriver
{
  public:
    WorkloadDriver(Kernel &kernel, Workload &workload, DriverConfig cfg);

    /** Schedule the run; the caller then drives the event queue. */
    void start();

    /** Convenience: start() and run the event queue to completion. */
    void runToCompletion();

    // ---- results ------------------------------------------------------

    /** Ops per second inside the measurement window. */
    double throughput() const;

    /** Ops completed inside the measurement window. */
    std::uint64_t measuredOps() const { return measuredOps_; }

    /** Mean access latency inside the window (ns per access). */
    double meanAccessLatencyNs() const;

    /** Fraction of window accesses served by node `nid`. */
    double trafficShare(NodeId nid) const;

    const std::vector<IntervalSample> &samples() const { return samples_; }

    /** True once the workload finished its warm-up (if it has one). */
    bool sawWarmupEnd() const { return warmupEnded_; }
    Tick warmupEndTick() const { return warmupEndTick_; }

    // ---- open-loop results --------------------------------------------

    /** True when the driver ran an open-loop request stream. */
    bool openLoop() const { return cfg_.openLoop.enabled(); }

    /** Per-request latencies observed inside the window. */
    const LatencyHistogram &requestLatency() const { return windowLatency_; }

    /** Requests completed inside the window. */
    std::uint64_t windowRequests() const { return windowLatency_.count(); }

    /** Window requests that met the p99 SLO (all, when no SLO is set). */
    std::uint64_t windowSloMet() const { return windowSloMet_; }

    /** Arrivals shed inside the window because the queue was full. */
    std::uint64_t windowDropped() const { return windowDropped_; }

    /** Time-weighted mean queue depth over the window. */
    double meanQueueDepth() const;

    /** Peak queue depth observed inside the window. */
    std::uint64_t maxQueueDepth() const { return maxQueueDepth_; }

    /** SLO-meeting completions per second inside the window. */
    double goodputQps() const;

    /** Fraction of window arrivals that met the SLO (drops miss). */
    double sloAttainment() const;

  private:
    void batchTick();
    void openLoopTick();
    void sampleTick();
    void beginMeasurement();

    Kernel &kernel_;
    Workload &workload_;
    DriverConfig cfg_;

    bool measuring_ = false;
    std::uint64_t measuredOps_ = 0;
    Tick measureStartActual_ = 0;
    Tick lastBatchEnd_ = 0;
    double windowAccessLatencySum_ = 0.0;
    std::uint64_t windowAccessCount_ = 0;

    bool warmupEnded_ = false;
    Tick warmupEndTick_ = 0;

    // Open-loop state.
    std::unique_ptr<ArrivalProcess> arrivals_;
    std::deque<Tick> pending_;
    bool arrivalsStarted_ = false;
    Tick nextArrivalAt_ = 0;
    LatencyHistogram windowLatency_;
    std::uint64_t windowSloMet_ = 0;
    std::uint64_t windowDropped_ = 0;
    std::uint64_t droppedTotal_ = 0;
    double queueDepthIntegral_ = 0.0;
    Tick queueDepthFrom_ = 0;
    std::uint64_t maxQueueDepth_ = 0;

    std::vector<IntervalSample> samples_;
    // Sampler deltas.
    std::uint64_t lastLocalAccesses_ = 0;
    std::uint64_t lastTotalAccesses_ = 0;
    std::uint64_t lastPromotions_ = 0;
    std::uint64_t lastDemotions_ = 0;
    std::uint64_t lastLocalAllocs_ = 0;
    std::uint64_t lastOps_ = 0;
    std::uint64_t totalOps_ = 0;
    Tick lastSampleTick_ = 0;

    std::vector<std::uint64_t> trafficAtMeasureStart_;
};

} // namespace tpp

#endif // TPP_WORKLOADS_DRIVER_HH
