/**
 * @file
 * HotnessSource: one interface over every page-temperature signal the
 * repo carries, so policies can consume "which pages are hot on the
 * CXL tier?" without caring how the answer was measured.
 *
 * Four implementations ship with the subsystem:
 *
 *  - HintFaultSource   — the kernel's NUMA-hint sampling (TPP §5.3),
 *                        windowed two-touch counting per page;
 *  - DamonSource       — DAMON-lite region aggregates (mm/damon.hh),
 *                        temperature = containing region's nrAccesses;
 *  - ChameleonSource   — the PEBS-style profiler's per-page activity
 *                        bitmaps (chameleon/), recency-weighted;
 *  - NeoProfSource     — NeoMem's CXL-device counter engine: a bounded
 *                        per-page counter table with LRU eviction, a
 *                        decaying log-scale histogram and a hot
 *                        threshold auto-tuned per epoch from the
 *                        local tier's free headroom.
 *
 * The consumer contract: every epochPeriod the owning policy calls
 * advanceEpoch() (decay, histogram rebuild, threshold retune), then
 * extractHot(k) for up to k CXL-resident pages, hottest first, which it
 * feeds to the MigrationEngine as promotion requests. Extraction
 * consumes the returned pages' accumulated state: a promoted page
 * re-earns its temperature from scratch, and a failed promotion gets
 * retried only once the page proves itself hot again.
 */

#ifndef TPP_HOTNESS_HOTNESS_SOURCE_HH
#define TPP_HOTNESS_HOTNESS_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "mm/policy_params.hh"
#include "sim/types.hh"
#include "workloads/workload.hh"

namespace tpp {

class Kernel;

/** One promotion candidate from extractHot(), hottest first. */
struct HotPage {
    Pfn pfn = kInvalidPfn;
    NodeId nid = kInvalidNode;  //!< CXL node the page resides on
    double temperature = 0.0;   //!< source-specific hotness score
};

/**
 * A pluggable page-temperature signal.
 */
class HotnessSource
{
  public:
    virtual ~HotnessSource() = default;

    /** Registered source name ("hintfault", "neoprof", ...). */
    virtual std::string name() const = 0;

    /** Called once when the owning policy attaches to a kernel. */
    virtual void attach(Kernel &kernel) { kernel_ = &kernel; }

    /** Called at simulation start; sources schedule daemons here. */
    virtual void start() {}

    /** Current temperature of one page; 0 when untracked/cold. */
    virtual double temperature(Pfn pfn) const = 0;

    /**
     * Up to `max_pages` CXL-resident hot pages, hottest first.
     * Consumes the returned pages' accumulated hotness state.
     */
    virtual std::vector<HotPage> extractHot(std::uint64_t max_pages) = 0;

    /** Epoch boundary: decay, expire, retune thresholds. */
    virtual void advanceEpoch() {}

    /** Hint-fault feed; only meaningful when wantsHintFaults(). */
    virtual void
    noteHintFault(Pfn pfn, NodeId task_nid)
    {
        (void)pfn;
        (void)task_nid;
    }

    /** True when this source needs NUMA-hint sampling to run. */
    virtual bool wantsHintFaults() const { return false; }

    /**
     * Workload-side observer to install, or nullptr. Sources modelling
     * user-space profilers (Chameleon) watch the reference stream here;
     * device-side sources use the kernel access tap instead.
     */
    virtual AccessObserver observer() { return nullptr; }

  protected:
    /** @return true when `pfn` maps a live page on a CXL node. */
    bool cxlResident(Pfn pfn) const;

    Kernel *kernel_ = nullptr;
};

/**
 * Build a source by `cfg.source` name. The config reference must
 * outlive the source (the owning policy keeps both, so sysctl writes to
 * the config are live). Unknown names fatal() with the known list.
 */
std::unique_ptr<HotnessSource> makeHotnessSource(const HotnessConfig &cfg);

/** Names makeHotnessSource accepts, sorted. */
std::vector<std::string> hotnessSourceNames();

} // namespace tpp

#endif // TPP_HOTNESS_HOTNESS_SOURCE_HH
