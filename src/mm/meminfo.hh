/**
 * @file
 * /proc/meminfo- and /proc/zoneinfo-style reporting: per-node memory
 * state (free pages, watermark ladder, LRU list sizes, residency by
 * type) and a machine summary. Diagnostic tools print these; tests use
 * the struct form.
 */

#ifndef TPP_MM_MEMINFO_HH
#define TPP_MM_MEMINFO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tpp {

class Kernel;

/** Snapshot of one node's memory state. */
struct NodeMemInfo {
    NodeId nid = 0;
    std::string name;
    bool cpuLess = false;
    std::uint64_t capacityPages = 0;
    std::uint64_t freePages = 0;
    std::uint64_t min = 0, low = 0, high = 0;
    std::uint64_t demoteTrigger = 0, demoteTarget = 0;
    std::uint64_t activeAnon = 0, inactiveAnon = 0;
    std::uint64_t activeFile = 0, inactiveFile = 0;

    std::uint64_t
    lruTotal() const
    {
        return activeAnon + inactiveAnon + activeFile + inactiveFile;
    }
};

/** Machine-wide snapshot. */
struct MemInfo {
    std::vector<NodeMemInfo> nodes;
    std::uint64_t totalPages = 0;
    std::uint64_t totalFree = 0;
    std::uint64_t swapUsedSlots = 0;

    std::uint64_t
    totalUsed() const
    {
        return totalPages - totalFree;
    }
};

/** Collect the current snapshot. */
MemInfo collectMemInfo(const Kernel &kernel);

/** Render a zoneinfo-style text report. */
std::string renderMemInfo(const MemInfo &info);

} // namespace tpp

#endif // TPP_MM_MEMINFO_HH
