#include "sim/rng.hh"

namespace tpp {

namespace {

/** SplitMix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace tpp
