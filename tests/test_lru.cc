/**
 * @file
 * Unit tests for the intrusive per-node LRU lists.
 */

#include <vector>

#include <gtest/gtest.h>

#include "mm/lru.hh"
#include "sim/logging.hh"

namespace tpp {
namespace {

struct LruFixture : public ::testing::Test {
    LruFixture()
        : mem(TopologyBuilder::cxlSystem(64, 64)), lru(mem, 0)
    {
        setLogVerbose(false);
        // Take frames off the free list so they can be LRU members.
        for (int i = 0; i < 16; ++i) {
            const Pfn pfn = mem.node(0).takeFree();
            mem.frame(pfn).markAllocated();
            frames.push_back(pfn);
        }
    }

    MemorySystem mem;
    LruSet lru;
    std::vector<Pfn> frames;
};

TEST_F(LruFixture, AddHeadOrdering)
{
    lru.addHead(LruListId::InactiveAnon, frames[0]);
    lru.addHead(LruListId::InactiveAnon, frames[1]);
    lru.addHead(LruListId::InactiveAnon, frames[2]);
    EXPECT_EQ(lru.head(LruListId::InactiveAnon), frames[2]);
    EXPECT_EQ(lru.tail(LruListId::InactiveAnon), frames[0]);
    EXPECT_EQ(lru.count(LruListId::InactiveAnon), 3u);
    lru.checkConsistency();
}

TEST_F(LruFixture, AddTailOrdering)
{
    lru.addTail(LruListId::InactiveFile, frames[0]);
    lru.addTail(LruListId::InactiveFile, frames[1]);
    EXPECT_EQ(lru.head(LruListId::InactiveFile), frames[0]);
    EXPECT_EQ(lru.tail(LruListId::InactiveFile), frames[1]);
    lru.checkConsistency();
}

TEST_F(LruFixture, RemoveMiddleKeepsLinks)
{
    for (int i = 0; i < 3; ++i)
        lru.addHead(LruListId::InactiveAnon, frames[i]);
    lru.remove(frames[1]);
    EXPECT_EQ(lru.count(LruListId::InactiveAnon), 2u);
    EXPECT_EQ(lru.head(LruListId::InactiveAnon), frames[2]);
    EXPECT_EQ(lru.tail(LruListId::InactiveAnon), frames[0]);
    EXPECT_EQ(mem.frame(frames[1]).lru, LruListId::None);
    lru.checkConsistency();
}

TEST_F(LruFixture, RemoveOnlyElementEmptiesList)
{
    lru.addHead(LruListId::ActiveFile, frames[0]);
    lru.remove(frames[0]);
    EXPECT_EQ(lru.head(LruListId::ActiveFile), kInvalidPfn);
    EXPECT_EQ(lru.tail(LruListId::ActiveFile), kInvalidPfn);
    EXPECT_EQ(lru.count(LruListId::ActiveFile), 0u);
    lru.checkConsistency();
}

TEST_F(LruFixture, ActivateMovesToActiveHead)
{
    mem.frame(frames[0]).type = PageType::Anon;
    lru.addHead(LruListId::InactiveAnon, frames[0]);
    lru.activate(frames[0]);
    EXPECT_EQ(mem.frame(frames[0]).lru, LruListId::ActiveAnon);
    EXPECT_EQ(lru.count(LruListId::InactiveAnon), 0u);
    EXPECT_EQ(lru.count(LruListId::ActiveAnon), 1u);
    lru.checkConsistency();
}

TEST_F(LruFixture, DeactivateMovesToInactiveHead)
{
    mem.frame(frames[0]).type = PageType::File;
    lru.addHead(LruListId::ActiveFile, frames[0]);
    lru.deactivate(frames[0]);
    EXPECT_EQ(mem.frame(frames[0]).lru, LruListId::InactiveFile);
    lru.checkConsistency();
}

TEST_F(LruFixture, RotateToHead)
{
    for (int i = 0; i < 3; ++i)
        lru.addHead(LruListId::InactiveAnon, frames[i]);
    // frames[0] is the tail; rotate makes it the head.
    lru.rotate(frames[0]);
    EXPECT_EQ(lru.head(LruListId::InactiveAnon), frames[0]);
    EXPECT_EQ(lru.tail(LruListId::InactiveAnon), frames[1]);
    lru.checkConsistency();
}

TEST_F(LruFixture, CountsByType)
{
    mem.frame(frames[0]).type = PageType::Anon;
    mem.frame(frames[1]).type = PageType::Anon;
    mem.frame(frames[2]).type = PageType::File;
    lru.addHead(LruListId::InactiveAnon, frames[0]);
    lru.addHead(LruListId::ActiveAnon, frames[1]);
    lru.addHead(LruListId::InactiveFile, frames[2]);
    EXPECT_EQ(lru.countType(PageType::Anon), 2u);
    EXPECT_EQ(lru.countType(PageType::File), 1u);
    EXPECT_EQ(lru.countAll(), 3u);
    EXPECT_EQ(lru.countInactive(), 2u);
}

TEST_F(LruFixture, WalkFromTailVisitsInOrder)
{
    for (int i = 0; i < 4; ++i)
        lru.addHead(LruListId::InactiveAnon, frames[i]);
    std::vector<Pfn> visited;
    lru.walkFromTail(LruListId::InactiveAnon, [&](Pfn pfn) {
        visited.push_back(pfn);
        return true;
    });
    EXPECT_EQ(visited,
              (std::vector<Pfn>{frames[0], frames[1], frames[2],
                                frames[3]}));
}

TEST_F(LruFixture, WalkFromTailEarlyStop)
{
    for (int i = 0; i < 4; ++i)
        lru.addHead(LruListId::InactiveAnon, frames[i]);
    int visits = 0;
    lru.walkFromTail(LruListId::InactiveAnon, [&](Pfn) {
        visits++;
        return visits < 2;
    });
    EXPECT_EQ(visits, 2);
}

TEST_F(LruFixture, LruHelpers)
{
    EXPECT_TRUE(lruIsActive(LruListId::ActiveAnon));
    EXPECT_TRUE(lruIsActive(LruListId::ActiveFile));
    EXPECT_FALSE(lruIsActive(LruListId::InactiveAnon));
    EXPECT_EQ(lruListFor(PageType::Anon, true), LruListId::ActiveAnon);
    EXPECT_EQ(lruListFor(PageType::File, false),
              LruListId::InactiveFile);
    EXPECT_EQ(lruPageType(LruListId::ActiveAnon), PageType::Anon);
    EXPECT_EQ(lruPageType(LruListId::InactiveFile), PageType::File);
}

TEST_F(LruFixture, DoubleAddPanics)
{
    lru.addHead(LruListId::InactiveAnon, frames[0]);
    EXPECT_DEATH(lru.addHead(LruListId::InactiveAnon, frames[0]),
                 "already on a list");
}

TEST_F(LruFixture, RemoveUnlistedPanics)
{
    EXPECT_DEATH(lru.remove(frames[0]), "not on any list");
}

TEST_F(LruFixture, ForeignNodeFramePanics)
{
    const Pfn foreign = mem.node(1).takeFree();
    mem.frame(foreign).markAllocated();
    EXPECT_DEATH(lru.addHead(LruListId::InactiveAnon, foreign),
                 "belongs to node");
}

TEST_F(LruFixture, ActivateActivePanics)
{
    lru.addHead(LruListId::ActiveAnon, frames[0]);
    EXPECT_DEATH(lru.activate(frames[0]), "already active");
}

} // namespace
} // namespace tpp
