#include "workloads/driver.hh"

#include <algorithm>

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

namespace {

/**
 * Open-loop queue bound. Arrivals beyond this are shed (and counted as
 * SLO misses): an overloaded run's tail is unbounded either way, and
 * the cap keeps a 20-second overload from holding gigabytes of
 * timestamps.
 */
constexpr std::size_t kMaxPendingRequests = 1u << 20;

} // namespace

double
ThinkTimeModel::perOpNs(Tick now) const
{
    // Offered-load ramp: lighter load means more think time per op.
    double load = 1.0;
    if (rampSeconds_ > 0.0) {
        const double elapsed =
            static_cast<double>(now) / static_cast<double>(kSecond);
        const double progress = std::min(1.0, elapsed / rampSeconds_);
        load = rampStart_ + (1.0 - rampStart_) * progress;
    }
    return baseNs_ / load;
}

WorkloadDriver::WorkloadDriver(Kernel &kernel, Workload &workload,
                               DriverConfig cfg)
    : kernel_(kernel), workload_(workload), cfg_(cfg)
{
    if (cfg_.measureFrom > cfg_.runUntil)
        tpp_fatal("driver measurement window starts after the run ends");
    if (cfg_.openLoop.enabled())
        arrivals_ = ArrivalProcess::make(cfg_.openLoop, cfg_.openLoopSeed);
}

void
WorkloadDriver::start()
{
    workload_.init(kernel_);
    EventQueue &eq = kernel_.eventQueue();
    lastSampleTick_ = eq.now();
    if (arrivals_)
        eq.scheduleAfter(0, [this] { openLoopTick(); });
    else
        eq.scheduleAfter(0, [this] { batchTick(); });
    eq.scheduleAfter(cfg_.sampleEvery, [this] { sampleTick(); });
    eq.schedule(cfg_.measureFrom, [this] { beginMeasurement(); });
}

void
WorkloadDriver::runToCompletion()
{
    start();
    kernel_.eventQueue().run(cfg_.runUntil);
}

void
WorkloadDriver::batchTick()
{
    EventQueue &eq = kernel_.eventQueue();
    if (eq.now() >= cfg_.runUntil || workload_.done())
        return;

    const bool was_warm = workload_.warmedUp();
    const BatchResult result = workload_.runBatch(kernel_);
    if (!warmupEnded_ && !was_warm && workload_.warmedUp()) {
        warmupEnded_ = true;
        warmupEndTick_ = eq.now();
    }

    totalOps_ += result.ops;
    if (measuring_) {
        measuredOps_ += result.ops;
        windowAccessLatencySum_ += result.memLatencyNs;
        windowAccessCount_ += result.accesses;
    }

    const Tick duration =
        std::max<Tick>(1, static_cast<Tick>(result.durationNs));
    lastBatchEnd_ = eq.now() + duration;
    eq.scheduleAfter(duration, [this] { batchTick(); });
}

void
WorkloadDriver::openLoopTick()
{
    EventQueue &eq = kernel_.eventQueue();
    const Tick now = eq.now();
    if (now >= cfg_.runUntil || workload_.done())
        return;

    // Finish any warm-up closed-loop before admitting traffic; an
    // open-loop stream against an unpopulated working set would only
    // measure fault latency.
    if (!workload_.warmedUp()) {
        const BatchResult result = workload_.runBatch(kernel_);
        if (!warmupEnded_ && workload_.warmedUp()) {
            warmupEnded_ = true;
            warmupEndTick_ = eq.now();
        }
        const Tick duration =
            std::max<Tick>(1, static_cast<Tick>(result.durationNs));
        lastBatchEnd_ = now + duration;
        eq.scheduleAfter(duration, [this] { openLoopTick(); });
        return;
    }

    if (!arrivalsStarted_) {
        arrivalsStarted_ = true;
        nextArrivalAt_ = now + arrivals_->nextGap(now);
    }

    // Admit every arrival due by now. The stream does not wait for the
    // service: when batches run long the queue grows, and that queueing
    // delay is exactly what the latency tail measures.
    while (nextArrivalAt_ <= now) {
        if (pending_.size() < kMaxPendingRequests) {
            pending_.push_back(nextArrivalAt_);
        } else {
            droppedTotal_++;
            if (measuring_)
                windowDropped_++;
        }
        nextArrivalAt_ += arrivals_->nextGap(nextArrivalAt_);
    }

    if (measuring_) {
        queueDepthIntegral_ += static_cast<double>(pending_.size()) *
                               static_cast<double>(now - queueDepthFrom_);
        queueDepthFrom_ = now;
        maxQueueDepth_ = std::max<std::uint64_t>(maxQueueDepth_,
                                                 pending_.size());
    }

    if (pending_.empty()) {
        // Idle until the next arrival.
        if (nextArrivalAt_ >= cfg_.runUntil)
            return;
        eq.schedule(nextArrivalAt_, [this] { openLoopTick(); });
        return;
    }

    const std::uint64_t n = std::min<std::uint64_t>(
        pending_.size(), std::max<std::uint64_t>(1, cfg_.serviceBatchOps));
    const BatchResult result = workload_.runOps(kernel_, n);

    totalOps_ += result.ops;
    if (measuring_) {
        measuredOps_ += result.ops;
        windowAccessLatencySum_ += result.memLatencyNs;
        windowAccessCount_ += result.accesses;
    }

    const Tick duration =
        std::max<Tick>(1, static_cast<Tick>(result.durationNs));
    const std::uint64_t served =
        std::min<std::uint64_t>(result.ops, pending_.size());
    const double slo_ns = cfg_.openLoop.sloP99Us * 1000.0;
    for (std::uint64_t i = 0; i < served; ++i) {
        const Tick arrived = pending_.front();
        pending_.pop_front();
        // Completions spread linearly across the batch.
        const Tick completed =
            now + static_cast<Tick>(
                      static_cast<double>(duration) *
                      static_cast<double>(i + 1) /
                      static_cast<double>(served));
        const double latency_ns =
            static_cast<double>(completed - std::min(arrived, completed));
        if (measuring_) {
            windowLatency_.record(latency_ns);
            if (slo_ns <= 0.0 || latency_ns <= slo_ns)
                windowSloMet_++;
        }
    }

    lastBatchEnd_ = now + duration;
    eq.scheduleAfter(duration, [this] { openLoopTick(); });
}

void
WorkloadDriver::beginMeasurement()
{
    measuring_ = true;
    measureStartActual_ = kernel_.eventQueue().now();
    queueDepthFrom_ = measureStartActual_;
    trafficAtMeasureStart_.clear();
    for (std::size_t i = 0; i < kernel_.mem().numNodes(); ++i) {
        trafficAtMeasureStart_.push_back(
            kernel_.traffic(static_cast<NodeId>(i)).accesses);
    }
}

void
WorkloadDriver::sampleTick()
{
    EventQueue &eq = kernel_.eventQueue();
    const Tick now = eq.now();
    const double dt_sec = static_cast<double>(now - lastSampleTick_) /
                          static_cast<double>(kSecond);
    lastSampleTick_ = now;

    // "Local" aggregates every toptier node: on a multi-socket machine
    // socket-1 traffic is just as local as socket-0's.
    std::uint64_t local_acc = 0;
    std::uint64_t local_allocs = 0;
    for (NodeId nid : kernel_.mem().tiers().toptierNodes()) {
        local_acc += kernel_.traffic(nid).accesses;
        local_allocs += kernel_.traffic(nid).appAllocs;
    }
    std::uint64_t total_acc = 0;
    for (std::size_t i = 0; i < kernel_.mem().numNodes(); ++i)
        total_acc += kernel_.traffic(static_cast<NodeId>(i)).accesses;

    const VmStat &vs = kernel_.vmstat();
    const std::uint64_t promos = vs.get(Vm::PgPromoteSuccess);
    const std::uint64_t demos =
        vs.get(Vm::PgDemoteAnon) + vs.get(Vm::PgDemoteFile);

    IntervalSample sample;
    sample.tick = now;
    const std::uint64_t d_total = total_acc - lastTotalAccesses_;
    const std::uint64_t d_local = local_acc - lastLocalAccesses_;
    sample.localShare =
        d_total ? static_cast<double>(d_local) /
                      static_cast<double>(d_total)
                : 0.0;
    if (dt_sec > 0.0) {
        sample.promotionRate =
            static_cast<double>(promos - lastPromotions_) / dt_sec;
        sample.demotionRate =
            static_cast<double>(demos - lastDemotions_) / dt_sec;
        sample.localAllocRate =
            static_cast<double>(local_allocs - lastLocalAllocs_) / dt_sec;
        sample.throughput =
            static_cast<double>(totalOps_ - lastOps_) / dt_sec;
    }
    sample.queueDepth = pending_.size();
    for (std::size_t p = 0; p < kernel_.numProcesses(); ++p) {
        const AddressSpace &as =
            kernel_.addressSpace(static_cast<Asid>(p));
        sample.anonResident += as.residentPages(PageType::Anon);
        sample.fileResident += as.residentPages(PageType::File);
    }
    for (NodeId nid : kernel_.mem().tiers().toptierNodes()) {
        sample.localFree += kernel_.mem().node(nid).freePages();
        sample.anonOnLocal += kernel_.residentPages(nid, PageType::Anon);
        sample.fileOnLocal += kernel_.residentPages(nid, PageType::File);
    }
    samples_.push_back(sample);

    lastLocalAccesses_ = local_acc;
    lastTotalAccesses_ = total_acc;
    lastPromotions_ = promos;
    lastDemotions_ = demos;
    lastLocalAllocs_ = local_allocs;
    lastOps_ = totalOps_;

    if (now + cfg_.sampleEvery <= cfg_.runUntil)
        eq.scheduleAfter(cfg_.sampleEvery, [this] { sampleTick(); });
}

double
WorkloadDriver::throughput() const
{
    if (lastBatchEnd_ <= measureStartActual_ || measuredOps_ == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(lastBatchEnd_ - measureStartActual_) /
        static_cast<double>(kSecond);
    return static_cast<double>(measuredOps_) / seconds;
}

double
WorkloadDriver::meanAccessLatencyNs() const
{
    if (windowAccessCount_ == 0)
        return 0.0;
    return windowAccessLatencySum_ /
           static_cast<double>(windowAccessCount_);
}

double
WorkloadDriver::meanQueueDepth() const
{
    if (queueDepthFrom_ <= measureStartActual_)
        return 0.0;
    return queueDepthIntegral_ /
           static_cast<double>(queueDepthFrom_ - measureStartActual_);
}

double
WorkloadDriver::goodputQps() const
{
    if (lastBatchEnd_ <= measureStartActual_ || windowSloMet_ == 0)
        return 0.0;
    const double seconds =
        static_cast<double>(lastBatchEnd_ - measureStartActual_) /
        static_cast<double>(kSecond);
    return static_cast<double>(windowSloMet_) / seconds;
}

double
WorkloadDriver::sloAttainment() const
{
    const std::uint64_t offered = windowLatency_.count() + windowDropped_;
    if (offered == 0)
        return 1.0;
    return static_cast<double>(windowSloMet_) /
           static_cast<double>(offered);
}

double
WorkloadDriver::trafficShare(NodeId nid) const
{
    if (trafficAtMeasureStart_.empty())
        return kernel_.trafficShare(nid);
    std::uint64_t total = 0;
    std::uint64_t mine = 0;
    for (std::size_t i = 0; i < kernel_.mem().numNodes(); ++i) {
        const std::uint64_t delta =
            kernel_.traffic(static_cast<NodeId>(i)).accesses -
            trafficAtMeasureStart_[i];
        total += delta;
        if (static_cast<NodeId>(i) == nid)
            mine = delta;
    }
    if (total == 0)
        return 0.0;
    return static_cast<double>(mine) / static_cast<double>(total);
}

} // namespace tpp
