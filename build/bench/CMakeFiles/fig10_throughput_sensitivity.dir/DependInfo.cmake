
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_throughput_sensitivity.cpp" "bench/CMakeFiles/fig10_throughput_sensitivity.dir/fig10_throughput_sensitivity.cpp.o" "gcc" "bench/CMakeFiles/fig10_throughput_sensitivity.dir/fig10_throughput_sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/tpp_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/tpp_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/chameleon/CMakeFiles/tpp_chameleon.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tpp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/tpp_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tpp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
