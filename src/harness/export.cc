#include "harness/export.hh"

#include <algorithm>
#include <iomanip>

#include "trace/trace_io.hh"

namespace tpp {

namespace {

/** Minimal JSON string escaping (names here are ASCII identifiers). */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\n\r") == std::string::npos)
        return value;
    std::string out;
    out.reserve(value.size() + 2);
    out.push_back('"');
    for (char c : value) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void
writeResultsCsv(std::ostream &out,
                const std::vector<ExperimentResult> &results)
{
    // Open-loop, per-node and error columns appear only when some run
    // carries them, so closed-loop two-node outputs stay byte-identical
    // to before those layers existed.
    bool open = false;
    bool errors = false;
    std::size_t node_cols = 0;
    for (const ExperimentResult &r : results) {
        open = open || r.openLoop.enabled;
        errors = errors || r.failed();
        node_cols = std::max(node_cols, r.nodes.size());
    }
    out << "workload,policy,throughput_ops_s,mean_access_latency_ns,"
           "local_traffic_share,cxl_traffic_share,anon_local_residency,"
           "file_local_residency,hot_set_recall";
    if (open) {
        out << ",offered_qps,p50_us,p99_us,p999_us,mean_queue_depth,"
               "goodput_ops_s,slo_attainment";
    }
    for (std::size_t i = 0; i < node_cols; ++i) {
        out << ",node" << i << "_name,node" << i << "_tier,node" << i
            << "_anon,node" << i << "_file,node" << i << "_free,node"
            << i << "_traffic_share";
    }
    if (errors)
        out << ",error";
    out << '\n';
    for (const ExperimentResult &r : results) {
        out << csvField(r.workload) << ',' << csvField(r.policy) << ','
            << std::fixed << std::setprecision(3) << r.throughput << ','
            << r.meanAccessLatencyNs << ',' << r.localTrafficShare << ','
            << r.cxlTrafficShare << ',' << r.anonLocalResidency << ','
            << r.fileLocalResidency << ',' << r.hotSetRecall;
        if (open) {
            const OpenLoopResult &ol = r.openLoop;
            out << ',' << ol.offeredQps << ',' << ol.p50Ns / 1000.0
                << ',' << ol.p99Ns / 1000.0 << ',' << ol.p999Ns / 1000.0
                << ',' << ol.meanQueueDepth << ',' << ol.goodputQps
                << ',' << std::setprecision(4) << ol.sloAttainment
                << std::setprecision(3);
        }
        for (std::size_t i = 0; i < node_cols; ++i) {
            if (i < r.nodes.size()) {
                const NodeResult &n = r.nodes[i];
                out << ',' << csvField(n.name) << ',' << n.tierRank
                    << ',' << n.anonPages << ',' << n.filePages << ','
                    << n.freePages << ',' << std::setprecision(4)
                    << n.trafficShare << std::setprecision(3);
            } else {
                // Mixed machine sizes in one sweep: pad the short rows.
                out << ",,,,,,";
            }
        }
        if (errors)
            out << ',' << csvField(r.error);
        out << '\n';
    }
}

void
writeTenantsCsv(std::ostream &out,
                const std::vector<ExperimentResult> &results)
{
    bool open = false;
    for (const ExperimentResult &r : results)
        for (const TenantResult &t : r.tenants)
            open = open || t.openLoop.enabled;
    out << "run_workload,policy,tenant,tenant_workload,"
           "throughput_ops_s,mean_access_latency_ns,local_residency,"
           "pages_local,pages_total,hot_set_recall,promote_success,"
           "demotions,reclaim_protected,reclaim_low,migrate_throttled";
    if (open) {
        out << ",offered_qps,arrival,requests,dropped,p50_us,p99_us,"
               "p999_us,mean_queue_depth,goodput_ops_s,slo_p99_us,"
               "slo_attainment";
    }
    out << '\n';
    for (const ExperimentResult &r : results) {
        for (const TenantResult &t : r.tenants) {
            out << csvField(r.workload) << ',' << csvField(r.policy)
                << ',' << csvField(t.name) << ','
                << csvField(t.workload) << ',' << std::fixed
                << std::setprecision(3) << t.throughput << ','
                << t.meanAccessLatencyNs << ',' << t.localResidency
                << ',' << t.pagesLocal << ',' << t.pagesTotal << ','
                << t.hotSetRecall << ',' << t.memcg.promoteSuccess << ','
                << t.memcg.demotions << ','
                << t.memcg.reclaimProtected << ',' << t.memcg.reclaimLow
                << ',' << t.memcg.migrateThrottled;
            if (open) {
                const OpenLoopResult &ol = t.openLoop;
                out << ',' << ol.offeredQps << ','
                    << csvField(ol.arrival) << ',' << ol.requests << ','
                    << ol.dropped << ',' << ol.p50Ns / 1000.0 << ','
                    << ol.p99Ns / 1000.0 << ',' << ol.p999Ns / 1000.0
                    << ',' << ol.meanQueueDepth << ',' << ol.goodputQps
                    << ',' << ol.sloP99Us << ',' << std::setprecision(4)
                    << ol.sloAttainment << std::setprecision(3);
            }
            out << '\n';
        }
    }
}

void
writeSamplesCsv(std::ostream &out, const ExperimentResult &result)
{
    const bool open = result.openLoop.enabled;
    out << "tick_ns,local_share,promotion_pages_s,demotion_pages_s,"
           "local_alloc_pages_s,local_free_pages,throughput_ops_s,"
           "anon_resident,file_resident";
    if (open)
        out << ",queue_depth";
    out << '\n';
    for (const IntervalSample &s : result.samples) {
        out << s.tick << ',' << std::fixed << std::setprecision(4)
            << s.localShare << ',' << s.promotionRate << ','
            << s.demotionRate << ',' << s.localAllocRate << ','
            << s.localFree << ',' << s.throughput << ','
            << s.anonResident << ',' << s.fileResident;
        if (open)
            out << ',' << s.queueDepth;
        out << '\n';
    }
}

void
writeResultJson(std::ostream &out, const ExperimentResult &result)
{
    out << "{\n";
    out << "  \"workload\": \"" << jsonEscape(result.workload) << "\",\n";
    out << "  \"policy\": \"" << jsonEscape(result.policy) << "\",\n";
    out << "  \"throughput_ops_s\": " << std::fixed
        << std::setprecision(3) << result.throughput << ",\n";
    out << "  \"mean_access_latency_ns\": " << result.meanAccessLatencyNs
        << ",\n";
    out << "  \"local_traffic_share\": " << result.localTrafficShare
        << ",\n";
    out << "  \"cxl_traffic_share\": " << result.cxlTrafficShare << ",\n";
    out << "  \"anon_local_residency\": " << result.anonLocalResidency
        << ",\n";
    out << "  \"file_local_residency\": " << result.fileLocalResidency
        << ",\n";
    out << "  \"hot_set_recall\": " << result.hotSetRecall << ",\n";
    out << "  \"hot_set_pages\": " << result.hotSetPages << ",\n";
    if (result.failed())
        out << "  \"error\": \"" << jsonEscape(result.error) << "\",\n";
    if (result.openLoop.enabled) {
        const OpenLoopResult &ol = result.openLoop;
        out << "  \"open_loop\": {\n";
        out << "    \"offered_qps\": " << ol.offeredQps << ",\n";
        out << "    \"arrival\": \"" << jsonEscape(ol.arrival) << "\",\n";
        out << "    \"requests\": " << ol.requests << ",\n";
        out << "    \"dropped\": " << ol.dropped << ",\n";
        out << "    \"p50_us\": " << ol.p50Ns / 1000.0 << ",\n";
        out << "    \"p99_us\": " << ol.p99Ns / 1000.0 << ",\n";
        out << "    \"p999_us\": " << ol.p999Ns / 1000.0 << ",\n";
        out << "    \"max_us\": " << ol.maxNs / 1000.0 << ",\n";
        out << "    \"mean_us\": " << ol.meanNs / 1000.0 << ",\n";
        out << "    \"mean_queue_depth\": " << ol.meanQueueDepth << ",\n";
        out << "    \"max_queue_depth\": " << ol.maxQueueDepth << ",\n";
        out << "    \"goodput_ops_s\": " << ol.goodputQps << ",\n";
        out << "    \"slo_p99_us\": " << ol.sloP99Us << ",\n";
        out << "    \"slo_attainment\": " << std::setprecision(4)
            << ol.sloAttainment << std::setprecision(3) << "\n";
        out << "  },\n";
    }
    out << "  \"vmstat\": {";
    bool first = true;
    for (std::size_t i = 0; i < kNumVmCounters; ++i) {
        const Vm counter = static_cast<Vm>(i);
        const std::uint64_t value = result.vmstat.get(counter);
        if (value == 0)
            continue;
        if (!first)
            out << ',';
        first = false;
        out << "\n    \"" << vmName(counter) << "\": " << value;
    }
    out << "\n  },\n";
    if (!result.nodes.empty()) {
        out << "  \"nodes\": [";
        for (std::size_t i = 0; i < result.nodes.size(); ++i) {
            const NodeResult &n = result.nodes[i];
            if (i)
                out << ',';
            out << "\n    {\"name\": \"" << jsonEscape(n.name)
                << "\", \"tier\": " << n.tierRank
                << ", \"capacity_pages\": " << n.capacityPages
                << ", \"anon_pages\": " << n.anonPages
                << ", \"file_pages\": " << n.filePages
                << ", \"free_pages\": " << n.freePages
                << ", \"traffic_share\": " << std::setprecision(4)
                << n.trafficShare << std::setprecision(3) << "}";
        }
        out << "\n  ],\n";
    }
    if (!result.tenants.empty()) {
        out << "  \"tenants\": [";
        for (std::size_t i = 0; i < result.tenants.size(); ++i) {
            const TenantResult &t = result.tenants[i];
            if (i)
                out << ',';
            out << "\n    {\"name\": \"" << jsonEscape(t.name)
                << "\", \"workload\": \"" << jsonEscape(t.workload)
                << "\", \"throughput_ops_s\": " << std::fixed
                << std::setprecision(3) << t.throughput
                << ", \"mean_access_latency_ns\": "
                << t.meanAccessLatencyNs
                << ", \"local_residency\": " << t.localResidency
                << ", \"pages_local\": " << t.pagesLocal
                << ", \"pages_total\": " << t.pagesTotal
                << ", \"hot_set_recall\": " << t.hotSetRecall
                << ", \"promote_success\": " << t.memcg.promoteSuccess
                << ", \"demotions\": " << t.memcg.demotions
                << ", \"reclaim_protected\": "
                << t.memcg.reclaimProtected
                << ", \"reclaim_low\": " << t.memcg.reclaimLow
                << ", \"migrate_throttled\": "
                << t.memcg.migrateThrottled;
            if (t.openLoop.enabled) {
                out << ", \"offered_qps\": " << t.openLoop.offeredQps
                    << ", \"arrival\": \""
                    << jsonEscape(t.openLoop.arrival)
                    << "\", \"p99_us\": " << t.openLoop.p99Ns / 1000.0
                    << ", \"goodput_ops_s\": " << t.openLoop.goodputQps
                    << ", \"slo_p99_us\": " << t.openLoop.sloP99Us
                    << ", \"slo_attainment\": " << std::setprecision(4)
                    << t.openLoop.sloAttainment << std::setprecision(3);
            }
            out << "}";
        }
        out << "\n  ],\n";
    }
    out << "  \"samples\": [";
    for (std::size_t i = 0; i < result.samples.size(); ++i) {
        const IntervalSample &s = result.samples[i];
        if (i)
            out << ',';
        out << "\n    {\"tick_ns\": " << s.tick
            << ", \"local_share\": " << std::setprecision(4)
            << s.localShare << ", \"throughput_ops_s\": " << s.throughput
            << "}";
    }
    out << "\n  ]\n}\n";
}

void
writeTraceJsonl(std::ostream &out, const ExperimentResult &result)
{
    for (const TraceRecord &record : result.trace)
        writeTraceEventJsonl(out, record, result.workload, result.policy);
    for (const TimeSeriesPoint &point : result.series)
        writeSamplePointJsonl(out, point, result.workload, result.policy);
}

void
writeSeriesCsv(std::ostream &out, const ExperimentResult &result)
{
    out << "tick_ns,window_ns,promotion_pages_s,demotion_pages_s,"
           "hint_faults_s,alloc_fallback_s,anon_resident,file_resident";
    if (!result.series.empty())
        for (const NodeUsagePoint &n : result.series.front().nodes)
            out << ",node" << static_cast<unsigned>(n.nid) << "_free"
                << ",node" << static_cast<unsigned>(n.nid) << "_anon"
                << ",node" << static_cast<unsigned>(n.nid) << "_file";
    out << '\n';
    for (const TimeSeriesPoint &p : result.series) {
        out << p.tick << ',' << p.windowNs << ',' << std::fixed
            << std::setprecision(3) << p.promotionRate() << ','
            << p.demotionRate() << ','
            << p.ratePerSec(Vm::NumaHintFaults) << ','
            << p.ratePerSec(Vm::PgAllocFallback) << ','
            << p.anonResident() << ',' << p.fileResident();
        for (const NodeUsagePoint &n : p.nodes)
            out << ',' << n.freePages << ',' << n.anonResident() << ','
                << n.fileResident();
        out << '\n';
    }
}

} // namespace tpp
