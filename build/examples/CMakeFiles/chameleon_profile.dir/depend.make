# Empty dependencies file for chameleon_profile.
# This may be replaced when dependencies are built.
