# Empty compiler generated dependencies file for tpp_sim.
# This may be replaced when dependencies are built.
