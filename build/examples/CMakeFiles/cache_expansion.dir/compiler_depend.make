# Empty compiler generated dependencies file for cache_expansion.
# This may be replaced when dependencies are built.
