# Empty compiler generated dependencies file for fig17_decoupling_ablation.
# This may be replaced when dependencies are built.
