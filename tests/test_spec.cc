/**
 * @file
 * Unit tests for the shared spec grammar (src/harness/spec): the
 * parse/getter round trips, the rejection table with its exact
 * diagnostics, and the small helpers (parseAssignment, parseRatioSpec,
 * parseSpecU64/Double) the bench flag parsers sit on.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/spec.hh"

namespace {

using namespace tpp;

// ---------------------------------------------------------------------
// parseSpec structure
// ---------------------------------------------------------------------

TEST(Spec, SplitsEntriesAndFields)
{
    const SpecResult<std::vector<SpecEntry>> parsed =
        parseSpec("cache1:low=0.6:qps=5e5;churn", true);
    ASSERT_TRUE(bool(parsed));
    ASSERT_EQ(parsed->size(), 2u);
    EXPECT_EQ((*parsed)[0].head(), "cache1");
    EXPECT_EQ((*parsed)[0].size(), 2u);
    EXPECT_TRUE((*parsed)[0].has("low"));
    EXPECT_TRUE((*parsed)[0].has("qps"));
    EXPECT_EQ((*parsed)[1].head(), "churn");
    EXPECT_EQ((*parsed)[1].size(), 0u);
}

TEST(Spec, EmptySpecYieldsZeroEntries)
{
    const SpecResult<std::vector<SpecEntry>> parsed = parseSpec("", true);
    ASSERT_TRUE(bool(parsed));
    EXPECT_TRUE(parsed->empty());
}

TEST(Spec, ToleratesOneTrailingSeparator)
{
    const SpecResult<std::vector<SpecEntry>> parsed =
        parseSpec("web;churn;", true);
    ASSERT_TRUE(bool(parsed));
    EXPECT_EQ(parsed->size(), 2u);
}

TEST(Spec, HeadlessEntriesRequireAssignments)
{
    const SpecResult<std::vector<SpecEntry>> ok =
        parseSpec("a=1:b=2", false);
    ASSERT_TRUE(bool(ok));
    EXPECT_EQ((*ok)[0].head(), "");
    EXPECT_EQ((*ok)[0].size(), 2u);

    const SpecResult<std::vector<SpecEntry>> bad =
        parseSpec("justaname", false);
    ASSERT_FALSE(bool(bad));
    EXPECT_NE(bad.error().render().find("key=value"), std::string::npos);
}

// ---------------------------------------------------------------------
// Rejection table: every malformed spec names the bad token.
// ---------------------------------------------------------------------

TEST(Spec, RejectionTable)
{
    struct Case {
        const char *spec;
        const char *needle; //!< must appear in render()
    };
    const Case cases[] = {
        {";web", "empty entry"},
        {"web;;churn", "empty entry"},
        {":low=0.5", "no leading name"},
        {"web:low", "key=value"},
        {"web:=0.5", "key=value"},
        {"web:low=0.5:low=0.6", "duplicate key 'low'"},
    };
    for (const Case &c : cases) {
        const SpecResult<std::vector<SpecEntry>> parsed =
            parseSpec(c.spec, true);
        ASSERT_FALSE(bool(parsed)) << c.spec;
        EXPECT_NE(parsed.error().render().find(c.needle),
                  std::string::npos)
            << c.spec << " -> " << parsed.error().render();
    }
}

// ---------------------------------------------------------------------
// Typed getters
// ---------------------------------------------------------------------

TEST(Spec, GettersRoundTripAndConsume)
{
    const SpecResult<std::vector<SpecEntry>> parsed = parseSpec(
        "web:wss=4096:low=0.25:place=cxl_only:note=hi", true);
    ASSERT_TRUE(bool(parsed));
    const SpecEntry &e = (*parsed)[0];

    std::uint64_t wss = 0;
    double low = 1.0;
    std::string place = "none";
    std::string note;
    EXPECT_TRUE(bool(e.getU64("wss", &wss, 1)));
    EXPECT_TRUE(bool(e.getDouble("low", &low, 0.0, 1.0)));
    EXPECT_TRUE(bool(
        e.getKeyword("place", &place, {"none", "local_only", "cxl_only"})));
    EXPECT_TRUE(bool(e.getString("note", &note)));
    EXPECT_EQ(wss, 4096u);
    EXPECT_DOUBLE_EQ(low, 0.25);
    EXPECT_EQ(place, "cxl_only");
    EXPECT_EQ(note, "hi");
    EXPECT_TRUE(bool(e.finish("wss, low, place, note")));
}

TEST(Spec, AbsentKeyLeavesDefaultUntouched)
{
    const SpecResult<std::vector<SpecEntry>> parsed =
        parseSpec("web", true);
    ASSERT_TRUE(bool(parsed));
    double low = 0.75;
    EXPECT_TRUE(bool((*parsed)[0].getDouble("low", &low, 0.0, 1.0)));
    EXPECT_DOUBLE_EQ(low, 0.75);
}

TEST(Spec, GetterRejectionTable)
{
    struct Case {
        const char *spec;
        const char *needle;
    };
    const Case cases[] = {
        {"web:wss=abc", "unsigned integer"},
        {"web:wss=-1", "unsigned integer"},
        {"web:wss=4.5", "unsigned integer"},
        {"web:low=nope", "expected a number"},
        {"web:low=1.5", "out of [0, 1]"},
        {"web:low=inf", "out of [0, 1]"},
        {"web:low=nan", "out of [0, 1]"}, // nan parses, fails range
        {"web:place=mars", "none, local_only, cxl_only"},
    };
    for (const Case &c : cases) {
        const SpecResult<std::vector<SpecEntry>> parsed =
            parseSpec(c.spec, true);
        ASSERT_TRUE(bool(parsed)) << c.spec;
        const SpecEntry &e = (*parsed)[0];
        std::uint64_t u = 0;
        double d = 0.0;
        std::string s;
        SpecResult<void> got = e.getU64("wss", &u, 1);
        if (bool(got))
            got = e.getDouble("low", &d, 0.0, 1.0);
        if (bool(got)) {
            got = e.getKeyword("place", &s,
                               {"none", "local_only", "cxl_only"});
        }
        ASSERT_FALSE(bool(got)) << c.spec;
        EXPECT_NE(got.error().render().find(c.needle), std::string::npos)
            << c.spec << " -> " << got.error().render();
    }
}

TEST(Spec, FinishRejectsUnconsumedKeysQuotingToken)
{
    const SpecResult<std::vector<SpecEntry>> parsed =
        parseSpec("web:color=red", true);
    ASSERT_TRUE(bool(parsed));
    const SpecResult<void> done = (*parsed)[0].finish("wss, low");
    ASSERT_FALSE(bool(done));
    const std::string msg = done.error().render();
    EXPECT_NE(msg.find("unknown key 'color'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wss, low"), std::string::npos) << msg;
    EXPECT_NE(msg.find("color=red"), std::string::npos) << msg;
}

TEST(Spec, ConsumeAllSatisfiesFinish)
{
    const SpecResult<std::vector<SpecEntry>> parsed =
        parseSpec("node:any=1:thing=2", true);
    ASSERT_TRUE(bool(parsed));
    (*parsed)[0].consumeAll();
    EXPECT_TRUE(bool((*parsed)[0].finish("(anything)")));
}

// ---------------------------------------------------------------------
// Helpers under the bench flags
// ---------------------------------------------------------------------

TEST(Spec, ParseAssignment)
{
    const SpecResult<std::pair<std::string, std::string>> ok =
        parseAssignment("kernel.numa_balancing=1");
    ASSERT_TRUE(bool(ok));
    EXPECT_EQ(ok->first, "kernel.numa_balancing");
    EXPECT_EQ(ok->second, "1");

    for (const char *bad : {"", "noequals", "=value"}) {
        const SpecResult<std::pair<std::string, std::string>> got =
            parseAssignment(bad);
        ASSERT_FALSE(bool(got)) << bad;
        EXPECT_NE(got.error().render().find("name=value"),
                  std::string::npos)
            << bad;
    }
}

TEST(Spec, ParseRatioSpec)
{
    const SpecResult<double> one_to_four = parseRatioSpec("1:4");
    ASSERT_TRUE(bool(one_to_four));
    EXPECT_DOUBLE_EQ(*one_to_four, 0.2);

    const SpecResult<double> two_to_one = parseRatioSpec("2:1");
    ASSERT_TRUE(bool(two_to_one));
    EXPECT_DOUBLE_EQ(*two_to_one, 2.0 / 3.0);

    for (const char *bad : {"", "2", "2:", ":1", "a:b", "0:0", "-1:4"}) {
        const SpecResult<double> got = parseRatioSpec(bad);
        ASSERT_FALSE(bool(got)) << bad;
        EXPECT_NE(got.error().render().find("capacity ratio"),
                  std::string::npos)
            << bad << " -> " << got.error().render();
    }
}

TEST(Spec, ParseSpecU64Strictness)
{
    const SpecResult<std::uint64_t> ok = parseSpecU64("4096", 1);
    ASSERT_TRUE(bool(ok));
    EXPECT_EQ(*ok, 4096u);

    EXPECT_FALSE(bool(parseSpecU64("", 0)));
    EXPECT_FALSE(bool(parseSpecU64("12abc", 0)));
    EXPECT_FALSE(bool(parseSpecU64("-3", 0)));
    EXPECT_FALSE(bool(parseSpecU64("99999999999999999999999", 0)));
    EXPECT_FALSE(bool(parseSpecU64("0", 1))); // below min
}

TEST(Spec, ParseSpecDoubleStrictness)
{
    const SpecResult<double> ok = parseSpecDouble("5e5", 0.0, 1e9);
    ASSERT_TRUE(bool(ok));
    EXPECT_DOUBLE_EQ(*ok, 5e5);

    EXPECT_FALSE(bool(parseSpecDouble("", 0.0, 1.0)));
    EXPECT_FALSE(bool(parseSpecDouble("1.5x", 0.0, 10.0)));
    EXPECT_FALSE(bool(parseSpecDouble("nan", 0.0, 1.0)));
    EXPECT_FALSE(bool(parseSpecDouble("inf", 0.0, 1e9)));
    EXPECT_FALSE(bool(parseSpecDouble("2", 0.0, 1.0))); // above max
}

TEST(Spec, RenderQuotesToken)
{
    const SpecError with{"bad value", "qps=-5"};
    EXPECT_EQ(with.render(), "bad value (at 'qps=-5')");
    const SpecError without{"bad value", ""};
    EXPECT_EQ(without.render(), "bad value");
}

// Expected<T, E> itself: value/error duality the sweep relies on.
TEST(Spec, ExpectedValueAndError)
{
    SpecResult<int> v{42};
    ASSERT_TRUE(bool(v));
    EXPECT_EQ(*v, 42);

    SpecResult<int> e = specError("boom", "tok");
    ASSERT_FALSE(bool(e));
    EXPECT_EQ(e.error().message, "boom");
    EXPECT_EQ(e.error().token, "tok");
}

// ---------------------------------------------------------------------
// Shard geometry: ExperimentConfig::validate() rejects bad region
// decompositions, naming the offending value. Before the checks landed
// these configs sailed through validate() and fataled (or built
// degenerate zero-capacity nodes) deep inside the machine build; bench
// binaries now refuse them with the spec-flag exit status (2) instead.
// ---------------------------------------------------------------------

TEST(Spec, ShardGeometryRejectionTable)
{
    struct Case {
        const char *tag;
        std::uint32_t shards;
        std::uint32_t regions;
        std::uint64_t wssPages;
        const char *needle; //!< must appear in render()
        const char *token;  //!< bad value validate() must quote
    };
    const Case cases[] = {
        // Zero workers can tick nothing.
        {"zero_shards", 0, 0, 8192, "shards must be >= 1", "0"},
        // More regions than the machine has frames (local + cxl).
        {"regions_beyond_frames", 4096, 0, 1024,
         "exceed the machine's frame count", "4096"},
        // Slicing 8192 pages 512 ways leaves each region's local tier
        // (~10 pages) inside its own watermark ladder: the region
        // would live in direct reclaim from the first fault.
        {"region_below_watermark_gap", 512, 0, 8192,
         "smaller than one watermark gap", "512"},
        // Same rejection when the decomposition comes from
        // shardRegions rather than the worker count.
        {"pinned_regions_below_gap", 1, 512, 8192,
         "smaller than one watermark gap", "512"},
    };
    for (const Case &c : cases) {
        ExperimentConfig cfg;
        cfg.wssPages = c.wssPages;
        cfg.shards = c.shards;
        cfg.shardRegions = c.regions;
        const SpecResult<void> valid = cfg.validate();
        ASSERT_FALSE(bool(valid)) << c.tag;
        EXPECT_NE(valid.error().render().find(c.needle),
                  std::string::npos)
            << c.tag << " -> " << valid.error().render();
        EXPECT_EQ(valid.error().token, c.token) << c.tag;
    }

    // The boundary holds in the other direction: geometries every test
    // and bench actually uses stay accepted.
    for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        ExperimentConfig cfg;
        cfg.wssPages = 8192;
        cfg.shards = shards;
        EXPECT_TRUE(bool(cfg.validate())) << shards;
    }
}

TEST(Spec, ShardsRejectIncompatibleObservers)
{
    // The shard engine simulates R isolated machines; the single-stack
    // observers (profiler, tracing, series, hot-set truth, open loop,
    // tenants) have no aggregate story yet and are refused up front.
    const auto reject = [](void (*mutate)(ExperimentConfig &),
                           const char *needle) {
        ExperimentConfig cfg;
        cfg.wssPages = 8192;
        cfg.shards = 4;
        mutate(cfg);
        const SpecResult<void> valid = cfg.validate();
        ASSERT_FALSE(bool(valid)) << needle;
        EXPECT_NE(valid.error().render().find(needle), std::string::npos)
            << valid.error().render();
    };
    reject([](ExperimentConfig &c) { c.tenants.push_back({"web"}); },
           "tenants");
    reject([](ExperimentConfig &c) { c.openLoop.qps = 1e5; },
           "open-loop");
    reject([](ExperimentConfig &c) { c.withChameleon = true; },
           "Chameleon");
    reject([](ExperimentConfig &c) { c.measureHotness = true; },
           "measureHotness");
    reject([](ExperimentConfig &c) { c.traceEnabled = true; },
           "tracing");
    reject([](ExperimentConfig &c) { c.sampleSeries = true; },
           "sampleSeries");
}

} // namespace
