/**
 * @file
 * Scenario example: characterising a workload with Chameleon (§3).
 *
 * Attaches the profiler to any of the four production workload models
 * on an all-local machine and prints the §3 analyses: per-interval
 * page temperature, the anon/file hotness split, usage-over-time and
 * the re-access CDF — the measurements that motivated TPP.
 *
 * Usage: chameleon_profile [workload] [wss_pages]
 */

#include <array>
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    setLogVerbose(false);

    ExperimentConfig cfg;
    cfg.workload = argc > 1 ? argv[1] : "web";
    if (argc > 2)
        cfg.wssPages = std::strtoull(argv[2], nullptr, 0);
    cfg.allLocal = true;
    cfg.policy = "linux";
    cfg.withChameleon = true;

    std::printf("Chameleon profile of '%s' (PEBS-style sampling, 1/%llu "
                "events, %u core groups)\n\n",
                cfg.workload.c_str(),
                (unsigned long long)cfg.chameleon.samplePeriod,
                cfg.chameleon.numCoreGroups);

    const ExperimentResult res = runExperiment(cfg);

    // Interval heat map.
    TextTable intervals({"interval", "resident", "touched", "hot frac",
                         "anon hot", "file hot"});
    for (std::size_t i = 0; i < res.chameleonIntervals.size(); ++i) {
        const auto &iv = res.chameleonIntervals[i];
        const auto frac = [](std::uint64_t part, std::uint64_t whole) {
            return whole ? static_cast<double>(part) /
                               static_cast<double>(whole)
                         : 0.0;
        };
        intervals.addRow(
            {TextTable::count(i), TextTable::count(iv.residentTotal),
             TextTable::count(iv.touchedTotal),
             TextTable::pct(frac(iv.touchedTotal, iv.residentTotal)),
             TextTable::pct(
                 frac(iv.touchedByType[0], iv.residentByType[0])),
             TextTable::pct(
                 frac(iv.touchedByType[1], iv.residentByType[1]))});
    }
    intervals.print();

    std::printf("\nmean hot fraction: %.1f%% overall, %.1f%% of anons, "
                "%.1f%% of files\n",
                100.0 * res.chameleonHotFraction,
                100.0 * res.chameleonHotFractionAnon,
                100.0 * res.chameleonHotFractionFile);

    // Re-access CDF from the recorded gap histograms.
    std::array<std::uint64_t, 64> gaps{};
    std::uint64_t total = 0;
    for (const auto &iv : res.chameleonIntervals) {
        for (std::size_t g = 1; g < iv.reaccessGap.size(); ++g) {
            gaps[g] += iv.reaccessGap[g];
            total += iv.reaccessGap[g];
        }
    }
    std::printf("\nre-access CDF (gap in intervals):\n");
    std::uint64_t acc = 0;
    for (std::size_t g = 1; g <= 10 && total; ++g) {
        acc += gaps[g];
        std::printf("  <= %2zu: %5.1f%%\n", g,
                    100.0 * static_cast<double>(acc) /
                        static_cast<double>(total));
    }
    return 0;
}
