/**
 * @file
 * NeoProfSource: NeoMem's CXL-device counter engine ("NeoProf") as a
 * HotnessSource. The modelled device sits on the CXL path and sees
 * every access to the far tier — no sampling — but has bounded SRAM:
 *
 *  - a counter table of cfg.counterTableSize entries, LRU-evicted, one
 *    fractional counter per tracked page (evictions are counted in
 *    vmstat and traced, so a too-small table is visible);
 *  - exponential decay each epoch with half-life cfg.decayHalfLife, so
 *    counts are a rate estimate, not an all-time total;
 *  - a log2-bucketed hotness histogram rebuilt each epoch, from which
 *    the hot threshold is retuned: walk buckets hottest-first until the
 *    cumulative page count covers the local tier's free headroom (the
 *    device aims to fill exactly the frames the kernel can accept).
 *
 * This is the top rung of the source ladder: full visibility at page
 * granularity, with the table bound and decay standing in for the real
 * device's SRAM limits.
 */

#ifndef TPP_HOTNESS_NEOPROF_SOURCE_HH
#define TPP_HOTNESS_NEOPROF_SOURCE_HH

#include <array>
#include <list>
#include <unordered_map>

#include "hotness/hotness_source.hh"
#include "mm/access_tap.hh"

namespace tpp {

class NeoProfSource : public HotnessSource, public KernelAccessTap
{
  public:
    /** Log2 buckets: 0 = [0,1), b>=1 = [2^(b-1), 2^b). */
    static constexpr std::uint32_t kHistogramBuckets = 32;

    explicit NeoProfSource(const HotnessConfig &cfg) : cfg_(cfg) {}

    std::string name() const override { return "neoprof"; }

    void attach(Kernel &kernel) override;

    double temperature(Pfn pfn) const override;
    std::vector<HotPage> extractHot(std::uint64_t max_pages) override;
    void advanceEpoch() override;

    void onKernelAccess(const PageFrame &frame, NodeId task_nid,
                        Tick now) override;

    double hotThreshold() const { return threshold_; }
    std::size_t trackedPages() const { return table_.size(); }
    const std::array<std::uint64_t, kHistogramBuckets> &
    histogram() const
    {
        return histogram_;
    }

  private:
    struct Counter {
        double count = 0.0;
        std::list<Pfn>::iterator lruPos;
    };

    void track(Pfn pfn);
    void evictOne();
    void erase(Pfn pfn);
    void retuneThreshold();
    std::uint64_t targetHotPages() const;

    const HotnessConfig &cfg_;
    std::list<Pfn> lru_; //!< front = most recently touched
    std::unordered_map<Pfn, Counter> table_;
    std::array<std::uint64_t, kHistogramBuckets> histogram_{};
    double threshold_ = 1.0;
};

} // namespace tpp

#endif // TPP_HOTNESS_NEOPROF_SOURCE_HH
