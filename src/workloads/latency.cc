#include "workloads/latency.hh"

#include <algorithm>
#include <cmath>

namespace tpp {

std::size_t
LatencyHistogram::bucketFor(std::uint64_t ns)
{
    if (ns < kSubBuckets)
        return static_cast<std::size_t>(ns);
    // Highest set bit; ns >= 32 so msb >= kSubBucketBits.
    const std::uint32_t msb =
        63u - static_cast<std::uint32_t>(__builtin_clzll(ns));
    const std::uint32_t major = msb - kSubBucketBits + 1;
    const std::uint64_t sub =
        (ns >> (msb - kSubBucketBits)) - kSubBuckets;
    return static_cast<std::size_t>(major) * kSubBuckets +
           static_cast<std::size_t>(sub);
}

void
LatencyHistogram::bucketBounds(std::size_t index, double *lo, double *hi)
{
    if (index < kSubBuckets) {
        *lo = static_cast<double>(index);
        *hi = static_cast<double>(index + 1);
        return;
    }
    const std::size_t major = index / kSubBuckets;
    const std::size_t sub = index % kSubBuckets;
    const double width =
        std::ldexp(1.0, static_cast<int>(major) - 1);
    *lo = static_cast<double>(kSubBuckets + sub) * width;
    *hi = *lo + width;
}

void
LatencyHistogram::record(double ns)
{
    const double clamped = std::max(0.0, ns);
    const std::uint64_t quantized =
        clamped >= 9.2e18 ? ~0ULL : static_cast<std::uint64_t>(clamped);
    buckets_[bucketFor(quantized)]++;
    if (count_ == 0) {
        min_ = clamped;
        max_ = clamped;
    } else {
        min_ = std::min(min_, clamped);
        max_ = std::max(max_, clamped);
    }
    count_++;
    sum_ += clamped;
}

double
LatencyHistogram::percentileNs(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double clamped_p = std::clamp(p, 0.0, 100.0);
    const double target = clamped_p / 100.0 * static_cast<double>(count_);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i] == 0)
            continue;
        const double before = static_cast<double>(cumulative);
        cumulative += buckets_[i];
        if (static_cast<double>(cumulative) >= target) {
            double lo = 0.0, hi = 0.0;
            bucketBounds(i, &lo, &hi);
            const double fraction =
                buckets_[i] ? (target - before) /
                                  static_cast<double>(buckets_[i])
                            : 0.0;
            const double value =
                lo + std::clamp(fraction, 0.0, 1.0) * (hi - lo);
            // Never report beyond the true extremes.
            return std::clamp(value, min_, max_);
        }
    }
    return max_;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
LatencyHistogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

} // namespace tpp
