/**
 * @file
 * Figure 7: workloads keep a large share of their memory cold.
 *
 * Reproduces the characterisation run: each production workload on an
 * all-local machine with Chameleon attached, reporting total allocated
 * memory and the fraction touched per two-minute-equivalent interval.
 *
 * Paper shape: Web uses ~97 % of capacity but touches only ~22 % per
 * interval; Cache1/Cache2 use 95-98 % and touch 30-40 %; Data Warehouse
 * uses ~100 % and touches ~20-30 %.
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 7", "page temperature: allocated vs touched per "
                              "interval (all-local, Chameleon)");

    TextTable table({"workload", "allocated/capacity", "touched/allocated",
                     "touched (mean pages)", "intervals"});

    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : {"web", "cache1", "cache2", "dwh"}) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = wl;
        cfg.allLocal = true;
        cfg.policy = "linux";
        cfg.withChameleon = true;
        // The simulator compresses behavioural time ~120x, so one
        // interval carries ~1/100 of the accesses a production 2-minute
        // window would; sample proportionally denser than the paper's
        // 1-in-200 so per-interval sample counts stay comparable.
        cfg.chameleon.samplePeriod = 10;
        cfg.chameleon.dutyCycle = false;
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        const ExperimentResult &res = results[w];
        const std::uint64_t capacity = static_cast<std::uint64_t>(
            static_cast<double>(opt.wssPages) * cfgs[w].capacityHeadroom);

        // Average over the post-warm-up intervals (skip the first few
        // while the workload populates).
        double resident = 0.0;
        double hot = 0.0;
        std::size_t n = 0;
        for (std::size_t i = res.chameleonIntervals.size() / 2;
             i < res.chameleonIntervals.size(); ++i) {
            const auto &iv = res.chameleonIntervals[i];
            resident += static_cast<double>(iv.residentTotal);
            hot += static_cast<double>(iv.touchedTotal);
            n++;
        }
        if (n) {
            resident /= static_cast<double>(n);
            hot /= static_cast<double>(n);
        }
        table.addRow({cfgs[w].workload,
                      TextTable::pct(resident /
                                     static_cast<double>(capacity)),
                      TextTable::pct(resident > 0 ? hot / resident : 0.0),
                      TextTable::num(hot, 0),
                      TextTable::count(res.chameleonIntervals.size())});
    }
    table.print();
    std::printf("\npaper: Web 97%%/22%%, Cache1 95%%/30%%, Cache2 98%%/40%%, "
                "DWH ~100%%/20-30%%\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
