#include "mm/vmstat.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tpp {

const char *
vmName(Vm counter)
{
    switch (counter) {
      case Vm::PgFault: return "pgfault";
      case Vm::PgMajFault: return "pgmajfault";
      case Vm::PgAlloc: return "pgalloc";
      case Vm::PgAllocFallback: return "pgalloc_fallback";
      case Vm::AllocStall: return "allocstall";
      case Vm::PgFree: return "pgfree";
      case Vm::PgScanKswapd: return "pgscan_kswapd";
      case Vm::PgScanDirect: return "pgscan_direct";
      case Vm::PgStealKswapd: return "pgsteal_kswapd";
      case Vm::PgStealDirect: return "pgsteal_direct";
      case Vm::PgActivate: return "pgactivate";
      case Vm::PgDeactivate: return "pgdeactivate";
      case Vm::PgRefill: return "pgrefill";
      case Vm::PswpOut: return "pswpout";
      case Vm::PswpIn: return "pswpin";
      case Vm::PgDemoteAnon: return "pgdemote_anon";
      case Vm::PgDemoteFile: return "pgdemote_file";
      case Vm::PgDemoteFail: return "pgdemote_fail";
      case Vm::NumaPteUpdates: return "numa_pte_updates";
      case Vm::NumaHintFaults: return "numa_hint_faults";
      case Vm::NumaHintFaultsLocal: return "numa_hint_faults_local";
      case Vm::PgPromoteCandidate: return "pgpromote_candidate";
      case Vm::PgPromoteCandidateAnon: return "pgpromote_candidate_anon";
      case Vm::PgPromoteCandidateFile: return "pgpromote_candidate_file";
      case Vm::PgPromoteCandidateDemoted:
        return "pgpromote_candidate_demoted";
      case Vm::PgPromoteTry: return "pgpromote_try";
      case Vm::PgPromoteSuccess: return "pgpromote_success";
      case Vm::PgPromoteFailLowMem: return "pgpromote_fail_low_mem";
      case Vm::PgPromoteFailRefused: return "pgpromote_fail_refused";
      case Vm::PgPromoteFailIsolate: return "pgpromote_fail_isolate";
      case Vm::PgPromoteFailRateLimit: return "pgpromote_fail_rate_limit";
      case Vm::WorkingsetRefault: return "workingset_refault";
      case Vm::WorkingsetActivate: return "workingset_activate";
      case Vm::PgMigrateSuccess: return "pgmigrate_success";
      case Vm::PgMigrateFail: return "pgmigrate_fail";
      case Vm::PgMigrateQueued: return "pgmigrate_queued";
      case Vm::PgMigrateDeferred: return "pgmigrate_deferred";
      case Vm::PgMigrateFailBusy: return "pgmigrate_fail_busy";
      case Vm::HotnessCounterEvict: return "hotness_counter_evict";
      case Vm::HotnessThresholdRaise: return "hotness_threshold_raise";
      case Vm::HotnessThresholdLower: return "hotness_threshold_lower";
      case Vm::HotnessPromoteBatch: return "hotness_promote_batch";
      case Vm::MemcgReclaimProtected: return "memcg_reclaim_protected";
      case Vm::MemcgReclaimLow: return "memcg_reclaim_low";
      case Vm::MemcgMigrateThrottled: return "memcg_migrate_throttled";
      case Vm::PptThrottledPromote: return "ppt_throttled_promote";
      case Vm::PptThrottledDemote: return "ppt_throttled_demote";
      case Vm::PptEscalated: return "ppt_escalated";
      case Vm::PptHistoryEvict: return "ppt_history_evict";
      case Vm::AdaptiveWindow: return "adaptive_window";
      case Vm::AdaptiveTune: return "adaptive_tune";
      case Vm::AdaptiveRevert: return "adaptive_revert";
      case Vm::AdaptiveSettled: return "adaptive_settled";
      case Vm::AdaptiveWake: return "adaptive_wake";
      case Vm::AdaptiveFiltered: return "adaptive_filtered";
      case Vm::AdaptiveFlapBias: return "adaptive_flap_bias";
      case Vm::NumCounters: break;
    }
    tpp_panic("vmName: bad counter %zu", static_cast<std::size_t>(counter));
}

std::string
VmStat::report() const
{
    std::ostringstream out;
    for (std::size_t i = 0; i < kNumVmCounters; ++i) {
        if (values_[i] == 0)
            continue;
        out << vmName(static_cast<Vm>(i)) << ' ' << values_[i] << '\n';
    }
    return out.str();
}

} // namespace tpp
