/**
 * @file
 * MigrationEngine implementation. The synchronous paths reproduce the
 * pre-engine Kernel::demotePage / promotePage behaviour exactly — same
 * counters, tracepoints and traffic accounting in the same order — so
 * the default sync-compat config is bit-identical to the old code. The
 * asynchronous paths add queueing, admission control and the two-phase
 * transactional copy on top of the same building blocks.
 */

#include "mm/migration/migration_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "mm/kernel.hh"
#include "mm/ppt/ppt.hh"
#include "sim/logging.hh"

namespace tpp {

MigrationEngine::MigrationEngine(Kernel &kernel, MigrationConfig cfg)
    : kernel_(kernel), cfg_(cfg)
{
    const std::size_t n = kernel_.mem_.numNodes();
    demoteQueues_.resize(n);
    promoteQueues_.resize(n);
    // Buckets start full (one burst) so admission control limits the
    // sustained rate, not the first requests after boot. The refill
    // clock starts at *now*, not tick 0: an engine constructed after
    // sim time has advanced must not treat the elapsed time as earned
    // tokens on its first refill.
    tokens_.assign(n, cfg_.rateLimitMBps * 1e6 * 0.1);
    tokensRefilledAt_.assign(n, kernel_.eq_.now());

    SysctlRegistry &sysctl = kernel_.sysctl_;
    sysctl.registerKnob(
        "vm.migration_rate_limit_mbps",
        [this] {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%g", cfg_.rateLimitMBps);
            return std::string(buf);
        },
        [this](const std::string &text) {
            char *end = nullptr;
            const double parsed = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                !std::isfinite(parsed) || parsed < 0.0)
                return false;
            setRateLimit(parsed);
            return true;
        });
    sysctl.registerU64("vm.migration_queue_depth", &cfg_.queueDepth,
                       nullptr, /*min=*/1);
    sysctl.registerBool("vm.migration_async", &cfg_.async);
    sysctl.registerBool("vm.migration_transactional",
                        &cfg_.transactional);
}

std::uint64_t
MigrationEngine::queuedDemotions(NodeId src) const
{
    return demoteQueues_[src].size();
}

std::uint64_t
MigrationEngine::queuedPromotions(NodeId dst) const
{
    return promoteQueues_[dst].size();
}

bool
MigrationEngine::idle() const
{
    if (!inflight_.empty())
        return false;
    for (const auto &q : demoteQueues_)
        if (!q.empty())
            return false;
    for (const auto &q : promoteQueues_)
        if (!q.empty())
            return false;
    return true;
}

double
MigrationEngine::copyCostNs(NodeId src, NodeId dst) const
{
    // The flat constant models the software side of migrate_pages():
    // unmap, TLB shootdown, remap. With bandwidthCost the data movement
    // itself is charged on top, through the latency model so both legs
    // inflate with their node's bandwidth utilisation.
    double cost = kernel_.costs_.migratePage;
    if (cfg_.bandwidthCost) {
        cost += kernel_.mem_.latencyModel().pageCopyLatencyNs(
            kernel_.mem_.node(src), kernel_.mem_.node(dst),
            kernel_.eq_.now());
    }
    return cost;
}

// ---- ping-pong admission (mm/ppt) -----------------------------------

bool
MigrationEngine::pptAdmit(Pfn pfn, bool promotion) const
{
    PingPongThrottle &ppt = *kernel_.ppt_;
    if (!ppt.enabled())
        return true;
    const PageFrame &frame = kernel_.mem_.frame(pfn);
    if (frame.isFree())
        return true;
    const PageFrameCold &cold = kernel_.mem_.frameCold(pfn);
    return ppt.admit(cold.ownerAsid, cold.ownerVpn,
                     promotion ? PptHop::Promote : PptHop::Demote,
                     kernel_.eq_.now(), frame.nid, frame.type, pfn);
}

void
MigrationEngine::pptRecord(Asid asid, Vpn vpn, bool promotion,
                           NodeId node, PageType type, Pfn pfn) const
{
    kernel_.ppt_->recordHop(asid, vpn,
                            promotion ? PptHop::Promote : PptHop::Demote,
                            kernel_.eq_.now(), node, type, pfn);
}

// ---- synchronous paths (pre-engine behaviour) -----------------------

MigrateResult
MigrationEngine::syncDemote(Pfn pfn)
{
    Kernel &k = kernel_;
    PageFrame &frame = k.mem_.frame(pfn);
    const NodeId src = frame.nid;
    const PageType type = frame.type;
    const Asid owner_asid = k.mem_.frameCold(pfn).ownerAsid;
    const Vpn owner_vpn = k.mem_.frameCold(pfn).ownerVpn;

    // Distance-ordered static target selection (§5.1).
    for (NodeId dst : k.mem_.demotionOrder(src)) {
        double stall_ns = 0.0;
        const Pfn new_pfn =
            k.migratePage(pfn, dst, AllocReason::Demotion, &stall_ns);
        if (new_pfn != kInvalidPfn) {
            k.mem_.frame(new_pfn).setFlag(PageFrame::FlagDemoted);
            k.vmstat_.inc(type == PageType::Anon ? Vm::PgDemoteAnon
                                                 : Vm::PgDemoteFile);
            k.memcg_.cgroup(k.memcg_.cgroupOf(owner_asid))
                .stats.demotions++;
            k.trace_.emitPage(TraceEvent::Demote, k.eq_.now(), src, type,
                              new_pfn, owner_asid, owner_vpn, dst);
            pptRecord(owner_asid, owner_vpn, /*promotion=*/false, src,
                      type, new_pfn);
            return {MigrateOutcome::Completed, true,
                    copyCostNs(src, dst) + stall_ns};
        }
    }

    // Migration failed (no CXL node, or all of them full): fall back to
    // the default reclamation mechanism for this page.
    k.vmstat_.inc(Vm::PgDemoteFail);
    k.trace_.emitPage(TraceEvent::DemoteFail, k.eq_.now(), src, type, pfn,
                      owner_asid, owner_vpn);
    const auto [freed, cost] = k.reclaimOnePage(pfn, false);
    return {freed ? MigrateOutcome::Fallback : MigrateOutcome::Failed,
            freed, cost};
}

MigrateResult
MigrationEngine::syncPromote(Pfn pfn, NodeId src, NodeId dst)
{
    Kernel &k = kernel_;
    k.vmstat_.inc(Vm::PgPromoteTry);

    PageFrame &frame = k.mem_.frame(pfn);
    if (frame.isFree() || frame.lru == LruListId::None) {
        // The frame's owner fields are gone; trace node-scoped only,
        // with the source node the caller saw when it picked the page.
        k.trace_.emit(TraceEvent::PromoteTry, k.eq_.now(), src, dst);
        k.vmstat_.inc(Vm::PgPromoteFailIsolate);
        k.trace_.emit(TraceEvent::PromoteFailIsolate, k.eq_.now(), src,
                      dst);
        return {MigrateOutcome::Failed, false, 0.0};
    }

    const PageType type = frame.type;
    const Asid owner_asid = k.mem_.frameCold(pfn).ownerAsid;
    const Vpn owner_vpn = k.mem_.frameCold(pfn).ownerVpn;
    k.trace_.emitPage(TraceEvent::PromoteTry, k.eq_.now(), src, type, pfn,
                      owner_asid, owner_vpn, dst);

    double stall_ns = 0.0;
    const Pfn new_pfn =
        k.migratePage(pfn, dst, AllocReason::Promotion, &stall_ns);
    if (new_pfn == kInvalidPfn) {
        k.vmstat_.inc(Vm::PgPromoteFailLowMem);
        k.trace_.emitPage(TraceEvent::PromoteFailLowMem, k.eq_.now(), src,
                          type, pfn, owner_asid, owner_vpn, dst);
        return {MigrateOutcome::Failed, false, 0.0};
    }

    // A successful promotion clears PG_demoted: the ping-pong detector
    // only counts pages that get demoted *again* afterwards.
    k.mem_.frame(new_pfn).clearFlag(PageFrame::FlagDemoted);
    k.vmstat_.inc(Vm::PgPromoteSuccess);
    k.memcg_.cgroup(k.memcg_.cgroupOf(owner_asid))
        .stats.promoteSuccess++;
    k.trace_.emitPage(TraceEvent::PromoteSuccess, k.eq_.now(), src, type,
                      new_pfn, owner_asid, owner_vpn, dst);
    pptRecord(owner_asid, owner_vpn, /*promotion=*/true, src, type,
              new_pfn);
    return {MigrateOutcome::Completed, true,
            copyCostNs(src, dst) + stall_ns};
}

// ---- the request surface --------------------------------------------

MigrateResult
MigrationEngine::demote(Pfn pfn, MigrateUrgency urgency)
{
    // Ping-pong admission first: a page promoted inside its cooldown
    // window must not bounce straight back down. Denied hops look like
    // any other deferral to the caller (reclaim rotates the page and
    // moves on); only the ppt_* accounting records what happened.
    if (!pptAdmit(pfn, /*promotion=*/false))
        return {MigrateOutcome::Deferred, false, 0.0};

    // Direct reclaim needs pages *now*: it always demotes synchronously,
    // as the real kernel's direct reclaim calls migrate_pages() inline.
    if (!cfg_.async || urgency == MigrateUrgency::Direct)
        return syncDemote(pfn);

    PageFrame &frame = kernel_.mem_.frame(pfn);
    if (frame.isFree() || frame.lru == LruListId::None) {
        kernel_.vmstat_.inc(Vm::PgMigrateFail);
        return {MigrateOutcome::Failed, false, 0.0};
    }
    // No demotion target exists at all: skip the queue and take the
    // classic-reclaim fallback immediately.
    const std::vector<NodeId> &order =
        kernel_.mem_.demotionOrder(frame.nid);
    if (order.empty())
        return syncDemote(pfn);
    // Walk the tier-aware order for the admission target: a full near
    // node should not eat the queue budget when a farther lower-tier
    // node still has room. drainOne re-picks at drain time anyway, so
    // this only has to be a good guess, not a reservation.
    NodeId dst = order.front();
    for (NodeId cand : order) {
        if (kernel_.mem_.node(cand).freePages() > 0) {
            dst = cand;
            break;
        }
    }
    return enqueue(pfn, false, dst);
}

MigrateResult
MigrationEngine::promote(Pfn pfn, NodeId src, NodeId dst)
{
    // Ping-pong admission before any try/failure accounting: a denied
    // promotion was never attempted, it is cooling down.
    if (!pptAdmit(pfn, /*promotion=*/true))
        return {MigrateOutcome::Deferred, false, 0.0};

    if (!cfg_.async)
        return syncPromote(pfn, src, dst);

    Kernel &k = kernel_;
    PageFrame &frame = k.mem_.frame(pfn);
    if (frame.isFree() || frame.lru == LruListId::None) {
        // Mirror the sync isolate-fail accounting so failure counters
        // mean the same thing in both modes.
        k.vmstat_.inc(Vm::PgPromoteTry);
        k.trace_.emit(TraceEvent::PromoteTry, k.eq_.now(), src, dst);
        k.vmstat_.inc(Vm::PgPromoteFailIsolate);
        k.trace_.emit(TraceEvent::PromoteFailIsolate, k.eq_.now(), src,
                      dst);
        return {MigrateOutcome::Failed, false, 0.0};
    }
    return enqueue(pfn, true, dst);
}

MigrateResult
MigrationEngine::promote(Pfn pfn, NodeId dst)
{
    return promote(pfn, kernel_.mem_.frame(pfn).nid, dst);
}

// ---- admission + queueing -------------------------------------------

void
MigrationEngine::setRateLimit(double mbps)
{
    const Tick now = kernel_.eq_.now();
    const double old_rate_bpn = cfg_.rateLimitMBps * 1e6 / 1e9;
    const double old_burst = cfg_.rateLimitMBps * 1e6 * 0.1;
    const double new_burst = mbps * 1e6 * 0.1;
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        // Settle at the old rate: tokens earned so far survive (capped
        // at the old burst), but time elapsed under rate 0 earns none.
        if (cfg_.rateLimitMBps > 0.0) {
            tokens_[i] += static_cast<double>(now - tokensRefilledAt_[i]) *
                          old_rate_bpn;
            if (tokens_[i] > old_burst)
                tokens_[i] = old_burst;
        }
        tokensRefilledAt_[i] = now;
        if (tokens_[i] > new_burst)
            tokens_[i] = new_burst;
    }
    cfg_.rateLimitMBps = mbps;
}

bool
MigrationEngine::admit(NodeId dst)
{
    if (cfg_.rateLimitMBps <= 0.0)
        return true;
    const Tick now = kernel_.eq_.now();
    const double bytes_per_ns = cfg_.rateLimitMBps * 1e6 / 1e9;
    const double burst = cfg_.rateLimitMBps * 1e6 * 0.1; // 100 ms
    tokens_[dst] +=
        static_cast<double>(now - tokensRefilledAt_[dst]) * bytes_per_ns;
    tokensRefilledAt_[dst] = now;
    if (tokens_[dst] > burst)
        tokens_[dst] = burst;
    if (tokens_[dst] < static_cast<double>(kPageSize))
        return false;
    tokens_[dst] -= static_cast<double>(kPageSize);
    return true;
}

MigrateResult
MigrationEngine::enqueue(Pfn pfn, bool promotion, NodeId dst)
{
    Kernel &k = kernel_;
    PageFrame &frame = k.mem_.frame(pfn);
    const PageFrameCold &cold = k.mem_.frameCold(pfn);
    const NodeId src = frame.nid;
    std::deque<Request> &queue =
        promotion ? promoteQueues_[dst] : demoteQueues_[src];

    // Admission control: a full queue, a dry cgroup migration budget,
    // or an exhausted token bucket for the destination defers the
    // request; the page stays where it is and the caller may retry on
    // a later scan. The cgroup budget is checked before the per-node
    // bucket so a throttled tenant cannot drain the shared tokens.
    bool defer = queue.size() >= cfg_.queueDepth;
    bool throttled = false;
    if (!defer && !k.memcg_.chargeMigration(cold.ownerAsid, kPageSize)) {
        defer = true;
        throttled = true;
    }
    if (!defer && !admit(dst))
        defer = true;
    if (defer) {
        if (throttled) {
            const CgroupId cgid = k.memcg_.cgroupOf(cold.ownerAsid);
            k.memcg_.cgroup(cgid).stats.migrateThrottled++;
            k.vmstat_.inc(Vm::MemcgMigrateThrottled);
            k.trace_.emit(TraceEvent::MemcgEvent, k.eq_.now(), src,
                          memcgEventAux(cgid, MemcgEventKind::Throttled));
        }
        k.vmstat_.inc(Vm::PgMigrateDeferred);
        k.trace_.emitPage(TraceEvent::MigrateDeferred, k.eq_.now(), src,
                          frame.type, pfn, cold.ownerAsid,
                          cold.ownerVpn, dst);
        return {MigrateOutcome::Deferred, false, 0.0};
    }

    Request req;
    req.pfn = pfn;
    req.asid = cold.ownerAsid;
    req.vpn = cold.ownerVpn;
    req.src = src;
    req.dst = promotion ? dst : kInvalidNode;
    req.type = frame.type;
    req.wasActive = lruIsActive(frame.lru);
    req.promotion = promotion;

    // Isolate the page: off the LRU so reclaim and rival migrations
    // cannot pick it while it waits.
    k.lrus_[src].remove(pfn);
    frame.setFlag(PageFrame::FlagIsolated);
    queue.push_back(req);

    k.vmstat_.inc(Vm::PgMigrateQueued);
    k.trace_.emitPage(TraceEvent::MigrateQueued, k.eq_.now(), src,
                      req.type, pfn, req.asid, req.vpn, dst);
    scheduleDrain();
    return {MigrateOutcome::Queued, false, 0.0};
}

void
MigrationEngine::scheduleDrain()
{
    if (drainScheduled_)
        return;
    drainScheduled_ = true;
    kernel_.eq_.scheduleAfter(cfg_.drainPeriod, [this] { drainTick(); });
}

void
MigrationEngine::drainTick()
{
    drainScheduled_ = false;
    const std::size_t n = demoteQueues_.size();
    for (std::size_t i = 0; i < n; ++i)
        drainQueue(demoteQueues_[i], cfg_.drainBatch);
    for (std::size_t i = 0; i < n; ++i)
        drainQueue(promoteQueues_[i], cfg_.drainBatch);
    for (const auto &q : demoteQueues_)
        if (!q.empty()) {
            scheduleDrain();
            return;
        }
    for (const auto &q : promoteQueues_)
        if (!q.empty()) {
            scheduleDrain();
            return;
        }
}

void
MigrationEngine::drainQueue(std::deque<Request> &queue,
                            std::uint64_t budget)
{
    for (std::uint64_t i = 0; i < budget && !queue.empty(); ++i) {
        const Request req = queue.front();
        queue.pop_front();
        drainOne(req);
    }
}

bool
MigrationEngine::stale(const Request &req) const
{
    const PageFrame &frame = kernel_.mem_.frame(req.pfn);
    const PageFrameCold &cold = kernel_.mem_.frameCold(req.pfn);
    // The frame was freed (e.g. munmap) — and possibly reused for a new
    // mapping — since the request was queued. A live queued page keeps
    // FlagIsolated; a reused frame never has it.
    return frame.isFree() || !frame.isolated() ||
           cold.ownerAsid != req.asid || cold.ownerVpn != req.vpn ||
           frame.nid != req.src;
}

void
MigrationEngine::putBack(const Request &req)
{
    PageFrame &frame = kernel_.mem_.frame(req.pfn);
    frame.clearFlag(PageFrame::FlagIsolated);
    kernel_.lrus_[req.src].addHead(lruListFor(req.type, req.wasActive),
                                   req.pfn);
}

void
MigrationEngine::drainOne(const Request &req)
{
    Kernel &k = kernel_;
    if (stale(req)) {
        // The owner unmapped (or remapped) the page while it waited.
        k.vmstat_.inc(Vm::PgMigrateFail);
        return;
    }

    // Drain-time re-pick re-checks ping-pong admission too: the knobs
    // may have changed (or the throttle been enabled) while the
    // request sat queued. A denied page goes back on its LRU whole.
    if (!pptAdmit(req.pfn, req.promotion)) {
        putBack(req);
        return;
    }

    if (req.promotion) {
        k.vmstat_.inc(Vm::PgPromoteTry);
        k.trace_.emitPage(TraceEvent::PromoteTry, k.eq_.now(), req.src,
                          req.type, req.pfn, req.asid, req.vpn, req.dst);
        double stall_ns = 0.0;
        const Pfn dst_pfn = k.allocPage(req.dst, req.type,
                                        AllocReason::Promotion,
                                        &stall_ns);
        if (dst_pfn == kInvalidPfn) {
            k.vmstat_.inc(Vm::PgMigrateFail);
            k.vmstat_.inc(Vm::PgPromoteFailLowMem);
            k.trace_.emitPage(TraceEvent::PromoteFailLowMem, k.eq_.now(),
                              req.src, req.type, req.pfn, req.asid,
                              req.vpn, req.dst);
            putBack(req);
            return;
        }
        beginCopy(req, dst_pfn, req.dst, stall_ns);
        return;
    }

    // Demotion: pick the target at drain time so a queue-full node can
    // be skipped for the next one in distance order.
    for (NodeId dst : k.mem_.demotionOrder(req.src)) {
        double stall_ns = 0.0;
        const Pfn dst_pfn =
            k.allocPage(dst, req.type, AllocReason::Demotion, &stall_ns);
        if (dst_pfn != kInvalidPfn) {
            beginCopy(req, dst_pfn, dst, stall_ns);
            return;
        }
        k.vmstat_.inc(Vm::PgMigrateFail);
    }

    // Every demotion target is OOM mid-batch: classic-reclaim fallback,
    // exactly as the sync path falls back.
    k.vmstat_.inc(Vm::PgDemoteFail);
    k.trace_.emitPage(TraceEvent::DemoteFail, k.eq_.now(), req.src,
                      req.type, req.pfn, req.asid, req.vpn);
    const auto [freed, cost] = k.reclaimOnePage(req.pfn, false);
    (void)cost;
    if (!freed)
        putBack(req);
}

void
MigrationEngine::beginCopy(const Request &req, Pfn dst_pfn, NodeId dst_nid,
                           double stall_ns)
{
    Kernel &k = kernel_;
    // The copy moves one page of data off the source and onto the
    // destination node; record it when the copy starts so concurrent
    // accesses see the bandwidth pressure.
    k.mem_.node(req.src).recordTraffic(k.eq_.now(), kPageSize);
    k.mem_.node(dst_nid).recordTraffic(k.eq_.now(), kPageSize);

    if (!cfg_.transactional) {
        finishMove(req, dst_pfn, dst_nid);
        return;
    }

    // Two-phase transactional copy (Nomad): the source page stays
    // mapped and readable but carries FlagUnderMigration until the
    // modelled copy completes; an access during the window aborts.
    PageFrame &frame = k.mem_.frame(req.pfn);
    frame.setFlag(PageFrame::FlagUnderMigration);
    const double copy_ns = copyCostNs(req.src, dst_nid) + stall_ns;
    const Tick done = std::max<Tick>(static_cast<Tick>(copy_ns), 1);

    InFlight inf;
    inf.req = req;
    inf.dstPfn = dst_pfn;
    inf.dstNid = dst_nid;
    const Pfn src_pfn = req.pfn;
    inf.completion = k.eq_.scheduleAfter(done, [this, src_pfn] {
        auto it = inflight_.find(src_pfn);
        if (it == inflight_.end())
            tpp_panic("migration completion for unknown pfn %u", src_pfn);
        const InFlight done_inf = it->second;
        inflight_.erase(it);
        PageFrame &src = kernel_.mem_.frame(src_pfn);
        src.clearFlag(PageFrame::FlagUnderMigration);
        finishMove(done_inf.req, done_inf.dstPfn, done_inf.dstNid);
    });
    inflight_.emplace(src_pfn, inf);
}

void
MigrationEngine::finishMove(const Request &req, Pfn dst_pfn,
                            NodeId dst_nid)
{
    Kernel &k = kernel_;
    PageFrame &frame = k.mem_.frame(req.pfn);
    Pte &pte = k.pteOf(frame);

    PageFrame &new_frame = k.mem_.frame(dst_pfn);
    new_frame.markAllocated();
    new_frame.type = frame.type;
    k.mem_.frameCold(dst_pfn) = k.mem_.frameCold(req.pfn);
    if (frame.referenced())
        new_frame.setFlag(PageFrame::FlagReferenced);
    if (frame.dirty())
        new_frame.setFlag(PageFrame::FlagDirty);
    if (frame.demoted())
        new_frame.setFlag(PageFrame::FlagDemoted);
    if (frame.hintPending())
        new_frame.setFlag(PageFrame::FlagHintPending);

    pte.pfn = dst_pfn;

    k.mem_.node(req.src).putFree(req.pfn);
    frame.resetForFree();
    k.mem_.frameCold(req.pfn).resetForFree();

    k.lrus_[dst_nid].addHead(lruListFor(new_frame.type, req.wasActive),
                             dst_pfn);
    k.memcg_.transfer(req.asid, req.src, dst_nid);
    k.vmstat_.inc(Vm::PgMigrateSuccess);

    MemcgStats &cg_stats =
        k.memcg_.cgroup(k.memcg_.cgroupOf(req.asid)).stats;
    if (req.promotion) {
        new_frame.clearFlag(PageFrame::FlagDemoted);
        k.vmstat_.inc(Vm::PgPromoteSuccess);
        cg_stats.promoteSuccess++;
        k.trace_.emitPage(TraceEvent::PromoteSuccess, k.eq_.now(),
                          req.src, req.type, dst_pfn, req.asid, req.vpn,
                          dst_nid);
    } else {
        new_frame.setFlag(PageFrame::FlagDemoted);
        k.vmstat_.inc(req.type == PageType::Anon ? Vm::PgDemoteAnon
                                                 : Vm::PgDemoteFile);
        cg_stats.demotions++;
        k.trace_.emitPage(TraceEvent::Demote, k.eq_.now(), req.src,
                          req.type, dst_pfn, req.asid, req.vpn, dst_nid);
    }
    pptRecord(req.asid, req.vpn, req.promotion, req.src, req.type,
              dst_pfn);
}

// ---- aborts ---------------------------------------------------------

void
MigrationEngine::abortInFlight(Pfn pfn, bool busy)
{
    auto it = inflight_.find(pfn);
    if (it == inflight_.end())
        tpp_panic("abort for pfn %u with no in-flight migration", pfn);
    const InFlight inf = it->second;
    inflight_.erase(it);
    Kernel &k = kernel_;
    k.eq_.cancel(inf.completion);

    // Release the reserved destination frame; it was never mapped, so
    // it still carries its pristine free-state.
    k.mem_.node(inf.dstNid).putFree(inf.dstPfn);

    PageFrame &frame = k.mem_.frame(pfn);
    frame.clearFlag(PageFrame::FlagUnderMigration);
    k.vmstat_.inc(busy ? Vm::PgMigrateFailBusy : Vm::PgMigrateFail);
    k.trace_.emitPage(TraceEvent::MigrateAbort, k.eq_.now(), inf.req.src,
                      inf.req.type, pfn, inf.req.asid, inf.req.vpn,
                      inf.dstNid);
    if (busy)
        putBack(inf.req);
}

void
MigrationEngine::abortOnAccess(Pfn pfn)
{
    abortInFlight(pfn, true);
}

void
MigrationEngine::abortOnFree(Pfn pfn)
{
    abortInFlight(pfn, false);
}

} // namespace tpp
