/**
 * @file
 * Unit tests for AddressSpace: VMAs, PTEs and range recycling.
 */

#include <gtest/gtest.h>

#include "mm/address_space.hh"
#include "sim/logging.hh"

namespace tpp {
namespace {

TEST(AddressSpace, MmapReservesDense)
{
    AddressSpace as(0);
    const Vpn a = as.mmap(10, PageType::Anon, "a");
    const Vpn b = as.mmap(5, PageType::File, "b");
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 10u);
    EXPECT_EQ(as.tableSize(), 15u);
    EXPECT_TRUE(as.isMapped(0));
    EXPECT_TRUE(as.isMapped(14));
    EXPECT_FALSE(as.isMapped(15));
}

TEST(AddressSpace, PteTypeMatchesRegion)
{
    AddressSpace as(0);
    const Vpn a = as.mmap(2, PageType::Anon, "a");
    const Vpn f = as.mmap(2, PageType::File, "f", true);
    // Attributes are stamped lazily from the VMA at first fault.
    EXPECT_EQ(as.materialize(a).type, PageType::Anon);
    EXPECT_EQ(as.materialize(f).type, PageType::File);
    EXPECT_FALSE(as.materialize(a).diskBacked());
    EXPECT_TRUE(as.materialize(f).diskBacked());
}

TEST(AddressSpace, VmaLookupFindsOwningRegion)
{
    AddressSpace as(0);
    const Vpn a = as.mmap(4, PageType::Anon, "a");
    const Vpn f = as.mmap(4, PageType::File, "f", true);
    ASSERT_NE(as.vmaOf(a + 3), nullptr);
    EXPECT_EQ(as.vmaOf(a + 3)->type, PageType::Anon);
    ASSERT_NE(as.vmaOf(f), nullptr);
    EXPECT_TRUE(as.vmaOf(f)->diskBacked);
    EXPECT_EQ(as.vmaOf(f + 4), nullptr);
}

TEST(AddressSpace, VmasTracked)
{
    AddressSpace as(0);
    as.mmap(4, PageType::Anon, "heap");
    ASSERT_EQ(as.vmas().size(), 1u);
    EXPECT_EQ(as.vmas()[0].label, "heap");
    EXPECT_EQ(as.vmas()[0].pages, 4u);
    EXPECT_EQ(as.vmas()[0].end(), 4u);
}

TEST(AddressSpace, MunmapClearsAndRecycles)
{
    AddressSpace as(0);
    const Vpn a = as.mmap(8, PageType::Anon, "a");
    as.munmap(a, 8);
    EXPECT_FALSE(as.isMapped(a));
    EXPECT_TRUE(as.vmas().empty());
    // Same-size reservation reuses the vpn range (no table growth).
    const Vpn b = as.mmap(8, PageType::File, "b");
    EXPECT_EQ(b, a);
    EXPECT_EQ(as.tableSize(), 8u);
    EXPECT_EQ(as.materialize(b).type, PageType::File);
}

TEST(AddressSpace, DifferentSizeDoesNotRecycle)
{
    AddressSpace as(0);
    const Vpn a = as.mmap(8, PageType::Anon, "a");
    as.munmap(a, 8);
    const Vpn b = as.mmap(4, PageType::Anon, "b");
    EXPECT_EQ(b, 8u);
}

TEST(AddressSpace, ResidentCounters)
{
    AddressSpace as(0);
    as.mmap(4, PageType::Anon, "a");
    EXPECT_EQ(as.residentPages(), 0u);
    as.noteMapped(PageType::Anon);
    as.noteMapped(PageType::File);
    EXPECT_EQ(as.residentPages(), 2u);
    EXPECT_EQ(as.residentPages(PageType::Anon), 1u);
    EXPECT_EQ(as.residentPages(PageType::File), 1u);
    as.noteUnmapped(PageType::Anon);
    EXPECT_EQ(as.residentPages(PageType::Anon), 0u);
}

TEST(AddressSpace, PteBitOperations)
{
    Pte pte;
    EXPECT_FALSE(pte.present());
    pte.set(Pte::BitPresent);
    pte.set(Pte::BitProtNone);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.protNone());
    pte.clear(Pte::BitProtNone);
    EXPECT_FALSE(pte.protNone());
    EXPECT_TRUE(pte.present());
}

TEST(AddressSpaceDeathTest, DiskBackedAnonIsFatal)
{
    setLogVerbose(false);
    AddressSpace as(0);
    EXPECT_DEATH(as.mmap(1, PageType::Anon, "x", true), "file regions");
}

TEST(AddressSpaceDeathTest, ZeroPageMmapIsFatal)
{
    setLogVerbose(false);
    AddressSpace as(0);
    EXPECT_DEATH(as.mmap(0, PageType::Anon), "zero");
}

TEST(AddressSpaceDeathTest, MunmapUnknownVmaPanics)
{
    setLogVerbose(false);
    AddressSpace as(0);
    as.mmap(8, PageType::Anon, "a");
    EXPECT_DEATH(as.munmap(1, 4), "unknown VMA");
}

TEST(AddressSpaceDeathTest, MunmapPresentPtePanics)
{
    setLogVerbose(false);
    AddressSpace as(0);
    const Vpn a = as.mmap(2, PageType::Anon, "a");
    as.pte(a).set(Pte::BitPresent);
    EXPECT_DEATH(as.munmap(a, 2), "present");
}

} // namespace
} // namespace tpp
