/**
 * @file
 * Explicit memory-tier hierarchy, in the style of Linux's memory-tiers
 * abstraction (mm/memory-tiers.c).
 *
 * Every node gets a *tier rank* derived from its NodeProfile: rank 0
 * (the toptier) holds every CPU-attached node regardless of latency —
 * promotion always targets the toptier, exactly as
 * node_is_toptier() == !cpuLess in the kernel — and CPU-less nodes are
 * grouped into lower tiers by distinct idle latency, nearest first.
 * Demotion moves pages to *strictly lower* tiers in distance order; a
 * bottom-tier node has nowhere to demote to and falls back to swap.
 *
 * On the canned two-node topologies this reproduces the historical
 * "CPU node = fast, CXL node = terminal slow" behaviour bit-for-bit
 * (golden-fingerprint tests pin this); on machines with several
 * CPU-less latency classes it turns the single demotion hop into a
 * chain: local -> cxl -> cxl-far -> swap.
 */

#ifndef TPP_MEM_TIER_HIERARCHY_HH
#define TPP_MEM_TIER_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "mem/node.hh"
#include "sim/types.hh"

namespace tpp {

/**
 * The machine's tier graph. Built once by MemorySystem from the node
 * profiles and the SLIT distance matrix; immutable afterwards.
 */
class TierHierarchy
{
  public:
    TierHierarchy() = default;

    /**
     * Derive the hierarchy.
     *
     * @param profiles   one NodeProfile per node, in node-id order
     * @param distances  SLIT matrix, distances[i][j]
     */
    TierHierarchy(
        const std::vector<NodeProfile> &profiles,
        const std::vector<std::vector<std::uint32_t>> &distances);

    /** Number of distinct tiers (>= 1 on any valid machine). */
    std::size_t numTiers() const { return tiers_.size(); }

    /** Tier rank of a node; 0 = toptier, numTiers()-1 = bottom. */
    unsigned rank(NodeId nid) const { return rank_[nid]; }

    /** @return true when `nid` is in the fast tier (CPU-attached). */
    bool isToptier(NodeId nid) const { return rank_[nid] == 0; }

    /**
     * @return true when `nid` has no lower tier to demote into; reclaim
     * on a bottom-tier node falls back to swap.
     */
    bool
    isBottomTier(NodeId nid) const
    {
        return rank_[nid] + 1 == tiers_.size();
    }

    /** Nodes of one tier, ascending node id. */
    const std::vector<NodeId> &
    tierNodes(unsigned tier_rank) const
    {
        return tiers_[tier_rank];
    }

    /** Toptier nodes (promotion targets), ascending node id. */
    const std::vector<NodeId> &toptierNodes() const { return tiers_[0]; }

    /**
     * Every node below the toptier (the scan set of
     * NUMA_BALANCING_TIERED), ascending node id. Empty on a
     * DRAM-only machine.
     */
    const std::vector<NodeId> &belowToptier() const { return belowTop_; }

    /**
     * Strictly-lower-tier nodes ordered by distance from `from` (§5.1's
     * distance-ordered demotion targets, restricted to lower tiers so
     * middle tiers chain downward instead of sideways). Empty for
     * bottom-tier nodes.
     */
    const std::vector<NodeId> &
    demotionOrder(NodeId from) const
    {
        return demotionOrder_[from];
    }

  private:
    std::vector<unsigned> rank_;
    std::vector<std::vector<NodeId>> tiers_;
    std::vector<NodeId> belowTop_;
    std::vector<std::vector<NodeId>> demotionOrder_;
};

} // namespace tpp

#endif // TPP_MEM_TIER_HIERARCHY_HH
