/**
 * @file
 * Hotness lab: the smallest useful tour of the src/hotness subsystem.
 * Pick a workload and a hotness source (or all of them), run the
 * "hotness" policy with hot-set recall measurement on, and print what
 * each temperature signal achieved — plus the sysctl surface, so the
 * example doubles as a demo of retuning the source at runtime.
 *
 * Usage:
 *   hotness_lab [--source NAME[,NAME...]|all] [--workload NAME]
 *               [--wss pages] [--seed S] [--jobs N]
 *               [--epoch-ms N] [--batch PAGES] [--table ENTRIES]
 *               [--verbose]
 *
 * Unknown source names fatal() with the registered list (see
 * hotnessSourceNames()).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "hotness/hotness_source.hh"

namespace {

using namespace tpp;

struct Options {
    std::vector<std::string> sources = {"neoprof"};
    std::string workload = "cache1";
    std::uint64_t wss = 32768;
    std::uint64_t seed = 1;
    unsigned jobs = 1;
    std::uint64_t epochMs = 0;   //!< 0 = keep the config default
    std::uint64_t batch = 0;     //!< 0 = keep the config default
    std::uint64_t tableSize = 0; //!< 0 = keep the config default
    bool verbose = false;
};

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        const auto comma = text.find(',', start);
        const auto end = comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    if (out.empty())
        tpp_fatal("empty name list '%s'", text.c_str());
    return out;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                tpp_fatal("missing value after %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--source") {
            const std::string value = next();
            opt.sources = value == "all" ? hotnessSourceNames()
                                         : splitList(value);
        } else if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--wss") {
            opt.wss = bench::parseCount("--wss", next());
        } else if (arg == "--seed") {
            opt.seed = bench::parseCount("--seed", next());
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(
                bench::parseCount("--jobs", next()));
        } else if (arg == "--epoch-ms") {
            opt.epochMs = bench::parseCount("--epoch-ms", next());
        } else if (arg == "--batch") {
            opt.batch = bench::parseCount("--batch", next());
        } else if (arg == "--table") {
            opt.tableSize = bench::parseCount("--table", next());
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else {
            tpp_fatal("unknown argument '%s'", arg.c_str());
        }
    }
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    setLogVerbose(opt.verbose);

    // One config per source. Every knob below is also a live sysctl
    // (vm.hotness.*) — the cfg.sysctls route exercises that surface the
    // way an admin would, instead of poking the struct directly.
    std::vector<ExperimentConfig> cfgs;
    for (const std::string &source : opt.sources) {
        ExperimentConfig cfg;
        cfg.workload = opt.workload;
        cfg.policy = "hotness";
        cfg.wssPages = opt.wss;
        cfg.seed = opt.seed;
        cfg.localFraction = parseRatio("1:4");
        cfg.measureHotness = true;
        cfg.hotness.source = source;
        if (opt.epochMs)
            cfg.sysctls.emplace_back(
                "vm.hotness.epoch_period_ns",
                std::to_string(opt.epochMs * kMillisecond));
        if (opt.batch)
            cfg.sysctls.emplace_back("vm.hotness.promote_batch",
                                     std::to_string(opt.batch));
        if (opt.tableSize)
            cfg.sysctls.emplace_back("vm.hotness.counter_table_size",
                                     std::to_string(opt.tableSize));
        cfgs.push_back(cfg);
    }

    SweepOptions sweep;
    sweep.jobs = opt.jobs;
    sweep.progress = opt.verbose;
    const std::vector<ExperimentResult> results =
        SweepRunner(sweep).run(cfgs);

    TextTable table({"source", "tput (ops/s)", "local traffic",
                     "hot-set recall", "promoted", "ctr evictions"});
    for (std::size_t i = 0; i < results.size(); ++i) {
        const ExperimentResult &res = results[i];
        table.addRow(
            {opt.sources[i], TextTable::num(res.throughput, 0),
             TextTable::pct(res.localTrafficShare),
             TextTable::pct(res.hotSetRecall),
             TextTable::count(res.vmstat.get(Vm::PgPromoteSuccess)),
             TextTable::count(
                 res.vmstat.get(Vm::HotnessCounterEvict))});
    }
    table.print();
    return 0;
}
