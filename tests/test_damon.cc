/**
 * @file
 * Tests for the DAMON-lite monitor and the damon-reclaim policy.
 */

#include "policy/damon_reclaim.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

DamonConfig
fastConfig()
{
    DamonConfig cfg;
    cfg.samplingInterval = 1 * kMillisecond;
    cfg.aggregationInterval = 20 * kMillisecond;
    cfg.regionsUpdateInterval = 200 * kMillisecond;
    cfg.minRegions = 4;
    cfg.maxRegions = 64;
    return cfg;
}

TEST(Damon, InitialRegionsCoverVmas)
{
    TestMachine m(2048, 2048);
    m.kernel.mmap(m.asid, 256, PageType::Anon, "a");
    m.kernel.mmap(m.asid, 128, PageType::File, "b");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    std::uint64_t covered = 0;
    for (const DamonRegion &region : monitor.regions())
        covered += region.pages();
    EXPECT_EQ(covered, 384u);
    // Split towards the midpoint region target.
    EXPECT_GE(monitor.regions().size(), 4u);
    EXPECT_LE(monitor.regions().size(), 64u);
}

TEST(Damon, RegionsStaySortedAndDisjoint)
{
    TestMachine m(2048, 2048);
    m.kernel.mmap(m.asid, 512, PageType::Anon, "a");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    const auto &regions = monitor.regions();
    for (std::size_t i = 1; i < regions.size(); ++i) {
        if (regions[i].asid == regions[i - 1].asid) {
            EXPECT_GE(regions[i].start, regions[i - 1].end);
        }
    }
}

TEST(Damon, HotRegionsAccumulateAccesses)
{
    TestMachine m(4096, 4096);
    const Vpn hot = m.populate(128, PageType::Anon);
    const Vpn cold_base = m.kernel.mmap(m.asid, 128, PageType::Anon, "c");
    for (int i = 0; i < 128; ++i)
        m.kernel.access(m.asid, cold_base + i, AccessKind::Store, 0);

    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.start();

    // Keep the hot region hot while the monitor samples.
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 128; ++i)
            m.kernel.access(m.asid, hot + i, AccessKind::Load, 0);
        m.eq.run(m.eq.now() + 2 * kMillisecond);
    }
    ASSERT_GT(monitor.aggregationsDone(), 2u);

    std::uint32_t hot_hits = 0, cold_hits = 0;
    for (const DamonRegion &region : monitor.regions()) {
        if (region.start >= hot && region.end <= hot + 128)
            hot_hits += region.nrAccesses;
        if (region.start >= cold_base &&
            region.end <= cold_base + 128)
            cold_hits += region.nrAccesses;
    }
    EXPECT_GT(hot_hits, cold_hits);
}

TEST(Damon, ColdRegionsAgeUp)
{
    TestMachine m(2048, 2048);
    m.populate(256, PageType::Anon);
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.start();
    m.eq.run(m.eq.now() + 200 * kMillisecond);
    // Nothing touched since population: regions go cold and age.
    bool saw_aged_cold = false;
    for (const DamonRegion &region : monitor.regions()) {
        if (region.nrAccesses == 0 && region.age >= 2)
            saw_aged_cold = true;
    }
    EXPECT_TRUE(saw_aged_cold);
}

TEST(Damon, RebuildAfterMunmapDropsRegions)
{
    TestMachine m(2048, 2048);
    const Vpn a = m.kernel.mmap(m.asid, 256, PageType::Anon, "a");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    ASSERT_FALSE(monitor.regions().empty());
    m.kernel.munmap(m.asid, a, 256);
    monitor.rebuildRegions();
    EXPECT_TRUE(monitor.regions().empty());
}

TEST(DamonDeathTest, BadRegionBoundsAreFatal)
{
    TestMachine m(256, 256);
    DamonConfig cfg;
    cfg.minRegions = 10;
    cfg.maxRegions = 5;
    EXPECT_DEATH({ DamonMonitor monitor(m.kernel, cfg); },
                 "minRegions");
}

TEST(DamonReclaim, DemotesColdPagesProactively)
{
    DamonReclaimConfig cfg;
    cfg.monitor = fastConfig();
    cfg.opInterval = 50 * kMillisecond;
    cfg.coldMinAgeAggregations = 1;
    TestMachine m(2048, 2048,
                  std::make_unique<DamonReclaimPolicy>(cfg));
    const Vpn base = m.populate(512, PageType::Anon);
    for (int i = 0; i < 512; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);

    m.eq.run(m.eq.now() + kSecond);
    auto &policy =
        static_cast<DamonReclaimPolicy &>(m.kernel.policy());
    EXPECT_GT(policy.pagesDemotedProactively(), 0u);
    EXPECT_GT(m.kernel.residentPages(m.cxl(), PageType::Anon), 0u);
    // Demotion, not paging.
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PswpOut), 0u);
}

TEST(DamonReclaim, SparesHotRegions)
{
    DamonReclaimConfig cfg;
    cfg.monitor = fastConfig();
    cfg.opInterval = 50 * kMillisecond;
    cfg.coldMinAgeAggregations = 1;
    TestMachine m(2048, 2048,
                  std::make_unique<DamonReclaimPolicy>(cfg));
    const Vpn hot = m.populate(64, PageType::Anon);

    // Keep touching the hot set while the policy runs.
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 64; ++i)
            m.kernel.access(m.asid, hot + i, AccessKind::Load, 0);
        m.eq.run(m.eq.now() + 25 * kMillisecond);
    }
    // The hot pages stayed local.
    std::uint64_t still_local = 0;
    for (int i = 0; i < 64; ++i)
        still_local += (m.frameOf(hot + i).nid == m.local());
    EXPECT_GE(still_local, 60u);
}

} // namespace
} // namespace tpp
