/**
 * @file
 * Unit tests for the discrete-event queue.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace tpp {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired++; });
    eq.schedule(11, [&] { fired++; });
    eq.run(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    eq.run(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunAdvancesClockToHorizon)
{
    EventQueue eq;
    eq.run(500);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue eq;
    int fired = 0;
    const EventId id = eq.schedule(10, [&] { fired++; });
    eq.schedule(20, [&] { fired++; });
    eq.cancel(id);
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIsNoop)
{
    EventQueue eq;
    eq.cancel(0);
    eq.cancel(9999);
    int fired = 0;
    eq.schedule(1, [&] { fired++; });
    eq.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PendingCountsLiveEvents)
{
    EventQueue eq;
    const EventId a = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    EXPECT_EQ(eq.pending(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runAll();
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    std::vector<Tick> fire_ticks;
    std::function<void()> chain = [&]() {
        fire_ticks.push_back(eq.now());
        if (fire_ticks.size() < 5)
            eq.scheduleAfter(10, chain);
    };
    eq.schedule(0, chain);
    eq.runAll();
    EXPECT_EQ(fire_ticks,
              (std::vector<Tick>{0, 10, 20, 30, 40}));
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { fired++; });
    eq.reset();
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.now(), 0u);
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RunStopsBeforeLaterEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { fired++; });
    eq.run(50);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 50u);
    eq.run(150);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledHeadBeyondHorizonStaysQueued)
{
    EventQueue eq;
    int fired = 0;
    const EventId head = eq.schedule(10, [&] { fired += 1; });
    eq.schedule(100, [&] { fired += 10; });
    eq.cancel(head);
    eq.run(50);
    EXPECT_EQ(fired, 0);
    eq.run(100);
    EXPECT_EQ(fired, 10);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

} // namespace
} // namespace tpp
