#include "harness/table.hh"

#include <algorithm>
#include <cinttypes>

#include "sim/logging.hh"

namespace tpp {

TextTable::TextTable(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != rows_.front().size())
        tpp_panic("table row width %zu != header width %zu", cells.size(),
                  rows_.front().size());
    rows_.push_back(std::move(cells));
}

void
TextTable::print() const
{
    std::vector<std::size_t> widths(rows_.front().size(), 0);
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        std::string line;
        for (std::size_t c = 0; c < rows_[r].size(); ++c) {
            std::string cell = rows_[r][c];
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < rows_[r].size())
                line += "  ";
        }
        std::printf("%s\n", line.c_str());
        if (r == 0) {
            std::string rule;
            for (std::size_t c = 0; c < widths.size(); ++c) {
                rule += std::string(widths[c], '-');
                if (c + 1 < widths.size())
                    rule += "  ";
            }
            std::printf("%s\n", rule.c_str());
        }
    }
}

std::string
TextTable::pct(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
TextTable::num(double value, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
TextTable::count(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    return buf;
}

} // namespace tpp
