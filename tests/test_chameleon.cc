/**
 * @file
 * Unit tests for the Chameleon profiler: sampling cadence, duty
 * cycling, bitmap history and the interval statistics.
 */

#include "chameleon/chameleon.hh"
#include "test_common.hh"
#include "workloads/trace.hh"

namespace tpp {
namespace {

using test::TestMachine;

ChameleonConfig
everyAccess()
{
    ChameleonConfig cfg;
    cfg.samplePeriod = 1;
    cfg.dutyCycle = false;
    cfg.interval = 100 * kMillisecond;
    return cfg;
}

TEST(Chameleon, SamplePeriodThinsRecords)
{
    TestMachine m;
    ChameleonConfig cfg = everyAccess();
    cfg.samplePeriod = 10;
    Chameleon cham(m.kernel, cfg);
    auto observer = cham.observer();
    const Vpn base = m.populate(1, PageType::Anon);
    for (int i = 0; i < 100; ++i)
        observer(AccessRecord{m.asid, base, AccessKind::Load, 0});
    EXPECT_EQ(cham.totalEvents(), 100u);
    EXPECT_EQ(cham.totalSamples(), 10u);
}

TEST(Chameleon, DutyCyclingDropsOffSlices)
{
    TestMachine m;
    ChameleonConfig cfg;
    cfg.samplePeriod = 1;
    cfg.numCoreGroups = 4;
    cfg.miniInterval = 10 * kMillisecond;
    Chameleon cham(m.kernel, cfg);
    auto observer = cham.observer();
    const Vpn base = m.populate(1, PageType::Anon);
    // One access in every mini-interval over 40 of them.
    for (int slice = 0; slice < 40; ++slice) {
        observer(AccessRecord{m.asid, base, AccessKind::Load,
                              static_cast<Tick>(slice) *
                                  cfg.miniInterval});
    }
    // Only one in four slices is live.
    EXPECT_EQ(cham.totalSamples(), 10u);
}

TEST(Chameleon, IntervalStatsCountTouchedByType)
{
    TestMachine m;
    Chameleon cham(m.kernel, everyAccess());
    cham.start();
    auto observer = cham.observer();
    const Vpn anon = m.populate(4, PageType::Anon);
    const Vpn file = m.kernel.mmap(m.asid, 4, PageType::File, "f");
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, file + i, AccessKind::Load, 0);

    for (int i = 0; i < 3; ++i)
        observer(AccessRecord{m.asid, anon + i, AccessKind::Load, 0});
    observer(AccessRecord{m.asid, file, AccessKind::Load, 0});

    m.eq.run(150 * kMillisecond); // one interval boundary
    ASSERT_GE(cham.intervals().size(), 1u);
    const auto &iv = cham.intervals().front();
    EXPECT_EQ(iv.touchedByType[0], 3u);
    EXPECT_EQ(iv.touchedByType[1], 1u);
    EXPECT_EQ(iv.touchedTotal, 4u);
    EXPECT_EQ(iv.residentTotal, 8u);
    EXPECT_EQ(iv.residentByType[0], 4u);
}

TEST(Chameleon, ReaccessGapRecorded)
{
    TestMachine m;
    Chameleon cham(m.kernel, everyAccess());
    cham.start();
    auto observer = cham.observer();
    const Vpn base = m.populate(1, PageType::Anon);

    // Touch in interval 0, stay cold for two intervals, touch again in
    // interval 3.
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(310 * kMillisecond); // intervals 0,1,2 complete
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(410 * kMillisecond);

    ASSERT_GE(cham.intervals().size(), 4u);
    const auto &iv = cham.intervals()[3];
    EXPECT_EQ(iv.reaccessGap[3], 1u);
    EXPECT_DOUBLE_EQ(cham.reaccessCdf(2), 0.0);
    EXPECT_DOUBLE_EQ(cham.reaccessCdf(3), 1.0);
}

TEST(Chameleon, AdjacentIntervalGapIsOne)
{
    TestMachine m;
    Chameleon cham(m.kernel, everyAccess());
    cham.start();
    auto observer = cham.observer();
    const Vpn base = m.populate(1, PageType::Anon);
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(110 * kMillisecond);
    observer(AccessRecord{m.asid, base, AccessKind::Load, m.eq.now()});
    m.eq.run(210 * kMillisecond);
    EXPECT_DOUBLE_EQ(cham.reaccessCdf(1), 1.0);
}

TEST(Chameleon, HotFractionAveragesIntervals)
{
    TestMachine m;
    Chameleon cham(m.kernel, everyAccess());
    cham.start();
    auto observer = cham.observer();
    const Vpn base = m.populate(10, PageType::Anon);
    // Touch 5 of 10 resident pages each interval.
    for (int interval = 0; interval < 3; ++interval) {
        for (int i = 0; i < 5; ++i) {
            observer(AccessRecord{m.asid, base + i, AccessKind::Load,
                                  m.eq.now()});
        }
        m.eq.run(m.eq.now() + 100 * kMillisecond);
    }
    EXPECT_NEAR(cham.meanHotFraction(PageType::Anon), 0.5, 0.01);
    EXPECT_NEAR(cham.meanHotFraction(), 0.5, 0.01);
    EXPECT_DOUBLE_EQ(cham.meanHotFraction(PageType::File), 0.0);
}

TEST(Chameleon, WorksAttachedToWorkload)
{
    TestMachine m(4096, 4096);
    std::vector<TraceEntry> trace;
    for (int i = 0; i < 5000; ++i)
        trace.push_back({static_cast<std::uint64_t>(i % 64),
                         AccessKind::Load});
    TraceWorkload wl(64, trace, PageType::Anon, 500);
    ChameleonConfig cfg;
    cfg.samplePeriod = 4;
    cfg.dutyCycle = false;
    cfg.interval = 50 * kMillisecond;
    Chameleon cham(m.kernel, cfg);
    wl.setObserver(cham.observer());
    cham.start();
    wl.init(m.kernel);
    while (!wl.done())
        wl.runBatch(m.kernel);
    m.eq.run(m.eq.now() + 60 * kMillisecond);
    EXPECT_EQ(cham.totalEvents(), 5000u);
    EXPECT_EQ(cham.totalSamples(), 1250u);
    ASSERT_GE(cham.intervals().size(), 1u);
    EXPECT_GT(cham.intervals().front().touchedTotal, 0u);
}

TEST(ChameleonDeathTest, ZeroPeriodIsFatal)
{
    TestMachine m;
    ChameleonConfig cfg;
    cfg.samplePeriod = 0;
    EXPECT_DEATH({ Chameleon cham(m.kernel, cfg); }, "period");
}

} // namespace
} // namespace tpp
