#include "harness/experiment.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "harness/shard.hh"
#include "harness/sweep.hh"
#include "hotness/hotness_policy.hh"
#include "policy/adaptive/adaptive_policy.hh"
#include "mem/node.hh"
#include "mm/kernel.hh"
#include "mm/policy_registry.hh"
#include "sim/logging.hh"
#include "workloads/workload_registry.hh"

namespace tpp {

double
parseRatio(const std::string &ratio)
{
    const SpecResult<double> parsed = parseRatioSpec(ratio);
    if (!parsed)
        tpp_fatal("%s", parsed.error().render().c_str());
    return *parsed;
}

std::unique_ptr<PlacementPolicy>
makePolicy(const ExperimentConfig &cfg)
{
    return PolicyRegistry::instance().make(cfg.policy, cfg);
}

namespace {

/** Decode one tenant entry's fields into a TenantSpec. */
SpecResult<TenantSpec>
parseTenantEntry(const SpecEntry &entry)
{
    TenantSpec tenant;
    tenant.workload = entry.head();
    if (auto r = entry.getU64("wss", &tenant.wssPages); !r)
        return makeUnexpected(r.error());
    if (auto r = entry.getDouble("low", &tenant.lowFraction, 0.0, 1.0); !r)
        return makeUnexpected(r.error());
    if (auto r = entry.getDouble("budget", &tenant.budgetMBps, 0.0, 1e9);
        !r) {
        return makeUnexpected(r.error());
    }
    if (auto r = entry.getKeyword("place", &tenant.placement,
                                  {"none", "local_only", "cxl_only"});
        !r) {
        return makeUnexpected(r.error());
    }
    if (auto r = entry.getDouble("qps", &tenant.openLoop.qps, 0.0, 1e9);
        !r) {
        return makeUnexpected(r.error());
    }
    if (auto r = entry.getKeyword("arrival", &tenant.openLoop.arrival,
                                  {"poisson", "bursty", "diurnal"});
        !r) {
        return makeUnexpected(r.error());
    }
    if (auto r =
            entry.getDouble("slo", &tenant.openLoop.sloP99Us, 0.0, 1e9);
        !r) {
        return makeUnexpected(r.error());
    }
    if (auto r =
            entry.finish("wss, low, budget, place, qps, arrival, slo");
        !r) {
        return makeUnexpected(r.error());
    }
    return tenant;
}

} // namespace

SpecResult<std::vector<TenantSpec>>
parseTenants(const std::string &spec)
{
    const auto entries = parseSpec(spec, /*with_head=*/true);
    if (!entries)
        return makeUnexpected(entries.error());
    std::vector<TenantSpec> tenants;
    for (const SpecEntry &entry : *entries) {
        SpecResult<TenantSpec> tenant = parseTenantEntry(entry);
        if (!tenant)
            return makeUnexpected(tenant.error());
        tenants.push_back(std::move(*tenant));
    }
    if (tenants.empty())
        return specError("--tenants spec names no tenants", spec);
    return tenants;
}

std::vector<TenantSpec>
parseTenantsSpec(const std::string &spec)
{
    SpecResult<std::vector<TenantSpec>> tenants = parseTenants(spec);
    if (!tenants)
        tpp_fatal("%s", tenants.error().render().c_str());
    return std::move(*tenants);
}

SpecResult<MemoryConfig>
parseTopology(const std::string &spec)
{
    const auto entries = parseSpec(spec, /*with_head=*/true);
    if (!entries)
        return makeUnexpected(entries.error());

    MemoryConfig cfg;
    for (const SpecEntry &entry : *entries) {
        if (entry.head().empty())
            return specError("--topology node entry has no name",
                             entry.raw());
        for (const NodeConfig &prev : cfg.nodes) {
            if (prev.profile.name == entry.head()) {
                return specError("--topology node name repeats",
                                 entry.head());
            }
        }

        std::uint64_t pages = 0;
        if (auto r = entry.getU64("pages", &pages, /*min_value=*/1); !r)
            return makeUnexpected(r.error());
        // `lat` present marks a lower tier: the node is CPU-less unless
        // the entry also says cpu=1 (a slow socket is still toptier).
        const bool has_lat = entry.has("lat");
        double lat = TopologyBuilder::kLocalLatencyNs;
        if (auto r = entry.getDouble("lat", &lat, 1.0, 1e9); !r)
            return makeUnexpected(r.error());
        std::uint64_t cpu = has_lat ? 0 : 1;
        if (auto r = entry.getU64("cpu", &cpu, 0, 1); !r)
            return makeUnexpected(r.error());
        const bool cpu_less = cpu == 0;
        double bw = cpu_less ? TopologyBuilder::kCxlBandwidthGBps
                             : TopologyBuilder::kLocalBandwidthGBps;
        if (auto r = entry.getDouble("bw", &bw, 0.1, 1e9); !r)
            return makeUnexpected(r.error());
        if (auto r = entry.finish("pages, lat, bw, cpu"); !r)
            return makeUnexpected(r.error());

        if (pages == 0)
            return specError("--topology node has no pages", entry.head());
        cfg.nodes.push_back(
            NodeConfig{pages, NodeProfile{lat, bw, cpu_less,
                                          entry.head()}});
    }
    if (cfg.nodes.empty())
        return specError("--topology spec names no nodes", spec);

    bool any_cpu = false;
    for (const NodeConfig &nc : cfg.nodes)
        any_cpu = any_cpu || !nc.profile.cpuLess;
    if (!any_cpu) {
        return specError("--topology has no CPU-attached node (every "
                         "entry sets lat= without cpu=1)",
                         spec);
    }

    // Distances follow the tier structure the same way the canned
    // machines do: 10 on the diagonal, one extra 10 per hop away from
    // the CPU. A CPU node is hop 0; the k-th distinct CPU-less latency
    // class (ascending) is hop k.
    std::vector<double> latencies;
    for (const NodeConfig &nc : cfg.nodes)
        if (nc.profile.cpuLess)
            latencies.push_back(nc.profile.idleLatencyNs);
    std::sort(latencies.begin(), latencies.end());
    latencies.erase(std::unique(latencies.begin(), latencies.end()),
                    latencies.end());
    std::vector<std::uint32_t> hop;
    for (const NodeConfig &nc : cfg.nodes) {
        if (!nc.profile.cpuLess) {
            hop.push_back(0);
            continue;
        }
        const auto it =
            std::lower_bound(latencies.begin(), latencies.end(),
                             nc.profile.idleLatencyNs);
        hop.push_back(1 + static_cast<std::uint32_t>(
                              it - latencies.begin()));
    }
    const std::size_t n = cfg.nodes.size();
    cfg.distances.assign(n, std::vector<std::uint32_t>(n, 10));
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            cfg.distances[i][j] =
                10 + 10 * std::max<std::uint32_t>(
                              1, std::max(hop[i], hop[j]));
        }
    }
    return cfg;
}

SpecResult<void>
ExperimentConfig::validate() const
{
    if (wssPages == 0)
        return specError("config wssPages must be > 0");
    if (!std::isfinite(capacityHeadroom) || capacityHeadroom < 1.0) {
        return specError("config capacityHeadroom must be >= 1",
                         std::to_string(capacityHeadroom));
    }
    if (!allLocal &&
        !(localFraction > 0.0 && localFraction <= 1.0)) {
        return specError("config localFraction out of (0, 1]",
                         std::to_string(localFraction));
    }
    if (measureFrom > runUntil)
        return specError("config measureFrom is after runUntil");
    if (sampleEvery == 0)
        return specError("config sampleEvery must be > 0");

    if (!topology.empty()) {
        if (allLocal) {
            return specError("config topology and allLocal are mutually "
                             "exclusive (describe the one node in the "
                             "topology instead)",
                             topology);
        }
        if (auto topo = parseTopology(topology); !topo)
            return makeUnexpected(topo.error());
        if (effectiveShardRegions() > 1) {
            return specError("config topology and shards are mutually "
                             "exclusive (regions slice the canned "
                             "two-node machine)",
                             topology);
        }
    }

    if (shards == 0)
        return specError("config shards must be >= 1", "0");
    const std::uint32_t regions = effectiveShardRegions();
    const std::uint64_t machine_pages = static_cast<std::uint64_t>(
        static_cast<double>(wssPages) * capacityHeadroom);
    if (regions > machine_pages) {
        return specError("config shards exceed the machine's frame count "
                         "(local + cxl = " +
                             std::to_string(machine_pages) + " pages)",
                         std::to_string(regions));
    }
    if (regions > 1) {
        // Every region must be able to hold its own reclaim ladder: a
        // region whose local tier is no larger than its high watermark
        // would spend the whole run in direct reclaim (or fail to build
        // at all). The proxy below repeats the machine-build math on
        // the smallest region's share.
        const std::uint64_t region_wss = wssPages / regions;
        const std::uint64_t region_total = static_cast<std::uint64_t>(
            static_cast<double>(region_wss) * capacityHeadroom);
        const std::uint64_t region_local =
            allLocal ? region_total
                     : static_cast<std::uint64_t>(
                           static_cast<double>(region_total) *
                           localFraction);
        const Watermarks wm = Watermarks::forCapacity(
            std::max<std::uint64_t>(region_local, 1));
        if (region_local <= wm.high) {
            return specError(
                "config shards slice regions smaller than one watermark "
                "gap (region local tier " +
                    std::to_string(region_local) +
                    " pages <= high watermark " + std::to_string(wm.high) +
                    ")",
                std::to_string(regions));
        }
        if (!tenants.empty()) {
            return specError("config shards and tenants are mutually "
                             "exclusive (shard the single-workload path)",
                             std::to_string(regions));
        }
        if (openLoop.enabled()) {
            return specError("config shards and open-loop traffic are "
                             "mutually exclusive",
                             std::to_string(regions));
        }
        if (withChameleon) {
            return specError("config shards and the Chameleon profiler "
                             "are mutually exclusive",
                             std::to_string(regions));
        }
        if (measureHotness) {
            return specError("config shards and measureHotness are "
                             "mutually exclusive",
                             std::to_string(regions));
        }
        if (traceEnabled) {
            return specError("config shards and tracing are mutually "
                             "exclusive",
                             std::to_string(regions));
        }
        if (sampleSeries) {
            return specError("config shards and sampleSeries are "
                             "mutually exclusive",
                             std::to_string(regions));
        }
    }

    const auto check_open_loop =
        [](const OpenLoopSpec &ol,
           const std::string &who) -> SpecResult<void> {
        if (!(ol.qps >= 0.0) || !std::isfinite(ol.qps))
            return specError(who + " qps must be finite and >= 0",
                             std::to_string(ol.qps));
        if (!(ol.sloP99Us >= 0.0) || !std::isfinite(ol.sloP99Us))
            return specError(who + " slo must be finite and >= 0",
                             std::to_string(ol.sloP99Us));
        if (ol.enabled() && !ArrivalProcess::known(ol.arrival)) {
            return specError(who + " arrival process is unknown (want " +
                                 ArrivalProcess::knownNames() + ")",
                             ol.arrival);
        }
        return {};
    };
    if (auto r = check_open_loop(openLoop, "config"); !r)
        return r;
    if (openLoop.enabled() && !tenants.empty()) {
        return specError("config-level open loop and tenants are "
                         "mutually exclusive; give each tenant its own "
                         "qps= instead");
    }

    std::uint64_t explicit_wss = 0;
    for (const TenantSpec &tenant : tenants) {
        if (tenant.workload.empty())
            return specError("tenant entry has no workload name");
        if (!(tenant.lowFraction >= 0.0 && tenant.lowFraction <= 1.0)) {
            return specError("tenant low out of [0, 1]",
                             std::to_string(tenant.lowFraction));
        }
        if (!(tenant.budgetMBps >= 0.0) ||
            !std::isfinite(tenant.budgetMBps)) {
            return specError("tenant budget must be finite and >= 0",
                             std::to_string(tenant.budgetMBps));
        }
        if (tenant.placement != "none" &&
            tenant.placement != "local_only" &&
            tenant.placement != "cxl_only") {
            return specError("tenant place must be none, local_only or "
                             "cxl_only",
                             tenant.placement);
        }
        if (auto r = check_open_loop(tenant.openLoop,
                                     "tenant " + tenant.workload);
            !r) {
            return r;
        }
        explicit_wss += tenant.wssPages;
    }
    if (!tenants.empty() && explicit_wss > wssPages) {
        return specError("tenant wss sum exceeds the config's wssPages",
                         std::to_string(explicit_wss));
    }
    return {};
}

namespace {

/** Tail-latency summary of one finished open-loop driver. */
OpenLoopResult
harvestOpenLoop(const WorkloadDriver &driver, const OpenLoopSpec &spec)
{
    OpenLoopResult ol;
    ol.enabled = true;
    ol.offeredQps = spec.qps;
    ol.arrival = spec.arrival;
    const LatencyHistogram &hist = driver.requestLatency();
    ol.requests = hist.count();
    ol.dropped = driver.windowDropped();
    ol.p50Ns = hist.percentileNs(50.0);
    ol.p99Ns = hist.percentileNs(99.0);
    ol.p999Ns = hist.percentileNs(99.9);
    ol.maxNs = hist.maxNs();
    ol.meanNs = hist.mean();
    ol.meanQueueDepth = driver.meanQueueDepth();
    ol.maxQueueDepth = driver.maxQueueDepth();
    ol.goodputQps = driver.goodputQps();
    ol.sloP99Us = spec.sloP99Us;
    ol.sloAttainment = driver.sloAttainment();
    return ol;
}

/** Arrival seed decorrelated from the workload's access-pattern seed. */
std::uint64_t
arrivalSeed(std::uint64_t seed)
{
    return seed ^ 0x9e3779b97f4a7c15ULL;
}

/**
 * The machine a config describes: the explicit --topology spec when one
 * is given, else the canned all-local / two-node build sized from the
 * working set. validate() already vetted the spec, so a parse failure
 * here is a programming error, not user input.
 */
MemoryConfig
machineConfig(const ExperimentConfig &cfg, std::uint64_t total_pages)
{
    if (!cfg.topology.empty()) {
        SpecResult<MemoryConfig> topo = parseTopology(cfg.topology);
        if (!topo)
            tpp_fatal("%s", topo.error().render().c_str());
        return std::move(*topo);
    }
    if (cfg.allLocal)
        return TopologyBuilder::allLocal(total_pages);
    const std::uint64_t local_pages = static_cast<std::uint64_t>(
        static_cast<double>(total_pages) * cfg.localFraction);
    return TopologyBuilder::cxlSystem(local_pages,
                                      total_pages - local_pages);
}

/**
 * Fraction of measurement-window accesses served by the toptier,
 * summed over every CPU node: on a multi-socket machine socket-1
 * traffic is just as local as socket-0's.
 */
double
localShareOf(const WorkloadDriver &driver, const MemorySystem &mem)
{
    double share = 0.0;
    for (NodeId nid : mem.tiers().toptierNodes())
        share += driver.trafficShare(nid);
    return share;
}

/**
 * End-of-run residency split for one page type: toptier-resident pages
 * over pages resident on *any* node. Both sums walk every node, so a
 * second socket neither drops out of the numerator nor the denominator.
 */
double
localResidencyOf(const Kernel &kernel, const MemorySystem &mem,
                 PageType type)
{
    std::uint64_t on_local = 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId nid = static_cast<NodeId>(i);
        const std::uint64_t resident = kernel.residentPages(nid, type);
        total += resident;
        if (mem.tiers().isToptier(nid))
            on_local += resident;
    }
    return total ? static_cast<double>(on_local) /
                       static_cast<double>(total)
                 : 0.0;
}

/**
 * Per-node residency and traffic rows. Populated only past the plain
 * two-node shapes (an explicit topology or > 2 nodes), so existing
 * two-node CSV/JSON output stays byte-identical.
 */
void
collectNodeRows(const ExperimentConfig &cfg, const Kernel &kernel,
                const MemorySystem &mem, const WorkloadDriver &driver,
                ExperimentResult *result)
{
    if (cfg.topology.empty() && mem.numNodes() <= 2)
        return;
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId nid = static_cast<NodeId>(i);
        const MemoryNode &node = mem.node(nid);
        NodeResult row;
        row.name = node.profile().name;
        row.tierRank = mem.tiers().rank(nid);
        row.capacityPages = node.capacity();
        row.anonPages = kernel.residentPages(nid, PageType::Anon);
        row.filePages = kernel.residentPages(nid, PageType::File);
        row.freePages = node.freePages();
        row.trafficShare = driver.trafficShare(nid);
        result->nodes.push_back(std::move(row));
    }
}

/** Cadence of the live SLO feed into the adaptive tuner. */
constexpr Tick kAdaptiveSloSyncPeriod = 50 * kMillisecond;

/**
 * Push cumulative open-loop request totals into an attached
 * AdaptivePolicy on a fixed cadence, so the tuner can difference live
 * SLO attainment per profiling window (its tie-breaker objective)
 * without the drivers knowing the policy exists. Observation only: the
 * event mutates no simulation state, so runs are bit-identical whether
 * or not it fires (the tuner-disabled goldens rely on this).
 */
class AdaptiveSloFeed
{
  public:
    AdaptiveSloFeed(EventQueue &eq, AdaptivePolicy &policy,
                    std::vector<const WorkloadDriver *> drivers,
                    Tick run_until)
        : eq_(eq), policy_(policy), drivers_(std::move(drivers)),
          runUntil_(run_until)
    {
        eq_.scheduleAfter(kAdaptiveSloSyncPeriod, [this] { tick(); });
    }

  private:
    void
    tick()
    {
        std::uint64_t met = 0;
        std::uint64_t offered = 0;
        for (const WorkloadDriver *driver : drivers_) {
            met += driver->windowSloMet();
            offered +=
                driver->windowRequests() + driver->windowDropped();
        }
        policy_.noteSloTotals(met, offered);
        if (eq_.now() < runUntil_)
            eq_.scheduleAfter(kAdaptiveSloSyncPeriod, [this] { tick(); });
    }

    EventQueue &eq_;
    AdaptivePolicy &policy_;
    std::vector<const WorkloadDriver *> drivers_;
    Tick runUntil_;
};

/** Wire the feed when the policy is adaptive and open-loop tenants run. */
std::unique_ptr<AdaptiveSloFeed>
makeAdaptiveSloFeed(EventQueue &eq, Kernel &kernel,
                    std::vector<const WorkloadDriver *> open_loop,
                    Tick run_until)
{
    auto *adaptive = dynamic_cast<AdaptivePolicy *>(&kernel.policy());
    if (!adaptive || open_loop.empty())
        return nullptr;
    return std::make_unique<AdaptiveSloFeed>(eq, *adaptive,
                                             std::move(open_loop),
                                             run_until);
}

/**
 * The multi-tenant variant of runExperiment: one workload per tenant,
 * each process attached to its own memory cgroup, all sharing one
 * kernel and one event queue. Kept separate so the single-workload
 * path stays textually untouched (and provably bit-identical).
 */
ExperimentResult
runTenantExperiment(const ExperimentConfig &cfg)
{
    if (cfg.withChameleon)
        tpp_fatal("tenants and the Chameleon profiler are mutually "
                  "exclusive (the profiler assumes one workload)");

    // Resolve tenant working sets: explicit pages, or an equal share of
    // the config's total.
    std::vector<std::uint64_t> wss;
    std::uint64_t total_wss = 0;
    for (const TenantSpec &tenant : cfg.tenants) {
        const std::uint64_t pages =
            tenant.wssPages ? tenant.wssPages
                            : cfg.wssPages / cfg.tenants.size();
        if (pages == 0)
            tpp_fatal("tenant '%s' resolves to a zero-page working set",
                      tenant.workload.c_str());
        wss.push_back(pages);
        total_wss += pages;
    }

    const std::uint64_t total_pages = static_cast<std::uint64_t>(
        static_cast<double>(total_wss) * cfg.capacityHeadroom);
    const MemoryConfig mem_cfg = machineConfig(cfg, total_pages);

    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, makePolicy(cfg), MmCosts{}, cfg.migration);

    if (cfg.traceEnabled) {
        kernel.trace().setCapacity(
            static_cast<std::size_t>(cfg.traceCapacity));
        kernel.trace().enable();
    }
    std::unique_ptr<TimeSeriesSampler> sampler;
    if (cfg.sampleSeries) {
        const Tick period =
            cfg.samplePeriod ? cfg.samplePeriod : cfg.sampleEvery;
        sampler = std::make_unique<TimeSeriesSampler>(kernel, period,
                                                      cfg.runUntil);
        sampler->start();
    }

    // Cgroups exist before cfg.sysctls are applied, so a config can
    // also address the per-cgroup memcg.<name>.* knobs directly.
    MemcgController &memcg = kernel.memcg();
    std::vector<CgroupId> cgids;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        const TenantSpec &tenant = cfg.tenants[i];
        names.push_back("t" + std::to_string(i) + "-" + tenant.workload);
        const CgroupId id = memcg.create(names.back());
        MemCgroup &cg = memcg.cgroup(id);
        cg.low = static_cast<std::uint64_t>(
            static_cast<double>(wss[i]) * tenant.lowFraction);
        if (tenant.placement == "local_only")
            cg.placement = MemcgPlacement::LocalOnly;
        else if (tenant.placement == "cxl_only")
            cg.placement = MemcgPlacement::CxlOnly;
        else if (tenant.placement != "none")
            tpp_fatal("tenant '%s': bad placement '%s'",
                      tenant.workload.c_str(), tenant.placement.c_str());
        memcg.setMigrationBudget(id, tenant.budgetMBps);
        cg.sloP99Us = tenant.openLoop.sloP99Us;
        cgids.push_back(id);
    }

    for (const auto &[name, value] : cfg.sysctls) {
        if (!kernel.sysctl().set(name, value))
            tpp_fatal("sysctl %s=%s rejected", name.c_str(),
                      value.c_str());
    }

    // Workload-side observers, shared by every tenant's workload.
    std::vector<AccessObserver> observers;
    if (auto *hotness = dynamic_cast<HotnessPolicy *>(&kernel.policy())) {
        if (AccessObserver observer = hotness->accessObserver())
            observers.push_back(std::move(observer));
    }
    std::unordered_map<std::uint64_t, std::uint64_t> true_counts;
    if (cfg.measureHotness) {
        observers.push_back([&true_counts, &cfg](const AccessRecord &r) {
            if (r.tick < cfg.measureFrom)
                return;
            true_counts[(static_cast<std::uint64_t>(r.asid) << 48) |
                        r.vpn]++;
        });
    }

    DriverConfig driver_cfg;
    driver_cfg.runUntil = cfg.runUntil;
    driver_cfg.measureFrom = cfg.measureFrom;
    driver_cfg.sampleEvery = cfg.sampleEvery;

    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<std::unique_ptr<WorkloadDriver>> drivers;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        workloads.push_back(WorkloadRegistry::instance().make(WorkloadSpec{
            cfg.tenants[i].workload, wss[i], cfg.seed + i}));
        workloads.back()->setTaskNode(mem.tiers().toptierNodes().front());
        if (observers.size() == 1) {
            workloads.back()->setObserver(observers.front());
        } else if (observers.size() > 1) {
            workloads.back()->setObserver(
                [observers](const AccessRecord &r) {
                    for (const AccessObserver &observer : observers)
                        observer(r);
                });
        }
        // Each tenant drives its own (possibly open-loop) request
        // stream; the arrival RNG is decorrelated per tenant.
        DriverConfig tenant_cfg = driver_cfg;
        tenant_cfg.openLoop = cfg.tenants[i].openLoop;
        tenant_cfg.openLoopSeed = arrivalSeed(cfg.seed + i);
        drivers.push_back(std::make_unique<WorkloadDriver>(
            kernel, *workloads.back(), tenant_cfg));
    }

    // Live SLO feed for the adaptive tuner's tie-breaker objective.
    std::vector<const WorkloadDriver *> open_loop_drivers;
    for (const auto &driver : drivers)
        if (driver->openLoop())
            open_loop_drivers.push_back(driver.get());
    const std::unique_ptr<AdaptiveSloFeed> slo_feed = makeAdaptiveSloFeed(
        eq, kernel, std::move(open_loop_drivers), cfg.runUntil);

    kernel.start();
    // Each driver's init runs with the spawn cgroup pointed at its
    // tenant, so the processes a workload creates land in the right
    // cgroup without the workloads knowing cgroups exist.
    for (std::size_t i = 0; i < drivers.size(); ++i) {
        memcg.setSpawnCgroup(cgids[i]);
        drivers[i]->start();
    }
    memcg.setSpawnCgroup(kRootCgroup);
    eq.run(cfg.runUntil);

    // Harvest: headline row first (aggregate over tenants).
    ExperimentResult result;
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        if (i)
            result.workload += '+';
        result.workload += cfg.tenants[i].workload;
    }
    result.policy = cfg.policy;
    double latency_weight = 0.0;
    for (const auto &driver : drivers) {
        result.throughput += driver->throughput();
        const double ops = static_cast<double>(driver->measuredOps());
        result.meanAccessLatencyNs +=
            driver->meanAccessLatencyNs() * ops;
        latency_weight += ops;
    }
    if (latency_weight > 0.0)
        result.meanAccessLatencyNs /= latency_weight;
    // Every driver sees the same kernel-global traffic window, so one
    // driver's view is the machine's.
    result.localTrafficShare = localShareOf(*drivers.front(), mem);
    result.cxlTrafficShare = 1.0 - result.localTrafficShare;
    result.samples = drivers.front()->samples();
    result.vmstat = kernel.vmstat();
    result.meminfo = collectMemInfo(kernel);
    if (cfg.traceEnabled) {
        result.trace = kernel.trace().snapshot();
        result.traceEmitted = kernel.trace().emitted();
        result.traceDropped = kernel.trace().dropped();
    }
    if (sampler)
        result.series = sampler->takeSeries();
    result.anonLocalResidency =
        localResidencyOf(kernel, mem, PageType::Anon);
    result.fileLocalResidency =
        localResidencyOf(kernel, mem, PageType::File);
    collectNodeRows(cfg, kernel, mem, *drivers.front(), &result);

    // Per-tenant rows.
    for (std::size_t i = 0; i < cfg.tenants.size(); ++i) {
        TenantResult row;
        row.name = names[i];
        row.workload = cfg.tenants[i].workload;
        row.throughput = drivers[i]->throughput();
        row.meanAccessLatencyNs = drivers[i]->meanAccessLatencyNs();
        if (drivers[i]->openLoop()) {
            // Request accounting lands in memory.stat before the stats
            // snapshot below, so the row and the sysctl surface agree.
            memcg.noteRequests(cgids[i],
                               drivers[i]->windowRequests() +
                                   drivers[i]->windowDropped(),
                               drivers[i]->windowSloMet());
            row.openLoop =
                harvestOpenLoop(*drivers[i], cfg.tenants[i].openLoop);
        }
        const MemCgroup &cg = memcg.cgroup(cgids[i]);
        row.pagesTotal = cg.usage();
        for (NodeId nid : mem.cpuNodes())
            row.pagesLocal += cg.usageOnNode(nid);
        row.localResidency =
            row.pagesTotal ? static_cast<double>(row.pagesLocal) /
                                 static_cast<double>(row.pagesTotal)
                           : 0.0;
        row.memcg = cg.stats;
        result.tenants.push_back(std::move(row));
    }

    // Merged open-loop headline over every tenant that ran one.
    {
        LatencyHistogram merged;
        std::uint64_t met = 0;
        std::uint64_t dropped = 0;
        bool any = false;
        bool same_slo = true;
        double slo = -1.0;
        for (std::size_t i = 0; i < drivers.size(); ++i) {
            if (!drivers[i]->openLoop())
                continue;
            const OpenLoopSpec &spec = cfg.tenants[i].openLoop;
            any = true;
            merged.merge(drivers[i]->requestLatency());
            met += drivers[i]->windowSloMet();
            dropped += drivers[i]->windowDropped();
            result.openLoop.offeredQps += spec.qps;
            result.openLoop.goodputQps += drivers[i]->goodputQps();
            result.openLoop.meanQueueDepth += drivers[i]->meanQueueDepth();
            result.openLoop.maxQueueDepth =
                std::max(result.openLoop.maxQueueDepth,
                         drivers[i]->maxQueueDepth());
            if (result.openLoop.arrival.empty())
                result.openLoop.arrival = spec.arrival;
            else if (result.openLoop.arrival != spec.arrival)
                result.openLoop.arrival = "mixed";
            if (slo < 0.0)
                slo = spec.sloP99Us;
            else if (slo != spec.sloP99Us)
                same_slo = false;
        }
        if (any) {
            result.openLoop.enabled = true;
            result.openLoop.requests = merged.count();
            result.openLoop.dropped = dropped;
            result.openLoop.p50Ns = merged.percentileNs(50.0);
            result.openLoop.p99Ns = merged.percentileNs(99.0);
            result.openLoop.p999Ns = merged.percentileNs(99.9);
            result.openLoop.maxNs = merged.maxNs();
            result.openLoop.meanNs = merged.mean();
            result.openLoop.sloP99Us = same_slo ? slo : 0.0;
            const std::uint64_t offered = merged.count() + dropped;
            result.openLoop.sloAttainment =
                offered ? static_cast<double>(met) /
                              static_cast<double>(offered)
                        : 1.0;
        }
    }

    if (cfg.measureHotness) {
        // Tenant hot sets: each tenant's top pages by measured access
        // count, up to its *capacity share* of the local tier (a tenant
        // is entitled to local_capacity * wss_i / total_wss pages).
        std::uint64_t local_capacity = 0;
        for (NodeId nid : mem.tiers().toptierNodes())
            local_capacity += mem.node(nid).capacity();

        using Entry = std::pair<std::uint64_t, std::uint64_t>;
        std::vector<std::vector<Entry>> per_tenant(cfg.tenants.size());
        std::unordered_map<CgroupId, std::size_t> by_cgid;
        for (std::size_t i = 0; i < cgids.size(); ++i)
            by_cgid[cgids[i]] = i;
        for (const auto &[key, count] : true_counts) {
            const Asid asid = static_cast<Asid>(key >> 48);
            const auto it = by_cgid.find(memcg.cgroupOf(asid));
            if (it != by_cgid.end())
                per_tenant[it->second].emplace_back(key, count);
        }

        std::uint64_t considered_all = 0;
        std::uint64_t resident_all = 0;
        for (std::size_t i = 0; i < per_tenant.size(); ++i) {
            auto &ranked = per_tenant[i];
            std::sort(ranked.begin(), ranked.end(),
                      [](const Entry &a, const Entry &b) {
                          return a.second != b.second
                                     ? a.second > b.second
                                     : a.first < b.first;
                      });
            const std::uint64_t share = static_cast<std::uint64_t>(
                static_cast<double>(local_capacity) *
                static_cast<double>(wss[i]) /
                static_cast<double>(total_wss));
            if (ranked.size() > share)
                ranked.resize(share);
            std::uint64_t considered = 0;
            std::uint64_t resident_local = 0;
            for (const auto &[key, count] : ranked) {
                const Asid asid = static_cast<Asid>(key >> 48);
                const Vpn vpn = key & ((std::uint64_t{1} << 48) - 1);
                const AddressSpace &as = kernel.addressSpace(asid);
                if (vpn >= as.tableSize() || !as.pte(vpn).present())
                    continue;
                considered++;
                if (mem.tiers().isToptier(mem.frame(as.pte(vpn).pfn).nid))
                    resident_local++;
            }
            result.tenants[i].hotSetPages = considered;
            result.tenants[i].hotSetRecall =
                considered ? static_cast<double>(resident_local) /
                                 static_cast<double>(considered)
                           : 0.0;
            considered_all += considered;
            resident_all += resident_local;
        }
        result.hotSetPages = considered_all;
        result.hotSetRecall =
            considered_all ? static_cast<double>(resident_all) /
                                 static_cast<double>(considered_all)
                           : 0.0;
    }
    return result;
}

} // namespace

ExperimentResult
runExperiment(const ExperimentConfig &cfg)
{
    if (const SpecResult<void> valid = cfg.validate(); !valid)
        tpp_fatal("%s", valid.error().render().c_str());
    if (cfg.effectiveShardRegions() > 1)
        return runShardedExperiment(cfg);
    if (!cfg.tenants.empty())
        return runTenantExperiment(cfg);

    // Build the machine.
    const std::uint64_t total_pages = static_cast<std::uint64_t>(
        static_cast<double>(cfg.wssPages) * cfg.capacityHeadroom);
    const MemoryConfig mem_cfg = machineConfig(cfg, total_pages);

    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, makePolicy(cfg), MmCosts{}, cfg.migration);

    // Telemetry attaches before anything is scheduled so the sampler's
    // events always precede same-tick simulation events; both layers
    // only observe, so results are bit-identical with them on or off
    // (tests/test_trace.cc asserts this).
    if (cfg.traceEnabled) {
        kernel.trace().setCapacity(
            static_cast<std::size_t>(cfg.traceCapacity));
        kernel.trace().enable();
    }
    std::unique_ptr<TimeSeriesSampler> sampler;
    if (cfg.sampleSeries) {
        const Tick period =
            cfg.samplePeriod ? cfg.samplePeriod : cfg.sampleEvery;
        sampler = std::make_unique<TimeSeriesSampler>(kernel, period,
                                                      cfg.runUntil);
        sampler->start();
    }

    // Admin surface: apply requested sysctls before anything runs.
    for (const auto &[name, value] : cfg.sysctls) {
        if (!kernel.sysctl().set(name, value))
            tpp_fatal("sysctl %s=%s rejected", name.c_str(),
                      value.c_str());
    }

    // Build the workload by registered name.
    std::unique_ptr<Workload> workload = WorkloadRegistry::instance().make(
        WorkloadSpec{cfg.workload, cfg.wssPages, cfg.seed});
    workload->setTaskNode(mem.tiers().toptierNodes().front());

    // Workload-side observers. Up to three consumers may want the
    // access stream (the optional Chameleon profiler, a hotness source
    // modelling a user-space profiler, and the hot-set ground truth);
    // the single observer slot gets a fan-out lambda only when more
    // than one is live, so the common single-consumer path stays flat.
    std::vector<AccessObserver> observers;
    std::unique_ptr<Chameleon> chameleon;
    if (cfg.withChameleon) {
        chameleon = std::make_unique<Chameleon>(kernel, cfg.chameleon);
        observers.push_back(chameleon->observer());
    }
    if (auto *hotness = dynamic_cast<HotnessPolicy *>(&kernel.policy())) {
        if (AccessObserver observer = hotness->accessObserver())
            observers.push_back(std::move(observer));
    }
    std::unordered_map<std::uint64_t, std::uint64_t> true_counts;
    if (cfg.measureHotness) {
        observers.push_back([&true_counts, &cfg](const AccessRecord &r) {
            if (r.tick < cfg.measureFrom)
                return;
            true_counts[(static_cast<std::uint64_t>(r.asid) << 48) |
                        r.vpn]++;
        });
    }
    if (observers.size() == 1) {
        workload->setObserver(observers.front());
    } else if (observers.size() > 1) {
        workload->setObserver([observers](const AccessRecord &r) {
            for (const AccessObserver &observer : observers)
                observer(r);
        });
    }

    DriverConfig driver_cfg;
    driver_cfg.runUntil = cfg.runUntil;
    driver_cfg.measureFrom = cfg.measureFrom;
    driver_cfg.sampleEvery = cfg.sampleEvery;
    driver_cfg.openLoop = cfg.openLoop;
    driver_cfg.openLoopSeed = arrivalSeed(cfg.seed);
    WorkloadDriver driver(kernel, *workload, driver_cfg);

    // Live SLO feed for the adaptive tuner's tie-breaker objective.
    const std::unique_ptr<AdaptiveSloFeed> slo_feed =
        driver.openLoop()
            ? makeAdaptiveSloFeed(eq, kernel, {&driver}, cfg.runUntil)
            : nullptr;

    kernel.start();
    if (chameleon)
        chameleon->start();
    driver.runToCompletion();

    // Harvest results.
    ExperimentResult result;
    result.workload = cfg.workload;
    result.policy = cfg.policy;
    result.throughput = driver.throughput();
    result.meanAccessLatencyNs = driver.meanAccessLatencyNs();
    result.localTrafficShare = localShareOf(driver, mem);
    result.cxlTrafficShare = 1.0 - result.localTrafficShare;
    result.samples = driver.samples();
    result.vmstat = kernel.vmstat();
    result.meminfo = collectMemInfo(kernel);
    if (driver.openLoop())
        result.openLoop = harvestOpenLoop(driver, cfg.openLoop);
    if (cfg.traceEnabled) {
        result.trace = kernel.trace().snapshot();
        result.traceEmitted = kernel.trace().emitted();
        result.traceDropped = kernel.trace().dropped();
    }
    if (sampler)
        result.series = sampler->takeSeries();

    // Residency split at end of run.
    result.anonLocalResidency =
        localResidencyOf(kernel, mem, PageType::Anon);
    result.fileLocalResidency =
        localResidencyOf(kernel, mem, PageType::File);
    collectNodeRows(cfg, kernel, mem, driver, &result);

    if (cfg.measureHotness) {
        // True hot set: the top pages by measured access count, as many
        // as the local tier could hold. Recall = the fraction of them
        // the policy actually got (or kept) local by the end.
        std::uint64_t local_capacity = 0;
        for (NodeId nid : mem.tiers().toptierNodes())
            local_capacity += mem.node(nid).capacity();
        std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(
            true_counts.begin(), true_counts.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        if (ranked.size() > local_capacity)
            ranked.resize(local_capacity);
        std::uint64_t considered = 0;
        std::uint64_t resident_local = 0;
        for (const auto &[key, count] : ranked) {
            const Asid asid = static_cast<Asid>(key >> 48);
            const Vpn vpn = key & ((std::uint64_t{1} << 48) - 1);
            const AddressSpace &as = kernel.addressSpace(asid);
            if (vpn >= as.tableSize() || !as.pte(vpn).present())
                continue;
            considered++;
            if (mem.tiers().isToptier(mem.frame(as.pte(vpn).pfn).nid))
                resident_local++;
        }
        result.hotSetPages = considered;
        result.hotSetRecall =
            considered ? static_cast<double>(resident_local) /
                             static_cast<double>(considered)
                       : 0.0;
    }

    if (chameleon) {
        result.chameleonIntervals = chameleon->intervals();
        result.chameleonHotFraction = chameleon->meanHotFraction();
        result.chameleonHotFractionAnon =
            chameleon->meanHotFraction(PageType::Anon);
        result.chameleonHotFractionFile =
            chameleon->meanHotFraction(PageType::File);
    }
    return result;
}

double
relativeToAllLocal(const ExperimentConfig &cfg, ExperimentResult *out,
                   ExperimentResult *baseline_out)
{
    const ExperimentResult baseline =
        BaselineCache::instance().getOrRun(allLocalTwin(cfg));
    const ExperimentResult result = runExperiment(cfg);
    if (out)
        *out = result;
    if (baseline_out)
        *baseline_out = baseline;
    if (baseline.throughput <= 0.0)
        return 0.0;
    return result.throughput / baseline.throughput;
}

} // namespace tpp
