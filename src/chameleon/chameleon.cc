#include "chameleon/chameleon.hh"

#include <algorithm>
#include <bit>

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

namespace {

std::uint64_t
pageKey(Asid asid, Vpn vpn)
{
    return (static_cast<std::uint64_t>(asid) << 48) | (vpn & 0xffffffffffffULL);
}

Asid
keyAsid(std::uint64_t key)
{
    return static_cast<Asid>(key >> 48);
}

Vpn
keyVpn(std::uint64_t key)
{
    return key & 0xffffffffffffULL;
}

} // namespace

Chameleon::Chameleon(Kernel &kernel, ChameleonConfig cfg)
    : kernel_(kernel), cfg_(cfg)
{
    if (cfg_.samplePeriod == 0)
        tpp_fatal("Chameleon sample period must be >= 1");
    if (cfg_.numCoreGroups == 0)
        tpp_fatal("Chameleon needs at least one core group");
    if (cfg_.bitsPerInterval == 0 || cfg_.bitsPerInterval > 8 ||
        64 % cfg_.bitsPerInterval != 0) {
        tpp_fatal("bitsPerInterval must divide 64 and be in [1, 8]");
    }
}

bool
Chameleon::samplingLive(Tick tick) const
{
    if (!cfg_.dutyCycle || cfg_.numCoreGroups == 1)
        return true;
    // The Collector enables sampling on one core group at a time and
    // rotates every mini_interval; a single observed stream is therefore
    // live for 1/numCoreGroups of the time.
    const std::uint64_t slice = tick / cfg_.miniInterval;
    return (slice % cfg_.numCoreGroups) == 0;
}

void
Chameleon::onAccess(const AccessRecord &record)
{
    totalEvents_++;
    if (!samplingLive(record.tick))
        return;
    // PMU counter overflow every samplePeriod events.
    if (++eventCounter_ < cfg_.samplePeriod)
        return;
    eventCounter_ = 0;
    totalSamples_++;
    tables_[currentTable_][pageKey(record.asid, record.vpn)]++;
}

AccessObserver
Chameleon::observer()
{
    return [this](const AccessRecord &record) { onAccess(record); };
}

void
Chameleon::start()
{
    kernel_.eventQueue().scheduleAfter(cfg_.interval,
                                       [this] { intervalTick(); });
}

void
Chameleon::intervalTick()
{
    // Collector: retire the active table and hand it to the Worker,
    // pointing new samples at the other one.
    auto &retired = tables_[currentTable_];
    currentTable_ ^= 1;

    ChameleonIntervalStats stats;
    stats.tick = kernel_.eventQueue().now();

    // Worker: shift every tracked page's bitmap one interval left.
    const std::uint32_t bits = cfg_.bitsPerInterval;
    const std::uint64_t field_mask = (bits == 64) ? ~0ULL
                                                  : ((1ULL << bits) - 1);
    for (auto &[key, hist] : history_)
        hist.bitmap <<= bits;

    // Mark pages sampled this interval and collect gap statistics.
    for (const auto &[key, count] : retired) {
        PageHistory &hist = history_[key];
        const std::uint64_t previous = hist.bitmap;
        if (previous != 0) {
            // Gap = index of the most recent prior interval with a
            // touch (interval field width = bitsPerInterval).
            const std::uint32_t fields = 64 / bits;
            for (std::uint32_t gap = 1; gap < fields; ++gap) {
                if ((previous >> (gap * bits)) & field_mask) {
                    if (gap < stats.reaccessGap.size())
                        stats.reaccessGap[gap]++;
                    break;
                }
            }
        }
        hist.bitmap |= std::min<std::uint64_t>(count, field_mask);
        if (count >= cfg_.frequentThreshold)
            stats.frequentTotal++;
        // Resolve the page type through the kernel-provided mapping
        // (the /proc/$PID/maps equivalent).
        const Asid asid = keyAsid(key);
        const Vpn vpn = keyVpn(key);
        const AddressSpace &as = kernel_.addressSpace(asid);
        if (vpn < as.tableSize())
            hist.type = as.pte(vpn).type;
        stats.touchedByType[static_cast<std::size_t>(hist.type)]++;
        stats.touchedTotal++;
    }
    retired.clear();

    // Residency via the kernel's per-process accounting.
    for (std::size_t p = 0; p < kernel_.numProcesses(); ++p) {
        const AddressSpace &as = kernel_.addressSpace(static_cast<Asid>(p));
        stats.residentTotal += as.residentPages();
        for (std::size_t t = 0; t < kNumPageTypes; ++t) {
            stats.residentByType[t] +=
                as.residentPages(static_cast<PageType>(t));
        }
    }

    intervals_.push_back(stats);
    kernel_.eventQueue().scheduleAfter(cfg_.interval,
                                       [this] { intervalTick(); });
}

double
Chameleon::meanHotFraction(PageType type) const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &stats : intervals_) {
        const std::uint64_t resident =
            stats.residentByType[static_cast<std::size_t>(type)];
        if (resident == 0)
            continue;
        sum += static_cast<double>(
                   stats.touchedByType[static_cast<std::size_t>(type)]) /
               static_cast<double>(resident);
        n++;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
Chameleon::meanHotFraction() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto &stats : intervals_) {
        if (stats.residentTotal == 0)
            continue;
        sum += static_cast<double>(stats.touchedTotal) /
               static_cast<double>(stats.residentTotal);
        n++;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
Chameleon::activityWord(Asid asid, Vpn vpn) const
{
    const auto it = history_.find(pageKey(asid, vpn));
    return it == history_.end() ? 0 : it->second.bitmap;
}

std::vector<ChameleonPageActivity>
Chameleon::activitySnapshot() const
{
    std::vector<ChameleonPageActivity> out;
    out.reserve(history_.size());
    for (const auto &[key, hist] : history_) {
        ChameleonPageActivity page;
        page.asid = keyAsid(key);
        page.vpn = keyVpn(key);
        page.bitmap = hist.bitmap;
        page.type = hist.type;
        out.push_back(page);
    }
    std::sort(out.begin(), out.end(),
              [](const ChameleonPageActivity &a,
                 const ChameleonPageActivity &b) {
                  return a.asid != b.asid ? a.asid < b.asid
                                          : a.vpn < b.vpn;
              });
    return out;
}

double
Chameleon::reaccessCdf(std::uint32_t max_gap) const
{
    std::uint64_t total = 0;
    std::uint64_t within = 0;
    for (const auto &stats : intervals_) {
        for (std::size_t g = 1; g < stats.reaccessGap.size(); ++g) {
            total += stats.reaccessGap[g];
            if (g <= max_gap)
                within += stats.reaccessGap[g];
        }
    }
    if (total == 0)
        return 0.0;
    return static_cast<double>(within) / static_cast<double>(total);
}

} // namespace tpp
