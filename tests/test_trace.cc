/**
 * @file
 * Trace subsystem tests: ring-buffer wrap semantics, tracepoint
 * payloads for scripted migrations, TimeSeriesSampler period math,
 * JSONL round-tripping, trace aggregation, and the load-bearing
 * guarantee that telemetry never changes simulation results.
 */

#include <sstream>

#include "harness/experiment.hh"
#include "test_common.hh"
#include "trace/sampler.hh"
#include "trace/summary.hh"
#include "trace/trace_io.hh"

namespace tpp {
namespace {

using test::TestMachine;

// ---------------------------------------------------------------------
// TraceBuffer ring semantics.

TEST(TraceBuffer, DisabledEmitRecordsNothing)
{
    TraceBuffer buf(8);
    buf.emit(TraceEvent::KswapdWake, 1, 0);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.emitted(), 0u);
    EXPECT_TRUE(buf.snapshot().empty());
}

TEST(TraceBuffer, WrapOverwritesOldestAndCountsDrops)
{
    TraceBuffer buf(4);
    buf.enable();
    for (std::uint32_t i = 0; i < 6; ++i)
        buf.emit(TraceEvent::KswapdWake, Tick(i), 0, i);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.emitted(), 6u);
    EXPECT_EQ(buf.dropped(), 2u);

    // Chronological snapshot: the two oldest records are gone.
    const std::vector<TraceRecord> events = buf.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].tick, Tick(i + 2));
        EXPECT_EQ(events[i].aux, i + 2);
    }
}

TEST(TraceBuffer, SetCapacityResetsRecordsAndCounters)
{
    TraceBuffer buf(2);
    buf.enable();
    buf.emit(TraceEvent::KswapdWake, 1, 0);
    buf.emit(TraceEvent::KswapdSleep, 2, 0);
    buf.emit(TraceEvent::KswapdWake, 3, 0);
    buf.setCapacity(8);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.emitted(), 0u);
    EXPECT_EQ(buf.dropped(), 0u);
    EXPECT_TRUE(buf.enabled());
    buf.emit(TraceEvent::KswapdWake, 4, 0);
    EXPECT_EQ(buf.size(), 1u);
}

TEST(TraceBuffer, ClearKeepsEnableState)
{
    TraceBuffer buf(4);
    buf.enable();
    buf.emit(TraceEvent::KswapdWake, 1, 0);
    buf.clear();
    EXPECT_TRUE(buf.enabled());
    EXPECT_EQ(buf.size(), 0u);
    buf.emit(TraceEvent::KswapdWake, 2, 0);
    EXPECT_EQ(buf.size(), 1u);
}

// ---------------------------------------------------------------------
// Tracepoint payloads on the mm paths.

TEST(Tracepoints, ScriptedDemotionEmitsPageScopedRecord)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    m.kernel.trace().enable();

    auto [ok, cost] = m.kernel.demotePage(m.pte(base).pfn);
    ASSERT_TRUE(ok);
    (void)cost;

    const std::vector<TraceRecord> events = m.kernel.trace().snapshot();
    ASSERT_EQ(events.size(), 1u);
    const TraceRecord &r = events[0];
    EXPECT_EQ(r.event, TraceEvent::Demote);
    EXPECT_EQ(r.node, m.local());       // source tier
    EXPECT_EQ(r.aux, m.cxl());          // destination tier
    EXPECT_EQ(r.hasPage, 1u);
    EXPECT_EQ(r.asid, m.asid);
    EXPECT_EQ(r.vpn, base);
    EXPECT_EQ(r.type, static_cast<std::uint8_t>(PageType::Anon));
    // The record carries the page's frame *after* the move.
    EXPECT_EQ(r.pfn, m.pte(base).pfn);
}

TEST(Tracepoints, ScriptedPromotionEmitsTryAndSuccess)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    auto [ok, cost] = m.kernel.demotePage(m.pte(base).pfn);
    ASSERT_TRUE(ok);
    (void)cost;

    m.kernel.trace().enable();
    auto [pok, pcost] = m.kernel.promotePage(m.pte(base).pfn, m.local());
    ASSERT_TRUE(pok);
    (void)pcost;

    const std::vector<TraceRecord> events = m.kernel.trace().snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].event, TraceEvent::PromoteTry);
    EXPECT_EQ(events[0].node, m.cxl());
    EXPECT_EQ(events[0].aux, m.local());
    const TraceRecord &r = events[1];
    EXPECT_EQ(r.event, TraceEvent::PromoteSuccess);
    EXPECT_EQ(r.node, m.cxl());         // source tier
    EXPECT_EQ(r.aux, m.local());        // destination tier
    EXPECT_EQ(r.hasPage, 1u);
    EXPECT_EQ(r.asid, m.asid);
    EXPECT_EQ(r.vpn, base);
    EXPECT_EQ(r.pfn, m.pte(base).pfn);
}

TEST(Tracepoints, SwapOutAndInCarryPageIdentity)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    for (int i = 0; i < 8; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);
    m.kernel.trace().enable();

    auto [reclaimed, cost] = m.kernel.directReclaim(m.local(), 2);
    ASSERT_GT(reclaimed, 0u);
    (void)cost;

    std::vector<TraceRecord> events = m.kernel.trace().snapshot();
    std::uint64_t swapouts = 0;
    for (const TraceRecord &r : events) {
        if (r.event != TraceEvent::SwapOut)
            continue;
        swapouts++;
        EXPECT_EQ(r.hasPage, 1u);
        EXPECT_EQ(r.asid, m.asid);
        EXPECT_FALSE(m.pte(r.vpn).present());
    }
    EXPECT_EQ(swapouts, reclaimed);

    // Touch a swapped page: the major fault emits SwapIn.
    Vpn swapped = base;
    while (m.pte(swapped).present())
        swapped++;
    m.kernel.trace().clear();
    m.kernel.access(m.asid, swapped, AccessKind::Load, m.local());
    events = m.kernel.trace().snapshot();
    bool saw_swapin = false;
    for (const TraceRecord &r : events) {
        if (r.event != TraceEvent::SwapIn)
            continue;
        saw_swapin = true;
        EXPECT_EQ(r.vpn, swapped);
        EXPECT_EQ(r.hasPage, 1u);
    }
    EXPECT_TRUE(saw_swapin);
}

// ---------------------------------------------------------------------
// TimeSeriesSampler.

TEST(Sampler, SamplesLandAtExactPeriodMultiples)
{
    TestMachine m;
    m.populate(100, PageType::Anon);
    const Tick period = 10 * kMillisecond;
    TimeSeriesSampler sampler(m.kernel, period, 105 * kMillisecond);
    sampler.start();
    m.eq.runAll();

    const std::vector<TimeSeriesPoint> &series = sampler.series();
    // 10, 20, ..., 100 ms: the 110 ms sample would overshoot stopAt.
    ASSERT_EQ(series.size(), 10u);
    for (std::size_t i = 0; i < series.size(); ++i) {
        EXPECT_EQ(series[i].tick, Tick(i + 1) * period);
        EXPECT_EQ(series[i].windowNs, period);
    }
}

TEST(Sampler, NodeUsageMatchesResidentPages)
{
    TestMachine m;
    m.populate(100, PageType::Anon);
    const Vpn file_base = m.kernel.mmap(m.asid, 50, PageType::File, "f");
    for (int i = 0; i < 50; ++i)
        m.kernel.access(m.asid, file_base + i, AccessKind::Load,
                        m.local());

    TimeSeriesSampler sampler(m.kernel, kMillisecond, kMillisecond);
    sampler.start();
    m.eq.runAll();

    ASSERT_EQ(sampler.series().size(), 1u);
    const TimeSeriesPoint &p = sampler.series().front();
    EXPECT_EQ(p.anonResident(), 100u);
    EXPECT_EQ(p.fileResident(), 50u);
    ASSERT_EQ(p.nodes.size(), m.mem.numNodes());
    EXPECT_EQ(p.nodes[m.local()].freePages,
              m.mem.node(m.local()).freePages());
}

TEST(Sampler, WindowDeltasIsolateActivityPerWindow)
{
    TestMachine m;
    const Vpn base = m.populate(8, PageType::Anon);
    const Tick period = 10 * kMillisecond;

    // Demote two pages inside the second window only.
    m.eq.schedule(15 * kMillisecond, [&] {
        m.kernel.demotePage(m.pte(base).pfn);
        m.kernel.demotePage(m.pte(base + 1).pfn);
    });

    TimeSeriesSampler sampler(m.kernel, period, 30 * kMillisecond);
    sampler.start();
    m.eq.runAll();

    const std::vector<TimeSeriesPoint> &series = sampler.series();
    ASSERT_EQ(series.size(), 3u);
    EXPECT_EQ(series[0].delta(Vm::PgDemoteAnon), 0u);
    EXPECT_EQ(series[1].delta(Vm::PgDemoteAnon), 2u);
    EXPECT_EQ(series[2].delta(Vm::PgDemoteAnon), 0u);
    // Rates normalise by the window length.
    EXPECT_DOUBLE_EQ(series[1].demotionRate(),
                     2.0 * 1e9 / static_cast<double>(period));
}

// ---------------------------------------------------------------------
// JSONL round-trip.

TEST(TraceIo, EventRoundTripsThroughJsonl)
{
    TraceRecord page;
    page.tick = 123456789;
    page.event = TraceEvent::Demote;
    page.node = 0;
    page.aux = 1;
    page.type = static_cast<std::uint8_t>(PageType::Anon);
    page.pfn = 77;
    page.asid = 3;
    page.vpn = 4242;
    page.hasPage = 1;

    TraceRecord bare;
    bare.tick = 5;
    bare.event = TraceEvent::KswapdWake;
    bare.node = 1;
    bare.aux = 900;

    TraceRecord typed;
    typed.tick = 6;
    typed.event = TraceEvent::AllocFallback;
    typed.node = 1;
    typed.type = static_cast<std::uint8_t>(PageType::File);
    typed.aux = 0;

    std::stringstream ss;
    writeTraceEventJsonl(ss, page, "web", "tpp");
    writeTraceEventJsonl(ss, bare, "web", "tpp");
    writeTraceEventJsonl(ss, typed, "dwh", "linux");

    const std::vector<TaggedTraceRecord> back = readTraceEventsJsonl(ss);
    ASSERT_EQ(back.size(), 3u);

    EXPECT_EQ(back[0].workload, "web");
    EXPECT_EQ(back[0].policy, "tpp");
    EXPECT_EQ(back[0].record.tick, page.tick);
    EXPECT_EQ(back[0].record.event, TraceEvent::Demote);
    EXPECT_EQ(back[0].record.node, page.node);
    EXPECT_EQ(back[0].record.aux, page.aux);
    EXPECT_EQ(back[0].record.type, page.type);
    EXPECT_EQ(back[0].record.pfn, page.pfn);
    EXPECT_EQ(back[0].record.asid, page.asid);
    EXPECT_EQ(back[0].record.vpn, page.vpn);
    EXPECT_EQ(back[0].record.hasPage, 1u);

    EXPECT_EQ(back[1].record.event, TraceEvent::KswapdWake);
    EXPECT_EQ(back[1].record.hasPage, 0u);
    EXPECT_EQ(back[1].record.type, kTraceNoType);
    EXPECT_EQ(back[1].record.aux, 900u);

    EXPECT_EQ(back[2].workload, "dwh");
    EXPECT_EQ(back[2].record.type,
              static_cast<std::uint8_t>(PageType::File));
    EXPECT_EQ(back[2].record.hasPage, 0u);
}

TEST(TraceIo, SampleLinesAreSkippedByTheEventReader)
{
    TestMachine m;
    m.populate(10, PageType::Anon);
    TimeSeriesSampler sampler(m.kernel, kMillisecond, kMillisecond);
    sampler.start();
    m.eq.runAll();
    ASSERT_EQ(sampler.series().size(), 1u);

    std::stringstream ss;
    writeSamplePointJsonl(ss, sampler.series().front(), "web", "tpp");
    TraceRecord bare;
    bare.event = TraceEvent::KswapdWake;
    bare.node = 0;
    writeTraceEventJsonl(ss, bare, "web", "tpp");

    const std::vector<TaggedTraceRecord> back = readTraceEventsJsonl(ss);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].record.event, TraceEvent::KswapdWake);
}

TEST(TraceIo, EventNamesRoundTrip)
{
    for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
        const TraceEvent event = static_cast<TraceEvent>(i);
        EXPECT_EQ(traceEventFromName(traceEventName(event)), event);
    }
}

// ---------------------------------------------------------------------
// Aggregation.

TEST(TraceSummary, WindowsTotalsAndPingPong)
{
    auto page_event = [](TraceEvent event, Tick tick, std::uint32_t asid,
                         Vpn vpn, std::uint8_t src, std::uint32_t dst) {
        TraceRecord r;
        r.event = event;
        r.tick = tick;
        r.asid = asid;
        r.vpn = vpn;
        r.node = src;
        r.aux = dst;
        r.hasPage = 1;
        return r;
    };
    const Tick w = kSecond;
    std::vector<TraceRecord> events = {
        // Page (1,5): demote, promote back, demote again — 2 flips.
        page_event(TraceEvent::Demote, w / 10, 1, 5, 0, 1),
        page_event(TraceEvent::PromoteSuccess, 2 * w / 10, 1, 5, 1, 0),
        page_event(TraceEvent::Demote, w + w / 10, 1, 5, 0, 1),
        // Page (1,6): one demotion, never promoted — no flip.
        page_event(TraceEvent::Demote, 3 * w / 10, 1, 6, 0, 1),
    };

    const TraceSummary summary = summarizeTrace(events, w);
    EXPECT_EQ(summary.windowNs, w);
    ASSERT_EQ(summary.windows.size(), 2u);
    EXPECT_EQ(summary.windows[0].start, 0u);
    EXPECT_EQ(summary.windows[1].start, w);
    EXPECT_EQ(summary.windows[0].count(TraceEvent::Demote), 2u);
    EXPECT_EQ(summary.windows[0].count(TraceEvent::PromoteSuccess), 1u);
    EXPECT_EQ(summary.windows[1].count(TraceEvent::Demote), 1u);
    EXPECT_EQ(summary.total(TraceEvent::Demote), 3u);
    EXPECT_EQ(summary.total(TraceEvent::PromoteSuccess), 1u);
    EXPECT_EQ(summary.activeWindows(TraceEvent::Demote), 2u);
    EXPECT_EQ(summary.activeWindows(TraceEvent::PromoteSuccess), 1u);

    ASSERT_EQ(summary.pingPong.size(), 1u);
    EXPECT_EQ(summary.pingPong[0].asid, 1u);
    EXPECT_EQ(summary.pingPong[0].vpn, 5u);
    EXPECT_EQ(summary.pingPong[0].demotions, 2u);
    EXPECT_EQ(summary.pingPong[0].promotions, 1u);
    EXPECT_EQ(summary.pingPong[0].flips, 2u);
}

TEST(TraceSummary, ChainedDemotionIsNotPingPong)
{
    auto page_event = [](TraceEvent event, Tick tick, std::uint32_t asid,
                         Vpn vpn, std::uint8_t src, std::uint32_t dst) {
        TraceRecord r;
        r.event = event;
        r.tick = tick;
        r.asid = asid;
        r.vpn = vpn;
        r.node = src;
        r.aux = dst;
        r.hasPage = 1;
        return r;
    };
    const Tick w = kSecond;
    std::vector<TraceRecord> events = {
        // Page (1,7) walks the 3-tier chain: demoted local->cxl,
        // chained cxl->cxl-far, then promoted straight back to local.
        // The promotion changes direction but retraces neither hop, so
        // node-aware detection must not call it ping-pong.
        page_event(TraceEvent::Demote, w / 10, 1, 7, 0, 1),
        page_event(TraceEvent::Demote, 2 * w / 10, 1, 7, 1, 2),
        page_event(TraceEvent::PromoteSuccess, 3 * w / 10, 1, 7, 2, 0),
        // Page (1,8) genuinely bounces on the local<->cxl edge.
        page_event(TraceEvent::Demote, w / 10, 1, 8, 0, 1),
        page_event(TraceEvent::PromoteSuccess, 2 * w / 10, 1, 8, 1, 0),
        page_event(TraceEvent::Demote, 3 * w / 10, 1, 8, 0, 1),
        page_event(TraceEvent::PromoteSuccess, 4 * w / 10, 1, 8, 1, 0),
    };

    const TraceSummary summary = summarizeTrace(events, w);
    ASSERT_EQ(summary.pingPong.size(), 1u);
    EXPECT_EQ(summary.pingPong[0].vpn, 8u);
    EXPECT_EQ(summary.pingPong[0].flips, 3u);
    EXPECT_EQ(summary.total(TraceEvent::Demote), 4u);
    EXPECT_EQ(summary.total(TraceEvent::PromoteSuccess), 3u);
}

// ---------------------------------------------------------------------
// End-to-end: telemetry through the harness.

ExperimentConfig
smallTppConfig()
{
    ExperimentConfig cfg;
    cfg.workload = "web";
    cfg.policy = "tpp";
    cfg.wssPages = 4096;
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 1 * kSecond;
    return cfg;
}

TEST(TraceHarness, TelemetryNeverChangesResults)
{
    const ExperimentConfig plain = smallTppConfig();
    ExperimentConfig traced = smallTppConfig();
    traced.traceEnabled = true;
    traced.sampleSeries = true;

    const ExperimentResult a = runExperiment(plain);
    const ExperimentResult b = runExperiment(traced);

    // Bit-identical results: telemetry observes, never steers.
    EXPECT_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.meanAccessLatencyNs, b.meanAccessLatencyNs);
    EXPECT_EQ(a.localTrafficShare, b.localTrafficShare);
    EXPECT_EQ(a.anonLocalResidency, b.anonLocalResidency);
    EXPECT_EQ(a.fileLocalResidency, b.fileLocalResidency);
    for (std::size_t i = 0; i < kNumVmCounters; ++i) {
        EXPECT_EQ(a.vmstat.get(static_cast<Vm>(i)),
                  b.vmstat.get(static_cast<Vm>(i)))
            << vmName(static_cast<Vm>(i));
    }
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].tick, b.samples[i].tick);
        EXPECT_EQ(a.samples[i].localShare, b.samples[i].localShare);
        EXPECT_EQ(a.samples[i].throughput, b.samples[i].throughput);
        EXPECT_EQ(a.samples[i].anonResident, b.samples[i].anonResident);
    }

    // And the traced run actually recorded something.
    EXPECT_FALSE(b.trace.empty());
    EXPECT_GT(b.traceEmitted, 0u);
    EXPECT_FALSE(b.series.empty());
    EXPECT_TRUE(a.trace.empty());
    EXPECT_TRUE(a.series.empty());
}

TEST(TraceHarness, DefaultTppRunHasActiveMigrationWindows)
{
    ExperimentConfig cfg = smallTppConfig();
    cfg.traceEnabled = true;
    const ExperimentResult res = runExperiment(cfg);

    const TraceSummary summary = summarizeTrace(res.trace, kSecond);
    EXPECT_GT(summary.activeWindows(TraceEvent::PromoteSuccess), 0u);
    EXPECT_GT(summary.activeWindows(TraceEvent::Demote), 0u);
    EXPECT_GT(summary.total(TraceEvent::HintFault), 0u);
}

TEST(TraceHarness, SamplerSeriesMatchesDriverCadence)
{
    ExperimentConfig cfg = smallTppConfig();
    cfg.sampleSeries = true; // period 0: follow cfg.sampleEvery
    const ExperimentResult res = runExperiment(cfg);
    ASSERT_EQ(res.series.size(), res.samples.size());
    for (std::size_t i = 0; i < res.series.size(); ++i) {
        EXPECT_EQ(res.series[i].tick, res.samples[i].tick);
        EXPECT_EQ(res.series[i].anonResident(),
                  res.samples[i].anonResident);
        EXPECT_EQ(res.series[i].fileResident(),
                  res.samples[i].fileResident);
    }
}

} // namespace
} // namespace tpp
