/**
 * @file
 * Unit tests for PageFrame flags and the LRU-list helper functions.
 */

#include <gtest/gtest.h>

#include "mem/page.hh"

namespace tpp {
namespace {

TEST(PageFrame, FreshFrameIsFree)
{
    PageFrame f;
    EXPECT_TRUE(f.isFree());
    EXPECT_FALSE(f.referenced());
    EXPECT_FALSE(f.dirty());
    EXPECT_FALSE(f.demoted());
    EXPECT_EQ(f.lru, LruListId::None);
}

TEST(PageFrame, FlagSetClear)
{
    PageFrame f;
    f.setFlag(PageFrame::FlagReferenced);
    f.setFlag(PageFrame::FlagDirty);
    EXPECT_TRUE(f.referenced());
    EXPECT_TRUE(f.dirty());
    f.clearFlag(PageFrame::FlagReferenced);
    EXPECT_FALSE(f.referenced());
    EXPECT_TRUE(f.dirty());
}

TEST(PageFrame, DemotedFlagIndependent)
{
    PageFrame f;
    f.setFlag(PageFrame::FlagDemoted);
    EXPECT_TRUE(f.demoted());
    f.clearFlag(PageFrame::FlagDemoted);
    EXPECT_FALSE(f.demoted());
}

TEST(PageFrame, ResetForFreeClearsPolicyState)
{
    PageFrame f;
    f.markAllocated();
    EXPECT_FALSE(f.isFree());
    f.setFlag(PageFrame::FlagDirty);
    f.setFlag(PageFrame::FlagDemoted);
    f.lru = LruListId::ActiveAnon;
    f.resetForFree();
    EXPECT_TRUE(f.isFree());
    EXPECT_FALSE(f.dirty());
    EXPECT_FALSE(f.demoted());
    EXPECT_EQ(f.lru, LruListId::None);
}

TEST(PageFrame, HotStructStays16Bytes)
{
    // The frame-table scan streams four frames per cache line; growing
    // the hot struct is a perf regression even when it still compiles.
    EXPECT_EQ(sizeof(PageFrame), 16u);
}

TEST(PageFrameCold, ResetForFreeClearsTelemetry)
{
    PageFrameCold c;
    c.ownerAsid = 7;
    c.ownerVpn = 99;
    c.lastHintFault = 1234;
    c.hintRefCount = 3;
    c.allocatedAt = 77;
    c.resetForFree();
    EXPECT_EQ(c.ownerAsid, 0u);
    EXPECT_EQ(c.ownerVpn, 0u);
    EXPECT_EQ(c.lastHintFault, 0u);
    EXPECT_EQ(c.hintRefCount, 0);
    EXPECT_EQ(c.allocatedAt, 0u);
}

TEST(LruHelpers, ListForTypeAndState)
{
    EXPECT_EQ(lruListFor(PageType::Anon, false),
              LruListId::InactiveAnon);
    EXPECT_EQ(lruListFor(PageType::Anon, true), LruListId::ActiveAnon);
    EXPECT_EQ(lruListFor(PageType::File, false),
              LruListId::InactiveFile);
    EXPECT_EQ(lruListFor(PageType::File, true), LruListId::ActiveFile);
}

TEST(LruHelpers, RoundTripThroughPageType)
{
    for (PageType type : {PageType::Anon, PageType::File}) {
        for (bool active : {false, true}) {
            const LruListId list = lruListFor(type, active);
            EXPECT_EQ(lruPageType(list), type);
            EXPECT_EQ(lruIsActive(list), active);
        }
    }
}

} // namespace
} // namespace tpp
