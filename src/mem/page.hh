/**
 * @file
 * Physical page-frame metadata.
 *
 * One PageFrame exists per simulated physical page, held in the global
 * FrameTable owned by MemorySystem. LRU membership is intrusive (prev /
 * next frame numbers) so list surgery is allocation-free, as in the
 * kernel's struct page.
 */

#ifndef TPP_MEM_PAGE_HH
#define TPP_MEM_PAGE_HH

#include <cstdint>

#include "sim/types.hh"

namespace tpp {

/** Which per-node LRU list a frame currently sits on. */
enum class LruListId : std::uint8_t {
    None = 0,      //!< not on any LRU (free or isolated)
    InactiveAnon,
    ActiveAnon,
    InactiveFile,
    ActiveFile,
};

/** Number of real LRU lists (excludes None). */
inline constexpr std::size_t kNumLruLists = 4;

/** @return true for the two active lists. */
constexpr bool
lruIsActive(LruListId id)
{
    return id == LruListId::ActiveAnon || id == LruListId::ActiveFile;
}

/** @return the LRU list for (type, active). */
constexpr LruListId
lruListFor(PageType type, bool active)
{
    if (type == PageType::Anon)
        return active ? LruListId::ActiveAnon : LruListId::InactiveAnon;
    return active ? LruListId::ActiveFile : LruListId::InactiveFile;
}

/** @return the page type whose pages the given list holds. */
constexpr PageType
lruPageType(LruListId id)
{
    return (id == LruListId::InactiveAnon || id == LruListId::ActiveAnon)
               ? PageType::Anon
               : PageType::File;
}

/**
 * Per-frame metadata mirroring the kernel's struct page fields that the
 * paper's mechanisms read or write.
 */
struct PageFrame {
    /** Frame flag bits (subset of the kernel's page flags). */
    enum Flag : std::uint8_t {
        FlagFree = 1 << 0,        //!< on a node free list
        FlagReferenced = 1 << 1,  //!< PTE accessed bit seen since last scan
        FlagDirty = 1 << 2,       //!< must be written back / swapped out
        FlagDemoted = 1 << 3,     //!< PG_demoted: TPP ping-pong tracking
        FlagIsolated = 1 << 4,    //!< detached from LRU for migration
        FlagUnevictable = 1 << 5, //!< pinned (not modelled heavily)
        /** Transactional copy in flight (Nomad-style two-phase
         *  migration): an access while set aborts the migration. */
        FlagUnderMigration = 1 << 6,
    };

    Pfn pfn = kInvalidPfn;
    NodeId nid = kInvalidNode;
    PageType type = PageType::Anon;

    /**
     * Reverse map. The simulator models one mapping per frame (no shared
     * pages), which is all TPP's decision logic needs.
     */
    Asid ownerAsid = 0;
    Vpn ownerVpn = 0;

    std::uint8_t flags = FlagFree;
    LruListId lru = LruListId::None;
    Pfn lruPrev = kInvalidPfn;
    Pfn lruNext = kInvalidPfn;

    /** Tick of the NUMA hint fault that last examined this frame. */
    Tick lastHintFault = 0;
    /** Hint faults observed recently; policies use it for hysteresis. */
    std::uint8_t hintRefCount = 0;
    /** Allocation timestamp, for lifetime statistics. */
    Tick allocatedAt = 0;

    bool isFree() const { return flags & FlagFree; }
    bool referenced() const { return flags & FlagReferenced; }
    bool dirty() const { return flags & FlagDirty; }
    bool demoted() const { return flags & FlagDemoted; }
    bool isolated() const { return flags & FlagIsolated; }
    bool underMigration() const { return flags & FlagUnderMigration; }

    void setFlag(Flag f) { flags |= f; }
    void clearFlag(Flag f) { flags &= static_cast<std::uint8_t>(~f); }

    /** Reset all policy state when the frame returns to the free list. */
    void
    resetForFree()
    {
        flags = FlagFree;
        lru = LruListId::None;
        lruPrev = lruNext = kInvalidPfn;
        ownerAsid = 0;
        ownerVpn = 0;
        lastHintFault = 0;
        hintRefCount = 0;
        allocatedAt = 0;
    }
};

} // namespace tpp

#endif // TPP_MEM_PAGE_HH
