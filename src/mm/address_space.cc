#include "mm/address_space.hh"

#include "sim/logging.hh"

namespace tpp {

void
AddressSpace::ensureChunks(std::uint64_t limit)
{
    const std::uint64_t needed = (limit + kChunkPages - 1) >> kChunkBits;
    while (chunks_.size() < needed)
        chunks_.emplace_back(kChunkPages);
}

const Vma *
AddressSpace::vmaOf(Vpn vpn) const
{
    if (lastVma_ < vmas_.size() && vmas_[lastVma_].contains(vpn))
        return &vmas_[lastVma_];
    for (std::size_t i = 0; i < vmas_.size(); ++i) {
        if (vmas_[i].contains(vpn)) {
            lastVma_ = i;
            return &vmas_[i];
        }
    }
    return nullptr;
}

void
AddressSpace::stampFromVma(Vpn vpn, Pte &entry)
{
    const Vma *vma = vmaOf(vpn);
    if (!vma)
        tpp_panic("materialize of unmapped vpn %llu in asid %u",
                  static_cast<unsigned long long>(vpn), asid_);
    entry.type = vma->type;
    entry.set(Pte::BitMapped);
    if (vma->diskBacked)
        entry.set(Pte::BitDiskBacked);
}

Vpn
AddressSpace::mmap(std::uint64_t pages, PageType type, std::string label,
                   bool disk_backed)
{
    if (pages == 0)
        tpp_fatal("mmap of zero pages");
    if (disk_backed && type != PageType::File)
        tpp_fatal("only file regions can be disk backed");
    Vpn start;
    auto pool = freeRanges_.find(pages);
    if (pool != freeRanges_.end() && !pool->second.empty()) {
        start = pool->second.back();
        pool->second.pop_back();
    } else {
        start = tableSize_;
        tableSize_ += pages;
        ensureChunks(tableSize_);
    }
    // No per-PTE work: region attributes live on the VMA and are
    // stamped into each PTE lazily at first fault.
    vmas_.push_back(Vma{start, pages, type, disk_backed, std::move(label)});
    return start;
}

void
AddressSpace::munmap(Vpn start, std::uint64_t pages)
{
    if (start + pages > tableSize_)
        tpp_panic("munmap beyond table end");
    for (std::uint64_t i = 0; i < pages; ++i) {
        Pte &entry = pte(start + i);
        if (entry.present())
            tpp_panic("munmap of a still-present PTE (kernel must unmap "
                      "frames first)");
        if (entry.swapped())
            tpp_panic("munmap of a swapped PTE (kernel must release swap "
                      "first)");
        entry = Pte{};
    }
    for (auto it = vmas_.begin(); it != vmas_.end(); ++it) {
        if (it->start == start && it->pages == pages) {
            vmas_.erase(it);
            lastVma_ = 0;
            freeRanges_[pages].push_back(start);
            return;
        }
    }
    tpp_panic("munmap of an unknown VMA [%llu, +%llu)",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(pages));
}

} // namespace tpp
