file(REMOVE_RECURSE
  "CMakeFiles/tpp_sim.dir/distributions.cc.o"
  "CMakeFiles/tpp_sim.dir/distributions.cc.o.d"
  "CMakeFiles/tpp_sim.dir/event_queue.cc.o"
  "CMakeFiles/tpp_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/tpp_sim.dir/logging.cc.o"
  "CMakeFiles/tpp_sim.dir/logging.cc.o.d"
  "CMakeFiles/tpp_sim.dir/rng.cc.o"
  "CMakeFiles/tpp_sim.dir/rng.cc.o.d"
  "CMakeFiles/tpp_sim.dir/stats.cc.o"
  "CMakeFiles/tpp_sim.dir/stats.cc.o.d"
  "libtpp_sim.a"
  "libtpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
