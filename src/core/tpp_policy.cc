#include "core/tpp_policy.hh"

#include <memory>

#include "mm/kernel.hh"
#include "mm/policy_registry.hh"
#include "sim/logging.hh"

namespace tpp {

void
TppPolicy::applyWatermarks()
{
    // Derive the watermark set of every demoting node from the
    // configured demote_scale_factor (§5.2). With demotion chains this
    // covers the middle tiers too, so a cxl node holds headroom for the
    // demotions arriving from above just as local does for allocations.
    MemorySystem &mem = kernel_->mem();
    for (std::size_t i = 0; i < mem.numNodes(); ++i) {
        const NodeId nid = static_cast<NodeId>(i);
        if (!demotesFrom(nid))
            continue;
        MemoryNode &node = mem.node(nid);
        node.setWatermarks(Watermarks::forCapacity(node.capacity(),
                                                   cfg_.demoteScaleFactor));
    }
}

void
TppPolicy::attach(Kernel &kernel)
{
    PlacementPolicy::attach(kernel);
    kernel.setPromotionIgnoresWatermark(cfg_.promotionIgnoresWatermark);
    applyWatermarks();

    // Mode resolution (§5.3): Classic NUMA balancing on a machine with
    // a single toptier node is automatically downgraded to the tiered
    // mode; auto-detection picks Tiered whenever lower tiers exist.
    const TierHierarchy &tiers = kernel.mem().tiers();
    switch (cfg_.mode) {
      case NumaMode::Tiered:
        effectiveMode_ = NumaMode::Tiered;
        break;
      case NumaMode::Classic:
        effectiveMode_ = (tiers.toptierNodes().size() == 1 &&
                          !tiers.belowToptier().empty())
                             ? NumaMode::Tiered
                             : NumaMode::Classic;
        break;
      case NumaMode::AutoDetect:
        effectiveMode_ = tiers.belowToptier().empty() ? NumaMode::Classic
                                                      : NumaMode::Tiered;
        break;
    }

    // Administration surface: the sysctl knobs the paper describes.
    SysctlRegistry &sysctl = kernel.sysctl();
    // demote_scale_factor is tenths of a percent of node capacity in
    // the kernel patchset; beyond 100% the watermark maths degenerates.
    sysctl.registerDouble("vm.demote_scale_factor",
                          &cfg_.demoteScaleFactor,
                          [this] { applyWatermarks(); },
                          /*min_value=*/0.0, /*max_value=*/100.0);
    sysctl.registerBool("vm.tpp.type_aware_allocation",
                        &cfg_.typeAwareAllocation);
    sysctl.registerBool("vm.tpp.active_lru_filter",
                        &cfg_.activeLruFilter);
    sysctl.registerBool("vm.tpp.demote_chain", &cfg_.demoteChain,
                        [this] { applyWatermarks(); });
    sysctl.registerDouble("kernel.numa_balancing_promote_rate_limit_MBps",
                          &cfg_.promoteRateLimitMBps, nullptr,
                          /*min_value=*/0.0);
    sysctl.registerU64("kernel.numa_balancing_scan_size_pages",
                       &cfg_.scanBatch, nullptr, /*min_value=*/1);
    sysctl.registerReadOnly("kernel.numa_balancing", [this] {
        return std::string(effectiveMode_ == NumaMode::Tiered
                               ? "2 (NUMA_BALANCING_TIERED)"
                               : "1 (NUMA_BALANCING)");
    });
}

void
TppPolicy::start()
{
    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

NodeId
TppPolicy::allocPreferredNode(PageType type, NodeId task_nid)
{
    if (cfg_.typeAwareAllocation && type == PageType::File) {
        // Prefer caches on the CXL node (§5.4); hot ones will be
        // promoted by the regular mechanism later.
        const auto &targets = kernel_->mem().demotionOrder(task_nid);
        if (!targets.empty())
            return targets.front();
    }
    return task_nid;
}

bool
TppPolicy::demotesFrom(NodeId nid) const
{
    // The toptier always demotes (§5.1) — even on a DRAM-only machine,
    // where the empty demotion order makes the attempt fall through to
    // swap page by page, preserving the historical counters. Middle
    // tiers chain downward only when vm.tpp.demote_chain is on; the
    // bottom tier always reclaims by swapping.
    const TierHierarchy &tiers = kernel_->mem().tiers();
    if (tiers.isToptier(nid))
        return true;
    return cfg_.demoteChain && !tiers.isBottomTier(nid);
}

bool
TppPolicy::reclaimByDemotion(NodeId nid) const
{
    return demotesFrom(nid);
}

ReclaimMarks
TppPolicy::kswapdMarks(NodeId nid) const
{
    const Watermarks &wm = kernel_->mem().node(nid).watermarks();
    if (cfg_.decoupleWatermarks && demotesFrom(nid))
        return ReclaimMarks{wm.demoteTrigger, wm.demoteTarget};
    return ReclaimMarks{wm.low, wm.high};
}

bool
TppPolicy::scanNode(NodeId nid) const
{
    if (effectiveMode_ == NumaMode::Classic)
        return true; // classic AutoNUMA samples everything
    // NUMA_BALANCING_TIERED: sample only below-toptier nodes; poisoning
    // toptier pages would only generate useless hint-fault overhead
    // (§5.3).
    return !kernel_->mem().tiers().isToptier(nid);
}

void
TppPolicy::scanTick()
{
    if (effectiveMode_ == NumaMode::Classic) {
        for (std::size_t i = 0; i < kernel_->mem().numNodes(); ++i)
            kernel_->sampleNode(static_cast<NodeId>(i), cfg_.scanBatch);
    } else {
        for (NodeId nid : kernel_->mem().tiers().belowToptier())
            kernel_->sampleNode(nid, cfg_.scanBatch);
    }
    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

bool
TppPolicy::promotionWithinRateLimit()
{
    if (cfg_.promoteRateLimitMBps <= 0.0)
        return true;
    const Tick now = kernel_->eventQueue().now();
    const double bytes_per_ns = cfg_.promoteRateLimitMBps * 1e6 / 1e9;
    const double burst = cfg_.promoteRateLimitMBps * 1e6 * 0.1; // 100 ms
    promoteTokensBytes_ +=
        static_cast<double>(now - promoteTokensRefilledAt_) *
        bytes_per_ns;
    promoteTokensRefilledAt_ = now;
    if (promoteTokensBytes_ > burst)
        promoteTokensBytes_ = burst;
    if (promoteTokensBytes_ < static_cast<double>(kPageSize))
        return false;
    promoteTokensBytes_ -= static_cast<double>(kPageSize);
    return true;
}

NodeId
TppPolicy::promotionTarget(NodeId task_nid) const
{
    const MemorySystem &mem = kernel_->mem();
    const TierHierarchy &tiers = mem.tiers();
    if (tiers.isToptier(task_nid))
        return task_nid;
    // Task nominally on a lower-tier node (shared-memory case): pick
    // the toptier node with the lowest memory pressure (§5.3).
    NodeId best = tiers.toptierNodes().front();
    std::uint64_t best_free = mem.node(best).freePages();
    for (NodeId nid : tiers.toptierNodes()) {
        if (mem.node(nid).freePages() > best_free) {
            best = nid;
            best_free = mem.node(nid).freePages();
        }
    }
    return best;
}

double
TppPolicy::onHintFault(Pfn pfn, NodeId task_nid)
{
    Kernel &k = *kernel_;
    PageFrame &frame = k.mem().frame(pfn);
    k.mem().frameCold(pfn).lastHintFault = k.eventQueue().now();

    if (effectiveMode_ == NumaMode::Classic) {
        // Classic AutoNUMA: promote any remote page towards the
        // faulting CPU's node instantly, no tiered filtering.
        if (frame.nid == task_nid)
            return 0.0;
        auto [ok, cost] = k.promotePage(pfn, frame.nid, task_nid);
        (void)ok;
        return cost;
    }

    if (k.mem().tiers().isToptier(frame.nid)) {
        // Only lower-tier pages are sampled; a toptier hint fault would
        // mean the page migrated between sampling and faulting. Nothing
        // to do.
        return 0.0;
    }

    if (frame.lru == LruListId::None) {
        // Sampled before it was isolated for a queued migration (a
        // lower tier can sit in the demote queue now): it is off the
        // LRU, so neither the activate step nor promotion applies —
        // the pending move wins.
        return 0.0;
    }

    if (cfg_.activeLruFilter && !lruIsActive(frame.lru)) {
        // Fig 14 (2): faulted page found on the inactive LRU is not yet
        // a candidate — mark it accessed so it moves to the active list
        // immediately. If it is still hot at the next hint fault it will
        // be found active and promoted.
        frame.clearFlag(PageFrame::FlagReferenced);
        k.lru(frame.nid).activate(pfn);
        k.vmstat().inc(Vm::PgActivate);
        return 0.0;
    }

    // Candidate accepted (Fig 14 (1)/(3)).
    if (!promotionWithinRateLimit()) {
        k.vmstat().inc(Vm::PgPromoteFailRateLimit);
        k.trace().emitPage(TraceEvent::PromoteFailRateLimit,
                           k.eventQueue().now(), frame.nid, frame.type,
                           pfn, k.mem().frameCold(pfn).ownerAsid,
                           k.mem().frameCold(pfn).ownerVpn);
        return 0.0;
    }
    k.notePromoteCandidate(frame);

    auto [ok, cost] =
        k.promotePage(pfn, frame.nid, promotionTarget(task_nid));
    (void)ok;
    return cost;
}

TPP_REGISTER_POLICY(tpp, [](const PolicyParams &p) {
    return std::make_unique<TppPolicy>(p.tpp);
});

} // namespace tpp
