# Empty dependencies file for fig10_throughput_sensitivity.
# This may be replaced when dependencies are built.
