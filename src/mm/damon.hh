/**
 * @file
 * DAMON-lite: an in-kernel, region-based data-access monitor in the
 * style of Linux's DAMON (the paper's related-work alternative to
 * Chameleon for access characterisation [11], and the engine behind
 * proactive reclaim [28]).
 *
 * The core DAMON idea is reproduced: the monitored address spaces are
 * covered by a bounded number of regions; each sampling interval one
 * page per region is checked (and its accessed bit cleared), so
 * monitoring overhead is proportional to the region count, not the
 * memory size. Every aggregation interval the per-region access counts
 * are published, adjacent regions with similar activity are merged, and
 * large regions are split so the region set adapts to the workload's
 * access topology.
 */

#ifndef TPP_MM_DAMON_HH
#define TPP_MM_DAMON_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"

namespace tpp {

class Kernel;

/** DAMON tunables (names follow the kernel's damon sysfs). */
struct DamonConfig {
    Tick samplingInterval = 5 * kMillisecond;
    Tick aggregationInterval = 100 * kMillisecond;
    /** Re-derive regions from the current VMA set this often. */
    Tick regionsUpdateInterval = 1 * kSecond;
    std::uint32_t minRegions = 10;
    std::uint32_t maxRegions = 500;
    /** Merge adjacent regions whose access counts differ by <= this. */
    std::uint32_t mergeThreshold = 2;
    std::uint64_t seed = 99;
};

/** One monitored region with its last aggregated activity. */
struct DamonRegion {
    Asid asid = 0;
    Vpn start = 0;
    Vpn end = 0; //!< exclusive
    /** Samples that found the region accessed, last aggregation. */
    std::uint32_t nrAccesses = 0;
    /** Aggregations the activity level has persisted for. */
    std::uint32_t age = 0;
    /** Accumulator for the current aggregation window. */
    std::uint32_t sampled = 0;
    /**
     * The page prepared (accessed bit cleared) last sampling tick; the
     * next tick checks whether it was touched in between. DAMON's
     * prepare/check pairing measures activity per sampling window.
     */
    Vpn preparedVpn = ~0ULL;

    std::uint64_t pages() const { return end - start; }
};

/**
 * The monitor. start() schedules its daemons on the kernel's event
 * queue; regions() exposes the latest aggregated view.
 */
class DamonMonitor
{
  public:
    DamonMonitor(Kernel &kernel, DamonConfig cfg = {});

    /** Build initial regions and schedule the daemons. Call once. */
    void start();

    const std::vector<DamonRegion> &regions() const { return regions_; }

    std::uint64_t aggregationsDone() const { return aggregations_; }

    /** Force a region rebuild (tests; normally timer-driven). */
    void rebuildRegions();

    /** Force one aggregation boundary (tests). */
    void aggregateNow();

  private:
    void sampleTick();
    void splitRegions();
    void mergeRegions();

    Kernel &kernel_;
    DamonConfig cfg_;
    Rng rng_;
    std::vector<DamonRegion> regions_;
    std::uint64_t aggregations_ = 0;
    Tick lastAggregation_ = 0;
    Tick lastRegionsUpdate_ = 0;
    bool started_ = false;
};

} // namespace tpp

#endif // TPP_MM_DAMON_HH
