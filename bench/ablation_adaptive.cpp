/**
 * @file
 * Phase-adaptive placement ablation: what does profiling-then-retuning
 * the live TPP knobs (policy/adaptive) buy when the workload's phase
 * behaviour shifts under the policy's feet?
 *
 * One oversubscribed 1:4 tiered machine, open-loop traffic with a p99
 * SLO, two workloads:
 *
 *  - `phased`: a cache1-like lookup service and a churn-like scan stage
 *    in anti-phase (cache → churn → cache ...). Each flip re-heats a
 *    cold resident set; knobs that suit one phase mis-serve the other.
 *  - `cache1`: the phase-stable control — here the tuner must converge
 *    and stay out of the way, tying the static policy within noise.
 *
 * The static arm runs stock TPP; the adaptive arm is the same policy
 * with vm.adaptive.enable=1 on a fast window cadence. On `phased` the
 * adaptive arm must win hot-set recall *and* p99; on `cache1` it must
 * stay within noise. Both claims are checked loudly below.
 *
 * Extra flag beyond the shared bench options:
 *
 *   --preset smoke|full   smoke shortens the run for CI (default full).
 */

#include "bench_common.hh"

#include "trace/summary.hh"

namespace {

using namespace tpp;

/** Offered rate below the machine's loaded service rate at --wss 8192,
 *  with a p99 target above the stable tail but below queue collapse. */
constexpr double kDefaultQps = 4.0e5;
constexpr double kDefaultSloUs = 500.0;

/** One experiment arm. The adaptive arm always runs with the PPT
 *  history table on — the tuner profiles its flip counter and the
 *  admission filter reads its per-page history, so the table is part
 *  of the subsystem, not an independent variable. The full preset adds
 *  a tpp+ppt arm so the table's own contribution is visible. */
struct Arm {
    const char *workload;
    const char *label;
    bool adaptive;
    bool ppt;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;

    // Peel off --preset before the shared parser sees the argv.
    std::string preset = "full";
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--preset") {
            if (i + 1 >= argc)
                tpp_fatal("missing value after --preset");
            preset = argv[++i];
            if (preset != "smoke" && preset != "full")
                tpp_fatal("--preset expects smoke|full, got '%s'",
                          preset.c_str());
        } else {
            rest.push_back(argv[i]);
        }
    }
    const bench::BenchOptions opt = bench::parseBenchArgs(
        static_cast<int>(rest.size()), rest.data());

    bench::banner("Ablation: phase-adaptive placement",
                  "static TPP knobs vs the profile-and-retune tuner on "
                  "a phase-shifting workload (1:4 machine, open loop)");

    // Groups read static-first per workload; the claims below compare
    // each group's stock-tpp arm against its adaptive arm. The smoke
    // preset keeps only the headline phased pair.
    std::vector<Arm> arms;
    arms.push_back({"phased", "tpp", false, false});
    if (preset == "full")
        arms.push_back({"phased", "tpp+ppt", false, true});
    arms.push_back({"phased", "adaptive", true, true});
    if (preset == "full") {
        arms.push_back({"cache1", "tpp", false, false});
        arms.push_back({"cache1", "tpp+ppt", false, true});
        arms.push_back({"cache1", "adaptive", true, true});
    }

    std::vector<ExperimentConfig> cfgs;
    for (const Arm &arm : arms) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = arm.workload;
        cfg.policy = arm.adaptive ? "adaptive" : "tpp";
        cfg.localFraction = 0.2; // 1:4 expansion: promotion-hungry
        cfg.measureHotness = true;
        cfg.traceEnabled = true;
        cfg.migration = MigrationConfig::asyncEngine();
        if (!opt.openLoop.enabled()) {
            cfg.openLoop.qps = kDefaultQps;
            cfg.openLoop.arrival = "poisson";
            cfg.openLoop.sloP99Us = kDefaultSloUs;
        }
        if (arm.ppt)
            cfg.sysctls.emplace_back("vm.ppt.enable", "1");
        if (arm.adaptive) {
            cfg.sysctls.emplace_back("vm.adaptive.enable", "1");
            // Fast cadence relative to the 3 s phases: 100 ms windows,
            // three per measurement round, and a hysteresis band wide
            // enough that window noise does not masquerade as progress.
            cfg.sysctls.emplace_back("vm.adaptive.window_ns",
                                     "100000000");
            cfg.sysctls.emplace_back("vm.adaptive.profile_windows", "3");
            cfg.sysctls.emplace_back("vm.adaptive.hysteresis_pct", "5");
            // Open-loop run: the SLO is the business objective — let
            // its attainment dominate the bandwidth terms instead of
            // merely tie-breaking them.
            cfg.sysctls.emplace_back("vm.adaptive.w_slo", "4");
        }
        if (preset == "smoke") {
            // Two phase flips inside the window — the first one is the
            // tuner's warm-up; scoring from 2 s skips it.
            cfg.runUntil = 7 * kSecond;
            cfg.measureFrom = 2 * kSecond;
        } else {
            // Four flips inside the window: the win must repeat.
            cfg.runUntil = 14 * kSecond;
            cfg.measureFrom = 2 * kSecond;
        }
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    TextTable table({"workload", "policy", "tput (ops/s)",
                     "hot-set recall", "p99 (us)", "SLO attainment",
                     "migrated pages", "tunes", "reverts", "settles"});
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const ExperimentResult &res = results[i];
        const TraceSummary ts =
            summarizeTrace(res.trace, kSecond, /*top_n=*/1);
        table.addRow(
            {arms[i].workload, arms[i].label,
             TextTable::num(res.throughput, 0),
             TextTable::pct(res.hotSetRecall),
             TextTable::num(res.openLoop.p99Ns / 1000.0, 1),
             TextTable::pct(res.openLoop.sloAttainment),
             TextTable::count(res.vmstat.get(Vm::PgMigrateSuccess)),
             TextTable::count(res.vmstat.get(Vm::AdaptiveTune)),
             TextTable::count(res.vmstat.get(Vm::AdaptiveRevert)),
             TextTable::count(ts.adaptiveSettles)});
    }
    table.print();

    // The headline claims, checked loudly: adaptive must beat stock
    // static tpp on the phase-shifting workload on BOTH axes, and must
    // tie it within noise when the workload never changes phase.
    const std::size_t stride = preset == "full" ? 3 : 2;
    for (std::size_t i = 0; i + stride - 1 < results.size();
         i += stride) {
        const ExperimentResult &st = results[i];
        const ExperimentResult &ad = results[i + stride - 1];
        const bool phased = std::string(arms[i].workload) == "phased";
        if (phased) {
            // The strict both-axes win needs several phase flips in the
            // measured window; the short smoke run only demands the p99
            // win plus recall within noise.
            const double recallBar = preset == "full"
                ? st.hotSetRecall
                : st.hotSetRecall * 0.9;
            if (ad.hotSetRecall <= recallBar) {
                std::printf("WARNING: adaptive did not improve hot-set "
                            "recall on phased (%.3f vs %.3f)\n",
                            ad.hotSetRecall, st.hotSetRecall);
            }
            if (ad.openLoop.p99Ns >= st.openLoop.p99Ns) {
                std::printf("WARNING: adaptive did not improve p99 on "
                            "phased (%.1f us vs %.1f us)\n",
                            ad.openLoop.p99Ns / 1000.0,
                            st.openLoop.p99Ns / 1000.0);
            }
        } else {
            // Phase-stable control: within 10 % on both axes.
            if (ad.hotSetRecall < st.hotSetRecall * 0.9) {
                std::printf("WARNING: adaptive lost recall on the "
                            "stable control (%.3f vs %.3f)\n",
                            ad.hotSetRecall, st.hotSetRecall);
            }
            if (ad.openLoop.p99Ns > st.openLoop.p99Ns * 1.1) {
                std::printf("WARNING: adaptive regressed p99 on the "
                            "stable control (%.1f us vs %.1f us)\n",
                            ad.openLoop.p99Ns / 1000.0,
                            st.openLoop.p99Ns / 1000.0);
            }
        }
    }
    std::printf("\nstatic knobs are tuned for one operating point; a "
                "phase flip re-heats a cold resident set and the same "
                "knobs now either promote the scan's transients or "
                "starve the returning cache. Profiling windows + "
                "hysteretic hill-climbing retune the threshold, scan "
                "batch and watermark gap to the phase that is actually "
                "running (PAPERS.md: Pond/Johnny-Cache-style feedback "
                "control)\n");

    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
