/**
 * @file
 * Unit tests for the workload driver and the experiment harness.
 */

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "test_common.hh"
#include "workloads/synthetic.hh"

namespace tpp {
namespace {

using test::TestMachine;

WorkloadProfile
smallProfile()
{
    WorkloadProfile p;
    p.name = "small";
    p.opsPerBatch = 100;
    p.accessesPerOp = 2;
    p.thinkTimePerOpNs = 500.0;
    RegionSpec r;
    r.label = "heap";
    r.type = PageType::Anon;
    r.pages = 512;
    r.hotFraction = 0.3;
    r.hotAccessShare = 0.9;
    p.regions.push_back(r);
    return p;
}

TEST(Driver, RunsToHorizonAndMeasures)
{
    TestMachine m(2048, 2048);
    SyntheticWorkload wl(smallProfile());
    DriverConfig cfg;
    cfg.runUntil = 500 * kMillisecond;
    cfg.measureFrom = 100 * kMillisecond;
    cfg.sampleEvery = 50 * kMillisecond;
    WorkloadDriver driver(m.kernel, wl, cfg);
    driver.runToCompletion();

    EXPECT_GT(driver.measuredOps(), 0u);
    EXPECT_GT(driver.throughput(), 0.0);
    EXPECT_GT(driver.meanAccessLatencyNs(), 0.0);
    EXPECT_GE(driver.samples().size(), 8u);
    EXPECT_NEAR(driver.trafficShare(0) + driver.trafficShare(1), 1.0,
                1e-9);
}

TEST(Driver, ThroughputMatchesOpsOverWindow)
{
    TestMachine m(2048, 2048);
    SyntheticWorkload wl(smallProfile());
    DriverConfig cfg;
    cfg.runUntil = 400 * kMillisecond;
    cfg.measureFrom = 200 * kMillisecond;
    WorkloadDriver driver(m.kernel, wl, cfg);
    driver.runToCompletion();
    // Window is ~0.2 s; throughput * window ~= measured ops.
    const double window_sec = 0.2;
    EXPECT_NEAR(driver.throughput() * window_sec,
                static_cast<double>(driver.measuredOps()),
                static_cast<double>(driver.measuredOps()) * 0.1);
}

TEST(Driver, SamplesCarryResidency)
{
    TestMachine m(2048, 2048);
    SyntheticWorkload wl(smallProfile());
    DriverConfig cfg;
    cfg.runUntil = 300 * kMillisecond;
    cfg.measureFrom = 50 * kMillisecond;
    WorkloadDriver driver(m.kernel, wl, cfg);
    driver.runToCompletion();
    const IntervalSample &last = driver.samples().back();
    EXPECT_GT(last.anonResident, 0u);
    EXPECT_EQ(last.fileResident, 0u);
    EXPECT_EQ(last.anonResident, last.anonOnLocal + 0u);
}

TEST(DriverDeathTest, BadWindowIsFatal)
{
    TestMachine m(2048, 2048);
    SyntheticWorkload wl(smallProfile());
    DriverConfig cfg;
    cfg.runUntil = 100;
    cfg.measureFrom = 200;
    EXPECT_DEATH({ WorkloadDriver driver(m.kernel, wl, cfg); },
                 "measurement window");
}

TEST(Harness, ParseRatio)
{
    EXPECT_NEAR(parseRatio("2:1"), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(parseRatio("1:4"), 0.2, 1e-9);
    EXPECT_NEAR(parseRatio("1:1"), 0.5, 1e-9);
}

TEST(HarnessDeathTest, BadRatioIsFatal)
{
    setLogVerbose(false);
    EXPECT_DEATH(parseRatio("21"), "capacity ratio");
}

TEST(Harness, MakePolicyByName)
{
    ExperimentConfig cfg;
    for (const char *name :
         {"linux", "numa-balancing", "autotiering", "tpp"}) {
        cfg.policy = name;
        auto policy = makePolicy(cfg);
        ASSERT_NE(policy, nullptr);
        EXPECT_EQ(policy->name(), name);
    }
}

TEST(HarnessDeathTest, UnknownPolicyIsFatal)
{
    setLogVerbose(false);
    ExperimentConfig cfg;
    cfg.policy = "nope";
    EXPECT_DEATH(makePolicy(cfg), "unknown policy");
}

TEST(Harness, SmokeExperimentRuns)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.wssPages = 4096;
    cfg.policy = "tpp";
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    const ExperimentResult res = runExperiment(cfg);
    EXPECT_GT(res.throughput, 0.0);
    EXPECT_GE(res.localTrafficShare, 0.0);
    EXPECT_LE(res.localTrafficShare, 1.0);
    EXPECT_NEAR(res.localTrafficShare + res.cxlTrafficShare, 1.0, 1e-9);
    EXPECT_GT(res.vmstat.get(Vm::PgFault), 0u);
    EXPECT_FALSE(res.samples.empty());
}

TEST(Harness, ChameleonAttachment)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.wssPages = 4096;
    cfg.allLocal = true;
    cfg.policy = "linux";
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.withChameleon = true;
    cfg.chameleon.interval = 500 * kMillisecond;
    const ExperimentResult res = runExperiment(cfg);
    EXPECT_FALSE(res.chameleonIntervals.empty());
    EXPECT_GT(res.chameleonHotFraction, 0.0);
    EXPECT_LE(res.chameleonHotFraction, 1.0);
}

TEST(TextTable, FormatsAndHelpers)
{
    EXPECT_EQ(TextTable::pct(0.5), "50.0%");
    EXPECT_EQ(TextTable::pct(0.123, 2), "12.30%");
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::count(42), "42");
}

TEST(TextTableDeathTest, RowWidthMismatchPanics)
{
    setLogVerbose(false);
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "width");
}

} // namespace
} // namespace tpp
