
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/latency.cc" "src/mem/CMakeFiles/tpp_mem.dir/latency.cc.o" "gcc" "src/mem/CMakeFiles/tpp_mem.dir/latency.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/tpp_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/tpp_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/node.cc" "src/mem/CMakeFiles/tpp_mem.dir/node.cc.o" "gcc" "src/mem/CMakeFiles/tpp_mem.dir/node.cc.o.d"
  "/root/repo/src/mem/swap_device.cc" "src/mem/CMakeFiles/tpp_mem.dir/swap_device.cc.o" "gcc" "src/mem/CMakeFiles/tpp_mem.dir/swap_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
