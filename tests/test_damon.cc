/**
 * @file
 * Tests for the DAMON-lite monitor and the damon-reclaim policy.
 */

#include "policy/damon_reclaim.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

DamonConfig
fastConfig()
{
    DamonConfig cfg;
    cfg.samplingInterval = 1 * kMillisecond;
    cfg.aggregationInterval = 20 * kMillisecond;
    cfg.regionsUpdateInterval = 200 * kMillisecond;
    cfg.minRegions = 4;
    cfg.maxRegions = 64;
    return cfg;
}

TEST(Damon, InitialRegionsCoverVmas)
{
    TestMachine m(2048, 2048);
    m.kernel.mmap(m.asid, 256, PageType::Anon, "a");
    m.kernel.mmap(m.asid, 128, PageType::File, "b");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    std::uint64_t covered = 0;
    for (const DamonRegion &region : monitor.regions())
        covered += region.pages();
    EXPECT_EQ(covered, 384u);
    // Split towards the midpoint region target.
    EXPECT_GE(monitor.regions().size(), 4u);
    EXPECT_LE(monitor.regions().size(), 64u);
}

TEST(Damon, RegionsStaySortedAndDisjoint)
{
    TestMachine m(2048, 2048);
    m.kernel.mmap(m.asid, 512, PageType::Anon, "a");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    const auto &regions = monitor.regions();
    for (std::size_t i = 1; i < regions.size(); ++i) {
        if (regions[i].asid == regions[i - 1].asid) {
            EXPECT_GE(regions[i].start, regions[i - 1].end);
        }
    }
}

TEST(Damon, HotRegionsAccumulateAccesses)
{
    TestMachine m(4096, 4096);
    const Vpn hot = m.populate(128, PageType::Anon);
    const Vpn cold_base = m.kernel.mmap(m.asid, 128, PageType::Anon, "c");
    for (int i = 0; i < 128; ++i)
        m.kernel.access(m.asid, cold_base + i, AccessKind::Store, 0);

    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.start();

    // Keep the hot region hot while the monitor samples.
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 128; ++i)
            m.kernel.access(m.asid, hot + i, AccessKind::Load, 0);
        m.eq.run(m.eq.now() + 2 * kMillisecond);
    }
    ASSERT_GT(monitor.aggregationsDone(), 2u);

    std::uint32_t hot_hits = 0, cold_hits = 0;
    for (const DamonRegion &region : monitor.regions()) {
        if (region.start >= hot && region.end <= hot + 128)
            hot_hits += region.nrAccesses;
        if (region.start >= cold_base &&
            region.end <= cold_base + 128)
            cold_hits += region.nrAccesses;
    }
    EXPECT_GT(hot_hits, cold_hits);
}

TEST(Damon, ColdRegionsAgeUp)
{
    TestMachine m(2048, 2048);
    m.populate(256, PageType::Anon);
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.start();
    m.eq.run(m.eq.now() + 200 * kMillisecond);
    // Nothing touched since population: regions go cold and age.
    bool saw_aged_cold = false;
    for (const DamonRegion &region : monitor.regions()) {
        if (region.nrAccesses == 0 && region.age >= 2)
            saw_aged_cold = true;
    }
    EXPECT_TRUE(saw_aged_cold);
}

TEST(Damon, RebuildAfterMunmapDropsRegions)
{
    TestMachine m(2048, 2048);
    const Vpn a = m.kernel.mmap(m.asid, 256, PageType::Anon, "a");
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    ASSERT_FALSE(monitor.regions().empty());
    m.kernel.munmap(m.asid, a, 256);
    monitor.rebuildRegions();
    EXPECT_TRUE(monitor.regions().empty());
}

TEST(Damon, EmptyVmaSetYieldsNoRegions)
{
    // A process with no mappings must not break the monitor: no
    // regions, and the daemons idle harmlessly.
    TestMachine m(256, 256);
    DamonMonitor monitor(m.kernel, fastConfig());
    monitor.rebuildRegions();
    EXPECT_TRUE(monitor.regions().empty());
    monitor.aggregateNow();
    EXPECT_EQ(monitor.aggregationsDone(), 1u);
    monitor.start();
    m.eq.run(m.eq.now() + 100 * kMillisecond);
    EXPECT_TRUE(monitor.regions().empty());
    EXPECT_GT(monitor.aggregationsDone(), 1u);
}

TEST(Damon, SingleRegionAddressSpace)
{
    // minRegions == maxRegions == 1: the whole VMA is one region, no
    // split is possible, and merging must leave the singleton alone.
    TestMachine m(512, 512);
    const Vpn base = m.kernel.mmap(m.asid, 128, PageType::Anon, "a");
    DamonConfig cfg = fastConfig();
    cfg.minRegions = 1;
    cfg.maxRegions = 1;
    DamonMonitor monitor(m.kernel, cfg);
    monitor.rebuildRegions();
    ASSERT_EQ(monitor.regions().size(), 1u);
    EXPECT_EQ(monitor.regions().front().start, base);
    EXPECT_EQ(monitor.regions().front().end, base + 128);
    monitor.aggregateNow();
    ASSERT_EQ(monitor.regions().size(), 1u);
    EXPECT_EQ(monitor.regions().front().pages(), 128u);
}

TEST(Damon, ActivityChangeResetsRegionAge)
{
    // Age tracks how long the activity level persisted; it must reset
    // to zero when the level changes — and a merge keeps the youngest
    // constituent's age, never inventing persistence.
    TestMachine m(4096, 4096);
    const Vpn base = m.populate(256, PageType::Anon);
    DamonConfig cfg = fastConfig();
    cfg.regionsUpdateInterval = 10 * kSecond; // keep regions stable
    DamonMonitor monitor(m.kernel, cfg);
    monitor.start();

    // Phase 1: nothing accessed — every region is stably cold, ages up.
    m.eq.run(m.eq.now() + 200 * kMillisecond);
    std::uint32_t idle_min_age = ~0u;
    for (const DamonRegion &region : monitor.regions())
        idle_min_age = std::min(idle_min_age, region.age);
    ASSERT_GT(idle_min_age, 1u);

    // Phase 2: hammer the lower half so its activity level jumps.
    for (int round = 0; round < 60; ++round) {
        for (int i = 0; i < 128; ++i) {
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
            m.kernel.access(m.asid, base + i, AccessKind::Load, 0);
        }
        m.eq.run(m.eq.now() + 5 * kMillisecond);
    }

    std::uint32_t hot_min_age = ~0u;
    std::uint32_t cold_max_age = 0;
    for (const DamonRegion &region : monitor.regions()) {
        if (region.start < base + 128 && region.nrAccesses > 0)
            hot_min_age = std::min(hot_min_age, region.age);
        if (region.start >= base + 128 && region.nrAccesses == 0)
            cold_max_age = std::max(cold_max_age, region.age);
    }
    // At least one region went hot and had its age reset below the
    // still-idle regions' accumulated age.
    ASSERT_NE(hot_min_age, ~0u);
    EXPECT_LT(hot_min_age, cold_max_age);
}

TEST(DamonDeathTest, BadRegionBoundsAreFatal)
{
    TestMachine m(256, 256);
    DamonConfig cfg;
    cfg.minRegions = 10;
    cfg.maxRegions = 5;
    EXPECT_DEATH({ DamonMonitor monitor(m.kernel, cfg); },
                 "minRegions");
}

TEST(DamonReclaim, DemotesColdPagesProactively)
{
    DamonReclaimConfig cfg;
    cfg.monitor = fastConfig();
    cfg.opInterval = 50 * kMillisecond;
    cfg.coldMinAgeAggregations = 1;
    TestMachine m(2048, 2048,
                  std::make_unique<DamonReclaimPolicy>(cfg));
    const Vpn base = m.populate(512, PageType::Anon);
    for (int i = 0; i < 512; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);

    m.eq.run(m.eq.now() + kSecond);
    auto &policy =
        static_cast<DamonReclaimPolicy &>(m.kernel.policy());
    EXPECT_GT(policy.pagesDemotedProactively(), 0u);
    EXPECT_GT(m.kernel.residentPages(m.cxl(), PageType::Anon), 0u);
    // Demotion, not paging.
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PswpOut), 0u);
}

TEST(DamonReclaim, SparesHotRegions)
{
    DamonReclaimConfig cfg;
    cfg.monitor = fastConfig();
    cfg.opInterval = 50 * kMillisecond;
    cfg.coldMinAgeAggregations = 1;
    TestMachine m(2048, 2048,
                  std::make_unique<DamonReclaimPolicy>(cfg));
    const Vpn hot = m.populate(64, PageType::Anon);

    // Keep touching the hot set while the policy runs.
    for (int round = 0; round < 40; ++round) {
        for (int i = 0; i < 64; ++i)
            m.kernel.access(m.asid, hot + i, AccessKind::Load, 0);
        m.eq.run(m.eq.now() + 25 * kMillisecond);
    }
    // The hot pages stayed local.
    std::uint64_t still_local = 0;
    for (int i = 0; i < 64; ++i)
        still_local += (m.frameOf(hot + i).nid == m.local());
    EXPECT_GE(still_local, 60u);
}

} // namespace
} // namespace tpp
