/**
 * @file
 * The simulated OS memory manager.
 *
 * Kernel owns every mm mechanism — page allocation with zone fallback
 * and watermark gates, per-node LRU lists, background (kswapd) and
 * direct reclaim, swap-out/in, page migration, NUMA-hint sampling and
 * the fault path — and delegates placement decisions to an attached
 * PlacementPolicy. TPP and the baselines are all policies over this one
 * mechanism layer, mirroring how the real patch set modifies Linux.
 *
 * The implementation is split across kernel.cc (core / fault path),
 * kernel_alloc.cc, kernel_reclaim.cc and kernel_migrate.cc.
 */

#ifndef TPP_MM_KERNEL_HH
#define TPP_MM_KERNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/memory_system.hh"
#include "mm/access_tap.hh"
#include "mm/address_space.hh"
#include "mm/lru.hh"
#include "mm/memcg/memcg.hh"
#include "mm/migration/migration_config.hh"
#include "mm/placement_policy.hh"
#include "mm/sysctl.hh"
#include "mm/vmstat.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace tpp {

class MigrationEngine;
class PingPongThrottle;

/** Latency constants of the mm code paths, in nanoseconds. */
struct MmCosts {
    double minorFault = 900.0;      //!< alloc + map + zeroing
    double majorFaultFixed = 2000.0;//!< fault path before device wait
    double diskReadNs = 80000.0;    //!< refault of a dropped file page
    double hintFaultFixed = 800.0;  //!< NUMA hint fault handling
    double scanPage = 150.0;        //!< reclaim scan per page
    double unmapCleanFile = 2000.0; //!< drop clean file page (TLB flush)
    double swapOutPage = 30000.0;   //!< write one page to swap
    double migratePage = 700.0;     //!< move one page to another node
    double kswapdWakeup = 10000.0;  //!< wake-to-run latency
    /**
     * Workingset-refault window: a page evicted and refaulted within
     * this interval was part of the working set, so it re-enters on the
     * active list (Linux's workingset.c shadow-entry logic, with the
     * refault-distance test simplified to a time window).
     */
    Tick workingsetWindow = 2 * kSecond;
};

/** Why a page is being allocated; selects the watermark gate. */
enum class AllocReason : std::uint8_t {
    App,       //!< process fault
    Promotion, //!< migration target for a promoted page
    Demotion,  //!< migration target for a demoted page
    SwapIn,    //!< major-fault refill
};

/** Result of one memory access through Kernel::access(). */
struct AccessResult {
    double latencyNs = 0.0;     //!< total latency charged to the access
    NodeId servedBy = kInvalidNode; //!< node that held the page
    bool minorFault = false;
    bool majorFault = false;
    bool hintFault = false;
    bool oom = false;           //!< allocation failed outright
};

/** Per-node access traffic accounting (drives Fig 15/16/19 rows). */
struct NodeTraffic {
    std::uint64_t accesses = 0;
    std::uint64_t accessesByType[kNumPageTypes] = {0, 0};
    /** Application (fault-path) page allocations served by this node. */
    std::uint64_t appAllocs = 0;
};

/**
 * The OS memory-management simulator.
 */
class Kernel
{
  public:
    /**
     * @param mem        physical memory (nodes, frames, swap)
     * @param eq         simulation event queue for daemons
     * @param policy     placement policy; Kernel takes ownership
     * @param costs      mm code-path latency constants
     * @param migration  MigrationEngine mode; the default is the
     *                   synchronous compat mode (bit-identical to the
     *                   pre-engine kernel)
     */
    Kernel(MemorySystem &mem, EventQueue &eq,
           std::unique_ptr<PlacementPolicy> policy, MmCosts costs = {},
           MigrationConfig migration = {});
    ~Kernel();

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    // ---- component access -------------------------------------------

    MemorySystem &mem() { return mem_; }
    const MemorySystem &mem() const { return mem_; }
    EventQueue &eventQueue() { return eq_; }
    VmStat &vmstat() { return vmstat_; }
    const VmStat &vmstat() const { return vmstat_; }

    /** Tracepoint ring; disabled (and free) unless a client enables it. */
    TraceBuffer &trace() { return trace_; }
    const TraceBuffer &trace() const { return trace_; }
    PlacementPolicy &policy() { return *policy_; }
    const MmCosts &costs() const { return costs_; }

    /** /proc/sys-style knob registry (policies add theirs at attach). */
    SysctlRegistry &sysctl() { return sysctl_; }
    const SysctlRegistry &sysctl() const { return sysctl_; }

    /** Memory cgroups: per-tenant accounting, protection, budgets. */
    MemcgController &memcg() { return memcg_; }
    const MemcgController &memcg() const { return memcg_; }

    /**
     * Attach a device-side access tap (mm/access_tap.hh); nullptr
     * detaches. The tap observes every resolved access; with no tap the
     * access path is unchanged.
     */
    void setAccessTap(KernelAccessTap *tap) { accessTap_ = tap; }
    KernelAccessTap *accessTap() const { return accessTap_; }

    LruSet &lru(NodeId nid) { return lrus_[nid]; }
    const LruSet &lru(NodeId nid) const { return lrus_[nid]; }

    /** Start policy daemons; call once before the first access. */
    void start();

    // ---- processes ---------------------------------------------------

    /** Create a process. @return its asid. */
    Asid createProcess();

    AddressSpace &addressSpace(Asid asid);
    const AddressSpace &addressSpace(Asid asid) const;
    std::size_t numProcesses() const { return spaces_.size(); }

    /** Reserve a virtual region (see AddressSpace::mmap). */
    Vpn mmap(Asid asid, std::uint64_t pages, PageType type,
             std::string label = "", bool disk_backed = false);

    /**
     * Release a virtual region: frees resident frames, releases swap
     * slots, then drops the VMA.
     */
    void munmap(Asid asid, Vpn start, std::uint64_t pages);

    // ---- the access path ---------------------------------------------

    /**
     * One memory access by a task running on `task_nid`. Handles minor
     * faults (allocation), major faults (swap-in / disk refault) and
     * NUMA hint faults, updates LRU/referenced state and traffic
     * accounting, and returns the modelled latency.
     */
    AccessResult access(Asid asid, Vpn vpn, AccessKind kind,
                        NodeId task_nid);

    // ---- allocation (kernel_alloc.cc) ---------------------------------

    /**
     * Allocate one frame. Applies the gate on the preferred node, falls
     * back across the zonelist, wakes kswapd, and for App allocations
     * enters direct reclaim rather than failing.
     *
     * @return frame number, or kInvalidPfn on OOM. `stall_ns` is
     *         incremented by any direct-reclaim latency incurred.
     */
    Pfn allocPage(NodeId preferred, PageType type, AllocReason reason,
                  double *stall_ns = nullptr);

    /** Watermark gate applied to `reason` allocations. */
    WatermarkGate gateFor(AllocReason reason) const;

    /** Promotion allocations bypass allocation watermarks when true. */
    void setPromotionIgnoresWatermark(bool v)
    {
        promotionIgnoresWatermark_ = v;
    }

    /** Free one mapped frame: unlink LRU, clear PTE, return to node. */
    void freeFrame(Pfn pfn);

    // ---- reclaim (kernel_reclaim.cc) -----------------------------------

    /** Wake the background reclaimer of `nid` if it is sleeping. */
    void wakeKswapd(NodeId nid);

    /** @return true when `nid`'s kswapd is actively reclaiming. */
    bool kswapdActive(NodeId nid) const;

    /**
     * Synchronous direct reclaim of up to `nr_pages` on `nid`.
     * @return {pages reclaimed, latency ns}.
     */
    std::pair<std::uint64_t, double> directReclaim(NodeId nid,
                                                   std::uint64_t nr_pages);

    // ---- migration (mm/migration/, kernel_migrate.cc) ------------------

    /** The migration subsystem (queues, admission, transactions). */
    MigrationEngine &migration() { return *migration_; }
    const MigrationEngine &migration() const { return *migration_; }

    /** Ping-pong throttling: per-page migration-history admission. */
    PingPongThrottle &ppt() { return *ppt_; }
    const PingPongThrottle &ppt() const { return *ppt_; }

    /**
     * Demote one page to the first CXL node (by distance) with room.
     * Routed through the MigrationEngine: may queue in async mode; on
     * sync failure falls back to classic reclaim of that page.
     * @return {freed-on-src, latency ns}.
     */
    std::pair<bool, double> demotePage(Pfn pfn);

    /**
     * Promote one page to `dst`. Applies the promotion gate.
     * @return {promoted, latency ns}. Updates promotion counters.
     */
    std::pair<bool, double> promotePage(Pfn pfn, NodeId dst);

    /**
     * Promote with the source node the caller examined: failure
     * accounting stays correctly node-scoped even when the frame is
     * freed or isolated between the caller's check and the attempt.
     */
    std::pair<bool, double> promotePage(Pfn pfn, NodeId src, NodeId dst);

    /**
     * Raw migration mechanism used by the engine's synchronous paths
     * and by policies that move pages directly (AutoTiering).
     * `stall_ns` accumulates any direct-reclaim latency paid while
     * allocating the migration target.
     * @return destination pfn or kInvalidPfn.
     */
    Pfn migratePage(Pfn pfn, NodeId dst, AllocReason reason,
                    double *stall_ns = nullptr);

    /**
     * Account a hint-faulted page accepted as a promotion candidate:
     * bumps the pgpromote_candidate counter family (split by type and
     * PG_demoted) and fires the PromoteCandidate tracepoint. Policies
     * call this instead of duplicating the counter choreography.
     */
    void notePromoteCandidate(const PageFrame &frame);

    // ---- NUMA-hint sampling --------------------------------------------

    /**
     * Sample up to `batch` mapped pages on `nid`: set prot_none so their
     * next access takes a hint fault. Uses a per-node circular cursor.
     * @return pages actually sampled.
     */
    std::uint64_t sampleNode(NodeId nid, std::uint64_t batch);

    // ---- statistics -----------------------------------------------------

    const NodeTraffic &traffic(NodeId nid) const { return traffic_[nid]; }
    void resetTraffic();

    /** Resident pages of `type` on node `nid` (via LRU counts). */
    std::uint64_t residentPages(NodeId nid, PageType type) const;

    /** Fraction of all recorded accesses served by `nid` (0 when none). */
    double trafficShare(NodeId nid) const;

  private:
    friend class KernelTestPeer;
    /** The engine is the extracted half of this class: it drives the
     *  same LRU / allocator / counter internals kernel_migrate.cc did. */
    friend class MigrationEngine;

    // kernel.cc
    double faultIn(AddressSpace &as, Vpn vpn, Pte &pte, NodeId task_nid,
                   AccessResult &res);
    void touchFrame(PageFrame &frame);

    // kernel_alloc.cc
    bool nodePassesGate(NodeId nid, WatermarkGate gate) const;
    Pfn takeFrameFrom(NodeId nid, AllocReason reason);
    void maybeWakeKswapd(NodeId nid);

    // kernel_reclaim.cc
    struct KswapdState {
        bool running = false;
        EventId event = 0;
    };
    void kswapdChunk(NodeId nid);
    /**
     * Core of shrink_node: scan inactive tails (file/anon proportional),
     * age active lists, and reclaim (demote / drop / swap) up to
     * `nr_to_reclaim` pages.
     * @return {reclaimed, cost ns}
     */
    std::pair<std::uint64_t, double> shrinkNode(NodeId nid,
                                                std::uint64_t nr_to_reclaim,
                                                bool background);
    /**
     * One scan pass of shrinkNode. When `honor_protection` is set,
     * pages of cgroups under their memory.low floor on this node are
     * rotated past (counted into `*protected_skips`); when
     * `count_breach` is set, reclaimed under-floor pages are accounted
     * as floor breaches (the second, floor-breaking pass).
     */
    std::pair<std::uint64_t, double>
    shrinkNodePass(NodeId nid, std::uint64_t nr_to_reclaim,
                   bool background, bool honor_protection,
                   bool count_breach, std::uint64_t *protected_skips);
    std::pair<bool, double> reclaimOnePage(Pfn pfn, bool demote_mode);
    /** Account one pass-2 reclaim of a page under its cgroup's floor. */
    void noteReclaimBreach(Asid asid, NodeId nid);
    bool inactiveIsLow(NodeId nid, PageType type) const;
    void shrinkActiveList(NodeId nid, PageType type, std::uint64_t batch,
                          double *cost_ns);

    // shared helpers
    Pte &pteOf(const PageFrame &frame);
    void unmapFrame(PageFrame &frame);

    MemorySystem &mem_;
    EventQueue &eq_;
    std::unique_ptr<PlacementPolicy> policy_;
    std::unique_ptr<PingPongThrottle> ppt_;
    std::unique_ptr<MigrationEngine> migration_;
    MmCosts costs_;
    VmStat vmstat_;
    SysctlRegistry sysctl_;
    MemcgController memcg_;
    TraceBuffer trace_;

    std::vector<LruSet> lrus_;
    std::vector<std::unique_ptr<AddressSpace>> spaces_;
    std::vector<NodeTraffic> traffic_;
    std::vector<KswapdState> kswapd_;
    std::vector<Pfn> scanCursor_;

    KernelAccessTap *accessTap_ = nullptr;
    bool promotionIgnoresWatermark_ = false;
    bool started_ = false;
};

} // namespace tpp

#endif // TPP_MM_KERNEL_HH
