/**
 * @file
 * Determinism anchors for the sharded experiment engine
 * (harness/shard.hh).
 *
 * The shard engine's core contract: the region decomposition
 * (`shardRegions`) is the only thing that changes simulated results —
 * the worker count (`shards`) decides *when* a region computes, never
 * *what*. These tests pin that by running the same config with the
 * region count held fixed and the worker count varied, and demanding
 * bit-identical results (throughput and latency to the last bit, every
 * vmstat counter, traffic shares, residency, the merged sample series
 * and the epoch-synchroniser's own accounting).
 *
 * A second anchor pins the `--shards 1` escape hatch: an effective
 * region count of 1 must dispatch to the legacy single-stack engine and
 * reproduce a plain config's results exactly, so the golden
 * fingerprints in test_migration_compat.cc keep covering the default
 * path no matter what the shard engine does.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "harness/experiment.hh"
#include "harness/shard.hh"
#include "mm/vmstat.hh"

namespace tpp {
namespace {

/** Hash of every vmstat counter (not just the seed-era prefix). */
std::uint64_t
vmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

struct ShardCase {
    const char *tag;
    const char *policy;
    double rateLimitMBps; //!< machine-wide admission budget; 0 = off
};

const ShardCase kCases[] = {
    {"tpp", "tpp", 0.0},
    {"linux", "linux", 0.0},
    {"hotness", "hotness", 0.0},
    {"tpp_admission", "tpp", 50.0},
};

ExperimentConfig
shardConfig(const ShardCase &c, std::uint32_t shards,
            std::uint32_t regions)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.policy = c.policy;
    cfg.wssPages = 8192;
    // Not a multiple of sampleEvery, so the final (partial) epoch is
    // exercised too.
    cfg.runUntil = 4 * kSecond + 37 * kMillisecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.seed = 7;
    cfg.migration = MigrationConfig::compat();
    cfg.migration.rateLimitMBps = c.rateLimitMBps;
    cfg.shards = shards;
    cfg.shardRegions = regions;
    return cfg;
}

/** Field-for-field bit equality of two results. */
void
expectIdentical(const ExperimentResult &a, const ExperimentResult &b,
                const char *tag)
{
    EXPECT_EQ(a.throughput, b.throughput) << tag;
    EXPECT_EQ(a.meanAccessLatencyNs, b.meanAccessLatencyNs) << tag;
    EXPECT_EQ(a.localTrafficShare, b.localTrafficShare) << tag;
    EXPECT_EQ(a.cxlTrafficShare, b.cxlTrafficShare) << tag;
    EXPECT_EQ(a.anonLocalResidency, b.anonLocalResidency) << tag;
    EXPECT_EQ(a.fileLocalResidency, b.fileLocalResidency) << tag;
    EXPECT_EQ(vmHash(a.vmstat), vmHash(b.vmstat)) << tag;
    EXPECT_EQ(a.meminfo.totalPages, b.meminfo.totalPages) << tag;
    EXPECT_EQ(a.meminfo.totalFree, b.meminfo.totalFree) << tag;
    EXPECT_EQ(a.meminfo.swapUsedSlots, b.meminfo.swapUsedSlots) << tag;
    ASSERT_EQ(a.samples.size(), b.samples.size()) << tag;
    for (std::size_t k = 0; k < a.samples.size(); ++k) {
        EXPECT_EQ(a.samples[k].tick, b.samples[k].tick) << tag;
        EXPECT_EQ(a.samples[k].throughput, b.samples[k].throughput)
            << tag;
        EXPECT_EQ(a.samples[k].localShare, b.samples[k].localShare)
            << tag;
        EXPECT_EQ(a.samples[k].localFree, b.samples[k].localFree) << tag;
        EXPECT_EQ(a.samples[k].promotionRate, b.samples[k].promotionRate)
            << tag;
        EXPECT_EQ(a.samples[k].demotionRate, b.samples[k].demotionRate)
            << tag;
        EXPECT_EQ(a.samples[k].anonResident, b.samples[k].anonResident)
            << tag;
        EXPECT_EQ(a.samples[k].fileResident, b.samples[k].fileResident)
            << tag;
    }
    // Epoch-synchroniser bookkeeping must match too: same epochs, same
    // pressure observations, same admission traffic moved.
    EXPECT_EQ(a.shard.regions, b.shard.regions) << tag;
    EXPECT_EQ(a.shard.epochs, b.shard.epochs) << tag;
    EXPECT_EQ(a.shard.regionLowWatermarkEpochs,
              b.shard.regionLowWatermarkEpochs)
        << tag;
    EXPECT_EQ(a.shard.pressureEpochs, b.shard.pressureEpochs) << tag;
    EXPECT_EQ(a.shard.rebalancedMBps, b.shard.rebalancedMBps) << tag;
}

class ShardDeterminism : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardDeterminism, WorkerCountNeverChangesResults)
{
    const ShardCase &c = GetParam();
    // Region decomposition pinned at 4; only the worker count varies.
    const ExperimentResult serial =
        runExperiment(shardConfig(c, /*shards=*/1, /*regions=*/4));
    const ExperimentResult parallel =
        runExperiment(shardConfig(c, /*shards=*/4, /*regions=*/4));

    EXPECT_EQ(serial.shard.regions, 4u);
    EXPECT_EQ(serial.shard.workers, 1u);
    EXPECT_EQ(parallel.shard.workers, 4u);
    EXPECT_GT(serial.shard.epochs, 0u);
    EXPECT_GT(serial.throughput, 0.0);
    expectIdentical(serial, parallel, c.tag);

    // Oversubscription clamps to the region count and still matches.
    const ExperimentResult oversubscribed =
        runExperiment(shardConfig(c, /*shards=*/8, /*regions=*/4));
    EXPECT_EQ(oversubscribed.shard.workers, 4u);
    expectIdentical(serial, oversubscribed, c.tag);
}

INSTANTIATE_TEST_SUITE_P(Golden, ShardDeterminism,
                         ::testing::ValuesIn(kCases),
                         [](const auto &info) {
                             return std::string(info.param.tag);
                         });

TEST(ShardDispatch, OneRegionIsTheLegacyEngineBitForBit)
{
    // shards=1 (effective regions 1) must not even enter the shard
    // engine: identical fields to a config that never heard of shards,
    // and no shard accounting.
    ShardCase plain{"legacy", "tpp", 0.0};
    ExperimentConfig base = shardConfig(plain, 1, 0);
    const ExperimentResult unsharded = runExperiment(base);

    ExperimentConfig pinned = base;
    pinned.shards = 1;
    pinned.shardRegions = 1;
    const ExperimentResult single = runExperiment(pinned);

    EXPECT_EQ(unsharded.shard.regions, 0u);
    EXPECT_EQ(single.shard.regions, 0u);
    EXPECT_EQ(unsharded.throughput, single.throughput);
    EXPECT_EQ(unsharded.meanAccessLatencyNs, single.meanAccessLatencyNs);
    EXPECT_EQ(vmHash(unsharded.vmstat), vmHash(single.vmstat));
    EXPECT_EQ(unsharded.localTrafficShare, single.localTrafficShare);
    ASSERT_EQ(unsharded.samples.size(), single.samples.size());
}

/** Exact sum of the returned shares, in submission order. */
double
sharesSum(const std::vector<double> &shares)
{
    return std::accumulate(shares.begin(), shares.end(), 0.0);
}

TEST(ShardBudget, SharesConserveTheMachineBudgetExactly)
{
    // Failing-pre-fix: the old redistribution rounded each region's
    // floor + pool*weight slice independently, so the sum drifted off
    // the machine-wide vm.migration_rate_limit_mbps by a few ulps per
    // epoch (compounded by a %.9g sysctl round-trip). Three-way split
    // of a budget whose thirds are not representable is the canonical
    // leak: 0.1*100/3 and 0.9*100*(1/3) both round.
    const double budget = 100.0;
    const std::vector<double> demand = {1.0, 1.0, 1.0};
    const std::vector<double> shares = shardBudgetShares(demand, budget);
    ASSERT_EQ(shares.size(), 3u);
    EXPECT_EQ(sharesSum(shares), budget);

    // Adversarial weights: demands whose normalised weights cannot sum
    // to exactly 1.0 in floating point.
    const std::vector<double> skewed = {1e-9, 3.7, 1e9, 42.123456789,
                                        0.0, 7.0 / 13.0, 1e-300};
    const std::vector<double> skewed_shares =
        shardBudgetShares(skewed, 12.75);
    ASSERT_EQ(skewed_shares.size(), skewed.size());
    EXPECT_EQ(sharesSum(skewed_shares), 12.75);
    // Every region keeps at least its 10% floor (minus the one ulp the
    // remainder region may absorb).
    const double floor =
        0.1 * 12.75 / static_cast<double>(skewed.size());
    for (const double share : skewed_shares)
        EXPECT_GE(share, floor * 0.99);
}

TEST(ShardBudget, AllIdleRegionsSplitEquallyAndExactly)
{
    // All-idle corner: zero demand everywhere must fall back to the
    // equal split and still sum to exactly the budget — seven equal
    // slices of 50 MB/s are not representable individually.
    const std::vector<double> idle(7, 0.0);
    const std::vector<double> shares = shardBudgetShares(idle, 50.0);
    ASSERT_EQ(shares.size(), 7u);
    EXPECT_EQ(sharesSum(shares), 50.0);
    for (std::size_t r = 0; r + 1 < shares.size(); ++r)
        EXPECT_NEAR(shares[r], 50.0 / 7.0, 1e-12);
}

TEST(ShardBudget, SingleRegionKeepsTheWholeBudget)
{
    // Single-region corner: no pool/floor split at all — the one
    // region owns the budget bit-for-bit.
    const std::vector<double> shares =
        shardBudgetShares({123.0}, 0.1 + 0.2);
    ASSERT_EQ(shares.size(), 1u);
    EXPECT_EQ(shares[0], 0.1 + 0.2);
}

TEST(ShardBudget, DegenerateInputsYieldZeros)
{
    EXPECT_TRUE(shardBudgetShares({}, 10.0).empty());
    const std::vector<double> off = shardBudgetShares({1.0, 2.0}, 0.0);
    ASSERT_EQ(off.size(), 2u);
    EXPECT_EQ(off[0], 0.0);
    EXPECT_EQ(off[1], 0.0);
}

TEST(ShardBudget, AdmissionBudgetSurvivesTheSysctlRoundTrip)
{
    // The shares only conserve the budget if the sysctl string
    // round-trip each kernel sees preserves them exactly; %.17g does,
    // %.9g (the pre-fix format) does not for this value.
    const double mbps = 50.0 / 3.0;
    char wide[64];
    std::snprintf(wide, sizeof(wide), "%.17g", mbps);
    EXPECT_EQ(std::strtod(wide, nullptr), mbps);
    char narrow[64];
    std::snprintf(narrow, sizeof(narrow), "%.9g", mbps);
    EXPECT_NE(std::strtod(narrow, nullptr), mbps);
}

TEST(ShardDispatch, RegionCountChangesTheMachineWorkersDoNot)
{
    // Sanity that the test above is not vacuous: different region
    // decompositions really do simulate different machines, so the
    // worker-invariance checks are comparing something that could have
    // diverged.
    ShardCase c{"tpp", "tpp", 0.0};
    const ExperimentResult two =
        runExperiment(shardConfig(c, 1, 2));
    const ExperimentResult four =
        runExperiment(shardConfig(c, 1, 4));
    EXPECT_EQ(two.shard.regions, 2u);
    EXPECT_EQ(four.shard.regions, 4u);
    EXPECT_NE(vmHash(two.vmstat), vmHash(four.vmstat));
}

} // namespace
} // namespace tpp
