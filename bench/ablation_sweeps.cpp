/**
 * @file
 * Design-choice ablations beyond the paper's figures, for the knobs
 * DESIGN.md calls out:
 *
 *  1. demote_scale_factor sweep — how much free headroom should the
 *     demotion daemon maintain? The paper defaults to 2 % (§5.2).
 *  2. hint-fault scan cadence sweep — promotion responsiveness vs
 *     sampling overhead (§5.3).
 *  3. promotion rate limit sweep — the upstream follow-up knob
 *     (numa_balancing_promote_rate_limit_MBps); 0 = the paper's TPP.
 *
 * All on the stress case (Cache1, 1:4).
 */

#include "bench_common.hh"

namespace {

using namespace tpp;

ExperimentConfig
baseConfig(std::uint64_t wss)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.wssPages = wss;
    cfg.localFraction = parseRatio("1:4");
    cfg.policy = "tpp";
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;
    const std::uint64_t wss = bench::wssFromArgs(argc, argv);

    bench::banner("Ablation sweeps",
                  "TPP design-choice sensitivity (Cache1, 1:4)");

    std::printf("-- demote_scale_factor --\n");
    {
        TextTable table({"scale factor", "local traffic", "tput (ops/s)",
                         "demotions", "promo success rate"});
        for (double factor : {0.5, 1.0, 2.0, 4.0, 8.0}) {
            ExperimentConfig cfg = baseConfig(wss);
            cfg.tpp.demoteScaleFactor = factor;
            const ExperimentResult res = runExperiment(cfg);
            const std::uint64_t tries = res.vmstat.get(Vm::PgPromoteTry);
            table.addRow(
                {TextTable::num(factor, 1),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::num(res.throughput, 0),
                 TextTable::count(res.vmstat.get(Vm::PgDemoteAnon) +
                                  res.vmstat.get(Vm::PgDemoteFile)),
                 TextTable::pct(
                     tries ? static_cast<double>(res.vmstat.get(
                                 Vm::PgPromoteSuccess)) /
                                 static_cast<double>(tries)
                           : 0.0)});
        }
        table.print();
    }

    std::printf("\n-- hint-fault scan cadence --\n");
    {
        TextTable table({"batch/period", "hint faults", "promotions",
                         "local traffic", "tput (ops/s)"});
        struct Cadence {
            std::uint64_t batch;
            Tick period;
            const char *label;
        };
        const Cadence cadences[] = {
            {128, 40 * kMillisecond, "128 / 40ms (slow)"},
            {512, 20 * kMillisecond, "512 / 20ms (default)"},
            {2048, 10 * kMillisecond, "2048 / 10ms (aggressive)"},
        };
        for (const Cadence &c : cadences) {
            ExperimentConfig cfg = baseConfig(wss);
            cfg.tpp.scanBatch = c.batch;
            cfg.tpp.scanPeriod = c.period;
            const ExperimentResult res = runExperiment(cfg);
            table.addRow(
                {c.label,
                 TextTable::count(res.vmstat.get(Vm::NumaHintFaults)),
                 TextTable::count(res.vmstat.get(Vm::PgPromoteSuccess)),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::num(res.throughput, 0)});
        }
        table.print();
    }

    std::printf("\n-- promotion rate limit (MB/s) --\n");
    {
        TextTable table({"limit", "promotions", "rate-limited",
                         "local traffic", "tput (ops/s)"});
        for (double limit : {0.0, 16.0, 64.0, 256.0}) {
            ExperimentConfig cfg = baseConfig(wss);
            cfg.tpp.promoteRateLimitMBps = limit;
            const ExperimentResult res = runExperiment(cfg);
            table.addRow(
                {limit == 0.0 ? "off" : TextTable::num(limit, 0),
                 TextTable::count(res.vmstat.get(Vm::PgPromoteSuccess)),
                 TextTable::count(
                     res.vmstat.get(Vm::PgPromoteFailRateLimit)),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::num(res.throughput, 0)});
        }
        table.print();
    }
    return 0;
}
