file(REMOVE_RECURSE
  "CMakeFiles/tpp_mem.dir/latency.cc.o"
  "CMakeFiles/tpp_mem.dir/latency.cc.o.d"
  "CMakeFiles/tpp_mem.dir/memory_system.cc.o"
  "CMakeFiles/tpp_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/tpp_mem.dir/node.cc.o"
  "CMakeFiles/tpp_mem.dir/node.cc.o.d"
  "CMakeFiles/tpp_mem.dir/swap_device.cc.o"
  "CMakeFiles/tpp_mem.dir/swap_device.cc.o.d"
  "libtpp_mem.a"
  "libtpp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
