#include "trace/summary.hh"

#include <algorithm>
#include <map>
#include <utility>

#include "sim/logging.hh"

namespace tpp {

std::size_t
TraceSummary::activeWindows(TraceEvent event) const
{
    std::size_t active = 0;
    for (const TraceWindow &w : windows)
        if (w.count(event) > 0)
            active++;
    return active;
}

TraceSummary
summarizeTrace(const std::vector<TraceRecord> &events, Tick window_ns,
               std::size_t top_n)
{
    if (window_ns == 0)
        tpp_fatal("summarizeTrace: window must be > 0");

    TraceSummary summary;
    summary.windowNs = window_ns;
    if (events.empty())
        return summary;

    std::vector<TraceRecord> sorted = events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.tick < b.tick;
                     });

    // Windows are aligned to t=0 so rates line up with the sampler and
    // across runs; leading empty windows are materialised for the same
    // reason (a silent first second is signal, not noise).
    const std::size_t num_windows =
        static_cast<std::size_t>(sorted.back().tick / window_ns) + 1;
    summary.windows.resize(num_windows);
    for (std::size_t i = 0; i < num_windows; ++i)
        summary.windows[i].start = static_cast<Tick>(i) * window_ns;

    struct PageState {
        std::uint64_t demotions = 0;
        std::uint64_t promotions = 0;
        std::uint64_t flips = 0;
        TraceEvent last = TraceEvent::NumEvents;
        /** (src, dst) of the last migration, for reversal detection. */
        std::uint32_t lastSrc = 0;
        std::uint32_t lastDst = 0;
    };
    std::map<std::pair<std::uint32_t, Vpn>, PageState> pages;

    for (const TraceRecord &r : sorted) {
        const std::size_t e = static_cast<std::size_t>(r.event);
        summary.totals[e]++;
        summary.windows[static_cast<std::size_t>(r.tick / window_ns)]
            .counts[e]++;

        if (r.event == TraceEvent::HotnessThreshold)
            summary.hotnessThresholds.emplace_back(r.tick, r.aux);

        if (r.event == TraceEvent::AdaptiveTune ||
            r.event == TraceEvent::AdaptiveRevert) {
            TraceSummary::AdaptiveKnobPoint point;
            point.tick = r.tick;
            point.knob = static_cast<std::uint8_t>(r.aux >> 24);
            point.value = r.aux & 0xffffff;
            point.reverted = r.event == TraceEvent::AdaptiveRevert;
            summary.adaptiveKnobs.push_back(point);
        }
        if (r.event == TraceEvent::AdaptiveSettle)
            summary.adaptiveSettles++;
        if (r.event == TraceEvent::AdaptiveWake)
            summary.adaptiveWakes++;

        if (r.event == TraceEvent::PptThrottle) {
            // aux carries the denied direction (PptHop: 1 = promote).
            if (r.aux)
                summary.pptThrottledPromote++;
            else
                summary.pptThrottledDemote++;
        }

        if (r.event == TraceEvent::MemcgEvent) {
            // aux = (cgroup id << 8) | MemcgEventKind.
            MemcgTally &tally = summary.memcg[r.aux >> 8];
            switch (r.aux & 0xff) {
              case 0: tally.protectedSkips++; break;
              case 1: tally.lowBreaches++; break;
              case 2: tally.throttled++; break;
              default: break;
            }
        }

        if (!r.hasPage || (r.event != TraceEvent::Demote &&
                           r.event != TraceEvent::PromoteSuccess))
            continue;
        PageState &state = pages[{r.asid, r.vpn}];
        if (r.event == TraceEvent::Demote)
            state.demotions++;
        else
            state.promotions++;
        // A flip is an exact reversal of the previous hop: the page
        // bounces between the same two nodes. A chained demotion
        // (A->B then B->C) or a promotion from deeper down the chain
        // (A->B->C then C->A) changes direction without retracing the
        // hop, so it is not ping-pong between one node pair.
        if (state.last != TraceEvent::NumEvents &&
            state.last != r.event && r.node == state.lastDst &&
            r.aux == state.lastSrc) {
            state.flips++;
        }
        state.last = r.event;
        state.lastSrc = r.node;
        state.lastDst = r.aux;
    }

    for (const auto &[key, state] : pages) {
        if (state.flips == 0)
            continue;
        PingPongPage page;
        page.asid = key.first;
        page.vpn = key.second;
        page.demotions = state.demotions;
        page.promotions = state.promotions;
        page.flips = state.flips;
        // Each flip undid the hop before it, so the initiating hop plus
        // every reversal moved one page of data for nothing.
        page.wastedBytes = (state.flips + 1) * kPageSize;
        summary.pingPongFlips += state.flips;
        summary.pingPongWastedBytes += page.wastedBytes;
        summary.pingPong.push_back(page);
    }
    std::stable_sort(summary.pingPong.begin(), summary.pingPong.end(),
                     [](const PingPongPage &a, const PingPongPage &b) {
                         return a.flips > b.flips;
                     });
    if (summary.pingPong.size() > top_n)
        summary.pingPong.resize(top_n);
    return summary;
}

} // namespace tpp
