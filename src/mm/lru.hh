/**
 * @file
 * Per-node LRU lists: active/inactive x anon/file, intrusively linked
 * through the frame table, as in the kernel's per-node lruvec.
 *
 * TPP leans on this structure twice: reclaim picks demotion candidates
 * from the inactive tails, and the promotion filter asks whether a
 * hint-faulted page has reached an active list (§5.3).
 */

#ifndef TPP_MM_LRU_HH
#define TPP_MM_LRU_HH

#include <array>
#include <cstdint>

#include "mem/memory_system.hh"
#include "mem/page.hh"
#include "sim/types.hh"

namespace tpp {

/**
 * The four LRU lists of one memory node.
 */
class LruSet
{
  public:
    LruSet(MemorySystem &mem, NodeId nid);

    NodeId nodeId() const { return nid_; }

    /** Insert a frame at the head (MRU end) of `list`. */
    void addHead(LruListId list, Pfn pfn);

    /** Insert a frame at the tail (LRU end) of `list`. */
    void addTail(LruListId list, Pfn pfn);

    /** Detach a frame from whatever list it is on. */
    void remove(Pfn pfn);

    /** @return the tail (oldest) frame of `list`, kInvalidPfn if empty. */
    Pfn tail(LruListId list) const;

    /** @return the head (youngest) frame of `list`, kInvalidPfn if empty. */
    Pfn head(LruListId list) const;

    /** Move an inactive frame to the head of its active list. */
    void activate(Pfn pfn);

    /** Move an active frame to the head of its inactive list. */
    void deactivate(Pfn pfn);

    /** Rotate a frame to the head of its current list (second chance). */
    void rotate(Pfn pfn);

    std::uint64_t count(LruListId list) const;

    /** Pages of `type` on this node's LRUs (active + inactive). */
    std::uint64_t countType(PageType type) const;

    /** All pages on this node's LRUs. */
    std::uint64_t countAll() const;

    /** Anonymous + file inactive totals (reclaim scan targets). */
    std::uint64_t
    countInactive() const
    {
        return count(LruListId::InactiveAnon) +
               count(LruListId::InactiveFile);
    }

    /**
     * Walk a list from the tail towards the head.
     * @param fn   callback taking Pfn, returning false to stop the walk.
     */
    template <typename Fn>
    void
    walkFromTail(LruListId list, Fn &&fn) const
    {
        Pfn cur = tails_[index(list)];
        while (cur != kInvalidPfn) {
            Pfn prev = frames_[cur].lruPrev;
            if (!fn(cur))
                break;
            cur = prev;
        }
    }

    /** Verify intrusive-list invariants; panics on corruption (tests). */
    void checkConsistency() const;

  private:
    static std::size_t
    index(LruListId list)
    {
        return static_cast<std::size_t>(list) - 1;
    }

    /**
     * Base of the hot frame array, cached at construction (the arena
     * never reallocates). List surgery is pure indexed access on 16-byte
     * records — no per-op bounds re-check on a path that runs millions
     * of times per simulated second.
     */
    PageFrame *frames_;
    NodeId nid_;
    std::array<Pfn, kNumLruLists> heads_;
    std::array<Pfn, kNumLruLists> tails_;
    std::array<std::uint64_t, kNumLruLists> counts_;
};

} // namespace tpp

#endif // TPP_MM_LRU_HH
