/**
 * @file
 * Extension bench (beyond the paper's figures): the full policy zoo —
 * default Linux, NUMA Balancing, AutoTiering, DAMON-based proactive
 * demotion, and TPP — on the stress case (Cache1, 1:4), plus a YCSB-B
 * key-value shape as an out-of-sample workload.
 *
 * Expectation: TPP and AutoTiering lead (demotion + promotion);
 * damon-reclaim lands near plain Linux — its migration-based demotion
 * avoids paging, but with no promotion path a proactively demoted page
 * that re-heats is stuck remote; NUMA Balancing trails everything
 * (useless local sampling, gated promotions, displacement paging).
 */

#include <memory>

#include "bench_common.hh"
#include "mm/kernel.hh"
#include "policy/damon_reclaim.hh"
#include "workloads/driver.hh"
#include "workloads/profiles.hh"
#include "workloads/ycsb.hh"

namespace {

using namespace tpp;

struct ZooResult {
    double throughput = 0.0;
    double localShare = 0.0;
    std::uint64_t swapOuts = 0;
    std::uint64_t demotions = 0;
    std::uint64_t promotions = 0;
};

std::unique_ptr<PlacementPolicy>
zooPolicy(const std::string &name)
{
    if (name == "damon-reclaim")
        return std::make_unique<DamonReclaimPolicy>();
    ExperimentConfig cfg;
    cfg.policy = name;
    return makePolicy(cfg);
}

ZooResult
runZoo(const std::string &policy, std::uint64_t wss, bool ycsb,
       bool all_local)
{
    const std::uint64_t total = wss * 103 / 100;
    MemoryConfig mem_cfg;
    if (all_local) {
        mem_cfg = TopologyBuilder::allLocal(total);
    } else {
        const std::uint64_t local_pages = total / 5; // 1:4
        mem_cfg =
            TopologyBuilder::cxlSystem(local_pages, total - local_pages);
    }
    EventQueue eq;
    MemorySystem mem(mem_cfg);
    Kernel kernel(mem, eq, zooPolicy(policy));

    std::unique_ptr<Workload> workload;
    if (ycsb) {
        YcsbConfig cfg = YcsbConfig::workloadB(wss * 9 / 10);
        workload = std::make_unique<YcsbWorkload>(cfg);
    } else {
        workload = std::make_unique<SyntheticWorkload>(
            profiles::cache1(wss));
    }
    workload->setTaskNode(mem.cpuNodes().front());

    DriverConfig driver_cfg;
    WorkloadDriver driver(kernel, *workload, driver_cfg);
    kernel.start();
    driver.runToCompletion();

    ZooResult result;
    result.throughput = driver.throughput();
    result.localShare = driver.trafficShare(mem.cpuNodes().front());
    const VmStat &vs = kernel.vmstat();
    result.swapOuts = vs.get(Vm::PswpOut);
    result.demotions =
        vs.get(Vm::PgDemoteAnon) + vs.get(Vm::PgDemoteFile);
    result.promotions = vs.get(Vm::PgPromoteSuccess);
    return result;
}

void
zooTable(const char *title, std::uint64_t wss, bool ycsb)
{
    std::printf("-- %s --\n", title);
    const ZooResult baseline = runZoo("linux", wss, ycsb, true);
    TextTable table({"policy", "tput vs all-local", "local traffic",
                     "swap-outs", "demotions", "promotions"});
    for (const char *policy :
         {"linux", "numa-balancing", "autotiering", "damon-reclaim",
          "tpp"}) {
        const ZooResult res = runZoo(policy, wss, ycsb, false);
        table.addRow({policy,
                      TextTable::pct(res.throughput /
                                     baseline.throughput),
                      TextTable::pct(res.localShare),
                      TextTable::count(res.swapOuts),
                      TextTable::count(res.demotions),
                      TextTable::count(res.promotions)});
    }
    table.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tpp;
    const std::uint64_t wss = bench::wssFromArgs(argc, argv);

    bench::banner("Policy zoo (extension)",
                  "all five policies on the 1:4 stress configuration");
    zooTable("Cache1 (paper workload)", wss, false);
    zooTable("YCSB-B (out-of-sample key-value mix)", wss, true);
    return 0;
}
