file(REMOVE_RECURSE
  "CMakeFiles/micro_mm_ops.dir/micro_mm_ops.cpp.o"
  "CMakeFiles/micro_mm_ops.dir/micro_mm_ops.cpp.o.d"
  "micro_mm_ops"
  "micro_mm_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mm_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
