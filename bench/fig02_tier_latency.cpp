/**
 * @file
 * Figure 2: memory-tier latency characteristics.
 *
 * The paper's Figure 2 sketches the latency ladder of a heterogeneous
 * tiered-memory system. This binary prints the simulator's realisation
 * of that ladder — idle and loaded latency per tier, and the
 * bandwidth-contention inflation curve — so the model underlying every
 * other experiment is inspectable.
 *
 * Paper shape: local DRAM fastest; CXL ~50-100 ns slower with NUMA-like
 * characteristics; paging/disk orders of magnitude slower; loaded
 * latency diverges as bandwidth saturates.
 */

#include "bench_common.hh"
#include "mem/memory_system.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    (void)bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 2", "memory-tier latency ladder (model)");

    MemorySystem mem(TopologyBuilder::cxlSystem(1024, 1024));
    const LatencyModel &model = mem.latencyModel();

    TextTable tiers({"tier", "idle latency", "bandwidth",
                     "vs local DRAM"});
    const double local_ns = mem.node(0).profile().idleLatencyNs;
    for (std::size_t n = 0; n < mem.numNodes(); ++n) {
        const NodeProfile &p = mem.node(static_cast<NodeId>(n)).profile();
        tiers.addRow({p.name, TextTable::num(p.idleLatencyNs, 0) + " ns",
                      TextTable::num(p.bandwidthGBps, 0) + " GB/s",
                      TextTable::num(p.idleLatencyNs / local_ns, 2) +
                          "x"});
    }
    const double swap_read_ns = static_cast<double>(
        mem.swapDevice().profile().readLatency);
    tiers.addRow({"swap (NVMe)",
                  TextTable::num(swap_read_ns / 1000.0, 0) + " us", "-",
                  TextTable::num(swap_read_ns / local_ns, 0) + "x"});
    tiers.print();

    std::printf("\nloaded-latency inflation (idle = 100 ns):\n");
    TextTable curve({"utilisation", "effective latency"});
    for (double u : {0.0, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95}) {
        curve.addRow({TextTable::pct(u, 0),
                      TextTable::num(model.inflate(100.0, u), 1) +
                          " ns"});
    }
    curve.print();

    std::printf("\npaper: CXL adds ~50-100 ns over local DRAM; paging is "
                "orders of magnitude slower; latency diverges near "
                "bandwidth saturation\n");
    return 0;
}
