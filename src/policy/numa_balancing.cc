#include "policy/numa_balancing.hh"

#include <memory>

#include "mm/kernel.hh"
#include "mm/policy_registry.hh"

namespace tpp {

void
NumaBalancingPolicy::start()
{
    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

bool
NumaBalancingPolicy::scanNode(NodeId nid) const
{
    (void)nid;
    return true;
}

void
NumaBalancingPolicy::scanTick()
{
    // Sample every node; the local samples produce the useless hint
    // faults whose overhead the paper calls out (§5.3, §6.4).
    const std::size_t n = kernel_->mem().numNodes();
    for (std::size_t i = 0; i < n; ++i)
        kernel_->sampleNode(static_cast<NodeId>(i), cfg_.scanBatch);
    kernel_->eventQueue().scheduleAfter(cfg_.scanPeriod,
                                        [this] { scanTick(); });
}

double
NumaBalancingPolicy::onHintFault(Pfn pfn, NodeId task_nid)
{
    PageFrame &frame = kernel_->mem().frame(pfn);
    kernel_->mem().frameCold(pfn).lastHintFault =
        kernel_->eventQueue().now();

    if (frame.nid == task_nid) {
        // Local page: sampling it bought nothing.
        return 0.0;
    }

    // Instant promotion attempt, no hotness hysteresis. The Promotion
    // gate is the high watermark because the kernel never lets NUMA
    // balancing migrate into a node under pressure (§4.2); Kernel's
    // promotionIgnoresWatermark flag stays false for this policy.
    kernel_->notePromoteCandidate(frame);
    auto [ok, cost] = kernel_->promotePage(pfn, frame.nid, task_nid);
    (void)ok;
    return cost;
}

TPP_REGISTER_POLICY_AS(numaBalancing, "numa-balancing",
                       [](const PolicyParams &p) {
                           return std::make_unique<NumaBalancingPolicy>(
                               p.numaBalancing);
                       });
// Short alias accepted since the first harness version.
TPP_REGISTER_POLICY_AS(numa, "numa", [](const PolicyParams &p) {
    return std::make_unique<NumaBalancingPolicy>(p.numaBalancing);
});

} // namespace tpp
