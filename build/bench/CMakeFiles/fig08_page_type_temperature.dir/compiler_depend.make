# Empty compiler generated dependencies file for fig08_page_type_temperature.
# This may be replaced when dependencies are built.
