/**
 * @file
 * Swap device model: a block device with per-page transfer latency, the
 * destination of default Linux's reclaim and the fallback of TPP's
 * demotion path. Latency is microseconds-scale, which is what makes
 * paging reclaim so expensive next to CXL migration (§4.1).
 */

#ifndef TPP_MEM_SWAP_DEVICE_HH
#define TPP_MEM_SWAP_DEVICE_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace tpp {

/** Identifier of a slot on the swap device. */
using SwapSlot = std::uint64_t;

inline constexpr SwapSlot kInvalidSwapSlot = ~0ULL;

/** Static profile of the swap device. */
struct SwapProfile {
    /** Per-page write latency (NVMe-flash scale). */
    Tick writeLatency = 30 * kMicrosecond;
    /** Per-page read latency, paid synchronously on major fault. */
    Tick readLatency = 80 * kMicrosecond;
    /** Capacity in pages; 0 means unbounded. */
    std::uint64_t capacityPages = 0;
};

/**
 * Swap space bookkeeping: slots holding swapped-out virtual pages.
 */
class SwapDevice
{
  public:
    explicit SwapDevice(SwapProfile profile = {}) : profile_(profile) {}

    const SwapProfile &profile() const { return profile_; }

    /**
     * Write one page out.
     * @return the slot it landed in, or kInvalidSwapSlot if full.
     */
    SwapSlot pageOut(Asid asid, Vpn vpn);

    /**
     * Read a slot back in and release it.
     * @return true when the slot was live.
     */
    bool pageIn(SwapSlot slot);

    /** Release a slot without reading (owner exited). */
    void release(SwapSlot slot);

    std::uint64_t usedSlots() const { return entries_.size(); }
    std::uint64_t totalPageOuts() const { return totalOuts_; }
    std::uint64_t totalPageIns() const { return totalIns_; }

  private:
    struct Entry {
        Asid asid;
        Vpn vpn;
    };

    SwapProfile profile_;
    SwapSlot nextSlot_ = 1;
    std::unordered_map<SwapSlot, Entry> entries_;
    std::uint64_t totalOuts_ = 0;
    std::uint64_t totalIns_ = 0;
};

} // namespace tpp

#endif // TPP_MEM_SWAP_DEVICE_HH
