/**
 * @file
 * Multi-process tests: several address spaces sharing the machine,
 * cross-process reclaim and migration, and per-process accounting.
 */

#include "core/tpp_policy.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(MultiProcess, IndependentAddressSpaces)
{
    TestMachine m;
    const Asid p1 = m.asid;
    const Asid p2 = m.kernel.createProcess();
    const Vpn a1 = m.kernel.mmap(p1, 8, PageType::Anon, "p1");
    const Vpn a2 = m.kernel.mmap(p2, 8, PageType::File, "p2");
    EXPECT_EQ(a1, a2); // same vpn in different spaces is fine
    for (int i = 0; i < 8; ++i) {
        m.kernel.access(p1, a1 + i, AccessKind::Store, 0);
        m.kernel.access(p2, a2 + i, AccessKind::Load, 0);
    }
    EXPECT_EQ(m.kernel.addressSpace(p1).residentPages(), 8u);
    EXPECT_EQ(m.kernel.addressSpace(p2).residentPages(), 8u);
    EXPECT_EQ(m.kernel.addressSpace(p1).residentPages(PageType::File),
              0u);
    EXPECT_EQ(m.kernel.addressSpace(p2).residentPages(PageType::File),
              8u);
}

TEST(MultiProcess, ReclaimCrossesProcessBoundaries)
{
    TestMachine m;
    const Asid p2 = m.kernel.createProcess();
    const Vpn a1 = m.kernel.mmap(m.asid, 8, PageType::Anon, "p1");
    const Vpn a2 = m.kernel.mmap(p2, 8, PageType::Anon, "p2");
    for (int i = 0; i < 8; ++i) {
        m.kernel.access(m.asid, a1 + i, AccessKind::Store, 0);
        m.kernel.access(p2, a2 + i, AccessKind::Store, 0);
    }
    // Only p1's pages are cold.
    for (int i = 0; i < 8; ++i) {
        m.mem.frame(m.kernel.addressSpace(m.asid).pte(a1 + i).pfn)
            .clearFlag(PageFrame::FlagReferenced);
    }
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 8);
    EXPECT_EQ(reclaimed, 8u);
    EXPECT_EQ(m.kernel.addressSpace(m.asid).residentPages(), 0u);
    EXPECT_EQ(m.kernel.addressSpace(p2).residentPages(), 8u);
    (void)cost;
}

TEST(MultiProcess, MigrationKeepsRmapStraight)
{
    TestMachine m;
    const Asid p2 = m.kernel.createProcess();
    const Vpn a1 = m.kernel.mmap(m.asid, 4, PageType::Anon, "p1");
    const Vpn a2 = m.kernel.mmap(p2, 4, PageType::Anon, "p2");
    for (int i = 0; i < 4; ++i) {
        m.kernel.access(m.asid, a1 + i, AccessKind::Store, 0);
        m.kernel.access(p2, a2 + i, AccessKind::Store, 0);
    }
    // Demote everything, then verify each PTE points to a CXL frame
    // owned by the right process.
    for (int i = 0; i < 4; ++i) {
        m.kernel.demotePage(m.kernel.addressSpace(m.asid).pte(a1 + i).pfn);
        m.kernel.demotePage(m.kernel.addressSpace(p2).pte(a2 + i).pfn);
    }
    for (int i = 0; i < 4; ++i) {
        const Pte &pte1 = m.kernel.addressSpace(m.asid).pte(a1 + i);
        const Pte &pte2 = m.kernel.addressSpace(p2).pte(a2 + i);
        EXPECT_EQ(m.mem.frameCold(pte1.pfn).ownerAsid, m.asid);
        EXPECT_EQ(m.mem.frameCold(pte2.pfn).ownerAsid, p2);
        EXPECT_EQ(m.mem.frame(pte1.pfn).nid, m.cxl());
    }
    // Both processes can still touch their memory.
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(
            m.kernel.access(m.asid, a1 + i, AccessKind::Load, 0).oom);
        EXPECT_FALSE(
            m.kernel.access(p2, a2 + i, AccessKind::Load, 0).oom);
    }
}

TEST(MultiProcess, TppPromotionWorksAcrossProcesses)
{
    TestMachine m(512, 512, std::make_unique<TppPolicy>());
    const Asid p2 = m.kernel.createProcess();
    const Vpn a2 = m.kernel.mmap(p2, 2, PageType::Anon, "p2");
    for (int i = 0; i < 2; ++i)
        m.kernel.access(p2, a2 + i, AccessKind::Store, m.cxl());
    for (int round = 0; round < 2; ++round) {
        m.kernel.sampleNode(m.cxl(), 4);
        for (int i = 0; i < 2; ++i)
            m.kernel.access(p2, a2 + i, AccessKind::Load, 0);
    }
    EXPECT_EQ(m.mem.frame(m.kernel.addressSpace(p2).pte(a2).pfn).nid,
              m.local());
}

TEST(MultiProcess, SamplingCoversAllProcesses)
{
    TestMachine m;
    const Asid p2 = m.kernel.createProcess();
    const Vpn a1 = m.kernel.mmap(m.asid, 4, PageType::Anon, "p1");
    const Vpn a2 = m.kernel.mmap(p2, 4, PageType::Anon, "p2");
    for (int i = 0; i < 4; ++i) {
        m.kernel.access(m.asid, a1 + i, AccessKind::Store, 0);
        m.kernel.access(p2, a2 + i, AccessKind::Store, 0);
    }
    EXPECT_EQ(m.kernel.sampleNode(0, 64), 8u);
    int sampled = 0;
    for (int i = 0; i < 4; ++i) {
        sampled += m.kernel.addressSpace(m.asid).pte(a1 + i).protNone();
        sampled += m.kernel.addressSpace(p2).pte(a2 + i).protNone();
    }
    EXPECT_EQ(sampled, 8);
}

} // namespace
} // namespace tpp
