/**
 * @file
 * PingPongThrottle (mm/ppt) tests.
 *
 * Unit half: the class is standalone (counters + trace ring + explicit
 * timestamps), so these drive the cooldown clock directly — the window
 * arithmetic, the same-direction exemption, hysteresis escalation up to
 * the ceiling, LRU eviction at capacity (including the denial-refresh
 * rule) and the vm.ppt.* validation ranges.
 *
 * Golden half: vm.ppt.enable=0 must be a single branch with no state,
 * so explicitly setting it reproduces the pre-PPT golden fingerprints
 * bit-for-bit (the same constants test_migration_compat.cc pins), a
 * plain run matches an explicit-off run for tpp/linux/hotness, and the
 * invariance holds under the sharded engine (--shards 4) too.
 */

#include <string>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "mm/ppt/ppt.hh"
#include "mm/sysctl.hh"
#include "mm/vmstat.hh"
#include "trace/trace.hh"

namespace tpp {
namespace {

constexpr Asid kAsid = 1;
constexpr NodeId kTop = 0;
constexpr NodeId kCxl = 1;

/** Unit fixture: a throttle wired to private counters and an explicit
 *  clock, enabled with test-friendly tunables unless a test rebuilds
 *  it via make(). */
class PptUnit : public ::testing::Test
{
  protected:
    PptUnit() { make(defaultConfig()); }

    static PptConfig
    defaultConfig()
    {
        PptConfig cfg;
        cfg.enable = true;
        cfg.cooldownMs = 10;
        cfg.historyPages = 64;
        cfg.repeatThreshold = 2;
        cfg.maxCooldownMs = 80;
        return cfg;
    }

    void
    make(const PptConfig &cfg)
    {
        ppt = std::make_unique<PingPongThrottle>(vm, trace, cfg);
    }

    bool
    admit(Vpn vpn, PptHop dir, Tick now)
    {
        return ppt->admit(kAsid, vpn, dir, now,
                          dir == PptHop::Promote ? kTop : kCxl,
                          PageType::Anon, static_cast<Pfn>(vpn));
    }

    void
    record(Vpn vpn, PptHop dir, Tick now)
    {
        ppt->recordHop(kAsid, vpn, dir, now,
                       dir == PptHop::Promote ? kTop : kCxl,
                       PageType::Anon, static_cast<Pfn>(vpn));
    }

    std::uint64_t denials() const
    {
        return vm.get(Vm::PptThrottledPromote) +
               vm.get(Vm::PptThrottledDemote);
    }

    VmStat vm;
    TraceBuffer trace;
    std::unique_ptr<PingPongThrottle> ppt;
};

TEST_F(PptUnit, UntrackedAndSameDirectionHopsAreFree)
{
    // No history: both directions admitted at any time.
    EXPECT_TRUE(admit(7, PptHop::Promote, 0));
    EXPECT_TRUE(admit(7, PptHop::Demote, 0));

    // Same-direction repeats (a chained demotion) are never throttled,
    // even back-to-back inside what would be the cooldown.
    record(7, PptHop::Demote, 1 * kMillisecond);
    EXPECT_TRUE(admit(7, PptHop::Demote, 1 * kMillisecond));
    EXPECT_TRUE(admit(7, PptHop::Demote, 2 * kMillisecond));
    EXPECT_EQ(denials(), 0u);
    EXPECT_EQ(ppt->trackedPages(), 1u);
}

TEST_F(PptUnit, CooldownDeniesReverseHopUntilExpiry)
{
    const Tick t0 = 5 * kMillisecond;
    record(3, PptHop::Demote, t0);

    // Inside the 10 ms window the reverse hop is denied and counted.
    EXPECT_FALSE(admit(3, PptHop::Promote, t0 + 1 * kMillisecond));
    EXPECT_FALSE(admit(3, PptHop::Promote, t0 + 9 * kMillisecond));
    EXPECT_EQ(vm.get(Vm::PptThrottledPromote), 2u);
    EXPECT_EQ(vm.get(Vm::PptThrottledDemote), 0u);

    // The window is closed-open: exactly cooldown later is admitted.
    EXPECT_TRUE(admit(3, PptHop::Promote, t0 + 10 * kMillisecond));

    // The mirror case counts on the demote side.
    record(3, PptHop::Promote, t0 + 10 * kMillisecond);
    EXPECT_FALSE(admit(3, PptHop::Demote, t0 + 11 * kMillisecond));
    EXPECT_EQ(vm.get(Vm::PptThrottledDemote), 1u);
}

TEST_F(PptUnit, DisabledIsStatelessAndAlwaysAdmits)
{
    PptConfig cfg = defaultConfig();
    cfg.enable = false;
    make(cfg);

    record(9, PptHop::Demote, 0);
    EXPECT_EQ(ppt->trackedPages(), 0u); // recordHop is a no-op
    EXPECT_TRUE(admit(9, PptHop::Promote, 0));
    EXPECT_EQ(denials(), 0u);
    EXPECT_EQ(vm.get(Vm::PptEscalated), 0u);
    EXPECT_EQ(vm.get(Vm::PptHistoryEvict), 0u);
}

TEST_F(PptUnit, EscalationDoublesCooldownUpToTheCeiling)
{
    // cooldown 10 ms, threshold 2 flips, ceiling 80 ms. Hops are spaced
    // far apart so each one is a *completed* flip, as the engine only
    // records successes.
    Tick t = 0;
    const Tick step = kSecond;

    record(5, PptHop::Demote, t += step);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 10 * kMillisecond);

    // Flip 1: below the threshold, no escalation yet.
    record(5, PptHop::Promote, t += step);
    EXPECT_EQ(ppt->flipsFor(kAsid, 5), 1u);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 10 * kMillisecond);
    EXPECT_EQ(vm.get(Vm::PptEscalated), 0u);

    // Flips 2..4: each doubles the window — 20, 40, 80 ms.
    record(5, PptHop::Demote, t += step);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 20 * kMillisecond);
    record(5, PptHop::Promote, t += step);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 40 * kMillisecond);
    record(5, PptHop::Demote, t += step);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 80 * kMillisecond);
    EXPECT_EQ(vm.get(Vm::PptEscalated), 3u);

    // At the ceiling further flips saturate: no more escalations.
    record(5, PptHop::Promote, t += step);
    record(5, PptHop::Demote, t += step);
    EXPECT_EQ(ppt->cooldownNsFor(kAsid, 5), 80 * kMillisecond);
    EXPECT_EQ(vm.get(Vm::PptEscalated), 3u);
    EXPECT_EQ(ppt->flipsFor(kAsid, 5), 6u);

    // The escalated window really is enforced end to end.
    record(5, PptHop::Promote, t += step);
    EXPECT_FALSE(admit(5, PptHop::Demote, t + 79 * kMillisecond));
    EXPECT_TRUE(admit(5, PptHop::Demote, t + 80 * kMillisecond));
}

TEST_F(PptUnit, HistoryEvictsLeastRecentPageAtCapacity)
{
    PptConfig cfg = defaultConfig();
    cfg.historyPages = 4;
    make(cfg);

    Tick t = 0;
    for (Vpn v = 0; v < 4; ++v)
        record(v, PptHop::Demote, t += kMillisecond);
    EXPECT_EQ(ppt->trackedPages(), 4u);
    EXPECT_EQ(vm.get(Vm::PptHistoryEvict), 0u);

    // A fifth page evicts the coldest (vpn 0).
    record(4, PptHop::Demote, t += kMillisecond);
    EXPECT_EQ(ppt->trackedPages(), 4u);
    EXPECT_FALSE(ppt->tracks(kAsid, 0));
    EXPECT_TRUE(ppt->tracks(kAsid, 4));
    EXPECT_EQ(vm.get(Vm::PptHistoryEvict), 1u);

    // Touching vpn 1 refreshes it, so the next eviction takes vpn 2.
    record(1, PptHop::Demote, t += kMillisecond);
    record(5, PptHop::Demote, t += kMillisecond);
    EXPECT_TRUE(ppt->tracks(kAsid, 1));
    EXPECT_FALSE(ppt->tracks(kAsid, 2));
    EXPECT_EQ(vm.get(Vm::PptHistoryEvict), 2u);
}

TEST_F(PptUnit, DenialKeepsTheOffenderResidentInTheLru)
{
    PptConfig cfg = defaultConfig();
    cfg.historyPages = 2;
    cfg.cooldownMs = 50;
    make(cfg);

    record(0, PptHop::Demote, 1 * kMillisecond);
    record(1, PptHop::Demote, 2 * kMillisecond);

    // Denying vpn 0 marks it recently-used: the table must not forget
    // the very page it is actively throttling.
    EXPECT_FALSE(admit(0, PptHop::Promote, 3 * kMillisecond));
    record(2, PptHop::Demote, 4 * kMillisecond);
    EXPECT_TRUE(ppt->tracks(kAsid, 0));
    EXPECT_FALSE(ppt->tracks(kAsid, 1));
}

TEST_F(PptUnit, ClearForgetsHistoryButNotCountersOrConfig)
{
    record(3, PptHop::Demote, 1 * kMillisecond);
    EXPECT_FALSE(admit(3, PptHop::Promote, 2 * kMillisecond));
    ppt->clear();
    EXPECT_EQ(ppt->trackedPages(), 0u);
    EXPECT_TRUE(admit(3, PptHop::Promote, 2 * kMillisecond));
    EXPECT_EQ(vm.get(Vm::PptThrottledPromote), 1u); // survives clear
    EXPECT_TRUE(ppt->enabled());
}

TEST_F(PptUnit, SysctlValidationRanges)
{
    make(PptConfig{}); // stock defaults: 1000/16384/2/16000, disabled
    SysctlRegistry sysctl;
    ppt->registerSysctls(sysctl);

    // enable is a strict bool.
    EXPECT_FALSE(sysctl.set("vm.ppt.enable", "2"));
    EXPECT_FALSE(sysctl.set("vm.ppt.enable", "yes"));
    EXPECT_TRUE(sysctl.set("vm.ppt.enable", "1"));
    EXPECT_EQ(sysctl.get("vm.ppt.enable"), "1");

    // cooldown_ms: integer in [1, min(2^20, max_cooldown_ms)].
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "0"));
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "-5"));
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "abc"));
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "16001")); // > max
    EXPECT_TRUE(sysctl.set("vm.ppt.cooldown_ms", "16000"));  // == max
    EXPECT_EQ(sysctl.get("vm.ppt.cooldown_ms"), "16000");

    // max_cooldown_ms can never dip below cooldown_ms and both share
    // the 2^20 ms knob ceiling.
    EXPECT_FALSE(sysctl.set("vm.ppt.max_cooldown_ms", "15999"));
    EXPECT_TRUE(sysctl.set("vm.ppt.cooldown_ms", "500"));
    EXPECT_TRUE(sysctl.set("vm.ppt.max_cooldown_ms", "1000"));
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "1001"));
    EXPECT_FALSE(sysctl.set("vm.ppt.max_cooldown_ms", "1048577"));
    EXPECT_FALSE(sysctl.set("vm.ppt.cooldown_ms", "1048577"));

    // history_pages: [1, 2^24]; repeat_threshold: >= 1.
    EXPECT_FALSE(sysctl.set("vm.ppt.history_pages", "0"));
    EXPECT_FALSE(sysctl.set("vm.ppt.history_pages", "16777217"));
    EXPECT_TRUE(sysctl.set("vm.ppt.history_pages", "1"));
    EXPECT_FALSE(sysctl.set("vm.ppt.repeat_threshold", "0"));
    EXPECT_TRUE(sysctl.set("vm.ppt.repeat_threshold", "1"));
}

TEST_F(PptUnit, LiveHistoryShrinkEvictsColdestFirst)
{
    SysctlRegistry sysctl;
    ppt->registerSysctls(sysctl);

    Tick t = 0;
    for (Vpn v = 0; v < 8; ++v)
        record(v, PptHop::Demote, t += kMillisecond);
    EXPECT_EQ(ppt->trackedPages(), 8u);

    // Shrinking the table live trims LRU-first down to the new cap.
    EXPECT_TRUE(sysctl.set("vm.ppt.history_pages", "3"));
    EXPECT_EQ(ppt->trackedPages(), 3u);
    EXPECT_EQ(vm.get(Vm::PptHistoryEvict), 5u);
    for (Vpn v = 0; v < 5; ++v)
        EXPECT_FALSE(ppt->tracks(kAsid, v)) << v;
    for (Vpn v = 5; v < 8; ++v)
        EXPECT_TRUE(ppt->tracks(kAsid, v)) << v;
}

// ---- golden-fingerprint pins ---------------------------------------

/** Hash of every vmstat counter, matching test_shard.cc. */
std::uint64_t
vmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumVmCounters; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

/** Hash of the pre-engine seed counters, matching
 *  test_migration_compat.cc. */
std::uint64_t
seedVmHash(const VmStat &vmstat)
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < 35; ++i)
        sum = sum * 1000003u + vmstat.get(static_cast<Vm>(i));
    return sum;
}

void
expectPptSilent(const VmStat &vmstat, const char *tag)
{
    EXPECT_EQ(vmstat.get(Vm::PptThrottledPromote), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::PptThrottledDemote), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::PptEscalated), 0u) << tag;
    EXPECT_EQ(vmstat.get(Vm::PptHistoryEvict), 0u) << tag;
}

TEST(PptGolden, ExplicitOffReproducesGoldenFingerprints)
{
    // The same pre-engine constants test_migration_compat.cc pins
    // (fig15_web_tpp and fig16_cache1_linux): setting vm.ppt.enable to
    // its default must be invisible down to the last bit.
    struct Pin {
        const char *tag;
        const char *workload;
        const char *policy;
        double localFraction;
        double throughput;
        double meanLatencyNs;
        std::uint64_t vmsum;
    };
    const Pin pins[] = {
        {"fig15_web_tpp", "web", "tpp", 2.0 / 3.0,
         785205.14820370195, 84.197993223045387, 7071264301307134540ull},
        {"fig16_cache1_linux", "cache1", "linux", 0.2,
         779422.65009620448, 120.50352733415521, 16959053233026845536ull},
    };

    for (const Pin &p : pins) {
        ExperimentConfig cfg;
        cfg.workload = p.workload;
        cfg.policy = p.policy;
        cfg.localFraction = p.localFraction;
        cfg.wssPages = 8192;
        cfg.runUntil = 10 * kSecond;
        cfg.measureFrom = 6 * kSecond;
        cfg.seed = 1;
        cfg.migration = MigrationConfig::compat();
        cfg.sysctls.emplace_back("vm.ppt.enable", "0");
        const ExperimentResult r = runExperiment(cfg);
        EXPECT_EQ(r.throughput, p.throughput) << p.tag;
        EXPECT_EQ(r.meanAccessLatencyNs, p.meanLatencyNs) << p.tag;
        EXPECT_EQ(seedVmHash(r.vmstat), p.vmsum) << p.tag;
        expectPptSilent(r.vmstat, p.tag);
    }
}

/** cache1 at test scale; the tag-selected policy is the only knob. */
ExperimentConfig
offConfig(const char *policy)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1";
    cfg.policy = policy;
    cfg.wssPages = 8192;
    cfg.runUntil = 4 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.seed = 7;
    cfg.migration = MigrationConfig::asyncEngine();
    return cfg;
}

class PptDefaultOff : public ::testing::TestWithParam<const char *> {};

TEST_P(PptDefaultOff, PlainRunMatchesExplicitOffBitForBit)
{
    // A config that never heard of PPT and one that pins the default
    // must be indistinguishable, async engine included.
    const char *policy = GetParam();
    const ExperimentResult plain = runExperiment(offConfig(policy));

    ExperimentConfig pinned = offConfig(policy);
    pinned.sysctls.emplace_back("vm.ppt.enable", "0");
    const ExperimentResult off = runExperiment(pinned);

    EXPECT_EQ(plain.throughput, off.throughput) << policy;
    EXPECT_EQ(plain.meanAccessLatencyNs, off.meanAccessLatencyNs)
        << policy;
    EXPECT_EQ(vmHash(plain.vmstat), vmHash(off.vmstat)) << policy;
    expectPptSilent(plain.vmstat, policy);
    expectPptSilent(off.vmstat, policy);
}

INSTANTIATE_TEST_SUITE_P(Golden, PptDefaultOff,
                         ::testing::Values("tpp", "linux", "hotness"),
                         [](const auto &info) {
                             return std::string(info.param);
                         });

TEST(PptGolden, ShardedRunIsUnchangedByExplicitOff)
{
    // The invariance must survive the shard engine too: 4 regions, 4
    // workers, plain vs pinned-off, every counter identical.
    ExperimentConfig base = offConfig("tpp");
    base.migration = MigrationConfig::compat();
    base.shards = 4;
    base.shardRegions = 4;
    const ExperimentResult plain = runExperiment(base);

    ExperimentConfig pinned = base;
    pinned.sysctls.emplace_back("vm.ppt.enable", "0");
    const ExperimentResult off = runExperiment(pinned);

    EXPECT_EQ(plain.shard.regions, 4u);
    EXPECT_EQ(plain.throughput, off.throughput);
    EXPECT_EQ(plain.meanAccessLatencyNs, off.meanAccessLatencyNs);
    EXPECT_EQ(vmHash(plain.vmstat), vmHash(off.vmstat));
    expectPptSilent(plain.vmstat, "sharded");
    expectPptSilent(off.vmstat, "sharded");
}

TEST(PptEndToEnd, ThrottleEngagesAndCutsMigrationOnChurn)
{
    // The ablation_ppt headline at test scale: on the oversubscribed
    // 1:4 cache1 machine the throttle must actually fire and must move
    // strictly fewer pages than the unthrottled twin.
    auto churn = [](bool enable) {
        ExperimentConfig cfg = offConfig("tpp");
        cfg.localFraction = 0.2;
        cfg.runUntil = 3 * kSecond;
        cfg.measureFrom = 1 * kSecond;
        cfg.seed = 1;
        cfg.migration = MigrationConfig::asyncEngine();
        cfg.sysctls.emplace_back("vm.ppt.enable", enable ? "1" : "0");
        if (enable)
            cfg.sysctls.emplace_back("vm.ppt.cooldown_ms", "500");
        return runExperiment(cfg);
    };

    const ExperimentResult off = churn(false);
    const ExperimentResult on = churn(true);

    const std::uint64_t denied =
        on.vmstat.get(Vm::PptThrottledPromote) +
        on.vmstat.get(Vm::PptThrottledDemote);
    EXPECT_GT(denied, 0u);
    EXPECT_LT(on.vmstat.get(Vm::PgMigrateSuccess),
              off.vmstat.get(Vm::PgMigrateSuccess));
    expectPptSilent(off.vmstat, "off arm");
}

} // namespace
} // namespace tpp
