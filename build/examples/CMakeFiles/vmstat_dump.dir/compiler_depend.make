# Empty compiler generated dependencies file for vmstat_dump.
# This may be replaced when dependencies are built.
