/**
 * @file
 * Unit and property tests for the sampling distributions.
 */

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/distributions.hh"
#include "sim/rng.hh"

namespace tpp {
namespace {

TEST(Zipf, StaysInRange)
{
    Rng rng(1);
    ZipfDistribution zipf(100, 0.99);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(zipf(rng), 100u);
}

TEST(Zipf, SingleElement)
{
    Rng rng(2);
    ZipfDistribution zipf(1, 0.99);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(zipf(rng), 0u);
}

TEST(Zipf, RankZeroMostPopular)
{
    Rng rng(3);
    ZipfDistribution zipf(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        counts[zipf(rng)]++;
    EXPECT_GT(counts[0], counts[1]);
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[1], counts[100]);
}

TEST(Zipf, FrequencyMatchesTheory)
{
    Rng rng(4);
    const double theta = 0.99;
    ZipfDistribution zipf(1000, theta);
    std::vector<int> counts(1000, 0);
    const int n = 500000;
    for (int i = 0; i < n; ++i)
        counts[zipf(rng)]++;
    // P(0)/P(9) should be close to 10^theta.
    const double expected = std::pow(10.0, theta);
    const double observed =
        static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
    EXPECT_NEAR(observed, expected, expected * 0.15);
}

TEST(Zipf, ZeroThetaIsUniform)
{
    Rng rng(5);
    ZipfDistribution zipf(16, 0.0);
    std::vector<int> counts(16, 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i)
        counts[zipf(rng)]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 16, n / 16 * 0.1);
}

/** Property sweep: every (n, theta) combination stays in range and
 *  keeps rank-0 the mode. */
class ZipfSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(ZipfSweep, RangeAndMode)
{
    const auto [n, theta] = GetParam();
    Rng rng(n * 31 + static_cast<std::uint64_t>(theta * 100));
    ZipfDistribution zipf(n, theta);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t v = zipf(rng);
        ASSERT_LT(v, n);
        counts[v]++;
    }
    if (theta > 0.3 && n > 4) {
        // Rank 0 must be sampled at least as often as any deep rank.
        int deep_max = 0;
        for (const auto &[rank, c] : counts) {
            if (rank >= n / 2)
                deep_max = std::max(deep_max, c);
        }
        EXPECT_GE(counts[0], deep_max);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZipfSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(2, 16, 1024,
                                                        1048576),
                       ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.2)));

TEST(Exponential, MeanConverges)
{
    Rng rng(6);
    ExponentialDistribution exp_dist(42.0);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += exp_dist(rng);
    EXPECT_NEAR(sum / n, 42.0, 1.0);
}

TEST(Exponential, AlwaysPositive)
{
    Rng rng(7);
    ExponentialDistribution exp_dist(1.0);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(exp_dist(rng), 0.0);
}

TEST(BoundedPareto, StaysInBounds)
{
    Rng rng(8);
    BoundedParetoDistribution pareto(1.0, 100.0, 1.5);
    for (int i = 0; i < 20000; ++i) {
        const double v = pareto(rng);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0 + 1e-9);
    }
}

TEST(BoundedPareto, HeavyTailSkewsLow)
{
    Rng rng(9);
    BoundedParetoDistribution pareto(1.0, 1000.0, 2.0);
    int low = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (pareto(rng) < 10.0)
            low++;
    }
    // With alpha=2 the vast majority of mass sits near the low bound.
    EXPECT_GT(low, n * 9 / 10);
}

} // namespace
} // namespace tpp
