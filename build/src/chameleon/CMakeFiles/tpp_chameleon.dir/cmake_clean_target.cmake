file(REMOVE_RECURSE
  "libtpp_chameleon.a"
)
