/**
 * @file
 * YCSB-style key-value workload generator.
 *
 * Not one of the paper's workloads, but the lingua franca for tiered-
 * memory studies: a keyspace of records (pages), a request distribution
 * (zipfian / uniform / latest), and a read/update/insert mix. Useful to
 * library users evaluating placement policies on cache/KV shapes beyond
 * the four Meta profiles.
 */

#ifndef TPP_WORKLOADS_YCSB_HH
#define TPP_WORKLOADS_YCSB_HH

#include <cstdint>
#include <optional>
#include <string>

#include "sim/distributions.hh"
#include "sim/rng.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace tpp {

/** Request-key distribution. */
enum class YcsbDistribution : std::uint8_t {
    Zipfian, //!< rank-skewed over the whole keyspace
    Uniform,
    Latest,  //!< skewed towards recently inserted records
};

/** Workload mix, YCSB-letter style. */
struct YcsbConfig {
    std::uint64_t recordPages = 65536; //!< keyspace size in pages
    double readShare = 0.95;           //!< rest are updates
    double insertShare = 0.0;          //!< inserts extend the keyspace
    YcsbDistribution distribution = YcsbDistribution::Zipfian;
    double zipfTheta = 0.99;
    std::uint64_t opsPerBatch = 2000;
    double thinkTimePerOpNs = 600.0;
    std::uint32_t pagesPerOp = 2; //!< index page + record page, say
    std::uint64_t seed = 7;

    /** Canned mixes. */
    static YcsbConfig workloadA(std::uint64_t record_pages); //!< 50/50
    static YcsbConfig workloadB(std::uint64_t record_pages); //!< 95/5
    static YcsbConfig workloadC(std::uint64_t record_pages); //!< read-only
    static YcsbConfig workloadD(std::uint64_t record_pages); //!< latest
};

/**
 * The generator.
 */
class YcsbWorkload : public Workload
{
  public:
    explicit YcsbWorkload(YcsbConfig cfg);

    std::string name() const override { return "ycsb"; }

    void init(Kernel &kernel) override;
    BatchResult runBatch(Kernel &kernel) override;
    BatchResult runOps(Kernel &kernel, std::uint64_t ops) override;

    Asid asid() const { return asid_; }
    std::uint64_t populatedRecords() const { return populated_; }

  private:
    Vpn sampleKey();

    YcsbConfig cfg_;
    ThinkTimeModel think_;
    Rng rng_;
    Asid asid_ = 0;
    Vpn base_ = 0;
    std::uint64_t capacity_ = 0;  //!< reserved keyspace (with insert room)
    std::uint64_t populated_ = 0; //!< records that exist
    std::optional<ZipfDistribution> zipf_;
    std::uint64_t zipfDomain_ = 0;
};

} // namespace tpp

#endif // TPP_WORKLOADS_YCSB_HH
