file(REMOVE_RECURSE
  "CMakeFiles/chameleon_profile.dir/chameleon_profile.cpp.o"
  "CMakeFiles/chameleon_profile.dir/chameleon_profile.cpp.o.d"
  "chameleon_profile"
  "chameleon_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chameleon_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
