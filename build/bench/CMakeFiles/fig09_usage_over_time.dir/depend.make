# Empty dependencies file for fig09_usage_over_time.
# This may be replaced when dependencies are built.
