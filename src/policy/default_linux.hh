/**
 * @file
 * The default Linux kernel baseline (§4): local-first allocation with
 * zonelist fallback, swap-based reclaim coupled to the allocation
 * watermarks, and no NUMA-hint sampling or promotion whatsoever. Pages
 * that land on the CXL node stay there forever.
 *
 * This is exactly the PlacementPolicy base-class behaviour, wrapped in
 * a concrete named type.
 */

#ifndef TPP_POLICY_DEFAULT_LINUX_HH
#define TPP_POLICY_DEFAULT_LINUX_HH

#include "mm/placement_policy.hh"

namespace tpp {

/** Default Linux page placement: the paper's primary baseline. */
class DefaultLinuxPolicy : public PlacementPolicy
{
  public:
    std::string name() const override { return "linux"; }
};

} // namespace tpp

#endif // TPP_POLICY_DEFAULT_LINUX_HH
