# Empty compiler generated dependencies file for table1_type_aware_alloc.
# This may be replaced when dependencies are built.
