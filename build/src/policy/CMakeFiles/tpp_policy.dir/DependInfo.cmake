
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/autotiering.cc" "src/policy/CMakeFiles/tpp_policy.dir/autotiering.cc.o" "gcc" "src/policy/CMakeFiles/tpp_policy.dir/autotiering.cc.o.d"
  "/root/repo/src/policy/damon_reclaim.cc" "src/policy/CMakeFiles/tpp_policy.dir/damon_reclaim.cc.o" "gcc" "src/policy/CMakeFiles/tpp_policy.dir/damon_reclaim.cc.o.d"
  "/root/repo/src/policy/numa_balancing.cc" "src/policy/CMakeFiles/tpp_policy.dir/numa_balancing.cc.o" "gcc" "src/policy/CMakeFiles/tpp_policy.dir/numa_balancing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/tpp_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/tpp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tpp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
