/**
 * @file
 * Tests for the YCSB workload generator and the meminfo reporting.
 */

#include "mm/meminfo.hh"
#include "test_common.hh"
#include "workloads/ycsb.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(Ycsb, CannedMixes)
{
    EXPECT_DOUBLE_EQ(YcsbConfig::workloadA(100).readShare, 0.5);
    EXPECT_DOUBLE_EQ(YcsbConfig::workloadB(100).readShare, 0.95);
    EXPECT_DOUBLE_EQ(YcsbConfig::workloadC(100).readShare, 1.0);
    EXPECT_EQ(YcsbConfig::workloadD(100).distribution,
              YcsbDistribution::Latest);
}

TEST(Ycsb, BatchIssuesOps)
{
    TestMachine m(4096, 4096);
    YcsbConfig cfg = YcsbConfig::workloadB(512);
    cfg.opsPerBatch = 100;
    YcsbWorkload wl(cfg);
    wl.init(m.kernel);
    const BatchResult res = wl.runBatch(m.kernel);
    EXPECT_EQ(res.ops, 100u);
    EXPECT_EQ(res.accesses, 200u); // pagesPerOp = 2
    EXPECT_GT(res.durationNs, 0.0);
}

TEST(Ycsb, ReadOnlyMixNeverDirties)
{
    TestMachine m(4096, 4096);
    YcsbConfig cfg = YcsbConfig::workloadC(256);
    cfg.opsPerBatch = 500;
    YcsbWorkload wl(cfg);
    wl.init(m.kernel);
    wl.runBatch(m.kernel);
    // Anon pages are born dirty; reads never touch more state. Mostly a
    // smoke check that the mix plumbing works and nothing faults oddly.
    EXPECT_GT(m.kernel.vmstat().get(Vm::PgFault), 0u);
}

TEST(Ycsb, ZipfSkewsTraffic)
{
    // Same op budget, zipfian vs uniform: the skewed mix must touch
    // fewer distinct pages.
    auto distinct = [](YcsbDistribution dist) {
        TestMachine m(8192, 8192);
        YcsbConfig cfg = YcsbConfig::workloadC(2048);
        cfg.opsPerBatch = 2000;
        cfg.pagesPerOp = 1;
        cfg.distribution = dist;
        YcsbWorkload wl(cfg);
        wl.init(m.kernel);
        wl.runBatch(m.kernel);
        return m.kernel.addressSpace(wl.asid()).residentPages();
    };
    EXPECT_LT(distinct(YcsbDistribution::Zipfian),
              distinct(YcsbDistribution::Uniform));
}

TEST(Ycsb, InsertsGrowKeyspace)
{
    TestMachine m(4096, 4096);
    YcsbConfig cfg = YcsbConfig::workloadD(256);
    cfg.opsPerBatch = 2000;
    YcsbWorkload wl(cfg);
    wl.init(m.kernel);
    const std::uint64_t before = wl.populatedRecords();
    wl.runBatch(m.kernel);
    EXPECT_GT(wl.populatedRecords(), before);
}

TEST(Ycsb, DeterministicReplay)
{
    TestMachine m1(4096, 4096), m2(4096, 4096);
    YcsbWorkload a(YcsbConfig::workloadA(512));
    YcsbWorkload b(YcsbConfig::workloadA(512));
    a.init(m1.kernel);
    b.init(m2.kernel);
    for (int i = 0; i < 3; ++i) {
        const BatchResult ra = a.runBatch(m1.kernel);
        const BatchResult rb = b.runBatch(m2.kernel);
        EXPECT_DOUBLE_EQ(ra.durationNs, rb.durationNs);
    }
}

TEST(YcsbDeathTest, BadMixIsFatal)
{
    setLogVerbose(false);
    YcsbConfig cfg;
    cfg.readShare = 0.9;
    cfg.insertShare = 0.2;
    EXPECT_DEATH({ YcsbWorkload wl(cfg); }, "mix");
}

TEST(MemInfo, SnapshotMatchesState)
{
    TestMachine m(1024, 512);
    m.populate(100, PageType::Anon);
    const MemInfo info = collectMemInfo(m.kernel);
    ASSERT_EQ(info.nodes.size(), 2u);
    EXPECT_EQ(info.totalPages, 1536u);
    EXPECT_EQ(info.totalFree, 1536u - 100u);
    EXPECT_EQ(info.totalUsed(), 100u);
    EXPECT_EQ(info.nodes[0].capacityPages, 1024u);
    EXPECT_EQ(info.nodes[0].inactiveAnon, 100u);
    EXPECT_FALSE(info.nodes[0].cpuLess);
    EXPECT_TRUE(info.nodes[1].cpuLess);
    EXPECT_EQ(info.nodes[0].lruTotal(), 100u);
    EXPECT_EQ(info.swapUsedSlots, 0u);
}

TEST(MemInfo, WatermarksReported)
{
    TestMachine m(10000, 10000);
    const MemInfo info = collectMemInfo(m.kernel);
    const NodeMemInfo &n = info.nodes[0];
    EXPECT_EQ(n.min, m.mem.node(0).watermarks().min);
    EXPECT_LT(n.min, n.low);
    EXPECT_LT(n.low, n.high);
    EXPECT_LT(n.high, n.demoteTrigger);
}

TEST(MemInfo, RenderContainsKeyLines)
{
    TestMachine m(1024, 512);
    m.populate(10, PageType::File);
    const std::string text = renderMemInfo(collectMemInfo(m.kernel));
    EXPECT_NE(text.find("MemTotal:  1536 pages"), std::string::npos);
    EXPECT_NE(text.find("Node 0"), std::string::npos);
    EXPECT_NE(text.find("inactive_file  10"), std::string::npos);
}

} // namespace
} // namespace tpp
