/**
 * @file
 * Chameleon: the user-space memory characterisation tool of §3.
 *
 * The real tool rides the CPU's PEBS machinery; here the "hardware
 * events" are the simulated access stream. The structure mirrors the
 * paper's Figure 6:
 *
 *  - the Sampler models PEBS: it sees every access, emits one record
 *    every `samplePeriod` events, and duty-cycles across core groups
 *    (sampling is only live for one group's time slice at a time);
 *  - the Collector double-buffers sampled records into one of two hash
 *    tables, swapping them every interval;
 *  - the Worker turns the retired table into per-page 64-bit activity
 *    bitmaps and produces the interval statistics behind Figures 7-11:
 *    touched pages by type, resident pages by type, and the re-access
 *    gap histogram.
 */

#ifndef TPP_CHAMELEON_CHAMELEON_HH
#define TPP_CHAMELEON_CHAMELEON_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "workloads/workload.hh"

namespace tpp {

class Kernel;

/** Chameleon tunables (defaults follow §3.1). */
struct ChameleonConfig {
    /** One sample per this many access events ("1 in 200"). */
    std::uint64_t samplePeriod = 200;
    /** Core groups for duty cycling; sampling live 1/N of the time. */
    std::uint32_t numCoreGroups = 4;
    /** mini_interval: how long one core group stays live. */
    Tick miniInterval = 50 * kMillisecond;
    /** Worker interval: bitmap shift + statistics cadence. */
    Tick interval = 1 * kSecond;
    /** Disable duty cycling (sample all the time) for tests. */
    bool dutyCycle = true;
    /**
     * Bits of the 64-bit activity word spent per interval (§3.1: "one
     * can configure the Worker to use multiple bits for one interval to
     * capture the difference in page access frequency, at the cost of
     * supporting shorter history"). With b bits the per-interval sample
     * count saturates at 2^b - 1 and history covers 64/b intervals.
     */
    std::uint32_t bitsPerInterval = 1;
    /** Sample count for a page to count as "frequent" in an interval. */
    std::uint32_t frequentThreshold = 2;
};

/** One tracked page's folded activity word (Worker state). */
struct ChameleonPageActivity {
    Asid asid = 0;
    Vpn vpn = 0;
    /** Per-interval sample counts packed at bitsPerInterval each,
     *  most recent interval in the lowest field. */
    std::uint64_t bitmap = 0;
    PageType type = PageType::Anon;
};

/** Per-interval statistics produced by the Worker. */
struct ChameleonIntervalStats {
    Tick tick = 0;
    /** Distinct pages with >= 1 sample this interval, by type. */
    std::uint64_t touchedByType[kNumPageTypes] = {0, 0};
    std::uint64_t touchedTotal = 0;
    /** Pages sampled >= frequentThreshold times (multi-bit mode). */
    std::uint64_t frequentTotal = 0;
    /** Resident (present) pages of the observed process, by type. */
    std::uint64_t residentByType[kNumPageTypes] = {0, 0};
    std::uint64_t residentTotal = 0;
    /**
     * Re-access gap histogram: entry g counts pages touched this
     * interval whose previous touch was g intervals ago (g in [1, 63]).
     */
    std::array<std::uint64_t, 64> reaccessGap{};
};

/**
 * The profiler facade: attach its observer() to a workload, start() it,
 * and read interval statistics afterwards.
 */
class Chameleon
{
  public:
    Chameleon(Kernel &kernel, ChameleonConfig cfg = {});

    /** Observer to install on the workload under study. */
    AccessObserver observer();

    /** Schedule the interval timer; call once. */
    void start();

    const std::vector<ChameleonIntervalStats> &intervals() const
    {
        return intervals_;
    }

    /** Mean touched/resident fraction over all intervals, by type. */
    double meanHotFraction(PageType type) const;

    /** Mean touched/resident over all intervals, all types. */
    double meanHotFraction() const;

    /**
     * Re-access CDF over the whole run: fraction of re-accessed pages
     * whose gap was <= `max_gap` intervals.
     */
    double reaccessCdf(std::uint32_t max_gap) const;

    /** Total samples the collector accepted (for overhead accounting). */
    std::uint64_t totalSamples() const { return totalSamples_; }

    /** Total access events seen by the sampler. */
    std::uint64_t totalEvents() const { return totalEvents_; }

    /** Intervals of history one activity word covers. */
    std::uint32_t
    historyIntervals() const
    {
        return 64 / cfg_.bitsPerInterval;
    }

    const ChameleonConfig &config() const { return cfg_; }

    /** Folded activity word for one page; 0 when untracked. */
    std::uint64_t activityWord(Asid asid, Vpn vpn) const;

    /**
     * Snapshot of every tracked page's activity word, sorted by
     * (asid, vpn) so consumers iterate deterministically. This is the
     * Worker-state export a hotness source reads (src/hotness).
     */
    std::vector<ChameleonPageActivity> activitySnapshot() const;

  private:
    struct PageHistory {
        std::uint64_t bitmap = 0;
        PageType type = PageType::Anon;
    };

    void onAccess(const AccessRecord &record);
    void intervalTick();
    bool samplingLive(Tick tick) const;

    Kernel &kernel_;
    ChameleonConfig cfg_;

    // Sampler state.
    std::uint64_t eventCounter_ = 0;
    std::uint64_t totalEvents_ = 0;
    std::uint64_t totalSamples_ = 0;

    // Collector: double-buffered (asid<<48|vpn) -> sample count.
    std::unordered_map<std::uint64_t, std::uint32_t> tables_[2];
    std::uint32_t currentTable_ = 0;

    // Worker state.
    std::unordered_map<std::uint64_t, PageHistory> history_;
    std::vector<ChameleonIntervalStats> intervals_;
};

} // namespace tpp

#endif // TPP_CHAMELEON_CHAMELEON_HH
