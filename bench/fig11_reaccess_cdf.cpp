/**
 * @file
 * Figure 11: cold-page re-access time CDF.
 *
 * All-local Chameleon runs reporting the fraction of re-accessed pages
 * whose cold gap was at most k intervals (one interval stands in for
 * the paper's two minutes).
 *
 * Paper shape: Web and the Cache tiers re-access ~80 % of cold pages
 * within ten minutes (5 intervals); Data Warehouse pages are mostly
 * newly allocated, so its re-access fraction stays low.
 */

#include <array>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    bench::banner("Figure 11", "re-access gap CDF (all-local, Chameleon)");

    TextTable table({"workload", "<=1 iv", "<=2 iv", "<=5 iv", "<=10 iv",
                     "re-accesses/interval"});

    std::vector<ExperimentConfig> cfgs;
    for (const char *wl : {"web", "cache1", "cache2", "dwh"}) {
        ExperimentConfig cfg = bench::makeConfig(opt);
        cfg.workload = wl;
        cfg.allLocal = true;
        cfg.policy = "linux";
        cfg.withChameleon = true;
        cfgs.push_back(cfg);
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);

    for (std::size_t w = 0; w < cfgs.size(); ++w) {
        const ExperimentResult &res = results[w];

        std::uint64_t total = 0;
        std::array<std::uint64_t, 64> gaps{};
        for (const auto &iv : res.chameleonIntervals) {
            for (std::size_t g = 1; g < iv.reaccessGap.size(); ++g) {
                gaps[g] += iv.reaccessGap[g];
                total += iv.reaccessGap[g];
            }
        }
        auto cdf = [&](std::size_t max_gap) {
            if (total == 0)
                return 0.0;
            std::uint64_t within = 0;
            for (std::size_t g = 1; g <= max_gap && g < gaps.size(); ++g)
                within += gaps[g];
            return static_cast<double>(within) /
                   static_cast<double>(total);
        };
        const double per_interval =
            res.chameleonIntervals.empty()
                ? 0.0
                : static_cast<double>(total) /
                      static_cast<double>(res.chameleonIntervals.size());
        table.addRow({cfgs[w].workload, TextTable::pct(cdf(1)),
                      TextTable::pct(cdf(2)), TextTable::pct(cdf(5)),
                      TextTable::pct(cdf(10)),
                      TextTable::num(per_interval, 0)});
    }
    table.print();
    std::printf("\npaper: Web/Cache ~80%% re-accessed within 10 min "
                "(5 intervals); DWH mostly new allocations\n");
    bench::maybeWriteCsv(opt, results);
    bench::maybeWriteTrace(opt, results);
    return 0;
}
