/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace tpp {
namespace {

TEST(Distribution, BasicMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minValue(), 1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 4.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.percentile(50), 0.0);
}

TEST(Distribution, PercentilesOnSmallSet)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(95), 95.0);
    EXPECT_DOUBLE_EQ(d.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(0), 1.0);
    // Out-of-range percentiles clamp.
    EXPECT_DOUBLE_EQ(d.percentile(-5), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(200), 100.0);
}

TEST(Distribution, ReservoirCapsRetention)
{
    Distribution d(16);
    for (int i = 0; i < 10000; ++i)
        d.sample(i);
    EXPECT_EQ(d.count(), 10000u);
    // Percentiles still work off the reservoir.
    EXPECT_GT(d.percentile(50), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.maxValue(), 0.0);
}

TEST(Distribution, NegativeValues)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(-1.0);
    EXPECT_DOUBLE_EQ(d.minValue(), -3.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), -1.0);
    EXPECT_DOUBLE_EQ(d.mean(), -2.0);
}

TEST(TimeSeries, MeanMaxPercentile)
{
    TimeSeries ts;
    for (int i = 1; i <= 10; ++i)
        ts.record(i * 100, i);
    EXPECT_DOUBLE_EQ(ts.meanValue(), 5.5);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 10.0);
    EXPECT_DOUBLE_EQ(ts.percentile(50), 5.0);
    EXPECT_DOUBLE_EQ(ts.percentile(100), 10.0);
    EXPECT_EQ(ts.size(), 10u);
}

TEST(TimeSeries, EmptyBehaviour)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    EXPECT_DOUBLE_EQ(ts.meanValue(), 0.0);
    EXPECT_DOUBLE_EQ(ts.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(ts.percentile(99), 0.0);
}

TEST(TimeSeries, ClearEmpties)
{
    TimeSeries ts;
    ts.record(1, 1.0);
    ts.clear();
    EXPECT_TRUE(ts.empty());
}

TEST(RateMeter, FirstSampleIsZero)
{
    RateMeter meter;
    EXPECT_DOUBLE_EQ(meter.update(kSecond, 100.0), 0.0);
}

TEST(RateMeter, ComputesPerSecondRate)
{
    RateMeter meter;
    meter.update(0, 0.0);
    EXPECT_DOUBLE_EQ(meter.update(kSecond, 500.0), 500.0);
    EXPECT_DOUBLE_EQ(meter.update(3 * kSecond, 1500.0), 500.0);
}

TEST(RateMeter, NonAdvancingTickYieldsZero)
{
    RateMeter meter;
    meter.update(kSecond, 10.0);
    EXPECT_DOUBLE_EQ(meter.update(kSecond, 20.0), 0.0);
}

TEST(RateMeter, ResetForgetsHistory)
{
    RateMeter meter;
    meter.update(kSecond, 10.0);
    meter.reset();
    EXPECT_DOUBLE_EQ(meter.update(2 * kSecond, 100.0), 0.0);
}

} // namespace
} // namespace tpp
