/**
 * @file
 * The machine's physical memory: the global frame table, the set of
 * memory nodes (local DRAM and CXL expansion), the inter-node distance
 * matrix, the latency model, and the swap device.
 *
 * Canned topologies for the paper's configurations (2:1, 1:4, all-local)
 * are provided by TopologyBuilder.
 */

#ifndef TPP_MEM_MEMORY_SYSTEM_HH
#define TPP_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/latency.hh"
#include "mem/node.hh"
#include "mem/page.hh"
#include "mem/swap_device.hh"
#include "mem/tier_hierarchy.hh"
#include "sim/arena.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tpp {

/** Configuration of one node in a topology. */
struct NodeConfig {
    std::uint64_t capacityPages = 0;
    NodeProfile profile;
};

/** Full machine memory configuration. */
struct MemoryConfig {
    std::vector<NodeConfig> nodes;
    /** distance[i][j]; ACPI-SLIT style, 10 = local. */
    std::vector<std::vector<std::uint32_t>> distances;
    LatencyConfig latency;
    SwapProfile swap;
};

/**
 * Owns all physical-memory state shared by the mm layer and policies.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryConfig &cfg);

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    std::size_t numNodes() const { return nodes_.size(); }

    // The frame/node accessors are on every mm hot path (LRU surgery,
    // scan loops visit them tens of times per fault), so they are
    // defined inline: a predictable bounds check and an indexed load.
    MemoryNode &
    node(NodeId nid)
    {
        if (nid >= nodes_.size())
            tpp_panic("node id %u out of range", nid);
        return nodes_[nid];
    }

    const MemoryNode &
    node(NodeId nid) const
    {
        if (nid >= nodes_.size())
            tpp_panic("node id %u out of range", nid);
        return nodes_[nid];
    }

    PageFrame &
    frame(Pfn pfn)
    {
        if (pfn >= frames_.size())
            tpp_panic("pfn %u out of range", pfn);
        return frames_[pfn];
    }

    const PageFrame &
    frame(Pfn pfn) const
    {
        if (pfn >= frames_.size())
            tpp_panic("pfn %u out of range", pfn);
        return frames_[pfn];
    }

    /** Cold half of the frame table: rmap + telemetry for `pfn`. */
    PageFrameCold &
    frameCold(Pfn pfn)
    {
        if (pfn >= cold_.size())
            tpp_panic("pfn %u out of range", pfn);
        return cold_[pfn];
    }

    const PageFrameCold &
    frameCold(Pfn pfn) const
    {
        if (pfn >= cold_.size())
            tpp_panic("pfn %u out of range", pfn);
        return cold_[pfn];
    }

    /**
     * Raw hot-array base for bulk scans (frame-table cursors, LRU link
     * chasing) that have already validated their pfn range. Stable for
     * the life of the MemorySystem: the arena never reallocates.
     */
    PageFrame *frameData() { return frames_.data(); }
    const PageFrame *frameData() const { return frames_.data(); }

    std::uint64_t totalFrames() const { return frames_.size(); }

    /** @return node ids with local CPUs (the "fast tier"). */
    const std::vector<NodeId> &cpuNodes() const { return cpuNodes_; }

    /** @return CPU-less node ids (the CXL tier). */
    const std::vector<NodeId> &cxlNodes() const { return cxlNodes_; }

    /**
     * The explicit tier graph: per-node tier ranks, toptier/bottom-tier
     * membership and strictly-downward demotion chains. Policies should
     * reason about tiers through this rather than the raw
     * cpuNodes()/cxlNodes() split.
     */
    const TierHierarchy &tiers() const { return tiers_; }

    /** SLIT-style distance between two nodes. */
    std::uint32_t distance(NodeId from, NodeId to) const;

    /**
     * Strictly-lower-tier nodes ordered by distance from `from`: the
     * static, distance-based demotion target order of §5.1, chained
     * through the tier hierarchy. Empty for bottom-tier nodes.
     */
    const std::vector<NodeId> &demotionOrder(NodeId from) const;

    /**
     * All nodes ordered by distance from `from` (self first): the
     * zonelist fallback order used by the allocator.
     */
    const std::vector<NodeId> &fallbackOrder(NodeId from) const;

    const LatencyModel &latencyModel() const { return latencyModel_; }

    SwapDevice &swapDevice() { return swap_; }
    const SwapDevice &swapDevice() const { return swap_; }

    /** Sum of free pages over all nodes. */
    std::uint64_t totalFreePages() const;

  private:
    std::vector<MemoryNode> nodes_;
    ZeroedArena<PageFrame> frames_;
    ZeroedArena<PageFrameCold> cold_;
    std::vector<std::vector<std::uint32_t>> distances_;
    std::vector<NodeId> cpuNodes_;
    std::vector<NodeId> cxlNodes_;
    TierHierarchy tiers_;
    std::vector<std::vector<NodeId>> fallbackOrder_;
    LatencyModel latencyModel_;
    SwapDevice swap_;
};

/**
 * Convenience builders for the paper's machine configurations.
 */
namespace TopologyBuilder {

/** Latency points used throughout the evaluation (Figure 2 / §2). */
inline constexpr double kLocalLatencyNs = 80.0;
inline constexpr double kCxlLatencyNs = 150.0; // local + ~70 ns
inline constexpr double kLocalBandwidthGBps = 100.0;
inline constexpr double kCxlBandwidthGBps = 64.0; // PCIe5 x8-ish

/**
 * One CPU node plus one CXL node.
 *
 * @param local_pages  capacity of the CPU-attached node
 * @param cxl_pages    capacity of the CXL node
 */
MemoryConfig cxlSystem(std::uint64_t local_pages, std::uint64_t cxl_pages);

/** Single-node DRAM-only machine: the "all from local" baseline. */
MemoryConfig allLocal(std::uint64_t local_pages);

/**
 * CPU node plus `n_cxl` CXL nodes at increasing distance (multi-tier
 * demotion-order tests).
 */
MemoryConfig multiCxlSystem(std::uint64_t local_pages,
                            const std::vector<std::uint64_t> &cxl_pages);

/**
 * Two CPU sockets plus one shared CXL expansion node — the
 * multiple-local-node case of §5.3 (promotion targets the task's node,
 * or the least-pressured local node for shared memory).
 *
 * Node ids: 0, 1 = sockets; 2 = CXL.
 */
MemoryConfig dualSocketCxl(std::uint64_t local_pages_per_socket,
                           std::uint64_t cxl_pages);

} // namespace TopologyBuilder

} // namespace tpp

#endif // TPP_MEM_MEMORY_SYSTEM_HH
