/**
 * @file
 * Unit tests for the page allocator: preferred-node placement, zonelist
 * fallback, watermark gates, kswapd wake-up and direct-reclaim stalls.
 */

#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(KernelAlloc, PrefersRequestedNode)
{
    TestMachine m;
    EXPECT_EQ(m.mem.frame(m.kernel.allocPage(0, PageType::Anon,
                                             AllocReason::App))
                  .nid,
              0);
    EXPECT_EQ(m.mem.frame(m.kernel.allocPage(1, PageType::Anon,
                                             AllocReason::App))
                  .nid,
              1);
}

TEST(KernelAlloc, FallsBackWhenPreferredBelowLow)
{
    TestMachine m(64, 64);
    const Watermarks &wm = m.mem.node(0).watermarks();
    // Drain node 0 down to its low watermark.
    while (m.mem.node(0).freePages() > wm.low)
        m.mem.node(0).takeFree();
    const Pfn pfn = m.kernel.allocPage(0, PageType::Anon,
                                       AllocReason::App);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(m.mem.frame(pfn).nid, 1);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgAllocFallback), 1u);
}

TEST(KernelAlloc, FallbackWakesKswapdOnPreferred)
{
    TestMachine m(64, 64);
    const Watermarks &wm = m.mem.node(0).watermarks();
    while (m.mem.node(0).freePages() > wm.low)
        m.mem.node(0).takeFree();
    m.kernel.allocPage(0, PageType::Anon, AllocReason::App);
    EXPECT_TRUE(m.kernel.kswapdActive(0));
}

TEST(KernelAlloc, PromotionGateIsHighByDefault)
{
    TestMachine m(64, 64);
    const Watermarks &wm = m.mem.node(0).watermarks();
    // Sit free pages exactly at the high watermark: the default
    // promotion gate (migrate_balanced_pgdat) must refuse.
    while (m.mem.node(0).freePages() > wm.high)
        m.mem.node(0).takeFree();
    EXPECT_EQ(m.kernel.allocPage(0, PageType::Anon,
                                 AllocReason::Promotion),
              kInvalidPfn);
    // TPP mode bypasses the allocation watermark for promotions.
    m.kernel.setPromotionIgnoresWatermark(true);
    EXPECT_NE(m.kernel.allocPage(0, PageType::Anon,
                                 AllocReason::Promotion),
              kInvalidPfn);
}

TEST(KernelAlloc, MigrationTargetsNeverFallBack)
{
    TestMachine m(64, 64);
    // Exhaust node 1 completely.
    while (m.mem.node(1).freePages() > 0)
        m.mem.node(1).takeFree();
    EXPECT_EQ(m.kernel.allocPage(1, PageType::File,
                                 AllocReason::Demotion),
              kInvalidPfn);
    // Plain app allocation would have fallen back to node 0.
    const Pfn pfn =
        m.kernel.allocPage(1, PageType::File, AllocReason::App);
    ASSERT_NE(pfn, kInvalidPfn);
    EXPECT_EQ(m.mem.frame(pfn).nid, 0);
}

TEST(KernelAlloc, DirectReclaimRescuesAllocation)
{
    TestMachine m(128, 128);
    // Fill both nodes with reclaimable cold anon pages...
    const std::uint64_t pages = 200;
    const Vpn base = m.kernel.mmap(m.asid, pages, PageType::Anon, "fill");
    for (std::uint64_t i = 0; i < pages; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, 0);
    for (std::uint64_t i = 0; i < pages; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);
    // ...then push both nodes below even the min watermark so only
    // direct reclaim can satisfy the next allocation.
    while (m.mem.node(0).freePages() > 0)
        m.mem.node(0).takeFree();
    while (m.mem.node(1).freePages() > 0)
        m.mem.node(1).takeFree();

    double stall = 0.0;
    const Pfn pfn =
        m.kernel.allocPage(0, PageType::Anon, AllocReason::App, &stall);
    EXPECT_NE(pfn, kInvalidPfn);
    EXPECT_GT(m.kernel.vmstat().get(Vm::AllocStall), 0u);
    EXPECT_GT(stall, 0.0);
    EXPECT_GT(m.kernel.vmstat().get(Vm::PgStealDirect), 0u);
}

TEST(KernelAlloc, AppAllocCountsPerNode)
{
    TestMachine m;
    m.populate(8, PageType::Anon);
    EXPECT_EQ(m.kernel.traffic(0).appAllocs, 8u);
    // Promotion-reason allocations don't count as app allocations.
    m.kernel.allocPage(0, PageType::Anon, AllocReason::Demotion);
    EXPECT_EQ(m.kernel.traffic(0).appAllocs, 8u);
}

TEST(KernelAlloc, GateForMapping)
{
    TestMachine m;
    EXPECT_EQ(m.kernel.gateFor(AllocReason::App), WatermarkGate::Low);
    EXPECT_EQ(m.kernel.gateFor(AllocReason::SwapIn), WatermarkGate::Low);
    EXPECT_EQ(m.kernel.gateFor(AllocReason::Demotion),
              WatermarkGate::Low);
    EXPECT_EQ(m.kernel.gateFor(AllocReason::Promotion),
              WatermarkGate::High);
    m.kernel.setPromotionIgnoresWatermark(true);
    EXPECT_EQ(m.kernel.gateFor(AllocReason::Promotion),
              WatermarkGate::Min);
}

TEST(KernelAlloc, FreeFrameReturnsToNode)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, 0);
    const std::uint64_t free_before = m.mem.node(0).freePages();
    const Pfn pfn = m.pte(base).pfn;
    m.kernel.freeFrame(pfn);
    EXPECT_EQ(m.mem.node(0).freePages(), free_before + 1);
    EXPECT_FALSE(m.pte(base).present());
    EXPECT_TRUE(m.mem.frame(pfn).isFree());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgFree), 1u);
}

TEST(KernelAllocDeathTest, DoubleFreePanics)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, 0);
    const Pfn pfn = m.pte(base).pfn;
    m.kernel.freeFrame(pfn);
    EXPECT_DEATH(m.kernel.freeFrame(pfn), "already free");
}

} // namespace
} // namespace tpp
