file(REMOVE_RECURSE
  "CMakeFiles/table1_type_aware_alloc.dir/table1_type_aware_alloc.cpp.o"
  "CMakeFiles/table1_type_aware_alloc.dir/table1_type_aware_alloc.cpp.o.d"
  "table1_type_aware_alloc"
  "table1_type_aware_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_type_aware_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
