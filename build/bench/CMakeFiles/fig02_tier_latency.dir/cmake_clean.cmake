file(REMOVE_RECURSE
  "CMakeFiles/fig02_tier_latency.dir/fig02_tier_latency.cpp.o"
  "CMakeFiles/fig02_tier_latency.dir/fig02_tier_latency.cpp.o.d"
  "fig02_tier_latency"
  "fig02_tier_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tier_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
