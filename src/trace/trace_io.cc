#include "trace/trace_io.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <istream>
#include <ostream>

#include "sim/logging.hh"

namespace tpp {

const char *
traceEventName(TraceEvent event)
{
    switch (event) {
      case TraceEvent::AllocFallback: return "pgalloc_fallback";
      case TraceEvent::AllocStall: return "allocstall";
      case TraceEvent::HintFault: return "numa_hint_fault";
      case TraceEvent::PromoteCandidate: return "pgpromote_candidate";
      case TraceEvent::PromoteTry: return "pgpromote_try";
      case TraceEvent::PromoteSuccess: return "pgpromote_success";
      case TraceEvent::PromoteFailLowMem: return "pgpromote_fail_lowmem";
      case TraceEvent::PromoteFailIsolate: return "pgpromote_fail_isolate";
      case TraceEvent::PromoteFailRateLimit:
        return "pgpromote_fail_ratelimit";
      case TraceEvent::Demote: return "pgdemote";
      case TraceEvent::DemoteFail: return "pgdemote_fail";
      case TraceEvent::KswapdWake: return "kswapd_wake";
      case TraceEvent::KswapdSleep: return "kswapd_sleep";
      case TraceEvent::DirectReclaim: return "direct_reclaim";
      case TraceEvent::SwapOut: return "pswpout";
      case TraceEvent::SwapIn: return "pswpin";
      case TraceEvent::MigrateQueued: return "migrate_queued";
      case TraceEvent::MigrateDeferred: return "migrate_deferred";
      case TraceEvent::MigrateAbort: return "migrate_abort";
      case TraceEvent::HotnessEpoch: return "hotness_epoch";
      case TraceEvent::HotnessThreshold: return "hotness_threshold";
      case TraceEvent::HotnessEvict: return "hotness_evict";
      case TraceEvent::MemcgEvent: return "memcg_event";
      case TraceEvent::PptThrottle: return "ppt_throttle";
      case TraceEvent::PptEscalate: return "ppt_escalate";
      case TraceEvent::PptEvict: return "ppt_evict";
      case TraceEvent::AdaptiveWindow: return "adaptive_window";
      case TraceEvent::AdaptiveTune: return "adaptive_tune";
      case TraceEvent::AdaptiveRevert: return "adaptive_revert";
      case TraceEvent::AdaptiveSettle: return "adaptive_settle";
      case TraceEvent::AdaptiveWake: return "adaptive_wake";
      case TraceEvent::NumEvents: break;
    }
    tpp_panic("traceEventName: bad event %u",
              static_cast<unsigned>(event));
}

TraceEvent
traceEventFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumTraceEvents; ++i) {
        const TraceEvent event = static_cast<TraceEvent>(i);
        if (name == traceEventName(event))
            return event;
    }
    tpp_fatal("unknown trace event name '%s'", name.c_str());
}

namespace {

/** Escape the few characters our identifiers could smuggle in. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

const char *
pageTypeName(std::uint8_t type)
{
    if (type == static_cast<std::uint8_t>(PageType::Anon))
        return "anon";
    if (type == static_cast<std::uint8_t>(PageType::File))
        return "file";
    return "none";
}

/**
 * Extract `"key":<value>` from one flat JSON line. These helpers parse
 * only the JSONL this module writes; they are not a general JSON
 * parser, but they reject anything they cannot prove well-formed.
 */
bool
findRawValue(const std::string &line, const std::string &key,
             std::string *out)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t start = pos + needle.size();
    while (start < line.size() &&
           std::isspace(static_cast<unsigned char>(line[start])))
        start++;
    std::size_t end = start;
    if (end < line.size() && line[end] == '"') {
        // String value: scan to the closing unescaped quote.
        end++;
        while (end < line.size() &&
               (line[end] != '"' || line[end - 1] == '\\'))
            end++;
        if (end >= line.size())
            return false;
        end++;
    } else {
        while (end < line.size() && line[end] != ',' && line[end] != '}')
            end++;
    }
    *out = line.substr(start, end - start);
    return true;
}

bool
findString(const std::string &line, const std::string &key,
           std::string *out)
{
    std::string raw;
    if (!findRawValue(line, key, &raw) || raw.size() < 2 ||
        raw.front() != '"' || raw.back() != '"')
        return false;
    // Undo the writer's escaping.
    std::string value;
    value.reserve(raw.size() - 2);
    for (std::size_t i = 1; i + 1 < raw.size(); ++i) {
        if (raw[i] == '\\' && i + 2 < raw.size())
            i++;
        value.push_back(raw[i]);
    }
    *out = value;
    return true;
}

bool
findU64(const std::string &line, const std::string &key,
        std::uint64_t *out)
{
    std::string raw;
    if (!findRawValue(line, key, &raw) || raw.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
    if (end != raw.c_str() + raw.size() || errno == ERANGE)
        return false;
    *out = value;
    return true;
}

} // namespace

void
writeTraceEventJsonl(std::ostream &out, const TraceRecord &record,
                     const std::string &workload,
                     const std::string &policy)
{
    out << "{\"kind\":\"event\",\"workload\":\"" << jsonEscape(workload)
        << "\",\"policy\":\"" << jsonEscape(policy)
        << "\",\"tick\":" << record.tick << ",\"event\":\""
        << traceEventName(record.event) << "\",\"node\":"
        << static_cast<unsigned>(record.node)
        << ",\"aux\":" << record.aux;
    if (record.type != kTraceNoType)
        out << ",\"type\":\"" << pageTypeName(record.type) << '"';
    if (record.hasPage) {
        out << ",\"pfn\":" << record.pfn << ",\"asid\":" << record.asid
            << ",\"vpn\":" << record.vpn;
    }
    out << "}\n";
}

void
writeSamplePointJsonl(std::ostream &out, const TimeSeriesPoint &point,
                      const std::string &workload,
                      const std::string &policy)
{
    out << "{\"kind\":\"sample\",\"workload\":\"" << jsonEscape(workload)
        << "\",\"policy\":\"" << jsonEscape(policy)
        << "\",\"tick\":" << point.tick << ",\"window_ns\":"
        << point.windowNs << ",\"vm\":{";
    bool first = true;
    for (std::size_t i = 0; i < kNumVmCounters; ++i) {
        if (point.vmDelta[i] == 0)
            continue;
        if (!first)
            out << ',';
        first = false;
        out << '"' << vmName(static_cast<Vm>(i)) << "\":"
            << point.vmDelta[i];
    }
    out << "},\"nodes\":[";
    for (std::size_t i = 0; i < point.nodes.size(); ++i) {
        const NodeUsagePoint &n = point.nodes[i];
        if (i)
            out << ',';
        out << "{\"nid\":" << static_cast<unsigned>(n.nid)
            << ",\"cpuless\":" << (n.cpuLess ? "true" : "false")
            << ",\"free\":" << n.freePages
            << ",\"active_anon\":" << n.activeAnon
            << ",\"inactive_anon\":" << n.inactiveAnon
            << ",\"active_file\":" << n.activeFile
            << ",\"inactive_file\":" << n.inactiveFile << '}';
    }
    out << "]}\n";
}

std::vector<TaggedTraceRecord>
readTraceEventsJsonl(std::istream &in)
{
    std::vector<TaggedTraceRecord> events;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty())
            continue;
        std::string kind;
        if (!findString(line, "kind", &kind))
            tpp_fatal("trace line %zu: missing \"kind\"", lineno);
        if (kind != "event")
            continue;

        TaggedTraceRecord tagged;
        std::string event_name;
        std::uint64_t tick = 0, node = 0, aux = 0;
        if (!findString(line, "workload", &tagged.workload) ||
            !findString(line, "policy", &tagged.policy) ||
            !findString(line, "event", &event_name) ||
            !findU64(line, "tick", &tick) ||
            !findU64(line, "node", &node) || !findU64(line, "aux", &aux))
            tpp_fatal("trace line %zu: malformed event", lineno);

        TraceRecord &r = tagged.record;
        r.tick = tick;
        r.event = traceEventFromName(event_name);
        r.node = static_cast<std::uint8_t>(node);
        r.aux = static_cast<std::uint32_t>(aux);

        std::string type_name;
        if (findString(line, "type", &type_name)) {
            r.type = type_name == "anon"
                         ? static_cast<std::uint8_t>(PageType::Anon)
                     : type_name == "file"
                         ? static_cast<std::uint8_t>(PageType::File)
                         : kTraceNoType;
        }
        std::uint64_t pfn = 0;
        if (findU64(line, "pfn", &pfn)) {
            std::uint64_t asid = 0, vpn = 0;
            if (!findU64(line, "asid", &asid) ||
                !findU64(line, "vpn", &vpn))
                tpp_fatal("trace line %zu: malformed page fields",
                          lineno);
            r.hasPage = 1;
            r.pfn = static_cast<std::uint32_t>(pfn);
            r.asid = static_cast<std::uint32_t>(asid);
            r.vpn = vpn;
        }
        events.push_back(std::move(tagged));
    }
    return events;
}

} // namespace tpp
