file(REMOVE_RECURSE
  "CMakeFiles/cache_expansion.dir/cache_expansion.cpp.o"
  "CMakeFiles/cache_expansion.dir/cache_expansion.cpp.o.d"
  "cache_expansion"
  "cache_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
