/**
 * @file
 * Tests for the memory-cgroup layer (src/mm/memcg): per-node
 * accounting across fault/free/migrate, process attachment, the
 * per-cgroup sysctl surface, memory.low-style two-pass reclaim
 * protection, placement preferences, per-cgroup migration budgets, and
 * the multi-tenant experiment harness built on top.
 */

#include <sstream>

#include "core/tpp_policy.hh"
#include "harness/experiment.hh"
#include "harness/export.hh"
#include "mm/migration/migration_engine.hh"
#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(Memcg, RootAccountsEveryProcessByDefault)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    EXPECT_EQ(memcg.numCgroups(), 1u);
    EXPECT_EQ(memcg.cgroupOf(m.asid), kRootCgroup);
    EXPECT_EQ(memcg.cgroup(kRootCgroup).name(), "root");

    m.populate(8);
    const MemCgroup &root = memcg.cgroup(kRootCgroup);
    EXPECT_EQ(root.usageOnNode(m.local()), 8u);
    EXPECT_EQ(root.usageOnNode(m.cxl()), 0u);
    EXPECT_EQ(root.usage(), 8u);
    EXPECT_EQ(root.stats.pagesCharged, 8u);
}

TEST(Memcg, UnchargeOnFree)
{
    TestMachine m;
    const Vpn base = m.populate(8);
    m.kernel.munmap(m.asid, base, 8);
    const MemCgroup &root = m.kernel.memcg().cgroup(kRootCgroup);
    EXPECT_EQ(root.usage(), 0u);
    EXPECT_EQ(root.stats.pagesCharged, 8u);
    EXPECT_EQ(root.stats.pagesUncharged, 8u);
}

TEST(Memcg, TransferFollowsMigration)
{
    TestMachine m;
    const Vpn base = m.populate(4);
    MemcgController &memcg = m.kernel.memcg();
    ASSERT_EQ(memcg.cgroup(kRootCgroup).usageOnNode(m.local()), 4u);

    // Demotion moves the charge local -> CXL; no page is ever counted
    // twice or dropped.
    ASSERT_TRUE(m.kernel.migration().demote(m.pte(base).pfn).freed);
    const MemCgroup &root = memcg.cgroup(kRootCgroup);
    EXPECT_EQ(root.usageOnNode(m.local()), 3u);
    EXPECT_EQ(root.usageOnNode(m.cxl()), 1u);
    EXPECT_EQ(root.usage(), 4u);
    EXPECT_EQ(root.stats.demotions, 1u);

    // Promotion moves it back and counts on the same cgroup.
    const Pfn cxl_pfn = m.pte(base).pfn;
    ASSERT_EQ(m.mem.frame(cxl_pfn).nid, m.cxl());
    ASSERT_TRUE(
        m.kernel.migration().promote(cxl_pfn, m.cxl(), m.local()).freed);
    EXPECT_EQ(root.usageOnNode(m.local()), 4u);
    EXPECT_EQ(root.usageOnNode(m.cxl()), 0u);
    EXPECT_EQ(root.stats.promoteSuccess, 1u);
}

TEST(Memcg, SpawnCgroupBindsNewProcesses)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId id = memcg.create("tenant");

    memcg.setSpawnCgroup(id);
    const Asid child = m.kernel.createProcess();
    memcg.setSpawnCgroup(kRootCgroup);
    EXPECT_EQ(memcg.cgroupOf(child), id);
    EXPECT_EQ(memcg.cgroupOf(m.asid), kRootCgroup);

    const Vpn base = m.kernel.mmap(child, 4, PageType::Anon, "heap");
    for (int i = 0; i < 4; ++i)
        m.kernel.access(child, base + i, AccessKind::Store, 0);
    EXPECT_EQ(memcg.cgroup(id).usageOnNode(m.local()), 4u);
    EXPECT_EQ(memcg.cgroup(kRootCgroup).usage(), 0u);
}

TEST(Memcg, AttachMovesFutureChargesOnly)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    m.populate(4);
    const CgroupId id = memcg.create("late");
    memcg.attach(m.asid, id);
    m.populate(4);
    // Pages resident before the attach keep their original accounting.
    EXPECT_EQ(memcg.cgroup(kRootCgroup).usage(), 4u);
    EXPECT_EQ(memcg.cgroup(id).usage(), 4u);
}

TEST(Memcg, PerCgroupSysctlSurface)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId id = memcg.create("web");
    SysctlRegistry &sysctl = m.kernel.sysctl();

    ASSERT_TRUE(sysctl.exists("memcg.web.low"));
    EXPECT_TRUE(sysctl.set("memcg.web.low", "128"));
    EXPECT_EQ(memcg.cgroup(id).low, 128u);
    EXPECT_FALSE(sysctl.set("memcg.web.low", "-1"));

    EXPECT_EQ(sysctl.get("memcg.web.placement"), "none");
    EXPECT_TRUE(sysctl.set("memcg.web.placement", "local_only"));
    EXPECT_EQ(memcg.cgroup(id).placement, MemcgPlacement::LocalOnly);
    EXPECT_FALSE(sysctl.set("memcg.web.placement", "sideways"));

    EXPECT_TRUE(sysctl.set("memcg.web.migration_budget_mbps", "12.5"));
    EXPECT_DOUBLE_EQ(memcg.cgroup(id).migrationBudgetMBps, 12.5);
    EXPECT_FALSE(sysctl.set("memcg.web.migration_budget_mbps", "nan"));
    EXPECT_FALSE(sysctl.set("memcg.web.migration_budget_mbps", "-1"));

    // memory.stat is read-only and reflects live counters.
    const std::string stat = sysctl.get("memcg.web.stat");
    EXPECT_NE(stat.find("usage 0"), std::string::npos);
    EXPECT_NE(stat.find("low 128"), std::string::npos);
    EXPECT_FALSE(sysctl.set("memcg.web.stat", "1"));
}

TEST(MemcgDeathTest, BadCgroupNamesFatal)
{
    setLogVerbose(false);
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    memcg.create("dup");
    EXPECT_DEATH(memcg.create("dup"), "already exists");
    EXPECT_DEATH(memcg.create(""), "must not be empty");
}

TEST(Memcg, ProtectionFloorShieldsVictimFromAntagonist)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId victim = memcg.create("victim");
    memcg.attach(m.asid, victim);
    memcg.cgroup(victim).low = 64;

    // 16 victim pages (under its floor -> protected), then 16 root
    // pages. The victim's pages sit at the cold end of the LRU, so an
    // unprotected scan would eat them first.
    const Vpn vbase = m.populate(16);
    const Asid antagonist = m.kernel.createProcess();
    const Vpn abase = m.kernel.mmap(antagonist, 16, PageType::Anon, "a");
    for (int i = 0; i < 16; ++i)
        m.kernel.access(antagonist, abase + i, AccessKind::Store, 0);
    for (int i = 0; i < 16; ++i) {
        m.frameOf(vbase + i).clearFlag(PageFrame::FlagReferenced);
        m.mem.frame(m.kernel.addressSpace(antagonist).pte(abase + i).pfn)
            .clearFlag(PageFrame::FlagReferenced);
    }

    ASSERT_TRUE(memcg.protectionActive());
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 8);
    EXPECT_EQ(reclaimed, 8u);
    // Every victim page survived; the antagonist paid the whole bill.
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(m.pte(vbase + i).present()) << i;
    std::uint64_t antagonist_resident = 0;
    for (int i = 0; i < 16; ++i)
        if (m.kernel.addressSpace(antagonist).pte(abase + i).present())
            antagonist_resident++;
    EXPECT_EQ(antagonist_resident, 8u);

    EXPECT_GT(m.kernel.vmstat().get(Vm::MemcgReclaimProtected), 0u);
    EXPECT_GT(memcg.cgroup(victim).stats.reclaimProtected, 0u);
    // Pass 1 made progress, so no floor was breached.
    EXPECT_EQ(m.kernel.vmstat().get(Vm::MemcgReclaimLow), 0u);
    EXPECT_EQ(memcg.cgroup(victim).stats.reclaimLow, 0u);
    (void)cost;
}

TEST(Memcg, ProtectionBreachesFloorWhenNothingElseRemains)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId victim = memcg.create("victim");
    memcg.attach(m.asid, victim);
    memcg.cgroup(victim).low = 64;

    const Vpn base = m.populate(16);
    for (int i = 0; i < 16; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);

    // Only protected pages exist: pass 1 skips them all, pass 2 must
    // still make progress (memory.low is a floor, not a guarantee) and
    // bill each breach to the cgroup.
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 4);
    EXPECT_EQ(reclaimed, 4u);
    EXPECT_GT(m.kernel.vmstat().get(Vm::MemcgReclaimProtected), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::MemcgReclaimLow), 4u);
    EXPECT_EQ(memcg.cgroup(victim).stats.reclaimLow, 4u);
    (void)cost;
}

TEST(Memcg, ProtectionKillSwitchRestoresPlainReclaim)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId victim = memcg.create("victim");
    memcg.attach(m.asid, victim);
    memcg.cgroup(victim).low = 64;
    ASSERT_TRUE(m.kernel.sysctl().set("vm.memcg_protection", "0"));
    EXPECT_FALSE(memcg.protectionActive());

    const Vpn base = m.populate(16);
    for (int i = 0; i < 16; ++i)
        m.frameOf(base + i).clearFlag(PageFrame::FlagReferenced);
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 4);
    EXPECT_EQ(reclaimed, 4u);
    // With the switch off the floor never fires in either direction.
    EXPECT_EQ(m.kernel.vmstat().get(Vm::MemcgReclaimProtected), 0u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::MemcgReclaimLow), 0u);
    (void)cost;
}

TEST(Memcg, CxlOnlyPlacementSteersAllocations)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();
    const CgroupId cold = memcg.create("cold");
    memcg.cgroup(cold).placement = MemcgPlacement::CxlOnly;
    memcg.setSpawnCgroup(cold);
    const Asid child = m.kernel.createProcess();
    memcg.setSpawnCgroup(kRootCgroup);

    const Vpn base = m.kernel.mmap(child, 4, PageType::Anon, "heap");
    for (int i = 0; i < 4; ++i)
        m.kernel.access(child, base + i, AccessKind::Store, 0);
    for (int i = 0; i < 4; ++i) {
        const Pfn pfn = m.kernel.addressSpace(child).pte(base + i).pfn;
        EXPECT_EQ(m.mem.frame(pfn).nid, m.cxl()) << i;
    }
    EXPECT_EQ(memcg.cgroup(cold).usageOnNode(m.cxl()), 4u);
}

TEST(Memcg, MigrationBudgetAccruesFromConfigurationNotBoot)
{
    TestMachine m;
    MemcgController &memcg = m.kernel.memcg();

    // No budget: admission is free.
    EXPECT_TRUE(memcg.chargeMigration(m.asid, kPageSize));

    // Advance time first, then configure: the elapsed unlimited time
    // must not count as earned tokens (no boot burst).
    m.eq.run(m.eq.now() + 1 * kSecond);
    memcg.setMigrationBudget(kRootCgroup, 1.0); // 1 MB/s
    EXPECT_FALSE(memcg.chargeMigration(m.asid, kPageSize));

    // 10 ms at 1 MB/s earns 10 000 bytes: two pages, not three.
    m.eq.run(m.eq.now() + 10 * kMillisecond);
    EXPECT_TRUE(memcg.chargeMigration(m.asid, kPageSize));
    EXPECT_TRUE(memcg.chargeMigration(m.asid, kPageSize));
    EXPECT_FALSE(memcg.chargeMigration(m.asid, kPageSize));

    // Raising the budget mints nothing retroactively...
    memcg.setMigrationBudget(kRootCgroup, 1000.0);
    EXPECT_FALSE(memcg.chargeMigration(m.asid, kPageSize));
    // ...but tokens then accrue at the new rate.
    m.eq.run(m.eq.now() + 1 * kMillisecond);
    EXPECT_TRUE(memcg.chargeMigration(m.asid, kPageSize));

    // Lowering clamps outstanding tokens to the new burst.
    m.eq.run(m.eq.now() + 1 * kSecond); // fill at 1000 MB/s
    memcg.setMigrationBudget(kRootCgroup, 0.001); // burst = 100 bytes
    EXPECT_FALSE(memcg.chargeMigration(m.asid, kPageSize));
}

TEST(Memcg, BudgetThrottlesAsyncMigration)
{
    MigrationConfig cfg = MigrationConfig::asyncEngine();
    cfg.drainBatch = 32;
    cfg.drainPeriod = 1 * kMillisecond;
    TestMachine m(1024, 1024, std::make_unique<DefaultLinuxPolicy>(),
                  cfg);
    MemcgController &memcg = m.kernel.memcg();
    const Vpn base = m.populate(4);

    // One page per 100 ms burst window; let exactly one burst accrue.
    memcg.setMigrationBudget(kRootCgroup, 4096.0 / 1e6 * 10.0);
    m.eq.run(m.eq.now() + 100 * kMillisecond);

    EXPECT_EQ(m.kernel.migration().demote(m.pte(base).pfn).outcome,
              MigrateOutcome::Queued);
    EXPECT_EQ(m.kernel.migration().demote(m.pte(base + 1).pfn).outcome,
              MigrateOutcome::Deferred);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::MemcgMigrateThrottled), 1u);
    EXPECT_EQ(memcg.cgroup(kRootCgroup).stats.migrateThrottled, 1u);
}

// ---- tenant spec parsing --------------------------------------------

TEST(TenantSpec, ParsesFullGrammar)
{
    const auto tenants =
        parseTenantsSpec("cache1:low=0.6:wss=65536;"
                         "churn:budget=50:place=cxl_only");
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].workload, "cache1");
    EXPECT_DOUBLE_EQ(tenants[0].lowFraction, 0.6);
    EXPECT_EQ(tenants[0].wssPages, 65536u);
    EXPECT_EQ(tenants[0].placement, "none");
    EXPECT_FALSE(tenants[0].openLoop.enabled());
    EXPECT_EQ(tenants[1].workload, "churn");
    EXPECT_DOUBLE_EQ(tenants[1].budgetMBps, 50.0);
    EXPECT_EQ(tenants[1].placement, "cxl_only");
}

TEST(TenantSpec, ParsesOpenLoopKeys)
{
    const auto tenants = parseTenantsSpec(
        "cache1:qps=50000:arrival=bursty:slo=150;churn");
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_TRUE(tenants[0].openLoop.enabled());
    EXPECT_DOUBLE_EQ(tenants[0].openLoop.qps, 50000.0);
    EXPECT_EQ(tenants[0].openLoop.arrival, "bursty");
    EXPECT_DOUBLE_EQ(tenants[0].openLoop.sloP99Us, 150.0);
    EXPECT_FALSE(tenants[1].openLoop.enabled());
}

TEST(TenantSpecDeathTest, RejectsHostileValues)
{
    setLogVerbose(false);
    EXPECT_DEATH(parseTenantsSpec(""), "names no tenants");
    EXPECT_DEATH(parseTenantsSpec("web;;churn"), "empty entry");
    EXPECT_DEATH(parseTenantsSpec(":low=0.5"), "no leading name");
    EXPECT_DEATH(parseTenantsSpec("web:low"), "key=value");
    EXPECT_DEATH(parseTenantsSpec("web:color=red"),
                 "unknown key 'color'");
    // The sysctl lessons, applied to the spec parser: no NaN floors,
    // no negative working sets wrapping through strtoull.
    EXPECT_DEATH(parseTenantsSpec("web:low=nan"), "out of \\[0, 1\\]");
    EXPECT_DEATH(parseTenantsSpec("web:low=1.5"), "out of \\[0, 1\\]");
    EXPECT_DEATH(parseTenantsSpec("web:low=-0.1"), "out of \\[0, 1\\]");
    EXPECT_DEATH(parseTenantsSpec("web:wss=-1"), "unsigned integer");
    EXPECT_DEATH(parseTenantsSpec("web:wss=12x"), "unsigned integer");
    EXPECT_DEATH(parseTenantsSpec("web:budget=inf"), "out of \\[0,");
    EXPECT_DEATH(parseTenantsSpec("web:place=middle"),
                 "none, local_only");
    // The diagnostic quotes the offending token.
    EXPECT_DEATH(parseTenantsSpec("web:qps=-5"), "at 'qps=-5'");
    EXPECT_DEATH(parseTenantsSpec("web:arrival=fractal"),
                 "poisson, bursty, diurnal");
    EXPECT_DEATH(parseTenantsSpec("web:low=0.5:low=0.6"),
                 "duplicate key 'low'");
}

// ---- multi-tenant harness end to end --------------------------------

TEST(TenantExperiment, ProducesPerTenantRows)
{
    ExperimentConfig cfg;
    cfg.workload = "cache1"; // ignored by the tenant path
    cfg.policy = "tpp";
    cfg.wssPages = 4096;
    cfg.localFraction = parseRatio("2:3");
    cfg.runUntil = 3 * kSecond;
    cfg.measureFrom = 2 * kSecond;
    cfg.tenants = parseTenantsSpec("cache1:low=0.5;churn");

    const ExperimentResult r = runExperiment(cfg);
    EXPECT_EQ(r.workload, "cache1+churn");
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.tenants[0].name, "t0-cache1");
    EXPECT_EQ(r.tenants[1].name, "t1-churn");
    double tput = 0.0;
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.throughput, 0.0) << t.name;
        EXPECT_GT(t.meanAccessLatencyNs, 0.0) << t.name;
        EXPECT_GT(t.pagesTotal, 0u) << t.name;
        EXPECT_GE(t.pagesTotal, t.pagesLocal) << t.name;
        EXPECT_GT(t.memcg.pagesCharged, 0u) << t.name;
        tput += t.throughput;
    }
    // The headline row aggregates the tenants.
    EXPECT_DOUBLE_EQ(r.throughput, tput);

    // The per-tenant exports carry one row per tenant.
    std::ostringstream csv;
    writeTenantsCsv(csv, {r});
    std::size_t rows = 0;
    for (char c : csv.str())
        rows += c == '\n';
    EXPECT_EQ(rows, 3u); // header + 2 tenants
    EXPECT_NE(csv.str().find("t0-cache1"), std::string::npos);

    std::ostringstream json;
    writeResultJson(json, r);
    EXPECT_NE(json.str().find("\"tenants\": ["), std::string::npos);
    EXPECT_NE(json.str().find("\"name\": \"t1-churn\""),
              std::string::npos);
}

TEST(TenantExperiment, LowFloorProtectsLocalResidency)
{
    // The ablation's claim at test scale, one pairing: the same
    // co-location with and without the victim's floor. Protection must
    // leave the victim with strictly more fast-tier residency. Needs
    // the ablation's smoke cadence (6 s): at shorter runs the churn
    // antagonist has not yet displaced the unprotected victim.
    auto run = [](double low_fraction) {
        ExperimentConfig cfg;
        cfg.policy = "tpp";
        cfg.wssPages = 4096;
        cfg.localFraction = parseRatio("2:3");
        cfg.runUntil = 6 * kSecond;
        cfg.measureFrom = 3 * kSecond;
        TenantSpec victim;
        victim.workload = "cache1";
        victim.lowFraction = low_fraction;
        TenantSpec antagonist;
        antagonist.workload = "churn";
        cfg.tenants = {victim, antagonist};
        return runExperiment(cfg);
    };

    const ExperimentResult off = run(0.0);
    const ExperimentResult on = run(0.6);
    ASSERT_EQ(on.tenants.size(), 2u);
    EXPECT_GT(on.tenants[0].localResidency,
              off.tenants[0].localResidency);
    EXPECT_GT(on.tenants[0].memcg.reclaimProtected, 0u);
    EXPECT_EQ(off.tenants[0].memcg.reclaimProtected, 0u);
}

} // namespace
} // namespace tpp
