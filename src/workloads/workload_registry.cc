#include "workloads/workload_registry.hh"

#include <sstream>

#include "sim/logging.hh"

namespace tpp {

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(const std::string &name, Factory factory)
{
    if (!factory)
        tpp_fatal("null factory registered for workload '%s'",
                  name.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        factories_.emplace(name, std::move(factory));
    (void)it;
    if (!inserted)
        tpp_fatal("workload '%s' registered twice", name.c_str());
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) != 0;
}

std::unique_ptr<Workload>
WorkloadRegistry::make(const WorkloadSpec &spec) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = factories_.find(spec.name);
        if (it != factories_.end())
            factory = it->second;
    }
    if (!factory) {
        std::ostringstream known;
        for (const std::string &n : names())
            known << (known.tellp() > 0 ? ", " : "") << n;
        tpp_fatal("unknown workload '%s' (registered: %s)",
                  spec.name.c_str(), known.str().c_str());
    }
    return factory(spec);
}

std::vector<std::string>
WorkloadRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

} // namespace tpp
