#include "hotness/hint_fault_source.hh"

#include <algorithm>

#include "mm/kernel.hh"

namespace tpp {

void
HintFaultSource::noteHintFault(Pfn pfn, NodeId task_nid)
{
    (void)task_nid;
    const Tick now = kernel_->eventQueue().now();
    Entry &entry = pages_[pfn];
    if (entry.count == 0 || now - entry.windowStart > cfg_.hotWindow) {
        entry.windowStart = now;
        entry.count = 0;
    }
    entry.count++;
    entry.lastFault = now;
}

double
HintFaultSource::temperature(Pfn pfn) const
{
    const auto it = pages_.find(pfn);
    if (it == pages_.end())
        return 0.0;
    const Tick now = kernel_->eventQueue().now();
    if (now - it->second.windowStart > cfg_.hotWindow)
        return 0.0;
    return static_cast<double>(it->second.count);
}

std::vector<HotPage>
HintFaultSource::extractHot(std::uint64_t max_pages)
{
    const Tick now = kernel_->eventQueue().now();
    std::vector<HotPage> hot;
    for (const auto &[pfn, entry] : pages_) {
        if (entry.count < cfg_.hotThreshold)
            continue;
        if (now - entry.windowStart > cfg_.hotWindow)
            continue;
        if (!cxlResident(pfn))
            continue;
        HotPage page;
        page.pfn = pfn;
        page.nid = kernel_->mem().frame(pfn).nid;
        page.temperature = static_cast<double>(entry.count);
        hot.push_back(page);
    }
    std::sort(hot.begin(), hot.end(),
              [](const HotPage &a, const HotPage &b) {
                  return a.temperature != b.temperature
                             ? a.temperature > b.temperature
                             : a.pfn < b.pfn;
              });
    if (hot.size() > max_pages)
        hot.resize(max_pages);
    for (const HotPage &page : hot)
        pages_.erase(page.pfn);
    return hot;
}

void
HintFaultSource::advanceEpoch()
{
    // Expire pages whose last fault fell out of the hot window; a page
    // must keep faulting to stay tracked, like the PTE accessed bit the
    // real scanner keeps re-arming.
    const Tick now = kernel_->eventQueue().now();
    for (auto it = pages_.begin(); it != pages_.end();) {
        if (now - it->second.lastFault > cfg_.hotWindow)
            it = pages_.erase(it);
        else
            ++it;
    }
}

} // namespace tpp
