# Empty compiler generated dependencies file for fig15_default_production.
# This may be replaced when dependencies are built.
