/**
 * @file
 * Name → factory registry for placement policies.
 *
 * Policies register themselves from their own translation units with
 * TPP_REGISTER_POLICY, so the experiment harness can instantiate any of
 * them by name without including a single policy header: adding a new
 * policy to the zoo means adding one source file, not editing
 * `harness/experiment.cc`.
 *
 * Registration normally happens during static initialisation (the
 * macro expands to a namespace-scope registrar object), but add() is
 * mutex-guarded so tests and extensions can also register policies at
 * run time.
 */

#ifndef TPP_MM_POLICY_REGISTRY_HH
#define TPP_MM_POLICY_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mm/placement_policy.hh"
#include "mm/policy_params.hh"

namespace tpp {

/**
 * Process-wide registry of placement-policy factories.
 */
class PolicyRegistry
{
  public:
    /** Builds a policy from the run's parameter blocks. */
    using Factory =
        std::function<std::unique_ptr<PlacementPolicy>(const PolicyParams &)>;

    /** The singleton (constructed on first use, so registrars in other
     *  translation units can run during static initialisation). */
    static PolicyRegistry &instance();

    /** Register a factory; duplicate names are a fatal error. */
    void add(const std::string &name, Factory factory);

    /** @return true when `name` has a registered factory. */
    bool contains(const std::string &name) const;

    /**
     * Instantiate `name`. Unknown names fatal() with the list of
     * registered policies.
     */
    std::unique_ptr<PlacementPolicy> make(const std::string &name,
                                          const PolicyParams &params) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    PolicyRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
};

/** Registrar helper for namespace-scope self-registration. */
struct PolicyRegistrar {
    PolicyRegistrar(const char *name, PolicyRegistry::Factory factory)
    {
        PolicyRegistry::instance().add(name, std::move(factory));
    }
};

/**
 * Self-register a policy from its translation unit:
 *
 *   TPP_REGISTER_POLICY(tpp, [](const PolicyParams &p) {
 *       return std::make_unique<TppPolicy>(p.tpp);
 *   });
 *
 * `ident` doubles as the registered name and the registrar identifier,
 * so it must be a valid identifier; use TPP_REGISTER_POLICY_AS when the
 * public name contains dashes ("numa-balancing").
 */
#define TPP_REGISTER_POLICY_AS(ident, name, ...)                             \
    namespace {                                                              \
    const ::tpp::PolicyRegistrar tppPolicyRegistrar_##ident{name,            \
                                                            __VA_ARGS__};    \
    }
#define TPP_REGISTER_POLICY(ident, ...)                                      \
    TPP_REGISTER_POLICY_AS(ident, #ident, __VA_ARGS__)

} // namespace tpp

#endif // TPP_MM_POLICY_REGISTRY_HH
