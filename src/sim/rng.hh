/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that runs are reproducible bit-for-bit. The generator is
 * xoshiro256** (Blackman & Vigna), seeded through SplitMix64.
 */

#ifndef TPP_SIM_RNG_HH
#define TPP_SIM_RNG_HH

#include <cstdint>

namespace tpp {

/**
 * xoshiro256** pseudo-random generator.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * standard-library distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit draw. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface. */
    result_type operator()() { return next(); }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** @return an unbiased integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return an integer uniform in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** @return a double uniform in [0, 1). */
    double nextDouble();

    /** @return true with probability p (p clamped to [0,1]). */
    bool nextBool(double p);

    /** Split off an independent child stream (for sub-components). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace tpp

#endif // TPP_SIM_RNG_HH
