/**
 * @file
 * Configurable synthetic workload engine.
 *
 * The production workloads of §3.2 (Web, Cache1, Cache2, Data
 * Warehouse) are expressed as WorkloadProfile instances over this one
 * engine: a set of memory regions, each with its own page type, hot-set
 * size, access skew, hot-set drift (re-access behaviour), growth and
 * churn, plus optional short-lived request allocations. The published
 * characterisation (Figures 7-11) provides the parameter targets; see
 * profiles.hh for the per-workload values.
 */

#ifndef TPP_WORKLOADS_SYNTHETIC_HH
#define TPP_WORKLOADS_SYNTHETIC_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/distributions.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "workloads/driver.hh"
#include "workloads/workload.hh"

namespace tpp {

/** Static description of one memory region. */
struct RegionSpec {
    std::string label = "region";
    PageType type = PageType::Anon;
    /** File regions backed by real files (droppable); tmpfs passes false. */
    bool diskBacked = false;
    /** Full reservation in pages. */
    std::uint64_t pages = 0;
    /** Fraction of the region in use at t=0. */
    double initialActiveFraction = 1.0;
    /** Active-set growth in pages per simulated second. */
    double growthPagesPerSec = 0.0;
    /** Relative share of the workload's references hitting this region. */
    double accessWeight = 1.0;
    /** Hot-window size as a fraction of the active pages. */
    double hotFraction = 0.2;
    /** Probability that a reference targets the hot window. */
    double hotAccessShare = 0.9;
    /**
     * Probability that a reference targets the "echo zone": the
     * window-sized span of recently-cooled pages trailing the hot
     * window. This produces the short cold-to-hot re-access gaps of
     * Fig 11 without sweeping the bulk hot set around the region.
     */
    double echoShare = 0.0;
    /** Zipf skew inside the hot window. */
    double zipfTheta = 0.9;
    /** Probability a reference is a store. */
    double storeShare = 0.3;
    /** Hot-window drift cadence; 0 keeps the hot set static. */
    Tick rotationPeriod = 0;
    /** Fraction of the hot window the drift advances by. */
    double rotationStep = 0.05;
    /**
     * Anchor the hot window at the allocation frontier while the region
     * grows: newly allocated pages are the hot ones (§5.2 "new
     * allocations are often related to request processing and,
     * therefore, both short-lived and hot").
     */
    bool hotFollowsGrowth = false;
    /** Touch all pages sequentially during warm-up (file preloading). */
    bool sequentialWarmup = false;
    /** Drop and reallocate the whole region periodically (batch stages). */
    Tick churnPeriod = 0;
    /** Offset of the first churn, to stagger multi-region stages. */
    Tick churnPhase = 0;
    /**
     * Touch the whole region right after each churn (a batch stage
     * reads its inputs up front, so the fresh data set is resident
     * almost immediately).
     */
    bool populateOnChurn = false;
    /**
     * Phase gating: when > 0 the region's accessWeight is live only
     * during the first `phaseDuty` of each period (shifted by
     * `phaseOffset`); off-phase it falls to accessWeight *
     * phaseOffWeight. Gating two region groups in anti-phase yields the
     * cache→churn→cache alternation the adaptive-policy ablation runs.
     * Regions with phasePeriod == 0 are untouched, and the engine
     * recomputes its weight table only when at least one region is
     * phased, so non-phased workloads stay bit-identical.
     */
    Tick phasePeriod = 0;
    /** On-phase share of each period, in (0, 1]. */
    double phaseDuty = 0.5;
    /** Shift of the phase window (anti-phase = period * duty). */
    Tick phaseOffset = 0;
    /** Off-phase multiplier on accessWeight (residual touches). */
    double phaseOffWeight = 0.0;
};

/** Short-lived request allocations (Web's per-request pages, §5.2). */
struct TransientSpec {
    /** Regions allocated per simulated second; 0 disables. */
    double regionsPerSecond = 0.0;
    std::uint64_t regionPages = 16;
    Tick lifetime = 200 * kMillisecond;
    /** Touches per page right after allocation. */
    double touchesPerPage = 2.0;
};

/** Full description of a synthetic workload. */
struct WorkloadProfile {
    std::string name = "synthetic";
    std::vector<RegionSpec> regions;
    TransientSpec transient;
    /** CPU time per application operation. */
    double thinkTimePerOpNs = 500.0;
    /** Memory references per operation. */
    std::uint32_t accessesPerOp = 4;
    /** Operations per scheduling batch. */
    std::uint64_t opsPerBatch = 2000;
    /** Pages touched per warm-up batch. */
    std::uint64_t warmupChunkPages = 4096;
    /**
     * Offered-load ramp: the service starts at `loadRampStart` of its
     * full request rate and reaches 100 % after `loadRampSeconds`
     * (Fig 10: throughput and memory utilisation rise together as the
     * service warms into its traffic).
     */
    double loadRampSeconds = 0.0;
    double loadRampStart = 1.0;
    std::uint64_t seed = 1;
};

/**
 * The synthetic workload engine.
 */
class SyntheticWorkload : public Workload
{
  public:
    explicit SyntheticWorkload(WorkloadProfile profile);

    std::string name() const override { return profile_.name; }

    void init(Kernel &kernel) override;
    BatchResult runBatch(Kernel &kernel) override;
    BatchResult runOps(Kernel &kernel, std::uint64_t ops) override;

    /** @return true once the sequential warm-up phase has finished. */
    bool
    warmedUp() const override
    {
        return warmupCursorRegion_ >= regions_.size();
    }

    Asid asid() const { return asid_; }
    const WorkloadProfile &profile() const { return profile_; }

    /** Sum of full reservations over all permanent regions. */
    std::uint64_t totalReservedPages() const;

  private:
    struct RegionState {
        RegionSpec spec;
        Vpn base = 0;
        Tick createdAt = 0;
        Tick lastChurn = 0;
        std::uint64_t cachedHotPages = 0;
        std::optional<ZipfDistribution> zipf;
    };

    struct TransientRegion {
        Vpn base;
        std::uint64_t pages;
        Tick diesAt;
    };

    double issueAccess(Kernel &kernel, Vpn vpn, AccessKind kind,
                       BatchResult &result);
    /** @return true when `spec` is inside its on-phase window at `now`. */
    bool regionPhaseOn(const RegionSpec &spec, Tick now) const;
    /** Rebuild weightPrefix_ when any region's phase state flipped. */
    void refreshPhaseWeights(Tick now);
    Vpn sampleRegionVpn(RegionState &region, Tick now);
    std::uint64_t activePages(const RegionState &region, Tick now) const;
    double runWarmupChunk(Kernel &kernel, BatchResult &result);
    double maintainTransients(Kernel &kernel, Tick now,
                              BatchResult &result);
    double maintainChurn(Kernel &kernel, Tick now);

    WorkloadProfile profile_;
    ThinkTimeModel think_;
    Rng rng_;
    Asid asid_ = 0;
    bool inited_ = false;

    std::vector<RegionState> regions_;
    std::vector<double> weightPrefix_;
    /** Any region phase-gated? False keeps the legacy static table. */
    bool anyPhased_ = false;
    /** Bitmask of per-region on/off states the table was built for. */
    std::uint64_t phaseMask_ = ~std::uint64_t{0};

    // Warm-up cursor.
    std::size_t warmupCursorRegion_ = 0;
    std::uint64_t warmupCursorPage_ = 0;

    // Transient allocations.
    std::deque<TransientRegion> transients_;
    double transientCredit_ = 0.0;
    Tick lastTransientTick_ = 0;
};

} // namespace tpp

#endif // TPP_WORKLOADS_SYNTHETIC_HH
