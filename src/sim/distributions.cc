#include "sim/distributions.hh"

#include <cmath>

#include "sim/logging.hh"

namespace tpp {

// ZipfDistribution: rejection-inversion sampling after Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996), as popularised by Apache Commons RNG.

ZipfDistribution::ZipfDistribution(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    if (n == 0)
        tpp_fatal("ZipfDistribution requires n >= 1");
    if (theta < 0.0)
        tpp_fatal("ZipfDistribution requires theta >= 0");
    hIntegralX1_ = hIntegral(1.5) - 1.0;
    hIntegralNumberOfElements_ = hIntegral(static_cast<double>(n) + 0.5);
    s_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfDistribution::hIntegral(double x) const
{
    const double log_x = std::log(x);
    // Uses expm1/log1p-based helper to stay accurate when theta ~ 1.
    const double t = log_x * (1.0 - theta_);
    const double helper =
        (std::abs(t) > 1e-8) ? std::expm1(t) / t : 1.0 + t / 2.0 + t * t / 6.0;
    return helper * log_x;
}

double
ZipfDistribution::hIntegralInverse(double x) const
{
    double t = x * (1.0 - theta_);
    if (t < -1.0)
        t = -1.0;
    const double helper =
        (std::abs(t) > 1e-8) ? std::log1p(t) / t : 1.0 - t / 2.0 + t * t / 3.0;
    return std::exp(helper * x);
}

double
ZipfDistribution::h(double x) const
{
    return std::exp(-theta_ * std::log(x));
}

std::uint64_t
ZipfDistribution::operator()(Rng &rng) const
{
    if (n_ == 1)
        return 0;
    for (;;) {
        const double u = hIntegralNumberOfElements_ +
                         rng.nextDouble() *
                             (hIntegralX1_ - hIntegralNumberOfElements_);
        const double x = hIntegralInverse(u);
        double k = std::floor(x + 0.5);
        if (k < 1.0)
            k = 1.0;
        else if (k > static_cast<double>(n_))
            k = static_cast<double>(n_);
        if (k - x <= s_ || u >= hIntegral(k + 0.5) - h(k)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

ExponentialDistribution::ExponentialDistribution(double mean) : mean_(mean)
{
    if (mean <= 0.0)
        tpp_fatal("ExponentialDistribution requires mean > 0");
}

double
ExponentialDistribution::operator()(Rng &rng) const
{
    double u;
    do {
        u = rng.nextDouble();
    } while (u <= 0.0);
    return -mean_ * std::log(u);
}

BoundedParetoDistribution::BoundedParetoDistribution(double lo, double hi,
                                                     double alpha)
    : lo_(lo), hi_(hi), alpha_(alpha)
{
    if (lo <= 0.0 || hi <= lo)
        tpp_fatal("BoundedParetoDistribution requires 0 < lo < hi");
    if (alpha <= 0.0)
        tpp_fatal("BoundedParetoDistribution requires alpha > 0");
}

double
BoundedParetoDistribution::operator()(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double la = std::pow(lo_, alpha_);
    const double ha = std::pow(hi_, alpha_);
    const double x = -(u * ha - u * la - ha) / (ha * la);
    return std::pow(1.0 / x, 1.0 / alpha_);
}

} // namespace tpp
