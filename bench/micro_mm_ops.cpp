/**
 * @file
 * google-benchmark microbenchmarks for the hot mechanisms: the access
 * path, fault path, allocator, LRU surgery, migration, reclaim scan,
 * and the simulation primitives they sit on. These bound the simulator's
 * own overheads and document the relative costs the policies pay.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/tpp_policy.hh"
#include "mm/kernel.hh"
#include "policy/default_linux.hh"
#include "sim/distributions.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace {

using namespace tpp;

/** Fixture bundle: one small tiered machine + kernel + one process. */
struct Machine {
    EventQueue eq;
    MemorySystem mem;
    Kernel kernel;
    Asid asid;

    explicit Machine(std::uint64_t local = 8192, std::uint64_t cxl = 8192,
                     std::unique_ptr<PlacementPolicy> policy =
                         std::make_unique<DefaultLinuxPolicy>())
        : mem(TopologyBuilder::cxlSystem(local, cxl)),
          kernel(mem, eq, std::move(policy)), asid(kernel.createProcess())
    {
        setLogVerbose(false);
        kernel.start();
    }
};

void
BM_RngNext(benchmark::State &state)
{
    Rng rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_ZipfSample(benchmark::State &state)
{
    Rng rng(42);
    ZipfDistribution zipf(static_cast<std::uint64_t>(state.range(0)), 0.99);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1024)->Arg(1048576);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    EventQueue eq;
    for (auto _ : state) {
        eq.scheduleAfter(10, [] {});
        eq.run(eq.now() + 10);
    }
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_AccessResident(benchmark::State &state)
{
    Machine m;
    const Vpn base = m.kernel.mmap(m.asid, 1024, PageType::Anon, "bench");
    for (Vpn v = 0; v < 1024; ++v)
        m.kernel.access(m.asid, base + v, AccessKind::Store, 0);
    Vpn v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            m.kernel.access(m.asid, base + (v++ & 1023),
                            AccessKind::Load, 0));
    }
}
BENCHMARK(BM_AccessResident);

void
BM_MinorFault(benchmark::State &state)
{
    Machine m(1 << 20, 1 << 20);
    const Vpn base =
        m.kernel.mmap(m.asid, 1 << 20, PageType::Anon, "bench");
    Vpn v = 0;
    for (auto _ : state) {
        if (v >= (1 << 20)) {
            state.PauseTiming();
            m.kernel.munmap(m.asid, base, 1 << 20);
            m.kernel.mmap(m.asid, 1 << 20, PageType::Anon, "bench");
            v = 0;
            state.ResumeTiming();
        }
        benchmark::DoNotOptimize(
            m.kernel.access(m.asid, base + v++, AccessKind::Store, 0));
    }
}
BENCHMARK(BM_MinorFault);

void
BM_AllocFree(benchmark::State &state)
{
    Machine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "bench");
    for (auto _ : state) {
        m.kernel.access(m.asid, base, AccessKind::Store, 0);
        m.kernel.freeFrame(m.kernel.addressSpace(m.asid).pte(base).pfn);
    }
}
BENCHMARK(BM_AllocFree);

void
BM_LruActivateDeactivate(benchmark::State &state)
{
    Machine m;
    const Vpn base = m.kernel.mmap(m.asid, 512, PageType::Anon, "bench");
    for (Vpn v = 0; v < 512; ++v)
        m.kernel.access(m.asid, base + v, AccessKind::Store, 0);
    const Pfn pfn = m.kernel.addressSpace(m.asid).pte(base).pfn;
    LruSet &lru = m.kernel.lru(m.mem.frame(pfn).nid);
    for (auto _ : state) {
        lru.activate(pfn);
        lru.deactivate(pfn);
    }
}
BENCHMARK(BM_LruActivateDeactivate);

void
BM_MigratePage(benchmark::State &state)
{
    Machine m;
    const Vpn base = m.kernel.mmap(m.asid, 256, PageType::Anon, "bench");
    for (Vpn v = 0; v < 256; ++v)
        m.kernel.access(m.asid, base + v, AccessKind::Store, 0);
    const NodeId cxl = m.mem.cxlNodes().front();
    const NodeId local = m.mem.cpuNodes().front();
    bool to_cxl = true;
    for (auto _ : state) {
        const Pfn pfn = m.kernel.addressSpace(m.asid).pte(base).pfn;
        benchmark::DoNotOptimize(m.kernel.migratePage(
            pfn, to_cxl ? cxl : local, AllocReason::Demotion));
        to_cxl = !to_cxl;
    }
}
BENCHMARK(BM_MigratePage);

void
BM_ReclaimScan(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        Machine m(2048, 65536);
        const Vpn base =
            m.kernel.mmap(m.asid, 1800, PageType::Anon, "bench");
        for (Vpn v = 0; v < 1800; ++v)
            m.kernel.access(m.asid, base + v, AccessKind::Store, 0);
        state.ResumeTiming();
        benchmark::DoNotOptimize(m.kernel.directReclaim(0, 64));
    }
}
BENCHMARK(BM_ReclaimScan)->Unit(benchmark::kMicrosecond);

void
BM_NumaSample(benchmark::State &state)
{
    Machine m(8192, 8192, std::make_unique<TppPolicy>());
    const Vpn base = m.kernel.mmap(m.asid, 4096, PageType::Anon, "bench");
    for (Vpn v = 0; v < 4096; ++v)
        m.kernel.access(m.asid, base + v, AccessKind::Store, 0);
    const NodeId local = m.mem.cpuNodes().front();
    for (auto _ : state)
        benchmark::DoNotOptimize(m.kernel.sampleNode(local, 64));
}
BENCHMARK(BM_NumaSample);

} // namespace

BENCHMARK_MAIN();
