/**
 * @file
 * Page allocation: watermark gates, zonelist fallback, kswapd wake-ups
 * and the direct-reclaim slow path (§4.1 of the paper).
 */

#include "mm/kernel.hh"
#include "sim/logging.hh"

namespace tpp {

WatermarkGate
Kernel::gateFor(AllocReason reason) const
{
    switch (reason) {
      case AllocReason::App:
      case AllocReason::SwapIn:
      case AllocReason::Demotion:
        return WatermarkGate::Low;
      case AllocReason::Promotion:
        // Default NUMA balancing only promotes into a node with plenty of
        // free memory (migrate_balanced_pgdat checks the high watermark).
        // TPP bypasses that check so promotions proceed while the
        // demotion daemon keeps making headroom (§5.3).
        return promotionIgnoresWatermark_ ? WatermarkGate::Min
                                          : WatermarkGate::High;
    }
    tpp_panic("bad AllocReason");
}

bool
Kernel::nodePassesGate(NodeId nid, WatermarkGate gate) const
{
    const MemoryNode &node = mem_.node(nid);
    const Watermarks &wm = node.watermarks();
    switch (gate) {
      case WatermarkGate::Low:
        return node.aboveWatermark(wm.low);
      case WatermarkGate::Min:
        return node.aboveWatermark(wm.min);
      case WatermarkGate::High:
        return node.aboveWatermark(wm.high);
      case WatermarkGate::None:
        return node.freePages() > 0;
    }
    tpp_panic("bad WatermarkGate");
}

Pfn
Kernel::takeFrameFrom(NodeId nid, AllocReason reason)
{
    const Pfn pfn = mem_.node(nid).takeFree();
    if (pfn != kInvalidPfn) {
        vmstat_.inc(Vm::PgAlloc);
        if (reason == AllocReason::App || reason == AllocReason::SwapIn)
            traffic_[nid].appAllocs++;
    }
    return pfn;
}

void
Kernel::maybeWakeKswapd(NodeId nid)
{
    // <= rather than <: allocation stops exactly at the gate watermark,
    // and the node must start reclaiming at that point, not one page
    // later (the kernel wakes kswapd when the low watermark check fails).
    const ReclaimMarks marks = policy_->kswapdMarks(nid);
    if (mem_.node(nid).freePages() <= marks.trigger)
        wakeKswapd(nid);
}

Pfn
Kernel::allocPage(NodeId preferred, PageType type, AllocReason reason,
                  double *stall_ns)
{
    const WatermarkGate gate = gateFor(reason);

    if (reason == AllocReason::Promotion || reason == AllocReason::Demotion) {
        // Migration targets are pinned to one node (__GFP_THISNODE).
        Pfn pfn = kInvalidPfn;
        if (nodePassesGate(preferred, gate))
            pfn = takeFrameFrom(preferred, reason);
        maybeWakeKswapd(preferred);
        return pfn;
    }

    const auto &order = mem_.fallbackOrder(preferred);

    // Fast path: first node in distance order above its low watermark.
    for (NodeId nid : order) {
        if (nodePassesGate(nid, gate)) {
            const Pfn pfn = takeFrameFrom(nid, reason);
            if (pfn != kInvalidPfn) {
                if (nid != preferred) {
                    vmstat_.inc(Vm::PgAllocFallback);
                    trace_.emitTyped(TraceEvent::AllocFallback,
                                     eq_.now(), nid, type, preferred);
                }
                maybeWakeKswapd(preferred);
                maybeWakeKswapd(nid);
                return pfn;
            }
        }
    }

    // Slow path: wake reclaim everywhere and dip to the min watermark.
    for (NodeId nid : order)
        maybeWakeKswapd(nid);
    for (NodeId nid : order) {
        if (nodePassesGate(nid, WatermarkGate::Min)) {
            const Pfn pfn = takeFrameFrom(nid, reason);
            if (pfn != kInvalidPfn) {
                if (nid != preferred) {
                    vmstat_.inc(Vm::PgAllocFallback);
                    trace_.emitTyped(TraceEvent::AllocFallback,
                                     eq_.now(), nid, type, preferred);
                }
                return pfn;
            }
        }
    }

    // Direct reclaim: the allocating task pays for reclaim itself.
    constexpr int kMaxRetries = 3;
    constexpr std::uint64_t kReclaimBatch = 32;
    for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
        vmstat_.inc(Vm::AllocStall);
        trace_.emitTyped(TraceEvent::AllocStall, eq_.now(), preferred,
                         type);
        std::uint64_t progress = 0;
        for (NodeId nid : order) {
            auto [reclaimed, cost] = directReclaim(nid, kReclaimBatch);
            progress += reclaimed;
            if (stall_ns)
                *stall_ns += cost;
            if (nodePassesGate(nid, WatermarkGate::Min)) {
                const Pfn pfn = takeFrameFrom(nid, reason);
                if (pfn != kInvalidPfn) {
                    if (nid != preferred) {
                        vmstat_.inc(Vm::PgAllocFallback);
                        trace_.emitTyped(TraceEvent::AllocFallback,
                                         eq_.now(), nid, type,
                                         preferred);
                    }
                    return pfn;
                }
            }
        }
        if (progress == 0)
            break;
    }
    return kInvalidPfn;
}

} // namespace tpp
