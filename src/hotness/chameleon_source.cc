#include "hotness/chameleon_source.hh"

#include <algorithm>
#include <cmath>

#include "mm/kernel.hh"

namespace tpp {

void
ChameleonSource::attach(Kernel &kernel)
{
    HotnessSource::attach(kernel);
    // Promotion wants frequency resolution over deep history: 4-bit
    // fields saturate at 15 samples per epoch and still keep 16 epochs
    // of history. Duty cycling off — the source drives migration, not
    // an overhead study, so blind slices would just cost recall.
    ChameleonConfig chameleon;
    chameleon.interval = cfg_.epochPeriod;
    chameleon.bitsPerInterval = 4;
    chameleon.dutyCycle = false;
    chameleon.samplePeriod = 64;
    chameleon_ = std::make_unique<Chameleon>(kernel, chameleon);
}

void
ChameleonSource::start()
{
    chameleon_->start();
}

AccessObserver
ChameleonSource::observer()
{
    return chameleon_->observer();
}

double
ChameleonSource::score(std::uint64_t bitmap, std::uint32_t bits_per_interval)
{
    // Sum of per-interval sample counts, halved per interval of age: the
    // current epoch's field counts fully, last epoch's at 1/2, and so
    // on. Keeps pages that were hot two epochs ago ranked below pages
    // hot right now without discarding history outright.
    const std::uint64_t mask = (bits_per_interval == 64)
                                   ? ~std::uint64_t{0}
                                   : ((std::uint64_t{1} << bits_per_interval) - 1);
    double total = 0.0;
    double weight = 1.0;
    for (std::uint32_t g = 0; g < 64 / bits_per_interval; ++g) {
        const std::uint64_t field = (bitmap >> (g * bits_per_interval)) & mask;
        total += static_cast<double>(field) * weight;
        weight *= 0.5;
    }
    return total;
}

double
ChameleonSource::temperature(Pfn pfn) const
{
    if (!cxlResident(pfn))
        return 0.0;
    const PageFrameCold &cold = kernel_->mem().frameCold(pfn);
    const std::uint64_t word =
        chameleon_->activityWord(cold.ownerAsid, cold.ownerVpn);
    return score(word, chameleon_->config().bitsPerInterval);
}

std::vector<HotPage>
ChameleonSource::extractHot(std::uint64_t max_pages)
{
    const std::uint32_t bits = chameleon_->config().bitsPerInterval;
    std::vector<HotPage> hot;
    for (const ChameleonPageActivity &page : chameleon_->activitySnapshot()) {
        const double temp = score(page.bitmap, bits);
        if (temp <= 0.0)
            continue;
        const AddressSpace &as = kernel_->addressSpace(page.asid);
        if (page.vpn >= as.tableSize())
            continue;
        const Pte &pte = as.pte(page.vpn);
        if (!pte.present() || !cxlResident(pte.pfn))
            continue;
        HotPage candidate;
        candidate.pfn = pte.pfn;
        candidate.nid = kernel_->mem().frame(pte.pfn).nid;
        candidate.temperature = temp;
        hot.push_back(candidate);
    }
    std::sort(hot.begin(), hot.end(),
              [](const HotPage &a, const HotPage &b) {
                  return a.temperature != b.temperature
                             ? a.temperature > b.temperature
                             : a.pfn < b.pfn;
              });
    if (hot.size() > max_pages)
        hot.resize(max_pages);
    return hot;
}

} // namespace tpp
