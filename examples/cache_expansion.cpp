/**
 * @file
 * Scenario example: cheap memory expansion (§6.2.2).
 *
 * Can a cache tier run with only 20 % of its working set in fast local
 * DRAM and the rest on big, cheap CXL memory? This example sweeps the
 * local:CXL capacity ratio from all-local down to 1:8 for Cache1 under
 * both default Linux and TPP, printing the throughput and traffic at
 * each point — the crossover chart a capacity planner would want.
 *
 * Usage: cache_expansion [wss_pages] [--jobs N] [--seed S] [--csv PATH]
 */

#include <cstdio>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;
    const bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    ExperimentConfig cfg = bench::makeConfig(opt);
    cfg.workload = "cache1";

    const std::vector<const char *> ratios = {"2:1", "1:1", "1:4", "1:8"};
    const std::vector<const char *> policies = {"linux", "tpp"};

    // The all-local baseline first, then every ratio x policy point.
    std::vector<ExperimentConfig> cfgs;
    ExperimentConfig base = cfg;
    base.allLocal = true;
    base.policy = "linux";
    cfgs.push_back(base);
    for (const char *ratio : ratios) {
        for (const char *policy : policies) {
            ExperimentConfig run = cfg;
            run.localFraction = parseRatio(ratio);
            run.policy = policy;
            cfgs.push_back(run);
        }
    }
    const std::vector<ExperimentResult> results =
        SweepRunner(bench::sweepOptions(opt)).run(cfgs);
    const ExperimentResult &baseline = results[0];

    std::printf("Cache1 memory-expansion sweep (%llu-page working "
                "set)\n\n",
                (unsigned long long)cfg.wssPages);
    TextTable table({"local:cxl", "local share of capacity", "policy",
                     "tput vs all-local", "local traffic", "swap-outs"});

    for (std::size_t r = 0; r < ratios.size(); ++r) {
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const std::size_t i = 1 + r * policies.size() + p;
            const ExperimentResult &res = results[i];
            table.addRow(
                {ratios[r], TextTable::pct(cfgs[i].localFraction, 0),
                 policies[p],
                 TextTable::pct(res.throughput / baseline.throughput),
                 TextTable::pct(res.localTrafficShare),
                 TextTable::count(res.vmstat.get(Vm::PswpOut))});
        }
    }
    table.print();
    std::printf("\nTPP holds near-all-local performance far deeper into "
                "the expansion régime than default Linux (§6.2.2).\n");
    bench::maybeWriteCsv(opt, results);
    return 0;
}
