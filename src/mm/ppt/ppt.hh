/**
 * @file
 * Ping-pong throttling (PPT): a per-page migration-history subsystem
 * that prevents tier thrashing.
 *
 * TPP's decoupled promote/demote paths can livelock a borderline-hot
 * page into a promote -> demote -> promote cycle; each wasted hop
 * carries real transactional copy cost (Nomad), and hysteresis on the
 * migration decision is what keeps dynamic placement stable ("Dynamic
 * Page Placement on Real Persistent Memory Systems"). PPT supplies that
 * hysteresis as a mechanism the MigrationEngine consults on admission:
 *
 *  - a bounded, LRU-evicted history table keyed by stable page identity
 *    (asid, vpn) — the key that survives migration, unlike a pfn —
 *    recording the direction and timestamp of each page's last hop.
 *    The table is its own arena beside the SoA frame table: history is
 *    cold metadata for a small set of suspects, so it must not widen
 *    the 16-byte hot frame records every page pays for;
 *  - a cooldown window: a reverse-direction migration within
 *    vm.ppt.cooldown_ms of the prior hop is denied (the deciding
 *    policy simply retries later, exactly like a token-bucket defer);
 *  - hysteresis: once a page has flipped direction
 *    vm.ppt.repeat_threshold times, every further flip doubles its
 *    cooldown, up to vm.ppt.max_cooldown_ms.
 *
 * Same-direction hops are never throttled (a demotion chain A->B->C
 * must stay cheap), and pages with no history are admitted for free.
 * Disabled (the default) the subsystem is a single branch with no
 * allocation and no state, so runs are bit-identical with it off.
 *
 * The class is deliberately standalone — it takes the counters, the
 * trace ring and explicit timestamps rather than a Kernel — so unit
 * tests can drive the cooldown clock directly.
 */

#ifndef TPP_MM_PPT_PPT_HH
#define TPP_MM_PPT_PPT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mm/sysctl.hh"
#include "mm/vmstat.hh"
#include "sim/types.hh"
#include "trace/trace.hh"

namespace tpp {

/** Direction of one tier hop, as PPT records it. */
enum class PptHop : std::uint8_t {
    Demote = 0, //!< toward the slower tier
    Promote = 1, //!< toward the faster tier
};

/** Tunables behind the vm.ppt.* sysctls. */
struct PptConfig {
    /** Master switch; off means no state, no cost, no behaviour change. */
    bool enable = false;
    /** Base cooldown a reverse hop must wait out, in milliseconds. */
    std::uint64_t cooldownMs = 1000;
    /** History-table capacity in pages (LRU-evicted beyond this). */
    std::uint64_t historyPages = 16384;
    /** Flips after which each further flip escalates the cooldown. */
    std::uint64_t repeatThreshold = 2;
    /** Ceiling the escalated cooldown saturates at, in milliseconds. */
    std::uint64_t maxCooldownMs = 16000;
};

/**
 * The migration-history table and its admission test. One instance per
 * Kernel, owned beside the MigrationEngine that consults it.
 */
class PingPongThrottle
{
  public:
    PingPongThrottle(VmStat &vmstat, TraceBuffer &trace,
                     PptConfig cfg = {});

    PingPongThrottle(const PingPongThrottle &) = delete;
    PingPongThrottle &operator=(const PingPongThrottle &) = delete;

    /** Register the vm.ppt.* knobs (called once by the Kernel). */
    void registerSysctls(SysctlRegistry &sysctl);

    bool enabled() const { return cfg_.enable; }
    const PptConfig &config() const { return cfg_; }

    /**
     * Admission test: may (asid, vpn) hop in direction `dir` at `now`?
     * Allowed when disabled, untracked, same-direction, or the
     * (possibly escalated) cooldown has expired. A denial bumps
     * ppt_throttled_{promote,demote} and fires the ppt_throttle
     * tracepoint; `node`/`type`/`pfn` only scope that tracepoint.
     */
    bool admit(Asid asid, Vpn vpn, PptHop dir, Tick now, NodeId node,
               PageType type, Pfn pfn);

    /**
     * Record one *completed* hop. Creates or refreshes the page's
     * history entry; a direction flip past the repeat threshold
     * escalates the cooldown (ppt_escalated / ppt_escalate).
     */
    void recordHop(Asid asid, Vpn vpn, PptHop dir, Tick now, NodeId node,
                   PageType type, Pfn pfn);

    /** Drop all history (counters and config are untouched). */
    void clear();

    // ---- introspection (tests, benches) -----------------------------

    /** Pages currently tracked in the history table. */
    std::size_t trackedPages() const { return index_.size(); }
    /** Effective cooldown of a tracked page in ns; 0 when untracked. */
    Tick cooldownNsFor(Asid asid, Vpn vpn) const;
    /** Direction flips recorded for a page; 0 when untracked. */
    std::uint64_t flipsFor(Asid asid, Vpn vpn) const;
    /** True when the table still remembers (asid, vpn). */
    bool tracks(Asid asid, Vpn vpn) const;
    /**
     * Direction flips recorded since construction, over every page —
     * monotonic, survives LRU eviction of individual entries. This is
     * the machine-wide ping-pong signal consumers outside the admission
     * path (the adaptive tuner) read each profiling window.
     */
    std::uint64_t totalFlips() const { return totalFlips_; }

  private:
    /** One page's history: 40 bytes, pooled, index-linked LRU. */
    struct Entry {
        std::uint64_t key = 0;
        Tick lastHopAt = 0;
        std::uint32_t flips = 0;
        std::uint32_t lruPrev = kNil;
        std::uint32_t lruNext = kNil;
        PptHop lastDir = PptHop::Demote;
        /** log2 of the cooldown multiplier (saturating). */
        std::uint8_t escalation = 0;
    };

    static constexpr std::uint32_t kNil = 0xffffffffu;

    /**
     * Stable page identity packed into the hash key. Address spaces
     * hand out dense low vpns, so 48 bits of vpn never truncate here;
     * the assert in ppt.cc guards the assumption.
     */
    static std::uint64_t
    key(Asid asid, Vpn vpn)
    {
        return (static_cast<std::uint64_t>(asid) << 48) | vpn;
    }

    Tick cooldownNs(const Entry &e) const;
    Tick maxCooldownNs() const;
    std::uint32_t allocEntry(Tick now, NodeId node);
    void evictLru(Tick now, NodeId node);
    void trimToCapacity();
    void lruUnlink(std::uint32_t idx);
    void lruPushFront(std::uint32_t idx);

    PptConfig cfg_;
    VmStat &vmstat_;
    TraceBuffer &trace_;

    /** Entry arena; grows lazily up to cfg_.historyPages and is then
     *  recycled through the free list / LRU eviction. */
    std::vector<Entry> pool_;
    std::vector<std::uint32_t> freeList_;
    std::unordered_map<std::uint64_t, std::uint32_t> index_;
    std::uint32_t lruHead_ = kNil;
    std::uint32_t lruTail_ = kNil;
    /** Most recent timestamp seen; stamps sysctl-driven evictions. */
    Tick lastTick_ = 0;
    /** Lifetime flip count across all pages (see totalFlips()). */
    std::uint64_t totalFlips_ = 0;
};

} // namespace tpp

#endif // TPP_MM_PPT_PPT_HH
