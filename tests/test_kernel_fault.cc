/**
 * @file
 * Unit tests for the Kernel access/fault path: minor faults, major
 * faults (swap-in and disk refault), LRU placement, referenced/dirty
 * tracking, traffic accounting and teardown.
 */

#include "test_common.hh"

namespace tpp {
namespace {

using test::TestMachine;

TEST(KernelFault, MinorFaultMapsPage)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 4, PageType::Anon, "a");
    const AccessResult res =
        m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_TRUE(res.minorFault);
    EXPECT_FALSE(res.majorFault);
    EXPECT_EQ(res.servedBy, 0);
    EXPECT_TRUE(m.pte(base).present());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgFault), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgAlloc), 1u);
    EXPECT_EQ(m.kernel.addressSpace(m.asid).residentPages(), 1u);
}

TEST(KernelFault, SecondAccessIsNotAFault)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    const AccessResult res =
        m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_FALSE(res.minorFault);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgFault), 1u);
    // A resident hit costs roughly the node's idle latency.
    EXPECT_NEAR(res.latencyNs, m.mem.node(0).profile().idleLatencyNs,
                5.0);
}

TEST(KernelFault, NewPagesStartInactive)
{
    TestMachine m;
    const Vpn a = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f");
    m.kernel.access(m.asid, a, AccessKind::Store, 0);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_EQ(m.frameOf(a).lru, LruListId::InactiveAnon);
    EXPECT_EQ(m.frameOf(f).lru, LruListId::InactiveFile);
}

TEST(KernelFault, ReferencedAndDirtyTracking)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 2, PageType::File, "f");
    m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_TRUE(m.frameOf(base).referenced());
    EXPECT_FALSE(m.frameOf(base).dirty());
    m.kernel.access(m.asid, base + 1, AccessKind::Store, 0);
    EXPECT_TRUE(m.frameOf(base + 1).dirty());
    // Anon pages are born dirty.
    const Vpn a = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, a, AccessKind::Load, 0);
    EXPECT_TRUE(m.frameOf(a).dirty());
}

TEST(KernelFault, DiskBackedFirstTouchPaysDiskRead)
{
    TestMachine m;
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f", true);
    const Vpn t = m.kernel.mmap(m.asid, 1, PageType::File, "tmpfs");
    const AccessResult disk =
        m.kernel.access(m.asid, f, AccessKind::Load, 0);
    const AccessResult tmpfs =
        m.kernel.access(m.asid, t, AccessKind::Load, 0);
    EXPECT_GT(disk.latencyNs,
              tmpfs.latencyNs + m.kernel.costs().diskReadNs / 2);
}

TEST(KernelFault, SwapInIsMajorFault)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    m.kernel.access(m.asid, base, AccessKind::Store, 0);
    // Manually page it out through the reclaim path.
    m.frameOf(base).clearFlag(PageFrame::FlagReferenced);
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 1);
    ASSERT_EQ(reclaimed, 1u);
    ASSERT_TRUE(m.pte(base).swapped());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PswpOut), 1u);

    const AccessResult res =
        m.kernel.access(m.asid, base, AccessKind::Load, 0);
    EXPECT_TRUE(res.majorFault);
    EXPECT_GT(res.latencyNs, 50000.0); // waits on the swap device
    EXPECT_FALSE(m.pte(base).swapped());
    EXPECT_TRUE(m.pte(base).present());
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PswpIn), 1u);
    EXPECT_EQ(m.kernel.vmstat().get(Vm::PgMajFault), 1u);
}

TEST(KernelFault, DroppedFilePageRefaultsFromDisk)
{
    TestMachine m;
    const Vpn f = m.kernel.mmap(m.asid, 1, PageType::File, "f", true);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    m.frameOf(f).clearFlag(PageFrame::FlagReferenced);
    auto [reclaimed, cost] = m.kernel.directReclaim(0, 1);
    ASSERT_EQ(reclaimed, 1u);
    EXPECT_FALSE(m.pte(f).present());
    EXPECT_FALSE(m.pte(f).swapped()); // dropped, not swapped

    const AccessResult res =
        m.kernel.access(m.asid, f, AccessKind::Load, 0);
    EXPECT_TRUE(res.majorFault);
    EXPECT_GT(res.latencyNs, m.kernel.costs().diskReadNs);
}

TEST(KernelFault, TrafficAccounting)
{
    TestMachine m;
    const Vpn a = m.kernel.mmap(m.asid, 2, PageType::Anon, "a");
    const Vpn f = m.kernel.mmap(m.asid, 2, PageType::File, "f");
    m.kernel.access(m.asid, a, AccessKind::Load, 0);
    m.kernel.access(m.asid, a, AccessKind::Load, 0);
    m.kernel.access(m.asid, f, AccessKind::Load, 0);
    const NodeTraffic &t = m.kernel.traffic(0);
    EXPECT_EQ(t.accesses, 3u);
    EXPECT_EQ(t.accessesByType[0], 2u); // anon
    EXPECT_EQ(t.accessesByType[1], 1u); // file
    EXPECT_DOUBLE_EQ(m.kernel.trafficShare(0), 1.0);
    m.kernel.resetTraffic();
    EXPECT_EQ(m.kernel.traffic(0).accesses, 0u);
}

TEST(KernelFault, MunmapFreesFramesAndSwap)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 4, PageType::Anon, "a");
    for (int i = 0; i < 4; ++i)
        m.kernel.access(m.asid, base + i, AccessKind::Store, 0);
    // Swap one page out first.
    m.frameOf(base).clearFlag(PageFrame::FlagReferenced);
    m.kernel.directReclaim(0, 1);
    ASSERT_TRUE(m.pte(base).swapped());
    const std::uint64_t free_before = m.mem.node(0).freePages();

    m.kernel.munmap(m.asid, base, 4);
    EXPECT_EQ(m.mem.node(0).freePages(), free_before + 3);
    EXPECT_EQ(m.mem.swapDevice().usedSlots(), 0u);
    EXPECT_EQ(m.kernel.addressSpace(m.asid).residentPages(), 0u);
    EXPECT_EQ(m.kernel.lru(0).countAll(), 0u);
}

TEST(KernelFault, TaskNodePreferenceDrivesPlacement)
{
    TestMachine m;
    const Vpn base = m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    // Fault from a task notionally on the CXL node: default policy
    // allocates local to the task.
    const AccessResult res =
        m.kernel.access(m.asid, base, AccessKind::Store, m.cxl());
    EXPECT_EQ(res.servedBy, m.cxl());
}

TEST(KernelFaultDeathTest, UnmappedAccessPanics)
{
    TestMachine m;
    m.kernel.mmap(m.asid, 1, PageType::Anon, "a");
    EXPECT_DEATH(m.kernel.access(m.asid, 99, AccessKind::Load, 0),
                 "unmapped");
}

TEST(KernelFaultDeathTest, BadAsidPanics)
{
    TestMachine m;
    EXPECT_DEATH(m.kernel.addressSpace(42), "bad asid");
}

} // namespace
} // namespace tpp
