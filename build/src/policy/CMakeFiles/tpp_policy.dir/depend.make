# Empty dependencies file for tpp_policy.
# This may be replaced when dependencies are built.
