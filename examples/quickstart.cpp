/**
 * @file
 * Quickstart: build a 2:1 CXL-tiered machine, run the Web workload
 * under default Linux and under TPP, and print the headline numbers —
 * the 30-second tour of the library's public API.
 *
 * Usage: quickstart [wss_pages]
 */

#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hh"
#include "harness/table.hh"
#include "sim/logging.hh"

int
main(int argc, char **argv)
{
    using namespace tpp;

    setLogVerbose(false);

    ExperimentConfig cfg;
    cfg.workload = "web";
    cfg.localFraction = parseRatio("2:1");
    if (argc > 1)
        cfg.wssPages = std::strtoull(argv[1], nullptr, 0);

    std::printf("Web on a 2:1 local:CXL tiered machine (%llu pages WSS)\n\n",
                static_cast<unsigned long long>(cfg.wssPages));

    TextTable table({"policy", "throughput (ops/s)", "vs all-local",
                     "local traffic", "mean access ns"});

    // All-from-local reference machine.
    ExperimentConfig base = cfg;
    base.allLocal = true;
    base.policy = "linux";
    const ExperimentResult baseline = runExperiment(base);
    table.addRow({"all-local", TextTable::num(baseline.throughput, 0),
                  "100.0%", "100.0%",
                  TextTable::num(baseline.meanAccessLatencyNs, 1)});

    for (const char *policy : {"linux", "tpp"}) {
        ExperimentConfig run = cfg;
        run.policy = policy;
        const ExperimentResult res = runExperiment(run);
        table.addRow({res.policy, TextTable::num(res.throughput, 0),
                      TextTable::pct(res.throughput / baseline.throughput),
                      TextTable::pct(res.localTrafficShare),
                      TextTable::num(res.meanAccessLatencyNs, 1)});
    }
    table.print();
    return 0;
}
