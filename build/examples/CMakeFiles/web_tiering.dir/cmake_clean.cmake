file(REMOVE_RECURSE
  "CMakeFiles/web_tiering.dir/web_tiering.cpp.o"
  "CMakeFiles/web_tiering.dir/web_tiering.cpp.o.d"
  "web_tiering"
  "web_tiering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_tiering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
