/**
 * @file
 * PingPongThrottle implementation: the bounded history arena, the
 * cooldown/escalation arithmetic and the vm.ppt.* knobs.
 */

#include "mm/ppt/ppt.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace tpp {

namespace {

/** History-table capacity ceiling: 16 Mi entries (~640 MiB) is already
 *  far past any simulated machine; the cap keeps a typo'd sysctl from
 *  attempting an absurd reservation. */
constexpr std::uint64_t kMaxHistoryPages = std::uint64_t{1} << 24;

/** Cooldown knob ceiling in ms (~17 minutes of simulated time). */
constexpr std::uint64_t kMaxCooldownKnobMs = std::uint64_t{1} << 20;

/**
 * Parse an unsigned knob value with registerU64's strictness: no sign,
 * no leading whitespace, no trailing garbage, no overflow. Local copy
 * because the cross-field checks below need registerKnob's custom
 * setter form, which bypasses the registry's own parser.
 */
bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    *out = parsed;
    return true;
}

} // namespace

PingPongThrottle::PingPongThrottle(VmStat &vmstat, TraceBuffer &trace,
                                   PptConfig cfg)
    : cfg_(cfg), vmstat_(vmstat), trace_(trace)
{
    if (cfg_.historyPages == 0)
        tpp_fatal("ppt: history_pages must be >= 1");
    if (cfg_.cooldownMs == 0 || cfg_.cooldownMs > cfg_.maxCooldownMs)
        tpp_fatal("ppt: need 1 <= cooldown_ms <= max_cooldown_ms");
    if (cfg_.repeatThreshold == 0)
        tpp_fatal("ppt: repeat_threshold must be >= 1");
}

void
PingPongThrottle::registerSysctls(SysctlRegistry &sysctl)
{
    sysctl.registerBool("vm.ppt.enable", &cfg_.enable);
    // cooldown_ms and max_cooldown_ms validate against each other, so
    // both need the custom-knob form: the pair must always satisfy
    // 1 <= cooldown_ms <= max_cooldown_ms (tighten the ceiling before
    // raising the base, and vice versa).
    sysctl.registerKnob(
        "vm.ppt.cooldown_ms",
        [this] { return std::to_string(cfg_.cooldownMs); },
        [this](const std::string &text) {
            std::uint64_t v = 0;
            if (!parseU64(text, &v))
                return false;
            if (v < 1 || v > kMaxCooldownKnobMs || v > cfg_.maxCooldownMs)
                return false;
            cfg_.cooldownMs = v;
            return true;
        });
    sysctl.registerKnob(
        "vm.ppt.max_cooldown_ms",
        [this] { return std::to_string(cfg_.maxCooldownMs); },
        [this](const std::string &text) {
            std::uint64_t v = 0;
            if (!parseU64(text, &v))
                return false;
            if (v < cfg_.cooldownMs || v > kMaxCooldownKnobMs)
                return false;
            cfg_.maxCooldownMs = v;
            return true;
        });
    sysctl.registerU64("vm.ppt.history_pages", &cfg_.historyPages,
                       [this] { trimToCapacity(); },
                       /*min=*/1, /*max=*/kMaxHistoryPages);
    sysctl.registerU64("vm.ppt.repeat_threshold", &cfg_.repeatThreshold,
                       nullptr, /*min=*/1);
}

Tick
PingPongThrottle::maxCooldownNs() const
{
    return cfg_.maxCooldownMs * kMillisecond;
}

Tick
PingPongThrottle::cooldownNs(const Entry &e) const
{
    // Escalate in ms-space, saturating at the ceiling before the ns
    // conversion so no shift or multiply can overflow 64 bits (the
    // knob parser caps cooldownMs at 2^20 and escalation stops once
    // the ceiling is reached, but belt-and-braces here is one branch).
    if (e.escalation >= 32)
        return maxCooldownNs();
    const std::uint64_t ms = cfg_.cooldownMs << e.escalation;
    if (ms >= cfg_.maxCooldownMs || (ms >> e.escalation) != cfg_.cooldownMs)
        return maxCooldownNs();
    return ms * kMillisecond;
}

bool
PingPongThrottle::admit(Asid asid, Vpn vpn, PptHop dir, Tick now,
                        NodeId node, PageType type, Pfn pfn)
{
    if (!cfg_.enable)
        return true;
    lastTick_ = now;
    const auto it = index_.find(key(asid, vpn));
    if (it == index_.end())
        return true;
    Entry &e = pool_[it->second];
    if (e.lastDir == dir)
        return true; // same direction: chained hops stay free
    if (now - e.lastHopAt >= cooldownNs(e))
        return true;
    // Denied: the page is still inside its reverse-hop cooldown. Keep
    // the offender's history hot in the LRU — evicting it mid-cooldown
    // would forget exactly the page the table exists to remember.
    lruUnlink(it->second);
    lruPushFront(it->second);
    vmstat_.inc(dir == PptHop::Promote ? Vm::PptThrottledPromote
                                       : Vm::PptThrottledDemote);
    trace_.emitPage(TraceEvent::PptThrottle, now, node, type, pfn, asid,
                    vpn, static_cast<std::uint32_t>(dir));
    return false;
}

void
PingPongThrottle::recordHop(Asid asid, Vpn vpn, PptHop dir, Tick now,
                            NodeId node, PageType type, Pfn pfn)
{
    if (!cfg_.enable)
        return;
    lastTick_ = now;
    if (vpn >> 48)
        tpp_panic("ppt: vpn %llu overflows the packed history key",
                  static_cast<unsigned long long>(vpn));
    const std::uint64_t k = key(asid, vpn);
    auto it = index_.find(k);
    if (it == index_.end()) {
        const std::uint32_t idx = allocEntry(now, node);
        Entry &e = pool_[idx];
        e.key = k;
        e.lastHopAt = now;
        e.flips = 0;
        e.lastDir = dir;
        e.escalation = 0;
        index_.emplace(k, idx);
        lruPushFront(idx);
        return;
    }

    const std::uint32_t idx = it->second;
    Entry &e = pool_[idx];
    if (e.lastDir != dir) {
        e.flips++;
        totalFlips_++;
        // Hysteresis: past the repeat threshold every further flip
        // doubles the cooldown until it saturates at the ceiling.
        if (e.flips >= cfg_.repeatThreshold &&
            cooldownNs(e) < maxCooldownNs()) {
            e.escalation++;
            vmstat_.inc(Vm::PptEscalated);
            trace_.emitPage(
                TraceEvent::PptEscalate, now, node, type, pfn, asid, vpn,
                static_cast<std::uint32_t>(cooldownNs(e) / kMillisecond));
        }
    }
    e.lastDir = dir;
    e.lastHopAt = now;
    lruUnlink(idx);
    lruPushFront(idx);
}

void
PingPongThrottle::clear()
{
    pool_.clear();
    freeList_.clear();
    index_.clear();
    lruHead_ = kNil;
    lruTail_ = kNil;
}

Tick
PingPongThrottle::cooldownNsFor(Asid asid, Vpn vpn) const
{
    const auto it = index_.find(key(asid, vpn));
    return it == index_.end() ? 0 : cooldownNs(pool_[it->second]);
}

std::uint64_t
PingPongThrottle::flipsFor(Asid asid, Vpn vpn) const
{
    const auto it = index_.find(key(asid, vpn));
    return it == index_.end() ? 0 : pool_[it->second].flips;
}

bool
PingPongThrottle::tracks(Asid asid, Vpn vpn) const
{
    return index_.count(key(asid, vpn)) != 0;
}

std::uint32_t
PingPongThrottle::allocEntry(Tick now, NodeId node)
{
    if (!freeList_.empty()) {
        const std::uint32_t idx = freeList_.back();
        freeList_.pop_back();
        return idx;
    }
    if (pool_.size() < cfg_.historyPages) {
        pool_.emplace_back();
        return static_cast<std::uint32_t>(pool_.size() - 1);
    }
    evictLru(now, node);
    const std::uint32_t idx = freeList_.back();
    freeList_.pop_back();
    return idx;
}

void
PingPongThrottle::evictLru(Tick now, NodeId node)
{
    if (lruTail_ == kNil)
        tpp_panic("ppt: eviction from an empty history table");
    const std::uint32_t idx = lruTail_;
    lruUnlink(idx);
    index_.erase(pool_[idx].key);
    freeList_.push_back(idx);
    vmstat_.inc(Vm::PptHistoryEvict);
    trace_.emit(TraceEvent::PptEvict, now, node);
}

void
PingPongThrottle::trimToCapacity()
{
    // Sysctl shrink: forget coldest-first until we fit. The pool keeps
    // its high-water allocation (entries just park on the free list);
    // a later capacity raise grows into it again.
    while (index_.size() > cfg_.historyPages)
        evictLru(lastTick_, kInvalidNode);
}

void
PingPongThrottle::lruUnlink(std::uint32_t idx)
{
    Entry &e = pool_[idx];
    if (e.lruPrev != kNil)
        pool_[e.lruPrev].lruNext = e.lruNext;
    else if (lruHead_ == idx)
        lruHead_ = e.lruNext;
    if (e.lruNext != kNil)
        pool_[e.lruNext].lruPrev = e.lruPrev;
    else if (lruTail_ == idx)
        lruTail_ = e.lruPrev;
    e.lruPrev = kNil;
    e.lruNext = kNil;
}

void
PingPongThrottle::lruPushFront(std::uint32_t idx)
{
    Entry &e = pool_[idx];
    e.lruPrev = kNil;
    e.lruNext = lruHead_;
    if (lruHead_ != kNil)
        pool_[lruHead_].lruPrev = idx;
    lruHead_ = idx;
    if (lruTail_ == kNil)
        lruTail_ = idx;
}

} // namespace tpp
